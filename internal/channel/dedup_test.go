package channel_test

import (
	"sync"
	"testing"

	"sqpeer/internal/channel"
	"sqpeer/internal/network"
)

// dupInjector duplicates every chan.packet delivery.
type dupInjector struct{}

func (dupInjector) Intercept(m network.Message) network.Fault {
	if m.Kind == "chan.packet" {
		return network.Fault{Duplicate: true}
	}
	return network.Fault{}
}

// Packets carry destination-assigned sequence numbers, so a duplicated
// delivery (at-least-once transport) reaches the root-side callback
// exactly once and row accounting stays exact.
func TestDuplicateDeliverySuppressed(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	net.SetInjector(dupInjector{})

	var mu sync.Mutex
	var got []channel.Packet
	ch, err := ms["P1"].Open("P2", func(p channel.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 3, []byte("rows")); err != nil {
		t.Fatalf("SendToRoot: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Done, 0, nil); err != nil {
		t.Fatalf("SendToRoot done: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("callback saw %d packets, want 2 (duplicates suppressed)", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("sequence numbers = %d, %d", got[0].Seq, got[1].Seq)
	}
	if ch.RowsReceived() != 3 {
		t.Errorf("RowsReceived = %d, want 3 (duplicate not double-counted)", ch.RowsReceived())
	}
}

// A partition in the middle of a channel's life burns sequence numbers
// (the destination stamps Seq before the wire, and the sends fail), so
// the post-heal stream resumes with a gap. The dedupe state must treat
// the gap as missing packets — duplicates of post-heal packets are still
// suppressed, row accounting stays exact, and the watermark holds at the
// last contiguous prefix rather than jumping the gap.
func TestHealedLinkDedupeSurvivesGap(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")

	var mu sync.Mutex
	var got []channel.Packet
	ch, err := ms["P1"].Open("P2", func(p channel.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 3, []byte("pre")); err != nil {
		t.Fatalf("pre-partition send: %v", err)
	}

	net.Partition("P1", "P2")
	for i := 0; i < 2; i++ {
		if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 10, []byte("lost")); err == nil {
			t.Fatal("send across a cut link must fail")
		}
	}

	net.Heal("P1", "P2")
	net.SetInjector(dupInjector{}) // at-least-once transport after the heal
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 4, []byte("post")); err != nil {
		t.Fatalf("healed link must deliver again: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Done, 0, nil); err != nil {
		t.Fatalf("done after heal: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("callback saw %d packets, want 3 (pre, post, done; duplicates suppressed)", len(got))
	}
	if got[1].Seq != 4 {
		t.Errorf("post-heal packet resumed at seq %d, want 4 (seqs 2-3 burned by the cut)", got[1].Seq)
	}
	if ch.RowsReceived() != 7 {
		t.Errorf("RowsReceived = %d, want 7 (lost sends and duplicates excluded)", ch.RowsReceived())
	}
	if ch.Watermark() != 1 {
		t.Errorf("Watermark = %d, want 1 (the gap's packets never arrived)", ch.Watermark())
	}
	if d := ms["P1"].Stats().PacketsDuplicate; d < 2 {
		t.Errorf("PacketsDuplicate = %d, want >=2 (post-heal replays suppressed)", d)
	}
}
