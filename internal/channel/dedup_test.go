package channel_test

import (
	"sync"
	"testing"

	"sqpeer/internal/channel"
	"sqpeer/internal/network"
)

// dupInjector duplicates every chan.packet delivery.
type dupInjector struct{}

func (dupInjector) Intercept(m network.Message) network.Fault {
	if m.Kind == "chan.packet" {
		return network.Fault{Duplicate: true}
	}
	return network.Fault{}
}

// Packets carry destination-assigned sequence numbers, so a duplicated
// delivery (at-least-once transport) reaches the root-side callback
// exactly once and row accounting stays exact.
func TestDuplicateDeliverySuppressed(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	net.SetInjector(dupInjector{})

	var mu sync.Mutex
	var got []channel.Packet
	ch, err := ms["P1"].Open("P2", func(p channel.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 3, []byte("rows")); err != nil {
		t.Fatalf("SendToRoot: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Done, 0, nil); err != nil {
		t.Fatalf("SendToRoot done: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("callback saw %d packets, want 2 (duplicates suppressed)", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("sequence numbers = %d, %d", got[0].Seq, got[1].Seq)
	}
	if ch.RowsReceived() != 3 {
		t.Errorf("RowsReceived = %d, want 3 (duplicate not double-counted)", ch.RowsReceived())
	}
}
