package channel_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sqpeer/internal/channel"
	"sqpeer/internal/faults"
	"sqpeer/internal/network"
)

// TestReorderedAndDuplicatedPackets drives the root-side packet path with
// a seeded adversarial wire: packets arrive in a shuffled order (the
// simulated network delivers synchronously, so reordering is produced by
// hand-stamping sequence numbers and sending them out of order) while a
// faults.Injector duplicates every delivery and adds delay spikes. No row
// may be lost (a late arrival is not a replay) and none double-counted
// (a replayed Seq is suppressed even when it arrives out of order).
func TestReorderedAndDuplicatedPackets(t *testing.T) {
	const (
		seed    = 20240805
		packets = 20
		rowsPer = 2
	)
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	// Duplicate every chan.packet delivery; spike half of them. The spike
	// only charges simulated latency — order is controlled by the shuffle.
	inj := faults.NewInjector(seed, faults.Rates{Duplicate: 1, DelaySpike: 0.5, SpikeMS: 300})
	net.SetInjector(inj)

	var mu sync.Mutex
	seen := map[int]int{} // seq -> callback invocations
	rows := 0
	ch, err := ms["P1"].Open("P2", func(p channel.Packet) {
		mu.Lock()
		seen[p.Seq]++
		rows += p.Rows
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Hand-stamp packets 1..packets and deliver them in a seeded shuffle,
	// bypassing SendToRoot's sequencing — this IS the reordered wire.
	order := rand.New(rand.NewSource(seed)).Perm(packets)
	for _, i := range order {
		seq := i + 1
		pkt := channel.Packet{
			ChannelID: ch.ID, Type: channel.Results, Seq: seq,
			Rows: rowsPer, Payload: []byte(fmt.Sprintf("batch-%d", seq)),
		}
		body, err := json.Marshal(pkt)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := net.Send("P2", "P1", "chan.packet", body); err != nil {
			t.Fatalf("send seq %d: %v", seq, err)
		}
	}

	mu.Lock()
	for seq := 1; seq <= packets; seq++ {
		if seen[seq] != 1 {
			t.Errorf("seq %d delivered %d times, want exactly once", seq, seen[seq])
		}
	}
	if rows != packets*rowsPer {
		t.Errorf("callback counted %d rows, want %d", rows, packets*rowsPer)
	}
	mu.Unlock()
	if got := ch.RowsReceived(); got != packets*rowsPer {
		t.Errorf("RowsReceived = %d, want %d (no loss, no double count)", got, packets*rowsPer)
	}
	// Every gap has filled: the contiguous watermark reached the top.
	if wm := ch.Watermark(); wm != packets {
		t.Errorf("Watermark = %d, want %d", wm, packets)
	}

	// A replay arriving after the floor passed it must still be dropped.
	late := channel.Packet{ChannelID: ch.ID, Type: channel.Results, Seq: 5, Rows: rowsPer}
	body, _ := json.Marshal(late)
	if err := net.Send("P2", "P1", "chan.packet", body); err != nil {
		t.Fatalf("late replay send: %v", err)
	}
	mu.Lock()
	if seen[5] != 1 {
		t.Errorf("replay of seq 5 delivered %d times, want 1", seen[5])
	}
	mu.Unlock()
	if got := ch.RowsReceived(); got != packets*rowsPer {
		t.Errorf("RowsReceived after replay = %d, want %d", got, packets*rowsPer)
	}
}
