package channel_test

import (
	"sync"
	"testing"

	"sqpeer/internal/channel"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
)

func managers(t testing.TB, net *network.Network, ids ...pattern.PeerID) map[pattern.PeerID]*channel.Manager {
	t.Helper()
	out := map[pattern.PeerID]*channel.Manager{}
	for _, id := range ids {
		out[id] = channel.NewManager(id, net)
	}
	return out
}

func TestOpenSendReceive(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")

	var mu sync.Mutex
	var got []channel.Packet
	ch, err := ms["P1"].Open("P2", func(p channel.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ch.Root != "P1" || ch.Dest != "P2" {
		t.Errorf("channel ends = %s → %s", ch.Root, ch.Dest)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 3, []byte("rows")); err != nil {
		t.Fatalf("SendToRoot: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Done, 0, nil); err != nil {
		t.Fatalf("SendToRoot done: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("received %d packets", len(got))
	}
	if got[0].Type != channel.Results || got[0].Rows != 3 || string(got[0].Payload) != "rows" {
		t.Errorf("packet 0 = %+v", got[0])
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("sequence numbers = %d, %d", got[0].Seq, got[1].Seq)
	}
	if ch.RowsReceived() != 3 {
		t.Errorf("RowsReceived = %d", ch.RowsReceived())
	}
}

func TestOpenToDeadPeerFails(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P3")
	net.Fail("P3")
	if _, err := ms["P1"].Open("P3", nil); err == nil {
		t.Fatal("Open to failed peer succeeded — Figure 7's failed channel scenario requires an error")
	}
}

func TestFailurePacketMarksChannel(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	ch, err := ms["P1"].Open("P2", nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ch.Failed() {
		t.Error("fresh channel reported failed")
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Failure, 0, []byte("peer overloaded")); err != nil {
		t.Fatalf("SendToRoot: %v", err)
	}
	if !ch.Failed() {
		t.Error("Failure packet did not mark the channel")
	}
	ms["P1"].MarkFailed(ch)
	if !ch.Failed() {
		t.Error("MarkFailed did not mark the channel")
	}
}

func TestCloseChannel(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	ch, err := ms["P1"].Open("P2", nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := ms["P1"].OpenChannels(); len(got) != 1 || got[0] != ch.ID {
		t.Errorf("OpenChannels = %v", got)
	}
	ms["P1"].Close(ch)
	if !ch.Closed() {
		t.Error("channel not marked closed")
	}
	if got := ms["P1"].OpenChannels(); len(got) != 0 {
		t.Errorf("OpenChannels after close = %v", got)
	}
	// Destination side forgot the channel: sends now fail.
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 1, nil); err == nil {
		t.Error("SendToRoot on closed channel succeeded")
	}
}

func TestOnOpenHook(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	var hookID string
	var hookRoot pattern.PeerID
	ms["P2"].OnOpen(func(id string, root pattern.PeerID) {
		hookID, hookRoot = id, root
	})
	ch, err := ms["P1"].Open("P2", nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if hookID != ch.ID || hookRoot != "P1" {
		t.Errorf("OnOpen got (%q, %s)", hookID, hookRoot)
	}
}

func TestChannelIDsUniquePerRoot(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2", "P3")
	a, err := ms["P1"].Open("P2", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ms["P1"].Open("P3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Errorf("duplicate channel ids: %s", a.ID)
	}
	if _, ok := ms["P1"].Channel(a.ID); !ok {
		t.Error("Channel lookup failed")
	}
	if _, ok := ms["P1"].Channel("ghost"); ok {
		t.Error("ghost channel found")
	}
}

func TestSendToRootUnknownChannel(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P2")
	if err := ms["P2"].SendToRoot("nope", channel.Results, 0, nil); err == nil {
		t.Error("unknown inbound channel accepted")
	}
}

func TestPacketTypeNames(t *testing.T) {
	names := map[channel.PacketType]string{
		channel.Results: "results", channel.PlanChange: "plan-change",
		channel.Failure: "failure", channel.Stats: "stats", channel.Done: "done",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestPacketsCountedOnNetwork(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")
	ch, _ := ms["P1"].Open("P2", nil)
	net.ResetCounters()
	_ = ms["P2"].SendToRoot(ch.ID, channel.Results, 10, make([]byte, 500))
	c := net.Counters()
	if c.PerKind["chan.packet"] != 1 {
		t.Errorf("PerKind = %v", c.PerKind)
	}
	if c.Bytes < 500 {
		t.Errorf("Bytes = %d, payload not accounted", c.Bytes)
	}
}

// Membership gossip rides upstream packets: the destination's
// GossipSource blob arrives at the root's OnGossip hook attributed to
// the sending peer, and packets without a pending blob carry nothing.
func TestGossipPiggybackOnPackets(t *testing.T) {
	net := network.New()
	ms := managers(t, net, "P1", "P2")

	var mu sync.Mutex
	pending := []byte(`[{"peer":"X","status":2,"incarnation":1}]`)
	ms["P2"].GossipSource = func() []byte {
		mu.Lock()
		defer mu.Unlock()
		b := pending
		pending = nil
		return b
	}
	type gossip struct {
		from pattern.PeerID
		blob string
	}
	var seen []gossip
	ms["P1"].OnGossip = func(from pattern.PeerID, blob []byte) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, gossip{from, string(blob)})
	}

	ch, err := ms["P1"].Open("P2", nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Results, 1, []byte("r")); err != nil {
		t.Fatalf("send 1: %v", err)
	}
	if err := ms["P2"].SendToRoot(ch.ID, channel.Done, 0, nil); err != nil {
		t.Fatalf("send 2: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("OnGossip fired %d times, want 1 (second packet had no blob)", len(seen))
	}
	if seen[0].from != "P2" || seen[0].blob != `[{"peer":"X","status":2,"incarnation":1}]` {
		t.Fatalf("gossip = %+v", seen[0])
	}
	if g := ms["P2"].Stats().GossipPiggybacked; g != 1 {
		t.Fatalf("GossipPiggybacked = %d, want 1", g)
	}
}
