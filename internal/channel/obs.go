package channel

import (
	"sort"

	"sqpeer/internal/obs"
)

// CollectObs publishes the manager's packet accounting into an obs
// gather under the unified naming scheme. Intended to be called from a
// registered snapshot-time collector; the Stats() accessor remains the
// direct compatibility path.
func (s ManagerStats) CollectObs(g *obs.Gather, labels ...obs.Label) {
	g.Count("channel_packets_sent_total", float64(s.PacketsSent), labels...)
	g.Count("channel_payload_bytes_sent_total", float64(s.PayloadBytesSent), labels...)
	g.Count("channel_packets_accepted_total", float64(s.PacketsAccepted), labels...)
	g.Count("channel_packets_duplicate_total", float64(s.PacketsDuplicate), labels...)
	g.Count("channel_window_forced_total", float64(s.WindowForced), labels...)
	g.Count("channel_opens_total", float64(s.ChannelsOpened), labels...)
	g.Count("channel_accepts_total", float64(s.ChannelsAccepted), labels...)
	g.Count("channel_closes_total", float64(s.ChannelsClosed), labels...)
	g.Count("channel_gossip_piggybacked_total", float64(s.GossipPiggybacked), labels...)
	tenants := make([]string, 0, len(s.TenantAccepts))
	for t := range s.TenantAccepts {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		name := t
		if name == "" {
			name = "untagged"
		}
		tl := append(append([]obs.Label{}, labels...), obs.L("tenant", name))
		g.Count("channel_tenant_accepts_total", float64(s.TenantAccepts[t]), tl...)
	}
}
