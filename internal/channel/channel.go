// Package channel implements the ubQL-style communication channels SQPeer
// deploys to execute distributed plans (paper §2.4): each channel has a
// root node (the peer that launched the execution, which manages the
// channel under a locally unique id) and a destination node; data packets
// flow from the destination to the root and carry query results,
// "changing plan" information, failure notices, or statistics useful for
// optimization.
package channel

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
)

// PacketType discriminates channel packet contents.
type PacketType int

const (
	// Results carries (a batch of) query result rows.
	Results PacketType = iota
	// PlanChange carries a replacement (sub)plan during run-time
	// adaptation.
	PlanChange
	// Failure reports that the destination cannot contribute (peer
	// failure, unresolvable subplan).
	Failure
	// Stats carries statistics useful for query optimization.
	Stats
	// Done marks the end of the destination's result stream.
	Done
	// TraceSpans carries the destination's serialized execution-span
	// subtree (obs.SpanRecord) back to the root — a statistics-class
	// packet in the paper's taxonomy (§2.4), shipped only when the root
	// propagated a trace ID in the subplan request.
	TraceSpans
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case Results:
		return "results"
	case PlanChange:
		return "plan-change"
	case Failure:
		return "failure"
	case Stats:
		return "stats"
	case Done:
		return "done"
	case TraceSpans:
		return "trace-spans"
	default:
		return fmt.Sprintf("packet(%d)", int(t))
	}
}

// PlanChangeInfo is the wire body of a PlanChange packet (paper §2.4:
// packets carry "changing plan" information during run-time adaptation).
// Both directions use it: a root announces that a subplan is migrating or
// resuming from a checkpoint, and a destination acknowledges — or rejects
// — a requested resume offset.
type PlanChangeInfo struct {
	// Reason classifies the change: "migrate", "resume-honored",
	// "checkpoint-invalid", "hole-filled".
	Reason string `json:"reason"`
	// Offset is the row checkpoint involved (rows already delivered for
	// resumes; 0 when the stream restarts from scratch).
	Offset int `json:"offset,omitempty"`
	// Subplan, when present, is the serialized replacement subplan.
	Subplan []byte `json:"subplan,omitempty"`
}

// PayloadEnc names the encoding of a packet's Payload, so a root can
// decode Results bodies from peers running either data plane.
type PayloadEnc int

// Payload encodings.
const (
	// EncJSON is the legacy encoding: control bodies and row-at-a-time
	// Results payloads are JSON documents.
	EncJSON PayloadEnc = iota
	// EncBatch marks a Results payload framed by the rql batch codec
	// (length-prefixed binary columns with a per-batch term dictionary).
	EncBatch
)

// Packet is one unit of channel traffic.
type Packet struct {
	// ChannelID identifies the channel at its root.
	ChannelID string `json:"channelId"`
	// Type discriminates Payload.
	Type PacketType `json:"type"`
	// Seq orders packets within the channel.
	Seq int `json:"seq"`
	// Rows is the number of result rows carried (Results packets), used
	// for throughput monitoring.
	Rows int `json:"rows"`
	// Payload is the serialized body; Enc names its encoding (control
	// packets are always EncJSON).
	Payload []byte     `json:"payload"`
	Enc     PayloadEnc `json:"enc,omitempty"`
	// TraceID and SpanID propagate the root's trace context: when the
	// root ships a subplan with a trace ID, the destination binds it to
	// the channel (Manager.BindTrace) and every upstream packet carries
	// it, so remote execution is attributable to the root span that
	// dispatched it.
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
	// Gossip is an opaque membership-gossip blob piggybacked on the
	// packet (Manager.GossipSource/OnGossip): liveness updates ride the
	// result traffic that is flowing anyway, so detection spreads at
	// data-plane rates without extra messages. Dropped with the packet
	// when the dedupe window rejects a replay — gossip merges are
	// monotone, so losing a replayed copy is harmless.
	Gossip []byte `json:"gossip,omitempty"`
}

// seenWindow bounds the out-of-order acceptance window: packets this far
// behind the highest accepted sequence number are treated as replays. The
// destination assigns sequence numbers densely, so a gap wider than this
// can only come from a duplicated delivery of something long since
// processed — and bounding the window keeps the seen-set small.
const seenWindow = 4096

// Channel is the root-side view of one deployed channel.
type Channel struct {
	// ID is the root-locally unique channel id.
	ID string
	// Root manages the channel; Dest is the remote peer.
	Root, Dest pattern.PeerID
	// Tenant and Priority are the QoS headers the channel was opened
	// under (empty/zero for untagged executions).
	Tenant   string
	Priority int

	mu sync.Mutex
	// floor is the contiguous watermark: every sequence number <= floor
	// has been accepted exactly once. seen holds accepted numbers above
	// the floor (out-of-order arrivals waiting for the gap to fill).
	floor  int
	seen   map[int]bool
	closed bool
	failed bool
	// rowsReceived counts result rows for throughput observation.
	rowsReceived int
}

// Failed reports whether the channel observed a failure (destination down
// or Failure packet received).
func (c *Channel) Failed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Closed reports whether the channel has been closed by its root.
func (c *Channel) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// RowsReceived returns the number of result rows that arrived so far.
func (c *Channel) RowsReceived() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rowsReceived
}

// Watermark returns the channel's contiguous sequence watermark: every
// packet numbered <= Watermark() has been accepted exactly once. This is
// the checkpoint the plan-change protocol resumes from.
func (c *Channel) Watermark() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.floor
}

// accept decides whether a packet sequence number is new (true) or a
// replayed duplicate (false), maintaining the bounded seen-window that
// distinguishes late arrivals from replays. forced counts how many
// floor slots the bounded window pushed past without a contiguous fill
// (observability: a nonzero forced rate means the window is too small
// for the reordering in play). Callers hold c.mu.
func (c *Channel) accept(seq int) (ok bool, forced int) {
	if seq <= c.floor || c.seen[seq] {
		return false, 0 // replay of an already-accepted packet
	}
	if c.seen == nil {
		c.seen = map[int]bool{}
	}
	c.seen[seq] = true
	// Advance the contiguous watermark over any gap that just filled.
	for c.seen[c.floor+1] {
		c.floor++
		delete(c.seen, c.floor)
	}
	// Bound the window: force the floor forward so it never trails the
	// newest accepted number by more than seenWindow. Anything below the
	// new floor is deemed replayed from then on.
	for seq-c.floor > seenWindow {
		c.floor++
		forced++
		delete(c.seen, c.floor)
	}
	return true, forced
}

// openReq is the wire body of a channel-open request. Tenant and
// Priority are the QoS headers of the execution deploying the channel:
// the destination accounts accepted channels per tenant, and serving
// peers apply the same admission class the root charged at its facade.
type openReq struct {
	ChannelID string         `json:"channelId"`
	Root      pattern.PeerID `json:"root"`
	Tenant    string         `json:"tenant,omitempty"`
	Priority  int            `json:"priority,omitempty"`
}

// Manager is one peer's channel endpoint: it opens channels as root,
// accepts them as destination, dispatches inbound packets to per-channel
// callbacks, and ships packets upstream when acting as a destination.
type Manager struct {
	self pattern.PeerID
	net  *network.Network

	// DeadlineMS, when positive, bounds every channel delivery (opens and
	// packets) on the simulated clock: a leg slower than this fails with a
	// transient error instead of blocking the sender (see
	// network.SendWithin).
	DeadlineMS float64

	// GossipSource, when set, is polled before each upstream packet; a
	// non-nil blob is piggybacked as Packet.Gossip. OnGossip, when set,
	// receives the blob (and the sending peer) on the root side of every
	// accepted packet that carries one. Both must be wired before the
	// manager carries traffic; they are invoked outside manager locks.
	GossipSource func() []byte
	OnGossip     func(from pattern.PeerID, blob []byte)

	// Events, when set, receives channel-plane operations events
	// (dedupe drops, plan-change arrivals). Wired once before traffic,
	// like GossipSource; a nil log is inert.
	Events *obs.EventLog

	mu       sync.Mutex
	nextID   int
	channels map[string]*Channel                  // channels rooted here
	onPacket map[string]func(Packet)              // root-side packet callbacks
	inbound  map[string]pattern.PeerID            // channelID -> root (dest side)
	outSeq   map[string]int                       // channelID -> last sent seq (dest side)
	trace    map[string]traceBinding              // channelID -> trace context (dest side)
	onOpen   func(id string, root pattern.PeerID) // dest-side accept hook
	stats    ManagerStats
}

// traceBinding is the dest-side trace context stamped onto every
// upstream packet of a channel.
type traceBinding struct {
	traceID, spanID string
}

// ManagerStats is the manager's packet accounting: the seq-window and
// dedupe counters that used to live only as per-channel state, published
// to the obs registry via CollectObs.
type ManagerStats struct {
	// PacketsSent counts upstream packets shipped as destination;
	// PayloadBytesSent sums their payload sizes, making wire-format
	// savings (JSON rows vs binary batches) visible in the registry.
	PacketsSent      int
	PayloadBytesSent int
	// PacketsAccepted / PacketsDuplicate count root-side packet
	// arrivals split by the dedupe verdict; WindowForced counts floor
	// slots the bounded seen-window skipped without a contiguous fill.
	PacketsAccepted  int
	PacketsDuplicate int
	WindowForced     int
	// ChannelsOpened counts root-side opens; ChannelsAccepted dest-side
	// accepts; ChannelsClosed root-side closes.
	ChannelsOpened   int
	ChannelsAccepted int
	ChannelsClosed   int
	// GossipPiggybacked counts upstream packets that carried a membership
	// gossip blob.
	GossipPiggybacked int
	// TenantAccepts splits dest-side accepts by the open request's
	// tenant header (untagged opens count under ""), the per-tenant
	// serving-load view the fairness metrics draw on.
	TenantAccepts map[string]int
}

// NewManager wires a manager for peer self into the network, registering
// the chan.* message handlers.
func NewManager(self pattern.PeerID, net *network.Network) *Manager {
	m := &Manager{
		self:     self,
		net:      net,
		channels: map[string]*Channel{},
		onPacket: map[string]func(Packet){},
		inbound:  map[string]pattern.PeerID{},
		outSeq:   map[string]int{},
		trace:    map[string]traceBinding{},
	}
	net.AddNode(self)
	net.Handle(self, "chan.open", m.handleOpen)
	net.Handle(self, "chan.packet", m.handlePacket)
	net.Handle(self, "chan.close", m.handleClose)
	return m
}

// Self returns the peer this manager belongs to.
func (m *Manager) Self() pattern.PeerID { return m.self }

// Stats returns a copy of the manager's packet accounting.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.stats
	if m.stats.TenantAccepts != nil {
		snap.TenantAccepts = make(map[string]int, len(m.stats.TenantAccepts))
		for t, n := range m.stats.TenantAccepts {
			snap.TenantAccepts[t] = n
		}
	}
	return snap
}

// BindTrace attaches a trace context to an inbound channel (this peer is
// the destination): every subsequent upstream packet carries the trace
// and span IDs. Unbinding happens automatically at channel close.
func (m *Manager) BindTrace(channelID, traceID, spanID string) {
	if traceID == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trace[channelID] = traceBinding{traceID: traceID, spanID: spanID}
}

// OnOpen registers a destination-side hook invoked when a remote root
// opens a channel to this peer.
func (m *Manager) OnOpen(fn func(id string, root pattern.PeerID)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onOpen = fn
}

// Open deploys a channel from this peer (the root) to dest. onPacket, if
// non-nil, receives every packet the destination sends back.
func (m *Manager) Open(dest pattern.PeerID, onPacket func(Packet)) (*Channel, error) {
	return m.OpenAs(dest, "", 0, onPacket)
}

// OpenAs is Open with QoS headers: the deploying execution's tenant and
// priority ride the open request so the destination can account and
// admit per class before any subplan work arrives.
func (m *Manager) OpenAs(dest pattern.PeerID, tenant string, priority int, onPacket func(Packet)) (*Channel, error) {
	m.mu.Lock()
	m.nextID++
	id := fmt.Sprintf("%s#%d", m.self, m.nextID)
	m.mu.Unlock()

	body, err := json.Marshal(openReq{ChannelID: id, Root: m.self, Tenant: tenant, Priority: priority})
	if err != nil {
		return nil, fmt.Errorf("channel: marshal open: %w", err)
	}
	if _, err := m.net.CallWithin(m.self, dest, "chan.open", body, m.DeadlineMS); err != nil {
		return nil, fmt.Errorf("channel: open to %s: %w", dest, err)
	}
	ch := &Channel{ID: id, Root: m.self, Dest: dest, Tenant: tenant, Priority: priority}
	m.mu.Lock()
	m.channels[id] = ch
	if onPacket != nil {
		m.onPacket[id] = onPacket
	}
	m.stats.ChannelsOpened++
	m.mu.Unlock()
	return ch, nil
}

// Close tears the channel down, notifying the destination (best effort:
// a dead destination is fine). The notification is deadline-bounded like
// every other channel delivery — a gray destination must not be able to
// hang the cleanup path past DeadlineMS.
func (m *Manager) Close(ch *Channel) {
	ch.mu.Lock()
	ch.closed = true
	ch.mu.Unlock()
	body, _ := json.Marshal(openReq{ChannelID: ch.ID, Root: m.self})
	_ = m.net.SendWithin(m.self, ch.Dest, "chan.close", body, m.DeadlineMS) // best effort
	m.mu.Lock()
	delete(m.channels, ch.ID)
	delete(m.onPacket, ch.ID)
	m.stats.ChannelsClosed++
	m.mu.Unlock()
}

// MarkFailed records a channel failure at the root (e.g. the open
// succeeded but a later send to the destination errored).
func (m *Manager) MarkFailed(ch *Channel) {
	ch.mu.Lock()
	ch.failed = true
	ch.mu.Unlock()
}

// Channel returns the root-side channel with the given id.
func (m *Manager) Channel(id string) (*Channel, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.channels[id]
	return ch, ok
}

// OpenChannels returns ids of channels rooted at this peer, sorted.
func (m *Manager) OpenChannels() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.channels))
	for id := range m.channels {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SendToRoot ships a packet upstream on an inbound channel (this peer is
// the destination). The packet's sequence number is assigned here, before
// the wire, so a duplicated delivery carries the same Seq and the root
// can suppress it (at-least-once transport, exactly-once packets).
func (m *Manager) SendToRoot(channelID string, typ PacketType, rows int, payload []byte) error {
	return m.SendToRootEnc(channelID, typ, rows, EncJSON, payload)
}

// SendToRootEnc is SendToRoot with an explicit payload encoding; the
// batched data plane uses it to ship EncBatch Results frames. The send is
// synchronous — the simulated transport delivers before returning — so a
// pooled payload buffer may be recycled as soon as this returns.
func (m *Manager) SendToRootEnc(channelID string, typ PacketType, rows int, enc PayloadEnc, payload []byte) error {
	m.mu.Lock()
	root, ok := m.inbound[channelID]
	var seq int
	var tb traceBinding
	if ok {
		m.outSeq[channelID]++
		seq = m.outSeq[channelID]
		tb = m.trace[channelID]
		m.stats.PacketsSent++
		m.stats.PayloadBytesSent += len(payload)
	}
	gossipSrc := m.GossipSource
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("channel: %s: unknown inbound channel %q", m.self, channelID)
	}
	var gossip []byte
	if gossipSrc != nil {
		if gossip = gossipSrc(); gossip != nil {
			m.mu.Lock()
			m.stats.GossipPiggybacked++
			m.mu.Unlock()
		}
	}
	pkt := Packet{ChannelID: channelID, Type: typ, Seq: seq, Rows: rows, Payload: payload,
		Enc: enc, TraceID: tb.traceID, SpanID: tb.spanID, Gossip: gossip}
	body, err := json.Marshal(pkt)
	if err != nil {
		return fmt.Errorf("channel: marshal packet: %w", err)
	}
	if err := m.net.SendWithin(m.self, root, "chan.packet", body, m.DeadlineMS); err != nil {
		return fmt.Errorf("channel: send to root %s: %w", root, err)
	}
	return nil
}

func (m *Manager) handleOpen(msg network.Message) ([]byte, error) {
	var req openReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return nil, fmt.Errorf("channel: bad open request: %w", err)
	}
	m.mu.Lock()
	m.inbound[req.ChannelID] = req.Root
	m.stats.ChannelsAccepted++
	if m.stats.TenantAccepts == nil {
		m.stats.TenantAccepts = map[string]int{}
	}
	m.stats.TenantAccepts[req.Tenant]++
	hook := m.onOpen
	m.mu.Unlock()
	if hook != nil {
		hook(req.ChannelID, req.Root)
	}
	return []byte("ok"), nil
}

func (m *Manager) handlePacket(msg network.Message) ([]byte, error) {
	var pkt Packet
	if err := json.Unmarshal(msg.Payload, &pkt); err != nil {
		return nil, fmt.Errorf("channel: bad packet: %w", err)
	}
	m.mu.Lock()
	ch := m.channels[pkt.ChannelID]
	cb := m.onPacket[pkt.ChannelID]
	m.mu.Unlock()
	if ch == nil {
		return nil, fmt.Errorf("channel: %s: packet for unknown channel %q", m.self, pkt.ChannelID)
	}
	ch.mu.Lock()
	ok, forced := ch.accept(pkt.Seq)
	if !ok {
		// Duplicate delivery (at-least-once transport): the destination
		// stamped this sequence number once; drop the replay. A late
		// arrival reordered by a delay spike is NOT a duplicate — accept
		// tells them apart via the bounded seen-window.
		ch.mu.Unlock()
		m.mu.Lock()
		m.stats.PacketsDuplicate++
		m.mu.Unlock()
		// One "dedupe" event per PacketsDuplicate increment — the
		// event↔counter reconciliation invariant for this plane.
		m.Events.Emit("channel", "dedupe", string(m.self), pkt.TraceID,
			obs.A("channel", pkt.ChannelID), obs.A("seq", strconv.Itoa(pkt.Seq)),
			obs.A("from", string(msg.From)))
		return nil, nil
	}
	if pkt.Type == Results {
		ch.rowsReceived += pkt.Rows
	}
	if pkt.Type == Failure {
		ch.failed = true
	}
	ch.mu.Unlock()
	m.mu.Lock()
	m.stats.PacketsAccepted++
	m.stats.WindowForced += forced
	onGossip := m.OnGossip
	m.mu.Unlock()
	if len(pkt.Gossip) > 0 && onGossip != nil {
		onGossip(msg.From, pkt.Gossip)
	}
	if pkt.Type == PlanChange {
		m.Events.Emit("channel", "plan-change", string(m.self), pkt.TraceID,
			obs.A("channel", pkt.ChannelID), obs.A("from", string(msg.From)))
	}
	if cb != nil {
		cb(pkt)
	}
	return nil, nil
}

func (m *Manager) handleClose(msg network.Message) ([]byte, error) {
	var req openReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return nil, fmt.Errorf("channel: bad close request: %w", err)
	}
	m.mu.Lock()
	delete(m.inbound, req.ChannelID)
	delete(m.outSeq, req.ChannelID)
	delete(m.trace, req.ChannelID)
	m.mu.Unlock()
	return nil, nil
}
