package rvl

import (
	"fmt"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// CompiledView is a semantically analyzed view: head atoms resolved to
// schema classes/properties and the body compiled like an RQL query.
type CompiledView struct {
	// View is the parsed definition.
	View *ViewDef
	// Schema is the community schema the view advertises against.
	Schema *rdf.Schema
	// ClassAtoms maps head class IRIs to the variable they bind.
	ClassAtoms map[rdf.IRI]string
	// PropAtoms maps head property IRIs to their two variables.
	PropAtoms map[rdf.IRI][2]string
	// Body is the body compiled against the schema (pattern + filters).
	Body *rql.Compiled
}

// Analyze resolves the view against the community schema: head names must
// be declared classes/properties, head variables must be bound by the
// body, and for property atoms the variables' body-inferred classes must
// refine the property's declared domain and range.
func Analyze(v *ViewDef, schema *rdf.Schema) (*CompiledView, error) {
	// Compile the body by borrowing RQL analysis: SELECT * FROM body.
	bodyQuery := &rql.Query{From: v.From, Where: v.Where, Namespaces: v.Namespaces}
	body, err := rql.Analyze(bodyQuery, schema)
	if err != nil {
		return nil, fmt.Errorf("rvl: view body: %w", err)
	}
	cv := &CompiledView{
		View:       v,
		Schema:     schema,
		ClassAtoms: map[rdf.IRI]string{},
		PropAtoms:  map[rdf.IRI][2]string{},
		Body:       body,
	}
	bound := map[string]rdf.IRI{} // var -> most specific class seen in body
	for _, p := range body.Pattern.Patterns {
		noteVarClass(schema, bound, p.SubjectVar, p.Domain)
		noteVarClass(schema, bound, p.ObjectVar, p.Range)
	}
	for _, atom := range v.Head {
		name, err := v.Namespaces.Expand(atom.Name)
		if err != nil {
			return nil, fmt.Errorf("rvl: VIEW atom %s: %w", atom, err)
		}
		for _, av := range atom.Vars {
			if _, ok := bound[av]; !ok {
				return nil, fmt.Errorf("rvl: VIEW atom %s: variable %s not bound by the FROM clause", atom, av)
			}
		}
		if atom.IsClassAtom() {
			if !schema.HasClass(name) {
				return nil, fmt.Errorf("rvl: VIEW atom %s: class %s not declared in schema %s", atom, name, schema.Name)
			}
			cv.ClassAtoms[name] = atom.Vars[0]
			continue
		}
		def, ok := schema.PropertyByName(name)
		if !ok {
			return nil, fmt.Errorf("rvl: VIEW atom %s: property %s not declared in schema %s", atom, name, schema.Name)
		}
		subjClass, objClass := bound[atom.Vars[0]], bound[atom.Vars[1]]
		if !schema.IsSubClassOf(subjClass, def.Domain) {
			return nil, fmt.Errorf("rvl: VIEW atom %s: subject class %s is not subsumed by the property's domain %s",
				atom, subjClass, def.Domain)
		}
		if !isLiteralType(def.Range) && !schema.IsSubClassOf(objClass, def.Range) {
			return nil, fmt.Errorf("rvl: VIEW atom %s: object class %s is not subsumed by the property's range %s",
				atom, objClass, def.Range)
		}
		cv.PropAtoms[name] = [2]string{atom.Vars[0], atom.Vars[1]}
	}
	if len(cv.ClassAtoms) == 0 && len(cv.PropAtoms) == 0 {
		return nil, fmt.Errorf("rvl: view has an empty head")
	}
	return cv, nil
}

func isLiteralType(c rdf.IRI) bool {
	return c == rdf.RDFSLiteral || c == rdf.XSDString || c == rdf.XSDInteger
}

// noteVarClass keeps the most specific class observed for a variable.
func noteVarClass(schema *rdf.Schema, bound map[string]rdf.IRI, v string, class rdf.IRI) {
	cur, ok := bound[v]
	if !ok || schema.IsSubClassOf(class, cur) {
		bound[v] = class
	}
}

// Materialize evaluates the view body over the base and emits the head's
// instances into a fresh base: typing triples for class atoms and
// statement triples for property atoms. This is the "populated on demand"
// path of the paper's virtual scenario, and also how a peer refreshes a
// materialized view.
func (cv *CompiledView) Materialize(base *rdf.Base) (*rdf.Base, error) {
	rows, err := rql.Eval(cv.Body, base)
	if err != nil {
		return nil, fmt.Errorf("rvl: materialize: %w", err)
	}
	out := rdf.NewBase()
	for _, row := range rows.Rows {
		for class, v := range cv.ClassAtoms {
			if t, ok := row[v]; ok && t.IsIRI() {
				out.Add(rdf.Typing(t.IRI(), class))
			}
		}
		for prop, vars := range cv.PropAtoms {
			s, sok := row[vars[0]]
			o, ook := row[vars[1]]
			if sok && ook && s.IsIRI() {
				out.Add(rdf.Triple{S: s, P: rdf.NewIRI(prop), O: o})
			}
		}
	}
	return out, nil
}

// ActiveSchema derives the advertisement the view induces: every head
// class and property is declared populated (or populatable), with property
// end-points narrowed to the classes the body binds the head variables to.
// This is the intensional reading of §2.2 — no data is touched.
func (cv *CompiledView) ActiveSchema() *pattern.ActiveSchema {
	a := pattern.NewActiveSchema(cv.Schema.Name)
	bound := map[string]rdf.IRI{}
	for _, p := range cv.Body.Pattern.Patterns {
		noteVarClass(cv.Schema, bound, p.SubjectVar, p.Domain)
		noteVarClass(cv.Schema, bound, p.ObjectVar, p.Range)
	}
	for prop, vars := range cv.PropAtoms {
		domain, rng := bound[vars[0]], bound[vars[1]]
		if err := a.AddPropertyPattern(prop, domain, rng); err != nil {
			// Unreachable: Analyze validated the schema memberships.
			panic(err)
		}
	}
	for class := range cv.ClassAtoms {
		a.AddClass(class)
	}
	return a
}

// ParseAndAnalyze parses RVL source and analyzes every view against the
// schema.
func ParseAndAnalyze(src string, schema *rdf.Schema) ([]*CompiledView, error) {
	views, err := Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]*CompiledView, 0, len(views))
	for i, v := range views {
		cv, err := Analyze(v, schema)
		if err != nil {
			return nil, fmt.Errorf("rvl: view %d: %w", i+1, err)
		}
		out = append(out, cv)
	}
	return out, nil
}

// CombinedActiveSchema merges the active-schemas of several compiled
// views — a peer advertising through multiple views publishes their union.
func CombinedActiveSchema(views []*CompiledView) *pattern.ActiveSchema {
	if len(views) == 0 {
		return pattern.NewActiveSchema("")
	}
	acc := views[0].ActiveSchema()
	for _, v := range views[1:] {
		next := v.ActiveSchema()
		for _, p := range next.Patterns {
			if err := acc.AddPropertyPattern(p.Property, p.Domain, p.Range); err != nil {
				panic(err)
			}
		}
		for _, c := range next.Classes {
			acc.AddClass(c)
		}
	}
	return acc
}
