// Package rvl implements the fragment of the RDF View Language SQPeer
// uses to advertise peer bases (paper §2.2): VIEW statements that populate
// classes and properties of a community RDF/S schema from a peer's base.
// A view's head declares what is (or can be) populated — which is exactly
// the peer's active-schema — and its body says how to compute the
// instances, either from a materialized RDF base or, through the swim
// package, from a virtual relational/XML base.
package rvl

import (
	"fmt"
	"strings"

	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// HeadAtom is one element of a VIEW clause: a class atom C(X) or a
// property atom prop(X, Y).
type HeadAtom struct {
	// Name is the qualified name of the class or property.
	Name string
	// Vars holds one variable for class atoms, two for property atoms.
	Vars []string
}

// IsClassAtom reports whether the atom populates a class.
func (h HeadAtom) IsClassAtom() bool { return len(h.Vars) == 1 }

// String renders the atom in RVL syntax.
func (h HeadAtom) String() string {
	return h.Name + "(" + strings.Join(h.Vars, ", ") + ")"
}

// ViewDef is a parsed RVL view statement:
//
//	[CREATE NAMESPACE p = &iri&]
//	VIEW head (, head)*
//	FROM pathExpr (, pathExpr)*
//	[WHERE cond (AND cond)*]
//	[USING NAMESPACE p = &iri&]
type ViewDef struct {
	// Head is the VIEW clause: the populated classes and properties.
	Head []HeadAtom
	// From is the body: path expressions over the peer's base.
	From []rql.PathExpr
	// Where filters body bindings.
	Where []rql.Condition
	// Namespaces holds CREATE NAMESPACE and USING NAMESPACE bindings.
	Namespaces *rdf.Namespaces
}

// String renders the view in RVL concrete syntax.
func (v *ViewDef) String() string {
	var b strings.Builder
	b.WriteString("VIEW ")
	heads := make([]string, len(v.Head))
	for i, h := range v.Head {
		heads[i] = h.String()
	}
	b.WriteString(strings.Join(heads, ", "))
	b.WriteString(" FROM ")
	froms := make([]string, len(v.From))
	for i, f := range v.From {
		froms[i] = f.String()
	}
	b.WriteString(strings.Join(froms, ", "))
	if v.Namespaces != nil {
		for _, prefix := range v.Namespaces.Prefixes() {
			iri, _ := v.Namespaces.Resolve(prefix)
			fmt.Fprintf(&b, " USING NAMESPACE %s = &%s&", prefix, iri)
		}
	}
	return b.String()
}

// Parse parses one or more RVL view statements from src.
func Parse(src string) ([]*ViewDef, error) {
	toks, err := rql.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := rql.NewParser(toks)
	var views []*ViewDef
	for p.PeekTok().Kind != rql.TokEOF {
		v, err := parseView(p)
		if err != nil {
			return nil, err
		}
		views = append(views, v)
	}
	if len(views) == 0 {
		return nil, fmt.Errorf("rvl: no view statements in input")
	}
	return views, nil
}

func parseView(p *rql.Parser) (*ViewDef, error) {
	v := &ViewDef{Namespaces: rdf.NewNamespaces()}
	// Optional CREATE NAMESPACE prefix declarations.
	for p.PeekTok().Kind == rql.TokCreate {
		p.NextTok()
		if _, err := p.ExpectTok(rql.TokNamespace); err != nil {
			return nil, fmt.Errorf("rvl: in CREATE NAMESPACE: %w", err)
		}
		prefix, err := p.ExpectTok(rql.TokIdent)
		if err != nil {
			return nil, fmt.Errorf("rvl: in CREATE NAMESPACE: %w", err)
		}
		if _, err := p.ExpectTok(rql.TokEq); err != nil {
			return nil, err
		}
		iri, err := p.ExpectTok(rql.TokIRIRef)
		if err != nil {
			return nil, fmt.Errorf("rvl: in CREATE NAMESPACE: %w", err)
		}
		v.Namespaces.Bind(prefix.Text, iri.Text)
	}
	if _, err := p.ExpectTok(rql.TokView); err != nil {
		return nil, fmt.Errorf("rvl: %w", err)
	}
	for {
		atom, err := parseHeadAtom(p)
		if err != nil {
			return nil, err
		}
		v.Head = append(v.Head, atom)
		if p.PeekTok().Kind != rql.TokComma {
			break
		}
		p.NextTok()
	}
	if _, err := p.ExpectTok(rql.TokFrom); err != nil {
		return nil, fmt.Errorf("rvl: %w", err)
	}
	for {
		pe, err := p.PathExpr()
		if err != nil {
			return nil, fmt.Errorf("rvl: in FROM clause: %w", err)
		}
		v.From = append(v.From, pe)
		if p.PeekTok().Kind != rql.TokComma {
			break
		}
		p.NextTok()
	}
	if err := p.UsingNamespace(v.Namespaces); err != nil {
		return nil, fmt.Errorf("rvl: %w", err)
	}
	return v, nil
}

func parseHeadAtom(p *rql.Parser) (HeadAtom, error) {
	name := p.PeekTok()
	if name.Kind != rql.TokQName && name.Kind != rql.TokIdent {
		return HeadAtom{}, fmt.Errorf("rvl: expected class or property name in VIEW clause, got %s", name)
	}
	p.NextTok()
	if _, err := p.ExpectTok(rql.TokLParen); err != nil {
		return HeadAtom{}, err
	}
	atom := HeadAtom{Name: name.Text}
	for {
		v, err := p.ExpectTok(rql.TokIdent)
		if err != nil {
			return HeadAtom{}, fmt.Errorf("rvl: in VIEW atom %s: %w", name.Text, err)
		}
		atom.Vars = append(atom.Vars, v.Text)
		if p.PeekTok().Kind != rql.TokComma {
			break
		}
		p.NextTok()
	}
	if _, err := p.ExpectTok(rql.TokRParen); err != nil {
		return HeadAtom{}, err
	}
	if len(atom.Vars) < 1 || len(atom.Vars) > 2 {
		return HeadAtom{}, fmt.Errorf("rvl: VIEW atom %s has %d variables, want 1 (class) or 2 (property)",
			atom.Name, len(atom.Vars))
	}
	return atom, nil
}
