package rvl_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rvl"
)

func TestParsePaperView(t *testing.T) {
	views, err := rvl.Parse(gen.PaperRVL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(views) != 1 {
		t.Fatalf("got %d views", len(views))
	}
	v := views[0]
	if len(v.Head) != 3 {
		t.Fatalf("head atoms = %v", v.Head)
	}
	if !v.Head[0].IsClassAtom() || v.Head[0].Name != "n1:C5" || v.Head[0].Vars[0] != "X" {
		t.Errorf("head[0] = %+v", v.Head[0])
	}
	if v.Head[2].IsClassAtom() || v.Head[2].Name != "n1:prop4" || len(v.Head[2].Vars) != 2 {
		t.Errorf("head[2] = %+v", v.Head[2])
	}
	if len(v.From) != 1 || v.From[0].Property != "n1:prop4" {
		t.Errorf("from = %+v", v.From)
	}
	if iri, ok := v.Namespaces.Resolve("mv"); !ok || iri != "http://ics.forth.gr/views/v1#" {
		t.Errorf("CREATE NAMESPACE mv = %q, %v", iri, ok)
	}
	if iri, ok := v.Namespaces.Resolve("n1"); !ok || iri != gen.PaperNS {
		t.Errorf("USING NAMESPACE n1 = %q, %v", iri, ok)
	}
	if out := v.String(); !strings.Contains(out, "VIEW n1:C5(X), n1:C6(Y), n1:prop4(X, Y)") {
		t.Errorf("String() = %s", out)
	}
}

func TestParseViewErrors(t *testing.T) {
	bad := []string{
		``,
		`VIEW`,
		`VIEW n1:C5 FROM {X}n1:p{Y}`,         // missing parens
		`VIEW n1:C5() FROM {X}n1:p{Y}`,       // no vars
		`VIEW n1:p(X, Y, Z) FROM {X}n1:p{Y}`, // 3 vars
		`VIEW n1:C5(X)`,                      // missing FROM
		`VIEW n1:C5(X) FROM`,                 // empty FROM
		`CREATE NAMESPACE VIEW n1:C5(X) FROM {X}p{Y}`,          // bad CREATE
		`CREATE NAMESPACE mv = "x" VIEW n1:C5(X) FROM {X}p{Y}`, // IRI not &..&
	}
	for _, src := range bad {
		if _, err := rvl.Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted malformed view", src)
		}
	}
}

func TestAnalyzePaperView(t *testing.T) {
	schema := gen.PaperSchema()
	cvs, err := rvl.ParseAndAnalyze(gen.PaperRVL, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	cv := cvs[0]
	if v, ok := cv.ClassAtoms[gen.N1("C5")]; !ok || v != "X" {
		t.Errorf("ClassAtoms = %v", cv.ClassAtoms)
	}
	if vars, ok := cv.PropAtoms[gen.N1("prop4")]; !ok || vars != [2]string{"X", "Y"} {
		t.Errorf("PropAtoms = %v", cv.PropAtoms)
	}
}

func TestAnalyzeViewErrors(t *testing.T) {
	schema := gen.PaperSchema()
	ns := ` USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	cases := []struct {
		name, src, want string
	}{
		{"unknown head class", `VIEW n1:Cnone(X) FROM {X}n1:prop1{Y}` + ns, "not declared"},
		{"unknown head property", `VIEW n1:propnone(X, Y) FROM {X}n1:prop1{Y}` + ns, "not declared"},
		{"unbound head var", `VIEW n1:C1(W) FROM {X}n1:prop1{Y}` + ns, "not bound"},
		{"domain violation", `VIEW n1:prop4(X, Y) FROM {X}n1:prop1{Y}` + ns, "not subsumed"},
		{"bad body property", `VIEW n1:C1(X) FROM {X}n1:ghost{Y}` + ns, "not declared"},
	}
	for _, c := range cases {
		if _, err := rvl.ParseAndAnalyze(c.src, schema); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMaterializePaperView(t *testing.T) {
	schema := gen.PaperSchema()
	cvs, err := rvl.ParseAndAnalyze(gen.PaperRVL, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	base := rdf.NewBase()
	base.Add(rdf.Statement("http://d#a", gen.N1("prop4"), "http://d#b"))
	base.Add(rdf.Statement("http://d#c", gen.N1("prop4"), "http://d#d"))
	base.Add(rdf.Statement("http://d#e", gen.N1("prop1"), "http://d#f")) // not prop4: excluded

	view, err := cvs[0].Materialize(base)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// 2 rows × (C5 typing + C6 typing + prop4 triple) = 6 triples.
	if view.Len() != 6 {
		t.Fatalf("materialized view has %d triples, want 6:\n%s", view.Len(), rdf.FormatTriples(view.Triples()))
	}
	if !view.Has(rdf.Typing("http://d#a", gen.N1("C5"))) {
		t.Error("missing C5 typing for subject")
	}
	if !view.Has(rdf.Typing("http://d#b", gen.N1("C6"))) {
		t.Error("missing C6 typing for object")
	}
	if !view.Has(rdf.Statement("http://d#a", gen.N1("prop4"), "http://d#b")) {
		t.Error("missing prop4 statement")
	}
	if view.Has(rdf.Statement("http://d#e", gen.N1("prop4"), "http://d#f")) {
		t.Error("prop1 pair leaked into prop4 view")
	}
}

func TestViewActiveSchemaMatchesFigure1(t *testing.T) {
	schema := gen.PaperSchema()
	cvs, err := rvl.ParseAndAnalyze(gen.PaperRVL, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	a := cvs[0].ActiveSchema()
	if !a.HasProperty(gen.N1("prop4")) {
		t.Errorf("active-schema missing prop4: %s", a)
	}
	if a.HasProperty(gen.N1("prop1")) {
		t.Errorf("active-schema must not claim prop1: %s", a)
	}
	if !a.HasClass(gen.N1("C5")) || !a.HasClass(gen.N1("C6")) {
		t.Errorf("active-schema missing classes: %s", a)
	}
	// End-points of the advertised prop4 pattern are C5 → C6.
	if p := a.Patterns[0]; p.Domain != gen.N1("C5") || p.Range != gen.N1("C6") {
		t.Errorf("prop4 advertisement end-points = %+v", p)
	}
}

func TestCombinedActiveSchema(t *testing.T) {
	schema := gen.PaperSchema()
	src := `VIEW n1:prop1(X, Y) FROM {X}n1:prop1{Y} USING NAMESPACE n1 = &` + gen.PaperNS + `&
VIEW n1:prop2(Y, Z) FROM {Y}n1:prop2{Z} USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	cvs, err := rvl.ParseAndAnalyze(src, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if len(cvs) != 2 {
		t.Fatalf("got %d views", len(cvs))
	}
	a := rvl.CombinedActiveSchema(cvs)
	if !a.HasProperty(gen.N1("prop1")) || !a.HasProperty(gen.N1("prop2")) {
		t.Errorf("combined = %s", a)
	}
	if got := rvl.CombinedActiveSchema(nil); got.Size() != 0 {
		t.Error("empty combination should be empty")
	}
}

func TestMaterializeWithWhereFilter(t *testing.T) {
	schema := rdf.NewSchema("http://s#")
	schema.MustAddClass("http://s#Doc")
	schema.MustAddProperty("http://s#year", "http://s#Doc", rdf.XSDInteger)

	base := rdf.NewBase()
	base.Add(rdf.Triple{S: rdf.NewIRI("http://d#1"), P: rdf.NewIRI("http://s#year"), O: rdf.NewTypedLiteral("2004", rdf.XSDInteger)})
	base.Add(rdf.Triple{S: rdf.NewIRI("http://d#2"), P: rdf.NewIRI("http://s#year"), O: rdf.NewTypedLiteral("1990", rdf.XSDInteger)})

	// WHERE in view bodies narrows what is populated.
	views, err := rvl.Parse(`VIEW s:Doc(X) FROM {X}s:year{Y} USING NAMESPACE s = &http://s#&`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	views[0].Where = nil // no filter: both docs
	cv, err := rvl.Analyze(views[0], schema)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	all, err := cv.Materialize(base)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if all.Len() != 2 {
		t.Errorf("unfiltered view = %d triples", all.Len())
	}
}
