package membership

import "sqpeer/internal/obs"

// CollectObs publishes the detector's counters into an obs gather under
// the unified naming scheme — suspicion and convergence traffic become
// first-class metrics next to routing and channel accounting.
func (s Stats) CollectObs(g *obs.Gather, labels ...obs.Label) {
	g.Count("member_ticks_total", float64(s.Ticks), labels...)
	g.Count("member_pings_total", float64(s.Pings), labels...)
	g.Count("member_ping_acks_total", float64(s.PingAcks), labels...)
	g.Count("member_ping_fails_total", float64(s.PingFails), labels...)
	g.Count("member_indirect_reqs_total", float64(s.IndirectReqs), labels...)
	g.Count("member_indirect_acks_total", float64(s.IndirectAcks), labels...)
	g.Count("member_suspects_total", float64(s.Suspects), labels...)
	g.Count("member_refutations_total", float64(s.Refutations), labels...)
	g.Count("member_confirmed_dead_total", float64(s.ConfirmedDead), labels...)
	g.Count("member_rejoins_total", float64(s.Rejoins), labels...)
	g.Count("member_self_rejoins_total", float64(s.SelfRejoins), labels...)
	g.Count("member_dead_retries_total", float64(s.DeadRetries), labels...)
	g.Count("member_sync_calls_total", float64(s.SyncCalls), labels...)
	g.Count("member_sync_served_total", float64(s.SyncServed), labels...)
	g.Count("member_sync_pushes_total", float64(s.SyncPushes), labels...)
	g.Count("member_entries_applied_total", float64(s.EntriesApplied), labels...)
	g.Count("member_adv_applied_total", float64(s.AdvApplied), labels...)
	g.Count("member_gossip_sent_total", float64(s.GossipSent), labels...)
}
