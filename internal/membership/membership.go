// Package membership implements decentralized membership for SQPeer: a
// deterministic SWIM-style failure detector (direct ping, indirect
// ping-req, suspicion with a bounded timeout, confirm-dead) combined
// with incarnation numbers so a falsely suspected peer refutes and a
// restarted peer rejoins, plus an anti-entropy layer (antientropy.go)
// that reconciles advertisement state peer to peer. Together they
// realize the paper's premise that "each peer base can join and leave
// the network at will" without the omniscient in-process oracle the
// experiment harness used to script: each peer maintains its own
// routing view, fed by membership events, and converges with every
// other view through periodic digest exchange.
//
// Determinism is the design constraint everything bends around. Time
// is logical — Tick is called once per protocol round by the owner
// (an experiment harness round, a serving loop's pacing), never a wall
// clock — and every random choice (probe ring shuffle, indirect-probe
// relays, sync partner) flows from one seeded RNG per detector, so a
// whole cluster's membership history is a pure function of (seed, tick
// sequence, network behavior). Fault injection on the transport is
// therefore reproducible all the way into suspicion timelines.
//
// The state machine per remote member:
//
//	alive --ping timeout (direct + indirect)--> suspect
//	suspect --SuspectTicks elapse--> dead  (OnDead: quarantine + epoch bump)
//	suspect --alive@higher-incarnation--> alive  (refutation)
//	dead --alive@higher-incarnation--> alive  (rejoin; OnRejoin)
//	dead --suspect@higher-incarnation--> suspect  (also OnRejoin: no
//	  longer confirmed dead, so the quarantine lifts; a fresh expiry
//	  re-confirms)
//
// Only a member itself bumps its own incarnation: when it learns it is
// suspected or presumed dead (via gossip, or via the prober's view
// piggybacked on a ping), it increments and gossips a fresher alive —
// the SWIM refutation rule. Dead members are not abandoned: every
// DeadRetryTicks the detector probes one confirmed-dead member, carrying
// its "you are dead at incarnation i" verdict; a partitioned-but-alive
// peer answers by rejoining at i+1, which is how both sides of a healed
// partition rediscover each other without any scripted rejoin.
package membership

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
)

// Status is a member's liveness verdict in a local view. The order is
// the same-incarnation gossip precedence: dead overrides suspect
// overrides alive, and only a higher incarnation revives.
type Status int

const (
	// StatusAlive: the member answers probes (or nobody disputes it).
	StatusAlive Status = iota
	// StatusSuspect: probes failed; the member has SuspectTicks to refute.
	StatusSuspect
	// StatusDead: the suspicion timed out; routing quarantines the member
	// until it rejoins at a higher incarnation.
	StatusDead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Entry is one member's state as known by one detector — the unit both
// gossip piggybacks and anti-entropy syncs exchange. Gossip updates are
// status-only (AdvEpoch 0, no blob); anti-entropy entries additionally
// carry the advertisement blob at its epoch.
type Entry struct {
	// Peer is the member.
	Peer pattern.PeerID `json:"peer"`
	// Status is the liveness verdict.
	Status Status `json:"status"`
	// Incarnation versions the liveness verdict; only Peer itself bumps it.
	Incarnation uint64 `json:"incarnation"`
	// AdvEpoch versions the advertisement blob; only Peer itself bumps it
	// (monotonic across incarnations). 0 means "no blob carried".
	AdvEpoch uint64 `json:"advEpoch,omitempty"`
	// Adv is the opaque advertisement blob (the owner's serialized
	// self-description); membership never inspects it.
	Adv json.RawMessage `json:"adv,omitempty"`
}

// member is the detector's mutable record for one remote peer.
type member struct {
	entry Entry
	// suspectSince is the tick the current suspicion started.
	suspectSince int
}

// Options configures a Detector.
type Options struct {
	// Seed feeds the detector's RNG (mixed with the peer id, so each
	// detector in a cluster draws an independent deterministic stream).
	Seed int64
	// DeadlineMS bounds every membership RPC on the simulated clock
	// (default 200): a gray or partitioned peer fails a probe fast
	// instead of wedging the prober.
	DeadlineMS float64
	// SuspectTicks is how many ticks a suspicion lasts before the member
	// is confirmed dead (default 2).
	SuspectTicks int
	// IndirectProbes is how many relays a failed direct ping escalates to
	// (default 2) — the SWIM ping-req round that keeps one lossy link
	// from condemning a healthy peer.
	IndirectProbes int
	// DeadRetryTicks: every this many ticks the detector additionally
	// probes one confirmed-dead member (default 2) — the partition-heal
	// path. 0 disables dead retry.
	DeadRetryTicks int
	// MaxPiggyback bounds the gossip updates attached to any one message
	// (default 8).
	MaxPiggyback int
	// GossipTTL is how many times each update is re-shipped before it
	// ages out of the piggyback queue (default 6).
	GossipTTL int
}

func (o Options) withDefaults() Options {
	if o.DeadlineMS <= 0 {
		o.DeadlineMS = 200
	}
	if o.SuspectTicks <= 0 {
		o.SuspectTicks = 2
	}
	if o.IndirectProbes <= 0 {
		o.IndirectProbes = 2
	}
	if o.MaxPiggyback <= 0 {
		o.MaxPiggyback = 8
	}
	if o.GossipTTL <= 0 {
		o.GossipTTL = 6
	}
	return o
}

// Stats counts detector activity; snapshot via Stats(), published via
// CollectObs (obs.go).
type Stats struct {
	// Ticks counts protocol rounds driven.
	Ticks int
	// Pings/PingAcks/PingFails count direct probes and their outcomes.
	Pings, PingAcks, PingFails int
	// IndirectReqs/IndirectAcks count ping-req escalations.
	IndirectReqs, IndirectAcks int
	// Suspects counts suspicion onsets (local probe verdicts and adopted
	// gossip alike); Refutations counts self-refutations (this detector
	// learned it was suspected or presumed dead and bumped its
	// incarnation).
	Suspects, Refutations int
	// ConfirmedDead counts members confirmed dead in this view; Rejoins
	// counts dead members revived by a higher incarnation; SelfRejoins
	// counts local Rejoin calls.
	ConfirmedDead, Rejoins, SelfRejoins int
	// DeadRetries counts heal probes of confirmed-dead members.
	DeadRetries int
	// SyncCalls counts anti-entropy rounds initiated; SyncServed rounds
	// answered; SyncPushes follow-up pushes shipped.
	SyncCalls, SyncServed, SyncPushes int
	// EntriesApplied counts adopted status components; AdvApplied counts
	// adopted advertisement blobs.
	EntriesApplied, AdvApplied int
	// GossipSent counts piggybacked updates shipped (all carriers).
	GossipSent int
}

// event is a deferred callback: detector callbacks always fire after
// d.mu is released, so ApplyAdv/OnDead handlers may take routing or
// health locks without ordering against the membership mutex.
type event struct {
	kind string // "adv", "suspect", "dead", "rejoin"
	peer pattern.PeerID
	adv  json.RawMessage
}

// Detector is one peer's membership view and protocol endpoint. Wire it
// with New, set the callbacks, then drive Tick once per protocol round.
// All exported methods are safe for concurrent use; callbacks are
// invoked outside the detector's mutex.
type Detector struct {
	self pattern.PeerID
	net  *network.Network
	opts Options

	// ApplyAdv, when set, receives every advertisement blob adopted as
	// fresher than the one held (including the first one seen).
	ApplyAdv func(peer pattern.PeerID, adv []byte)
	// OnSuspect, OnDead, OnRejoin, when set, receive liveness
	// transitions in this view: suspicion onset, confirm-dead, and a
	// dead member reviving at a higher incarnation.
	OnSuspect func(peer pattern.PeerID)
	OnDead    func(peer pattern.PeerID)
	OnRejoin  func(peer pattern.PeerID)

	// Events, when set (before traffic, like the callbacks above), feeds
	// every liveness transition into the unified operations log. Emission
	// happens in fire, outside the detector's mutex, and maps one-to-one
	// onto the stats counters: suspect↔Suspects, confirm-dead↔
	// ConfirmedDead, rejoin↔Rejoins — the reconciliation invariant.
	Events *obs.EventLog

	mu      sync.Mutex
	rng     *rand.Rand
	tick    int
	members map[pattern.PeerID]*member
	// probeRing is the shuffled round-robin of probe targets; rebuilt
	// (and reshuffled) when exhausted — SWIM's bounded-staleness probe
	// order.
	probeRing []pattern.PeerID
	ringPos   int
	// deadPos rotates the dead-retry probe over confirmed-dead members.
	deadPos int
	// queue is the pending-gossip buffer: newest update per peer, each
	// re-shipped at most GossipTTL times.
	queue []queued
	stats Stats
}

type queued struct {
	e   Entry
	ttl int
}

// New wires a detector for peer self into the network, registering the
// member.* handlers. The detector starts knowing only itself (alive,
// incarnation 1); Join or Learn seeds it with contacts.
func New(self pattern.PeerID, net *network.Network, opts Options) *Detector {
	opts = opts.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s", self)
	d := &Detector{
		self:    self,
		net:     net,
		opts:    opts,
		rng:     gen.NewRNG(opts.Seed ^ int64(h.Sum64())),
		members: map[pattern.PeerID]*member{},
	}
	d.members[self] = &member{entry: Entry{Peer: self, Status: StatusAlive, Incarnation: 1}}
	net.AddNode(self)
	net.Handle(self, "member.ping", d.handlePing)
	net.Handle(self, "member.pingreq", d.handlePingReq)
	net.Handle(self, "member.sync", d.handleSync)
	net.Handle(self, "member.push", d.handlePush)
	return d
}

// Self returns the peer this detector belongs to.
func (d *Detector) Self() pattern.PeerID { return d.self }

// Stats returns a snapshot of the activity counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetLocalAdvertisement installs (or refreshes) this peer's own
// advertisement blob, bumping its advertisement epoch. The blob spreads
// to every other view through anti-entropy.
func (d *Detector) SetLocalAdvertisement(blob []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	me := d.members[d.self]
	me.entry.AdvEpoch++
	me.entry.Adv = append(json.RawMessage(nil), blob...)
}

// Rejoin announces a restart: the local incarnation bumps past any
// verdict the cluster may hold about the previous life, and the fresh
// alive gossips out with the detector's next messages. Harnesses call
// it when a crashed node's process comes back.
func (d *Detector) Rejoin() {
	d.mu.Lock()
	defer d.mu.Unlock()
	me := d.members[d.self]
	me.entry.Incarnation++
	me.entry.Status = StatusAlive
	d.stats.SelfRejoins++
	d.enqueueLocked(statusOnly(me.entry))
}

// Join seeds the detector with a bootstrap contact and runs one
// anti-entropy round against it, the join handshake of §3.1 ("when a
// peer connects ... it forwards its corresponding active-schema")
// generalized to full view exchange.
func (d *Detector) Join(contact pattern.PeerID) error {
	d.mu.Lock()
	if _, ok := d.members[contact]; !ok && contact != d.self {
		d.members[contact] = &member{entry: Entry{Peer: contact, Status: StatusAlive}}
	}
	d.mu.Unlock()
	return d.SyncWith(contact)
}

// StatusOf reports the detector's verdict on a peer (itself included).
func (d *Detector) StatusOf(peer pattern.PeerID) (Status, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[peer]
	if !ok {
		return StatusAlive, false
	}
	return m.entry.Status, true
}

// Incarnation returns the incarnation the verdict on peer is held at.
func (d *Detector) Incarnation(peer pattern.PeerID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[peer]; ok {
		return m.entry.Incarnation
	}
	return 0
}

// Members returns every known member's entry (blobs omitted), sorted by
// peer — the view a harness compares against ground truth.
func (d *Detector) Members() []Entry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Entry, 0, len(d.members))
	for _, m := range d.members {
		e := m.entry
		e.Adv = nil
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// statusOnly strips an entry to its gossip form.
func statusOnly(e Entry) Entry {
	return Entry{Peer: e.Peer, Status: e.Status, Incarnation: e.Incarnation}
}

// enqueueLocked queues an update for piggybacking, newest-per-peer.
// Callers hold d.mu.
func (d *Detector) enqueueLocked(e Entry) {
	for i := range d.queue {
		if d.queue[i].e.Peer == e.Peer {
			d.queue[i] = queued{e: e, ttl: d.opts.GossipTTL}
			return
		}
	}
	d.queue = append(d.queue, queued{e: e, ttl: d.opts.GossipTTL})
}

// takePiggybackLocked returns up to max queued updates, charging one TTL
// each and dropping the spent. Callers hold d.mu.
func (d *Detector) takePiggybackLocked(max int) []Entry {
	var out []Entry
	keep := d.queue[:0]
	for _, q := range d.queue {
		if len(out) < max {
			out = append(out, q.e)
			q.ttl--
			d.stats.GossipSent++
		}
		if q.ttl > 0 {
			keep = append(keep, q)
		}
	}
	d.queue = keep
	return out
}

// Tick drives one protocol round: expire suspicions, probe the next
// ring target (escalating to indirect probes on failure), occasionally
// re-probe one dead member (partition healing), and run one
// anti-entropy exchange with a random alive partner.
func (d *Detector) Tick() {
	d.mu.Lock()
	d.tick++
	d.stats.Ticks++
	var events []event
	d.expireSuspectsLocked(&events)
	target := d.nextProbeLocked()
	var deadTarget pattern.PeerID
	if d.opts.DeadRetryTicks > 0 && d.tick%d.opts.DeadRetryTicks == 0 {
		deadTarget = d.nextDeadLocked()
	}
	partner := d.pickSyncPartnerLocked()
	d.mu.Unlock()
	d.fire(events)

	if target != "" {
		d.probe(target)
	}
	if deadTarget != "" {
		d.mu.Lock()
		d.stats.DeadRetries++
		d.mu.Unlock()
		d.probe(deadTarget)
	}
	if partner != "" {
		_ = d.SyncWith(partner) // a failed sync retries next tick
	}
}

// expireSuspectsLocked confirms dead every suspicion older than
// SuspectTicks. Callers hold d.mu.
func (d *Detector) expireSuspectsLocked(events *[]event) {
	ids := make([]pattern.PeerID, 0, len(d.members))
	for id := range d.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := d.members[id]
		if m.entry.Status == StatusSuspect && d.tick-m.suspectSince >= d.opts.SuspectTicks {
			m.entry.Status = StatusDead
			d.stats.ConfirmedDead++
			d.enqueueLocked(statusOnly(m.entry))
			*events = append(*events, event{kind: "dead", peer: id})
		}
	}
}

// nextProbeLocked returns the next probe target from the shuffled ring,
// rebuilding the ring from the current alive/suspect membership when it
// is exhausted. Callers hold d.mu.
func (d *Detector) nextProbeLocked() pattern.PeerID {
	for pass := 0; pass < 2; pass++ {
		for d.ringPos < len(d.probeRing) {
			c := d.probeRing[d.ringPos]
			d.ringPos++
			if m, ok := d.members[c]; ok && m.entry.Status != StatusDead {
				return c
			}
		}
		// Rebuild: alive + suspect members, sorted then shuffled so the
		// probe order is deterministic but not id-biased.
		ids := make([]pattern.PeerID, 0, len(d.members))
		for id, m := range d.members {
			if id != d.self && m.entry.Status != StatusDead {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		d.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		d.probeRing, d.ringPos = ids, 0
		if len(ids) == 0 {
			return ""
		}
	}
	return ""
}

// nextDeadLocked rotates over the confirmed-dead members. Callers hold
// d.mu.
func (d *Detector) nextDeadLocked() pattern.PeerID {
	var dead []pattern.PeerID
	for id, m := range d.members {
		if id != d.self && m.entry.Status == StatusDead {
			dead = append(dead, id)
		}
	}
	if len(dead) == 0 {
		return ""
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	d.deadPos++
	return dead[d.deadPos%len(dead)]
}

// pickSyncPartnerLocked picks one alive member for this tick's
// anti-entropy exchange. Callers hold d.mu.
func (d *Detector) pickSyncPartnerLocked() pattern.PeerID {
	var alive []pattern.PeerID
	for id, m := range d.members {
		if id != d.self && m.entry.Status == StatusAlive {
			alive = append(alive, id)
		}
	}
	if len(alive) == 0 {
		return ""
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	return alive[d.rng.Intn(len(alive))]
}

// viewOfLocked returns this detector's entry for a peer in gossip form —
// the "I think you are X at incarnation i" verdict a probe carries so
// its target can refute or rejoin. Callers hold d.mu.
func (d *Detector) viewOfLocked(peer pattern.PeerID) (Entry, bool) {
	if m, ok := d.members[peer]; ok {
		return statusOnly(m.entry), true
	}
	return Entry{}, false
}

// probe runs the SWIM probe cycle against one target: direct ping, then
// IndirectProbes ping-req relays, then suspicion.
func (d *Detector) probe(target pattern.PeerID) {
	if d.ping(target) {
		return
	}
	relays := d.pickRelays(target)
	for _, r := range relays {
		if d.pingReq(r, target) {
			return
		}
	}
	d.suspect(target)
}

// pickRelays selects IndirectProbes alive members (excluding self and
// the target) as ping-req relays.
func (d *Detector) pickRelays(target pattern.PeerID) []pattern.PeerID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var alive []pattern.PeerID
	for id, m := range d.members {
		if id != d.self && id != target && m.entry.Status == StatusAlive {
			alive = append(alive, id)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	d.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	if len(alive) > d.opts.IndirectProbes {
		alive = alive[:d.opts.IndirectProbes]
	}
	return alive
}

// pingMsg is the wire body of member.ping; the updates carry gossip
// plus the sender's verdict on the target itself.
type pingMsg struct {
	From    pattern.PeerID `json:"from"`
	Updates []Entry        `json:"updates,omitempty"`
}

// ackMsg is the ping reply: the target's own entry plus piggyback.
type ackMsg struct {
	Updates []Entry `json:"updates,omitempty"`
}

// pingReqMsg asks a relay to ping Target on the sender's behalf.
type pingReqMsg struct {
	From    pattern.PeerID `json:"from"`
	Target  pattern.PeerID `json:"target"`
	Updates []Entry        `json:"updates,omitempty"`
}

// pingReqAck relays the target's ack (or the failure).
type pingReqAck struct {
	Ack     bool    `json:"ack"`
	Updates []Entry `json:"updates,omitempty"`
}

// ping sends one direct probe and merges the ack. Returns whether the
// target answered.
func (d *Detector) ping(target pattern.PeerID) bool {
	d.mu.Lock()
	d.stats.Pings++
	updates := d.takePiggybackLocked(d.opts.MaxPiggyback)
	if v, ok := d.viewOfLocked(target); ok {
		updates = append(updates, v)
	}
	d.mu.Unlock()
	body, err := json.Marshal(pingMsg{From: d.self, Updates: updates})
	if err != nil {
		return false
	}
	reply, err := d.net.CallWithin(d.self, target, "member.ping", body, d.opts.DeadlineMS)
	if err != nil {
		d.mu.Lock()
		d.stats.PingFails++
		d.mu.Unlock()
		return false
	}
	var ack ackMsg
	if err := json.Unmarshal(reply, &ack); err != nil {
		return false
	}
	d.mu.Lock()
	d.stats.PingAcks++
	d.mu.Unlock()
	d.Merge(ack.Updates)
	return true
}

// pingReq asks relay to probe target. Returns whether the relay reached
// it.
func (d *Detector) pingReq(relay, target pattern.PeerID) bool {
	d.mu.Lock()
	d.stats.IndirectReqs++
	updates := d.takePiggybackLocked(d.opts.MaxPiggyback)
	if v, ok := d.viewOfLocked(target); ok {
		updates = append(updates, v)
	}
	d.mu.Unlock()
	body, err := json.Marshal(pingReqMsg{From: d.self, Target: target, Updates: updates})
	if err != nil {
		return false
	}
	reply, err := d.net.CallWithin(d.self, relay, "member.pingreq", body, d.opts.DeadlineMS)
	if err != nil {
		return false
	}
	var ack pingReqAck
	if err := json.Unmarshal(reply, &ack); err != nil || !ack.Ack {
		return false
	}
	d.mu.Lock()
	d.stats.IndirectAcks++
	d.mu.Unlock()
	d.Merge(ack.Updates)
	return true
}

// suspect marks an unresponsive alive member suspected, starting its
// refutation window.
func (d *Detector) suspect(target pattern.PeerID) {
	d.mu.Lock()
	var events []event
	if m, ok := d.members[target]; ok && m.entry.Status == StatusAlive {
		m.entry.Status = StatusSuspect
		m.suspectSince = d.tick
		d.stats.Suspects++
		d.enqueueLocked(statusOnly(m.entry))
		events = append(events, event{kind: "suspect", peer: target})
	}
	d.mu.Unlock()
	d.fire(events)
}

// handlePing answers a direct probe: merge the prober's updates
// (refuting any verdict about this peer itself) and ack with the
// current self entry plus piggyback.
func (d *Detector) handlePing(msg network.Message) ([]byte, error) {
	var pm pingMsg
	if err := json.Unmarshal(msg.Payload, &pm); err != nil {
		return nil, fmt.Errorf("membership %s: bad ping: %w", d.self, err)
	}
	d.mu.Lock()
	var events []event
	d.mergeLocked(pm.Updates, &events)
	updates := d.takePiggybackLocked(d.opts.MaxPiggyback)
	updates = append(updates, statusOnly(d.members[d.self].entry))
	d.mu.Unlock()
	d.fire(events)
	return json.Marshal(ackMsg{Updates: updates})
}

// handlePingReq relays a probe: merge the requester's updates, ping the
// target with this relay's own view, and report the outcome.
func (d *Detector) handlePingReq(msg network.Message) ([]byte, error) {
	var rm pingReqMsg
	if err := json.Unmarshal(msg.Payload, &rm); err != nil {
		return nil, fmt.Errorf("membership %s: bad ping-req: %w", d.self, err)
	}
	d.Merge(rm.Updates)
	d.mu.Lock()
	updates := d.takePiggybackLocked(d.opts.MaxPiggyback)
	if v, ok := d.viewOfLocked(rm.Target); ok {
		updates = append(updates, v)
	}
	d.mu.Unlock()
	body, err := json.Marshal(pingMsg{From: d.self, Updates: updates})
	if err != nil {
		return json.Marshal(pingReqAck{Ack: false})
	}
	reply, err := d.net.CallWithin(d.self, rm.Target, "member.ping", body, d.opts.DeadlineMS)
	if err != nil {
		return json.Marshal(pingReqAck{Ack: false})
	}
	var ack ackMsg
	if err := json.Unmarshal(reply, &ack); err != nil {
		return json.Marshal(pingReqAck{Ack: false})
	}
	d.Merge(ack.Updates)
	return json.Marshal(pingReqAck{Ack: true, Updates: ack.Updates})
}

// Merge folds remote entries into the local view, firing callbacks for
// every transition they cause. Safe for concurrent use.
func (d *Detector) Merge(entries []Entry) {
	if len(entries) == 0 {
		return
	}
	d.mu.Lock()
	var events []event
	d.mergeLocked(entries, &events)
	d.mu.Unlock()
	d.fire(events)
}

// mergeLocked is the merge core. The status component merges by
// (incarnation, status-precedence); the advertisement component merges
// by advertisement epoch; both monotone, so merge order never matters —
// any gossip/sync delivery order converges to the same view. Callers
// hold d.mu.
func (d *Detector) mergeLocked(entries []Entry, events *[]event) {
	for _, e := range entries {
		if e.Peer == "" {
			continue
		}
		if e.Peer == d.self {
			d.refuteLocked(e)
			continue
		}
		m, ok := d.members[e.Peer]
		if !ok {
			m = &member{entry: Entry{Peer: e.Peer}}
			d.members[e.Peer] = m
		}
		cur := &m.entry
		if e.Incarnation > cur.Incarnation ||
			(e.Incarnation == cur.Incarnation && e.Status > cur.Status) {
			old, oldKnown := cur.Status, ok
			cur.Incarnation = e.Incarnation
			cur.Status = e.Status
			d.stats.EntriesApplied++
			switch {
			case e.Status == StatusSuspect:
				m.suspectSince = d.tick
				d.stats.Suspects++
				// A dead member resurfacing under suspicion (a higher
				// incarnation someone else already doubts) is still a
				// rejoin: it is no longer confirmed dead, so routing must
				// lift the quarantine. If the new suspicion expires, the
				// confirm-dead path re-quarantines.
				if oldKnown && old == StatusDead {
					d.stats.Rejoins++
					*events = append(*events, event{kind: "rejoin", peer: e.Peer})
				}
				*events = append(*events, event{kind: "suspect", peer: e.Peer})
			case e.Status == StatusDead && (!oldKnown || old != StatusDead):
				d.stats.ConfirmedDead++
				*events = append(*events, event{kind: "dead", peer: e.Peer})
			case e.Status == StatusAlive && oldKnown && old == StatusDead:
				d.stats.Rejoins++
				*events = append(*events, event{kind: "rejoin", peer: e.Peer})
			}
			d.enqueueLocked(statusOnly(*cur))
		}
		if e.AdvEpoch > cur.AdvEpoch && len(e.Adv) > 0 {
			cur.AdvEpoch = e.AdvEpoch
			cur.Adv = append(json.RawMessage(nil), e.Adv...)
			d.stats.AdvApplied++
			*events = append(*events, event{kind: "adv", peer: e.Peer, adv: cur.Adv})
		}
	}
}

// refuteLocked handles a gossip verdict about this peer itself: any
// non-alive claim at our incarnation (or beyond) is refuted by bumping
// past it — the SWIM rule that keeps a falsely suspected peer routable.
// Callers hold d.mu.
func (d *Detector) refuteLocked(e Entry) {
	me := d.members[d.self]
	if e.Status == StatusAlive || e.Incarnation < me.entry.Incarnation {
		return
	}
	me.entry.Incarnation = e.Incarnation + 1
	me.entry.Status = StatusAlive
	d.stats.Refutations++
	d.enqueueLocked(statusOnly(me.entry))
}

// fire invokes the deferred callbacks, outside d.mu.
func (d *Detector) fire(events []event) {
	for _, ev := range events {
		switch ev.kind {
		case "adv":
			if d.ApplyAdv != nil {
				d.ApplyAdv(ev.peer, ev.adv)
			}
			d.Events.Emit("membership", "adv", string(d.self), "",
				obs.A("target", string(ev.peer)))
		case "suspect":
			if d.OnSuspect != nil {
				d.OnSuspect(ev.peer)
			}
			d.Events.Emit("membership", "suspect", string(d.self), "",
				obs.A("target", string(ev.peer)))
		case "dead":
			if d.OnDead != nil {
				d.OnDead(ev.peer)
			}
			d.Events.Emit("membership", "confirm-dead", string(d.self), "",
				obs.A("target", string(ev.peer)))
		case "rejoin":
			if d.OnRejoin != nil {
				d.OnRejoin(ev.peer)
			}
			d.Events.Emit("membership", "rejoin", string(d.self), "",
				obs.A("target", string(ev.peer)))
		}
	}
}

// Piggyback returns up to MaxPiggyback pending gossip updates as an
// opaque blob for carriage on an existing packet (the channel layer's
// gossip field), or nil when nothing is pending. HandleGossip is its
// receiving half.
func (d *Detector) Piggyback() []byte {
	d.mu.Lock()
	updates := d.takePiggybackLocked(d.opts.MaxPiggyback)
	d.mu.Unlock()
	if len(updates) == 0 {
		return nil
	}
	blob, err := json.Marshal(updates)
	if err != nil {
		return nil
	}
	return blob
}

// HandleGossip merges a blob produced by another detector's Piggyback.
func (d *Detector) HandleGossip(from pattern.PeerID, blob []byte) {
	if len(blob) == 0 {
		return
	}
	var updates []Entry
	if err := json.Unmarshal(blob, &updates); err != nil {
		return
	}
	d.Merge(updates)
}
