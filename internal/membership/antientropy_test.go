package membership

import (
	"encoding/json"
	"sync"
	"testing"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
)

// twoDetectors wires A and B onto a fresh network with adv recording.
func twoDetectors(t *testing.T) (*Detector, *Detector, func() map[string]map[string]string) {
	t.Helper()
	net := network.New()
	var mu sync.Mutex
	applied := map[string]map[string]string{"A": {}, "B": {}}
	mk := func(id pattern.PeerID) *Detector {
		d := New(id, net, Options{Seed: 11})
		self := string(id)
		d.ApplyAdv = func(peer pattern.PeerID, adv []byte) {
			mu.Lock()
			defer mu.Unlock()
			applied[self][string(peer)] = string(adv)
		}
		return d
	}
	a, b := mk("A"), mk("B")
	snapshot := func() map[string]map[string]string {
		mu.Lock()
		defer mu.Unlock()
		out := map[string]map[string]string{}
		for k, v := range applied {
			cp := map[string]string{}
			for p, blob := range v {
				cp[p] = blob
			}
			out[k] = cp
		}
		return out
	}
	return a, b, snapshot
}

func TestSyncPullsStaleAdvertisement(t *testing.T) {
	a, b, snap := twoDetectors(t)
	blob, _ := json.Marshal(map[string]string{"schema": "v1"})
	b.SetLocalAdvertisement(blob)
	if err := a.Join(b.Self()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := snap()["A"]["B"]; got != string(blob) {
		t.Fatalf("A did not pull B's advertisement: %q", got)
	}
	// A fresher epoch replaces the blob; a replay of the old one does not.
	blob2, _ := json.Marshal(map[string]string{"schema": "v2"})
	b.SetLocalAdvertisement(blob2)
	if err := a.SyncWith(b.Self()); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if got := snap()["A"]["B"]; got != string(blob2) {
		t.Fatalf("A did not adopt the fresher advertisement: %q", got)
	}
	a.Merge([]Entry{{Peer: b.Self(), Status: StatusAlive, Incarnation: 1, AdvEpoch: 1, Adv: blob}})
	if got := snap()["A"]["B"]; got != string(blob2) {
		t.Fatalf("stale epoch replay regressed the advertisement: %q", got)
	}
}

func TestSyncPushesFresherAdvertisement(t *testing.T) {
	// The initiator holds the fresher state: the responder's Want list
	// must trigger a push rather than leave it stale.
	a, b, snap := twoDetectors(t)
	blob, _ := json.Marshal(map[string]string{"schema": "a1"})
	a.SetLocalAdvertisement(blob)
	if err := a.SyncWith(b.Self()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := snap()["B"]["A"]; got != string(blob) {
		t.Fatalf("B did not receive A's advertisement via push: %q", got)
	}
	if b.Stats().AdvApplied == 0 {
		t.Fatalf("push not accounted at B")
	}
}

func TestSyncSpreadsThirdPartyState(t *testing.T) {
	// C's entry reaches B through A: sync ships entries the digest never
	// mentioned, so views converge transitively without C talking to B.
	net := network.New()
	a := New("A", net, Options{Seed: 12})
	b := New("B", net, Options{Seed: 12})
	c := New("C", net, Options{Seed: 12})
	var mu sync.Mutex
	got := map[string]string{}
	b.ApplyAdv = func(peer pattern.PeerID, adv []byte) {
		mu.Lock()
		defer mu.Unlock()
		got[string(peer)] = string(adv)
	}
	blob, _ := json.Marshal(map[string]string{"schema": "c1"})
	c.SetLocalAdvertisement(blob)
	if err := a.Join(c.Self()); err != nil {
		t.Fatalf("A join C: %v", err)
	}
	if err := a.SyncWith(b.Self()); err != nil {
		t.Fatalf("A sync B: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got["C"] != string(blob) {
		t.Fatalf("C's advertisement did not reach B through A: %q", got["C"])
	}
	if st, ok := b.StatusOf("C"); !ok || st != StatusAlive {
		t.Fatalf("B does not see C alive: %v %v", st, ok)
	}
}

func TestDigestStatusGossip(t *testing.T) {
	// A sync digest alone must carry suspicion: B learns A suspects C
	// without any entry/push for C's advertisement.
	net := network.New()
	a := New("A", net, Options{Seed: 13, SuspectTicks: 50})
	b := New("B", net, Options{Seed: 13, SuspectTicks: 50})
	a.Merge([]Entry{{Peer: "C", Status: StatusSuspect, Incarnation: 3}})
	if err := a.SyncWith(b.Self()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st, ok := b.StatusOf("C"); !ok || st != StatusSuspect {
		t.Fatalf("digest did not carry suspicion to B: %v %v", st, ok)
	}
	if b.Incarnation("C") != 3 {
		t.Fatalf("incarnation not carried: %d", b.Incarnation("C"))
	}
}

func TestPiggybackRoundTrip(t *testing.T) {
	net := network.New()
	a := New("A", net, Options{Seed: 14})
	b := New("B", net, Options{Seed: 14})
	a.Merge([]Entry{{Peer: "X", Status: StatusDead, Incarnation: 2}})
	blob := a.Piggyback()
	if blob == nil {
		t.Fatalf("no piggyback despite queued update")
	}
	b.HandleGossip(a.Self(), blob)
	if st, ok := b.StatusOf("X"); !ok || st != StatusDead {
		t.Fatalf("gossip blob did not carry X's death: %v %v", st, ok)
	}
	// TTL: the queue drains after GossipTTL shipments.
	for i := 0; i < 20; i++ {
		a.Piggyback()
	}
	if got := a.Piggyback(); got != nil {
		t.Fatalf("piggyback queue never drains: %s", got)
	}
}
