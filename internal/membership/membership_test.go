package membership

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
)

// cluster wires n detectors onto one network, each advertising a small
// blob, everyone bootstrapping through the first node.
type cluster struct {
	net  *network.Network
	ids  []pattern.PeerID
	dets map[pattern.PeerID]*Detector
	// advs records ApplyAdv deliveries per observer.
	mu   sync.Mutex
	advs map[pattern.PeerID]map[pattern.PeerID]string
	// deaths/rejoins record liveness callbacks per observer.
	deaths  map[pattern.PeerID][]pattern.PeerID
	rejoins map[pattern.PeerID][]pattern.PeerID
}

func newCluster(t *testing.T, n int, opts Options) *cluster {
	t.Helper()
	c := &cluster{
		net:     network.New(),
		dets:    map[pattern.PeerID]*Detector{},
		advs:    map[pattern.PeerID]map[pattern.PeerID]string{},
		deaths:  map[pattern.PeerID][]pattern.PeerID{},
		rejoins: map[pattern.PeerID][]pattern.PeerID{},
	}
	for i := 0; i < n; i++ {
		id := pattern.PeerID(fmt.Sprintf("N%02d", i))
		c.ids = append(c.ids, id)
		d := New(id, c.net, opts)
		self := id
		c.advs[id] = map[pattern.PeerID]string{}
		d.ApplyAdv = func(peer pattern.PeerID, adv []byte) {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.advs[self][peer] = string(adv)
		}
		d.OnDead = func(peer pattern.PeerID) {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.deaths[self] = append(c.deaths[self], peer)
		}
		d.OnRejoin = func(peer pattern.PeerID) {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.rejoins[self] = append(c.rejoins[self], peer)
		}
		blob, _ := json.Marshal(map[string]string{"peer": string(id)})
		d.SetLocalAdvertisement(blob)
		c.dets[id] = d
	}
	for _, id := range c.ids[1:] {
		if err := c.dets[id].Join(c.ids[0]); err != nil {
			t.Fatalf("join %s: %v", id, err)
		}
	}
	return c
}

// tickLive drives one round on every detector whose node is up.
func (c *cluster) tickLive() {
	for _, id := range c.ids {
		if !c.net.IsDown(id) {
			c.dets[id].Tick()
		}
	}
}

// converged reports whether every live detector sees every other live
// peer alive and holds its advertisement.
func (c *cluster) converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.ids {
		if c.net.IsDown(id) {
			continue
		}
		d := c.dets[id]
		for _, other := range c.ids {
			if other == id || c.net.IsDown(other) {
				continue
			}
			if st, ok := d.StatusOf(other); !ok || st != StatusAlive {
				return false
			}
			if c.advs[id][other] == "" {
				return false
			}
		}
	}
	return true
}

func TestJoinConvergesBounded(t *testing.T) {
	c := newCluster(t, 8, Options{Seed: 1})
	for round := 1; round <= 12; round++ {
		c.tickLive()
		if c.converged() {
			t.Logf("converged after %d rounds", round)
			return
		}
	}
	t.Fatalf("8-node cluster did not converge within 12 rounds")
}

func TestCrashConfirmedWithinBound(t *testing.T) {
	opts := Options{Seed: 2, SuspectTicks: 2}
	c := newCluster(t, 5, opts)
	for i := 0; i < 10 && !c.converged(); i++ {
		c.tickLive()
	}
	victim := c.ids[3]
	c.net.Fail(victim)
	// Bound: one full probe-ring pass to suspect (n-1 ticks worst case)
	// plus SuspectTicks to confirm, plus gossip slack.
	bound := (len(c.ids) - 1) + opts.SuspectTicks + 3
	confirmed := -1
	for round := 1; round <= bound; round++ {
		c.tickLive()
		all := true
		for _, id := range c.ids {
			if id == victim {
				continue
			}
			if st, _ := c.dets[id].StatusOf(victim); st != StatusDead {
				all = false
			}
		}
		if all {
			confirmed = round
			break
		}
	}
	if confirmed < 0 {
		t.Fatalf("crash of %s not confirmed dead everywhere within %d rounds", victim, bound)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.ids {
		if id == victim {
			continue
		}
		found := false
		for _, p := range c.deaths[id] {
			if p == victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("OnDead for %s never fired at %s", victim, id)
		}
	}
}

func TestFalseSuspicionRefuted(t *testing.T) {
	c := newCluster(t, 4, Options{Seed: 3, SuspectTicks: 4})
	for i := 0; i < 8 && !c.converged(); i++ {
		c.tickLive()
	}
	accuser, accused := c.ids[0], c.ids[1]
	inc := c.dets[accuser].Incarnation(accused)
	c.dets[accuser].Merge([]Entry{{Peer: accused, Status: StatusSuspect, Incarnation: inc}})
	if st, _ := c.dets[accuser].StatusOf(accused); st != StatusSuspect {
		t.Fatalf("seeded suspicion did not take")
	}
	for i := 0; i < 8; i++ {
		c.tickLive()
	}
	if st, _ := c.dets[accuser].StatusOf(accused); st != StatusAlive {
		t.Fatalf("live peer %s not refuted at %s: %v", accused, accuser, st)
	}
	if got := c.dets[accuser].Incarnation(accused); got <= inc {
		t.Fatalf("refutation did not raise incarnation: %d <= %d", got, inc)
	}
	if refs := c.dets[accused].Stats().Refutations; refs == 0 {
		t.Fatalf("accused peer recorded no refutation")
	}
	if st, _ := c.dets[accuser].StatusOf(accused); st == StatusDead {
		t.Fatalf("falsely suspected peer was confirmed dead")
	}
}

func TestRejoinAfterCrash(t *testing.T) {
	opts := Options{Seed: 4, SuspectTicks: 2, DeadRetryTicks: 2}
	c := newCluster(t, 4, opts)
	for i := 0; i < 8 && !c.converged(); i++ {
		c.tickLive()
	}
	victim := c.ids[2]
	c.net.Fail(victim)
	for i := 0; i < 12; i++ {
		c.tickLive()
	}
	if st, _ := c.dets[c.ids[0]].StatusOf(victim); st != StatusDead {
		t.Fatalf("victim not confirmed dead before restart")
	}
	c.net.Recover(victim)
	c.dets[victim].Rejoin()
	for i := 0; i < 12; i++ {
		c.tickLive()
	}
	for _, id := range c.ids {
		if id == victim {
			continue
		}
		if st, _ := c.dets[id].StatusOf(victim); st != StatusAlive {
			t.Fatalf("rejoined %s still %v at %s", victim, st, id)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.rejoins[c.ids[0]]) == 0 {
		t.Fatalf("OnRejoin never fired at %s", c.ids[0])
	}
}

// A dead member resurfacing as suspect at a higher incarnation — e.g. a
// view frozen across the observer's own downtime that catches up via a
// third party's suspicion gossip — must still fire OnRejoin: the member
// is no longer confirmed dead, so the routing quarantine has to lift
// even though the alive@higher-inc refutation was never seen directly.
func TestDeadToSuspectFiresRejoin(t *testing.T) {
	c := newCluster(t, 2, Options{Seed: 6, SuspectTicks: 4})
	obs, subject := c.ids[0], c.ids[1]
	c.dets[obs].Merge([]Entry{{Peer: subject, Status: StatusDead, Incarnation: 2}})
	c.mu.Lock()
	deaths := len(c.deaths[obs])
	c.mu.Unlock()
	if deaths == 0 {
		t.Fatal("seeded death did not fire OnDead")
	}
	c.dets[obs].Merge([]Entry{{Peer: subject, Status: StatusSuspect, Incarnation: 3}})
	if st, _ := c.dets[obs].StatusOf(subject); st != StatusSuspect {
		t.Fatalf("suspect@3 did not supersede dead@2: %v", st)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.rejoins[obs]) == 0 {
		t.Fatal("dead→suspect at higher incarnation did not fire OnRejoin")
	}
}

func TestPartitionDetectedAndHealedBounded(t *testing.T) {
	opts := Options{Seed: 5, SuspectTicks: 2, DeadRetryTicks: 2}
	c := newCluster(t, 6, opts)
	for i := 0; i < 10 && !c.converged(); i++ {
		c.tickLive()
	}
	groupA, groupB := c.ids[:3], c.ids[3:]
	for _, a := range groupA {
		for _, b := range groupB {
			c.net.Partition(a, b)
		}
	}
	// Both sides must confirm the other side dead: suspicion timeouts on
	// both sides of the cut, per the detected-partition requirement.
	detectBound := (len(c.ids) - 1) + opts.SuspectTicks + 4
	detected := false
	for round := 1; round <= detectBound; round++ {
		c.tickLive()
		aSees, _ := c.dets[groupA[0]].StatusOf(groupB[0])
		bSees, _ := c.dets[groupB[0]].StatusOf(groupA[0])
		if aSees == StatusDead && bSees == StatusDead {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatalf("partition not confirmed on both sides within %d rounds", detectBound)
	}
	for _, a := range groupA {
		for _, b := range groupB {
			c.net.Heal(a, b)
		}
	}
	healBound := 20
	for round := 1; round <= healBound; round++ {
		c.tickLive()
		if c.converged() {
			t.Logf("reconverged %d rounds after heal", round)
			return
		}
	}
	t.Fatalf("views did not reconverge within %d rounds of heal", healBound)
}

// TestDeterministicHistory runs the same scripted scenario twice and
// requires identical membership histories.
func TestDeterministicHistory(t *testing.T) {
	run := func() string {
		c := newCluster(t, 5, Options{Seed: 6, SuspectTicks: 2, DeadRetryTicks: 2})
		var hist string
		for round := 0; round < 20; round++ {
			if round == 6 {
				c.net.Fail(c.ids[2])
			}
			if round == 14 {
				c.net.Recover(c.ids[2])
				c.dets[c.ids[2]].Rejoin()
			}
			c.tickLive()
			for _, id := range c.ids {
				for _, e := range c.dets[id].Members() {
					hist += fmt.Sprintf("%d|%s|%s|%v|%d|%d;", round, id, e.Peer, e.Status, e.Incarnation, e.AdvEpoch)
				}
			}
		}
		return hist
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed membership histories differ")
	}
}
