package membership

// Anti-entropy: the pull/push digest exchange that reconciles full
// membership and advertisement state between two peers. Gossip
// piggybacks (membership.go) spread status transitions fast but are
// status-only and best-effort; the sync pass is the convergence
// backstop — any two alive peers that complete one exchange hold
// identical entries for every peer either of them knows, because both
// components of the merge (status by incarnation, advertisement by
// epoch) are monotone joins.
//
// The exchange is one round trip plus an optional push:
//
//	A -> B  member.sync  digest: (peer, status, incarnation, advEpoch) rows
//	B -> A  reply        entries B holds fresher than A's digest,
//	                     plus Want: peers where A's digest is fresher
//	A -> B  member.push  the full entries B asked for
//
// Digest rows double as status gossip: B merges each row's status
// component directly, so a sync also propagates suspicions and deaths
// even when no advertisement moved.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
)

// DigestRow summarizes one entry for the sync exchange: everything
// needed to order two copies without shipping the blob.
type DigestRow struct {
	Peer        pattern.PeerID `json:"peer"`
	Status      Status         `json:"status"`
	Incarnation uint64         `json:"incarnation"`
	AdvEpoch    uint64         `json:"advEpoch"`
}

// syncMsg opens an anti-entropy exchange with the sender's full digest.
type syncMsg struct {
	From   pattern.PeerID `json:"from"`
	Digest []DigestRow    `json:"digest"`
}

// syncAck answers with the entries the responder holds fresher, and the
// peers it wants full entries for.
type syncAck struct {
	Entries []Entry          `json:"entries,omitempty"`
	Want    []pattern.PeerID `json:"want,omitempty"`
}

// pushMsg delivers the entries a responder asked for.
type pushMsg struct {
	From    pattern.PeerID `json:"from"`
	Entries []Entry        `json:"entries,omitempty"`
}

// digestLocked builds the full sorted digest of this view (self
// included — that row carries the local incarnation and advertisement
// epoch to the partner). Callers hold d.mu.
func (d *Detector) digestLocked() []DigestRow {
	rows := make([]DigestRow, 0, len(d.members))
	for _, m := range d.members {
		rows = append(rows, DigestRow{
			Peer:        m.entry.Peer,
			Status:      m.entry.Status,
			Incarnation: m.entry.Incarnation,
			AdvEpoch:    m.entry.AdvEpoch,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Peer < rows[j].Peer })
	return rows
}

// fullEntryLocked copies the complete entry (blob included) for peer.
// Callers hold d.mu.
func (d *Detector) fullEntryLocked(peer pattern.PeerID) (Entry, bool) {
	m, ok := d.members[peer]
	if !ok {
		return Entry{}, false
	}
	e := m.entry
	e.Adv = append(json.RawMessage(nil), m.entry.Adv...)
	return e, true
}

// fresherThanLocked reports whether the local entry for row.Peer is
// strictly fresher than the digest row in either component. Callers
// hold d.mu.
func (d *Detector) fresherThanLocked(row DigestRow) bool {
	m, ok := d.members[row.Peer]
	if !ok {
		return false
	}
	e := m.entry
	if e.Incarnation > row.Incarnation ||
		(e.Incarnation == row.Incarnation && e.Status > row.Status) {
		return true
	}
	return e.AdvEpoch > row.AdvEpoch
}

// SyncWith runs one full anti-entropy exchange with partner. On return
// (nil error) both sides hold entries at least as fresh as the other
// had for every peer either knew.
func (d *Detector) SyncWith(partner pattern.PeerID) error {
	d.mu.Lock()
	d.stats.SyncCalls++
	digest := d.digestLocked()
	d.mu.Unlock()
	body, err := json.Marshal(syncMsg{From: d.self, Digest: digest})
	if err != nil {
		return err
	}
	reply, err := d.net.CallWithin(d.self, partner, "member.sync", body, d.opts.DeadlineMS)
	if err != nil {
		return err
	}
	var ack syncAck
	if err := json.Unmarshal(reply, &ack); err != nil {
		return fmt.Errorf("membership %s: bad sync ack from %s: %w", d.self, partner, err)
	}
	d.Merge(ack.Entries)
	d.Events.Emit("membership", "antientropy", string(d.self), "",
		obs.A("partner", string(partner)),
		obs.A("entries", strconv.Itoa(len(ack.Entries))),
		obs.A("want", strconv.Itoa(len(ack.Want))))
	if len(ack.Want) == 0 {
		return nil
	}
	d.mu.Lock()
	push := make([]Entry, 0, len(ack.Want))
	for _, p := range ack.Want {
		if e, ok := d.fullEntryLocked(p); ok {
			push = append(push, e)
		}
	}
	d.stats.SyncPushes++
	d.mu.Unlock()
	body, err = json.Marshal(pushMsg{From: d.self, Entries: push})
	if err != nil {
		return err
	}
	return d.net.SendWithin(d.self, partner, "member.push", body, d.opts.DeadlineMS)
}

// handleSync answers an anti-entropy open: merge the digest's status
// components, return every entry held fresher than the digest, and ask
// for every peer the digest holds fresher.
func (d *Detector) handleSync(msg network.Message) ([]byte, error) {
	var sm syncMsg
	if err := json.Unmarshal(msg.Payload, &sm); err != nil {
		return nil, fmt.Errorf("membership %s: bad sync: %w", d.self, err)
	}
	d.mu.Lock()
	d.stats.SyncServed++
	var events []event
	seen := make(map[pattern.PeerID]bool, len(sm.Digest))
	var ack syncAck
	for _, row := range sm.Digest {
		seen[row.Peer] = true
		// A digest row is status gossip too: adopt the fresher verdict
		// (advertisement blobs only move via entries/pushes).
		d.mergeLocked([]Entry{{Peer: row.Peer, Status: row.Status, Incarnation: row.Incarnation}}, &events)
		if d.fresherThanLocked(row) {
			if e, ok := d.fullEntryLocked(row.Peer); ok {
				ack.Entries = append(ack.Entries, e)
			}
		}
		m, ok := d.members[row.Peer]
		if row.AdvEpoch > 0 && (!ok || m.entry.AdvEpoch < row.AdvEpoch) {
			ack.Want = append(ack.Want, row.Peer)
		}
	}
	// Entries the digest did not mention at all are news to the caller.
	extra := make([]pattern.PeerID, 0)
	for id := range d.members {
		if !seen[id] {
			extra = append(extra, id)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	for _, id := range extra {
		if e, ok := d.fullEntryLocked(id); ok {
			ack.Entries = append(ack.Entries, e)
		}
	}
	sort.Slice(ack.Want, func(i, j int) bool { return ack.Want[i] < ack.Want[j] })
	d.mu.Unlock()
	d.fire(events)
	return json.Marshal(ack)
}

// handlePush merges the entries a sync partner shipped after seeing our
// digest was stale.
func (d *Detector) handlePush(msg network.Message) ([]byte, error) {
	var pm pushMsg
	if err := json.Unmarshal(msg.Payload, &pm); err != nil {
		return nil, fmt.Errorf("membership %s: bad push: %w", d.self, err)
	}
	d.Merge(pm.Entries)
	return nil, nil
}
