// Package dht implements the paper's final future-work item (§5):
// "investigate the possible use of Distributed Hash Tables for RDF/S
// schemas with subsumption information, used in the query routing
// process". It provides a Chord-style ring over the simulated network
// whose keys are schema property IRIs: every peer publishes each
// populated property of its active-schema under the property itself and
// all of its superproperties (baking the subsumption closure into the
// index), so a single O(log n)-hop lookup for a query pattern's property
// returns every peer able to answer it — including subproperty providers.
//
// The ring stabilizes eagerly after each membership change (this is a
// simulation substrate, not a churn-tolerant Chord), but lookups route
// hop by hop through real network messages so the experiment harness can
// account them.
package dht

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// fingerBits is the ring's identifier width (and finger-table size).
const fingerBits = 64

// hashKey maps a string onto the ring.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Registration is one published advertisement entry: a peer declaring a
// populated pattern, indexed under some (super)property.
type Registration struct {
	// Peer is the advertising peer.
	Peer pattern.PeerID `json:"peer"`
	// Pattern is the populated pattern (the peer's own property with its
	// end-point classes, not the index key).
	Pattern pattern.PathPattern `json:"pattern"`
	// SchemaName scopes the registration to its SON.
	SchemaName string `json:"schemaName"`
}

// node is one DHT participant's state.
type node struct {
	id   pattern.PeerID
	hash uint64

	mu     sync.Mutex
	store  map[rdf.IRI][]Registration // keys this node is responsible for
	finger []pattern.PeerID           // finger[i] = successor(hash + 2^i)
	succ   pattern.PeerID
	pred   pattern.PeerID
}

// Ring is a Chord-style DHT over the simulated network.
type Ring struct {
	// Net is the transport lookups route over.
	Net *network.Network
	// DeadlineMS bounds every lookup/put hop on the simulated clock
	// (0 = none); a slow or stalled peer fails the hop instead of
	// pinning the caller.
	DeadlineMS float64

	mu    sync.Mutex
	nodes map[pattern.PeerID]*node
	order []pattern.PeerID // membership sorted by ring hash
}

// NewRing returns an empty ring on the network.
func NewRing(net *network.Network) *Ring {
	return &Ring{Net: net, nodes: map[pattern.PeerID]*node{}}
}

// Join adds a peer to the ring and re-stabilizes finger tables. Keys the
// new node becomes responsible for are handed over from its successor.
func (r *Ring) Join(id pattern.PeerID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.nodes[id]; dup {
		return fmt.Errorf("dht: node %s already joined", id)
	}
	n := &node{id: id, hash: hashKey(string(id)), store: map[rdf.IRI][]Registration{}}
	r.nodes[id] = n
	r.Net.AddNode(id)
	r.Net.Handle(id, "dht.find", r.findHandler(n))
	r.Net.Handle(id, "dht.put", r.putHandler(n))
	r.rebuildLocked()
	r.redistributeLocked()
	return nil
}

// Leave removes a peer, handing its keys to its successor.
func (r *Ring) Leave(id pattern.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return
	}
	delete(r.nodes, id)
	r.rebuildLocked()
	// Hand over stored keys. Two node.mu instances are nested here, so
	// they are taken in deterministic (hash, id) order: every path that
	// holds two node locks agrees on the order, and no other path nests
	// them at all.
	if len(r.order) > 0 {
		succ := r.nodes[r.successorOfLocked(n.hash)]
		first, second := n, succ
		if succ.hash < n.hash || (succ.hash == n.hash && succ.id < n.id) {
			first, second = succ, n
		}
		first.mu.Lock()
		//lint:allow lockorder two node.mu instances nested in deterministic (hash, id) order; no opposing nesting exists
		second.mu.Lock()
		for k, regs := range n.store {
			succ.store[k] = append(succ.store[k], regs...)
		}
		second.mu.Unlock()
		first.mu.Unlock()
	}
}

// Size returns the ring membership count.
func (r *Ring) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// rebuildLocked recomputes the sorted membership and every node's
// successor, predecessor and finger table.
func (r *Ring) rebuildLocked() {
	r.order = r.order[:0]
	for id := range r.nodes {
		r.order = append(r.order, id)
	}
	sort.Slice(r.order, func(i, j int) bool {
		return r.nodes[r.order[i]].hash < r.nodes[r.order[j]].hash
	})
	if len(r.order) == 0 {
		return
	}
	for i, id := range r.order {
		n := r.nodes[id]
		n.mu.Lock()
		n.succ = r.order[(i+1)%len(r.order)]
		n.pred = r.order[(i-1+len(r.order))%len(r.order)]
		n.finger = make([]pattern.PeerID, fingerBits)
		for b := 0; b < fingerBits; b++ {
			target := n.hash + (uint64(1) << uint(b)) // wraps naturally
			n.finger[b] = r.successorOfLocked(target)
		}
		n.mu.Unlock()
	}
}

// successorOfLocked returns the node responsible for a ring position.
func (r *Ring) successorOfLocked(h uint64) pattern.PeerID {
	if len(r.order) == 0 {
		return ""
	}
	i := sort.Search(len(r.order), func(i int) bool {
		return r.nodes[r.order[i]].hash >= h
	})
	if i == len(r.order) {
		i = 0
	}
	return r.order[i]
}

// redistributeLocked reassigns every stored key to its current
// responsible node (after a join).
func (r *Ring) redistributeLocked() {
	type kv struct {
		key  rdf.IRI
		regs []Registration
	}
	// Drain in sorted node-then-key order: entries for the same key from
	// different nodes are concatenated at their new owner, so the drain
	// order would otherwise leak map iteration order into lookup results.
	ids := make([]pattern.PeerID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var all []kv
	for _, id := range ids {
		n := r.nodes[id]
		n.mu.Lock()
		keys := make([]rdf.IRI, 0, len(n.store))
		for k := range n.store {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			all = append(all, kv{k, n.store[k]})
		}
		n.store = map[rdf.IRI][]Registration{}
		n.mu.Unlock()
	}
	for _, e := range all {
		owner := r.nodes[r.successorOfLocked(hashKey(string(e.key)))]
		owner.mu.Lock()
		owner.store[e.key] = append(owner.store[e.key], e.regs...)
		owner.mu.Unlock()
	}
}

// responsible reports whether node n owns key hash h.
func (r *Ring) responsible(n *node, h uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.successorOfLocked(h) == n.id
}

// closestFinger returns n's finger that most closely precedes target
// without overshooting, falling back to the successor.
func (n *node) closestFinger(target uint64) pattern.PeerID {
	n.mu.Lock()
	defer n.mu.Unlock()
	best := n.succ
	bestDist := distance(n.hash, target) // anything closer wins
	for _, f := range n.finger {
		if f == "" || f == n.id {
			continue
		}
		fh := hashKey(string(f))
		d := distance(fh, target)
		if d < bestDist {
			bestDist = d
			best = f
		}
	}
	return best
}

// distance is the clockwise ring distance from a to b.
func distance(a, b uint64) uint64 { return b - a } // unsigned wrap-around

// wire bodies.
type findReq struct {
	Key rdf.IRI `json:"key"`
}
type findResp struct {
	Regs []Registration `json:"regs"`
	Hops int            `json:"hops"`
}
type putReq struct {
	Key rdf.IRI      `json:"key"`
	Reg Registration `json:"reg"`
}

// findHandler answers or forwards a lookup.
func (r *Ring) findHandler(n *node) network.Handler {
	return func(msg network.Message) ([]byte, error) {
		var req findReq
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return nil, fmt.Errorf("dht: bad find request: %w", err)
		}
		h := hashKey(string(req.Key))
		if r.responsible(n, h) {
			n.mu.Lock()
			regs := append([]Registration{}, n.store[req.Key]...)
			n.mu.Unlock()
			return json.Marshal(findResp{Regs: regs, Hops: 0})
		}
		next := n.closestFinger(h)
		reply, err := r.Net.CallWithin(n.id, next, "dht.find", msg.Payload, r.DeadlineMS)
		if err != nil {
			return nil, fmt.Errorf("dht: forward to %s: %w", next, err)
		}
		var resp findResp
		if err := json.Unmarshal(reply, &resp); err != nil {
			return nil, err
		}
		resp.Hops++
		return json.Marshal(resp)
	}
}

// putHandler stores or forwards a registration.
func (r *Ring) putHandler(n *node) network.Handler {
	return func(msg network.Message) ([]byte, error) {
		var req putReq
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return nil, fmt.Errorf("dht: bad put request: %w", err)
		}
		h := hashKey(string(req.Key))
		if r.responsible(n, h) {
			n.mu.Lock()
			// Deduplicate identical registrations.
			dup := false
			for _, existing := range n.store[req.Key] {
				if existing.Peer == req.Reg.Peer && existing.Pattern.SameShape(req.Reg.Pattern) {
					dup = true
					break
				}
			}
			if !dup {
				n.store[req.Key] = append(n.store[req.Key], req.Reg)
			}
			n.mu.Unlock()
			return []byte("ok"), nil
		}
		next := n.closestFinger(h)
		return r.Net.CallWithin(n.id, next, "dht.put", msg.Payload, r.DeadlineMS)
	}
}

// Publish indexes a peer's active-schema: each populated pattern is
// registered under its property and every superproperty per the schema —
// the "RDF/S schemas with subsumption information" part of the paper's
// proposal. Returns the number of registrations stored.
func (r *Ring) Publish(from pattern.PeerID, schema *rdf.Schema, as *pattern.ActiveSchema) (int, error) {
	stored := 0
	for _, pp := range as.Patterns {
		for _, key := range schema.SuperProperties(pp.Property) {
			body, err := json.Marshal(putReq{Key: key, Reg: Registration{
				Peer: from, Pattern: pp, SchemaName: as.SchemaName,
			}})
			if err != nil {
				return stored, fmt.Errorf("dht: marshal put: %w", err)
			}
			if _, err := r.Net.CallWithin(from, from, "dht.put", body, r.DeadlineMS); err != nil {
				return stored, err
			}
			stored++
		}
	}
	return stored, nil
}

// Lookup resolves the peers registered under a property key, returning
// the registrations and the number of forwarding hops taken.
func (r *Ring) Lookup(from pattern.PeerID, key rdf.IRI) ([]Registration, int, error) {
	body, err := json.Marshal(findReq{Key: key})
	if err != nil {
		return nil, 0, fmt.Errorf("dht: marshal find: %w", err)
	}
	reply, err := r.Net.CallWithin(from, from, "dht.find", body, r.DeadlineMS)
	if err != nil {
		return nil, 0, err
	}
	var resp findResp
	if err := json.Unmarshal(reply, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Regs, resp.Hops, nil
}
