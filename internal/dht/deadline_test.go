package dht_test

import (
	"errors"
	"testing"

	"sqpeer/internal/dht"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/stats"
)

// TestDeadlineBoundsLookupForwarding: Ring.DeadlineMS bounds every
// forwarded hop, so a lookup that must route through a slow peer fails
// with a transient deadline error instead of pinning the caller, while
// the zero default preserves the old unbounded behavior.
func TestDeadlineBoundsLookupForwarding(t *testing.T) {
	net := network.New()
	ring := dht.NewRing(net)
	for _, id := range []pattern.PeerID{"A", "B"} {
		if err := ring.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	key := gen.N1("prop1")
	// One of the two nodes owns the key; the other must forward one hop.
	var slow pattern.PeerID
	for _, from := range []pattern.PeerID{"A", "B"} {
		_, hops, err := ring.Lookup(from, key)
		if err != nil {
			t.Fatalf("unbounded Lookup(%s): %v", from, err)
		}
		if hops > 0 {
			slow = from
		}
	}
	if slow == "" {
		t.Fatal("neither node forwarded; expected a one-hop lookup")
	}
	net.SetLink("A", "B", stats.Link{LatencyMS: 500, BandwidthKBps: 1000})
	ring.DeadlineMS = 10
	if _, _, err := ring.Lookup(slow, key); err == nil {
		t.Fatal("lookup over a 500ms link beat a 10ms deadline")
	} else {
		var de *network.DeliveryError
		if !errors.As(err, &de) || de.Reason != network.ReasonDeadline {
			t.Fatalf("expected a deadline DeliveryError, got %v", err)
		}
		if !network.Transient(err) {
			t.Fatalf("deadline miss should be transient: %v", err)
		}
	}
	// Zero disables the bound again.
	ring.DeadlineMS = 0
	if _, _, err := ring.Lookup(slow, key); err != nil {
		t.Fatalf("unbounded lookup over the slow link failed: %v", err)
	}
}

// TestDeadlineBoundsPublish: a publish hop that cannot make its deadline
// surfaces the error to the publisher.
func TestDeadlineBoundsPublish(t *testing.T) {
	net := network.New()
	ring := dht.NewRing(net)
	for _, id := range []pattern.PeerID{"A", "B"} {
		if err := ring.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	net.SetLink("A", "B", stats.Link{LatencyMS: 500, BandwidthKBps: 1000})
	ring.DeadlineMS = 10
	schema := gen.PaperSchema()
	sawDeadline := false
	for _, from := range []pattern.PeerID{"A", "B"} {
		as := gen.PaperActiveSchemas()["P1"]
		if _, err := ring.Publish(from, schema, as); err != nil {
			var de *network.DeliveryError
			if !errors.As(err, &de) || de.Reason != network.ReasonDeadline {
				t.Fatalf("Publish(%s): expected deadline error, got %v", from, err)
			}
			sawDeadline = true
		}
	}
	// P1's patterns hash under several keys; at least one publisher must
	// have needed the slow forward hop.
	if !sawDeadline {
		t.Fatal("no publish hop tripped the deadline; test setup is vacuous")
	}
}

// TestLeaveDrainsRingPreservingKeys drains an eleven-node ring down to a
// single survivor. Every departure hands the leaver's keys to its
// successor under two node locks taken in deterministic (hash, id)
// order; draining the whole membership exercises both orderings (the
// max-hash node's departure wraps to the ring minimum, every other
// departure locks leaver-first), and no registration may be lost.
func TestLeaveDrainsRingPreservingKeys(t *testing.T) {
	ring, _ := paperRing(t, 7)
	before, _, err := ring.Lookup("P1", gen.N1("prop2"))
	if err != nil {
		t.Fatal(err)
	}
	leave := []pattern.PeerID{
		"X000", "X001", "X002", "X003", "X004", "X005", "X006",
		"P2", "P3", "P4",
	}
	for _, id := range leave {
		ring.Leave(id)
	}
	if ring.Size() != 1 {
		t.Fatalf("Size after drain = %d, want 1", ring.Size())
	}
	after, _, err := ring.Lookup("P1", gen.N1("prop2"))
	if err != nil {
		t.Fatalf("Lookup on the last node: %v", err)
	}
	if len(after) < len(before) {
		t.Errorf("registrations lost while draining: %d < %d", len(after), len(before))
	}
}
