package dht

import (
	"fmt"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// Router routes semantic query patterns through the DHT instead of a
// local advertisement registry: one ring lookup per path pattern returns
// the candidate registrations, which are then filtered with the same
// sound-and-complete subsumption test the registry router uses. Because
// Publish already indexed every pattern under its superproperties, a
// lookup for a query property finds subproperty providers without any
// extra traffic.
type Router struct {
	// Ring is the schema DHT.
	Ring *Ring
	// Schema supplies the subsumption checks.
	Schema *rdf.Schema
	// Self is the peer issuing lookups.
	Self pattern.PeerID
}

// NewRouter returns a DHT-backed router for a peer.
func NewRouter(ring *Ring, schema *rdf.Schema, self pattern.PeerID) *Router {
	return &Router{Ring: ring, Schema: schema, Self: self}
}

// RouteStats reports the DHT work one routing call performed.
type RouteStats struct {
	// Lookups is the number of ring lookups (one per path pattern).
	Lookups int
	// Hops is the total forwarding hops across lookups.
	Hops int
	// Candidates counts registrations returned before filtering.
	Candidates int
}

// Route annotates the query pattern from DHT lookups.
func (r *Router) Route(q *pattern.QueryPattern) (*pattern.Annotated, RouteStats, error) {
	ann := pattern.NewAnnotated(q)
	var st RouteStats
	for _, qp := range q.Patterns {
		regs, hops, err := r.Ring.Lookup(r.Self, qp.Property)
		if err != nil {
			return nil, st, fmt.Errorf("dht: routing %s: %w", qp.ID, err)
		}
		st.Lookups++
		st.Hops += hops
		st.Candidates += len(regs)
		for _, reg := range regs {
			if reg.SchemaName != "" && q.SchemaName != "" && reg.SchemaName != q.SchemaName {
				continue
			}
			if !pattern.IsSubsumed(r.Schema, reg.Pattern, qp) {
				continue
			}
			ann.Annotate(qp.ID, reg.Peer, []pattern.PathPattern{{
				ID:         qp.ID,
				SubjectVar: qp.SubjectVar,
				ObjectVar:  qp.ObjectVar,
				Property:   reg.Pattern.Property,
				Domain:     reg.Pattern.Domain,
				Range:      reg.Pattern.Range,
			}})
		}
	}
	return ann, st, nil
}
