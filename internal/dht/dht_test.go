package dht_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/dht"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

func paperRing(t testing.TB, extraNodes int) (*dht.Ring, *network.Network) {
	t.Helper()
	net := network.New()
	ring := dht.NewRing(net)
	schema := gen.PaperSchema()
	for id, as := range gen.PaperActiveSchemas() {
		if err := ring.Join(id); err != nil {
			t.Fatalf("Join(%s): %v", id, err)
		}
		if _, err := ring.Publish(id, schema, as); err != nil {
			t.Fatalf("Publish(%s): %v", id, err)
		}
	}
	for i := 0; i < extraNodes; i++ {
		id := pattern.PeerID(fmt.Sprintf("X%03d", i))
		if err := ring.Join(id); err != nil {
			t.Fatalf("Join(%s): %v", id, err)
		}
	}
	return ring, net
}

func TestLookupFindsDirectProviders(t *testing.T) {
	ring, _ := paperRing(t, 0)
	regs, _, err := ring.Lookup("P1", gen.N1("prop2"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	peers := map[pattern.PeerID]bool{}
	for _, reg := range regs {
		peers[reg.Peer] = true
	}
	for _, want := range []pattern.PeerID{"P1", "P3", "P4"} {
		if !peers[want] {
			t.Errorf("prop2 lookup missing %s: %v", want, regs)
		}
	}
	if peers["P2"] {
		t.Errorf("prop2 lookup returned non-provider P2")
	}
}

// TestLookupSubsumptionIndexing: publishing under superproperties makes a
// prop1 lookup find P4, whose base populates only prop4 ⊑ prop1 — the
// "DHT for RDF/S schemas with subsumption information" of §5.
func TestLookupSubsumptionIndexing(t *testing.T) {
	ring, _ := paperRing(t, 0)
	regs, _, err := ring.Lookup("P2", gen.N1("prop1"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	var foundP4 bool
	for _, reg := range regs {
		if reg.Peer == "P4" {
			foundP4 = true
			if reg.Pattern.Property != gen.N1("prop4") {
				t.Errorf("P4's registration must carry its own prop4 pattern, got %s", reg.Pattern.Property)
			}
		}
	}
	if !foundP4 {
		t.Fatalf("prop1 lookup missed the prop4 provider P4: %v", regs)
	}
	// The reverse must not hold: a prop4 lookup must not return prop1
	// providers.
	regs4, _, err := ring.Lookup("P2", gen.N1("prop4"))
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range regs4 {
		if reg.Pattern.Property == gen.N1("prop1") {
			t.Errorf("prop4 lookup returned a plain prop1 provider: %v", reg)
		}
	}
}

func TestDHTRouterMatchesRegistryRouting(t *testing.T) {
	ring, _ := paperRing(t, 0)
	router := dht.NewRouter(ring, gen.PaperSchema(), "P1")
	ann, st, err := router.Route(gen.PaperQuery())
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P2 P4]" {
		t.Errorf("DHT Q1 peers = %s, want [P1 P2 P4]", got)
	}
	if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P1 P3 P4]" {
		t.Errorf("DHT Q2 peers = %s, want [P1 P3 P4]", got)
	}
	if !ann.Complete() {
		t.Error("DHT routing incomplete")
	}
	if st.Lookups != 2 {
		t.Errorf("Lookups = %d", st.Lookups)
	}
	// P4's rewrite carries prop4.
	rw := ann.RewritesFor("Q1", "P4")
	if len(rw) != 1 || rw[0].Property != gen.N1("prop4") {
		t.Errorf("DHT rewrite = %v", rw)
	}
}

func TestLookupHopsScaleLogarithmically(t *testing.T) {
	// With 64 extra nodes, hop counts should stay well below ring size.
	ring, _ := paperRing(t, 64)
	maxHops := 0
	for _, key := range []rdf.IRI{gen.N1("prop1"), gen.N1("prop2"), gen.N1("prop4")} {
		_, hops, err := ring.Lookup("X000", key)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", key, err)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	if maxHops > 14 { // ~2·log2(68) with slack
		t.Errorf("lookup took %d hops on a 68-node ring", maxHops)
	}
}

func TestJoinRedistributesKeys(t *testing.T) {
	net := network.New()
	ring := dht.NewRing(net)
	schema := gen.PaperSchema()
	if err := ring.Join("P1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Publish("P1", schema, gen.PaperActiveSchemas()["P1"]); err != nil {
		t.Fatal(err)
	}
	// After many joins the key must still resolve from any node.
	for i := 0; i < 16; i++ {
		if err := ring.Join(pattern.PeerID(fmt.Sprintf("N%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	regs, _, err := ring.Lookup("N07", gen.N1("prop1"))
	if err != nil {
		t.Fatalf("Lookup after joins: %v", err)
	}
	if len(regs) == 0 {
		t.Fatal("registration lost during redistribution")
	}
}

func TestLeaveHandsOverKeys(t *testing.T) {
	ring, _ := paperRing(t, 8)
	// Find who holds prop2 by leaving nodes until lookups still work.
	before, _, err := ring.Lookup("P1", gen.N1("prop2"))
	if err != nil {
		t.Fatal(err)
	}
	ring.Leave("X003")
	ring.Leave("X005")
	after, _, err := ring.Lookup("P1", gen.N1("prop2"))
	if err != nil {
		t.Fatalf("Lookup after leave: %v", err)
	}
	if len(after) < len(before) {
		t.Errorf("registrations lost on leave: %d < %d", len(after), len(before))
	}
	if ring.Size() != 4+8-2 {
		t.Errorf("Size = %d", ring.Size())
	}
}

func TestDuplicatePublishIsIdempotent(t *testing.T) {
	ring, _ := paperRing(t, 0)
	schema := gen.PaperSchema()
	before, _, _ := ring.Lookup("P2", gen.N1("prop1"))
	if _, err := ring.Publish("P2", schema, gen.PaperActiveSchemas()["P2"]); err != nil {
		t.Fatal(err)
	}
	after, _, _ := ring.Lookup("P2", gen.N1("prop1"))
	if len(after) != len(before) {
		t.Errorf("duplicate publish grew the index: %d → %d", len(before), len(after))
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	net := network.New()
	ring := dht.NewRing(net)
	if err := ring.Join("P1"); err != nil {
		t.Fatal(err)
	}
	if err := ring.Join("P1"); err == nil {
		t.Error("duplicate join accepted")
	}
	ring.Leave("ghost") // must not panic
}

func TestLookupUnknownKeyIsEmpty(t *testing.T) {
	ring, _ := paperRing(t, 4)
	regs, _, err := ring.Lookup("P1", "http://nowhere#prop")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(regs) != 0 {
		t.Errorf("unknown key returned %v", regs)
	}
}
