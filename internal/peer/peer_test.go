package peer_test

import (
	"fmt"
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rvl"
)

func newPeer(t testing.TB, net *network.Network, id pattern.PeerID, base *rdf.Base, kind peer.Kind) *peer.Peer {
	t.Helper()
	p, err := peer.New(peer.Config{ID: id, Kind: kind, Schema: gen.PaperSchema(), Base: base}, net)
	if err != nil {
		t.Fatalf("peer.New(%s): %v", id, err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	net := network.New()
	if _, err := peer.New(peer.Config{Schema: gen.PaperSchema()}, net); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := peer.New(peer.Config{ID: "P1"}, net); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestActiveSchemaFromBase(t *testing.T) {
	net := network.New()
	bases := gen.PaperBases(2)
	p4 := newPeer(t, net, "P4", bases["P4"], peer.SimplePeer)
	if !p4.Active.HasProperty(gen.N1("prop4")) || !p4.Active.HasProperty(gen.N1("prop2")) {
		t.Errorf("P4 active-schema = %s", p4.Active)
	}
	// A sharing peer registers itself.
	if _, ok := p4.Registry.Get("P4"); !ok {
		t.Error("peer does not know itself")
	}
	// Statistics include prop1 via subsumption closure.
	if p4.Catalog.Card("P4", gen.N1("prop1")) != 2 {
		t.Errorf("prop1 card via closure = %d", p4.Catalog.Card("P4", gen.N1("prop1")))
	}
}

func TestActiveSchemaFromViews(t *testing.T) {
	net := network.New()
	schema := gen.PaperSchema()
	views, err := rvl.ParseAndAnalyze(gen.PaperRVL, schema)
	if err != nil {
		t.Fatalf("rvl: %v", err)
	}
	p, err := peer.New(peer.Config{ID: "PV", Kind: peer.SimplePeer, Schema: schema, Views: views}, net)
	if err != nil {
		t.Fatalf("peer.New: %v", err)
	}
	if !p.Active.HasProperty(gen.N1("prop4")) || p.Active.HasProperty(gen.N1("prop1")) {
		t.Errorf("view-derived active-schema = %s", p.Active)
	}
	if p.Active.SchemaName != gen.PaperNS {
		t.Errorf("SchemaName = %q", p.Active.SchemaName)
	}
}

func TestPushAndPullAdvertisement(t *testing.T) {
	net := network.New()
	bases := gen.PaperBases(2)
	p1 := newPeer(t, net, "P1", bases["P1"], peer.SimplePeer)
	p2 := newPeer(t, net, "P2", bases["P2"], peer.SimplePeer)

	// Push: P2 tells P1 about itself.
	if err := p2.PushAdvertisement("P1"); err != nil {
		t.Fatalf("PushAdvertisement: %v", err)
	}
	if as, ok := p1.Registry.Get("P2"); !ok || !as.HasProperty(gen.N1("prop1")) {
		t.Errorf("P1 did not learn P2's advertisement: %v %v", as, ok)
	}
	if p1.Catalog.Card("P2", gen.N1("prop1")) != 2 {
		t.Errorf("P1 did not learn P2's stats")
	}

	// Pull: P2 requests P1's advertisement.
	if err := p2.PullAdvertisement("P1"); err != nil {
		t.Fatalf("PullAdvertisement: %v", err)
	}
	if _, ok := p2.Registry.Get("P1"); !ok {
		t.Error("P2 did not learn P1's advertisement via pull")
	}
	// Pull from a dead peer errors.
	net.Fail("P1")
	if err := p2.PullAdvertisement("P1"); err == nil {
		t.Error("pull from failed peer succeeded")
	}
}

func TestForgetAndNeighbors(t *testing.T) {
	net := network.New()
	p1 := newPeer(t, net, "P1", gen.PaperBases(1)["P1"], peer.SimplePeer)
	p1.AddNeighbor("P2")
	p1.AddNeighbor("P3")
	if got := p1.Neighbors(); fmt.Sprint(got) != "[P2 P3]" {
		t.Errorf("Neighbors = %v", got)
	}
	p1.Learn(&peer.Advertisement{Peer: "P2", ActiveSchema: gen.PaperActiveSchemas()["P2"]})
	p1.Forget("P2")
	if _, ok := p1.Registry.Get("P2"); ok {
		t.Error("Forget left registry entry")
	}
	if got := p1.Neighbors(); fmt.Sprint(got) != "[P3]" {
		t.Errorf("Neighbors after Forget = %v", got)
	}
	// Learn tolerates nil and empty advertisements.
	p1.Learn(nil)
	p1.Learn(&peer.Advertisement{})
}

func TestRequestRoutingFromSuperPeer(t *testing.T) {
	net := network.New()
	sp := newPeer(t, net, "SP1", nil, peer.SuperPeer)
	for id, as := range gen.PaperActiveSchemas() {
		sp.Learn(&peer.Advertisement{Peer: id, ActiveSchema: as})
	}
	p1 := newPeer(t, net, "P1", gen.PaperBases(1)["P1"], peer.SimplePeer)
	ann, err := p1.RequestRouting("SP1", gen.PaperQuery())
	if err != nil {
		t.Fatalf("RequestRouting: %v", err)
	}
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P2 P4]" {
		t.Errorf("super-peer annotation Q1 = %s", got)
	}
	if !ann.Complete() {
		t.Error("super-peer routing should be complete")
	}
}

func TestPlanQueryViaSuperPeer(t *testing.T) {
	net := network.New()
	sp := newPeer(t, net, "SP1", nil, peer.SuperPeer)
	for id, as := range gen.PaperActiveSchemas() {
		sp.Learn(&peer.Advertisement{Peer: id, ActiveSchema: as})
	}
	p1 := newPeer(t, net, "P1", gen.PaperBases(1)["P1"], peer.SimplePeer)
	p1.Super = "SP1"
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	if pr.Raw.String() != "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))" {
		t.Errorf("plan via super-peer = %s", pr.Raw)
	}
}

func TestAskEndToEndWithFilters(t *testing.T) {
	net := network.New()
	bases := gen.PaperBases(3)
	var peers []*peer.Peer
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		peers = append(peers, newPeer(t, net, id, bases[id], peer.SimplePeer))
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	p1 := peers[0]
	rows, err := p1.Ask(gen.PaperRQL)
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if rows.Len() != 9 {
		t.Errorf("Ask = %d rows, want 9:\n%s", rows.Len(), rows)
	}
	// A WHERE filter that keeps only one join key.
	filtered, err := p1.Ask(`SELECT X, Y FROM {X;n1:C1}n1:prop1{Y}, {Y}n1:prop2{Z}
WHERE Y like "*y0" USING NAMESPACE n1 = &` + gen.PaperNS + `&`)
	if err != nil {
		t.Fatalf("Ask filtered: %v", err)
	}
	if filtered.Len() != 3 {
		t.Errorf("filtered Ask = %d rows, want 3:\n%s", filtered.Len(), filtered)
	}
	// Parse errors surface.
	if _, err := p1.Ask("garbage"); err == nil {
		t.Error("garbage query accepted")
	}
}

func TestRefreshAdvertisement(t *testing.T) {
	net := network.New()
	p := newPeer(t, net, "P1", rdf.NewBase(), peer.SimplePeer)
	if p.Active.Size() != 0 {
		t.Fatalf("empty base advertised %s", p.Active)
	}
	p.Base.Add(rdf.Statement("http://d#a", gen.N1("prop3"), "http://d#b"))
	p.RefreshAdvertisement()
	if !p.Active.HasProperty(gen.N1("prop3")) {
		t.Errorf("refresh missed prop3: %s", p.Active)
	}
	if p.Catalog.Card("P1", gen.N1("prop3")) != 1 {
		t.Error("refresh did not update stats")
	}
}

func TestKindString(t *testing.T) {
	if peer.ClientPeer.String() != "client-peer" || peer.SimplePeer.String() != "simple-peer" ||
		peer.SuperPeer.String() != "super-peer" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(peer.Kind(9).String(), "kind") {
		t.Error("unknown kind should render")
	}
}

func TestAdvertisementStatsCarryLoad(t *testing.T) {
	net := network.New()
	p, err := peer.New(peer.Config{ID: "P1", Kind: peer.SimplePeer, Schema: gen.PaperSchema(),
		Base: gen.PaperBases(1)["P1"], Slots: 7}, net)
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advertisement()
	if adv.Stats.Slots != 7 {
		t.Errorf("Slots = %d", adv.Stats.Slots)
	}
	if adv.Stats.Card(gen.N1("prop1")) != 1 {
		t.Errorf("advertised card = %d", adv.Stats.Card(gen.N1("prop1")))
	}
}
