package peer_test

import (
	"errors"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/peer"
	"sqpeer/internal/stats"
)

// TestAdvertisementDeadline: Peer.DeadlineMS bounds the control-plane
// advertisement RPCs, so pushing to a peer behind a gray-failed link
// fails fast with a transient deadline error; zero keeps them unbounded.
func TestAdvertisementDeadline(t *testing.T) {
	net := network.New()
	bases := gen.PaperBases(2)
	p1 := newPeer(t, net, "P1", bases["P1"], peer.SimplePeer)
	p2 := newPeer(t, net, "P2", bases["P2"], peer.SimplePeer)
	_ = p1
	net.SetLink("P1", "P2", stats.Link{LatencyMS: 500, BandwidthKBps: 1000})

	p2.DeadlineMS = 10
	err := p2.PushAdvertisement("P1")
	if err == nil {
		t.Fatal("push over a 500ms link beat a 10ms deadline")
	}
	var de *network.DeliveryError
	if !errors.As(err, &de) || de.Reason != network.ReasonDeadline {
		t.Fatalf("expected a deadline DeliveryError, got %v", err)
	}
	if !network.Transient(err) {
		t.Fatalf("deadline miss should be transient: %v", err)
	}
	if err := p2.PullAdvertisement("P1"); err == nil {
		t.Fatal("pull over a 500ms link beat a 10ms deadline")
	}

	// Zero restores the unbounded behavior.
	p2.DeadlineMS = 0
	if err := p2.PushAdvertisement("P1"); err != nil {
		t.Fatalf("unbounded push failed: %v", err)
	}
	if err := p2.PullAdvertisement("P1"); err != nil {
		t.Fatalf("unbounded pull failed: %v", err)
	}
}

// TestConfigDeadlineMirrorsToPeer pins the wiring: Config.DeadlineMS
// feeds both the data-plane engine and the peer's control-plane field.
func TestConfigDeadlineMirrorsToPeer(t *testing.T) {
	net := network.New()
	p, err := peer.New(peer.Config{
		ID: "P1", Kind: peer.SimplePeer, Schema: gen.PaperSchema(),
		Base: gen.PaperBases(1)["P1"], DeadlineMS: 42,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if p.DeadlineMS != 42 {
		t.Errorf("Peer.DeadlineMS = %v, want 42", p.DeadlineMS)
	}
	if p.Engine.DeadlineMS != 42 {
		t.Errorf("Engine.DeadlineMS = %v, want 42", p.Engine.DeadlineMS)
	}
}
