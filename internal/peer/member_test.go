package peer_test

import (
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/membership"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
)

// Membership-wired peers build their routing views from anti-entropy
// alone: no PushAdvertisement, no shared registry — the detector's
// ApplyAdv callback Learns whatever the sync pass pulled, confirm-dead
// quarantines (pinned when the breaker is on), and a higher-incarnation
// rejoin reinstates.
func TestMembershipFeedsRoutingView(t *testing.T) {
	net := network.New()
	bases := gen.PaperBases(3)
	mopts := func() *membership.Options {
		return &membership.Options{Seed: 42, SuspectTicks: 2, DeadRetryTicks: 2}
	}
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3"} {
		p, err := peer.New(peer.Config{
			ID: id, Kind: peer.SimplePeer, Schema: gen.PaperSchema(), Base: bases[id],
			DeadlineMS: 200, MaxRetries: 2, AllowPartial: true, Quarantine: true,
			Membership: mopts(),
		}, net)
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		peers[id] = p
	}
	for _, id := range []pattern.PeerID{"P2", "P3"} {
		if err := peers[id].Membership.Join("P1"); err != nil {
			t.Fatalf("join %s: %v", id, err)
		}
	}
	tickAll := func(n int) {
		for i := 0; i < n; i++ {
			for _, id := range []pattern.PeerID{"P1", "P2", "P3"} {
				if !net.IsDown(id) {
					peers[id].Membership.Tick()
				}
				peers[id].Health.Tick()
			}
		}
	}
	tickAll(6)
	for id, p := range peers {
		for _, other := range []pattern.PeerID{"P1", "P2", "P3"} {
			if _, ok := p.Registry.Get(other); !ok {
				t.Fatalf("%s never learned %s via anti-entropy", id, other)
			}
		}
	}
	full, err := peers["P1"].Ask(gen.PaperRQL)
	if err != nil {
		t.Fatalf("Ask over membership-built view: %v", err)
	}
	if full.Len() == 0 {
		t.Fatal("membership-built view produced no rows")
	}

	// Crash P2 (a prop1 provider, so its rows are visible in the
	// projection): confirm-dead must condemn it out of P1's routing view.
	net.Fail("P2")
	tickAll(10)
	if !peers["P1"].Registry.IsQuarantined("P2") {
		t.Fatal("confirmed-dead P2 not quarantined at P1")
	}
	if !peers["P1"].Health.Condemned("P2") {
		t.Fatal("confirm-dead must pin the breaker, not start a cool-down")
	}
	reduced, err := peers["P1"].Ask(gen.PaperRQL)
	if err != nil {
		t.Fatalf("Ask with P2 condemned: %v", err)
	}
	if reduced.Len() >= full.Len() {
		t.Fatalf("rows with P2 condemned = %d, want < %d", reduced.Len(), full.Len())
	}

	// Restart + rejoin: the higher incarnation revives P2 everywhere.
	net.Recover("P2")
	peers["P2"].Membership.Rejoin()
	tickAll(10)
	if peers["P1"].Registry.IsQuarantined("P2") || peers["P1"].Health.Condemned("P2") {
		t.Fatal("rejoined P2 still condemned at P1")
	}
	restored, err := peers["P1"].Ask(gen.PaperRQL)
	if err != nil {
		t.Fatalf("Ask after rejoin: %v", err)
	}
	if restored.Len() != full.Len() {
		t.Fatalf("rows after rejoin = %d, want %d", restored.Len(), full.Len())
	}
}

// A client peer (empty active-schema) must never enter other peers'
// routing registries through the membership plane, mirroring the
// self-registration rule.
func TestMembershipSkipsNonSharingPeers(t *testing.T) {
	net := network.New()
	client, err := peer.New(peer.Config{
		ID: "C0", Kind: peer.ClientPeer, Schema: gen.PaperSchema(),
		Membership: &membership.Options{Seed: 1},
	}, net)
	if err != nil {
		t.Fatalf("New(C0): %v", err)
	}
	srv, err := peer.New(peer.Config{
		ID: "P1", Kind: peer.SimplePeer, Schema: gen.PaperSchema(),
		Base: gen.PaperBases(1)["P1"], Membership: &membership.Options{Seed: 1},
	}, net)
	if err != nil {
		t.Fatalf("New(P1): %v", err)
	}
	if err := client.Membership.Join("P1"); err != nil {
		t.Fatalf("join: %v", err)
	}
	for i := 0; i < 4; i++ {
		client.Membership.Tick()
		srv.Membership.Tick()
	}
	if _, ok := client.Registry.Get("P1"); !ok {
		t.Fatal("client did not learn the sharing peer")
	}
	if _, ok := srv.Registry.Get("C0"); ok {
		t.Fatal("client peer leaked into a routing registry via membership")
	}
	if st, ok := srv.Membership.StatusOf("C0"); !ok || st != membership.StatusAlive {
		t.Fatalf("sharing peer should still track the client's liveness: %v %v", st, ok)
	}
}

// Gossip piggybacked on channel traffic spreads liveness without any
// detector tick on the receiving side.
func TestGossipRidesChannelTraffic(t *testing.T) {
	net := network.New()
	bases := gen.PaperBases(2)
	mk := func(id pattern.PeerID) *peer.Peer {
		p, err := peer.New(peer.Config{
			ID: id, Kind: peer.SimplePeer, Schema: gen.PaperSchema(), Base: bases["P1"],
			DeadlineMS: 200, Membership: &membership.Options{Seed: 2},
		}, net)
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		return p
	}
	root, dest := mk("P1"), mk("P2")
	// Seed a death verdict at the destination; it must reach the root on
	// the result packets of an ordinary exchange.
	dest.Membership.Merge([]membership.Entry{{Peer: "ghost", Status: membership.StatusDead, Incarnation: 5}})
	ch, err := root.Channels.Open("P2", nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := dest.Channels.SendToRoot(ch.ID, 0, 1, []byte(`{}`)); err != nil {
		t.Fatalf("SendToRoot: %v", err)
	}
	if st, ok := root.Membership.StatusOf("ghost"); !ok || st != membership.StatusDead {
		t.Fatalf("gossip did not ride the packet: %v %v", st, ok)
	}
	if g := dest.Channels.Stats().GossipPiggybacked; g == 0 {
		t.Fatal("no piggyback accounted")
	}
}
