// Package peer implements SQPeer's node runtime (paper §3): client-,
// simple- and super-peers, each owning an RDF/S description base
// (materialized, or virtual through RVL views), an active-schema
// advertisement, a routing registry of known advertisements, a statistics
// catalog, and a distributed execution engine wired into the network.
package peer

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"sqpeer/internal/admission"
	"sqpeer/internal/channel"
	"sqpeer/internal/exec"
	"sqpeer/internal/membership"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
	"sqpeer/internal/rql"
	"sqpeer/internal/rvl"
	"sqpeer/internal/stats"
)

// Kind is a peer's role in the P2P system.
type Kind int

const (
	// ClientPeer only poses queries; it shares no base and does not
	// participate in routing or processing.
	ClientPeer Kind = iota
	// SimplePeer shares its base, advertises, processes queries.
	SimplePeer
	// SuperPeer additionally collects cluster advertisements and routes
	// queries for its simple-peers (hybrid architecture).
	SuperPeer
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ClientPeer:
		return "client-peer"
	case SimplePeer:
		return "simple-peer"
	case SuperPeer:
		return "super-peer"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config describes a peer at construction.
type Config struct {
	// ID names the peer on the network.
	ID pattern.PeerID
	// Kind is the peer's role.
	Kind Kind
	// Schema is the community RDF/S schema (SON) the peer commits to.
	Schema *rdf.Schema
	// Base is the peer's materialized description base (nil for pure
	// clients; ignored when Views are given and VirtualOnly is set).
	Base *rdf.Base
	// Views optionally advertise through RVL views instead of base
	// inspection (the virtual scenario of §2.2).
	Views []*rvl.CompiledView
	// Slots is the peer's concurrent-query processing capacity.
	Slots int
	// Policy is the peer's shipping policy for its own queries.
	Policy optimizer.ShippingPolicy
	// Parallelism bounds concurrent plan-branch evaluation in the peer's
	// engine; 0 means GOMAXPROCS (see exec.Engine.Parallelism).
	Parallelism int
	// DeadlineMS, when positive, bounds every dispatch and channel
	// delivery on the simulated clock (see exec.Engine.DeadlineMS).
	DeadlineMS float64
	// MaxRetries retries transiently-failed dispatches before replanning
	// (see exec.Engine.MaxRetries).
	MaxRetries int
	// AllowPartial opts the peer's queries into partial answers with
	// completeness annotations (see exec.Engine.AllowPartial).
	AllowPartial bool
	// MaxMigrations bounds surgical subtree migrations per query round;
	// 0 uses the engine default, exec.NoMigrations disables migration so
	// recovery falls back to full replan+restart (the PR-4 ablation).
	MaxMigrations int
	// Quarantine enables the circuit-breaker health tracker: failed peers
	// are quarantined from routing for a cool-down instead of forgotten.
	Quarantine bool
	// Tracer, when set, records a deterministic per-query trace for every
	// Ask/AskAnnotated posed at this peer: routing, planning, optimization
	// and distributed execution spans, with remote peers' spans grafted in
	// through the channel layer. Only the query root needs a tracer.
	Tracer *obs.Tracer
	// Obs, when set, is the unified metrics registry this peer publishes
	// into: a snapshot-time collector folds the engine's execution
	// counters, the channel manager's packet accounting and (when
	// Quarantine is on) the health breaker's transitions, all labeled
	// peer=<ID>. Several peers may share one registry.
	Obs *obs.Registry
	// Tenant and Priority are the default QoS this peer's own queries
	// run under (Ask/AskAnnotated); AskAnnotatedAs overrides per query.
	// The zero value is an untagged Low-priority query.
	Tenant   string
	Priority admission.Priority
	// Admission, when set, is the peer's admission controller: the
	// facade admits each query against the tenant's token bucket and
	// the priority's occupancy watermark (deadline-aware — rejections
	// whose retry-after exceeds DeadlineMS are flagged hopeless), and
	// the engine admits arriving subplans and sheds past-watermark work.
	// Its counters fold into the Obs collector alongside the engine's.
	Admission *admission.Controller
	// Events, when set, is the unified operations event log every layer
	// of this peer emits into: admission rejections and sheds, executor
	// dispatch/retry/migrate/resume/replan/ledger transitions, channel
	// dedupe drops and plan-change arrivals, health quarantines and
	// condemnations, membership verdicts, and a "query-done" per answered
	// facade query. Several peers may share one log (events carry the
	// peer ID). Nil disables the plane entirely — the ablation path.
	Events *obs.EventLog
	// FlightRec, when set alongside Events, attaches a per-peer flight
	// recorder to the log: a bounded ring of this peer's recent events
	// plus anomaly triggers (slow query, shed burst, condemnation,
	// migration storm) that freeze post-mortem dumps merging the ring
	// with the query's span subtree, critical-path attribution, row
	// ledger and admission occupancy.
	FlightRec *obs.RecorderConfig
	// Membership, when set, runs a failure detector + anti-entropy
	// endpoint at this peer: the routing registry becomes per-peer state
	// fed by membership events — advertisements adopted via anti-entropy
	// are Learned, a confirm-dead verdict condemns the peer (Health
	// breaker pinned open when Quarantine is on, plain registry
	// quarantine otherwise — either way the epoch bumps so in-flight
	// queries migrate), and a higher-incarnation rejoin reinstates it.
	// Gossip updates additionally piggyback on the peer's channel
	// traffic. The owner drives Peer.Membership.Tick once per protocol
	// round.
	Membership *membership.Options
}

// Advertisement is the wire form of a peer's self-description: its
// active-schema plus the statistics the optimizer wants.
type Advertisement struct {
	// Peer is the advertising peer.
	Peer pattern.PeerID `json:"peer"`
	// ActiveSchema is the populated subset of the community schema.
	ActiveSchema *pattern.ActiveSchema `json:"activeSchema"`
	// Stats carries cardinalities and load for optimization.
	Stats *stats.PeerStats `json:"stats"`
}

// Peer is one running node.
type Peer struct {
	// ID names the peer.
	ID pattern.PeerID
	// Kind is the peer's role.
	Kind Kind
	// Schema is the community schema.
	Schema *rdf.Schema
	// Base is the local description base (possibly empty).
	Base *rdf.Base
	// Active is the peer's own advertisement.
	Active *pattern.ActiveSchema
	// Registry holds known advertisements (its own included).
	Registry *routing.Registry
	// Router routes over the registry.
	Router *routing.Router
	// Catalog holds known statistics.
	Catalog *stats.Catalog
	// Channels is the peer's channel manager.
	Channels *channel.Manager
	// Engine executes distributed plans.
	Engine *exec.Engine
	// Health is the circuit-breaker quarantine tracker (nil unless
	// Config.Quarantine was set).
	Health *routing.Health
	// Net is the transport.
	Net *network.Network
	// Tracer records per-query traces (nil when tracing is off).
	Tracer *obs.Tracer
	// Obs is the shared metrics registry (nil when metrics are off).
	Obs *obs.Registry
	// Admission is the peer's admission controller (nil unless
	// Config.Admission was set).
	Admission *admission.Controller
	// Membership is the peer's failure detector / anti-entropy endpoint
	// (nil unless Config.Membership was set).
	Membership *membership.Detector
	// Events is the unified operations event log (nil when the plane is
	// off).
	Events *obs.EventLog
	// Recorder is the peer's flight recorder (nil unless Config.Events
	// and Config.FlightRec were both set).
	Recorder *obs.FlightRecorder
	// Super is the super-peer this simple-peer is attached to (hybrid
	// architecture); empty otherwise.
	Super pattern.PeerID
	// DeadlineMS bounds this peer's control-plane RPCs (advertisement
	// push/pull, departure, routing requests) on the simulated clock,
	// mirroring Config.DeadlineMS on the data plane. 0 means none.
	DeadlineMS float64
	// qos is the default QoS for this peer's own queries (from
	// Config.Tenant/Priority).
	qos admission.QoS

	mu        sync.Mutex
	neighbors map[pattern.PeerID]bool
	slots     int
	// statsCache memoizes selfStats against the base's mutation
	// generation; Catalog treats stored *PeerStats as immutable
	// (copy-on-write), so handing the same pointer out repeatedly is safe.
	statsCache *stats.PeerStats
	statsGen   uint64
}

// New builds and wires a peer into the network.
func New(cfg Config, net *network.Network) (*Peer, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("peer: empty id")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("peer %s: nil schema", cfg.ID)
	}
	base := cfg.Base
	if base == nil {
		base = rdf.NewBase()
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = 4
	}
	p := &Peer{
		ID:        cfg.ID,
		Kind:      cfg.Kind,
		Schema:    cfg.Schema,
		Base:      base,
		Registry:  routing.NewIndexedRegistry(cfg.Schema),
		Catalog:   stats.NewCatalog(),
		Net:       net,
		neighbors: map[pattern.PeerID]bool{},
		slots:     slots,
	}
	// Advertisement: RVL views (virtual scenario) or base inspection
	// (materialized scenario).
	if len(cfg.Views) > 0 {
		p.Active = rvl.CombinedActiveSchema(cfg.Views)
		p.Active.SchemaName = cfg.Schema.Name
	} else {
		p.Active = pattern.DeriveActiveSchema(base, cfg.Schema)
	}
	p.Router = routing.NewRouter(cfg.Schema, p.Registry)
	p.Channels = channel.NewManager(cfg.ID, net)
	p.Engine = exec.NewEngine(cfg.ID, net, p.Channels, localSource{p})
	p.Engine.Policy = cfg.Policy
	p.Engine.Cost = optimizer.NewCostModel(p.Catalog)
	p.Engine.Router = p.Router
	p.Engine.StatsProvider = p.selfStats
	p.Engine.StatsSink = p.Catalog.PutPeer
	p.Engine.Parallelism = cfg.Parallelism
	p.Engine.DeadlineMS = cfg.DeadlineMS
	p.DeadlineMS = cfg.DeadlineMS
	p.Engine.MaxRetries = cfg.MaxRetries
	p.Engine.AllowPartial = cfg.AllowPartial
	p.Engine.MaxMigrations = cfg.MaxMigrations
	p.Channels.DeadlineMS = cfg.DeadlineMS
	if cfg.Quarantine {
		p.Health = routing.NewHealth(p.Registry)
		p.Engine.Health = p.Health
	}
	p.Tracer = cfg.Tracer
	p.Engine.Tracer = cfg.Tracer
	p.Admission = cfg.Admission
	p.Engine.Admission = cfg.Admission
	p.qos = admission.QoS{Tenant: cfg.Tenant, Priority: cfg.Priority}
	if cfg.Membership != nil {
		p.Membership = membership.New(cfg.ID, net, *cfg.Membership)
		p.Membership.ApplyAdv = p.applyMemberAdv
		p.Membership.OnDead = func(id pattern.PeerID) {
			// Confirm-dead: quarantine the peer out of routing (epoch
			// bump — in-flight queries migrate off it via plan change).
			// With the breaker on, the quarantine is pinned: no half-open
			// probe until the rejoin path revives it.
			if id == p.ID {
				return
			}
			if p.Health != nil {
				p.Health.Condemn(id)
			} else {
				p.Registry.Quarantine(id)
			}
		}
		p.Membership.OnRejoin = func(id pattern.PeerID) {
			if id == p.ID {
				return
			}
			if p.Health != nil {
				p.Health.Revive(id)
			} else {
				p.Registry.Reinstate(id)
			}
		}
		// Liveness updates ride the peer's existing channel traffic both
		// ways (piggybacked gossip), on top of the detector's own probes.
		p.Channels.GossipSource = p.Membership.Piggyback
		p.Channels.OnGossip = p.Membership.HandleGossip
	}
	if cfg.Events != nil {
		p.Events = cfg.Events
		p.Engine.Events = cfg.Events
		p.Channels.Events = cfg.Events
		p.Admission.SetEventLog(cfg.Events, string(cfg.ID))
		p.Health.SetEventLog(cfg.Events, string(cfg.ID))
		if p.Membership != nil {
			p.Membership.Events = cfg.Events
		}
		if cfg.FlightRec != nil {
			p.Recorder = obs.NewFlightRecorder(string(cfg.ID), *cfg.FlightRec)
			p.Recorder.Context = p.recorderContext
			cfg.Events.AddSink(p.Recorder.Observe)
		}
	}
	if cfg.Obs != nil {
		p.Obs = cfg.Obs
		p.Engine.Obs = cfg.Obs
		peerL := obs.L("peer", string(cfg.ID))
		cfg.Obs.RegisterCollector("peer/"+string(cfg.ID), func(g *obs.Gather) {
			p.Engine.Metrics().CollectObs(g, peerL)
			p.Channels.Stats().CollectObs(g, peerL)
			if p.Health != nil {
				p.Health.Stats().CollectObs(g, peerL)
			}
			if p.Membership != nil {
				p.Membership.Stats().CollectObs(g, peerL)
			}
			p.Admission.CollectObs(g, peerL)
		})
	}

	// A sharing peer knows itself.
	if cfg.Kind != ClientPeer && p.Active.Size() > 0 {
		p.Registry.Register(p.ID, p.Active)
	}
	p.Catalog.PutPeer(p.selfStats())
	p.refreshMemberAdv()

	net.Handle(p.ID, "adv.push", p.handleAdvPush)
	net.Handle(p.ID, "adv.pull", p.handleAdvPull)
	net.Handle(p.ID, "adv.leave", p.handleAdvLeave)
	net.Handle(p.ID, "query.route", p.handleQueryRoute)
	return p, nil
}

// localSource adapts the peer's base to the executor.
type localSource struct{ p *Peer }

// EvalScan evaluates and joins the patterns against the local base.
func (ls localSource) EvalScan(patterns []pattern.PathPattern) *rql.ResultSet {
	var acc *rql.ResultSet
	for _, pp := range patterns {
		rs := rql.EvalPathPattern(ls.p.Base, ls.p.Schema, pp)
		if acc == nil {
			acc = rs
		} else {
			acc = acc.Join(rs)
		}
	}
	if acc == nil {
		acc = rql.NewResultSet()
	}
	return acc
}

// EvalScanBatch is EvalScan on the columnar plane (exec.BatchSource):
// each pattern scans straight into a batch — interned into the calling
// execution's shared dictionary — and multi-pattern subplans join
// vectorized, so local evaluation never materializes row maps and the
// joins between same-store scans never remap an id.
func (ls localSource) EvalScanBatch(patterns []pattern.PathPattern, store *rql.TermStore) *rql.Batch {
	var acc *rql.Batch
	for _, pp := range patterns {
		b := rql.EvalPathPatternBatchInto(store, ls.p.Base, ls.p.Schema, pp)
		if acc == nil {
			acc = b
		} else {
			acc = acc.Join(b)
		}
	}
	if acc == nil {
		acc = rql.NewBatch()
	}
	return acc
}

// selfStats collects the peer's own statistics, memoized against the
// base's mutation generation. The engine piggybacks these on every
// answered subplan (paper §2.4), so without the cache a full base scan
// ran per dispatched Stats packet — on large bases that recomputation,
// not row movement, dominated distributed execution time.
func (p *Peer) selfStats() *stats.PeerStats {
	gen := p.Base.Gen()
	p.mu.Lock()
	if ps := p.statsCache; ps != nil && p.statsGen == gen {
		p.mu.Unlock()
		return ps
	}
	p.mu.Unlock()
	bs := rdf.CollectStats(p.Base, p.Schema)
	ps := stats.FromBaseStats(p.ID, bs, p.slots)
	p.mu.Lock()
	p.statsCache, p.statsGen = ps, gen
	p.mu.Unlock()
	return ps
}

// Advertisement returns the peer's current advertisement (active-schema
// refreshed from views or base, statistics included).
func (p *Peer) Advertisement() *Advertisement {
	return &Advertisement{Peer: p.ID, ActiveSchema: p.Active, Stats: p.selfStats()}
}

// RefreshAdvertisement re-derives the active-schema after base mutations
// (materialized scenario only).
func (p *Peer) RefreshAdvertisement() {
	p.Active = pattern.DeriveActiveSchema(p.Base, p.Schema)
	if p.Kind != ClientPeer && p.Active.Size() > 0 {
		p.Registry.Register(p.ID, p.Active)
	}
	p.Catalog.PutPeer(p.selfStats())
	p.refreshMemberAdv()
}

// refreshMemberAdv installs the current advertisement as the membership
// layer's local blob, bumping the advertisement epoch so anti-entropy
// propagates the change. Only sharing peers with a populated
// active-schema advertise — mirroring the self-registration rule — so
// client peers never enter remote routing registries through membership.
func (p *Peer) refreshMemberAdv() {
	if p.Membership == nil || p.Kind == ClientPeer || p.Active.Size() == 0 {
		return
	}
	blob, err := json.Marshal(p.Advertisement())
	if err != nil {
		return
	}
	p.Membership.SetLocalAdvertisement(blob)
}

// applyMemberAdv is the membership ApplyAdv callback: an advertisement
// blob adopted as fresher by the anti-entropy merge folds into this
// peer's own routing registry and statistics catalog — the per-peer
// routing view the detector feeds, replacing the shared oracle.
func (p *Peer) applyMemberAdv(id pattern.PeerID, blob []byte) {
	var adv Advertisement
	if err := json.Unmarshal(blob, &adv); err != nil || adv.Peer != id {
		return
	}
	if adv.ActiveSchema == nil || adv.ActiveSchema.Size() == 0 {
		// Non-sharing peers carry no routable advertisement; keep any
		// statistics, skip the registry.
		if adv.Stats != nil {
			p.Catalog.PutPeer(adv.Stats)
		}
		return
	}
	p.Learn(&adv)
}

// Learn folds a remote advertisement into the peer's routing and
// statistics knowledge.
func (p *Peer) Learn(adv *Advertisement) {
	if adv == nil || adv.Peer == "" {
		return
	}
	if adv.ActiveSchema != nil {
		p.Registry.Register(adv.Peer, adv.ActiveSchema)
	}
	if adv.Stats != nil {
		p.Catalog.PutPeer(adv.Stats)
	}
}

// Forget drops a peer from routing knowledge (departure or failure).
func (p *Peer) Forget(id pattern.PeerID) {
	p.Registry.Unregister(id)
	p.mu.Lock()
	delete(p.neighbors, id)
	p.mu.Unlock()
}

// AddNeighbor records a physical neighbor (ad-hoc architecture).
func (p *Peer) AddNeighbor(id pattern.PeerID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.neighbors[id] = true
}

// Neighbors returns the physical neighbors, sorted.
func (p *Peer) Neighbors() []pattern.PeerID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]pattern.PeerID, 0, len(p.neighbors))
	for id := range p.neighbors {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PushAdvertisement sends this peer's advertisement to another peer
// (the push of §3.1: "when a peer connects to a super-peer, it forwards
// its corresponding active-schema").
func (p *Peer) PushAdvertisement(to pattern.PeerID) error {
	body, err := json.Marshal(p.Advertisement())
	if err != nil {
		return fmt.Errorf("peer %s: marshal advertisement: %w", p.ID, err)
	}
	if _, err := p.Net.CallWithin(p.ID, to, "adv.push", body, p.DeadlineMS); err != nil {
		return fmt.Errorf("peer %s: push advertisement to %s: %w", p.ID, to, err)
	}
	return nil
}

// PullAdvertisement requests another peer's advertisement and learns it
// (the pull of §3.2: "the peer explicitly requests the active-schemas of
// its neighbor peers").
func (p *Peer) PullAdvertisement(from pattern.PeerID) error {
	reply, err := p.Net.CallWithin(p.ID, from, "adv.pull", nil, p.DeadlineMS)
	if err != nil {
		return fmt.Errorf("peer %s: pull advertisement from %s: %w", p.ID, from, err)
	}
	var adv Advertisement
	if err := json.Unmarshal(reply, &adv); err != nil {
		return fmt.Errorf("peer %s: bad advertisement from %s: %w", p.ID, from, err)
	}
	p.Learn(&adv)
	return nil
}

// AnnounceDeparture tells the given peers this peer is leaving the SON
// (the graceful half of "join and leave the network at will"); recipients
// drop it from their routing knowledge. Dead recipients are skipped.
func (p *Peer) AnnounceDeparture(to ...pattern.PeerID) {
	for _, id := range to {
		_ = p.Net.SendWithin(p.ID, id, "adv.leave", []byte(p.ID), p.DeadlineMS)
	}
}

// handleAdvLeave processes a departure announcement.
func (p *Peer) handleAdvLeave(msg network.Message) ([]byte, error) {
	p.Forget(msg.From)
	return []byte("ok"), nil
}

func (p *Peer) handleAdvPush(msg network.Message) ([]byte, error) {
	var adv Advertisement
	if err := json.Unmarshal(msg.Payload, &adv); err != nil {
		return nil, fmt.Errorf("peer %s: bad advertisement push: %w", p.ID, err)
	}
	p.Learn(&adv)
	return []byte("ok"), nil
}

func (p *Peer) handleAdvPull(network.Message) ([]byte, error) {
	body, err := json.Marshal(p.Advertisement())
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal advertisement: %w", p.ID, err)
	}
	return body, nil
}

// handleQueryRoute serves routing requests: a super-peer annotates the
// query pattern with its cluster knowledge and replies (the first phase
// of hybrid evaluation, §3.1).
func (p *Peer) handleQueryRoute(msg network.Message) ([]byte, error) {
	var q pattern.QueryPattern
	if err := json.Unmarshal(msg.Payload, &q); err != nil {
		return nil, fmt.Errorf("peer %s: bad routing request: %w", p.ID, err)
	}
	ann := p.Router.Route(&q)
	return pattern.MarshalAnnotated(ann)
}

// RequestRouting asks a (super-)peer to annotate the query pattern.
func (p *Peer) RequestRouting(from pattern.PeerID, q *pattern.QueryPattern) (*pattern.Annotated, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal query pattern: %w", p.ID, err)
	}
	reply, err := p.Net.CallWithin(p.ID, from, "query.route", body, p.DeadlineMS)
	if err != nil {
		return nil, fmt.Errorf("peer %s: routing request to %s: %w", p.ID, from, err)
	}
	return pattern.UnmarshalAnnotated(reply)
}

// Compile parses and analyzes RQL text against the peer's schema.
func (p *Peer) Compile(rqlText string) (*rql.Compiled, error) {
	return rql.ParseAndAnalyze(rqlText, p.Schema)
}

// finishQuery books one answered facade query into the operations
// plane: a peer_queries_total tick and a peer_query_latency_ms sample
// (the SLO evaluator's p99 and completeness inputs), plus a
// "query-done" event whose durMs attribute feeds the flight recorder's
// slow-query baseline. Latency is the logical-clock delta across the
// facade, the same measure the harnesses report. No-op pieces when the
// registry or the event log are off.
func (p *Peer) finishQuery(qsp *obs.Span, qos admission.QoS, startMS float64, res *exec.Result) {
	durMS := p.Net.NowMS() - startMS
	if p.Obs != nil {
		peerL := obs.L("peer", string(p.ID))
		p.Obs.Counter("peer_queries_total", peerL).Inc()
		p.Obs.Histogram("peer_query_latency_ms", peerL).Observe(durMS)
	}
	attrs := []obs.Attr{
		obs.A("durMs", strconv.FormatFloat(durMS, 'g', -1, 64)),
		obs.A("rows", strconv.Itoa(res.Rows.Len())),
		obs.A("complete", strconv.FormatBool(res.Completeness.Complete)),
	}
	if qos.Tenant != "" {
		attrs = append(attrs, obs.A("tenant", qos.Tenant))
	}
	if qsp != nil {
		qsp.EmitEvent(p.Events, "peer", "query-done", attrs...)
		return
	}
	p.Events.Emit("peer", "query-done", string(p.ID), "", attrs...)
}

// recorderContext assembles the post-mortem context a flight-recorder
// dump freezes for one trace: the query's span subtree, its
// critical-path attribution, the engine's row ledger and the admission
// occupancy at freeze time.
func (p *Peer) recorderContext(trace string) map[string]any {
	ctx := map[string]any{}
	if p.Tracer != nil && trace != "" {
		for _, tr := range p.Tracer.Traces() {
			if tr.ID != trace {
				continue
			}
			ctx["spans"] = tr.Root().Record()
			if a := obs.Analyze(tr, 0); a != nil {
				ctx["critpath"] = a
			}
			break
		}
	}
	if led := p.Engine.Ledger(); len(led) > 0 {
		ctx["ledger"] = led
	}
	if p.Admission != nil {
		ctx["admissionOccupancy"] = p.Admission.Occupancy()
	}
	return ctx
}

// PlanQuery routes a query pattern (locally, or through the super-peer
// when attached to one) and compiles the annotation into an optimized
// distributed plan.
func (p *Peer) PlanQuery(q *pattern.QueryPattern) (*plan.PlanResult, error) {
	return p.planWith(q, optimizer.Options{}, nil)
}

// startQuerySpan opens the per-query trace root when the peer has a
// tracer; nil otherwise (every span method is nil-safe).
func (p *Peer) startQuerySpan(op string) *obs.Span {
	if p.Tracer == nil {
		return nil
	}
	tr := p.Tracer.StartTrace(op+"@"+string(p.ID), string(p.ID))
	return tr.Root()
}

func (p *Peer) planWith(q *pattern.QueryPattern, opts optimizer.Options, span *obs.Span) (*plan.PlanResult, error) {
	var ann *pattern.Annotated
	var err error
	rsp := span.Child(obs.KindRoute, "route")
	if p.Super != "" {
		if rsp != nil {
			rsp.Annotate("via", string(p.Super))
		}
		ann, err = p.RequestRouting(p.Super, q)
	} else {
		ann = p.Router.Route(q)
	}
	rsp.End()
	if err != nil {
		return nil, err
	}
	psp := span.Child(obs.KindPlan, "plan")
	pl, err := plan.Generate(ann)
	psp.End()
	if err != nil {
		return nil, err
	}
	osp := span.Child(obs.KindOptimize, "optimize")
	optimized := optimizer.Optimize(pl, opts)
	osp.End()
	return &plan.PlanResult{Annotated: ann, Raw: pl, Optimized: optimized}, nil
}

// Ask answers an RQL query end-to-end: compile, route (via the super-peer
// in hybrid mode), generate and optimize the plan, execute it with this
// peer as root, and apply WHERE filters and projections. Runs under the
// peer's configured default QoS.
func (p *Peer) Ask(rqlText string) (*rql.ResultSet, error) {
	res, err := p.AskAnnotatedAs(rqlText, p.qos)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// AskAnnotated is Ask returning the completeness annotation alongside the
// rows: with AllowPartial configured, a query some patterns of which
// became unanswerable mid-flight yields its answerable rows plus the list
// of unanswered patterns, instead of an error.
func (p *Peer) AskAnnotated(rqlText string) (*exec.Result, error) {
	return p.AskAnnotatedAs(rqlText, p.qos)
}

// AskAnnotatedAs is AskAnnotated under an explicit QoS. With an
// admission controller configured, the query is admitted at this facade
// first — charged against the tenant's token bucket and checked under
// its priority's occupancy watermark, with the peer's DeadlineMS as the
// deadline-awareness budget. A rejected query returns a transient
// *admission.OverloadError (network.Transient reports true) carrying a
// retry-after hint on the logical clock; no compile or routing work is
// spent on it. The QoS then rides every channel open and subplan
// request the execution ships.
func (p *Peer) AskAnnotatedAs(rqlText string, qos admission.QoS) (*exec.Result, error) {
	if err := p.Admission.AdmitQuery(qos, p.Engine.DeadlineMS); err != nil {
		return nil, err
	}
	defer p.Admission.Done()
	startMS := p.Net.NowMS()
	qsp := p.startQuerySpan("ask")
	defer qsp.End()
	if qsp != nil && qos.Tenant != "" {
		qsp.Annotate("tenant", qos.Tenant)
		qsp.Annotate("priority", qos.Priority.String())
	}
	c, err := p.Compile(rqlText)
	if err != nil {
		return nil, err
	}
	pr, err := p.planWith(c.Pattern, optimizer.Options{}, qsp)
	if err != nil {
		return nil, err
	}
	res, err := p.Engine.ExecuteAnnotatedQoS(pr.Optimized, qsp, qos)
	if err != nil {
		return nil, err
	}
	filtered, err := rql.ApplyFilters(res.Rows, c.Query.Where)
	if err != nil {
		return nil, err
	}
	res.Rows = filtered.Project(c.Pattern.Projections).Limit(c.Query.Limit)
	p.finishQuery(qsp, qos, startMS, res)
	return res, nil
}
