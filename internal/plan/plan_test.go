package plan_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
)

func figure2Annotation(t testing.TB) *pattern.Annotated {
	t.Helper()
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	return routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
}

// TestGenerateFigure3Plan1 reproduces the paper's Figure 3: the annotated
// pattern of Figure 2 compiles to
// ⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4)).
func TestGenerateFigure3Plan1(t *testing.T) {
	p, err := plan.Generate(figure2Annotation(t))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	want := "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))"
	if p.String() != want {
		t.Errorf("Plan 1 = %s\nwant    %s", p, want)
	}
	if plan.HasHoles(p.Root) {
		t.Error("complete annotation must produce a hole-free plan")
	}
	if got := plan.CountSubplans(p.Root); got != 6 {
		t.Errorf("subplans = %d, want 6", got)
	}
	// One channel per distinct peer: P1..P4.
	if peers := plan.Peers(p.Root); len(peers) != 4 {
		t.Errorf("Peers = %v, want 4 distinct peers", peers)
	}
}

func TestGenerateWithHole(t *testing.T) {
	// Only P2 known (prop1): Q2 becomes a hole, as in Figure 7's Plan 1.
	reg := routing.NewRegistry()
	reg.Register("P2", gen.PaperActiveSchemas()["P2"])
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	p, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if p.String() != "⋈(Q1@P2, Q2@?)" {
		t.Errorf("partial plan = %s", p)
	}
	if !plan.HasHoles(p.Root) {
		t.Error("HasHoles = false on a partial plan")
	}
	if holes := plan.Holes(p.Root); len(holes) != 1 || holes[0].Patterns[0].ID != "Q2" {
		t.Errorf("Holes = %v", holes)
	}
}

func TestGenerateSinglePattern(t *testing.T) {
	q := &pattern.QueryPattern{
		SchemaName: gen.PaperNS,
		Patterns:   []pattern.PathPattern{gen.PaperQuery().Patterns[0]},
	}
	ann := pattern.NewAnnotated(q)
	ann.Annotate("Q1", "P1", nil)
	ann.Annotate("Q1", "P2", nil)
	p, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if p.String() != "∪(Q1@P1, Q1@P2)" {
		t.Errorf("plan = %s", p)
	}
	// Single peer: plan collapses to a bare scan.
	ann2 := pattern.NewAnnotated(q)
	ann2.Annotate("Q1", "P1", nil)
	p2, err := plan.Generate(ann2)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if p2.String() != "Q1@P1" {
		t.Errorf("single-peer plan = %s", p2)
	}
}

func TestGenerateThreeHopChain(t *testing.T) {
	q := gen.PaperQuery()
	q.Patterns = append(q.Patterns, pattern.PathPattern{
		ID: "Q3", SubjectVar: "Z", ObjectVar: "W",
		Property: gen.N1("prop3"), Domain: gen.N1("C3"), Range: gen.N1("C4"),
	})
	ann := pattern.NewAnnotated(q)
	ann.Annotate("Q1", "P1", nil)
	ann.Annotate("Q2", "P1", nil)
	ann.Annotate("Q3", "P9", nil)
	p, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Chain joins flatten into one n-ary join.
	if p.String() != "⋈(Q1@P1, Q2@P1, Q3@P9)" {
		t.Errorf("chain plan = %s", p)
	}
}

func TestFillHoles(t *testing.T) {
	reg := routing.NewRegistry()
	reg.Register("P2", gen.PaperActiveSchemas()["P2"])
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	partial, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Later knowledge: P5 answers Q2 (Figure 7b).
	later := pattern.NewAnnotated(gen.PaperQuery())
	later.Annotate("Q2", "P5", nil)
	full, n := plan.FillHoles(partial, later)
	if n != 1 {
		t.Errorf("filled %d holes, want 1", n)
	}
	if full.String() != "⋈(Q1@P2, Q2@P5)" {
		t.Errorf("filled plan = %s", full)
	}
	if plan.HasHoles(full.Root) {
		t.Error("plan still has holes after filling")
	}
	// Original partial plan untouched.
	if !strings.Contains(partial.String(), "Q2@?") {
		t.Errorf("FillHoles mutated its input: %s", partial)
	}
	// No new knowledge: nothing filled.
	same, n2 := plan.FillHoles(partial, pattern.NewAnnotated(gen.PaperQuery()))
	if n2 != 0 || !plan.Equal(same.Root, partial.Root) {
		t.Errorf("no-op fill changed the plan: %s", same)
	}
}

func TestExcludePeers(t *testing.T) {
	p, err := plan.Generate(figure2Annotation(t))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	out, n := plan.ExcludePeers(p, map[pattern.PeerID]bool{"P4": true})
	if n != 2 {
		t.Errorf("excluded %d scans, want 2 (P4 answers both patterns)", n)
	}
	if strings.Contains(out.String(), "P4") {
		t.Errorf("P4 still present: %s", out)
	}
	if !plan.HasHoles(out.Root) {
		// P4's scans become holes but P1/P2 (and P1/P3) still answer the
		// patterns, so after dedup the union keeps a hole entry.
		t.Logf("plan after exclusion: %s", out)
	}
	// Excluding a peer that answers a pattern alone leaves a hole.
	reg := routing.NewRegistry()
	reg.Register("P2", gen.PaperActiveSchemas()["P2"])
	reg.Register("P3", gen.PaperActiveSchemas()["P3"])
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	p2, _ := plan.Generate(ann)
	out2, n2 := plan.ExcludePeers(p2, map[pattern.PeerID]bool{"P3": true})
	if n2 != 1 || !plan.HasHoles(out2.Root) {
		t.Errorf("exclusion of sole peer: n=%d plan=%s", n2, out2)
	}
}

func TestExcludePeersDedupsHoles(t *testing.T) {
	// Union of two peers both excluded → a single hole, not two.
	q := &pattern.QueryPattern{
		SchemaName: gen.PaperNS,
		Patterns:   []pattern.PathPattern{gen.PaperQuery().Patterns[0]},
	}
	ann := pattern.NewAnnotated(q)
	ann.Annotate("Q1", "P1", nil)
	ann.Annotate("Q1", "P2", nil)
	p, _ := plan.Generate(ann)
	out, n := plan.ExcludePeers(p, map[pattern.PeerID]bool{"P1": true, "P2": true})
	if n != 2 {
		t.Errorf("excluded %d", n)
	}
	if out.String() != "Q1@?" {
		t.Errorf("plan = %s, want single hole Q1@?", out)
	}
}

func TestPlanSerializationRoundTrip(t *testing.T) {
	p, err := plan.Generate(figure2Annotation(t))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	data, err := plan.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := plan.Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !plan.Equal(p.Root, back.Root) {
		t.Errorf("round trip changed plan:\n%s\n%s", p, back)
	}
	if back.Query.String() != p.Query.String() {
		t.Errorf("round trip changed query")
	}
	if _, err := plan.Unmarshal([]byte("{bad")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := plan.Unmarshal([]byte(`{"root":{"kind":"mystery"}}`)); err == nil {
		t.Error("unknown node kind accepted")
	}
	if _, err := plan.Marshal(&plan.Plan{}); err == nil {
		t.Error("empty plan marshaled")
	}
}

func TestNewUnionAndJoinFlatten(t *testing.T) {
	q1 := gen.PaperQuery().Patterns[0]
	a := plan.NewScan(q1, "P1")
	b := plan.NewScan(q1, "P2")
	c := plan.NewScan(q1, "P3")
	u := plan.NewUnion(plan.NewUnion(a, b), c)
	if u.String() != "∪(Q1@P1, Q1@P2, Q1@P3)" {
		t.Errorf("flattened union = %s", u)
	}
	j := plan.NewJoin(plan.NewJoin(a, b), c)
	if j.String() != "⋈(Q1@P1, Q1@P2, Q1@P3)" {
		t.Errorf("flattened join = %s", j)
	}
	if plan.NewUnion(a).String() != "Q1@P1" {
		t.Error("singleton union should collapse")
	}
}

func TestIndentRendering(t *testing.T) {
	p, _ := plan.Generate(figure2Annotation(t))
	out := plan.Indent(p.Root)
	if !strings.Contains(out, "⋈") || !strings.Contains(out, "  ∪") || !strings.Contains(out, "    Q1@P1") {
		t.Errorf("Indent:\n%s", out)
	}
}

func TestScanHelpers(t *testing.T) {
	q := gen.PaperQuery()
	s := &plan.Scan{Patterns: q.Patterns, Peer: "P1"}
	if s.String() != "[Q1⋈Q2]@P1" {
		t.Errorf("merged scan String = %s", s)
	}
	if got := s.PatternIDs(); len(got) != 2 || got[0] != "Q1" {
		t.Errorf("PatternIDs = %v", got)
	}
	h := plan.NewHole(q.Patterns[0])
	if !h.IsHole() || h.String() != "Q1@?" {
		t.Errorf("hole = %s", h)
	}
}
