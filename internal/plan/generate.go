package plan

import (
	"fmt"

	"sqpeer/internal/pattern"
)

// Generate runs the paper's Query-Processing Algorithm (§2.4): it compiles
// an annotated query pattern into a distributed plan by recursing over the
// query's join tree —
//
//	QP := ∅
//	P  := peers annotated on the current path pattern PP
//	if P = ∅:    QP := PP@?                      (hole)
//	else:        QP := ∪_{Px∈P} PP@Px            (horizontal distribution)
//	for each child PPi: TPi := recurse(PPi)
//	QP := ⋈(QP, TP1, ..., TPn)                   (vertical distribution)
//
// For the Figure-2 annotation this yields Figure 3's Plan 1:
// ⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4)).
func Generate(ann *pattern.Annotated) (*Plan, error) {
	tree, err := ann.Query.JoinTree()
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	root := generateFrom(ann, tree, tree.Root)
	return &Plan{Root: root, Query: ann.Query}, nil
}

func generateFrom(ann *pattern.Annotated, tree *pattern.JoinTree, id string) Node {
	pp := tree.Pattern(id)
	peers := ann.PeersFor(id)

	var qp Node
	if len(peers) == 0 {
		qp = NewHole(pp)
	} else {
		scans := make([]Node, len(peers))
		for i, peer := range peers {
			scans[i] = NewScan(pp, peer)
		}
		qp = NewUnion(scans...)
	}
	children := tree.Children(id)
	if len(children) == 0 {
		return qp
	}
	inputs := []Node{qp}
	for _, child := range children {
		inputs = append(inputs, generateFrom(ann, tree, child))
	}
	return NewJoin(inputs...)
}

// FillHoles merges new routing knowledge into a partial plan: every hole
// whose path pattern now has annotated peers is replaced by the union of
// peer scans (paper §3.2: peers receiving a partial plan "interleave query
// processing and routing using their local knowledge"). It returns the
// number of holes filled; the plan is modified via a returned copy.
func FillHoles(p *Plan, ann *pattern.Annotated) (*Plan, int) {
	filled := 0
	var rewrite func(Node) Node
	rewrite = func(n Node) Node {
		switch v := n.(type) {
		case *Scan:
			if !v.IsHole() || len(v.Patterns) != 1 {
				return v.clone()
			}
			peers := ann.PeersFor(v.Patterns[0].ID)
			if len(peers) == 0 {
				return v.clone()
			}
			filled++
			scans := make([]Node, len(peers))
			for i, peer := range peers {
				scans[i] = NewScan(v.Patterns[0], peer)
			}
			return NewUnion(scans...)
		case *Union:
			inputs := make([]Node, len(v.Inputs))
			for i, in := range v.Inputs {
				inputs[i] = rewrite(in)
			}
			return NewUnion(inputs...)
		case *Join:
			inputs := make([]Node, len(v.Inputs))
			for i, in := range v.Inputs {
				inputs[i] = rewrite(in)
			}
			return NewJoin(inputs...)
		default:
			return n.clone()
		}
	}
	out := &Plan{Root: rewrite(p.Root), Query: p.Query}
	return out, filled
}

// SplitHoles returns a copy of the plan with every multi-pattern hole
// rewritten into a join of single-pattern holes. Merged scans that were
// excluded back into holes carry several path patterns in one leaf, which
// FillHoles cannot fill (it needs per-pattern peer annotations); splitting
// restores the one-pattern-per-hole shape the generator produces, so
// mid-flight migration can refill each pattern independently.
func SplitHoles(p *Plan) *Plan {
	var rewrite func(Node) Node
	rewrite = func(n Node) Node {
		switch v := n.(type) {
		case *Scan:
			if v.IsHole() && len(v.Patterns) > 1 {
				parts := make([]Node, len(v.Patterns))
				for i, pp := range v.Patterns {
					parts[i] = NewHole(pp)
				}
				return NewJoin(parts...)
			}
			return v.clone()
		case *Union:
			inputs := make([]Node, len(v.Inputs))
			for i, in := range v.Inputs {
				inputs[i] = rewrite(in)
			}
			return NewUnion(inputs...)
		case *Join:
			inputs := make([]Node, len(v.Inputs))
			for i, in := range v.Inputs {
				inputs[i] = rewrite(in)
			}
			return NewJoin(inputs...)
		default:
			return n.clone()
		}
	}
	return &Plan{Root: rewrite(p.Root), Query: p.Query}
}

// ExcludePeers returns a copy of the plan with every scan at one of the
// given peers turned back into a hole — the replanning primitive of §2.5:
// after a peer failure the root node "re-executes the routing and
// processing algorithm, not taking into consideration those peers that
// became obsolete".
func ExcludePeers(p *Plan, obsolete map[pattern.PeerID]bool) (*Plan, int) {
	excluded := 0
	var rewrite func(Node) Node
	rewrite = func(n Node) Node {
		switch v := n.(type) {
		case *Scan:
			if !v.IsHole() && obsolete[v.Peer] {
				excluded++
				cp := v.clone().(*Scan)
				cp.Peer = HolePeer
				return cp
			}
			return v.clone()
		case *Union:
			inputs := make([]Node, len(v.Inputs))
			for i, in := range v.Inputs {
				inputs[i] = rewrite(in)
			}
			return dedupHoles(NewUnion(inputs...))
		case *Join:
			inputs := make([]Node, len(v.Inputs))
			for i, in := range v.Inputs {
				inputs[i] = rewrite(in)
			}
			return NewJoin(inputs...)
		default:
			return n.clone()
		}
	}
	out := &Plan{Root: rewrite(p.Root), Query: p.Query}
	return out, excluded
}

// dedupHoles collapses duplicate identical holes inside a union (two scans
// of the same pattern both excluded leave one hole).
func dedupHoles(n Node) Node {
	u, ok := n.(*Union)
	if !ok {
		return n
	}
	seen := map[string]bool{}
	var inputs []Node
	for _, in := range u.Inputs {
		if s, isScan := in.(*Scan); isScan && s.IsHole() {
			key := s.String()
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		inputs = append(inputs, in)
	}
	return NewUnion(inputs...)
}

// PlanResult bundles the artifacts of planning one query: the annotation
// routing produced, the raw plan the Query-Processing Algorithm generated
// from it, and the optimized plan actually executed.
type PlanResult struct {
	// Annotated is the routed query pattern.
	Annotated *pattern.Annotated
	// Raw is the unoptimized plan (Figure 3's Plan 1 shape).
	Raw *Plan
	// Optimized is the plan after compile-time rewrites.
	Optimized *Plan
}
