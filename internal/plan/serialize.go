package plan

import (
	"encoding/json"
	"fmt"

	"sqpeer/internal/pattern"
)

// wireNode is the tagged JSON form of a plan node.
type wireNode struct {
	Kind     string                `json:"kind"` // "scan" | "union" | "join"
	Patterns []pattern.PathPattern `json:"patterns,omitempty"`
	Peer     pattern.PeerID        `json:"peer,omitempty"`
	Inputs   []wireNode            `json:"inputs,omitempty"`
}

type wirePlan struct {
	Root  wireNode              `json:"root"`
	Query *pattern.QueryPattern `json:"query"`
}

func toWire(n Node) (wireNode, error) {
	switch v := n.(type) {
	case *Scan:
		return wireNode{Kind: "scan", Patterns: v.Patterns, Peer: v.Peer}, nil
	case *Union:
		w := wireNode{Kind: "union"}
		for _, in := range v.Inputs {
			cw, err := toWire(in)
			if err != nil {
				return wireNode{}, err
			}
			w.Inputs = append(w.Inputs, cw)
		}
		return w, nil
	case *Join:
		w := wireNode{Kind: "join"}
		for _, in := range v.Inputs {
			cw, err := toWire(in)
			if err != nil {
				return wireNode{}, err
			}
			w.Inputs = append(w.Inputs, cw)
		}
		return w, nil
	default:
		return wireNode{}, fmt.Errorf("plan: cannot serialize node type %T", n)
	}
}

func fromWire(w wireNode) (Node, error) {
	switch w.Kind {
	case "scan":
		if len(w.Patterns) == 0 {
			return nil, fmt.Errorf("plan: wire scan has no patterns")
		}
		return &Scan{Patterns: w.Patterns, Peer: w.Peer}, nil
	case "union", "join":
		inputs := make([]Node, 0, len(w.Inputs))
		for _, cw := range w.Inputs {
			c, err := fromWire(cw)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, c)
		}
		if len(inputs) == 0 {
			return nil, fmt.Errorf("plan: wire %s has no inputs", w.Kind)
		}
		if w.Kind == "union" {
			return NewUnion(inputs...), nil
		}
		return NewJoin(inputs...), nil
	default:
		return nil, fmt.Errorf("plan: unknown wire node kind %q", w.Kind)
	}
}

// Marshal serializes a plan for shipment in channel packets.
func Marshal(p *Plan) ([]byte, error) {
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("plan: cannot marshal empty plan")
	}
	root, err := toWire(p.Root)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(wirePlan{Root: root, Query: p.Query})
	if err != nil {
		return nil, fmt.Errorf("plan: marshal: %w", err)
	}
	return data, nil
}

// Unmarshal parses a plan serialized by Marshal.
func Unmarshal(data []byte) (*Plan, error) {
	var w wirePlan
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("plan: unmarshal: %w", err)
	}
	root, err := fromWire(w.Root)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Query: w.Query}, nil
}
