// Package plan implements SQPeer's distributed query plans (paper §2.4):
// an algebra of peer-located scans, unions (horizontal distribution) and
// joins (vertical distribution), possibly containing holes (`@?`) for path
// patterns no known peer covers; the Query-Processing Algorithm that
// compiles an annotated query pattern into such a plan; and a JSON wire
// form so plans can travel between peers in channel packets.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"sqpeer/internal/pattern"
)

// HolePeer is the peer id of a hole: a subquery whose responsible peer is
// unknown (rendered "@?" as in the paper).
const HolePeer pattern.PeerID = "?"

// Node is a distributed query plan node.
type Node interface {
	// String renders the node in the paper's algebraic notation, e.g.
	// "⋈(∪(Q1@P1, Q1@P2), Q2@P3)". The rendering is canonical: equal
	// plans render identically.
	String() string
	// Children returns the node's inputs (nil for leaves).
	Children() []Node
	// clone returns a deep copy.
	clone() Node
}

// Scan is a leaf: a conjunctive subquery evaluated entirely at one peer.
// A single-pattern Scan is the paper's "PP@Px"; a multi-pattern Scan is
// what Transformation Rules 1 and 2 produce — several successive path
// patterns pushed to the same peer, which joins them locally.
type Scan struct {
	// Patterns are the path patterns the peer evaluates and joins locally.
	Patterns []pattern.PathPattern `json:"patterns"`
	// Peer executes the subquery; HolePeer marks a hole.
	Peer pattern.PeerID `json:"peer"`
}

// NewScan builds a single-pattern scan at a peer.
func NewScan(pp pattern.PathPattern, peer pattern.PeerID) *Scan {
	return &Scan{Patterns: []pattern.PathPattern{pp}, Peer: peer}
}

// NewHole builds a hole for a path pattern (the "PP@?" of the paper).
func NewHole(pp pattern.PathPattern) *Scan { return NewScan(pp, HolePeer) }

// IsHole reports whether the scan's peer is unknown.
func (s *Scan) IsHole() bool { return s.Peer == HolePeer || s.Peer == "" }

// PatternIDs returns the ids of the scan's patterns in order.
func (s *Scan) PatternIDs() []string {
	out := make([]string, len(s.Patterns))
	for i, p := range s.Patterns {
		out[i] = p.ID
	}
	return out
}

// String renders "Q1@P1" or, for merged scans, "[Q1⋈Q2]@P1".
func (s *Scan) String() string {
	peer := string(s.Peer)
	if s.IsHole() {
		peer = "?"
	}
	if len(s.Patterns) == 1 {
		return s.Patterns[0].ID + "@" + peer
	}
	return "[" + strings.Join(s.PatternIDs(), "⋈") + "]@" + peer
}

// Children returns nil: scans are leaves.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) clone() Node {
	cp := &Scan{Peer: s.Peer}
	cp.Patterns = append(cp.Patterns, s.Patterns...)
	return cp
}

// Union is the n-ary union of subplans — horizontal distribution: the same
// path pattern answered by several peers, results merged for completeness.
type Union struct {
	Inputs []Node `json:"inputs"`
}

// NewUnion builds a union, flattening nested unions, deduplicating
// identical inputs (union is idempotent) and collapsing a single input to
// itself.
func NewUnion(inputs ...Node) Node {
	var flat []Node
	seen := map[string]bool{}
	add := func(n Node) {
		key := n.String()
		if !seen[key] {
			seen[key] = true
			flat = append(flat, n)
		}
	}
	for _, in := range inputs {
		if u, ok := in.(*Union); ok {
			for _, c := range u.Inputs {
				add(c)
			}
		} else if in != nil {
			add(in)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Union{Inputs: flat}
}

// String renders "∪(a, b, ...)".
func (u *Union) String() string { return "∪(" + joinNodes(u.Inputs) + ")" }

// Children returns the union's inputs.
func (u *Union) Children() []Node { return u.Inputs }

func (u *Union) clone() Node {
	cp := &Union{Inputs: make([]Node, len(u.Inputs))}
	for i, in := range u.Inputs {
		cp.Inputs[i] = in.clone()
	}
	return cp
}

// Join is the n-ary natural join of subplans — vertical distribution:
// different path patterns of the query combined on their shared variables
// for correctness.
type Join struct {
	Inputs []Node `json:"inputs"`
}

// NewJoin builds a join, flattening nested joins and collapsing a single
// input to itself.
func NewJoin(inputs ...Node) Node {
	var flat []Node
	for _, in := range inputs {
		if j, ok := in.(*Join); ok {
			flat = append(flat, j.Inputs...)
		} else if in != nil {
			flat = append(flat, in)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Join{Inputs: flat}
}

// String renders "⋈(a, b, ...)".
func (j *Join) String() string { return "⋈(" + joinNodes(j.Inputs) + ")" }

// Children returns the join's inputs.
func (j *Join) Children() []Node { return j.Inputs }

func (j *Join) clone() Node {
	cp := &Join{Inputs: make([]Node, len(j.Inputs))}
	for i, in := range j.Inputs {
		cp.Inputs[i] = in.clone()
	}
	return cp
}

func joinNodes(ns []Node) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.String()
	}
	return strings.Join(parts, ", ")
}

// Plan is a complete distributed plan: the root node plus the query it
// answers (carrying projections and the join tree).
type Plan struct {
	// Root is the plan tree.
	Root Node `json:"-"`
	// Query is the originating query pattern.
	Query *pattern.QueryPattern `json:"query"`
}

// String renders the plan tree.
func (p *Plan) String() string {
	if p == nil || p.Root == nil {
		return "<empty plan>"
	}
	return p.Root.String()
}

// Clone returns an independent deep copy of the plan.
func (p *Plan) Clone() *Plan {
	return &Plan{Root: p.Root.clone(), Query: p.Query}
}

// Walk visits every node of the tree depth-first, parents before children.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Scans returns every scan leaf of the plan in visit order.
func Scans(n Node) []*Scan {
	var out []*Scan
	Walk(n, func(x Node) {
		if s, ok := x.(*Scan); ok {
			out = append(out, s)
		}
	})
	return out
}

// Holes returns the scans whose peer is unknown.
func Holes(n Node) []*Scan {
	var out []*Scan
	for _, s := range Scans(n) {
		if s.IsHole() {
			out = append(out, s)
		}
	}
	return out
}

// HasHoles reports whether the plan still needs routing information — the
// partial-plan condition of §2.4 and §3.2.
func HasHoles(n Node) bool { return len(Holes(n)) > 0 }

// PruneHoles removes every hole scan from the tree, collapsing unions and
// joins around the removals (graceful degradation: execute the answerable
// part of a partial plan and annotate the rest as unanswered). It returns
// the pruned tree — nil when nothing answerable remains — plus the
// deduplicated, sorted pattern ids that were cut. The input is not
// mutated. Note that pruning a join input widens the join's semantics:
// the remaining patterns are answered exactly, the cut ones not at all,
// which is why callers must surface the removed ids to the user.
func PruneHoles(n Node) (Node, []string) {
	removed := map[string]bool{}
	var rec func(Node) Node
	rec = func(x Node) Node {
		switch v := x.(type) {
		case *Scan:
			if v.IsHole() {
				for _, id := range v.PatternIDs() {
					removed[id] = true
				}
				return nil
			}
			return v
		case *Union:
			var kept []Node
			for _, c := range v.Inputs {
				if p := rec(c); p != nil {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				return nil
			}
			return NewUnion(kept...)
		case *Join:
			var kept []Node
			for _, c := range v.Inputs {
				if p := rec(c); p != nil {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				return nil
			}
			return NewJoin(kept...)
		default:
			return x
		}
	}
	pruned := rec(n)
	if pruned != nil {
		pruned = pruned.clone()
	}
	ids := make([]string, 0, len(removed))
	for id := range removed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return pruned, ids
}

// Peers returns the distinct peers the plan touches (holes excluded),
// sorted. One communication channel is deployed per peer (§2.4: "only one
// channel is of course created" per contributing peer).
func Peers(n Node) []pattern.PeerID {
	set := map[pattern.PeerID]struct{}{}
	for _, s := range Scans(n) {
		if !s.IsHole() {
			set[s.Peer] = struct{}{}
		}
	}
	out := make([]pattern.PeerID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountSubplans returns the number of scan leaves — the subqueries that
// must be sent to peers, which Transformation Rules 1 and 2 reduce.
func CountSubplans(n Node) int { return len(Scans(n)) }

// Equal reports whether two plans are structurally identical, comparing
// canonical renderings.
func Equal(a, b Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// Indent renders the plan tree one node per line with indentation, for
// the CLI and logs.
func Indent(n Node) string {
	var b strings.Builder
	var rec func(Node, int)
	rec = func(x Node, depth int) {
		pad := strings.Repeat("  ", depth)
		switch v := x.(type) {
		case *Scan:
			fmt.Fprintf(&b, "%s%s\n", pad, v)
		case *Union:
			fmt.Fprintf(&b, "%s∪\n", pad)
			for _, c := range v.Inputs {
				rec(c, depth+1)
			}
		case *Join:
			fmt.Fprintf(&b, "%s⋈\n", pad)
			for _, c := range v.Inputs {
				rec(c, depth+1)
			}
		default:
			fmt.Fprintf(&b, "%s%s\n", pad, x)
		}
	}
	rec(n, 0)
	return b.String()
}
