package pattern_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

func TestPathPatternString(t *testing.T) {
	q := gen.PaperQuery()
	if got := q.Patterns[0].String(); got != "{X;C1}prop1{Y;C2}" {
		t.Errorf("String() = %q", got)
	}
}

func TestPathPatternSameShapeAndSharesVar(t *testing.T) {
	q := gen.PaperQuery()
	q1, q2 := q.Patterns[0], q.Patterns[1]
	if q1.SameShape(q2) {
		t.Error("distinct properties reported same shape")
	}
	clone := q1
	clone.ID, clone.SubjectVar, clone.ObjectVar = "other", "A", "B"
	if !q1.SameShape(clone) {
		t.Error("SameShape must ignore ids and variable names")
	}
	if !q1.SharesVar(q2) {
		t.Error("Q1 and Q2 share Y; SharesVar false")
	}
	q3 := pattern.PathPattern{ID: "Q3", SubjectVar: "A", ObjectVar: "B", Property: gen.N1("prop3")}
	if q1.SharesVar(q3) {
		t.Error("disjoint variables reported shared")
	}
}

func TestQueryPatternValidate(t *testing.T) {
	q := gen.PaperQuery()
	if err := q.Validate(); err != nil {
		t.Fatalf("paper query should validate: %v", err)
	}

	empty := &pattern.QueryPattern{SchemaName: gen.PaperNS}
	if err := empty.Validate(); err == nil {
		t.Error("empty pattern accepted")
	}

	dup := gen.PaperQuery()
	dup.Patterns[1].ID = "Q1"
	if err := dup.Validate(); err == nil {
		t.Error("duplicate pattern ids accepted")
	}

	badProj := gen.PaperQuery()
	badProj.Projections = []string{"W"}
	if err := badProj.Validate(); err == nil {
		t.Error("projection of unknown variable accepted")
	}

	disconnected := gen.PaperQuery()
	disconnected.Patterns = append(disconnected.Patterns, pattern.PathPattern{
		ID: "Q3", SubjectVar: "A", ObjectVar: "B",
		Property: gen.N1("prop3"), Domain: gen.N1("C3"), Range: gen.N1("C4"),
	})
	if err := disconnected.Validate(); err == nil {
		t.Error("disconnected join graph accepted")
	} else if !strings.Contains(err.Error(), "Q3") {
		t.Errorf("error should name the unreachable pattern: %v", err)
	}

	noVar := gen.PaperQuery()
	noVar.Patterns[0].SubjectVar = ""
	if err := noVar.Validate(); err == nil {
		t.Error("unnamed variable accepted")
	}

	noProp := gen.PaperQuery()
	noProp.Patterns[0].Property = ""
	if err := noProp.Validate(); err == nil {
		t.Error("missing property accepted")
	}
}

func TestQueryPatternVariablesAndLookup(t *testing.T) {
	q := gen.PaperQuery()
	vars := q.Variables()
	if len(vars) != 3 || vars[0] != "X" || vars[1] != "Y" || vars[2] != "Z" {
		t.Errorf("Variables() = %v", vars)
	}
	p, ok := q.Pattern("Q2")
	if !ok || p.Property != gen.N1("prop2") {
		t.Errorf("Pattern(Q2) = %+v, %v", p, ok)
	}
	if _, ok := q.Pattern("Q9"); ok {
		t.Error("Pattern(Q9) found a ghost")
	}
}

func TestJoinTreeStructure(t *testing.T) {
	q := gen.PaperQuery()
	tree, err := q.JoinTree()
	if err != nil {
		t.Fatalf("JoinTree: %v", err)
	}
	if tree.Root != "Q1" {
		t.Errorf("root = %q, want Q1", tree.Root)
	}
	if kids := tree.Children("Q1"); len(kids) != 1 || kids[0] != "Q2" {
		t.Errorf("Children(Q1) = %v", kids)
	}
	if kids := tree.Children("Q2"); len(kids) != 0 {
		t.Errorf("Children(Q2) = %v", kids)
	}
	if tree.Pattern("Q2").Property != gen.N1("prop2") {
		t.Error("Pattern lookup through tree failed")
	}
}

func TestJoinTreeThreeHopChain(t *testing.T) {
	q := gen.PaperQuery()
	q.Patterns = append(q.Patterns, pattern.PathPattern{
		ID: "Q3", SubjectVar: "Z", ObjectVar: "W",
		Property: gen.N1("prop3"), Domain: gen.N1("C3"), Range: gen.N1("C4"),
	})
	tree, err := q.JoinTree()
	if err != nil {
		t.Fatalf("JoinTree: %v", err)
	}
	var order []string
	var depths []int
	tree.Walk(func(id string, depth int) {
		order = append(order, id)
		depths = append(depths, depth)
	})
	if len(order) != 3 || order[0] != "Q1" || order[1] != "Q2" || order[2] != "Q3" {
		t.Errorf("Walk order = %v", order)
	}
	if depths[2] != 2 {
		t.Errorf("Q3 depth = %d, want 2", depths[2])
	}
}

func TestJoinTreeStarQuery(t *testing.T) {
	// Star join: Q1 and Q2 both hang off X.
	q := &pattern.QueryPattern{
		SchemaName: gen.PaperNS,
		Patterns: []pattern.PathPattern{
			{ID: "Q1", SubjectVar: "X", ObjectVar: "Y", Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2")},
			{ID: "Q2", SubjectVar: "X", ObjectVar: "W", Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2")},
		},
	}
	tree, err := q.JoinTree()
	if err != nil {
		t.Fatalf("JoinTree: %v", err)
	}
	if kids := tree.Children("Q1"); len(kids) != 1 || kids[0] != "Q2" {
		t.Errorf("Children(Q1) = %v", kids)
	}
}

func TestQueryPatternString(t *testing.T) {
	out := gen.PaperQuery().String()
	for _, want := range []string{"Q1:{X;C1}prop1{Y;C2}", "⋈", "→ X,Y"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}

func TestActiveSchemaBuildAndQuery(t *testing.T) {
	schema := gen.PaperSchema()
	a := pattern.NewActiveSchema(gen.PaperNS)
	if err := a.AddProperty(schema, gen.N1("prop1")); err != nil {
		t.Fatalf("AddProperty: %v", err)
	}
	if err := a.AddProperty(schema, gen.N1("prop1")); err != nil {
		t.Fatalf("idempotent AddProperty: %v", err)
	}
	if a.Size() != 1 {
		t.Errorf("Size = %d after duplicate add", a.Size())
	}
	if err := a.AddProperty(schema, gen.N1("nosuch")); err == nil {
		t.Error("unknown property accepted")
	}
	a.AddClass(gen.N1("C1"))
	a.AddClass(gen.N1("C1"))
	if len(a.Classes) != 1 {
		t.Errorf("duplicate class recorded: %v", a.Classes)
	}
	if !a.HasProperty(gen.N1("prop1")) || a.HasProperty(gen.N1("prop2")) {
		t.Error("HasProperty wrong")
	}
	if !a.HasClass(gen.N1("C1")) || a.HasClass(gen.N1("C2")) {
		t.Error("HasClass wrong")
	}
	if !strings.Contains(a.String(), "prop1(C1→C2)") {
		t.Errorf("String() = %s", a)
	}
	c := a.Clone()
	c.AddClass(gen.N1("C3"))
	if a.HasClass(gen.N1("C3")) {
		t.Error("Clone not independent")
	}
}

func TestDeriveActiveSchemaMaterialized(t *testing.T) {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(3)
	// P4 populates prop4 and prop2; its derived active-schema must record
	// prop4 (not prop1) plus prop2, and classes C5, C6, C2, C3.
	a := pattern.DeriveActiveSchema(bases["P4"], schema)
	if a.Size() != 2 {
		t.Fatalf("P4 active-schema size = %d: %s", a.Size(), a)
	}
	if !a.HasProperty(gen.N1("prop4")) || !a.HasProperty(gen.N1("prop2")) {
		t.Errorf("P4 active-schema = %s", a)
	}
	if a.HasProperty(gen.N1("prop1")) {
		t.Error("derivation must record the asserted subproperty, not its super")
	}
	for _, c := range []string{"C5", "C6", "C2", "C3"} {
		if !a.HasClass(gen.N1(c)) {
			t.Errorf("P4 active-schema missing class %s: %s", c, a)
		}
	}
	// Properties outside the schema are ignored.
	bases["P4"].Add(rdf.Statement("http://other#a", "http://other#weird", "http://other#b"))
	a2 := pattern.DeriveActiveSchema(bases["P4"], schema)
	if a2.Size() != 2 {
		t.Errorf("foreign property leaked into active-schema: %s", a2)
	}
}

func TestWholeSchemaAdvertisement(t *testing.T) {
	schema := gen.PaperSchema()
	a := pattern.WholeSchemaAdvertisement(schema)
	if a.Size() != 4 {
		t.Errorf("whole-schema advertisement has %d properties, want 4", a.Size())
	}
	if len(a.Classes) != 6 {
		t.Errorf("whole-schema advertisement has %d classes, want 6", len(a.Classes))
	}
}
