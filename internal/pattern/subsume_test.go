package pattern_test

import (
	"testing"
	"testing/quick"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// figure2Cases enumerates the subsumption facts Figure 2 depends on.
func TestIsSubsumedFigure2(t *testing.T) {
	schema := gen.PaperSchema()
	q := gen.PaperQuery()
	q1, q2 := q.Patterns[0], q.Patterns[1]
	as := gen.PaperActiveSchemas()

	// P1 (prop1, prop2): equal to both path patterns.
	if !pattern.Covers(schema, as["P1"], q1, pattern.FullSubsumption) ||
		!pattern.Covers(schema, as["P1"], q2, pattern.FullSubsumption) {
		t.Error("P1 must cover Q1 and Q2")
	}
	// P2 (prop1): covers Q1 only.
	if !pattern.Covers(schema, as["P2"], q1, pattern.FullSubsumption) ||
		pattern.Covers(schema, as["P2"], q2, pattern.FullSubsumption) {
		t.Error("P2 must cover exactly Q1")
	}
	// P3 (prop2): covers Q2 only.
	if pattern.Covers(schema, as["P3"], q1, pattern.FullSubsumption) ||
		!pattern.Covers(schema, as["P3"], q2, pattern.FullSubsumption) {
		t.Error("P3 must cover exactly Q2")
	}
	// P4 (prop4 ⊑ prop1, prop2): covers both — the subsumption case.
	if !pattern.Covers(schema, as["P4"], q1, pattern.FullSubsumption) ||
		!pattern.Covers(schema, as["P4"], q2, pattern.FullSubsumption) {
		t.Error("P4 must cover Q1 (via prop4 ⊑ prop1) and Q2")
	}
}

func TestIsSubsumedDirectionality(t *testing.T) {
	schema := gen.PaperSchema()
	prop1 := pattern.PathPattern{ID: "a", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2")}
	prop4 := pattern.PathPattern{ID: "b", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop4"), Domain: gen.N1("C5"), Range: gen.N1("C6")}
	if !pattern.IsSubsumed(schema, prop4, prop1) {
		t.Error("prop4 pattern ⊑ prop1 pattern must hold")
	}
	if pattern.IsSubsumed(schema, prop1, prop4) {
		t.Error("prop1 pattern ⊑ prop4 pattern must NOT hold: a peer with only" +
			" general prop1 pairs cannot answer a prop4 query")
	}
}

func TestIsSubsumedChecksEndpointClasses(t *testing.T) {
	schema := gen.PaperSchema()
	// Same property, but the active-schema's domain (C1) is broader than a
	// query restricted to C5 — not subsumed.
	asPat := pattern.PathPattern{ID: "a", SubjectVar: "s", ObjectVar: "o",
		Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2")}
	qNarrow := pattern.PathPattern{ID: "q", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop1"), Domain: gen.N1("C5"), Range: gen.N1("C2")}
	if pattern.IsSubsumed(schema, asPat, qNarrow) {
		t.Error("broader domain must not be subsumed by narrower query domain")
	}
	// Narrow active-schema under broad query: subsumed.
	asNarrow := pattern.PathPattern{ID: "a", SubjectVar: "s", ObjectVar: "o",
		Property: gen.N1("prop1"), Domain: gen.N1("C5"), Range: gen.N1("C6")}
	qBroad := pattern.PathPattern{ID: "q", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2")}
	if !pattern.IsSubsumed(schema, asNarrow, qBroad) {
		t.Error("narrower end-points under same property must be subsumed")
	}
}

func TestSubsumptionModes(t *testing.T) {
	schema := gen.PaperSchema()
	as := gen.PaperActiveSchemas()
	q1 := gen.PaperQuery().Patterns[0]
	// Under ExactOnly, P4's prop4 no longer matches Q1.
	if pattern.Covers(schema, as["P4"], q1, pattern.ExactOnly) {
		t.Error("exact-only mode must not match prop4 against prop1")
	}
	if !pattern.Covers(schema, as["P2"], q1, pattern.ExactOnly) {
		t.Error("exact-only mode must still match identical patterns")
	}
	if pattern.FullSubsumption.String() == pattern.ExactOnly.String() {
		t.Error("mode names must differ")
	}
}

func TestCoveringPatternsRewrite(t *testing.T) {
	schema := gen.PaperSchema()
	as := gen.PaperActiveSchemas()
	q1 := gen.PaperQuery().Patterns[0]
	rw := pattern.CoveringPatterns(schema, as["P4"], q1, pattern.FullSubsumption)
	if len(rw) != 1 {
		t.Fatalf("CoveringPatterns = %v, want one rewrite", rw)
	}
	got := rw[0]
	if got.Property != gen.N1("prop4") {
		t.Errorf("rewrite property = %s, want prop4 (peer's populated property)", got.Property)
	}
	if got.SubjectVar != "X" || got.ObjectVar != "Y" || got.ID != "Q1" {
		t.Errorf("rewrite must keep query variables and id: %+v", got)
	}
}

func TestCoverageFraction(t *testing.T) {
	schema := gen.PaperSchema()
	as := gen.PaperActiveSchemas()
	q := gen.PaperQuery()
	cases := []struct {
		peer pattern.PeerID
		want float64
	}{
		{"P1", 1.0}, {"P2", 0.5}, {"P3", 0.5}, {"P4", 1.0},
	}
	for _, c := range cases {
		if got := pattern.CoverageFraction(schema, as[c.peer], q, pattern.FullSubsumption); got != c.want {
			t.Errorf("CoverageFraction(%s) = %f, want %f", c.peer, got, c.want)
		}
	}
	if pattern.CoverageFraction(schema, as["P1"], &pattern.QueryPattern{}, pattern.FullSubsumption) != 0 {
		t.Error("empty query coverage must be 0")
	}
}

// TestSubsumptionSoundnessProperty: whenever IsSubsumed holds, every
// instance pair produced under the active-schema pattern is an answer of
// the query pattern — exercised extensionally over random bases.
func TestSubsumptionSoundnessProperty(t *testing.T) {
	schema := gen.PaperSchema()
	props := []rdf.IRI{gen.N1("prop1"), gen.N1("prop2"), gen.N1("prop3"), gen.N1("prop4")}
	prop := func(seed int64, n uint8) bool {
		base := rdf.NewBase()
		r := int64(seed)
		next := func(mod int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int(r % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < int(n)%40; i++ {
			p := props[next(len(props))]
			s := rdf.IRI(gen.PaperNS + "s" + string(rune('a'+next(8))))
			o := rdf.IRI(gen.PaperNS + "o" + string(rune('a'+next(8))))
			base.Add(rdf.Statement(s, p, o))
		}
		for _, asProp := range props {
			for _, qProp := range props {
				asDef, _ := schema.PropertyByName(asProp)
				qDef, _ := schema.PropertyByName(qProp)
				asPat := pattern.PathPattern{ID: "a", SubjectVar: "s", ObjectVar: "o",
					Property: asProp, Domain: asDef.Domain, Range: asDef.Range}
				qPat := pattern.PathPattern{ID: "q", SubjectVar: "X", ObjectVar: "Y",
					Property: qProp, Domain: qDef.Domain, Range: qDef.Range}
				if !pattern.IsSubsumed(schema, asPat, qPat) {
					continue
				}
				// Every pair of asProp must appear among qProp's pairs
				// under schema reasoning.
				qPairs := map[rdf.Pair]bool{}
				for _, pr := range base.Pairs(qProp, schema) {
					qPairs[pr] = true
				}
				for _, pr := range base.Pairs(asProp, schema) {
					if !qPairs[pr] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
