package pattern

import (
	"fmt"
	"sort"
	"strings"

	"sqpeer/internal/rdf"
)

// ActiveSchema advertises the populated subset of a community RDF/S schema
// in a peer base (paper §2.2): the properties that hold (or, for virtual
// bases, can hold) instance pairs, each with its end-point classes, plus
// the populated classes. Active-schemas use the same PathPattern formalism
// as query patterns, which is what makes query/view subsumption uniform.
type ActiveSchema struct {
	// SchemaName identifies the community schema this is a subset of.
	SchemaName string `json:"schemaName"`
	// Patterns are the populated properties with their end-point classes.
	Patterns []PathPattern `json:"patterns"`
	// Classes are the populated classes (covers class-only population,
	// e.g. a base with typed resources but no property instances).
	Classes []rdf.IRI `json:"classes"`
}

// NewActiveSchema builds an active-schema over the named community schema.
func NewActiveSchema(schemaName string) *ActiveSchema {
	return &ActiveSchema{SchemaName: schemaName}
}

// AddProperty records property prop as populated, taking its end-point
// classes from the schema definition.
func (a *ActiveSchema) AddProperty(schema *rdf.Schema, prop rdf.IRI) error {
	def, ok := schema.PropertyByName(prop)
	if !ok {
		return fmt.Errorf("pattern: active-schema property %s not in schema %s", prop, schema.Name)
	}
	return a.AddPropertyPattern(prop, def.Domain, def.Range)
}

// AddPropertyPattern records property prop as populated with explicit
// end-point classes (used when a view populates a property at a subclass
// of its declared domain or range).
func (a *ActiveSchema) AddPropertyPattern(prop, domain, rng rdf.IRI) error {
	for _, p := range a.Patterns {
		if p.Property == prop && p.Domain == domain && p.Range == rng {
			return nil // idempotent
		}
	}
	id := fmt.Sprintf("AS%d", len(a.Patterns)+1)
	a.Patterns = append(a.Patterns, PathPattern{
		ID: id, SubjectVar: "_s" + id, ObjectVar: "_o" + id,
		Property: prop, Domain: domain, Range: rng,
	})
	return nil
}

// AddClass records class c as populated.
func (a *ActiveSchema) AddClass(c rdf.IRI) {
	for _, existing := range a.Classes {
		if existing == c {
			return
		}
	}
	a.Classes = append(a.Classes, c)
}

// HasProperty reports whether the active-schema declares prop populated
// (exact property name, no subsumption).
func (a *ActiveSchema) HasProperty(prop rdf.IRI) bool {
	for _, p := range a.Patterns {
		if p.Property == prop {
			return true
		}
	}
	return false
}

// HasClass reports whether the active-schema declares c populated.
func (a *ActiveSchema) HasClass(c rdf.IRI) bool {
	for _, existing := range a.Classes {
		if existing == c {
			return true
		}
	}
	return false
}

// Size returns the number of populated properties — a proxy for the
// advertisement's network footprint, which the paper contrasts with
// whole-schema advertisements.
func (a *ActiveSchema) Size() int { return len(a.Patterns) }

// String renders the active-schema deterministically.
func (a *ActiveSchema) String() string {
	props := make([]string, len(a.Patterns))
	for i, p := range a.Patterns {
		props[i] = fmt.Sprintf("%s(%s→%s)", p.Property.Local(), p.Domain.Local(), p.Range.Local())
	}
	sort.Strings(props)
	classes := make([]string, len(a.Classes))
	for i, c := range a.Classes {
		classes[i] = c.Local()
	}
	sort.Strings(classes)
	var b strings.Builder
	fmt.Fprintf(&b, "active-schema of %s: props=[%s]", a.SchemaName, strings.Join(props, " "))
	if len(classes) > 0 {
		fmt.Fprintf(&b, " classes=[%s]", strings.Join(classes, " "))
	}
	return b.String()
}

// Clone returns an independent deep copy.
func (a *ActiveSchema) Clone() *ActiveSchema {
	c := &ActiveSchema{SchemaName: a.SchemaName}
	c.Patterns = append(c.Patterns, a.Patterns...)
	c.Classes = append(c.Classes, a.Classes...)
	return c
}

// DeriveActiveSchema inspects a materialized base and derives its
// active-schema: every schema property with at least one pair (counting
// subproperty contributions at the subproperty itself, not the super) and
// every class with at least one direct instance. This is the materialized
// scenario of paper §2.2; the virtual scenario derives the active-schema
// from RVL view definitions instead (package rvl).
func DeriveActiveSchema(base *rdf.Base, schema *rdf.Schema) *ActiveSchema {
	a := NewActiveSchema(schema.Name)
	for _, used := range base.PropertiesUsed() {
		if def, ok := schema.PropertyByName(used); ok {
			// Record at the asserted property; routing's subsumption check
			// makes it visible to superproperty queries.
			if err := a.AddPropertyPattern(used, def.Domain, def.Range); err != nil {
				// Unreachable: AddPropertyPattern only fails on schema
				// lookups we already performed.
				panic(err)
			}
		}
	}
	for _, c := range base.ClassesUsed() {
		if schema.HasClass(c) {
			a.AddClass(c)
		}
	}
	// Deterministic order regardless of map iteration.
	sort.Slice(a.Patterns, func(i, j int) bool { return a.Patterns[i].Property < a.Patterns[j].Property })
	for i := range a.Patterns {
		a.Patterns[i].ID = fmt.Sprintf("AS%d", i+1)
	}
	sort.Slice(a.Classes, func(i, j int) bool { return a.Classes[i] < a.Classes[j] })
	return a
}

// WholeSchemaAdvertisement builds the coarse-grained alternative the paper
// argues against (§2.2): an advertisement claiming every schema property
// and class is populated. Used by the ablation benchmarks to measure the
// irrelevant-query load that active-schemas avoid.
func WholeSchemaAdvertisement(schema *rdf.Schema) *ActiveSchema {
	a := NewActiveSchema(schema.Name)
	for _, p := range schema.Properties() {
		if err := a.AddPropertyPattern(p.Name, p.Domain, p.Range); err != nil {
			panic(err)
		}
	}
	for _, c := range schema.Classes() {
		a.AddClass(c.Name)
	}
	return a
}
