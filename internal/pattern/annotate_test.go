package pattern_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
)

func TestAnnotatedBasics(t *testing.T) {
	q := gen.PaperQuery()
	a := pattern.NewAnnotated(q)
	if a.Complete() {
		t.Error("fresh annotation reported complete")
	}
	if holes := a.Holes(); len(holes) != 2 {
		t.Errorf("Holes = %v, want [Q1 Q2]", holes)
	}

	a.Annotate("Q1", "P2", nil)
	a.Annotate("Q1", "P1", nil)
	a.Annotate("Q1", "P1", nil) // duplicate must be ignored
	peers := a.PeersFor("Q1")
	if len(peers) != 2 || peers[0] != "P1" || peers[1] != "P2" {
		t.Errorf("PeersFor(Q1) = %v (must be sorted, deduplicated)", peers)
	}
	if a.Complete() {
		t.Error("annotation with a hole reported complete")
	}
	a.Annotate("Q2", "P3", nil)
	if !a.Complete() {
		t.Error("fully annotated pattern reported incomplete")
	}
	if holes := a.Holes(); len(holes) != 0 {
		t.Errorf("Holes = %v after full annotation", holes)
	}
	all := a.AllPeers()
	if len(all) != 3 || all[0] != "P1" || all[1] != "P2" || all[2] != "P3" {
		t.Errorf("AllPeers = %v", all)
	}
}

func TestAnnotatedRewrites(t *testing.T) {
	q := gen.PaperQuery()
	a := pattern.NewAnnotated(q)
	rw := pattern.PathPattern{ID: "Q1", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop4"), Domain: gen.N1("C5"), Range: gen.N1("C6")}
	a.Annotate("Q1", "P4", []pattern.PathPattern{rw})
	a.Annotate("Q1", "P4", []pattern.PathPattern{rw}) // same shape → deduped
	got := a.RewritesFor("Q1", "P4")
	if len(got) != 1 || got[0].Property != gen.N1("prop4") {
		t.Errorf("RewritesFor = %v", got)
	}
	if rwNone := a.RewritesFor("Q1", "P1"); len(rwNone) != 0 {
		t.Errorf("unexpected rewrites for P1: %v", rwNone)
	}
}

func TestAnnotatedMerge(t *testing.T) {
	q := gen.PaperQuery()
	a := pattern.NewAnnotated(q)
	a.Annotate("Q1", "P2", nil)

	b := pattern.NewAnnotated(q)
	b.Annotate("Q1", "P3", nil)
	b.Annotate("Q2", "P5", []pattern.PathPattern{{
		ID: "Q2", SubjectVar: "Y", ObjectVar: "Z",
		Property: gen.N1("prop2"), Domain: gen.N1("C2"), Range: gen.N1("C3"),
	}})

	a.Merge(b)
	if got := a.PeersFor("Q1"); len(got) != 2 {
		t.Errorf("merged PeersFor(Q1) = %v", got)
	}
	if got := a.PeersFor("Q2"); len(got) != 1 || got[0] != "P5" {
		t.Errorf("merged PeersFor(Q2) = %v", got)
	}
	if len(a.RewritesFor("Q2", "P5")) != 1 {
		t.Error("merge dropped rewrites")
	}
	a.Merge(nil) // must not panic
}

func TestAnnotatedString(t *testing.T) {
	q := gen.PaperQuery()
	a := pattern.NewAnnotated(q)
	a.Annotate("Q1", "P1", nil)
	a.Annotate("Q1", "P2", nil)
	a.Annotate("Q2", "P3", nil)
	out := a.String()
	if !strings.Contains(out, "Q1 → [P1 P2]") || !strings.Contains(out, "Q2 → [P3]") {
		t.Errorf("String() = %q", out)
	}
}

func TestAnnotatedSerializationRoundTrip(t *testing.T) {
	q := gen.PaperQuery()
	a := pattern.NewAnnotated(q)
	a.Annotate("Q1", "P4", []pattern.PathPattern{{
		ID: "Q1", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop4"), Domain: gen.N1("C5"), Range: gen.N1("C6"),
	}})
	a.Annotate("Q2", "P3", nil)

	data, err := pattern.MarshalAnnotated(a)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := pattern.UnmarshalAnnotated(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Query.String() != a.Query.String() {
		t.Errorf("query lost in round trip: %s vs %s", back.Query, a.Query)
	}
	if got := back.PeersFor("Q1"); len(got) != 1 || got[0] != "P4" {
		t.Errorf("round-trip PeersFor(Q1) = %v", got)
	}
	if got := back.RewritesFor("Q1", "P4"); len(got) != 1 || got[0].Property != gen.N1("prop4") {
		t.Errorf("round-trip rewrites = %v", got)
	}
	if _, err := pattern.UnmarshalAnnotated([]byte("{garbage")); err == nil {
		t.Error("garbage accepted by UnmarshalAnnotated")
	}
}
