package pattern

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Annotated is an annotated query pattern — the output of the
// Query-Routing Algorithm (paper §2.3, Figure 2): the original query
// pattern plus, per path pattern, the peers able to answer it and the
// rewritten (specialized) patterns each peer should evaluate.
type Annotated struct {
	// Query is the routed query pattern.
	Query *QueryPattern `json:"query"`
	// Peers maps a path pattern id to the peers annotated on it, sorted.
	Peers map[string][]PeerID `json:"peers"`
	// Rewrites maps "patternID/peerID" to the specialized path patterns
	// that peer should evaluate for the pattern (per-peer query rewriting
	// under subsumption).
	Rewrites map[string][]PathPattern `json:"rewrites"`
}

// NewAnnotated builds an empty annotation for the query (step 1 of the
// routing pseudocode: "construct empty annotations").
func NewAnnotated(q *QueryPattern) *Annotated {
	a := &Annotated{
		Query:    q,
		Peers:    map[string][]PeerID{},
		Rewrites: map[string][]PathPattern{},
	}
	for _, p := range q.Patterns {
		a.Peers[p.ID] = nil
	}
	return a
}

// rewriteKey forms the Rewrites map key.
func rewriteKey(patternID string, peer PeerID) string {
	return patternID + "/" + string(peer)
}

// Annotate records that peer can answer path pattern patternID through the
// given specialized patterns. Annotating the same peer twice merges the
// rewrites.
func (a *Annotated) Annotate(patternID string, peer PeerID, rewrites []PathPattern) {
	found := false
	for _, p := range a.Peers[patternID] {
		if p == peer {
			found = true
			break
		}
	}
	if !found {
		a.Peers[patternID] = append(a.Peers[patternID], peer)
		sort.Slice(a.Peers[patternID], func(i, j int) bool {
			return a.Peers[patternID][i] < a.Peers[patternID][j]
		})
	}
	key := rewriteKey(patternID, peer)
	for _, rw := range rewrites {
		dup := false
		for _, existing := range a.Rewrites[key] {
			if existing.SameShape(rw) {
				dup = true
				break
			}
		}
		if !dup {
			a.Rewrites[key] = append(a.Rewrites[key], rw)
		}
	}
}

// PeersFor returns the peers annotated on the path pattern, sorted.
func (a *Annotated) PeersFor(patternID string) []PeerID { return a.Peers[patternID] }

// RewritesFor returns the specialized patterns peer should evaluate for
// the path pattern. When empty, the peer evaluates the original pattern.
func (a *Annotated) RewritesFor(patternID string, peer PeerID) []PathPattern {
	return a.Rewrites[rewriteKey(patternID, peer)]
}

// Complete reports whether every path pattern has at least one peer — the
// condition under which plan generation produces a plan with no holes.
func (a *Annotated) Complete() bool {
	for _, p := range a.Query.Patterns {
		if len(a.Peers[p.ID]) == 0 {
			return false
		}
	}
	return true
}

// Holes returns the ids of path patterns with no annotated peer, sorted.
func (a *Annotated) Holes() []string {
	var out []string
	for _, p := range a.Query.Patterns {
		if len(a.Peers[p.ID]) == 0 {
			out = append(out, p.ID)
		}
	}
	sort.Strings(out)
	return out
}

// AllPeers returns every peer appearing in any annotation, sorted.
func (a *Annotated) AllPeers() []PeerID {
	set := map[PeerID]struct{}{}
	for _, peers := range a.Peers {
		for _, p := range peers {
			set[p] = struct{}{}
		}
	}
	out := make([]PeerID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds another annotation of the same query into a, used when a
// partial plan travels between peers and each contributes its local
// knowledge (ad-hoc interleaved routing, §3.2).
func (a *Annotated) Merge(b *Annotated) {
	if b == nil {
		return
	}
	for pid, peers := range b.Peers {
		for _, peer := range peers {
			a.Annotate(pid, peer, b.RewritesFor(pid, peer))
		}
	}
}

// String renders the annotation in the paper's Figure-2 style, e.g.
// "Q1 → [P1 P2 P4]; Q2 → [P1 P3 P4]".
func (a *Annotated) String() string {
	parts := make([]string, 0, len(a.Query.Patterns))
	for _, p := range a.Query.Patterns {
		peers := a.Peers[p.ID]
		names := make([]string, len(peers))
		for i, id := range peers {
			names[i] = string(id)
		}
		parts = append(parts, fmt.Sprintf("%s → [%s]", p.ID, strings.Join(names, " ")))
	}
	return strings.Join(parts, "; ")
}

// MarshalAnnotated serializes the annotation for shipment in channel
// packets.
func MarshalAnnotated(a *Annotated) ([]byte, error) {
	data, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("pattern: marshal annotated pattern: %w", err)
	}
	return data, nil
}

// UnmarshalAnnotated parses an annotation serialized by MarshalAnnotated.
func UnmarshalAnnotated(data []byte) (*Annotated, error) {
	var a Annotated
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("pattern: unmarshal annotated pattern: %w", err)
	}
	if a.Peers == nil {
		a.Peers = map[string][]PeerID{}
	}
	if a.Rewrites == nil {
		a.Rewrites = map[string][]PathPattern{}
	}
	return &a, nil
}
