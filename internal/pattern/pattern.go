// Package pattern implements SQPeer's uniform intensional formalism: the
// semantic query patterns extracted from RQL queries and the active-schemas
// derived from RVL advertisements are both graphs of path patterns over a
// community RDF/S schema. Representing requests and contents the same way
// is what lets the routing layer reuse query/view subsumption (paper §2.2).
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"sqpeer/internal/rdf"
)

// PeerID names a peer in the P2P system. It is defined here, at the bottom
// of the dependency graph, because annotated query patterns associate path
// patterns with peers.
type PeerID string

// PathPattern is one edge of a semantic query pattern: two typed resource
// variables related through a schema property, e.g. {X;C1} prop1 {Y;C2}.
// The same structure describes one populated property of an active-schema,
// with the variable names irrelevant.
type PathPattern struct {
	// ID names the pattern within its query (e.g. "Q1"); active-schema
	// patterns carry derived ids. IDs are unique within one QueryPattern.
	ID string `json:"id"`
	// SubjectVar and ObjectVar are the variable names at the two ends.
	SubjectVar string `json:"subjectVar"`
	ObjectVar  string `json:"objectVar"`
	// Property is the schema property traversed.
	Property rdf.IRI `json:"property"`
	// Domain and Range are the end-point classes. They come from an
	// explicit class restriction in the query ({X;C5}) or, absent one,
	// from the property's schema definition (paper §2.1).
	Domain rdf.IRI `json:"domain"`
	Range  rdf.IRI `json:"range"`
}

// String renders the pattern in the paper's {X;C}prop{Y;C} notation.
func (p PathPattern) String() string {
	return fmt.Sprintf("{%s;%s}%s{%s;%s}",
		p.SubjectVar, p.Domain.Local(), p.Property.Local(), p.ObjectVar, p.Range.Local())
}

// SameShape reports whether two patterns traverse the same property with
// the same end-point classes, ignoring ids and variable names. Active-
// schema equality is shape equality.
func (p PathPattern) SameShape(q PathPattern) bool {
	return p.Property == q.Property && p.Domain == q.Domain && p.Range == q.Range
}

// Vars returns the pattern's variable names (subject, object).
func (p PathPattern) Vars() (string, string) { return p.SubjectVar, p.ObjectVar }

// SharesVar reports whether two patterns share a variable name, i.e. are
// joined in the conjunctive query.
func (p PathPattern) SharesVar(q PathPattern) bool {
	return p.SubjectVar == q.SubjectVar || p.SubjectVar == q.ObjectVar ||
		p.ObjectVar == q.SubjectVar || p.ObjectVar == q.ObjectVar
}

// QueryPattern is a conjunctive semantic query pattern: a set of path
// patterns joined through shared variables, plus the projected variables
// (marked "*" in the paper's figures).
type QueryPattern struct {
	// SchemaName identifies the community schema (SON) the pattern is
	// expressed against.
	SchemaName string `json:"schemaName"`
	// Patterns are the path patterns, in query order; the first is the
	// root of the join tree the query-processing algorithm walks.
	Patterns []PathPattern `json:"patterns"`
	// Projections are the variables whose bindings the query returns.
	Projections []string `json:"projections"`
}

// Pattern returns the path pattern with the given id.
func (q *QueryPattern) Pattern(id string) (PathPattern, bool) {
	for _, p := range q.Patterns {
		if p.ID == id {
			return p, true
		}
	}
	return PathPattern{}, false
}

// Variables returns the sorted set of variable names used by the pattern.
func (q *QueryPattern) Variables() []string {
	set := map[string]struct{}{}
	for _, p := range q.Patterns {
		set[p.SubjectVar] = struct{}{}
		set[p.ObjectVar] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness: at least one path pattern,
// unique pattern ids, projections referring to existing variables, and
// connectivity of the join graph (the paper's conjunctive fragment has no
// cartesian products).
func (q *QueryPattern) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("pattern: query pattern has no path patterns")
	}
	ids := map[string]bool{}
	for _, p := range q.Patterns {
		if p.ID == "" {
			return fmt.Errorf("pattern: path pattern %s has empty id", p)
		}
		if ids[p.ID] {
			return fmt.Errorf("pattern: duplicate path pattern id %q", p.ID)
		}
		ids[p.ID] = true
		if p.SubjectVar == "" || p.ObjectVar == "" {
			return fmt.Errorf("pattern: path pattern %s has unnamed variables", p.ID)
		}
		if p.Property == "" {
			return fmt.Errorf("pattern: path pattern %s has no property", p.ID)
		}
	}
	vars := map[string]bool{}
	for _, v := range q.Variables() {
		vars[v] = true
	}
	for _, proj := range q.Projections {
		if !vars[proj] {
			return fmt.Errorf("pattern: projection %q is not a query variable", proj)
		}
	}
	if _, err := q.JoinTree(); err != nil {
		return err
	}
	return nil
}

// String renders the query pattern compactly, e.g.
// "Q1:{X;C1}prop1{Y;C2} ⋈ Q2:{Y;C2}prop2{Z;C3} → X,Y".
func (q *QueryPattern) String() string {
	parts := make([]string, len(q.Patterns))
	for i, p := range q.Patterns {
		parts[i] = p.ID + ":" + p.String()
	}
	s := strings.Join(parts, " ⋈ ")
	if len(q.Projections) > 0 {
		s += " → " + strings.Join(q.Projections, ",")
	}
	return s
}

// JoinTree computes a spanning tree of the join graph rooted at the first
// path pattern, in breadth-first order: this is the Root/children(PP)
// structure the paper's query-processing algorithm recurses over. It
// fails when the join graph is disconnected.
func (q *QueryPattern) JoinTree() (*JoinTree, error) {
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("pattern: empty query pattern has no join tree")
	}
	tree := &JoinTree{
		Root:     q.Patterns[0].ID,
		children: map[string][]string{},
		patterns: map[string]PathPattern{},
	}
	for _, p := range q.Patterns {
		tree.patterns[p.ID] = p
	}
	visited := map[string]bool{q.Patterns[0].ID: true}
	queue := []string{q.Patterns[0].ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curPat := tree.patterns[cur]
		// Visit in declaration order for determinism.
		for _, p := range q.Patterns {
			if visited[p.ID] || !curPat.SharesVar(p) {
				continue
			}
			visited[p.ID] = true
			tree.children[cur] = append(tree.children[cur], p.ID)
			queue = append(queue, p.ID)
		}
	}
	if len(visited) != len(q.Patterns) {
		var missing []string
		for _, p := range q.Patterns {
			if !visited[p.ID] {
				missing = append(missing, p.ID)
			}
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("pattern: join graph disconnected; unreachable patterns: %s",
			strings.Join(missing, ","))
	}
	return tree, nil
}

// JoinTree is the rooted spanning tree of a query pattern's join graph.
type JoinTree struct {
	// Root is the id of the root path pattern.
	Root     string
	children map[string][]string
	patterns map[string]PathPattern
}

// Children returns the child pattern ids of the given pattern id, in
// deterministic order.
func (t *JoinTree) Children(id string) []string { return t.children[id] }

// Pattern returns the path pattern with the given id.
func (t *JoinTree) Pattern(id string) PathPattern { return t.patterns[id] }

// Walk visits the tree depth-first from the root, calling fn with each
// pattern id and its depth.
func (t *JoinTree) Walk(fn func(id string, depth int)) {
	var rec func(id string, depth int)
	rec = func(id string, depth int) {
		fn(id, depth)
		for _, c := range t.children[id] {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
}
