package pattern

import (
	"sqpeer/internal/rdf"
)

// IsSubsumed reports whether active-schema path pattern as is subsumed by
// query path pattern q under the schema's class and property hierarchies:
//
//	as ⊑ q  ⇔  as.Property ⊑ q.Property ∧ as.Domain ⊑ q.Domain ∧ as.Range ⊑ q.Range
//
// This is the isSubsumed(ASjk, AQi) test of the paper's Query-Routing
// Algorithm (§2.3): a peer whose base populates `as` can contribute
// answers to `q`, because every `as` instance pair is, by RDF/S semantics,
// also a `q` instance pair. The check is sound and complete for the
// conjunctive fragment (single-property path patterns with typed ends).
func IsSubsumed(schema *rdf.Schema, as, q PathPattern) bool {
	if !schema.IsSubPropertyOf(as.Property, q.Property) {
		return false
	}
	if !schema.IsSubClassOf(as.Domain, q.Domain) {
		return false
	}
	return schema.IsSubClassOf(as.Range, q.Range)
}

// SubsumptionMode selects how routing matches active-schemas to query
// patterns. The paper's algorithm uses full RDF/S subsumption; ExactOnly
// is the ablation (paper §4 criticizes systems that ignore subsumption).
type SubsumptionMode int

const (
	// FullSubsumption matches through the class/property hierarchies.
	FullSubsumption SubsumptionMode = iota
	// ExactOnly matches only identical properties and end-point classes.
	ExactOnly
)

// String names the mode.
func (m SubsumptionMode) String() string {
	if m == ExactOnly {
		return "exact-only"
	}
	return "full-subsumption"
}

// Matches applies the chosen subsumption mode.
func (m SubsumptionMode) Matches(schema *rdf.Schema, as, q PathPattern) bool {
	if m == ExactOnly {
		return as.SameShape(q)
	}
	return IsSubsumed(schema, as, q)
}

// CoveringPatterns returns the active-schema path patterns subsumed by the
// query path pattern q — the specialized patterns a peer should actually
// evaluate. Routing uses the non-emptiness of this set; the per-peer query
// rewriting of §2.3 ("rewrite accordingly the query sent to a peer") sends
// these patterns instead of q.
func CoveringPatterns(schema *rdf.Schema, as *ActiveSchema, q PathPattern, mode SubsumptionMode) []PathPattern {
	var out []PathPattern
	for _, asp := range as.Patterns {
		if mode.Matches(schema, asp, q) {
			// The rewritten pattern keeps q's variable names and id so the
			// join structure survives, but narrows the property and
			// end-points to what the peer populates.
			out = append(out, PathPattern{
				ID:         q.ID,
				SubjectVar: q.SubjectVar,
				ObjectVar:  q.ObjectVar,
				Property:   asp.Property,
				Domain:     asp.Domain,
				Range:      asp.Range,
			})
		}
	}
	return out
}

// Covers reports whether the active-schema can contribute to query path
// pattern q at all.
func Covers(schema *rdf.Schema, as *ActiveSchema, q PathPattern, mode SubsumptionMode) bool {
	for _, asp := range as.Patterns {
		if mode.Matches(schema, asp, q) {
			return true
		}
	}
	return false
}

// CoverageFraction returns the fraction of the query's path patterns the
// active-schema covers, in [0,1]. The hybrid overlay uses it to rank
// candidate peers; the advertisement ablation uses it to quantify
// irrelevant-query load.
func CoverageFraction(schema *rdf.Schema, as *ActiveSchema, q *QueryPattern, mode SubsumptionMode) float64 {
	if len(q.Patterns) == 0 {
		return 0
	}
	covered := 0
	for _, qp := range q.Patterns {
		if Covers(schema, as, qp, mode) {
			covered++
		}
	}
	return float64(covered) / float64(len(q.Patterns))
}
