package overlay_test

import (
	"fmt"
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// propBase builds a base with n pairs of each named paper property, using
// the same shared join resources as gen.PaperBases.
func propBase(peerName string, n int, props ...string) *rdf.Base {
	b := rdf.NewBase()
	y := func(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i)) }
	for _, prop := range props {
		for i := 0; i < n; i++ {
			switch prop {
			case "prop1":
				x := rdf.IRI(fmt.Sprintf("http://d/%s#x%d", peerName, i))
				b.Add(rdf.Statement(x, gen.N1("prop1"), y(i)))
				b.Add(rdf.Typing(x, gen.N1("C1")))
			case "prop2":
				z := rdf.IRI(fmt.Sprintf("http://d/%s#z%d", peerName, i))
				b.Add(rdf.Statement(y(i), gen.N1("prop2"), z))
				b.Add(rdf.Typing(z, gen.N1("C3")))
			case "prop3":
				s := rdf.IRI(fmt.Sprintf("http://d/%s#s%d", peerName, i))
				o := rdf.IRI(fmt.Sprintf("http://d/%s#o%d", peerName, i))
				b.Add(rdf.Statement(s, gen.N1("prop3"), o))
			case "prop4":
				x := rdf.IRI(fmt.Sprintf("http://d/%s#x5_%d", peerName, i))
				b.Add(rdf.Statement(x, gen.N1("prop4"), y(i)))
				b.Add(rdf.Typing(x, gen.N1("C5")))
			}
		}
	}
	return b
}

// TestHybridFigure6 reproduces the paper's Figure 6: P1 poses Q to SP1;
// SP1's annotation says P2 and P3 answer Q1 and P5 answers Q2; P1
// executes the plan, joining locally.
func TestHybridFigure6(t *testing.T) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	for _, sp := range []pattern.PeerID{"SP1", "SP2", "SP3"} {
		if _, err := h.AddSuperPeer(sp); err != nil {
			t.Fatalf("AddSuperPeer(%s): %v", sp, err)
		}
	}
	// P1 has no relevant data of its own; P2, P3 hold prop1; P5 holds
	// prop2; P4 holds only the irrelevant prop3.
	peers := map[pattern.PeerID]*rdf.Base{
		"P1": rdf.NewBase(),
		"P2": propBase("P2", 3, "prop1"),
		"P3": propBase("P3", 3, "prop1"),
		"P4": propBase("P4", 3, "prop3"),
		"P5": propBase("P5", 3, "prop2"),
	}
	for id, base := range peers {
		if _, err := h.AddSimplePeer(id, base, "SP1"); err != nil {
			t.Fatalf("AddSimplePeer(%s): %v", id, err)
		}
	}
	// Setup traffic (advertisement pushes) is not part of the experiment.
	net.ResetCounters()
	// Phase 1 (routing at SP1): the annotation matches the figure.
	p1, _ := h.Peer("P1")
	ann, err := p1.RequestRouting("SP1", gen.PaperQuery())
	if err != nil {
		t.Fatalf("RequestRouting: %v", err)
	}
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P2 P3]" {
		t.Errorf("Q1 peers = %s, want [P2 P3]", got)
	}
	if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P5]" {
		t.Errorf("Q2 peers = %s, want [P5]", got)
	}
	if !ann.Complete() {
		t.Error("super-peer annotation must be complete (no holes, no further broadcasting)")
	}
	// Phase 2 (processing at P1).
	rows, err := h.Query("P1", gen.PaperRQL)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// X from P2 and P3 per join key: 2 × 3 = 6 rows.
	if rows.Len() != 6 {
		t.Errorf("hybrid answer = %d rows, want 6:\n%s", rows.Len(), rows)
	}
	// P4 (irrelevant) must never have received a query message.
	if got := net.Counters().PerNodeReceived["P4"]; got != 0 {
		t.Errorf("irrelevant peer P4 received %d messages", got)
	}
}

func TestHybridBackboneDiscovery(t *testing.T) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	for _, sp := range []pattern.PeerID{"SP1", "SP2"} {
		if _, err := h.AddSuperPeer(sp); err != nil {
			t.Fatal(err)
		}
	}
	// Data peers cluster under SP1; the asker under SP2.
	if _, err := h.AddSimplePeer("P2", propBase("P2", 2, "prop1"), "SP1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddSimplePeer("P5", propBase("P5", 2, "prop2"), "SP1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddSimplePeer("PX", rdf.NewBase(), "SP2"); err != nil {
		t.Fatal(err)
	}
	// SP2 knows nothing locally; the backbone must complete the routing.
	rows, err := h.Query("PX", gen.PaperRQL)
	if err != nil {
		t.Fatalf("Query through backbone: %v", err)
	}
	if rows.Len() != 2 {
		t.Errorf("backbone answer = %d rows, want 2:\n%s", rows.Len(), rows)
	}
}

func TestHybridRemovePeer(t *testing.T) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	if _, err := h.AddSuperPeer("SP1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddSimplePeer("P2", propBase("P2", 2, "prop1"), "SP1"); err != nil {
		t.Fatal(err)
	}
	sp, _ := h.SuperPeer("SP1")
	if _, known := sp.Registry.Get("P2"); !known {
		t.Fatal("SP1 does not know P2")
	}
	h.RemovePeer("P2")
	if _, known := sp.Registry.Get("P2"); known {
		t.Error("SP1 still knows the departed P2")
	}
	if _, ok := h.Peer("P2"); ok {
		t.Error("overlay still lists the departed peer")
	}
}

func TestHybridDuplicateAndUnknownIDs(t *testing.T) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	if _, err := h.AddSuperPeer("SP1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddSuperPeer("SP1"); err == nil {
		t.Error("duplicate super-peer accepted")
	}
	if _, err := h.AddSimplePeer("P1", nil, "SPnone"); err == nil {
		t.Error("attachment to unknown super-peer accepted")
	}
	if _, err := h.AddSimplePeer("P1", nil, "SP1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddSimplePeer("P1", nil, "SP1"); err == nil {
		t.Error("duplicate simple-peer accepted")
	}
	if _, err := h.Query("ghost", gen.PaperRQL); err == nil {
		t.Error("query at unknown peer accepted")
	}
	if got := fmt.Sprint(h.SuperPeerIDs()); got != "[SP1]" {
		t.Errorf("SuperPeerIDs = %s", got)
	}
	if got := fmt.Sprint(h.SimplePeerIDs()); got != "[P1]" {
		t.Errorf("SimplePeerIDs = %s", got)
	}
}

// TestAdhocFigure7 reproduces the paper's Figure 7: P1 knows P2 and P3
// (both answering Q1) but nobody for Q2; the partial plan with a Q2 hole
// is forwarded to P2, which knows P5, completes the plan, executes it and
// returns the full answer to P1 through the deployed channels.
func TestAdhocFigure7(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	if _, err := a.AddPeer("P1", rdf.NewBase()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddPeer("P2", propBase("P2", 3, "prop1"), "P1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddPeer("P3", propBase("P3", 3, "prop1"), "P1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddPeer("P5", propBase("P5", 3, "prop2"), "P2"); err != nil {
		t.Fatal(err)
	}
	// P1's local routing knowledge covers only Q1.
	p1, _ := a.Peer("P1")
	ann := p1.Router.Route(gen.PaperQuery())
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P2 P3]" {
		t.Fatalf("P1's Q1 knowledge = %s", got)
	}
	if len(ann.PeersFor("Q2")) != 0 {
		t.Fatalf("P1 should not know a Q2 peer, got %v", ann.PeersFor("Q2"))
	}
	// Interleaved routing/processing completes the query.
	rows, err := a.Query("P1", gen.PaperRQL)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// X from P2 and P3 per join key: 2 × 3 = 6 rows.
	if rows.Len() != 6 {
		t.Errorf("ad-hoc answer = %d rows, want 6:\n%s", rows.Len(), rows)
	}
}

func TestAdhocFailedChannelToDeadPeer(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	_, _ = a.AddPeer("P1", rdf.NewBase())
	_, _ = a.AddPeer("P2", propBase("P2", 2, "prop1"), "P1")
	_, _ = a.AddPeer("P3", propBase("P3", 2, "prop1"), "P1")
	_, _ = a.AddPeer("P5", propBase("P5", 2, "prop2"), "P2")
	// P3 dies; as in Figure 7, the channel P1→P3 fails but P2's path
	// still completes the query (adapting around the dead P3).
	net.Fail("P3")
	rows, err := a.Query("P1", gen.PaperRQL)
	if err != nil {
		t.Fatalf("Query with dead P3: %v", err)
	}
	// Only P2's prop1 pairs remain: 2 rows.
	if rows.Len() != 2 {
		t.Errorf("answer = %d rows, want 2:\n%s", rows.Len(), rows)
	}
}

func TestAdhocTTLExhaustion(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	_, _ = a.AddPeer("P1", rdf.NewBase())
	_, _ = a.AddPeer("P2", propBase("P2", 2, "prop1"), "P1")
	// Nobody anywhere answers Q2.
	_, err := a.Query("P1", gen.PaperRQL)
	if err == nil {
		t.Fatal("unanswerable query succeeded")
	}
	if !strings.Contains(err.Error(), "Q2") && !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("error should mention the unresolved part: %v", err)
	}
}

func TestAdhocLocalCompletion(t *testing.T) {
	// When the initiator's own knowledge completes the plan, no
	// forwarding happens.
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	_, _ = a.AddPeer("P1", propBase("P1", 2, "prop1", "prop2"))
	rows, err := a.Query("P1", gen.PaperRQL)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.Len() != 2 {
		t.Errorf("local answer = %d rows, want 2:\n%s", rows.Len(), rows)
	}
	if got := net.Counters().PerKind["adhoc.plan"]; got != 0 {
		t.Errorf("locally answerable query was forwarded %d times", got)
	}
}

func TestAdhocExpandNeighborhood(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	// Chain P1 – P2 – P5: P1 initially knows only P2.
	_, _ = a.AddPeer("P1", rdf.NewBase())
	_, _ = a.AddPeer("P2", propBase("P2", 2, "prop1"), "P1")
	_, _ = a.AddPeer("P5", propBase("P5", 2, "prop2"), "P2")
	p1, _ := a.Peer("P1")
	if _, known := p1.Registry.Get("P5"); known {
		t.Fatal("P1 should not know P5 at depth 1")
	}
	learned, err := a.ExpandNeighborhood("P1", 2)
	if err != nil {
		t.Fatalf("ExpandNeighborhood: %v", err)
	}
	if learned != 1 {
		t.Errorf("learned = %d, want 1 (P5)", learned)
	}
	if _, known := p1.Registry.Get("P5"); !known {
		t.Error("P1 did not learn P5's advertisement at depth 2")
	}
	// After expansion P1 routes the query entirely by itself.
	ann := p1.Router.Route(gen.PaperQuery())
	if !ann.Complete() {
		t.Error("routing incomplete after neighborhood expansion")
	}
	if _, err := a.ExpandNeighborhood("ghost", 2); err == nil {
		t.Error("expansion at unknown peer accepted")
	}
}

func TestAdhocRemovePeer(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	_, _ = a.AddPeer("P1", rdf.NewBase())
	_, _ = a.AddPeer("P2", propBase("P2", 1, "prop1"), "P1")
	a.RemovePeer("P2")
	p1, _ := a.Peer("P1")
	if _, known := p1.Registry.Get("P2"); known {
		t.Error("P1 still knows removed P2")
	}
	if got := fmt.Sprint(a.PeerIDs()); got != "[P1]" {
		t.Errorf("PeerIDs = %s", got)
	}
}

func TestFloodingReachesEveryoneAndMissesCrossPeerJoins(t *testing.T) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	// Star topology around P1. P2 holds prop1, P5 holds prop2 — the join
	// spans peers, so flooding's local evaluation finds NOTHING, while
	// P4 holds both and answers locally.
	_, _ = f.AddPeer("P1", rdf.NewBase())
	_, _ = f.AddPeer("P2", propBase("P2", 3, "prop1"), "P1")
	_, _ = f.AddPeer("P5", propBase("P5", 3, "prop2"), "P1")
	_, _ = f.AddPeer("P4", propBase("P4", 3, "prop1", "prop2"), "P1")
	_, _ = f.AddPeer("P6", propBase("P6", 3, "prop3"), "P1")

	res, err := f.Query("P1", gen.PaperRQL, 3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.PeersReached != 5 {
		t.Errorf("PeersReached = %d, want all 5 (flooding spams everyone)", res.PeersReached)
	}
	// Only P4's co-located pairs are found: 3 rows. The 3 cross-peer
	// answers (P2 × P5) are missed — the completeness gap SON routing
	// plus distributed plans closes.
	if res.Rows.Len() != 3 {
		t.Errorf("flooded answer = %d rows, want 3:\n%s", res.Rows.Len(), res.Rows)
	}
	// Irrelevant P6 received traffic — unlike SON routing.
	if got := net.Counters().PerNodeReceived["P6"]; got == 0 {
		t.Error("flooding should reach the irrelevant peer")
	}
}

func TestFloodingTTLBoundsPropagation(t *testing.T) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	// Chain P1 – P2 – P3 – P4.
	_, _ = f.AddPeer("P1", rdf.NewBase())
	_, _ = f.AddPeer("P2", rdf.NewBase(), "P1")
	_, _ = f.AddPeer("P3", rdf.NewBase(), "P2")
	_, _ = f.AddPeer("P4", rdf.NewBase(), "P3")
	res, err := f.Query("P1", gen.PaperRQL, 1)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.PeersReached != 2 {
		t.Errorf("TTL=1 reached %d peers, want 2 (P1 + P2)", res.PeersReached)
	}
	res3, err := f.Query("P1", gen.PaperRQL, 3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res3.PeersReached != 4 {
		t.Errorf("TTL=3 reached %d peers, want 4", res3.PeersReached)
	}
}

func TestFloodingDuplicateSuppression(t *testing.T) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	// Triangle: P1 – P2 – P3 – P1. Each peer must process a query once.
	_, _ = f.AddPeer("P1", propBase("P1", 1, "prop1", "prop2"))
	_, _ = f.AddPeer("P2", propBase("P2", 1, "prop1", "prop2"), "P1")
	_, _ = f.AddPeer("P3", propBase("P3", 1, "prop1", "prop2"), "P1", "P2")
	res, err := f.Query("P1", gen.PaperRQL, 5)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.PeersReached != 3 {
		t.Errorf("PeersReached = %d, want 3 (duplicates suppressed)", res.PeersReached)
	}
	// Union of three local answers: each peer contributes its own X but
	// shares the same join keys.
	if res.Rows.Len() != 3 {
		t.Errorf("rows = %d, want 3:\n%s", res.Rows.Len(), res.Rows)
	}
}

func TestFloodingAccessors(t *testing.T) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	_, _ = f.AddPeer("F1", rdf.NewBase())
	_, _ = f.AddPeer("F2", rdf.NewBase(), "F1")
	if _, ok := f.Peer("F1"); !ok {
		t.Error("Peer lookup failed")
	}
	if _, ok := f.Peer("ghost"); ok {
		t.Error("ghost peer found")
	}
	if got := fmt.Sprint(f.PeerIDs()); got != "[F1 F2]" {
		t.Errorf("PeerIDs = %s", got)
	}
	if _, err := f.AddPeer("F1", rdf.NewBase()); err == nil {
		t.Error("duplicate flooding peer accepted")
	}
	if _, err := f.Query("ghost", gen.PaperRQL, 2); err == nil {
		t.Error("query at unknown flooding peer accepted")
	}
}

func TestFloodingBadQueryYieldsEmptyLocalAnswers(t *testing.T) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	_, _ = f.AddPeer("F1", propBase("F1", 1, "prop1"))
	// A query over an undeclared property: peers fail to compile it and
	// contribute nothing, but the flood itself succeeds.
	res, err := f.Query("F1", `SELECT X FROM {X}n1:ghost{Y} USING NAMESPACE n1 = &`+gen.PaperNS+`&`, 2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Rows.Len() != 0 || res.PeersReached != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestAdhocGracefulDeparture(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	_, _ = a.AddPeer("P1", rdf.NewBase())
	_, _ = a.AddPeer("P2", propBase("P2", 1, "prop1"), "P1")
	p1, _ := a.Peer("P1")
	if _, known := p1.Registry.Get("P2"); !known {
		t.Fatal("P1 never learned P2")
	}
	net.ResetCounters()
	a.RemovePeer("P2")
	if _, known := p1.Registry.Get("P2"); known {
		t.Error("departed peer still known after graceful leave")
	}
	// The departure traveled as a real message, not an out-of-band poke.
	if got := net.Counters().PerKind["adv.leave"]; got == 0 {
		t.Error("no adv.leave message observed")
	}
}

func TestHybridGracefulDeparture(t *testing.T) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	_, _ = h.AddSuperPeer("SP1")
	_, _ = h.AddSimplePeer("P2", propBase("P2", 1, "prop1"), "SP1")
	net.ResetCounters()
	h.RemovePeer("P2")
	sp, _ := h.SuperPeer("SP1")
	if _, known := sp.Registry.Get("P2"); known {
		t.Error("super-peer still knows departed P2")
	}
	if got := net.Counters().PerKind["adv.leave"]; got == 0 {
		t.Error("no adv.leave message observed")
	}
	h.RemovePeer("ghost") // must not panic
}

func TestAdhocForwardSkipsDeadCandidate(t *testing.T) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	// P1 knows P2 and P3, both answering Q1; only P2's side leads to P5.
	_, _ = a.AddPeer("P1", rdf.NewBase())
	_, _ = a.AddPeer("P2", propBase("P2", 2, "prop1"), "P1")
	_, _ = a.AddPeer("P3", propBase("P3", 2, "prop1"), "P1")
	_, _ = a.AddPeer("P5", propBase("P5", 2, "prop2"), "P2")
	// Kill P2 — the better candidate — and verify the query fails over
	// to other forwarding paths or errors cleanly, never panics.
	net.Fail("P2")
	rows, err := a.Query("P1", gen.PaperRQL)
	if err != nil {
		// Acceptable: without P2 nobody reachable knows P5.
		if !strings.Contains(err.Error(), "unresolved") && !strings.Contains(err.Error(), "forward") {
			t.Errorf("unexpected error: %v", err)
		}
		return
	}
	// If it succeeded, only P3's contribution can be present.
	for _, line := range rows.Sorted() {
		if strings.Contains(line, "/P2#") {
			t.Errorf("dead peer's data in answer: %s", line)
		}
	}
}
