// Package overlay builds and drives Semantic Overlay Networks over the
// peer runtime (paper §3): the hybrid architecture with a super-peer
// backbone (§3.1), the ad-hoc self-adaptive architecture with interleaved
// query routing and processing (§3.2), and the Gnutella-style flooding
// baseline the paper's SON-routing claims are measured against.
package overlay

import (
	"encoding/json"
	"fmt"
	"sort"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// Hybrid is a super-peer SON: every simple-peer attaches to a super-peer
// that collects its cluster's active-schemas; super-peers form a fully
// connected backbone and answer routing requests, possibly consulting
// each other when a query's schema is unknown locally.
type Hybrid struct {
	// Net is the shared transport.
	Net *network.Network
	// Schema is the community schema of this SON.
	Schema *rdf.Schema

	supers    map[pattern.PeerID]*peer.Peer
	simples   map[pattern.PeerID]*peer.Peer
	clusterOf map[pattern.PeerID]pattern.PeerID
}

// NewHybrid returns an empty hybrid SON on the network.
func NewHybrid(net *network.Network, schema *rdf.Schema) *Hybrid {
	return &Hybrid{
		Net:       net,
		Schema:    schema,
		supers:    map[pattern.PeerID]*peer.Peer{},
		simples:   map[pattern.PeerID]*peer.Peer{},
		clusterOf: map[pattern.PeerID]pattern.PeerID{},
	}
}

// AddSuperPeer creates a super-peer and joins it to the backbone (every
// existing super-peer learns of it and vice versa).
func (h *Hybrid) AddSuperPeer(id pattern.PeerID) (*peer.Peer, error) {
	if _, dup := h.supers[id]; dup {
		return nil, fmt.Errorf("overlay: super-peer %s already exists", id)
	}
	sp, err := peer.New(peer.Config{ID: id, Kind: peer.SuperPeer, Schema: h.Schema}, h.Net)
	if err != nil {
		return nil, err
	}
	for other := range h.supers {
		sp.AddNeighbor(other)
		h.supers[other].AddNeighbor(id)
	}
	h.supers[id] = sp
	// Backbone-aware routing: replace the plain routing handler with one
	// that consults sibling super-peers for path patterns the local
	// cluster cannot cover.
	h.Net.Handle(id, "query.route", h.backboneRouteHandler(sp))
	return sp, nil
}

// backboneRouteHandler routes with the super-peer's cluster knowledge
// and, when the annotation is incomplete, merges annotations pulled from
// the other super-peers (the backbone discovery of §3.1).
func (h *Hybrid) backboneRouteHandler(sp *peer.Peer) network.Handler {
	return func(msg network.Message) ([]byte, error) {
		var q pattern.QueryPattern
		if err := json.Unmarshal(msg.Payload, &q); err != nil {
			return nil, fmt.Errorf("overlay: super-peer %s: bad routing request: %w", sp.ID, err)
		}
		ann := sp.Router.Route(&q)
		if !ann.Complete() {
			for _, other := range h.SuperPeerIDs() {
				if other == sp.ID {
					continue
				}
				remote, err := sp.RequestRouting(other, &q)
				if err != nil {
					continue // dead sibling: use what we have
				}
				ann.Merge(remote)
				if ann.Complete() {
					break
				}
			}
		}
		return pattern.MarshalAnnotated(ann)
	}
}

// AddSimplePeer creates a simple-peer with the given base, attaches it to
// the super-peer, and pushes its advertisement there (the push of §3.1).
func (h *Hybrid) AddSimplePeer(id pattern.PeerID, base *rdf.Base, super pattern.PeerID) (*peer.Peer, error) {
	if _, ok := h.supers[super]; !ok {
		return nil, fmt.Errorf("overlay: unknown super-peer %s", super)
	}
	if _, dup := h.simples[id]; dup {
		return nil, fmt.Errorf("overlay: simple-peer %s already exists", id)
	}
	p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: h.Schema, Base: base}, h.Net)
	if err != nil {
		return nil, err
	}
	p.Super = super
	if err := p.PushAdvertisement(super); err != nil {
		return nil, fmt.Errorf("overlay: advertising %s to %s: %w", id, super, err)
	}
	h.simples[id] = p
	h.clusterOf[id] = super
	return p, nil
}

// RemovePeer detaches a simple-peer from the SON gracefully: the peer
// announces its departure to its super-peer before leaving the network.
func (h *Hybrid) RemovePeer(id pattern.PeerID) {
	super, ok := h.clusterOf[id]
	if !ok {
		return
	}
	h.simples[id].AnnounceDeparture(super)
	delete(h.simples, id)
	delete(h.clusterOf, id)
	h.Net.RemoveNode(id)
}

// Peer returns a simple-peer by id.
func (h *Hybrid) Peer(id pattern.PeerID) (*peer.Peer, bool) {
	p, ok := h.simples[id]
	return p, ok
}

// SuperPeer returns a super-peer by id.
func (h *Hybrid) SuperPeer(id pattern.PeerID) (*peer.Peer, bool) {
	p, ok := h.supers[id]
	return p, ok
}

// SuperPeerIDs returns the backbone ids, sorted.
func (h *Hybrid) SuperPeerIDs() []pattern.PeerID {
	out := make([]pattern.PeerID, 0, len(h.supers))
	for id := range h.supers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SimplePeerIDs returns the simple-peer ids, sorted.
func (h *Hybrid) SimplePeerIDs() []pattern.PeerID {
	out := make([]pattern.PeerID, 0, len(h.simples))
	for id := range h.simples {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Query runs the two-phase hybrid evaluation of §3.1 for an RQL query
// posed at a simple-peer: phase one routes at the super-peer (returning
// the annotated pattern), phase two generates, optimizes and executes the
// plan at the simple-peer.
func (h *Hybrid) Query(at pattern.PeerID, rqlText string) (*rql.ResultSet, error) {
	p, ok := h.simples[at]
	if !ok {
		return nil, fmt.Errorf("overlay: unknown simple-peer %s", at)
	}
	return p.Ask(rqlText)
}
