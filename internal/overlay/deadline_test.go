package overlay_test

import (
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/overlay"
	"sqpeer/internal/rdf"
	"sqpeer/internal/stats"
)

// TestFloodingDeadlineSkipsSlowNeighbor: Flooding.DeadlineMS bounds each
// flood hop, so a neighbor behind a gray-failed link is skipped like a
// dead one instead of stalling the whole flood; the zero default keeps
// the old unbounded reach.
func TestFloodingDeadlineSkipsSlowNeighbor(t *testing.T) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	if _, err := f.AddPeer("P1", propBase("P1", 2, "prop1")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddPeer("P2", propBase("P2", 2, "prop1"), "P1"); err != nil {
		t.Fatal(err)
	}
	net.SetLink("P1", "P2", stats.Link{LatencyMS: 500, BandwidthKBps: 1000})

	f.DeadlineMS = 10
	res, err := f.Query("P1", gen.PaperRQL, 3)
	if err != nil {
		t.Fatalf("bounded flood: %v", err)
	}
	if res.PeersReached != 1 {
		t.Errorf("bounded flood reached %d peers, want only the initiator", res.PeersReached)
	}

	f.DeadlineMS = 0
	res, err = f.Query("P1", gen.PaperRQL, 3)
	if err != nil {
		t.Fatalf("unbounded flood: %v", err)
	}
	if res.PeersReached != 2 {
		t.Errorf("unbounded flood reached %d peers, want 2", res.PeersReached)
	}
}

// TestAdhocDeadlineBoundsPlanForwarding: the partial-plan forward (the
// interleaved routing/processing hop of Figure 7) honors
// Adhoc.DeadlineMS. P1 can fill Q1 itself but must forward the Q2 hole;
// when every forward candidate sits behind a gray-failed link the
// bounded forward gives up instead of stalling, while the zero default
// resolves the plan as before.
func TestAdhocDeadlineBoundsPlanForwarding(t *testing.T) {
	build := func(t *testing.T) (*network.Network, *overlay.Adhoc) {
		t.Helper()
		net := network.New()
		a := overlay.NewAdhoc(net, gen.PaperSchema())
		if _, err := a.AddPeer("P1", rdf.NewBase()); err != nil {
			t.Fatal(err)
		}
		if _, err := a.AddPeer("P2", propBase("P2", 2, "prop1"), "P1"); err != nil {
			t.Fatal(err)
		}
		if _, err := a.AddPeer("P3", propBase("P3", 2, "prop1"), "P1"); err != nil {
			t.Fatal(err)
		}
		if _, err := a.AddPeer("P5", propBase("P5", 2, "prop2"), "P2"); err != nil {
			t.Fatal(err)
		}
		// Every peer P1 could forward the partial plan to gray-fails:
		// reachable, but far beyond any useful deadline.
		slow := stats.Link{LatencyMS: 5000, BandwidthKBps: 1000}
		net.SetLink("P1", "P2", slow)
		net.SetLink("P1", "P3", slow)
		return net, a
	}

	_, a := build(t)
	a.DeadlineMS = 100 // generous for healthy links, hopeless at 5000ms
	if _, err := a.Query("P1", gen.PaperRQL); err == nil {
		t.Fatal("bounded forwards over 5000ms links resolved the plan")
	}

	// The zero default keeps forwards unbounded: the same topology
	// resolves (latency is simulated-clock accounting, not wall time).
	_, a = build(t)
	rows, err := a.Query("P1", gen.PaperRQL)
	if err != nil {
		t.Fatalf("unbounded Query: %v", err)
	}
	if rows.Len() != 4 {
		t.Errorf("answer = %d rows, want 4:\n%s", rows.Len(), rows)
	}
}
