package overlay

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// Flooding is the Gnutella-style baseline the paper's SON claims are
// measured against: queries are broadcast TTL-hops deep through the
// physical neighbor graph; every reached peer evaluates the whole query
// against its local base and returns its local answer to the initiator.
// There is no schema-based routing and no distributed join, so flooding
// pays messages at every peer (relevant or not) and misses answers whose
// path patterns span peers.
type Flooding struct {
	// Net is the shared transport.
	Net *network.Network
	// Schema is the community schema used for local evaluation.
	Schema *rdf.Schema
	// DeadlineMS bounds each flood hop on the simulated clock (0 =
	// none); a stalled neighbor fails its hop instead of pinning the
	// whole flood.
	DeadlineMS float64

	mu    sync.Mutex
	peers map[pattern.PeerID]*peer.Peer
	seen  map[pattern.PeerID]map[string]bool // per-peer seen query ids
}

// NewFlooding returns an empty flooding network.
func NewFlooding(net *network.Network, schema *rdf.Schema) *Flooding {
	return &Flooding{
		Net:    net,
		Schema: schema,
		peers:  map[pattern.PeerID]*peer.Peer{},
		seen:   map[pattern.PeerID]map[string]bool{},
	}
}

// AddPeer creates a peer with the given base and physical neighbors
// (symmetric links). No advertisements are exchanged — flooding has no
// routing knowledge.
func (f *Flooding) AddPeer(id pattern.PeerID, base *rdf.Base, neighbors ...pattern.PeerID) (*peer.Peer, error) {
	f.mu.Lock()
	if _, dup := f.peers[id]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("overlay: peer %s already exists", id)
	}
	f.mu.Unlock()
	p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: f.Schema, Base: base}, f.Net)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.peers[id] = p
	f.seen[id] = map[string]bool{}
	f.mu.Unlock()
	f.Net.Handle(id, "flood.query", f.queryHandler(p))
	for _, n := range neighbors {
		f.mu.Lock()
		pn, ok := f.peers[n]
		f.mu.Unlock()
		if ok {
			p.AddNeighbor(n)
			pn.AddNeighbor(id)
		}
	}
	return p, nil
}

// Peer returns a peer by id.
func (f *Flooding) Peer(id pattern.PeerID) (*peer.Peer, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.peers[id]
	return p, ok
}

// PeerIDs returns all peer ids, sorted.
func (f *Flooding) PeerIDs() []pattern.PeerID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]pattern.PeerID, 0, len(f.peers))
	for id := range f.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// floodReq is the wire form of a flooded query.
type floodReq struct {
	QueryID string `json:"queryId"`
	RQL     string `json:"rql"`
	TTL     int    `json:"ttl"`
}

// floodReply aggregates the rows gathered below a peer.
type floodReply struct {
	Rows *rql.ResultSet `json:"rows"`
	// PeersReached counts peers that processed the query in this subtree.
	PeersReached int `json:"peersReached"`
}

// queryHandler evaluates the flooded query locally and recursively floods
// unvisited neighbors, aggregating replies.
func (f *Flooding) queryHandler(p *peer.Peer) network.Handler {
	return func(msg network.Message) ([]byte, error) {
		var req floodReq
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return nil, fmt.Errorf("overlay: %s: bad flood request: %w", p.ID, err)
		}
		f.mu.Lock()
		if f.seen[p.ID][req.QueryID] {
			f.mu.Unlock()
			return json.Marshal(floodReply{Rows: rql.NewResultSet(), PeersReached: 0})
		}
		f.seen[p.ID][req.QueryID] = true
		f.mu.Unlock()

		reply := floodReply{Rows: rql.NewResultSet(), PeersReached: 1}
		if c, err := p.Compile(req.RQL); err == nil {
			if rows, err := rql.Eval(c, p.Base); err == nil {
				reply.Rows = rows
			}
		}
		if req.TTL > 0 {
			fwd := floodReq{QueryID: req.QueryID, RQL: req.RQL, TTL: req.TTL - 1}
			body, err := json.Marshal(fwd)
			if err != nil {
				return nil, err
			}
			for _, n := range p.Neighbors() {
				resp, err := f.Net.CallWithin(p.ID, n, "flood.query", body, f.DeadlineMS)
				if err != nil {
					continue // dead neighbor
				}
				var sub floodReply
				if err := json.Unmarshal(resp, &sub); err != nil {
					continue
				}
				if sub.Rows != nil {
					reply.Rows = reply.Rows.Union(sub.Rows)
				}
				reply.PeersReached += sub.PeersReached
			}
		}
		return json.Marshal(reply)
	}
}

// FloodResult reports a flooded query's outcome.
type FloodResult struct {
	// Rows is the union of every reached peer's local answer.
	Rows *rql.ResultSet
	// PeersReached counts peers that processed the query.
	PeersReached int
}

var floodSeq int
var floodSeqMu sync.Mutex

// Query floods an RQL query from a peer with the given TTL and returns
// the unioned local answers.
func (f *Flooding) Query(at pattern.PeerID, rqlText string, ttl int) (*FloodResult, error) {
	f.mu.Lock()
	p, ok := f.peers[at]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("overlay: unknown peer %s", at)
	}
	floodSeqMu.Lock()
	floodSeq++
	qid := fmt.Sprintf("flood-%d", floodSeq)
	floodSeqMu.Unlock()

	// The initiator processes the query like everyone else: mark seen,
	// evaluate locally, flood neighbors.
	body, err := json.Marshal(floodReq{QueryID: qid, RQL: rqlText, TTL: ttl})
	if err != nil {
		return nil, err
	}
	resp, err := f.Net.CallWithin(p.ID, p.ID, "flood.query", body, f.DeadlineMS)
	if err != nil {
		return nil, err
	}
	var reply floodReply
	if err := json.Unmarshal(resp, &reply); err != nil {
		return nil, err
	}
	return &FloodResult{Rows: reply.Rows, PeersReached: reply.PeersReached}, nil
}
