package overlay

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"sqpeer/internal/channel"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// DefaultTTL bounds how many hops a partial plan may be forwarded in the
// ad-hoc architecture before giving up.
const DefaultTTL = 6

// Adhoc is a self-adaptive SON (paper §3.2): peers know only their
// physical neighbors at join time, pull active-schemas to form a semantic
// neighborhood, and answer queries by interleaving routing and processing
// — partial plans with holes travel peer-to-peer until some peer can
// complete and execute them.
type Adhoc struct {
	// Net is the shared transport.
	Net *network.Network
	// Schema is the community schema of this SON.
	Schema *rdf.Schema
	// DeadlineMS bounds neighbor discovery and plan forwarding on the
	// simulated clock (0 = none).
	DeadlineMS float64

	mu    sync.Mutex
	peers map[pattern.PeerID]*peer.Peer
}

// NewAdhoc returns an empty ad-hoc SON on the network.
func NewAdhoc(net *network.Network, schema *rdf.Schema) *Adhoc {
	return &Adhoc{Net: net, Schema: schema, peers: map[pattern.PeerID]*peer.Peer{}}
}

// AddPeer creates a peer with the given base, connects it to its physical
// neighbors, and pulls their active-schemas (forming its semantic
// neighborhood). Neighbor links are symmetric.
func (a *Adhoc) AddPeer(id pattern.PeerID, base *rdf.Base, neighbors ...pattern.PeerID) (*peer.Peer, error) {
	a.mu.Lock()
	if _, dup := a.peers[id]; dup {
		a.mu.Unlock()
		return nil, fmt.Errorf("overlay: peer %s already exists", id)
	}
	a.mu.Unlock()
	p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: a.Schema, Base: base}, a.Net)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.peers[id] = p
	a.mu.Unlock()
	a.Net.Handle(id, "adhoc.plan", a.planHandler(p))
	a.Net.Handle(id, "adv.neighbors", func(network.Message) ([]byte, error) {
		return json.Marshal(p.Neighbors())
	})
	for _, n := range neighbors {
		a.Connect(id, n)
	}
	return p, nil
}

// Connect links two peers as physical neighbors and lets each pull the
// other's advertisement (ignoring pull failures — a silent neighbor is
// simply not learned).
func (a *Adhoc) Connect(x, y pattern.PeerID) {
	a.mu.Lock()
	px, okx := a.peers[x]
	py, oky := a.peers[y]
	a.mu.Unlock()
	if !okx || !oky {
		return
	}
	px.AddNeighbor(y)
	py.AddNeighbor(x)
	_ = px.PullAdvertisement(y)
	_ = py.PullAdvertisement(x)
}

// Peer returns a peer by id.
func (a *Adhoc) Peer(id pattern.PeerID) (*peer.Peer, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.peers[id]
	return p, ok
}

// PeerIDs returns all peer ids, sorted.
func (a *Adhoc) PeerIDs() []pattern.PeerID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]pattern.PeerID, 0, len(a.peers))
	for id := range a.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RemovePeer drops a peer from the SON gracefully: it announces its
// departure to every peer in the SON (a broadcast stand-in for the
// gossip that would spread the news in a large deployment) before leaving
// the network.
func (a *Adhoc) RemovePeer(id pattern.PeerID) {
	a.mu.Lock()
	leaving, ok := a.peers[id]
	delete(a.peers, id)
	others := make([]pattern.PeerID, 0, len(a.peers))
	for pid := range a.peers {
		others = append(others, pid)
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	a.mu.Unlock()
	if ok {
		leaving.AnnounceDeparture(others...)
	}
	a.Net.RemoveNode(id)
}

// ExpandNeighborhood pulls active-schemas from the k-depth neighborhood
// of a peer (the "2-depth, 3-depth, etc." expansion of §3.2), returning
// how many new advertisements were learned. Discovery of
// neighbors-of-neighbors uses one "adv.neighbors" request per frontier
// peer.
func (a *Adhoc) ExpandNeighborhood(id pattern.PeerID, depth int) (int, error) {
	a.mu.Lock()
	p, ok := a.peers[id]
	a.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("overlay: unknown peer %s", id)
	}
	learned := 0
	visited := map[pattern.PeerID]bool{id: true}
	frontier := p.Neighbors()
	for _, n := range frontier {
		visited[n] = true
	}
	for d := 1; d < depth; d++ {
		var next []pattern.PeerID
		for _, f := range frontier {
			reply, err := a.Net.CallWithin(id, f, "adv.neighbors", nil, a.DeadlineMS)
			if err != nil {
				continue
			}
			var ns []pattern.PeerID
			if err := json.Unmarshal(reply, &ns); err != nil {
				continue
			}
			for _, n := range ns {
				if !visited[n] {
					visited[n] = true
					next = append(next, n)
					if err := p.PullAdvertisement(n); err == nil {
						learned++
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return learned, nil
}

// planHandler registers p's side of the interleaved routing/processing
// protocol: on receiving a partial plan, merge local routing knowledge;
// if the plan completes, execute it here and stream the answer upstream;
// otherwise forward it onward.
func (a *Adhoc) planHandler(p *peer.Peer) network.Handler {
	return func(msg network.Message) ([]byte, error) {
		var req planReq
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return nil, fmt.Errorf("overlay: %s: bad plan request: %w", p.ID, err)
		}
		partial, err := plan.Unmarshal(req.Plan)
		if err != nil {
			return nil, err
		}
		rows, rerr := a.resolveAndRun(p, partial, req.Visited, req.TTL)
		if rerr != nil {
			if serr := p.Channels.SendToRoot(req.ChannelID, channel.Failure, 0, []byte(rerr.Error())); serr != nil {
				return nil, serr
			}
			return []byte("failed"), nil
		}
		payload, err := json.Marshal(rows)
		if err != nil {
			return nil, fmt.Errorf("overlay: marshal rows: %w", err)
		}
		if err := p.Channels.SendToRoot(req.ChannelID, channel.Results, rows.Len(), payload); err != nil {
			return nil, err
		}
		if err := p.Channels.SendToRoot(req.ChannelID, channel.Done, 0, nil); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}
}

// planReq is the wire form of a forwarded partial plan.
type planReq struct {
	ChannelID string           `json:"channelId"`
	Plan      []byte           `json:"plan"`
	Visited   []pattern.PeerID `json:"visited"`
	TTL       int              `json:"ttl"`
}

// Query answers an RQL query at a peer using the ad-hoc discipline
// (§3.2): route with local knowledge; execute if the plan is complete;
// otherwise forward the partial plan along the SON until some peer
// completes it, with the answer flowing back through the deployed
// channels.
func (a *Adhoc) Query(at pattern.PeerID, rqlText string) (*rql.ResultSet, error) {
	a.mu.Lock()
	p, ok := a.peers[at]
	a.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("overlay: unknown peer %s", at)
	}
	c, err := p.Compile(rqlText)
	if err != nil {
		return nil, err
	}
	ann := p.Router.Route(c.Pattern)
	partial, err := plan.Generate(ann)
	if err != nil {
		return nil, err
	}
	// Defer projections to the initiator: a remote completing peer must
	// return full rows so WHERE filters on non-projected variables still
	// see their bindings.
	partial.Query = &pattern.QueryPattern{
		SchemaName: c.Pattern.SchemaName,
		Patterns:   c.Pattern.Patterns,
	}
	rows, err := a.resolveAndRun(p, partial, []pattern.PeerID{}, DefaultTTL)
	if err != nil {
		return nil, err
	}
	filtered, err := rql.ApplyFilters(rows, c.Query.Where)
	if err != nil {
		return nil, err
	}
	return filtered.Project(c.Pattern.Projections).Limit(c.Query.Limit), nil
}

// resolveAndRun is one step of interleaved routing and processing at peer
// p: fill holes with p's knowledge; execute when complete; otherwise
// forward to candidate peers (plan participants and physical neighbors
// not yet visited) until one returns a complete answer.
func (a *Adhoc) resolveAndRun(p *peer.Peer, partial *plan.Plan, visited []pattern.PeerID, ttl int) (*rql.ResultSet, error) {
	ann := p.Router.Route(partial.Query)
	filled, _ := plan.FillHoles(partial, ann)
	if !plan.HasHoles(filled.Root) {
		rows, err := p.Engine.Execute(filled)
		if err != nil {
			return nil, err
		}
		return rows, nil
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("overlay: %s: TTL exhausted with unresolved holes %v", p.ID, holeIDs(filled))
	}
	seen := map[pattern.PeerID]bool{p.ID: true}
	for _, v := range visited {
		seen[v] = true
	}
	nextVisited := append(append([]pattern.PeerID{}, visited...), p.ID)

	var lastErr error
	tried := 0
	for _, cand := range a.forwardCandidates(p, filled, seen) {
		tried++
		rows, err := a.forwardTo(p, cand, filled, nextVisited, ttl-1)
		if err != nil {
			lastErr = err
			continue
		}
		return rows, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("overlay: %s: no peer to forward partial plan to (holes %v)", p.ID, holeIDs(filled))
	}
	return nil, fmt.Errorf("overlay: partial plan unresolved after %d forwards: %w", tried, lastErr)
}

// forwardCandidates orders the peers worth forwarding a partial plan to:
// first the peers already participating in the plan (they answer part of
// the query, as in Figure 7 where P1 forwards to P2 and P3), then the
// physical neighbors.
func (a *Adhoc) forwardCandidates(p *peer.Peer, filled *plan.Plan, seen map[pattern.PeerID]bool) []pattern.PeerID {
	var out []pattern.PeerID
	add := func(id pattern.PeerID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range plan.Peers(filled.Root) {
		add(id)
	}
	for _, id := range p.Neighbors() {
		add(id)
	}
	return out
}

// forwardTo ships the partial plan to the candidate over a channel and
// waits for its verdict (synchronous delivery resolves the whole chain
// within the Send).
func (a *Adhoc) forwardTo(p *peer.Peer, cand pattern.PeerID, filled *plan.Plan, visited []pattern.PeerID, ttl int) (*rql.ResultSet, error) {
	collector := &adhocCollector{}
	ch, err := p.Channels.Open(cand, collector.onPacket)
	if err != nil {
		return nil, fmt.Errorf("overlay: channel to %s failed: %w", cand, err)
	}
	defer p.Channels.Close(ch)
	data, err := plan.Marshal(filled)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(planReq{ChannelID: ch.ID, Plan: data, Visited: visited, TTL: ttl})
	if err != nil {
		return nil, err
	}
	if err := p.Net.SendWithin(p.ID, cand, "adhoc.plan", body, a.DeadlineMS); err != nil {
		p.Channels.MarkFailed(ch)
		return nil, fmt.Errorf("overlay: forward to %s failed: %w", cand, err)
	}
	if collector.err != nil {
		return nil, collector.err
	}
	if !collector.done {
		return nil, fmt.Errorf("overlay: %s returned no verdict", cand)
	}
	if collector.rows == nil {
		collector.rows = rql.NewResultSet()
	}
	return collector.rows, nil
}

type adhocCollector struct {
	mu   sync.Mutex
	rows *rql.ResultSet
	err  error
	done bool
}

func (c *adhocCollector) onPacket(pkt channel.Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch pkt.Type {
	case channel.Results:
		var rs rql.ResultSet
		if err := json.Unmarshal(pkt.Payload, &rs); err != nil {
			c.err = fmt.Errorf("overlay: bad results packet: %w", err)
			return
		}
		if c.rows == nil {
			c.rows = &rs
		} else {
			c.rows = c.rows.Union(&rs)
		}
	case channel.Failure:
		c.err = fmt.Errorf("overlay: remote failure: %s", pkt.Payload)
	case channel.Done:
		c.done = true
	}
}

func holeIDs(p *plan.Plan) []string {
	holes := plan.Holes(p.Root)
	out := make([]string, len(holes))
	for i, h := range holes {
		out[i] = h.Patterns[0].ID
	}
	return out
}
