// Package obs is SQPeer's observability layer: a deterministic metrics
// registry and a logical-clock span tracer for distributed query
// execution (paper §2.4–2.5: ubQL channels carry statistics packets so
// peers can "obtain knowledge about the state of the execution of a
// query plan"). Everything in this package is driven by the simulated
// logical clock and by explicit charges — never the wall clock — so a
// same-seed rerun produces byte-identical snapshots and traces. The
// package depends only on the standard library: every other layer may
// import it.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one metric dimension (e.g. peer=P1).
type Label struct {
	// Key and Value are the dimension name and value.
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// canonPairs returns a sorted copy of labels — the canonical order every
// rendering (snapshot key, Prometheus exposition) agrees on.
func canonPairs(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	})
	return ls
}

// canonLabels renders labels in canonical sorted "k=v,k2=v2" form — the
// identity of an instrument and the deterministic sort key of snapshots.
func canonLabels(labels []Label) string { return joinPairs(canonPairs(labels)) }

// joinPairs renders already-sorted pairs as "k=v,k2=v2".
func joinPairs(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d.
func (c *Counter) Add(d float64) {
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a set-to-current-value metric. Safe for concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// DefaultBuckets are the upper bounds (inclusive) of the histogram
// buckets, in logical milliseconds — an exponential ladder wide enough
// for both per-packet transfer times and end-to-end query latencies.
// The implicit final bucket is +Inf.
var DefaultBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram summarizes a stream of observations: count/sum/min/max plus
// cumulative bucket counts over DefaultBuckets, enough for the SLO
// evaluator's quantile estimates and the Prometheus exposition. Safe for
// concurrent use.
type Histogram struct {
	mu       sync.Mutex
	count    int
	sum      float64
	min, max float64
	buckets  [bucketSlots]int // per-bound counts; last slot is +Inf overflow
}

// bucketSlots sizes the bucket array: len(DefaultBuckets) bounds plus the
// +Inf overflow slot (checked by a unit test against DefaultBuckets).
const bucketSlots = 13

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	slot := len(DefaultBuckets)
	for i, bound := range DefaultBuckets {
		if v <= bound {
			slot = i
			break
		}
	}
	h.buckets[slot]++
	h.mu.Unlock()
}

// Summary returns (count, sum, min, max).
func (h *Histogram) Summary() (count int, sum, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.min, h.max
}

// Mean returns sum/count (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns cumulative counts per DefaultBuckets bound; the final
// element counts everything (the +Inf bucket) and equals Count.
func (h *Histogram) Buckets() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, bucketSlots)
	cum := 0
	for i, c := range h.buckets {
		cum += c
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// [min,max] envelope. Every edge case yields a defined value: an empty
// histogram returns 0, a single observation returns that observation,
// and all-in-one-bucket collapses to the clamp (never NaN, never a
// panic) — the contract the SLO evaluator depends on.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0
	for i, c := range h.buckets {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = DefaultBuckets[i-1]
		}
		hi := h.max
		if i < len(DefaultBuckets) {
			hi = DefaultBuckets[i]
		}
		// Interpolate inside the bucket, then clamp to what was actually
		// observed so degenerate buckets stay finite and meaningful.
		frac := (rank - float64(cum-c)) / float64(c)
		v := lo + (hi-lo)*frac
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Metric is one row of a registry snapshot.
type Metric struct {
	// Name is the metric name (snake_case, _total suffix for counters).
	Name string `json:"name"`
	// Labels is the canonical "k=v,k2=v2" label string.
	Labels string `json:"labels,omitempty"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value carries counter/gauge values (and histogram sums).
	Value float64 `json:"value"`
	// Count/Min/Max are set for histograms.
	Count int     `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// Pairs carries the canonical sorted label pairs — the structured
	// twin of Labels, used by the Prometheus renderer so label values
	// containing '=' or ',' never have to be re-parsed from the flat
	// string. Excluded from JSON (Labels stays the wire form).
	Pairs []Label `json:"-"`
}

// Gather is the sink a collector writes its component's counters into at
// snapshot time. Components that already keep internal counters (the
// executor's Metrics, routing.Health's breaker stats, the channel
// manager's packet accounting) publish through a collector instead of
// dual-writing on their hot paths; their existing accessors stay as thin
// compatibility shims.
type Gather struct {
	rows []Metric
}

// Count emits one counter row.
func (g *Gather) Count(name string, v float64, labels ...Label) {
	ls := canonPairs(labels)
	g.rows = append(g.rows, Metric{Name: name, Labels: joinPairs(ls), Pairs: ls, Kind: "counter", Value: v})
}

// Gauge emits one gauge row.
func (g *Gather) Gauge(name string, v float64, labels ...Label) {
	ls := canonPairs(labels)
	g.rows = append(g.rows, Metric{Name: name, Labels: joinPairs(ls), Pairs: ls, Kind: "gauge", Value: v})
}

// Registry is the unified metrics store: direct instruments (counters,
// gauges, histograms keyed by name+labels) plus registered collectors
// that publish component-internal counters at snapshot time. Snapshot
// output is deterministically sorted, so two same-seed runs render
// byte-identical snapshots. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	meta       map[string]Metric // instrument key -> name/labels/kind
	collectors []collectorEntry
}

type collectorEntry struct {
	id string
	fn func(*Gather)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		meta:     map[string]Metric{},
	}
}

func key(name string, labels []Label) (string, Metric) {
	ls := canonPairs(labels)
	cl := joinPairs(ls)
	return name + "|" + cl, Metric{Name: name, Labels: cl, Pairs: ls}
}

// Counter returns (creating on first use) the counter instrument for the
// name+labels pair.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k, m := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
		m.Kind = "counter"
		r.meta[k] = m
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	k, m := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
		m.Kind = "gauge"
		r.meta[k] = m
	}
	return g
}

// Histogram returns (creating on first use) the histogram for
// name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	k, m := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
		m.Kind = "histogram"
		r.meta[k] = m
	}
	return h
}

// RegisterCollector adds a snapshot-time publisher under a unique id;
// re-registering an id replaces the previous collector (peers rebuilt
// between experiment runs re-register cleanly). Collectors run in id
// order during Snapshot, without the registry lock held.
func (r *Registry) RegisterCollector(id string, fn func(*Gather)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.collectors {
		if c.id == id {
			r.collectors[i].fn = fn
			return
		}
	}
	r.collectors = append(r.collectors, collectorEntry{id: id, fn: fn})
}

// Snapshot renders every instrument and collector output as a sorted,
// deterministic metric list.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	var rows []Metric
	keys := make([]string, 0, len(r.meta))
	for k := range r.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := r.meta[k]
		switch m.Kind {
		case "counter":
			m.Value = r.counters[k].Value()
		case "gauge":
			m.Value = r.gauges[k].Value()
		case "histogram":
			count, sum, min, max := r.hists[k].Summary()
			m.Count, m.Value, m.Min, m.Max = count, sum, min, max
		}
		rows = append(rows, m)
	}
	collectors := make([]collectorEntry, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	sort.Slice(collectors, func(i, j int) bool { return collectors[i].id < collectors[j].id })
	g := &Gather{}
	for _, c := range collectors {
		c.fn(g)
	}
	rows = append(rows, g.rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].Labels < rows[j].Labels
	})
	return rows
}

// String renders the snapshot as aligned text, one metric per line,
// deterministically ordered.
func (r *Registry) String() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		name := m.Name
		if m.Labels != "" {
			name += "{" + m.Labels + "}"
		}
		if m.Kind == "histogram" {
			fmt.Fprintf(&b, "%-64s count=%d sum=%g min=%g max=%g\n", name, m.Count, m.Value, m.Min, m.Max)
		} else {
			fmt.Fprintf(&b, "%-64s %g\n", name, m.Value)
		}
	}
	return b.String()
}
