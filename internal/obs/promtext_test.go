package obs

import (
	"strings"
	"testing"
)

// The satellite contract: hostile label values and invalid-rune metric
// names must survive the text format round trip.
func TestPromTextEscapingRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		metric   string
		labels   []Label
		wantName string
	}{
		{name: "plain", metric: "exec_shed_total",
			labels: []Label{L("peer", "P1")}, wantName: "exec_shed_total"},
		{name: "quote in value", metric: "adm_shed_total",
			labels: []Label{L("tenant", `ten"ant`)}, wantName: "adm_shed_total"},
		{name: "backslash in value", metric: "adm_shed_total",
			labels: []Label{L("tenant", `a\b`)}, wantName: "adm_shed_total"},
		{name: "newline in value", metric: "adm_shed_total",
			labels: []Label{L("tenant", "a\nb")}, wantName: "adm_shed_total"},
		{name: "all three", metric: "adm_shed_total",
			labels: []Label{L("tenant", "x\\\"\n\"")}, wantName: "adm_shed_total"},
		{name: "invalid runes in name", metric: "exec.shed-total/π",
			labels: []Label{L("peer", "P1")}, wantName: "exec_shed_total__"},
		{name: "leading digit", metric: "9lives_total", wantName: "_9lives_total"},
		{name: "invalid runes in label name", metric: "x_total",
			labels: []Label{L("peer-id", "P1")}, wantName: "x_total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter(tc.metric, tc.labels...).Add(3)
			text := r.PromText()
			samples, err := ParsePromText(text)
			if err != nil {
				t.Fatalf("own output does not parse: %v\n%s", err, text)
			}
			if len(samples) != 1 {
				t.Fatalf("want 1 sample, got %d\n%s", len(samples), text)
			}
			s := samples[0]
			if s.Name != tc.wantName {
				t.Fatalf("name %q, want %q", s.Name, tc.wantName)
			}
			if s.Value != 3 {
				t.Fatalf("value %g, want 3", s.Value)
			}
			if len(s.Labels) != len(tc.labels) {
				t.Fatalf("label count %d, want %d", len(s.Labels), len(tc.labels))
			}
			for i, l := range tc.labels {
				if got := s.Labels[i].Value; got != l.Value {
					t.Fatalf("label %s round-tripped as %q, want %q", l.Key, got, l.Value)
				}
			}
		})
	}
}

func TestPromTextHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("peer_query_latency_ms", L("peer", "P0"))
	h.Observe(3)
	h.Observe(30)
	h.Observe(9000) // +Inf bucket
	text := r.PromText()
	if !strings.Contains(text, "# TYPE peer_query_latency_ms histogram") {
		t.Fatalf("missing TYPE header:\n%s", text)
	}
	if !strings.Contains(text, `peer_query_latency_ms_bucket{peer="P0",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, `peer_query_latency_ms_count{peer="P0"} 3`) {
		t.Fatalf("missing _count:\n%s", text)
	}
	samples, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("histogram exposition does not parse: %v", err)
	}
	// 13 buckets + sum + count
	if len(samples) != bucketSlots+2 {
		t.Fatalf("want %d samples, got %d", bucketSlots+2, len(samples))
	}
	// Bucket counts must be cumulative and end at the total.
	var last float64 = -1
	for _, s := range samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			if s.Value < last {
				t.Fatalf("bucket counts not cumulative:\n%s", text)
			}
			last = s.Value
		}
	}
	if last != 3 {
		t.Fatalf("final bucket %g, want 3", last)
	}
}

func TestPromTextCollectorRows(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector("x", func(g *Gather) {
		g.Count("exec_shed_total", 7, L("peer", "P1"))
		g.Gauge("adm_occupancy", 2, L("peer", "P1"))
	})
	samples, err := ParsePromText(r.PromText())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name] = s.Value
	}
	if found["exec_shed_total"] != 7 || found["adm_occupancy"] != 2 {
		t.Fatalf("collector rows missing from exposition: %v", found)
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no value",
		`x{tenant=unquoted} 1`,
		`x{tenant="open} 1`,
		`x{tenant="a\q"} 1`,
		`9bad{} x`,
		`x{} notanumber`,
	} {
		if _, err := ParsePromText(bad); err == nil {
			t.Fatalf("parser accepted %q", bad)
		}
	}
}
