package obs

import (
	"bytes"
	"encoding/json"
	"sort"
)

// ExportSpan is one rendered span: the JSONL line format. Start times
// are assigned at export, not at run time: a span starts at its
// parent's cursor, occupies self time, then its children follow
// sequentially in creation order. The rendered timeline is therefore a
// pure function of the span tree — concurrency in the live run cannot
// perturb it, which is what makes same-seed traces byte-identical.
type ExportSpan struct {
	Trace   string            `json:"trace"`
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Kind    string            `json:"kind"`
	Name    string            `json:"name"`
	Peer    string            `json:"peer,omitempty"`
	StartMS float64           `json:"startMs"`
	DurMS   float64           `json:"durMs"`
	SelfMS  float64           `json:"selfMs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Layout renders the trace as a depth-first span list with sequential
// start times (root at 0).
func (tr *Trace) Layout() []ExportSpan {
	if tr == nil || tr.root == nil {
		return nil
	}
	var out []ExportSpan
	layoutSpan(tr.ID, tr.root, 0, &out)
	return out
}

func layoutSpan(traceID string, s *Span, start float64, out *[]ExportSpan) float64 {
	total := s.TotalMS()
	es := ExportSpan{
		Trace:   traceID,
		ID:      s.path,
		Kind:    s.kind,
		Name:    s.name,
		Peer:    s.peer,
		StartMS: start,
		DurMS:   total,
		SelfMS:  s.SelfMS(),
	}
	if s.parent != nil {
		es.Parent = s.parent.path
	}
	attrs := s.Attrs()
	if len(attrs) > 0 {
		es.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			es.Attrs[a.Key] = a.Value
		}
	}
	if !s.Ended() {
		if es.Attrs == nil {
			es.Attrs = map[string]string{}
		}
		es.Attrs["unclosed"] = "true"
	}
	*out = append(*out, es)
	cur := start + s.SelfMS()
	for _, c := range s.Children() {
		cur = layoutSpan(traceID, c, cur, out)
	}
	return start + total
}

// JSONL renders every trace as line-delimited JSON, one span per line,
// traces in start order, spans depth-first. Deterministic: encoding/json
// marshals map keys sorted, span order is creation order, and all times
// are logical.
func (t *Tracer) JSONL() []byte {
	var buf bytes.Buffer
	for _, tr := range t.Traces() {
		for _, es := range tr.Layout() {
			b, err := json.Marshal(es)
			if err != nil {
				continue
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// traceEvent is one Chrome trace_event entry ("X" = complete event).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceEventJSON renders every trace in Chrome trace_event format,
// loadable in chrome://tracing or Perfetto. Each peer becomes a thread
// (tid) under one process; logical milliseconds map to trace
// microseconds × 1000 so sub-ms charges stay visible.
func (t *Tracer) TraceEventJSON() []byte {
	traces := t.Traces()
	peerSet := map[string]bool{}
	for _, tr := range traces {
		for _, es := range tr.Layout() {
			if es.Peer != "" {
				peerSet[es.Peer] = true
			}
		}
	}
	peers := make([]string, 0, len(peerSet))
	for p := range peerSet {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	tid := map[string]int{}
	for i, p := range peers {
		tid[p] = i + 1
	}

	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for _, p := range peers {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid[p],
			Args: map[string]string{"name": "peer " + p},
		})
	}
	for _, tr := range traces {
		for _, es := range tr.Layout() {
			args := map[string]string{"id": es.ID, "selfMs": trimFloat(es.SelfMS)}
			for k, v := range es.Attrs {
				args[k] = v
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: es.Name,
				Cat:  es.Kind,
				Ph:   "X",
				TS:   es.StartMS * 1000,
				Dur:  es.DurMS * 1000,
				PID:  1,
				TID:  tid[es.Peer],
				Args: args,
			})
		}
	}
	b, err := json.Marshal(tf)
	if err != nil {
		return []byte("{}")
	}
	return b
}

func trimFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
