package obs

import (
	"math"
	"testing"
)

func TestBucketSlotsMatchesBounds(t *testing.T) {
	if bucketSlots != len(DefaultBuckets)+1 {
		t.Fatalf("bucketSlots=%d, want len(DefaultBuckets)+1=%d", bucketSlots, len(DefaultBuckets)+1)
	}
}

// The satellite contract: every quantile edge case the SLO evaluator can
// hit must return a defined value — never NaN, never a panic.
func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := &Histogram{}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if v := h.Quantile(q); v != 0 {
				t.Fatalf("empty histogram Quantile(%g)=%g, want 0", q, v)
			}
		}
	})
	t.Run("single observation", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(37)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			v := h.Quantile(q)
			if math.IsNaN(v) || v != 37 {
				t.Fatalf("single-obs Quantile(%g)=%g, want 37", q, v)
			}
		}
	})
	t.Run("all in one bucket", func(t *testing.T) {
		h := &Histogram{}
		for i := 0; i < 100; i++ {
			h.Observe(42) // bucket (25,50]
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			v := h.Quantile(q)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("all-in-one-bucket Quantile(%g)=%g", q, v)
			}
			if v != 42 {
				t.Fatalf("all-in-one-bucket Quantile(%g)=%g, want the clamp to 42", q, v)
			}
		}
	})
	t.Run("overflow bucket", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(9000)
		h.Observe(11000)
		v := h.Quantile(0.99)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 9000 || v > 11000 {
			t.Fatalf("overflow-bucket Quantile(0.99)=%g, want within [9000,11000]", v)
		}
	})
	t.Run("out of range q", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(5)
		h.Observe(10)
		if v := h.Quantile(-1); math.IsNaN(v) || v < 5 || v > 10 {
			t.Fatalf("Quantile(-1)=%g", v)
		}
		if v := h.Quantile(2); v != 10 {
			t.Fatalf("Quantile(2)=%g, want max", v)
		}
	})
	t.Run("monotone", func(t *testing.T) {
		h := &Histogram{}
		for _, v := range []float64{0.5, 2, 4, 8, 20, 40, 80, 200, 400, 900} {
			h.Observe(v)
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("quantiles not monotone: Quantile(%g)=%g < %g", q, v, prev)
			}
			prev = v
		}
	})
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := &Histogram{}
	h.Observe(0.5) // bucket 0
	h.Observe(3)   // bucket 2
	h.Observe(3)
	h.Observe(6000) // overflow
	b := h.Buckets()
	if len(b) != bucketSlots {
		t.Fatalf("len(Buckets())=%d", len(b))
	}
	if b[0] != 1 || b[1] != 1 || b[2] != 3 || b[len(b)-1] != 4 {
		t.Fatalf("cumulative buckets wrong: %v", b)
	}
	count, _, _, _ := h.Summary()
	if b[len(b)-1] != count {
		t.Fatal("+Inf bucket must equal total count")
	}
}
