package obs

import (
	"encoding/json"
	"strconv"
	"sync"
)

// RecorderConfig tunes the flight recorder's ring and anomaly triggers.
// The zero value is unusable; call DefaultRecorderConfig for the tuned
// defaults and override fields as needed.
type RecorderConfig struct {
	// RingSize bounds the recent-event ring buffer.
	RingSize int `json:"ringSize"`
	// MaxDumps bounds the retained post-mortem bundles (oldest evicted).
	MaxDumps int `json:"maxDumps"`
	// SlowFactor: a query-done event whose durMs exceeds SlowFactor × the
	// running mean duration (after MinSamples priming queries) trips a
	// "slow-query" dump.
	SlowFactor float64 `json:"slowFactor"`
	// MinSamples is the priming count before the slow-query trigger arms.
	MinSamples int `json:"minSamples"`
	// ShedBurst / ShedWindowMS: ShedBurst shed events within a logical
	// window of ShedWindowMS trip a "shed-burst" dump.
	ShedBurst    int     `json:"shedBurst"`
	ShedWindowMS float64 `json:"shedWindowMS"`
	// MigrateBurst / MigrateWindowMS: same shape for plan migrations
	// (a "migration-storm" dump).
	MigrateBurst    int     `json:"migrateBurst"`
	MigrateWindowMS float64 `json:"migrateWindowMS"`
}

// DefaultRecorderConfig returns the tuned trigger thresholds.
func DefaultRecorderConfig() RecorderConfig {
	return RecorderConfig{
		RingSize:     256,
		MaxDumps:     8,
		SlowFactor:   3,
		MinSamples:   5,
		ShedBurst:    3,
		ShedWindowMS: 1000,
		MigrateBurst: 3, MigrateWindowMS: 1000,
	}
}

// Dump is one frozen post-mortem bundle: the trigger, the event ring at
// freeze time, and whatever query-scoped context (span subtree, critical
// path, ledger, admission state) the owning peer's Context callback
// could assemble for the triggering trace.
type Dump struct {
	// Reason names the trigger: "slow-query", "shed-burst",
	// "migration-storm", "condemn", or an SLO rule name.
	Reason string `json:"reason"`
	// TMS is the logical freeze time.
	TMS float64 `json:"tms"`
	// Peer is the recorder's peer.
	Peer string `json:"peer"`
	// Trace is the triggering query's trace ID ("" when the trigger is
	// not query-scoped, e.g. a condemn observed outside any query).
	Trace string `json:"trace,omitempty"`
	// Events is the frozen ring, oldest first, canonically ordered.
	Events []Event `json:"events"`
	// Context is the merged query-scoped bundle (spans, critical path,
	// ledger, admission occupancy) keyed by section name.
	Context map[string]any `json:"context,omitempty"`
}

// FlightRecorder keeps a bounded ring of one peer's recent events and
// freezes a post-mortem Dump when an anomaly trigger fires. Register its
// Observe method as an EventLog sink; it filters to its own peer's
// events (plus peer-less SLO alerts) internally. All trigger state is
// driven by logical timestamps carried on the events themselves, so
// trigger decisions are deterministic.
type FlightRecorder struct {
	mu   sync.Mutex
	peer string
	cfg  RecorderConfig

	ring  []Event // bounded, oldest first
	dumps []*Dump

	// slow-query baseline
	durCount int
	durSum   float64
	// burst windows: logical timestamps of recent shed / migrate events
	sheds    []float64
	migrates []float64

	// Context assembles the query-scoped post-mortem sections for a
	// trace ID at freeze time. Set once at wiring, before traffic.
	Context func(trace string) map[string]any
}

// PeerID returns the recorder's peer (safe on nil).
func (fr *FlightRecorder) PeerID() string {
	if fr == nil {
		return ""
	}
	return fr.peer
}

// NewFlightRecorder builds a recorder for one peer.
func NewFlightRecorder(peer string, cfg RecorderConfig) *FlightRecorder {
	if cfg.RingSize <= 0 {
		cfg = DefaultRecorderConfig()
	}
	return &FlightRecorder{peer: peer, cfg: cfg}
}

// Observe is the EventLog sink: records the event if it belongs to this
// recorder's peer and evaluates the anomaly triggers. Safe on nil.
func (fr *FlightRecorder) Observe(ev Event) {
	if fr == nil || ev.Peer != fr.peer {
		return
	}
	var dump *Dump
	fr.mu.Lock()
	fr.ring = append(fr.ring, ev)
	if len(fr.ring) > fr.cfg.RingSize {
		fr.ring = fr.ring[len(fr.ring)-fr.cfg.RingSize:]
	}
	switch {
	case ev.Component == "health" && ev.Kind == "condemn":
		dump = fr.freezeLocked("condemn", ev)
	case ev.Component == "exec" && ev.Kind == "shed":
		fr.sheds = trimWindow(append(fr.sheds, ev.TMS), ev.TMS-fr.cfg.ShedWindowMS)
		if len(fr.sheds) >= fr.cfg.ShedBurst {
			fr.sheds = nil
			dump = fr.freezeLocked("shed-burst", ev)
		}
	case ev.Component == "exec" && ev.Kind == "migrate":
		fr.migrates = trimWindow(append(fr.migrates, ev.TMS), ev.TMS-fr.cfg.MigrateWindowMS)
		if len(fr.migrates) >= fr.cfg.MigrateBurst {
			fr.migrates = nil
			dump = fr.freezeLocked("migration-storm", ev)
		}
	case ev.Component == "peer" && ev.Kind == "query-done":
		if dur, ok := parseMS(ev.Attrs["durMs"]); ok {
			primed := fr.durCount >= fr.cfg.MinSamples
			mean := 0.0
			if fr.durCount > 0 {
				mean = fr.durSum / float64(fr.durCount)
			}
			if primed && mean > 0 && dur > mean*fr.cfg.SlowFactor {
				dump = fr.freezeLocked("slow-query", ev)
			}
			fr.durCount++
			fr.durSum += dur
		}
	}
	fr.mu.Unlock()
	fr.attachContext(dump)
}

// TriggerDump freezes a bundle on demand — the SLO evaluator's alert
// hook. Safe on nil.
func (fr *FlightRecorder) TriggerDump(reason, trace string, tms float64) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	dump := fr.freezeLocked(reason, Event{TMS: tms, Trace: trace})
	fr.mu.Unlock()
	fr.attachContext(dump)
}

// freezeLocked captures the ring into a new Dump. Dumps are stored by
// pointer so the caller can attach context after releasing the mutex
// (the Context callback re-enters the trace layer and must not run
// under the recorder lock) without the slice trim invalidating it.
func (fr *FlightRecorder) freezeLocked(reason string, ev Event) *Dump {
	d := &Dump{Reason: reason, TMS: ev.TMS, Peer: fr.peer, Trace: ev.Trace,
		Events: CanonicalEvents(append([]Event(nil), fr.ring...))}
	fr.dumps = append(fr.dumps, d)
	if len(fr.dumps) > fr.cfg.MaxDumps {
		fr.dumps = fr.dumps[len(fr.dumps)-fr.cfg.MaxDumps:]
	}
	return d
}

// attachContext fills the dump's query-scoped sections outside the lock.
func (fr *FlightRecorder) attachContext(d *Dump) {
	if d == nil || fr.Context == nil {
		return
	}
	ctx := fr.Context(d.Trace)
	fr.mu.Lock()
	d.Context = ctx
	fr.mu.Unlock()
}

// Dumps returns the retained post-mortem bundles, oldest first.
func (fr *FlightRecorder) Dumps() []Dump {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Dump, len(fr.dumps))
	for i, d := range fr.dumps {
		out[i] = *d
	}
	return out
}

// DumpsJSON renders the bundles as indented JSON (the CI artifact).
func (fr *FlightRecorder) DumpsJSON() []byte {
	b, err := json.MarshalIndent(fr.Dumps(), "", "  ")
	if err != nil {
		return []byte("[]")
	}
	return append(b, '\n')
}

// trimWindow drops timestamps at or before the cutoff (ascending input).
func trimWindow(ts []float64, cutoff float64) []float64 {
	i := 0
	for i < len(ts) && ts[i] <= cutoff {
		i++
	}
	return ts[i:]
}

// parseMS parses a millisecond attribute rendered by trimFloat/fmt.
func parseMS(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}
