package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestEventLogCanonicalExport(t *testing.T) {
	clock := 0.0
	log := NewEventLog(func() float64 { return clock })
	clock = 10
	log.Emit("exec", "shed", "P1", "T1", Attr{Key: "reason", Value: "overload"})
	clock = 5
	log.Emit("admission", "reject", "P1", "T1")
	clock = 10
	log.Emit("channel", "dedupe", "P2", "T1")

	evs := log.Events()
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	if evs[0].TMS != 5 || evs[0].Component != "admission" {
		t.Fatalf("events not sorted by logical time: %+v", evs[0])
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("seq not assigned at export: %+v", ev)
		}
	}
}

// Emission interleaving must not perturb the exported bytes: the canonical
// sort makes the JSONL a function of the emitted multiset alone.
func TestEventLogOrderInsensitive(t *testing.T) {
	build := func(order []int) []byte {
		log := NewEventLog(func() float64 { return 42 })
		emits := []func(){
			func() { log.Emit("exec", "shed", "P1", "T1") },
			func() { log.Emit("exec", "migrate", "P2", "T1") },
			func() { log.Emit("health", "condemn", "P0", "", Attr{Key: "target", Value: "P3"}) },
		}
		for _, i := range order {
			emits[i]()
		}
		return log.JSONL()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if !bytes.Equal(a, b) {
		t.Fatalf("export depends on emission order:\n%s\nvs\n%s", a, b)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var log *EventLog
	log.Emit("exec", "shed", "P1", "T1") // must not panic
	log.AddSink(func(Event) {})
	if log.Len() != 0 || log.CountBy("exec", "shed") != 0 || log.Events() != nil {
		t.Fatal("nil log should be inert")
	}
	if len(log.JSONL()) != 0 {
		t.Fatal("nil log JSONL should be empty")
	}
}

func TestEventLogCountBy(t *testing.T) {
	log := NewEventLog(nil)
	log.Emit("exec", "shed", "P1", "")
	log.Emit("exec", "shed", "P2", "")
	log.Emit("exec", "migrate", "P1", "")
	if got := log.CountBy("exec", "shed"); got != 2 {
		t.Fatalf("CountBy(exec,shed)=%d, want 2", got)
	}
	if got := log.CountBy("exec", ""); got != 3 {
		t.Fatalf("CountBy(exec,*)=%d, want 3", got)
	}
}

func TestEventLogSinkFanout(t *testing.T) {
	log := NewEventLog(nil)
	var mu sync.Mutex
	var seen []string
	log.AddSink(func(ev Event) {
		mu.Lock()
		seen = append(seen, ev.Kind)
		mu.Unlock()
	})
	log.Emit("exec", "shed", "P1", "")
	log.Emit("exec", "migrate", "P1", "")
	if strings.Join(seen, ",") != "shed,migrate" {
		t.Fatalf("sink saw %v", seen)
	}
}

func TestSpanEmitEventCorrelation(t *testing.T) {
	tr := NewTracer().StartTrace("q", "P0")
	log := NewEventLog(func() float64 { return 7 })
	sp := tr.Root().Child(KindAttempt, "attempt-1")
	sp.EmitEvent(log, "exec", "replan", Attr{Key: "round", Value: "2"})
	sp.End()
	evs := log.Events()
	if len(evs) != 1 {
		t.Fatalf("want 1 event, got %d", len(evs))
	}
	ev := evs[0]
	if ev.Trace != tr.ID || ev.Peer != "P0" || ev.Attrs["span"] != "/q/attempt-1" {
		t.Fatalf("span correlation missing: %+v", ev)
	}
	// Nil span still reaches the log, uncorrelated.
	var nilSpan *Span
	nilSpan.EmitEvent(log, "exec", "replan")
	if log.Len() != 2 {
		t.Fatal("nil-span emit lost")
	}
}
