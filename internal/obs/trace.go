package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Span kinds — the taxonomy of query-execution phases (DESIGN.md §11).
const (
	KindQuery    = "query"         // root: one user query at the root peer
	KindRoute    = "route"         // query-pattern annotation (§2.2)
	KindPlan     = "plan"          // algebraic plan generation
	KindOptimize = "optimize"      // optimizer pass
	KindAttempt  = "attempt"       // one execution attempt (replan round)
	KindScan     = "scan"          // local pattern scan
	KindUnion    = "union"         // union node
	KindJoin     = "join"          // join node
	KindDispatch = "dispatch-leaf" // one remote subplan dispatch (a leaf of attribution)
	KindStream   = "stream"        // request + result-packet streaming for one dispatch try
	KindRetry    = "retry"         // a re-sent dispatch try (backoff + re-transfer)
	KindMigrate  = "migrate"       // surgical plan-change migration
	KindReplan   = "replan"        // full replan around obsolete peers
	KindHoleFill = "hole-fill"     // mid-flight hole filling under AllowPartial
	KindShed     = "shed"          // subplan converted to a completeness hole under overload
	KindRemote   = "remote"        // grafted remote-side execution subtree
)

// Tracer hands out traces. A nil *Tracer is valid and inert: StartTrace
// on nil returns a nil *Trace whose nil *Span methods are all no-ops, so
// the instrumented hot paths cost nothing when tracing is disabled.
type Tracer struct {
	mu     sync.Mutex
	nextID int
	traces []*Trace
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// StartTrace opens a new trace whose root span carries the given name
// and owning peer. Trace IDs are sequential per tracer (T1, T2, …) —
// deterministic because query admission is deterministic.
func (t *Tracer) StartTrace(name, peer string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	tr := &Trace{ID: fmt.Sprintf("T%d", t.nextID), Name: name}
	t.traces = append(t.traces, tr)
	t.mu.Unlock()
	tr.root = &Span{traceID: tr.ID, kind: KindQuery, name: name, peer: peer, path: "/" + name}
	return tr
}

// Traces returns the traces started so far, in start order.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.traces))
	copy(out, t.traces)
	return out
}

// Trace is one query's span tree.
type Trace struct {
	// ID is the tracer-scoped trace identifier (T1, T2, …).
	ID string
	// Name is the root span name.
	Name string
	root *Span
}

// Root returns the root span (nil on a nil trace).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Span is one phase of a query's execution. Spans carry no wall-clock
// timestamps: they accumulate explicit logical-millisecond charges
// (ChargeMS) from deterministic quantities — link transfer times,
// backoff budgets — and the export layer lays children out sequentially
// after the fact, so the rendered timeline is a function of the span
// tree alone and two same-seed runs serialize byte-identically.
//
// All methods are safe on a nil receiver (no-ops returning zero
// values), which is the entire disabled-tracing path: no allocation, no
// branches beyond the nil check.
type Span struct {
	traceID string
	parent  *Span
	kind    string
	name    string
	peer    string
	path    string // parent.path + "/" + name: the deterministic span ID

	mu       sync.Mutex
	selfMS   float64
	attrs    map[string]string
	children []*Span
	ended    bool
}

// Child opens a sub-span on the same peer. The child's path — its span
// ID — is parent path + "/" + name, so callers keep sibling names unique
// by construction (e.g. branch index prefixes) rather than relying on
// any counter shared across goroutines.
func (s *Span) Child(kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(kind, name, s.peer)
}

// ChildAt opens a sub-span attributed to another peer (dispatch leaves).
func (s *Span) ChildAt(kind, name, peer string) *Span {
	if s == nil {
		return nil
	}
	return s.child(kind, name, peer)
}

func (s *Span) child(kind, name, peer string) *Span {
	c := &Span{traceID: s.traceID, parent: s, kind: kind, name: name, peer: peer, path: s.path + "/" + name}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChargeMS adds logical milliseconds to the span's self time.
func (s *Span) ChargeMS(ms float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.selfMS += ms
	s.mu.Unlock()
}

// Annotate attaches a key/value attribute (last write wins).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End marks the span closed. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ended = true
	s.mu.Unlock()
}

// TraceID returns the owning trace's ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Peer returns the span's owning peer ("" on nil).
func (s *Span) Peer() string {
	if s == nil {
		return ""
	}
	return s.peer
}

// EmitEvent emits a trace-correlated event into the log, carrying the
// span's trace ID, peer, and path (as the "span" attribute). Safe on a
// nil span or nil log. Emitting on a span after End is a lint error
// (the obsspan analyzer flags it): an ended span's story is over, and
// post-End events would attach to a timeline the export layer has
// already laid out.
func (s *Span) EmitEvent(log *EventLog, component, kind string, attrs ...Attr) {
	if s == nil {
		log.Emit(component, kind, "", "", attrs...)
		return
	}
	withSpan := make([]Attr, 0, len(attrs)+1)
	withSpan = append(withSpan, attrs...)
	withSpan = append(withSpan, Attr{Key: "span", Value: s.path})
	log.Emit(component, kind, s.peer, s.traceID, withSpan...)
}

// Path returns the span's deterministic ID ("" on nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Kind returns the span kind ("" on nil).
func (s *Span) Kind() string {
	if s == nil {
		return ""
	}
	return s.kind
}

// SelfMS returns the accumulated self charge.
func (s *Span) SelfMS() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.selfMS
}

// TotalMS is self time plus the totals of all children.
func (s *Span) TotalMS() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	total := s.selfMS
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		total += c.TotalMS()
	}
	return total
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Attrs returns the attributes sorted by key.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Attr, 0, len(s.attrs))
	for k, v := range s.attrs {
		out = append(out, Attr{Key: k, Value: v})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Ended reports whether End was called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Attr is one span attribute.
type Attr struct {
	Key, Value string
}

// RemoteSpan opens a detached span on the executing peer of a shipped
// subplan. The trace ID and parent path arrive in the subplan request
// header; the resulting subtree is serialized with Record and grafted
// back into the root peer's trace by Graft, so remote execution appears
// in the root trace without the remote peer holding a Tracer.
func RemoteSpan(traceID, parentPath, peer string) *Span {
	if traceID == "" {
		return nil
	}
	return &Span{
		traceID: traceID,
		kind:    KindRemote,
		name:    "remote@" + peer,
		peer:    peer,
		path:    parentPath + "/remote@" + peer,
	}
}

// SpanRecord is the wire form of a span subtree — what a remote peer
// ships back inside a statistics-class packet (paper §2.4: channels
// carry statistics about the state of plan execution).
type SpanRecord struct {
	Kind     string            `json:"k"`
	Name     string            `json:"n"`
	Peer     string            `json:"p,omitempty"`
	SelfMS   float64           `json:"ms,omitempty"`
	Attrs    map[string]string `json:"a,omitempty"`
	Children []*SpanRecord     `json:"c,omitempty"`
}

// Record serializes the subtree rooted at s (nil on a nil span).
func (s *Span) Record() *SpanRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	rec := &SpanRecord{Kind: s.kind, Name: s.name, Peer: s.peer, SelfMS: s.selfMS}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			rec.Attrs[k] = v
		}
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		rec.Children = append(rec.Children, c.Record())
	}
	return rec
}

// Graft rebuilds a recorded subtree as a child of s, recomputing paths
// under s's path so grafted span IDs stay deterministic.
func (s *Span) Graft(rec *SpanRecord) {
	if s == nil || rec == nil {
		return
	}
	c := s.child(rec.Kind, rec.Name, rec.Peer)
	c.mu.Lock()
	c.selfMS = rec.SelfMS
	if len(rec.Attrs) > 0 {
		c.attrs = make(map[string]string, len(rec.Attrs))
		for k, v := range rec.Attrs {
			c.attrs[k] = v
		}
	}
	c.ended = true
	c.mu.Unlock()
	for _, kid := range rec.Children {
		c.Graft(kid)
	}
}
