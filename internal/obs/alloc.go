// Allocation accounting for the batched data plane. The perf claims in
// EXPERIMENTS.md are stated per row (allocs/row, bytes/row), so the
// harness needs cheap before/after snapshots of the Go allocator's
// cumulative counters. runtime.ReadMemStats is a stop-the-world read;
// callers sample once around a whole measured region, never per row.
package obs

import "runtime"

// AllocSample is a snapshot of the allocator's cumulative counters
// (or, via Delta, the difference between two snapshots).
type AllocSample struct {
	Allocs uint64 // heap objects allocated (runtime.MemStats.Mallocs)
	Bytes  uint64 // bytes allocated (runtime.MemStats.TotalAlloc)
}

// ReadAllocs snapshots the allocator counters. The counters are
// cumulative and monotonic, so two samples bracket a region exactly.
func ReadAllocs() AllocSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return AllocSample{Allocs: ms.Mallocs, Bytes: ms.TotalAlloc}
}

// Delta returns the allocations and bytes accumulated since prev.
func (s AllocSample) Delta(prev AllocSample) AllocSample {
	return AllocSample{Allocs: s.Allocs - prev.Allocs, Bytes: s.Bytes - prev.Bytes}
}

// PerOp divides the sample by an operation count, returning allocs/op
// and bytes/op as floats for reporting. A zero count yields zeros.
func (s AllocSample) PerOp(n int) (allocs, bytes float64) {
	if n <= 0 {
		return 0, 0
	}
	return float64(s.Allocs) / float64(n), float64(s.Bytes) / float64(n)
}
