package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SLORule is one service-level objective evaluated against the registry
// on the logical clock. Two kinds:
//
//   - "quantile": Quantile(Q) of the named histogram family (rows summed
//     across label sets) must stay at or below Threshold. The quantile is
//     cumulative over the run — the paper-style "p99 latency" objective.
//   - "ratio": the windowed burn rate of a bad/total counter pair. Each
//     Eval samples the counters; the rule looks back Window logical ms,
//     computes frac = Δbad/Δtotal over that window, and fires when
//     frac/Budget ≥ Burn (e.g. Budget 0.05, Burn 1 fires when more than
//     5% of the window's queries were bad).
type SLORule struct {
	// Name identifies the rule in alerts and /debug/slo.
	Name string `json:"name"`
	// Kind is "quantile" or "ratio".
	Kind string `json:"kind"`
	// Metric is the histogram family for "quantile" rules.
	Metric string `json:"metric,omitempty"`
	// Q is the quantile (e.g. 0.99) for "quantile" rules.
	Q float64 `json:"q,omitempty"`
	// Threshold is the quantile ceiling (logical ms) for "quantile" rules.
	Threshold float64 `json:"threshold,omitempty"`
	// Bad/Total name the counter families for "ratio" rules; rows are
	// summed across label sets (registry instruments and collector rows).
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`
	// Budget is the acceptable bad fraction for "ratio" rules.
	Budget float64 `json:"budget,omitempty"`
	// Burn is the firing multiple of Budget (default 1).
	Burn float64 `json:"burn,omitempty"`
	// WindowMS is the look-back window for "ratio" rules, logical ms.
	WindowMS float64 `json:"windowMS,omitempty"`
}

// Alert is one fired SLO violation.
type Alert struct {
	// Rule is the violated rule's name.
	Rule string `json:"rule"`
	// Kind mirrors the rule kind.
	Kind string `json:"kind"`
	// TMS is the logical evaluation time.
	TMS float64 `json:"tms"`
	// Value is the observed quantile (quantile rules) or windowed bad
	// fraction (ratio rules).
	Value float64 `json:"value"`
	// Threshold is the rule's ceiling: Threshold for quantile rules,
	// Budget×Burn for ratio rules.
	Threshold float64 `json:"threshold"`
	// Burn is Value/Threshold — how fast the error budget burns.
	Burn float64 `json:"burn"`
}

// DefaultSLORules returns the shipped objectives: p99 end-to-end latency,
// answer completeness, and admission shed fraction.
func DefaultSLORules() []SLORule {
	return []SLORule{
		{Name: "latency-p99", Kind: "quantile", Metric: "peer_query_latency_ms", Q: 0.99, Threshold: 200},
		{Name: "completeness", Kind: "ratio", Bad: "exec_partial_answers_total",
			Total: "peer_queries_total", Budget: 0.1, Burn: 1, WindowMS: 2000},
		{Name: "shed-fraction", Kind: "ratio", Bad: "adm_shed_total",
			Total: "adm_admitted_total", Budget: 0.05, Burn: 1, WindowMS: 2000},
	}
}

// sloSample is one (tms, bad, total) counter reading for a ratio rule.
type sloSample struct {
	tms        float64
	bad, total float64
}

// SLOEvaluator evaluates burn-rate rules against a registry on the
// logical clock. Call Eval at protocol-round boundaries (or any other
// deterministic cadence); it snapshots the registry, updates each ratio
// rule's sample window, and fires OnAlert for every violated rule. A
// rule re-fires on every violating Eval — deduplication is the
// consumer's concern (the experiment counts distinct rule names).
type SLOEvaluator struct {
	mu      sync.Mutex
	reg     *Registry
	clock   func() float64
	rules   []SLORule
	windows map[string][]sloSample
	alerts  []Alert

	// OnAlert, when set, runs for every fired alert outside the
	// evaluator's mutex — the hook that trips flight-recorder dumps and
	// emits ("slo", rule) events. Set once at wiring, before traffic.
	OnAlert func(Alert)
}

// NewSLOEvaluator builds an evaluator over the registry and logical
// clock. A nil rules slice installs DefaultSLORules.
func NewSLOEvaluator(reg *Registry, clock func() float64, rules []SLORule) *SLOEvaluator {
	if rules == nil {
		rules = DefaultSLORules()
	}
	return &SLOEvaluator{reg: reg, clock: clock, rules: rules,
		windows: map[string][]sloSample{}}
}

// Rules returns the installed rules.
func (e *SLOEvaluator) Rules() []SLORule {
	if e == nil {
		return nil
	}
	return append([]SLORule(nil), e.rules...)
}

// Eval evaluates every rule at the current logical time and returns the
// alerts fired by this pass (also retained; see Alerts). Safe on nil.
func (e *SLOEvaluator) Eval() []Alert {
	if e == nil || e.reg == nil {
		return nil
	}
	now := 0.0
	if e.clock != nil {
		now = e.clock()
	}
	snap := e.reg.Snapshot()
	sumCounter := func(name string) float64 {
		total := 0.0
		for _, m := range snap {
			if m.Name == name {
				total += m.Value
			}
		}
		return total
	}

	var fired []Alert
	e.mu.Lock()
	for _, rule := range e.rules {
		switch rule.Kind {
		case "quantile":
			// Sum-of-rows is meaningless for quantiles; find the family's
			// histograms directly and merge their buckets.
			v, ok := e.reg.quantileOf(rule.Metric, rule.Q)
			if !ok {
				continue
			}
			if v > rule.Threshold {
				fired = append(fired, Alert{Rule: rule.Name, Kind: rule.Kind, TMS: now,
					Value: v, Threshold: rule.Threshold, Burn: safeDiv(v, rule.Threshold)})
			}
		case "ratio":
			s := sloSample{tms: now, bad: sumCounter(rule.Bad), total: sumCounter(rule.Total)}
			win := append(e.windows[rule.Name], s)
			// Keep the newest sample at or before the window start as the
			// baseline, drop anything older.
			cut := 0
			for i := range win {
				if win[i].tms <= now-rule.WindowMS {
					cut = i
				}
			}
			win = win[cut:]
			e.windows[rule.Name] = win
			base := win[0]
			dBad, dTotal := s.bad-base.bad, s.total-base.total
			if dTotal <= 0 {
				continue
			}
			frac := dBad / dTotal
			ceiling := rule.Budget * burnOf(rule)
			if frac >= ceiling && ceiling > 0 {
				fired = append(fired, Alert{Rule: rule.Name, Kind: rule.Kind, TMS: now,
					Value: frac, Threshold: ceiling, Burn: safeDiv(frac, ceiling)})
			}
		}
	}
	e.alerts = append(e.alerts, fired...)
	cb := e.OnAlert
	e.mu.Unlock()
	if cb != nil {
		for _, a := range fired {
			cb(a)
		}
	}
	return fired
}

// Alerts returns every alert fired so far, in firing order.
func (e *SLOEvaluator) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.alerts...)
}

// String renders the rules and current alert count for /debug/slo.
func (e *SLOEvaluator) String() string {
	if e == nil {
		return "slo: disabled\n"
	}
	var b strings.Builder
	for _, r := range e.rules {
		switch r.Kind {
		case "quantile":
			fmt.Fprintf(&b, "rule %-16s p%g(%s) <= %gms\n", r.Name, r.Q*100, r.Metric, r.Threshold)
		case "ratio":
			fmt.Fprintf(&b, "rule %-16s %s/%s budget %g burn %g window %gms\n",
				r.Name, r.Bad, r.Total, r.Budget, burnOf(r), r.WindowMS)
		}
	}
	fmt.Fprintf(&b, "alerts fired: %d\n", len(e.Alerts()))
	return b.String()
}

func burnOf(r SLORule) float64 {
	if r.Burn <= 0 {
		return 1
	}
	return r.Burn
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// quantileOf merges every histogram row of the named family and returns
// the q-quantile over the merged buckets (ok=false when the family has
// no observations yet).
func (r *Registry) quantileOf(name string, q float64) (float64, bool) {
	r.mu.Lock()
	// Collect matching rows by sorted key: bucket merging is commutative,
	// but a fixed order keeps every walk of the registry deterministic.
	var keys []string
	for k, m := range r.meta {
		if m.Kind == "histogram" && m.Name == name {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	hists := make([]*Histogram, 0, len(keys))
	for _, k := range keys {
		hists = append(hists, r.hists[k])
	}
	r.mu.Unlock()
	switch len(hists) {
	case 0:
		return 0, false
	case 1:
		count, _, _, _ := hists[0].Summary()
		if count == 0 {
			return 0, false
		}
		return hists[0].Quantile(q), true
	}
	merged := &Histogram{}
	for _, h := range hists {
		h.mu.Lock()
		if h.count > 0 {
			if merged.count == 0 || h.min < merged.min {
				merged.min = h.min
			}
			if merged.count == 0 || h.max > merged.max {
				merged.max = h.max
			}
			merged.count += h.count
			merged.sum += h.sum
			for i, c := range h.buckets {
				merged.buckets[i] += c
			}
		}
		h.mu.Unlock()
	}
	if merged.count == 0 {
		return 0, false
	}
	return merged.Quantile(q), true
}
