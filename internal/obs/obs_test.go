package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// buildTrace assembles a small fixed span tree.
func buildTrace(t *Tracer) *Trace {
	tr := t.StartTrace("Q", "P1")
	root := tr.Root()
	route := root.Child(KindRoute, "route")
	route.ChargeMS(2)
	route.Annotate("peers", "3")
	route.End()
	leaf := root.ChildAt(KindDispatch, "b00.q1@P2", "P2")
	stream := leaf.Child(KindStream, "stream")
	stream.ChargeMS(5)
	stream.End()
	leaf.Graft(&SpanRecord{Kind: KindRemote, Name: "remote@P2", Peer: "P2", SelfMS: 1,
		Children: []*SpanRecord{{Kind: KindScan, Name: "scan", Peer: "P2", SelfMS: 0.5}}})
	leaf.End()
	root.End()
	return tr
}

func TestLayoutSequentialAndDeterministic(t *testing.T) {
	t1, t2 := NewTracer(), NewTracer()
	buildTrace(t1)
	buildTrace(t2)
	a, b := t1.JSONL(), t2.JSONL()
	if !bytes.Equal(a, b) {
		t.Fatalf("same tree produced different JSONL:\n%s\nvs\n%s", a, b)
	}
	spans := t1.Traces()[0].Layout()
	if spans[0].ID != "/Q" || spans[0].StartMS != 0 {
		t.Fatalf("root misplaced: %+v", spans[0])
	}
	// Root total = sum of all self charges.
	var self float64
	for _, es := range spans {
		self += es.SelfMS
	}
	if spans[0].DurMS != self {
		t.Fatalf("root dur %v != self sum %v", spans[0].DurMS, self)
	}
	// Children are laid out sequentially: each starts at or after the
	// previous sibling's end.
	if spans[2].StartMS != spans[1].StartMS+spans[1].DurMS {
		t.Fatalf("siblings not sequential: %+v then %+v", spans[1], spans[2])
	}
}

func TestTraceEventJSONValid(t *testing.T) {
	tc := NewTracer()
	buildTrace(tc)
	blob := tc.TraceEventJSON()
	if !json.Valid(blob) {
		t.Fatalf("trace_event export is not valid JSON")
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
}

func TestAnalyzeInvariants(t *testing.T) {
	tc := NewTracer()
	tr := buildTrace(tc)
	a := Analyze(tr, 2)
	if a == nil {
		t.Fatal("nil attribution")
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if len(a.Leaves) != 1 || a.Leaves[0].Peer != "P2" {
		t.Fatalf("leaves: %+v", a.Leaves)
	}
	if a.Leaves[0].TotalMS != 6.5 {
		t.Fatalf("leaf total = %v, want 6.5", a.Leaves[0].TotalMS)
	}
	if a.EndToEndMS != 8.5 {
		t.Fatalf("end-to-end = %v, want 8.5", a.EndToEndMS)
	}
}

func TestModeledQueue(t *testing.T) {
	tc := NewTracer()
	tr := tc.StartTrace("Q", "P1")
	root := tr.Root()
	for i, ms := range []float64{6, 4, 3} {
		leaf := root.ChildAt(KindDispatch, fmt.Sprintf("b%02d", i), "P2")
		leaf.ChargeMS(ms)
		leaf.End()
	}
	root.End()
	a := Analyze(tr, 2)
	// Token schedule with k=2: [6] on t0, [4] on t1, [3] waits for t1
	// freeing at 4 and ends at 7; makespan = 7.
	if a.ModeledMakespanMS != 7 {
		t.Fatalf("makespan = %v, want 7", a.ModeledMakespanMS)
	}
	if a.Leaves[2].QueueMS != 4 {
		t.Fatalf("third leaf queue = %v, want 4", a.Leaves[2].QueueMS)
	}
	// Unbounded: no queueing, makespan = longest leaf.
	a = Analyze(tr, 0)
	if a.ModeledMakespanMS != 6 || a.Leaves[2].QueueMS != 0 {
		t.Fatalf("unbounded: makespan=%v queue=%v", a.ModeledMakespanMS, a.Leaves[2].QueueMS)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var tr *Tracer
	trace := tr.StartTrace("q", "P1")
	if trace != nil {
		t.Fatal("nil tracer must return nil trace")
	}
	sp := trace.Root()
	sp.ChargeMS(1)
	sp.Annotate("k", "v")
	child := sp.Child(KindScan, "x")
	child.End()
	if sp.TotalMS() != 0 || child != nil {
		t.Fatal("nil span must be inert")
	}
	if RemoteSpan("", "/q", "P2") != nil {
		t.Fatal("empty trace ID must yield nil remote span")
	}
}

// TestDisabledPathAllocations: the hot path with tracing disabled (nil
// spans) must not allocate — CLAIM-TRACE's "0 allocations when
// disabled".
func TestDisabledPathAllocations(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(100, func() {
		c := sp.Child(KindStream, "stream")
		c.ChargeMS(1.5)
		c.Annotate("rows", "3")
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v times per op, want 0", allocs)
	}
}

// TestRegistrySnapshotConcurrency hammers the registry from many
// goroutines while snapshotting — run under -race, and the final
// snapshot must be deterministic and complete.
func TestRegistrySnapshotConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total", L("worker", fmt.Sprintf("w%d", w%4)))
			h := r.Histogram("latency_ms")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i))
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total float64
	for _, m := range snap {
		if m.Name == "ops_total" {
			total += m.Value
		}
	}
	if total != workers*perWorker {
		t.Fatalf("ops_total sum = %v, want %d", total, workers*perWorker)
	}
	if s1, s2 := r.String(), r.String(); s1 != s2 {
		t.Fatalf("snapshot rendering unstable:\n%s\nvs\n%s", s1, s2)
	}
}

func TestRegistryCollectors(t *testing.T) {
	r := NewRegistry()
	r.Counter("direct_total").Add(2)
	r.RegisterCollector("b/second", func(g *Gather) {
		g.Count("collected_total", 7, L("peer", "P2"))
	})
	r.RegisterCollector("a/first", func(g *Gather) {
		g.Gauge("depth", 3, L("peer", "P1"))
	})
	// Re-registering an id replaces the collector.
	r.RegisterCollector("b/second", func(g *Gather) {
		g.Count("collected_total", 9, L("peer", "P2"))
	})
	snap := r.Snapshot()
	want := []string{"collected_total|peer=P2", "depth|peer=P1", "direct_total|"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot rows = %d, want %d: %+v", len(snap), len(want), snap)
	}
	for i, m := range snap {
		if m.Name+"|"+m.Labels != want[i] {
			t.Fatalf("row %d = %s|%s, want %s", i, m.Name, m.Labels, want[i])
		}
	}
	if snap[0].Value != 9 {
		t.Fatalf("replaced collector not used: %v", snap[0].Value)
	}
}

func TestUnclosedSpanFlagged(t *testing.T) {
	tc := NewTracer()
	tr := tc.StartTrace("Q", "P1")
	tr.Root().Child(KindScan, "left-open")
	tr.Root().End()
	var found bool
	for _, es := range tr.Layout() {
		if es.ID == "/Q/left-open" && es.Attrs["unclosed"] == "true" {
			found = true
		}
	}
	if !found {
		t.Fatal("unclosed span not flagged in export")
	}
}
