package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
)

// A builds an event attribute (the Emit counterpart of L for labels).
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one entry of the unified operations log: a logical-clock
// timestamp, the emitting component and peer, the event kind, the
// correlating trace ID (empty for events outside any query, e.g.
// membership rounds), and free-form string attributes. The JSON
// rendering is canonical — encoding/json sorts map keys — so an event's
// bytes are a pure function of its content.
type Event struct {
	// TMS is the logical-clock timestamp in simulated milliseconds.
	TMS float64 `json:"tms"`
	// Seq is the export-time sequence number within the log: assigned by
	// Events()/JSONL() after the canonical sort, never at emission, so
	// concurrent emission order cannot leak into the output (the same
	// trick export.go uses for span timelines).
	Seq int `json:"seq"`
	// Trace correlates the event with a query's span tree ("" if none).
	Trace string `json:"trace,omitempty"`
	// Peer is the emitting peer.
	Peer string `json:"peer,omitempty"`
	// Component is the emitting subsystem: "exec", "admission",
	// "channel", "health", "membership", "peer", "slo".
	Component string `json:"component"`
	// Kind is the event type within the component (e.g. "shed",
	// "migrate", "condemn", "suspect", "query-done").
	Kind string `json:"kind"`
	// Attrs carries event-specific detail (reason, tenant, target peer,
	// durations). Rendered sorted by key.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// contentKey is the event's canonical sort key after TMS: the attribute-
// inclusive JSON rendering with Seq zeroed. Two events with equal keys
// are byte-interchangeable, so any tie order yields identical exports.
func (e Event) contentKey() string {
	e.Seq = 0
	b, err := json.Marshal(e)
	if err != nil {
		// Marshal of map[string]string/strings/floats cannot fail; keep a
		// defined fallback anyway rather than panicking in an exporter.
		return e.Component + "|" + e.Kind
	}
	return string(b)
}

// EventLog is the unified structured event stream every subsystem emits
// into. It is deterministic the same way the tracer is: emission stamps
// the logical clock under a mutex, but ordering is assigned at export —
// events are canonically sorted by (TMS, content) and numbered then, so
// goroutine interleaving during a query cannot perturb the exported
// bytes as long as the emitted multiset is deterministic.
//
// A nil *EventLog is valid and inert (Emit is a no-op), which is the
// entire plane-off ablation path: components hold a possibly-nil pointer
// and pay one branch when the plane is disabled.
type EventLog struct {
	mu     sync.Mutex
	clock  func() float64
	events []Event
	sinks  []func(Event)
}

// NewEventLog builds a log stamped by the given logical clock (typically
// network.Network.NowMS). A nil clock stamps every event at 0.
func NewEventLog(clock func() float64) *EventLog {
	return &EventLog{clock: clock}
}

// Emit appends one event and fans it out to the registered sinks. The
// sinks run outside the log's mutex (the flight recorder takes its own
// lock in its sink), in registration order.
func (l *EventLog) Emit(component, kind, peer, trace string, attrs ...Attr) {
	if l == nil {
		return
	}
	ev := Event{Component: component, Kind: kind, Peer: peer, Trace: trace}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	// The clock is a caller-supplied callback: read it before taking the
	// lock so a clock that consults the log cannot deadlock (l.clock is
	// set once at construction, so the unlocked read is safe). Canonical
	// export sorts by (TMS, content), so cross-goroutine append order
	// never reaches the exported stream.
	if l.clock != nil {
		ev.TMS = l.clock()
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	sinks := l.sinks
	l.mu.Unlock()
	for _, fn := range sinks {
		fn(ev)
	}
}

// AddSink registers a live subscriber called on every subsequent Emit,
// outside the log's mutex. Sinks must be registered before traffic
// starts; there is no removal.
func (l *EventLog) AddSink(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	// Copy-on-write so Emit can read the slice outside the lock.
	sinks := make([]func(Event), len(l.sinks), len(l.sinks)+1)
	copy(sinks, l.sinks)
	l.sinks = append(sinks, fn)
	l.mu.Unlock()
}

// Len returns the number of events emitted so far.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// CountBy returns how many events match the component and kind ("" is a
// wildcard) — the reconciliation primitive: every shed/migrate/condemn
// counter in the registry must equal its event count.
func (l *EventLog) CountBy(component, kind string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if (component == "" || ev.Component == component) && (kind == "" || ev.Kind == kind) {
			n++
		}
	}
	return n
}

// Events returns the canonically ordered log: sorted by logical
// timestamp, ties broken by content, Seq assigned 1..n after the sort.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	evs := make([]Event, len(l.events))
	copy(evs, l.events)
	l.mu.Unlock()
	return CanonicalEvents(evs)
}

// CanonicalEvents sorts events by (TMS, content) and assigns Seq 1..n —
// the canonical order shared by the log export and flight-recorder
// dumps. Identical-content ties are byte-interchangeable, so any
// runtime emission interleaving renders the same bytes.
func CanonicalEvents(evs []Event) []Event {
	type keyed struct {
		ev  Event
		key string
	}
	rows := make([]keyed, len(evs))
	for i, ev := range evs {
		rows[i] = keyed{ev: ev, key: ev.contentKey()}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].ev.TMS != rows[j].ev.TMS {
			return rows[i].ev.TMS < rows[j].ev.TMS
		}
		return rows[i].key < rows[j].key
	})
	out := make([]Event, len(rows))
	for i, r := range rows {
		out[i] = r.ev
		out[i].Seq = i + 1
	}
	return out
}

// JSONL renders the canonical log, one event per line — the replayable
// narrative artifact. Byte-identical across same-seed reruns.
func (l *EventLog) JSONL() []byte {
	var b strings.Builder
	for _, ev := range l.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Reset drops all events (sinks stay registered).
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = nil
	l.mu.Unlock()
}
