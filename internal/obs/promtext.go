package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4) and provides a minimal parser for it — enough
// for the round-trip escaping tests, the endpoint smoke test, and the
// CLAIM-OBSERVE scrape check, without importing any client library.

// escapeMetricName maps an arbitrary instrument name onto the legal
// Prometheus metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid
// runes become '_'; a leading digit gets a '_' prefix; an empty name
// becomes "_". Registry names are already snake_case, so this is a
// guard for collector-provided names, not a renaming pass.
func escapeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelName maps a label name onto [a-zA-Z_][a-zA-Z0-9_]* (no
// colons in label names, per the exposition format).
func escapeLabelName(name string) string {
	s := escapeMetricName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double-quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promNumber renders a sample value the way Prometheus expects.
func promNumber(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a label set (already canonically sorted) as
// {k="v",...}; extra pairs are appended after the set (the histogram
// renderer passes le= through it). Empty input renders as "".
func renderLabels(pairs []Label, extra ...Label) string {
	all := make([]Label, 0, len(pairs)+len(extra))
	all = append(all, pairs...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = escapeLabelName(l.Key) + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// histRow is one histogram's exposition payload, captured under the
// registry lock so buckets and summary agree.
type histRow struct {
	pairs   []Label
	count   int
	sum     float64
	buckets []int
}

// PromText renders the full registry — direct instruments and collector
// rows — in the Prometheus text exposition format. Families are emitted
// in sorted-name order with one "# TYPE" header each; histograms expand
// into cumulative _bucket{le=...} series plus _sum and _count. Output is
// deterministic: same registry state, same bytes.
func (r *Registry) PromText() string {
	type family struct {
		kind  string
		lines []string
	}
	families := map[string]*family{}
	add := func(name, kind, line string) {
		f, ok := families[name]
		if !ok {
			f = &family{kind: kind}
			families[name] = f
		}
		f.lines = append(f.lines, line)
	}

	r.mu.Lock()
	keys := make([]string, 0, len(r.meta))
	for k := range r.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type instRow struct {
		m     Metric
		hist  *histRow
		value float64
	}
	var rowsOut []instRow
	for _, k := range keys {
		m := r.meta[k]
		switch m.Kind {
		case "counter":
			rowsOut = append(rowsOut, instRow{m: m, value: r.counters[k].Value()})
		case "gauge":
			rowsOut = append(rowsOut, instRow{m: m, value: r.gauges[k].Value()})
		case "histogram":
			h := r.hists[k]
			count, sum, _, _ := h.Summary()
			rowsOut = append(rowsOut, instRow{m: m, hist: &histRow{
				pairs: m.Pairs, count: count, sum: sum, buckets: h.Buckets(),
			}})
		}
	}
	collectors := make([]collectorEntry, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	for _, row := range rowsOut {
		name := escapeMetricName(row.m.Name)
		if row.hist != nil {
			for i, cum := range row.hist.buckets {
				le := "+Inf"
				if i < len(DefaultBuckets) {
					le = promNumber(DefaultBuckets[i])
				}
				add(name, "histogram", name+"_bucket"+renderLabels(row.hist.pairs, L("le", le))+" "+strconv.Itoa(cum))
			}
			add(name, "histogram", name+"_sum"+renderLabels(row.hist.pairs)+" "+promNumber(row.hist.sum))
			add(name, "histogram", name+"_count"+renderLabels(row.hist.pairs)+" "+strconv.Itoa(row.hist.count))
			continue
		}
		add(name, row.m.Kind, name+renderLabels(row.m.Pairs)+" "+promNumber(row.value))
	}

	sort.Slice(collectors, func(i, j int) bool { return collectors[i].id < collectors[j].id })
	g := &Gather{}
	for _, c := range collectors {
		c.fn(g)
	}
	collected := g.rows
	sort.Slice(collected, func(i, j int) bool {
		if collected[i].Name != collected[j].Name {
			return collected[i].Name < collected[j].Name
		}
		return collected[i].Labels < collected[j].Labels
	})
	for _, m := range collected {
		name := escapeMetricName(m.Name)
		add(name, m.Kind, name+renderLabels(m.Pairs)+" "+promNumber(m.Value))
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := families[n]
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, f.kind)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	// Name is the sample's metric name (bucket/sum/count suffixes kept).
	Name string
	// Labels are the sample's label pairs in file order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// ParsePromText parses Prometheus text-format exposition into samples,
// validating the grammar as it goes: every non-comment line must be
// `name[{labels}] value`, label values must be properly quoted and
// escaped, and values must parse as floats. It exists so tests and the
// CLAIM-OBSERVE experiment can assert "the scrape is valid exposition
// format" without a client_golang dependency.
func ParsePromText(text string) ([]PromSample, error) {
	var out []PromSample
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("prom line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	i := 0
	for i < len(line) && !strings.ContainsRune("{ ", rune(line[i])) {
		i++
	}
	s.Name = line[:i]
	if s.Name == "" || !validPromName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		j := 1
		for {
			// label name
			k := j
			for k < len(rest) && rest[k] != '=' {
				k++
			}
			if k >= len(rest) {
				return s, fmt.Errorf("unterminated label set")
			}
			lname := rest[j:k]
			if !validPromName(lname) || strings.Contains(lname, ":") {
				return s, fmt.Errorf("bad label name %q", lname)
			}
			if k+1 >= len(rest) || rest[k+1] != '"' {
				return s, fmt.Errorf("label %q: expected quoted value", lname)
			}
			var val strings.Builder
			k += 2
			for {
				if k >= len(rest) {
					return s, fmt.Errorf("label %q: unterminated value", lname)
				}
				c := rest[k]
				if c == '\\' {
					if k+1 >= len(rest) {
						return s, fmt.Errorf("label %q: dangling escape", lname)
					}
					switch rest[k+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("label %q: bad escape \\%c", lname, rest[k+1])
					}
					k += 2
					continue
				}
				if c == '"' {
					k++
					break
				}
				val.WriteByte(c)
				k++
			}
			s.Labels = append(s.Labels, L(lname, val.String()))
			if k < len(rest) && rest[k] == ',' {
				j = k + 1
				continue
			}
			if k < len(rest) && rest[k] == '}' {
				rest = rest[k+1:]
				break
			}
			return s, fmt.Errorf("expected ',' or '}' after label %q", lname)
		}
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return s, fmt.Errorf("missing value")
	}
	// Optional timestamp after the value is allowed by the format; we
	// never emit one, so treat any second field as an error to keep the
	// checker strict about our own output.
	if strings.ContainsRune(rest, ' ') {
		return s, fmt.Errorf("unexpected trailing field in %q", rest)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

// validPromName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	for i, r := range name {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}
