package obs

import (
	"strconv"
	"testing"
)

func recorderOn(t *testing.T, cfg RecorderConfig) (*EventLog, *FlightRecorder, *float64) {
	t.Helper()
	clock := 0.0
	log := NewEventLog(func() float64 { return clock })
	fr := NewFlightRecorder("P0", cfg)
	log.AddSink(fr.Observe)
	return log, fr, &clock
}

func TestFlightRecorderCondemnTrigger(t *testing.T) {
	log, fr, clock := recorderOn(t, DefaultRecorderConfig())
	*clock = 100
	log.Emit("exec", "dispatch", "P0", "T1")
	log.Emit("health", "condemn", "P0", "T1", Attr{Key: "target", Value: "P3"})
	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("want 1 dump, got %d", len(dumps))
	}
	d := dumps[0]
	if d.Reason != "condemn" || d.Trace != "T1" || d.Peer != "P0" {
		t.Fatalf("dump header wrong: %+v", d)
	}
	if len(d.Events) != 2 {
		t.Fatalf("ring not frozen into dump: %d events", len(d.Events))
	}
}

func TestFlightRecorderShedBurst(t *testing.T) {
	cfg := DefaultRecorderConfig()
	cfg.ShedBurst, cfg.ShedWindowMS = 3, 100
	log, fr, clock := recorderOn(t, cfg)
	// Two sheds inside a window, the third outside it: no dump.
	*clock = 0
	log.Emit("exec", "shed", "P0", "T1")
	*clock = 50
	log.Emit("exec", "shed", "P0", "T2")
	*clock = 500
	log.Emit("exec", "shed", "P0", "T3")
	if n := len(fr.Dumps()); n != 0 {
		t.Fatalf("burst fired across the window gap: %d dumps", n)
	}
	// Three within the window: dump.
	*clock = 510
	log.Emit("exec", "shed", "P0", "T4")
	*clock = 520
	log.Emit("exec", "shed", "P0", "T5")
	dumps := fr.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "shed-burst" {
		t.Fatalf("want one shed-burst dump, got %+v", dumps)
	}
}

func TestFlightRecorderSlowQuery(t *testing.T) {
	cfg := DefaultRecorderConfig()
	cfg.MinSamples, cfg.SlowFactor = 3, 2
	log, fr, clock := recorderOn(t, cfg)
	fr.Context = func(trace string) map[string]any {
		return map[string]any{"trace": trace, "ledger": []string{"complete"}}
	}
	emit := func(dur float64, trace string) {
		log.Emit("peer", "query-done", "P0", trace,
			Attr{Key: "durMs", Value: strconv.FormatFloat(dur, 'g', -1, 64)})
	}
	*clock = 10
	emit(10, "T1")
	emit(10, "T2")
	emit(10, "T3") // primed after this
	if len(fr.Dumps()) != 0 {
		t.Fatal("trigger fired while priming")
	}
	emit(100, "T4") // 10× the mean
	dumps := fr.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "slow-query" || dumps[0].Trace != "T4" {
		t.Fatalf("want slow-query dump for T4, got %+v", dumps)
	}
	if dumps[0].Context["trace"] != "T4" {
		t.Fatalf("context callback not applied: %+v", dumps[0].Context)
	}
}

func TestFlightRecorderPeerFilterAndRing(t *testing.T) {
	cfg := DefaultRecorderConfig()
	cfg.RingSize = 2
	log, fr, _ := recorderOn(t, cfg)
	log.Emit("exec", "dispatch", "OTHER", "T1") // filtered out
	log.Emit("exec", "dispatch", "P0", "T1")
	log.Emit("exec", "dispatch", "P0", "T2")
	log.Emit("exec", "dispatch", "P0", "T3")
	fr.TriggerDump("manual", "T3", 99)
	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("want 1 dump, got %d", len(dumps))
	}
	evs := dumps[0].Events
	if len(evs) != 2 {
		t.Fatalf("ring not bounded: %d events", len(evs))
	}
	for _, ev := range evs {
		if ev.Peer != "P0" {
			t.Fatalf("foreign peer leaked into ring: %+v", ev)
		}
		if ev.Trace == "T1" {
			t.Fatalf("oldest event should have been evicted: %+v", ev)
		}
	}
}

func TestFlightRecorderMaxDumps(t *testing.T) {
	cfg := DefaultRecorderConfig()
	cfg.MaxDumps = 2
	_, fr, _ := recorderOn(t, cfg)
	fr.TriggerDump("a", "", 1)
	fr.TriggerDump("b", "", 2)
	fr.TriggerDump("c", "", 3)
	dumps := fr.Dumps()
	if len(dumps) != 2 || dumps[0].Reason != "b" || dumps[1].Reason != "c" {
		t.Fatalf("dump retention wrong: %+v", dumps)
	}
}

func TestSLOEvaluator(t *testing.T) {
	clock := 0.0
	reg := NewRegistry()
	lat := reg.Histogram("peer_query_latency_ms", L("peer", "P0"))
	bad := reg.Counter("exec_partial_answers_total", L("peer", "P0"))
	total := reg.Counter("peer_queries_total", L("peer", "P0"))

	rules := []SLORule{
		{Name: "latency-p99", Kind: "quantile", Metric: "peer_query_latency_ms", Q: 0.99, Threshold: 200},
		{Name: "completeness", Kind: "ratio", Bad: "exec_partial_answers_total",
			Total: "peer_queries_total", Budget: 0.1, Burn: 1, WindowMS: 1000},
	}
	ev := NewSLOEvaluator(reg, func() float64 { return clock }, rules)
	var alerts []Alert
	ev.OnAlert = func(a Alert) { alerts = append(alerts, a) }

	// Healthy: fast queries, all complete.
	for i := 0; i < 20; i++ {
		lat.Observe(10)
		total.Inc()
	}
	if fired := ev.Eval(); len(fired) != 0 {
		t.Fatalf("healthy state fired %+v", fired)
	}

	// Latency blowout: p99 over threshold.
	for i := 0; i < 50; i++ {
		lat.Observe(900)
	}
	clock = 500
	fired := ev.Eval()
	if len(fired) != 1 || fired[0].Rule != "latency-p99" {
		t.Fatalf("want latency-p99 alert, got %+v", fired)
	}
	if fired[0].Burn <= 1 {
		t.Fatalf("burn should exceed 1: %+v", fired[0])
	}

	// Completeness burn: 5 of the next 10 queries partial.
	clock = 1600 // move past the old window
	ev.Eval()    // baseline sample at the new window
	for i := 0; i < 10; i++ {
		total.Inc()
	}
	bad.Add(5)
	clock = 2000
	fired = ev.Eval()
	var got *Alert
	for i := range fired {
		if fired[i].Rule == "completeness" {
			got = &fired[i]
		}
	}
	if got == nil {
		t.Fatalf("want completeness alert, got %+v", fired)
	}
	if got.Value < 0.4 || got.Value > 0.6 {
		t.Fatalf("windowed bad fraction %g, want ~0.5", got.Value)
	}
	if len(alerts) == 0 {
		t.Fatal("OnAlert hook not called")
	}
}

func TestSLOEvaluatorNilSafe(t *testing.T) {
	var e *SLOEvaluator
	if e.Eval() != nil || e.Alerts() != nil || e.Rules() != nil {
		t.Fatal("nil evaluator should be inert")
	}
	if e.String() == "" {
		t.Fatal("nil evaluator String should render")
	}
}
