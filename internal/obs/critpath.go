package obs

import (
	"fmt"
	"math"
	"strings"
)

// Phase names used by critical-path attribution.
const (
	PhaseRouting   = "routing"
	PhasePlanning  = "planning"
	PhaseDispatch  = "dispatch"
	PhaseTransfer  = "transfer"
	PhaseJoinLocal = "join/local"
	PhaseRetry     = "retry/backoff"
	PhaseMigration = "migration"
	PhaseOther     = "other"
)

// PhaseOf maps a span kind to its attribution phase.
func PhaseOf(kind string) string {
	switch kind {
	case KindRoute, KindReplan, KindHoleFill:
		return PhaseRouting
	case KindPlan, KindOptimize:
		return PhasePlanning
	case KindDispatch, KindRemote:
		return PhaseDispatch
	case KindStream:
		return PhaseTransfer
	case KindScan, KindUnion, KindJoin:
		return PhaseJoinLocal
	case KindRetry:
		return PhaseRetry
	case KindMigrate:
		return PhaseMigration
	default:
		return PhaseOther
	}
}

// Phases is the fixed report order.
var Phases = []string{
	PhaseRouting, PhasePlanning, PhaseDispatch, PhaseTransfer,
	PhaseJoinLocal, PhaseRetry, PhaseMigration, PhaseOther,
}

// LeafAttribution breaks one dispatch leaf's subtree down by phase.
type LeafAttribution struct {
	// Path is the leaf span's deterministic ID.
	Path string `json:"path"`
	// Peer is the peer the subplan was dispatched to.
	Peer string `json:"peer"`
	// TotalMS is the leaf subtree's total logical time.
	TotalMS float64 `json:"totalMs"`
	// QueueMS is the modeled wait behind Parallelism tokens (see
	// Attribution.ModeledMakespanMS) — reported separately because the
	// logical clock serializes charges and never actually queues.
	QueueMS float64 `json:"queueMs"`
	// Phases sums the subtree's self charges by phase; the values add
	// up to TotalMS exactly.
	Phases map[string]float64 `json:"phases"`
}

// Attribution is the critical-path report for one trace. Two exact
// invariants hold by construction (and are enforced by Check): each
// leaf's phase buckets sum to the leaf's total, and all self charges in
// the trace sum to the end-to-end root total.
type Attribution struct {
	TraceID string `json:"trace"`
	// EndToEndMS is the root span's total: the query's end-to-end
	// logical latency with every charge laid out sequentially.
	EndToEndMS float64 `json:"endToEndMs"`
	// Phases buckets every span's self time in the trace by phase.
	Phases map[string]float64 `json:"phases"`
	// Leaves lists dispatch leaves in walk (creation) order.
	Leaves []LeafAttribution `json:"leaves"`
	// Parallelism and ModeledMakespanMS report the k-token schedule
	// model: leaves are replayed through k servers in dispatch order,
	// giving the makespan a real executor with that token budget would
	// see and each leaf's queueing delay behind earlier leaves.
	Parallelism       int     `json:"parallelism"`
	ModeledMakespanMS float64 `json:"modeledMakespanMs"`
}

// Analyze walks a finished trace and attributes its end-to-end logical
// time to phases, per dispatch leaf and overall. parallelism bounds the
// modeled token schedule (<=0 means unbounded).
func Analyze(tr *Trace, parallelism int) *Attribution {
	if tr == nil || tr.root == nil {
		return nil
	}
	a := &Attribution{
		TraceID:     tr.ID,
		EndToEndMS:  tr.root.TotalMS(),
		Phases:      map[string]float64{},
		Parallelism: parallelism,
	}
	var walk func(s *Span)
	walk = func(s *Span) {
		a.Phases[PhaseOf(s.kind)] += s.SelfMS()
		if s.kind == KindDispatch {
			leaf := LeafAttribution{
				Path:    s.path,
				Peer:    s.peer,
				TotalMS: s.TotalMS(),
				Phases:  map[string]float64{},
			}
			bucketSelf(s, leaf.Phases)
			a.Leaves = append(a.Leaves, leaf)
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	// walk visits every span exactly once for the trace-wide buckets;
	// bucketSelf re-sums each dispatch subtree into its leaf's buckets.
	walk(tr.root)
	a.modelQueue()
	return a
}

// bucketSelf sums every self charge in the subtree into phases.
func bucketSelf(s *Span, phases map[string]float64) {
	phases[PhaseOf(s.kind)] += s.SelfMS()
	for _, c := range s.Children() {
		bucketSelf(c, phases)
	}
}

// modelQueue replays the leaves through parallelism tokens in dispatch
// order: leaf i starts when a token frees up, waits QueueMS, and the
// last completion is the modeled makespan.
func (a *Attribution) modelQueue() {
	k := a.Parallelism
	if k <= 0 || k > len(a.Leaves) {
		k = len(a.Leaves)
	}
	if k == 0 {
		return
	}
	busy := make([]float64, k) // per-token next-free time
	for i := range a.Leaves {
		// Earliest-free token; ties go to the lowest index.
		tok := 0
		for j := 1; j < k; j++ {
			if busy[j] < busy[tok] {
				tok = j
			}
		}
		a.Leaves[i].QueueMS = busy[tok]
		busy[tok] += a.Leaves[i].TotalMS
		if busy[tok] > a.ModeledMakespanMS {
			a.ModeledMakespanMS = busy[tok]
		}
	}
}

// Check verifies the attribution invariants: per-leaf phase buckets sum
// to the leaf total, and the whole-trace phase buckets sum to the
// end-to-end total. Exact up to float rounding (1e-6 ms).
func (a *Attribution) Check() error {
	const eps = 1e-6
	var sum float64
	for _, v := range a.Phases {
		sum += v
	}
	if math.Abs(sum-a.EndToEndMS) > eps {
		return fmt.Errorf("phase sum %.9f != end-to-end %.9f", sum, a.EndToEndMS)
	}
	for _, leaf := range a.Leaves {
		var ls float64
		for _, v := range leaf.Phases {
			ls += v
		}
		if math.Abs(ls-leaf.TotalMS) > eps {
			return fmt.Errorf("leaf %s: phase sum %.9f != total %.9f", leaf.Path, ls, leaf.TotalMS)
		}
	}
	return nil
}

// String renders the attribution as an aligned text report.
func (a *Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s end-to-end %.3fms (modeled makespan %.3fms at par=%d)\n",
		a.TraceID, a.EndToEndMS, a.ModeledMakespanMS, a.Parallelism)
	for _, ph := range Phases {
		if a.Phases[ph] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-14s %10.3fms\n", ph, a.Phases[ph])
	}
	for _, leaf := range a.Leaves {
		fmt.Fprintf(&b, "  leaf %-40s peer=%-4s total=%8.3fms queue=%8.3fms %s\n",
			leaf.Path, leaf.Peer, leaf.TotalMS, leaf.QueueMS, phaseLine(leaf.Phases))
	}
	return b.String()
}

func phaseLine(phases map[string]float64) string {
	parts := make([]string, 0, len(phases))
	for _, ph := range Phases {
		if phases[ph] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%.3f", ph, phases[ph]))
		}
	}
	return strings.Join(parts, " ")
}
