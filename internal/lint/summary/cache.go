// The summary cache: one JSON file per package under a cache directory,
// keyed so a package is recomputed exactly when its own sources change
// or when the summaries of something it (transitively) calls change.
//
// The key covers (a) a format version, (b) the package's import path,
// (c) the bytes of every source file, and (d) for each import that is
// part of the analyzed set, the hash of that dependency's *computed
// summaries* — not its sources. Keying on dependency results rather
// than dependency sources gives precise transitive invalidation: if B
// changes in a way that leaves B's summaries identical, A's key is
// unchanged and A stays cached; if B's summaries change, A's key
// changes, and so do the keys of everything above A.
//
// Packages whose sources cannot be re-read (in-memory test sources) are
// simply uncacheable: their key is empty and every lookup misses.
package summary

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sqpeer/internal/lint/callgraph"
)

// formatVersion invalidates every cache entry when the summary format
// or extraction rules change.
const formatVersion = "sqpeer-lint-summary-v1"

// Cache is an on-disk summary store. A nil *Cache is valid and caches
// nothing, so callers thread it unconditionally.
type Cache struct {
	dir string
	// resultHash maps processed package paths to the hash of their
	// computed summaries, feeding dependents' keys.
	resultHash map[string]string
}

// NewCache opens (creating if needed) a cache rooted at dir. An empty
// dir disables caching.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("summary cache: %w", err)
	}
	return &Cache{dir: dir, resultHash: map[string]string{}}, nil
}

// entry is the on-disk shape of one package's cached summaries.
type entry struct {
	Key   string                  `json:"key"`
	Funcs map[string]*FuncSummary `json:"funcs"`
}

// packageKey computes the cache key for pkg given the dependency
// results already recorded, or "" when the package is uncacheable.
func (c *Cache) packageKey(pkg *callgraph.SourcePkg) string {
	if c == nil {
		return ""
	}
	h := sha256.New()
	io.WriteString(h, formatVersion+"\n"+pkg.Path+"\n")

	names := make([]string, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		names = append(names, pkg.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return "" // in-memory or vanished source: uncacheable
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}

	deps := make([]string, 0, len(pkg.Types.Imports()))
	for _, imp := range pkg.Types.Imports() {
		if rh, ok := c.resultHash[imp.Path()]; ok {
			deps = append(deps, imp.Path()+" "+rh)
		}
	}
	sort.Strings(deps)
	for _, d := range deps {
		io.WriteString(h, "dep "+d+"\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// load returns the cached summaries for (path, key), recording the
// package's result hash on a hit.
func (c *Cache) load(path, key string) (map[string]*FuncSummary, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.file(path))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.Funcs == nil {
		return nil, false
	}
	c.record(path, e.Funcs)
	return e.Funcs, true
}

// store writes one package's summaries and records its result hash.
func (c *Cache) store(path, key string, sums map[string]*FuncSummary) {
	if c == nil {
		return
	}
	c.record(path, sums)
	if key == "" {
		return
	}
	data, err := json.Marshal(entry{Key: key, Funcs: sums})
	if err != nil {
		return
	}
	// Cache writes are best-effort: a failed write only costs speed.
	_ = os.WriteFile(c.file(path), data, 0o644)
}

// record hashes a package's summaries for its dependents' keys.
// encoding/json emits map keys sorted and every slice in a FuncSummary
// is deterministically ordered, so the hash is stable.
func (c *Cache) record(path string, sums map[string]*FuncSummary) {
	data, err := json.Marshal(sums)
	if err != nil {
		return
	}
	sum := sha256.Sum256(data)
	c.resultHash[path] = hex.EncodeToString(sum[:])
}

// file maps a package path to its cache file.
func (c *Cache) file(path string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(path, "/", "__")+".json")
}
