// Package summary is the interprocedural tier of sqpeer-lint: per-
// function summaries of the concurrency- and lifecycle-relevant effects
// the four interprocedural analyzers (lockorder, bufsafe, deadlinebound,
// goroleak) reason about, propagated to a fixed point across the
// package-level call graph (internal/lint/callgraph).
//
// A FuncSummary records, for one declared function or method:
//
//   - Acquires / LockEdges — which package-identified (RW)Mutexes the
//     function (transitively) acquires, and the held→acquired order
//     edges its body contributes to the global lock-order graph;
//   - Unbounded — reachable calls to the deadline-free network.Call /
//     network.Send, each with the call chain that reaches it;
//   - RunsForever — whether the body contains an inescapable infinite
//     loop (directly or via a callee), i.e. is not a sound goroutine
//     body without an external exit;
//   - SpawnsParams — func-typed parameters the function launches as
//     goroutines (directly or by forwarding to a spawning callee), so
//     helpers spawned through callbacks are checked at the call site
//     that supplies the concrete function;
//   - PutsParams / EscapesParams / ReturnsParams / ReturnsPooled — the
//     pooled wire-buffer lifecycle effects of []byte parameters and
//     results (rql.GetWireBuf / PutWireBuf and their wrappers).
//
// Summaries are local facts plus derived facts. Local facts come from a
// single AST walk per function; derived facts are computed by iterating
// the package's functions in sorted order until nothing changes (the
// fixed point exists because every derived set only grows and is drawn
// from a finite universe). Packages are processed in import topological
// order, so cross-package calls always see final callee summaries;
// recursion — possible only inside one package — is what the in-package
// iteration resolves.
//
// Function literals are deliberately second-class: a literal's lock
// edges are recorded globally (a goroutine body's internal ordering is
// as real as a method's), but its acquisitions do not enter the
// enclosing function's Acquires set (they happen asynchronously when the
// literal is spawned, deferred, or stored), and goroleak analyzes `go
// func(){...}` bodies inline rather than through the index.
package summary

import (
	"go/token"
	"go/types"
	"sort"

	"sqpeer/internal/lint/callgraph"
)

// Site is a serializable source position. Offsets are stored so a
// cache-loaded summary can be resolved back to a token.Pos in the
// current FileSet (valid because the cache key covers file contents:
// a hit implies identical bytes, hence identical offsets).
type Site struct {
	File   string `json:"file"`
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
}

// SiteAt captures a position from the FileSet.
func SiteAt(fset *token.FileSet, pos token.Pos) Site {
	p := fset.Position(pos)
	return Site{File: p.Filename, Offset: p.Offset, Line: p.Line, Col: p.Column}
}

// Pos resolves the site back to a token.Pos in fset, or token.NoPos if
// the file is not present there.
func (s Site) Pos(fset *token.FileSet) token.Pos {
	var found token.Pos = token.NoPos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() == s.File && s.Offset <= f.Size() {
			found = f.Pos(s.Offset)
			return false
		}
		return true
	})
	return found
}

// LockEdge is one lock-order edge: while holding From, the code at Site
// acquires To — directly (Via == "") or by calling Via, which
// (transitively) acquires To. From == To is a reentrant-acquisition
// edge, a self-deadlock on Go's non-reentrant mutexes.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Site Site   `json:"site"`
	Via  string `json:"via,omitempty"`
}

// NetOp is one reachable unbounded network operation: a call to
// network.Call or network.Send (the deadline-free forms) at Site,
// reached through the Via chain of function keys (empty for a direct
// call in the summarized function).
type NetOp struct {
	Op   string   `json:"op"` // "Call" or "Send"
	Site Site     `json:"site"`
	Via  []string `json:"via,omitempty"`
}

// maxVia caps the reported call chain; deeper paths are elided, the
// endpoint is what matters.
const maxVia = 3

// FuncSummary is the interprocedural summary of one function.
type FuncSummary struct {
	// Acquires lists lock IDs the function may acquire while running
	// synchronously (transitive over calls, excludes function literals).
	Acquires []string `json:"acquires,omitempty"`
	// LockEdges are the held→acquired edges contributed by the body.
	LockEdges []LockEdge `json:"lockEdges,omitempty"`
	// Unbounded lists reachable deadline-free network.Call/Send sites.
	Unbounded []NetOp `json:"unbounded,omitempty"`
	// RunsForever marks bodies with an inescapable infinite loop.
	RunsForever bool `json:"runsForever,omitempty"`
	// SpawnsParams lists indices of func-typed parameters launched as
	// goroutines.
	SpawnsParams []int `json:"spawnsParams,omitempty"`
	// PutsParams lists indices of []byte parameters handed (transitively)
	// to rql.PutWireBuf.
	PutsParams []int `json:"putsParams,omitempty"`
	// EscapesParams lists indices of []byte parameters stored beyond the
	// call: channel sends, field/global/composite stores.
	EscapesParams []int `json:"escapesParams,omitempty"`
	// ReturnsParams lists indices of parameters returned as-is (buffer
	// identity passes through, e.g. rql.AppendBatch).
	ReturnsParams []int `json:"returnsParams,omitempty"`
	// ReturnsPooled marks functions whose result is a pooled buffer
	// (rql.GetWireBuf or a wrapper around it).
	ReturnsPooled bool `json:"returnsPooled,omitempty"`
}

// Index is the cross-package summary store the analyzers consult.
type Index struct {
	funcs map[string]*FuncSummary
	pkgs  map[string][]string // package path → sorted function keys
	// CacheHits and CacheMisses count per-package cache outcomes for the
	// driver's stats report and the invalidation tests.
	CacheHits, CacheMisses int
}

// Func returns the summary for a function key, or nil if unknown (a
// function outside the analyzed set, e.g. the standard library).
func (ix *Index) Func(key string) *FuncSummary { return ix.funcs[key] }

// FuncOf is Func keyed by the object itself.
func (ix *Index) FuncOf(f *types.Func) *FuncSummary {
	if f == nil {
		return nil
	}
	return ix.funcs[callgraph.FuncKey(f)]
}

// PackageFuncs returns the sorted function keys summarized for one
// package path.
func (ix *Index) PackageFuncs(path string) []string { return ix.pkgs[path] }

// AllLockEdges returns every lock-order edge in the index, sorted by
// (From, To, File, Offset) so the lock graph — and therefore cycle
// reporting — is deterministic.
func (ix *Index) AllLockEdges() []LockEdge {
	var out []LockEdge
	for _, keys := range ix.pkgs {
		for _, k := range keys {
			out = append(out, ix.funcs[k].LockEdges...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Site.File != b.Site.File {
			return a.Site.File < b.Site.File
		}
		return a.Site.Offset < b.Site.Offset
	})
	return out
}

// BuildIndex computes summaries for the given packages, consulting and
// filling cache (which may be nil) per package. Packages are processed
// in import topological order so callee summaries precede callers.
func BuildIndex(pkgs []*callgraph.SourcePkg, cache *Cache) *Index {
	ix := &Index{funcs: map[string]*FuncSummary{}, pkgs: map[string][]string{}}
	for _, pkg := range callgraph.TopoSort(pkgs) {
		key := cache.packageKey(pkg)
		if sums, ok := cache.load(pkg.Path, key); ok {
			ix.CacheHits++
			ix.add(pkg.Path, sums)
			continue
		}
		ix.CacheMisses++
		sums := summarizePackage(ix, pkg)
		ix.add(pkg.Path, sums)
		cache.store(pkg.Path, key, sums)
	}
	return ix
}

// add records one package's summaries.
func (ix *Index) add(path string, sums map[string]*FuncSummary) {
	keys := make([]string, 0, len(sums))
	for k, s := range sums {
		ix.funcs[k] = s
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ix.pkgs[path] = keys
}

// summarizePackage computes final summaries for one package, given an
// index already holding every dependency.
func summarizePackage(ix *Index, pkg *callgraph.SourcePkg) map[string]*FuncSummary {
	g := callgraph.Build(pkg)
	local := map[string]*localFacts{}
	sums := map[string]*FuncSummary{}
	for _, k := range g.Keys {
		node := g.Funcs[k]
		local[k] = collectLocal(pkg, node)
		sums[k] = &FuncSummary{}
	}
	applyIntrinsics(pkg.Path, sums)

	// lookup resolves a callee summary: same-package first (the in-flight
	// map, so recursion converges), then the cross-package index.
	lookup := func(key string) *FuncSummary {
		if s, ok := sums[key]; ok {
			return s
		}
		return ix.funcs[key]
	}

	// Fixed point: every derived set only grows and is drawn from a
	// finite universe, so iterate until an entire sweep changes nothing.
	for changed := true; changed; {
		changed = false
		for _, k := range g.Keys {
			if derive(sums[k], local[k], lookup) {
				changed = true
			}
		}
	}
	return sums
}

// derive recomputes s's derived facts from its local facts and current
// callee summaries, reporting whether anything grew.
func derive(s *FuncSummary, lf *localFacts, lookup func(string) *FuncSummary) bool {
	changed := false
	grewStr := func(dst *[]string, v string) {
		if !containsStr(*dst, v) {
			*dst = insertStr(*dst, v)
			changed = true
		}
	}
	grewInt := func(dst *[]int, v int) {
		if !containsInt(*dst, v) {
			*dst = insertInt(*dst, v)
			changed = true
		}
	}

	for _, a := range lf.acquires {
		grewStr(&s.Acquires, a)
	}
	for _, e := range lf.lockEdges {
		if !hasEdge(s.LockEdges, e) {
			s.LockEdges = append(s.LockEdges, e)
			changed = true
		}
	}
	if lf.runsForever && !s.RunsForever {
		s.RunsForever = true
		changed = true
	}
	for _, p := range lf.spawnsParams {
		grewInt(&s.SpawnsParams, p)
	}
	for _, p := range lf.putsParams {
		grewInt(&s.PutsParams, p)
	}
	for _, p := range lf.escapesParams {
		grewInt(&s.EscapesParams, p)
	}
	for _, p := range lf.returnsParams {
		grewInt(&s.ReturnsParams, p)
	}
	for _, op := range lf.netOps {
		if !hasNetOp(s.Unbounded, op.Site) {
			s.Unbounded = append(s.Unbounded, op)
			changed = true
		}
	}

	for _, c := range lf.calls {
		cs := lookup(c.callee)
		if cs == nil {
			continue
		}
		// Synchronous effects flow up the call edge — but not out of a
		// function literal, whose run time is decoupled from the caller.
		if !c.inLit {
			for _, a := range cs.Acquires {
				grewStr(&s.Acquires, a)
			}
			if cs.RunsForever && !s.RunsForever {
				s.RunsForever = true
				changed = true
			}
		}
		// Lock-order edges: everything the callee may acquire is ordered
		// after every lock held at the call site.
		for _, held := range c.held {
			for _, a := range cs.Acquires {
				e := LockEdge{From: held, To: a, Site: c.site, Via: c.callee}
				if !hasEdge(s.LockEdges, e) {
					s.LockEdges = append(s.LockEdges, e)
					changed = true
				}
			}
		}
		// Unbounded network ops surface with the call chain prepended.
		if len(cs.Unbounded) > 0 && !hasNetOp(s.Unbounded, c.site) {
			op := cs.Unbounded[0]
			via := append([]string{c.callee}, op.Via...)
			if len(via) > maxVia {
				via = via[:maxVia]
			}
			s.Unbounded = append(s.Unbounded, NetOp{Op: op.Op, Site: c.site, Via: via})
			changed = true
		}
		// Parameter effects forward through passthrough argument positions.
		for _, pa := range c.paramArgs {
			if containsInt(cs.SpawnsParams, pa.argIdx) {
				grewInt(&s.SpawnsParams, pa.paramIdx)
			}
			if containsInt(cs.PutsParams, pa.argIdx) {
				grewInt(&s.PutsParams, pa.paramIdx)
			}
			if containsInt(cs.EscapesParams, pa.argIdx) {
				grewInt(&s.EscapesParams, pa.paramIdx)
			}
		}
	}
	for _, rc := range lf.returnsCalls {
		if cs := lookup(rc); cs != nil && cs.ReturnsPooled && !s.ReturnsPooled {
			s.ReturnsPooled = true
			changed = true
		}
	}
	return changed
}

// applyIntrinsics seeds the wire-buffer pool contract on the rql
// package's own API (real path sqpeer/internal/rql or the fixture path
// rql): GetWireBuf mints pooled buffers, PutWireBuf retires its
// argument, AppendBatch grows and returns the buffer it was handed.
// Their bodies implement the pool rather than call it, so these facts
// cannot be derived from the walk.
func applyIntrinsics(pkgPath string, sums map[string]*FuncSummary) {
	if !callgraph.PathTail(pkgPath, "rql") {
		return
	}
	if s, ok := sums[pkgPath+".GetWireBuf"]; ok {
		s.ReturnsPooled = true
	}
	if s, ok := sums[pkgPath+".PutWireBuf"]; ok && !containsInt(s.PutsParams, 0) {
		s.PutsParams = insertInt(s.PutsParams, 0)
	}
	if s, ok := sums[pkgPath+".AppendBatch"]; ok && !containsInt(s.ReturnsParams, 0) {
		s.ReturnsParams = insertInt(s.ReturnsParams, 0)
	}
}

func containsStr(xs []string, v string) bool {
	i := sort.SearchStrings(xs, v)
	return i < len(xs) && xs[i] == v
}

func insertStr(xs []string, v string) []string {
	i := sort.SearchStrings(xs, v)
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func containsInt(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func insertInt(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func hasEdge(es []LockEdge, e LockEdge) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

func hasNetOp(ops []NetOp, site Site) bool {
	for _, op := range ops {
		if op.Site == site {
			return true
		}
	}
	return false
}
