package summary

import (
	"go/ast"
	"go/types"

	"sqpeer/internal/lint/callgraph"
)

// BodyRunsForever reports whether a function-literal body spawned as a
// goroutine can run forever: it contains an inescapable infinite loop
// directly, or synchronously calls a function whose summary marks it
// RunsForever. goroleak uses this to analyze `go func(){...}` bodies
// inline — literals have no key in the index, their exit condition
// belongs to the spawn site.
func BodyRunsForever(pkg *callgraph.SourcePkg, ix *Index, body *ast.BlockStmt) bool {
	lf := &localFacts{}
	w := &walker{pkg: pkg, lf: lf, params: map[types.Object]int{}}
	w.scanStmts(body.List, map[string]bool{})
	if lf.runsForever {
		return true
	}
	if ix == nil {
		return false
	}
	for _, c := range lf.calls {
		if c.inLit {
			continue
		}
		if s := ix.Func(c.callee); s != nil && s.RunsForever {
			return true
		}
	}
	return false
}
