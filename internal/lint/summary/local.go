// Local fact extraction: one path-aware walk per declared function,
// producing the non-derived half of its FuncSummary. The walk tracks
// the set of held (RW)Mutexes through branches the way the locksafe
// analyzer does — acquire opens, release closes, defer Unlock holds to
// function end, branches scan a copy — and records every static call
// site together with the held-lock snapshot, so the fixed-point layer
// can turn callee acquisitions into lock-order edges.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"sqpeer/internal/lint/callgraph"
)

// localFacts are the directly observed effects of one function body.
type localFacts struct {
	acquires      []string   // lock IDs acquired outside function literals
	lockEdges     []LockEdge // direct held→acquired edges (literals included)
	netOps        []NetOp    // direct unbounded network.Call/Send sites
	calls         []callFact // static call sites with context
	runsForever   bool
	spawnsParams  []int
	putsParams    []int // always empty locally; filled via PutWireBuf propagation
	escapesParams []int
	returnsParams []int
	returnsCalls  []string // callee keys of `return f(...)` results
}

// callFact is one static call site with the context propagation needs.
type callFact struct {
	callee    string
	site      Site
	held      []string // sorted lock IDs held at the call
	inLit     bool     // inside a function literal: effects may be asynchronous
	paramArgs []paramArg
}

// paramArg maps a tracked caller parameter to the argument position it
// occupies in this call.
type paramArg struct {
	argIdx   int // position in the callee's parameter list
	paramIdx int // position in the caller's parameter list
}

// walker carries the per-function extraction state.
type walker struct {
	pkg    *callgraph.SourcePkg
	lf     *localFacts
	params map[types.Object]int // tracked ([]byte or func-typed) parameters
	inLit  bool
}

// collectLocal extracts the local facts of one declared function.
func collectLocal(pkg *callgraph.SourcePkg, node *callgraph.Func) *localFacts {
	lf := &localFacts{}
	if node.Decl == nil || node.Decl.Body == nil {
		return lf
	}
	w := &walker{pkg: pkg, lf: lf, params: map[types.Object]int{}}
	sig := node.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isByteSlice(p.Type()) || isFuncType(p.Type()) {
			w.params[p] = i
		}
	}
	w.scanStmts(node.Decl.Body.List, map[string]bool{})
	return lf
}

// scanStmts walks one statement list linearly, maintaining the held set.
func (w *walker) scanStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if id, op, ok := w.lockOp(s.X); ok {
				w.applyLockOp(id, op, held, s.X.Pos())
				continue
			}
			w.scanExpr(s.X, held)
		case *ast.DeferStmt:
			if id, op, ok := w.lockOp(s.Call); ok {
				// defer mu.Unlock() keeps the region open to function end;
				// a deferred Lock is recorded like an immediate one.
				if op == "Lock" || op == "RLock" {
					w.applyLockOp(id, op, held, s.Call.Pos())
				}
				continue
			}
			// Other deferred calls run at return, when the locks released
			// by then are unknowable; record them lock-free.
			w.scanExpr(s.Call, map[string]bool{})
		case *ast.GoStmt:
			w.scanSpawn(s)
		case *ast.SendStmt:
			w.scanExpr(s.Chan, held)
			w.markParamEscapes(s.Value)
			w.scanExpr(s.Value, held)
		case *ast.AssignStmt:
			for i, r := range s.Rhs {
				if len(s.Lhs) == len(s.Rhs) && !isLocalIdent(w.pkg.Info, s.Lhs[i]) {
					w.markParamEscapes(r)
				}
				w.scanExpr(r, held)
			}
			for _, l := range s.Lhs {
				w.scanExpr(l, held)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				r = ast.Unparen(r)
				if idx, ok := w.paramIndex(r); ok {
					w.lf.returnsParams = appendIntOnce(w.lf.returnsParams, idx)
				}
				if call, ok := r.(*ast.CallExpr); ok {
					if callee := callgraph.CalleeOf(w.pkg.Info, call); callee != nil {
						w.lf.returnsCalls = append(w.lf.returnsCalls, callgraph.FuncKey(callee))
					}
				}
				w.scanExpr(r, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				w.scanStmts([]ast.Stmt{s.Init}, held)
			}
			w.scanExpr(s.Cond, held)
			w.scanStmts(s.Body.List, clone(held))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.scanStmts(e.List, clone(held))
			case *ast.IfStmt:
				w.scanStmts([]ast.Stmt{e}, clone(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				w.scanStmts([]ast.Stmt{s.Init}, held)
			}
			w.scanExpr(s.Cond, held)
			if s.Post != nil {
				w.scanStmts([]ast.Stmt{s.Post}, clone(held))
			}
			if !w.inLit && isInfiniteFor(s) && !loopHasExit(s) {
				w.lf.runsForever = true
			}
			w.scanStmts(s.Body.List, clone(held))
		case *ast.RangeStmt:
			w.scanExpr(s.X, held)
			w.scanStmts(s.Body.List, clone(held))
		case *ast.BlockStmt:
			w.scanStmts(s.List, clone(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.scanStmts([]ast.Stmt{s.Init}, held)
			}
			w.scanExpr(s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.scanStmts(cc.Body, clone(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.scanStmts(cc.Body, clone(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if comm, ok := cc.Comm.(*ast.SendStmt); ok {
						// A send case transfers ownership just like a
						// statement-level send.
						w.markParamEscapes(comm.Value)
					}
					if cc.Comm != nil {
						w.scanStmts([]ast.Stmt{cc.Comm}, clone(held))
					}
					w.scanStmts(cc.Body, clone(held))
				}
			}
		case *ast.LabeledStmt:
			w.scanStmts([]ast.Stmt{s.Stmt}, held)
		case *ast.DeclStmt, *ast.BranchStmt, *ast.IncDecStmt, *ast.EmptyStmt:
			if d, ok := s.(*ast.IncDecStmt); ok {
				w.scanExpr(d.X, held)
			}
		default:
			ast.Inspect(stmt, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					w.scanExpr(e, held)
					return false
				}
				return true
			})
		}
	}
}

// scanSpawn handles one go statement: spawned parameters feed
// SpawnsParams; spawned literals are scanned as fresh lock-free bodies
// (goroleak analyzes their exit conditions inline at the spawn site).
func (w *walker) scanSpawn(s *ast.GoStmt) {
	fun := ast.Unparen(s.Call.Fun)
	if idx, ok := w.paramIndex(fun); ok {
		w.lf.spawnsParams = appendIntOnce(w.lf.spawnsParams, idx)
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		w.scanLit(lit)
	} else {
		w.scanExpr(fun, map[string]bool{})
	}
	for _, a := range s.Call.Args {
		// The goroutine owns what it is handed.
		w.markParamEscapes(a)
		w.scanExpr(a, map[string]bool{})
	}
}

// scanLit scans a function literal body: fresh held set (the literal
// usually runs on another goroutine or at defer time), and effects
// flagged as literal-borne so synchronous facts don't leak upward.
func (w *walker) scanLit(lit *ast.FuncLit) {
	saved := w.inLit
	w.inLit = true
	w.scanStmts(lit.Body.List, map[string]bool{})
	w.inLit = saved
}

// scanExpr records the calls, lock events and escapes inside one
// expression evaluated with the given held set.
func (w *walker) scanExpr(expr ast.Expr, held map[string]bool) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			w.scanLit(e)
			return false
		case *ast.CompositeLit:
			// A parameter folded into a composite value escapes the
			// scalar dataflow this walk tracks; be conservative.
			for _, el := range e.Elts {
				w.markParamEscapes(el)
			}
		case *ast.CallExpr:
			if id, op, ok := w.lockOp(e); ok {
				// A lock op in expression position (rare) is applied to a
				// copy: linear statement flow owns the real held set.
				w.applyLockOp(id, op, clone(held), e.Pos())
				return false
			}
			w.recordCall(e, held)
		}
		return true
	})
}

// recordCall emits the callFact and direct-NetOp facts for one call.
func (w *walker) recordCall(call *ast.CallExpr, held map[string]bool) {
	callee := callgraph.CalleeOf(w.pkg.Info, call)
	if callee == nil {
		return
	}
	cf := callFact{
		callee: callgraph.FuncKey(callee),
		site:   SiteAt(w.pkg.Fset, call.Pos()),
		held:   sortedKeys(held),
		inLit:  w.inLit,
	}
	for i, a := range call.Args {
		if idx, ok := w.paramIndex(a); ok {
			cf.paramArgs = append(cf.paramArgs, paramArg{argIdx: i, paramIdx: idx})
		}
	}
	w.lf.calls = append(w.lf.calls, cf)

	if op, ok := unboundedNetOp(w.pkg, callee); ok {
		w.lf.netOps = append(w.lf.netOps, NetOp{Op: op, Site: cf.site})
	}
}

// applyLockOp mutates the held set for one Lock/RLock/Unlock/RUnlock and
// records acquisition facts.
func (w *walker) applyLockOp(id string, op string, held map[string]bool, pos token.Pos) {
	if id == "" {
		return
	}
	switch op {
	case "Lock", "RLock":
		site := SiteAt(w.pkg.Fset, pos)
		for _, h := range sortedKeys(held) {
			w.lf.lockEdges = append(w.lf.lockEdges, LockEdge{From: h, To: id, Site: site})
		}
		held[id] = true
		if !w.inLit {
			w.lf.acquires = appendStrOnce(w.lf.acquires, id)
		}
	case "Unlock", "RUnlock":
		delete(held, id)
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync.Mutex or
// sync.RWMutex receivers (embedded included) and returns the lock's
// package-level identity.
func (w *walker) lockOp(e ast.Expr) (id, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	recv := recvNamed(fn)
	if !namedIs(recv, "sync", "Mutex") && !namedIs(recv, "sync", "RWMutex") {
		return "", "", false
	}
	return lockID(w.pkg, sel.X), sel.Sel.Name, true
}

// lockID renders the package-level identity of a mutex expression:
// "pkgpath.Type.field" for a field mutex, "pkgpath.var" for a package-
// level one, "pkgpath.Type" for an embedded one. Local mutexes have no
// cross-function identity and yield "".
func lockID(pkg *callgraph.SourcePkg, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil {
			if n := namedOf(s.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + sel.Sel.Name
			}
		}
		if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	// Embedded mutex: identify it by the named type that embeds it.
	if tv, ok := pkg.Info.Types[recv]; ok {
		if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name()
		}
	}
	return ""
}

// unboundedNetOp reports whether callee is the deadline-free
// network.Call or network.Send. Calls inside the network package itself
// are the transport's implementation, not uses of it.
func unboundedNetOp(pkg *callgraph.SourcePkg, callee *types.Func) (string, bool) {
	if callgraph.PathTail(pkg.Path, "network") {
		return "", false
	}
	name := callee.Name()
	if name != "Call" && name != "Send" {
		return "", false
	}
	recv := recvNamed(callee)
	if !namedIs(recv, "network", "Network") {
		return "", false
	}
	return name, true
}

// markParamEscapes records tracked parameters referenced anywhere in
// expr as escaping.
func (w *walker) markParamEscapes(expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if idx, ok := w.paramIndex(id); ok {
				w.lf.escapesParams = appendIntOnce(w.lf.escapesParams, idx)
			}
		}
		return true
	})
}

// paramIndex resolves an expression to a tracked parameter's index.
func (w *walker) paramIndex(e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return 0, false
	}
	idx, ok := w.params[obj]
	return idx, ok
}

// isInfiniteFor reports a for loop with no condition or a constant-true
// one.
func isInfiniteFor(s *ast.ForStmt) bool {
	if s.Cond == nil {
		return true
	}
	if id, ok := ast.Unparen(s.Cond).(*ast.Ident); ok && id.Name == "true" {
		return true
	}
	return false
}

// loopHasExit reports whether an infinite for loop contains a way out:
// a return, a break that targets it, or a panic. Breaks inside nested
// loops, switches and selects target those constructs, not this loop,
// unless they carry its label.
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		if n == nil || exit {
			return
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && breakable {
				exit = true
			}
			// A labeled break targeting an outer label also exits; being
			// conservative the other way would flag legitimate loops, so
			// treat any labeled break as an exit.
			if s.Tok == token.BREAK && s.Label != nil {
				exit = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "panic" {
				exit = true
			}
			for _, a := range s.Args {
				walk(a, false)
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break inside these targets them, not our loop; returns
			// inside them still exit.
			ast.Inspect(s, func(inner ast.Node) bool {
				if inner == s {
					return true
				}
				walk(inner, false)
				return false
			})
		case *ast.FuncLit:
			// A literal's returns do not exit the loop.
		default:
			ast.Inspect(n, func(inner ast.Node) bool {
				if inner == n {
					return true
				}
				walk(inner, breakable)
				return false
			})
		}
	}
	for _, st := range loop.Body.List {
		walk(st, true)
	}
	return exit
}

// isLocalIdent reports whether e is a plain identifier bound to a local
// variable (assignments to those do not constitute escapes).
func isLocalIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	if info.Defs[id] != nil {
		return true
	}
	v, ok := info.Uses[id].(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() && !v.IsField()
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func recvNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedIs matches by package-path tail so fixture packages (short paths
// like "network") satisfy the same rules as the real ones.
func namedIs(n *types.Named, pkgTail, name string) bool {
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return callgraph.PathTail(n.Obj().Pkg().Path(), pkgTail) && n.Obj().Name() == name
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendIntOnce(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

func appendStrOnce(xs []string, v string) []string {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}
