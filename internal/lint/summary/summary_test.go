package summary_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"sqpeer/internal/lint/callgraph"
	"sqpeer/internal/lint/load"
	"sqpeer/internal/lint/summary"
)

// treeLoader loads packages from an on-disk tree (root/<path>/*.go),
// resolving std imports through the source importer — the same shape the
// driver and analysistest feed BuildIndex.
type treeLoader struct {
	root string
	fset *token.FileSet
	std  types.Importer
	done map[string]*callgraph.SourcePkg
}

func newTreeLoader(root string) *treeLoader {
	fset := token.NewFileSet()
	return &treeLoader{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		done: map[string]*callgraph.SourcePkg{},
	}
}

func (l *treeLoader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, path)); err != nil {
		return l.std.Import(path)
	}
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *treeLoader) load(path string) (*callgraph.SourcePkg, error) {
	if pkg, ok := l.done[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &callgraph.SourcePkg{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.done[path] = pkg
	return pkg, nil
}

// loadTree loads the given package paths (plus anything they import from
// the tree) and returns every loaded package.
func loadTree(t *testing.T, root string, paths ...string) []*callgraph.SourcePkg {
	t.Helper()
	l := newTreeLoader(root)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
	keys := make([]string, 0, len(l.done))
	for k := range l.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*callgraph.SourcePkg, 0, len(keys))
	for _, k := range keys {
		out = append(out, l.done[k])
	}
	return out
}

// writeTree materializes path→source pairs under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		full := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// Mutual recursion: b acquires the lock, a reaches it only through the
// a→b→a cycle. The in-package fixed point must converge with both
// functions reporting the acquisition.
func TestFixedPointRecursion(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"p/p.go": `package p

import "sync"

type S struct{ mu sync.Mutex }

func a(s *S, n int) {
	if n > 0 {
		b(s, n-1)
	}
}

func b(s *S, n int) {
	s.mu.Lock()
	s.mu.Unlock()
	a(s, n)
}
`,
	})
	ix := summary.BuildIndex(loadTree(t, root, "p"), nil)
	for _, fn := range []string{"p.a", "p.b"} {
		sum := ix.Func(fn)
		if sum == nil {
			t.Fatalf("no summary for %s", fn)
		}
		if !reflect.DeepEqual(sum.Acquires, []string{"p.S.mu"}) {
			t.Errorf("%s.Acquires = %v, want [p.S.mu]", fn, sum.Acquires)
		}
	}
}

// Lock identities come in three shapes: struct field, package-level
// variable, and embedded mutex (identified by the embedding type).
func TestLockIDShapes(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"q/q.go": `package q

import "sync"

type S struct{ mu sync.Mutex }

var gmu sync.Mutex

type E struct{ sync.Mutex }

func f(s *S) { s.mu.Lock(); s.mu.Unlock() }

func g() { gmu.Lock(); gmu.Unlock() }

func (e *E) h() { e.Lock(); e.Unlock() }
`,
	})
	ix := summary.BuildIndex(loadTree(t, root, "q"), nil)
	for fn, want := range map[string]string{
		"q.f":      "q.S.mu",
		"q.g":      "q.gmu",
		"(*q.E).h": "q.E",
	} {
		sum := ix.Func(fn)
		if sum == nil {
			t.Fatalf("no summary for %s", fn)
		}
		if !reflect.DeepEqual(sum.Acquires, []string{want}) {
			t.Errorf("%s.Acquires = %v, want [%s]", fn, sum.Acquires, want)
		}
	}
}

const cacheBaseV1 = `package base

import "sync"

var Mu sync.Mutex

func Hold() {
	Mu.Lock()
	Mu.Unlock()
}
`

const cacheTop = `package top

import "base"

func Use() {
	base.Hold()
}
`

// build reloads the tree from disk with a fresh cache handle, the way a
// new lint process would.
func buildCached(t *testing.T, root, cacheDir string, paths ...string) *summary.Index {
	t.Helper()
	cache, err := summary.NewCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	return summary.BuildIndex(loadTree(t, root, paths...), cache)
}

func TestCacheHitMissAndTransitiveInvalidation(t *testing.T) {
	root := t.TempDir()
	cacheDir := t.TempDir()
	writeTree(t, root, map[string]string{
		"base/base.go": cacheBaseV1,
		"top/top.go":   cacheTop,
	})

	// Cold: both packages computed.
	ix := buildCached(t, root, cacheDir, "top")
	if ix.CacheMisses != 2 || ix.CacheHits != 0 {
		t.Fatalf("cold build: misses=%d hits=%d, want 2/0", ix.CacheMisses, ix.CacheHits)
	}
	if got := ix.Func("top.Use").Acquires; !reflect.DeepEqual(got, []string{"base.Mu"}) {
		t.Fatalf("top.Use.Acquires = %v, want [base.Mu]", got)
	}

	// Warm: both served from cache.
	ix = buildCached(t, root, cacheDir, "top")
	if ix.CacheMisses != 0 || ix.CacheHits != 2 {
		t.Fatalf("warm build: misses=%d hits=%d, want 0/2", ix.CacheMisses, ix.CacheHits)
	}

	// A comment-only change to base recomputes base but leaves its
	// summaries identical, so top — keyed on base's *results* — stays
	// cached.
	writeTree(t, root, map[string]string{"base/base.go": cacheBaseV1 + "\n// tweak\n"})
	ix = buildCached(t, root, cacheDir, "top")
	if ix.CacheMisses != 1 || ix.CacheHits != 1 {
		t.Fatalf("comment tweak: misses=%d hits=%d, want 1/1", ix.CacheMisses, ix.CacheHits)
	}

	// A behavior change in base alters its summaries; top's key changes
	// with the dependency result hash, so the stale top entry is not
	// used and the new fact propagates.
	writeTree(t, root, map[string]string{"base/base.go": `package base

import "sync"

var Mu sync.Mutex

var Mu2 sync.Mutex

func Hold() {
	Mu.Lock()
	Mu2.Lock()
	Mu2.Unlock()
	Mu.Unlock()
}
`})
	ix = buildCached(t, root, cacheDir, "top")
	if ix.CacheMisses != 2 || ix.CacheHits != 0 {
		t.Fatalf("behavior change: misses=%d hits=%d, want 2/0", ix.CacheMisses, ix.CacheHits)
	}
	if got := ix.Func("top.Use").Acquires; !reflect.DeepEqual(got, []string{"base.Mu", "base.Mu2"}) {
		t.Fatalf("top.Use.Acquires after change = %v, want [base.Mu base.Mu2]", got)
	}
}

// Cache-loaded sites must resolve to valid positions in the new
// process's FileSet (offset-based resolution against identical bytes).
func TestCachedSitesResolve(t *testing.T) {
	root := t.TempDir()
	cacheDir := t.TempDir()
	writeTree(t, root, map[string]string{
		"r/r.go": `package r

import "sync"

type S struct{ mu sync.Mutex }

type T struct{ mu sync.Mutex }

func ab(s *S, t *T) {
	s.mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	s.mu.Unlock()
}
`,
	})
	buildCached(t, root, cacheDir, "r")

	loader := newTreeLoader(root)
	pkg, err := loader.load("r")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := summary.NewCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	ix := summary.BuildIndex([]*callgraph.SourcePkg{pkg}, cache)
	if ix.CacheHits != 1 {
		t.Fatalf("expected cache hit, got misses=%d hits=%d", ix.CacheMisses, ix.CacheHits)
	}
	edges := ix.AllLockEdges()
	if len(edges) != 1 {
		t.Fatalf("lock edges = %+v, want exactly one", edges)
	}
	pos := edges[0].Site.Pos(loader.fset)
	if !pos.IsValid() {
		t.Fatal("cached site did not resolve in the new FileSet")
	}
	if p := loader.fset.Position(pos); p.Line != edges[0].Site.Line {
		t.Fatalf("resolved line %d != recorded line %d", p.Line, edges[0].Site.Line)
	}
	_ = token.NoPos
}
