package analysis

import (
	"go/ast"
	"go/types"
)

// FuncOf resolves a call/selector expression to the *types.Func it
// invokes, unwrapping parentheses. It returns nil for calls through
// plain function values, conversions and builtins.
func FuncOf(info *types.Info, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// PkgFunc reports whether f is a package-level function (no receiver)
// of the package with the given import path.
func PkgFunc(f *types.Func, pkgPath string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// MethodRecvNamed returns the named type of f's receiver (pointers
// dereferenced), or nil when f is not a method.
func MethodRecvNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// NamedFrom reports whether named is the type pkgPath.name.
func NamedFrom(named *types.Named, pkgPath, name string) bool {
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// IsErrorType reports whether t is exactly the built-in error interface
// type (the static type of variables declared `var err error`).
func IsErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// PkgPathTail reports whether path is exactly tail or ends in "/"+tail.
// Analyzers use it so rules about e.g. the network package hold both for
// the real sqpeer/internal/network path and for analysistest fixture
// packages, which live at short paths like "network".
func PkgPathTail(path, tail string) bool {
	return path == tail || (len(path) > len(tail) &&
		path[len(path)-len(tail)-1] == '/' && path[len(path)-len(tail):] == tail)
}
