// Package analysis is a minimal, offline re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// used by cmd/sqpeer-lint. The container this repo grows in has no module
// proxy, so x/tools cannot be vendored; the subset here is API-shaped
// like the original so the analyzers port verbatim if x/tools ever
// becomes available. Standard passes the original multichecker would add
// (nilness, copylocks, unusedwrite) are delegated to `go vet`, which
// ships with the toolchain — see the Makefile `lint` target.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"sqpeer/internal/lint/summary"
)

// Analyzer describes one static check. Run inspects a single
// type-checked package through its Pass and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a single lowercase word.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// NeedsSummaries marks interprocedural analyzers: the driver builds
	// the cross-package summary index (internal/lint/summary) once per
	// run and hands it to every Pass. This plays the role of x/tools
	// Facts in the offline mini-framework.
	NeedsSummaries bool
	// Run performs the analysis. The result value is unused by the
	// sqpeer driver but kept for x/tools API compatibility.
	Run func(*Pass) (any, error)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for Files and every
	// package type-checked alongside them.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression annotations.
	TypesInfo *types.Info
	// Summaries is the interprocedural summary index, populated only
	// for analyzers that set NeedsSummaries.
	Summaries *summary.Index
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated invariant and the remedy.
	Message string
}
