// Package load locates, parses and type-checks Go packages for
// cmd/sqpeer-lint without golang.org/x/tools/go/packages (unavailable
// offline). Package discovery shells out to `go list -json`, parsing uses
// go/parser with comments retained, and type checking uses the standard
// library's source importer, which resolves and type-checks every
// dependency (std and in-module alike) from source. Test files are
// excluded: the determinism invariants the linters enforce apply to the
// simulator and middleware proper, while tests may legitimately use
// wall-clock watchdogs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (e.g. sqpeer/internal/exec).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the non-test sources, parsed with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's annotations for Files.
	Info *types.Info
}

// listed mirrors the subset of `go list -json` output we consume.
type listed struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Load expands the `go list` patterns and returns the matched packages,
// parsed and type-checked. All packages share one FileSet and one
// importer, so common dependencies are type-checked once per call.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var l listed
		if err := dec.Decode(&l); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(l.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, l.ImportPath, l.Dir, l.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Shared with the analysistest fixture loader.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
