package analysistest

import (
	"fmt"
	"strings"
	"testing"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/analyzers/walltime"
)

// recorder captures Errorf/Fatalf so the suite-failure property can be
// asserted instead of merely hoped for.
type recorder struct {
	errors []string
	fatal  string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
	panic(r)
}

// TestDisabledAnalyzerFailsFixtures is the acceptance property for every
// fixture suite: if an analyzer is disabled (reports nothing), its
// `// want` annotations go unmatched and the suite fails. The walltime
// testdata stands in for all five — each suite runs the same checker.
func TestDisabledAnalyzerFailsFixtures(t *testing.T) {
	disabled := &analysis.Analyzer{
		Name: walltime.Analyzer.Name,
		Doc:  walltime.Analyzer.Doc,
		Run:  func(*analysis.Pass) (any, error) { return nil, nil },
	}
	rec := &recorder{}
	func() {
		defer func() { _ = recover() }() // Fatalf panics to stop the fake run
		Run(rec, "../analyzers/walltime/testdata", disabled, "a")
	}()
	if rec.fatal != "" {
		t.Fatalf("fixture load failed outright: %s", rec.fatal)
	}
	if len(rec.errors) == 0 {
		t.Fatal("disabled analyzer passed its fixture suite; // want annotations are not being enforced")
	}
	for _, e := range rec.errors {
		if !strings.Contains(e, "no diagnostic matched want") {
			t.Fatalf("unexpected failure kind from disabled analyzer: %s", e)
		}
	}
}

// TestAllowDirectiveInertInFixtures: the driver's //lint:allow layer
// does not apply inside fixture testdata — the want annotation on an
// "allowed" line still must (and does) match the raw diagnostic. If
// suppression ever leaked into analysistest, the want would go unmatched
// and this run would report errors.
func TestAllowDirectiveInertInFixtures(t *testing.T) {
	rec := &recorder{}
	func() {
		defer func() { _ = recover() }()
		Run(rec, "testdata", walltime.Analyzer, "allowed")
	}()
	if rec.fatal != "" || len(rec.errors) != 0 {
		t.Fatalf("allow directive suppressed a fixture diagnostic: fatal=%q errors=%v", rec.fatal, rec.errors)
	}
}

// TestEnabledAnalyzerPassesFixtures is the control: the real analyzer
// satisfies the same annotations.
func TestEnabledAnalyzerPassesFixtures(t *testing.T) {
	rec := &recorder{}
	func() {
		defer func() { _ = recover() }()
		Run(rec, "../analyzers/walltime/testdata", walltime.Analyzer, "a")
	}()
	if rec.fatal != "" || len(rec.errors) != 0 {
		t.Fatalf("real analyzer failed its own fixtures: fatal=%q errors=%v", rec.fatal, rec.errors)
	}
}
