// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against `// want` annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest (unavailable offline).
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. A line expecting
// diagnostics carries one trailing comment of the form
//
//	// want "regexp" "regexp2"
//
// with one quoted regexp per expected diagnostic on that line. The run
// fails on any unmatched expectation (so a disabled or broken analyzer
// fails its fixture suite) and on any unexpected diagnostic. Standard
// library imports resolve through the compiler's source importer; any
// other import path resolves to a sibling fixture package under
// <testdata>/src, letting fixtures model sqpeer packages like network.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/callgraph"
	"sqpeer/internal/lint/load"
	"sqpeer/internal/lint/summary"
)

// T is the slice of *testing.T this package needs. It exists so the
// package's own tests can substitute a recorder and prove the property
// the fixtures are for: a disabled analyzer fails its suite.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run applies a to each fixture package path and reports mismatches on t.
func Run(t T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		root: filepath.Join(testdata, "src"),
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		done: map[string]*fixturePkg{},
	}
	for _, path := range pkgpaths {
		pkg, err := imp.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		var index *summary.Index
		if a.NeedsSummaries {
			// The importer's memo now holds the fixture package and every
			// fixture dependency it pulled in; summarize them all so the
			// interprocedural analyzers see cross-package facts exactly as
			// the driver builds them.
			index = summary.BuildIndex(imp.sourcePkgs(), nil)
		}
		check(t, a, fset, pkg, index)
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureImporter resolves std imports via the source importer and
// everything else from the testdata tree, memoized.
type fixtureImporter struct {
	root string
	fset *token.FileSet
	std  types.Importer
	done map[string]*fixturePkg
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(fi.root, path)
	if _, err := os.Stat(dir); err != nil {
		return fi.std.Import(path)
	}
	pkg, err := fi.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.types, nil
}

// load parses and type-checks one fixture package from testdata/src.
func (fi *fixtureImporter) load(path string) (*fixturePkg, error) {
	if pkg, ok := fi.done[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	pkg := &fixturePkg{path: path, files: files, types: tpkg, info: info}
	fi.done[path] = pkg
	return pkg, nil
}

// sourcePkgs adapts every memoized fixture package for the summary
// builder, sorted for determinism (BuildIndex topo-sorts anyway).
func (fi *fixtureImporter) sourcePkgs() []*callgraph.SourcePkg {
	paths := make([]string, 0, len(fi.done))
	for p := range fi.done {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*callgraph.SourcePkg, 0, len(paths))
	for _, p := range paths {
		pkg := fi.done[p]
		out = append(out, &callgraph.SourcePkg{
			Path: p, Fset: fi.fset, Files: pkg.files, Types: pkg.types, Info: pkg.info,
		})
	}
	return out
}

// expectation is one want regexp with its match state.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	line    int
	matched bool
}

// check runs the analyzer on one fixture package and diffs diagnostics
// against the // want annotations.
func check(t T, a *analysis.Analyzer, fset *token.FileSet, pkg *fixturePkg, index *summary.Index) {
	t.Helper()
	wants := map[string][]*expectation{} // filename -> expectations
	for _, f := range pkg.files {
		name := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				pats, err := parseWants(rest)
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", name, line, err)
					continue
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", name, line, p, err)
						continue
					}
					wants[name] = append(wants[name], &expectation{re: re, raw: p, line: line})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Summaries: index,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants[pos.Filename] {
			if !w.matched && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var names []string
	for name := range wants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, w := range wants[name] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", name, w.line, w.raw)
			}
		}
	}
}

// parseWants splits `"re1" "re2"` (or backquoted regexps, the x/tools
// convention) into the individual patterns.
func parseWants(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no regexps")
	}
	return out, nil
}
