// Package allowed proves that //lint:allow directives are inert inside
// fixture testdata: analysistest checks raw analyzer diagnostics against
// the // want annotations without the driver's suppression layer, so a
// fixture cannot accidentally (or deliberately) allow its way past an
// expectation.
package allowed

import "time"

func f() time.Time {
	//lint:allow walltime this directive must NOT suppress the fixture diagnostic
	return time.Now() // want `wall-clock time\.Now is forbidden`
}
