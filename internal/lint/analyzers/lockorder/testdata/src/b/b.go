// Fixture: consistent global order — nested acquisition is fine as long
// as every path agrees on the order, so this package is clean.
package b

import "sync"

type S struct{ mu sync.Mutex }

type T struct{ mu sync.Mutex }

func ab(s *S, t *T) {
	s.mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	s.mu.Unlock()
}

func lockT(t *T) {
	t.mu.Lock()
	t.mu.Unlock()
}

func abViaHelper(s *S, t *T) {
	s.mu.Lock()
	lockT(t)
	s.mu.Unlock()
}

// deferUnlock keeps s held to function end; the t acquisition still
// follows the same s-before-t order.
func deferUnlock(s *S, t *T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}
