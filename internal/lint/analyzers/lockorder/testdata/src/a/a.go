// Fixture: lock-order cycles, direct and through helpers.
package a

import "sync"

type S struct{ mu sync.Mutex }

type T struct{ mu sync.Mutex }

// ab and ba take the two locks in opposite orders: the classic ABBA
// deadlock. Both acquisition sites sit on the cycle and are reported.
func ab(s *S, t *T) {
	s.mu.Lock()
	t.mu.Lock() // want `lock-order cycle a\.S\.mu ↔ a\.T\.mu: a\.T\.mu acquired while holding a\.S\.mu`
	t.mu.Unlock()
	s.mu.Unlock()
}

func ba(s *S, t *T) {
	t.mu.Lock()
	s.mu.Lock() // want `lock-order cycle a\.S\.mu ↔ a\.T\.mu: a\.S\.mu acquired while holding a\.T\.mu`
	s.mu.Unlock()
	t.mu.Unlock()
}

// lockT acquires T behind a call, so abIndirect's edge is discovered
// interprocedurally and reported at the call site with the via chain.
func lockT(t *T) {
	t.mu.Lock()
	t.mu.Unlock()
}

func abIndirect(s *S, t *T) {
	s.mu.Lock()
	lockT(t) // want `lock-order cycle a\.S\.mu ↔ a\.T\.mu: .*via a\.lockT`
	s.mu.Unlock()
}

// Reacquisition of a held lock class: sync mutexes are not reentrant.
func lockS(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
}

func reentrant(s *S) {
	s.mu.Lock()
	lockS(s) // want `lock a\.S\.mu acquired while already held \(via a\.lockS\); sync mutexes are not reentrant`
	s.mu.Unlock()
}

// Sequential (non-nested) acquisitions contribute no edges: nothing is
// held when the second lock is taken.
func sequential(s *S, t *T) {
	t.mu.Lock()
	t.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// An early unlock closes the region: no edge from s to t here.
func handoff(s *S, t *T) {
	s.mu.Lock()
	s.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}
