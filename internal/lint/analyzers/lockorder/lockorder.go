// Package lockorder detects potential deadlocks from inconsistent lock
// acquisition order. The interprocedural summary tier (internal/lint/
// summary) contributes one edge A→B whenever code acquires lock B while
// holding lock A — directly, or by calling a function that (transitively)
// acquires B. Locks are identified at package level ("pkg.Type.field",
// "pkg.Type" for an embedded mutex, "pkg.var" for a package-level one):
// two goroutines taking the same pair of lock *classes* in opposite
// orders can deadlock no matter which instances they hold, so class
// granularity is the sound one for a global order.
//
// A cycle in the resulting graph is the finding. Two shapes exist:
//
//   - A→B→…→A across distinct locks: the classic ABBA deadlock. Every
//     package owning one of the cycle's edges reports it at that edge's
//     acquisition (or call) site, so a cross-package cycle surfaces in
//     each place that must change — or carry the reasoned allow.
//   - A→A: reacquiring a lock class already held. Go's sync mutexes are
//     not reentrant, so this is either a self-deadlock or two instances
//     of one class taken with no instance-order discipline; both deserve
//     a look, and the latter earns the //lint:allow that documents the
//     discipline.
//
// The admission package's clock-before-lock idiom — reading the
// caller-supplied clock callback before taking the bucket mutex — is
// naturally honored: a callback invoked before Lock contributes no edge,
// and locksafe separately guarantees no callback runs under the lock.
package lockorder

import (
	"sort"
	"strings"

	"sqpeer/internal/lint/analysis"
)

// Analyzer reports lock-order cycles; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name:           "lockorder",
	Doc:            "flag cycles in the global mutex acquisition-order graph (potential deadlock)",
	NeedsSummaries: true,
	Run:            run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Summaries == nil {
		return nil, nil
	}
	edges := pass.Summaries.AllLockEdges()

	// Strongly connected components over the lock graph: two locks are
	// mutually reachable exactly when they sit on a common cycle.
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.From == e.To {
			continue // reentrant edges are reported directly below
		}
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	comp := sccOf(adj)

	// Report each offending edge that lives in this pass's package:
	// positions elsewhere belong to other packages' passes.
	local := map[string]bool{}
	for _, f := range pass.Files {
		local[pass.Fset.Position(f.Pos()).Filename] = true
	}
	seen := map[string]bool{}
	for _, e := range edges {
		if !local[e.Site.File] {
			continue
		}
		dedup := e.From + "→" + e.To + "@" + e.Site.File + ":" + itoa(e.Site.Offset)
		if seen[dedup] {
			continue
		}
		pos := e.Site.Pos(pass.Fset)
		if !pos.IsValid() {
			continue
		}
		switch {
		case e.From == e.To:
			seen[dedup] = true
			pass.Reportf(pos, "lock %s acquired while already held%s; sync mutexes are not reentrant — release first or document the instance order",
				short(e.From), via(e.Via))
		case comp[e.From] != "" && comp[e.From] == comp[e.To]:
			seen[dedup] = true
			pass.Reportf(pos, "lock-order cycle %s: %s acquired while holding %s%s; acquire in one global order to avoid deadlock",
				cycleName(comp, e.From), short(e.To), short(e.From), via(e.Via))
		}
	}
	return nil, nil
}

// sccOf maps each node to a canonical component name (the sorted, joined
// member list) for components of size ≥ 2; acyclic nodes map to "".
func sccOf(adj map[string]map[string]bool) map[string]string {
	// Tarjan's algorithm, iterated over sorted roots for determinism.
	nodes := map[string]bool{}
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	members := map[string][]string{} // node → its component's members

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(adj[v]))
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) >= 2 {
				sort.Strings(comp)
				for _, m := range comp {
					members[m] = comp
				}
			}
		}
	}
	for _, n := range order {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}

	out := map[string]string{}
	for n, comp := range members {
		shorts := make([]string, len(comp))
		for i, m := range comp {
			shorts[i] = short(m)
		}
		out[n] = strings.Join(shorts, " ↔ ")
	}
	return out
}

// cycleName renders the component containing n.
func cycleName(comp map[string]string, n string) string { return comp[n] }

// short drops the import-path prefix of a lock ID for readable
// diagnostics: "sqpeer/internal/exec.Engine.mu" → "exec.Engine.mu".
func short(id string) string {
	slash := strings.LastIndexByte(id, '/')
	if slash < 0 {
		return id
	}
	return id[slash+1:]
}

// via renders the call-edge annotation.
func via(callee string) string {
	if callee == "" {
		return ""
	}
	return " (via " + short(callee) + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
