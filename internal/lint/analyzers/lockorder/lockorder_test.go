package lockorder

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a", "b")
}
