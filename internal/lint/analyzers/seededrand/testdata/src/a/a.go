// Package a exercises the seededrand analyzer: the global math/rand
// source is forbidden, explicit seeding is not.
package a

import "math/rand"

func bad() {
	_ = rand.Intn(10)                  // want `global math/rand source \(rand\.Intn\)`
	_ = rand.Int63()                   // want `global math/rand source \(rand\.Int63\)`
	_ = rand.Float64()                 // want `global math/rand source \(rand\.Float64\)`
	rand.Seed(42)                      // want `global math/rand source \(rand\.Seed\)`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand source \(rand\.Shuffle\)`
	_ = rand.New(sourceFrom())         // want `rand\.New must be seeded explicitly`
}

func sourceFrom() rand.Source { return rand.NewSource(1) }

func clean() {
	rng := rand.New(rand.NewSource(7))
	_ = rng.Intn(10)
	_ = rng.Float64()
	rng.Shuffle(3, func(i, j int) {})

	src := rand.NewSource(42)
	rng2 := rand.New(src)
	_ = rng2.Int63()

	h := holder{src: rand.NewSource(3)}
	_ = rand.New(h.src)
}

type holder struct{ src rand.Source }
