// Package seededrand enforces the repo's byte-identical-rerun contract
// on randomness: all pseudo-randomness must flow from an explicit
// rand.New(rand.NewSource(seed)) (or a *rand.Rand handed down from one),
// never from math/rand's process-global source, whose stream is shared
// across every caller in the binary and therefore depends on goroutine
// interleaving and unrelated code paths. The global functions
// (rand.Intn, rand.Shuffle, ...) and global re-seeding (rand.Seed) are
// flagged, as is rand.New over anything but a direct NewSource call or a
// named Source value.
package seededrand

import (
	"go/ast"
	"go/types"

	"sqpeer/internal/lint/analysis"
)

// constructors are the math/rand package functions that do not touch the
// global source.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer flags global math/rand use; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand's global source; require explicit rand.New(rand.NewSource(seed))",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				fn := analysis.FuncOf(pass.TypesInfo, e)
				if !randFunc(fn) {
					return true
				}
				if !constructors[fn.Name()] {
					pass.Reportf(e.Pos(),
						"global math/rand source (rand.%s) breaks same-seed reproducibility; draw from an explicit rand.New(rand.NewSource(seed))", fn.Name())
				}
			case *ast.CallExpr:
				fn := analysis.FuncOf(pass.TypesInfo, e.Fun)
				if randFunc(fn) && fn.Name() == "New" && len(e.Args) == 1 && !seededArg(pass, e.Args[0]) {
					pass.Reportf(e.Pos(),
						"rand.New must be seeded explicitly: pass rand.NewSource(seed) or a named rand.Source")
				}
			}
			return true
		})
	}
	return nil, nil
}

// randFunc reports whether fn is a package-level function of math/rand
// (v1 or v2). Methods on *rand.Rand have a receiver and are excluded.
func randFunc(fn *types.Func) bool {
	return analysis.PkgFunc(fn, "math/rand") || analysis.PkgFunc(fn, "math/rand/v2")
}

// seededArg accepts a direct rand.NewSource(...) call or a plain named
// value (a rand.Source built elsewhere and passed down).
func seededArg(pass *analysis.Pass, arg ast.Expr) bool {
	switch a := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		fn := analysis.FuncOf(pass.TypesInfo, a.Fun)
		return randFunc(fn) && fn.Name() == "NewSource"
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		// A field or package variable holding a Source.
		return analysis.FuncOf(pass.TypesInfo, a) == nil
	}
	return false
}
