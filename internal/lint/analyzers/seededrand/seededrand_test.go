package seededrand

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
