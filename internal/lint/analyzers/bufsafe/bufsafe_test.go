package bufsafe

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestBufsafe(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
