// Fixture: pooled wire-buffer lifecycle violations.
package a

import "rql"

var sink []byte

func double() {
	buf := rql.GetWireBuf()
	rql.PutWireBuf(buf)
	rql.PutWireBuf(buf) // want `wire buffer buf already returned to the pool`
}

func useAfter() {
	buf := rql.GetWireBuf()
	rql.PutWireBuf(buf)
	_ = len(buf) // want `wire buffer buf used after PutWireBuf`
}

func escapeThenPut(ch chan []byte) {
	buf := rql.GetWireBuf()
	ch <- buf
	rql.PutWireBuf(buf) // want `PutWireBuf on buffer buf that escaped`
}

// The legitimate lifecycle: get, grow through the passthrough helpers,
// put once.
func ok(ch chan int) {
	buf := rql.GetWireBuf()
	buf = rql.AppendBatch(buf, 1)
	buf = append(buf, 0x7f)
	rql.PutWireBuf(buf)
}

// retire is a put wrapper: the summary tier marks its parameter as put,
// so misuse through it is caught like a direct PutWireBuf.
func retire(b []byte) {
	rql.PutWireBuf(b)
}

func doubleViaHelper() {
	buf := rql.GetWireBuf()
	retire(buf)
	rql.PutWireBuf(buf) // want `wire buffer buf already returned to the pool`
}

// mint is a get wrapper: its result carries pooled identity.
func mint() []byte {
	return rql.GetWireBuf()
}

func useAfterViaHelpers() {
	buf := mint()
	retire(buf)
	_ = buf[:0] // want `wire buffer buf used after PutWireBuf`
}

// stash leaks its argument into a package-level variable; the summary
// tier marks the parameter as escaping.
func stash(b []byte) {
	sink = b
}

func escapeViaHelper() {
	buf := rql.GetWireBuf()
	stash(buf)
	rql.PutWireBuf(buf) // want `PutWireBuf on buffer buf that escaped`
}

func capturedByGoroutine(done chan struct{}) {
	buf := rql.GetWireBuf()
	go func() {
		_ = len(buf)
		close(done)
	}()
	rql.PutWireBuf(buf) // want `PutWireBuf on buffer buf that escaped`
}

func deferOK() {
	buf := rql.GetWireBuf()
	defer rql.PutWireBuf(buf)
	_ = len(buf)
}

func deferDouble() {
	buf := rql.GetWireBuf()
	defer rql.PutWireBuf(buf) // want `this deferred PutWireBuf is a double put`
	rql.PutWireBuf(buf)
}

// A put on an early-return branch does not poison the main path.
func branchPut(cond bool) {
	buf := rql.GetWireBuf()
	if cond {
		rql.PutWireBuf(buf)
		return
	}
	buf = append(buf, 1)
	rql.PutWireBuf(buf)
}

// Returning the buffer hands ownership to the caller; no finding.
func handOff() []byte {
	buf := rql.GetWireBuf()
	buf = rql.AppendBatch(buf, 2)
	return buf
}

func returnAfterPut() []byte {
	buf := rql.GetWireBuf()
	rql.PutWireBuf(buf)
	return buf // want `wire buffer buf returned to the caller after PutWireBuf`
}
