// Fixture stub of the rql wire-buffer pool API. The summary tier seeds
// the pool contract on any package whose path ends in "rql": GetWireBuf
// mints pooled buffers, PutWireBuf retires its argument, AppendBatch
// returns the buffer it was handed.
package rql

func GetWireBuf() []byte { return make([]byte, 0, 64) }

func PutWireBuf(b []byte) {}

func AppendBatch(b []byte, rows int) []byte { return b }
