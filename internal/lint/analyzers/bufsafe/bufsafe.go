// Package bufsafe checks the lifecycle of pooled wire buffers. The rql
// codec hands out reusable []byte buffers through GetWireBuf and takes
// them back through PutWireBuf; a buffer returned to the pool may be
// handed to any other goroutine immediately, so three misuses corrupt
// frames at a distance:
//
//   - double put — PutWireBuf twice on one buffer poisons the pool with
//     an aliased entry;
//   - use after put — reading or growing a buffer the pool may already
//     have re-issued;
//   - put of an escaped buffer — returning a buffer that was stored or
//     sent elsewhere (channel send, field/global store, goroutine
//     capture), so a live reference survives the put.
//
// The analysis is a per-function state machine over buffer-holding
// variables (live → put, live → escaped), with branch bodies scanned on
// cloned state the way locksafe scans held locks. Interprocedural
// effects come from the summary tier: a callee that (transitively) puts,
// escapes, returns its argument, or mints a pooled buffer is recognized
// through its FuncSummary, so wrappers like a local `retire(b []byte)`
// helper are as visible as rql.PutWireBuf itself. Deferred puts are
// applied at function end against the state the body left behind.
package bufsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/callgraph"
	"sqpeer/internal/lint/summary"
)

// Analyzer reports pooled-buffer lifecycle violations; see the package
// comment.
var Analyzer = &analysis.Analyzer{
	Name:           "bufsafe",
	Doc:            "flag double-put, use-after-put, and put-of-escaped pooled wire buffers (rql.GetWireBuf/PutWireBuf)",
	NeedsSummaries: true,
	Run:            run,
}

// bufState is one tracked buffer's lifecycle stage.
type bufState int

const (
	live    bufState = iota // owned here, not yet returned
	put                     // returned to the pool
	escaped                 // a reference left this function's control
)

func run(pass *analysis.Pass) (any, error) {
	if pass.Summaries == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, reported: map[token.Pos]bool{}}
			st := map[*types.Var]bufState{}
			c.scanStmts(fd.Body.List, st)
			c.applyDeferred(st)
		}
	}
	return nil, nil
}

// deferredPut is one `defer <put>(buf)` awaiting function end.
type deferredPut struct {
	v   *types.Var
	pos token.Pos
}

type checker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool // dedup use-after-put per use site
	deferred []deferredPut
}

// applyDeferred settles deferred puts against the state the body ended
// in: a buffer already put is a double put, an escaped one is a put of
// an escaped buffer.
func (c *checker) applyDeferred(st map[*types.Var]bufState) {
	for _, d := range c.deferred {
		switch st[d.v] {
		case put:
			c.reportOnce(d.pos, "wire buffer %s already returned to the pool; this deferred PutWireBuf is a double put", d.v.Name())
		case escaped:
			c.reportOnce(d.pos, "deferred PutWireBuf on buffer %s that escaped (stored or sent elsewhere); the pool would re-issue it while still referenced", d.v.Name())
		}
	}
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// scanStmts walks one statement list linearly; branch bodies get cloned
// state so a put on an early-return path doesn't poison the main path.
func (c *checker) scanStmts(stmts []ast.Stmt, st map[*types.Var]bufState) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			c.scanExpr(s.X, st)
		case *ast.AssignStmt:
			c.scanAssign(s, st)
		case *ast.DeferStmt:
			c.scanDefer(s, st)
		case *ast.GoStmt:
			// The goroutine owns whatever it is handed or captures.
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				c.markCaptured(lit, st)
			}
			for _, a := range s.Call.Args {
				if v := c.trackedVar(a, st); v != nil {
					c.escape(v, a.Pos(), st)
					continue
				}
				c.scanExpr(a, st)
			}
		case *ast.SendStmt:
			c.scanExpr(s.Chan, st)
			if v := c.trackedVar(s.Value, st); v != nil {
				c.escape(v, s.Value.Pos(), st)
			} else {
				c.scanExpr(s.Value, st)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if v := c.trackedVar(r, st); v != nil {
					if st[v] == put {
						c.reportOnce(r.Pos(), "wire buffer %s returned to the caller after PutWireBuf; the pool may already have re-issued it", v.Name())
					}
					// Ownership transfers out; the caller's checker takes
					// over (ReturnsPooled wrappers are the legitimate case).
					delete(st, v)
					continue
				}
				c.scanExpr(r, st)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				c.scanStmts([]ast.Stmt{s.Init}, st)
			}
			c.scanExpr(s.Cond, st)
			c.scanStmts(s.Body.List, clone(st))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				c.scanStmts(e.List, clone(st))
			case *ast.IfStmt:
				c.scanStmts([]ast.Stmt{e}, clone(st))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				c.scanStmts([]ast.Stmt{s.Init}, st)
			}
			c.scanExpr(s.Cond, st)
			if s.Post != nil {
				c.scanStmts([]ast.Stmt{s.Post}, clone(st))
			}
			c.scanStmts(s.Body.List, clone(st))
		case *ast.RangeStmt:
			c.scanExpr(s.X, st)
			c.scanStmts(s.Body.List, clone(st))
		case *ast.BlockStmt:
			c.scanStmts(s.List, clone(st))
		case *ast.SwitchStmt:
			if s.Init != nil {
				c.scanStmts([]ast.Stmt{s.Init}, st)
			}
			c.scanExpr(s.Tag, st)
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.scanStmts(cc.Body, clone(st))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.scanStmts(cc.Body, clone(st))
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					branch := clone(st)
					if cc.Comm != nil {
						c.scanStmts([]ast.Stmt{cc.Comm}, branch)
					}
					c.scanStmts(cc.Body, branch)
				}
			}
		case *ast.LabeledStmt:
			c.scanStmts([]ast.Stmt{s.Stmt}, st)
		default:
			ast.Inspect(stmt, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					c.scanExpr(e, st)
					return false
				}
				return true
			})
		}
	}
}

// scanAssign handles buffer births (x := GetWireBuf()), identity
// passthrough (x = AppendBatch(x, ...), x = append(x, ...)), aliasing,
// stores that escape, and plain overwrites that end tracking.
func (c *checker) scanAssign(s *ast.AssignStmt, st map[*types.Var]bufState) {
	if len(s.Lhs) != len(s.Rhs) {
		for _, r := range s.Rhs {
			c.scanExpr(r, st)
		}
		return
	}
	for i, rhs := range s.Rhs {
		lhs := s.Lhs[i]
		lhsVar := varOf(c.pass.TypesInfo, lhs)

		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if src := c.passthroughVar(call, st); src != nil {
				// The callee returns the buffer it was handed: the result
				// carries the argument's identity and state.
				c.handleCall(call, st)
				if lhsVar != nil && isBufVar(lhsVar) {
					st[lhsVar] = st[src]
				}
				continue
			}
			sum := c.summaryOf(call)
			c.handleCall(call, st)
			if sum != nil && sum.ReturnsPooled {
				if lhsVar != nil && isBufVar(lhsVar) {
					st[lhsVar] = live
				}
				continue
			}
			if lhsVar != nil {
				delete(st, lhsVar) // overwritten by an unrelated value
			}
			continue
		}

		if v := c.trackedVar(rhs, st); v != nil {
			if lhsVar != nil && isLocalVar(lhsVar) {
				st[lhsVar] = st[v] // alias; both names share the buffer
			} else if lhsVar != nil {
				// Stored into a package-level variable or a field var: the
				// reference outlives this frame.
				c.escape(v, rhs.Pos(), st)
			} else if !isBlank(lhs) {
				// Stored into a field, global, index, or composite target:
				// a reference now lives beyond this function's control.
				c.escape(v, rhs.Pos(), st)
			}
			continue
		}
		c.scanExpr(rhs, st)
		if lhsVar != nil {
			delete(st, lhsVar)
		}
	}
	for _, l := range s.Lhs {
		if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
			c.scanExpr(l, st)
		}
	}
}

// scanDefer records deferred puts for function-end settlement and scans
// everything else as an ordinary call.
func (c *checker) scanDefer(s *ast.DeferStmt, st map[*types.Var]bufState) {
	sum := c.summaryOf(s.Call)
	if sum != nil && len(sum.PutsParams) == 1 && len(s.Call.Args) > sum.PutsParams[0] {
		if v := varOf(c.pass.TypesInfo, s.Call.Args[sum.PutsParams[0]]); v != nil && isBufVar(v) {
			c.deferred = append(c.deferred, deferredPut{v: v, pos: s.Pos()})
			return
		}
	}
	c.scanExpr(s.Call, st)
}

// scanExpr walks an expression, applying call effects and catching uses
// of already-put buffers.
func (c *checker) scanExpr(e ast.Expr, st map[*types.Var]bufState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.markCaptured(x, st)
			return false
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if v := c.trackedVar(el, st); v != nil {
					c.escape(v, el.Pos(), st)
				}
			}
		case *ast.CallExpr:
			c.handleCall(x, st)
			return false
		case *ast.Ident:
			if v := c.trackedVar(x, st); v != nil && st[v] == put {
				c.reportOnce(x.Pos(), "wire buffer %s used after PutWireBuf returned it to the pool", v.Name())
			}
		}
		return true
	})
}

// handleCall applies one call's summary effects to its tracked-variable
// arguments and scans the rest.
func (c *checker) handleCall(call *ast.CallExpr, st map[*types.Var]bufState) {
	sum := c.summaryOf(call)
	c.scanExpr(call.Fun, st)
	for i, a := range call.Args {
		v := c.trackedVar(a, st)
		if v == nil {
			c.scanExpr(a, st)
			continue
		}
		switch {
		case sum != nil && containsInt(sum.PutsParams, i):
			switch st[v] {
			case put:
				c.reportOnce(a.Pos(), "wire buffer %s already returned to the pool; this put is a double put", v.Name())
			case escaped:
				c.reportOnce(a.Pos(), "PutWireBuf on buffer %s that escaped (stored or sent elsewhere); the pool would re-issue it while still referenced", v.Name())
			default:
				st[v] = put
			}
		case sum != nil && containsInt(sum.EscapesParams, i):
			c.escape(v, a.Pos(), st)
		default:
			// Reading use (len, copy, a passthrough like append/AppendBatch,
			// or an unknown callee): legal while live, a bug after put.
			if st[v] == put {
				c.reportOnce(a.Pos(), "wire buffer %s used after PutWireBuf returned it to the pool", v.Name())
			}
		}
	}
}

// escape transitions a buffer out of this function's control; escaping a
// buffer the pool already owns is a use-after-put.
func (c *checker) escape(v *types.Var, pos token.Pos, st map[*types.Var]bufState) {
	if st[v] == put {
		c.reportOnce(pos, "wire buffer %s used after PutWireBuf returned it to the pool", v.Name())
		return
	}
	st[v] = escaped
}

// markCaptured treats tracked buffers referenced inside a function
// literal as escaping: the literal may run on another goroutine or after
// this frame returns.
func (c *checker) markCaptured(lit *ast.FuncLit, st map[*types.Var]bufState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := c.trackedVar(id, st); v != nil {
				c.escape(v, id.Pos(), st)
			}
		}
		return true
	})
}

// passthroughVar resolves calls whose result is identity-equal to a
// tracked argument: summary ReturnsParams (e.g. rql.AppendBatch) and the
// append builtin.
func (c *checker) passthroughVar(call *ast.CallExpr, st map[*types.Var]bufState) *types.Var {
	if isAppend(c.pass.TypesInfo, call) && len(call.Args) > 0 {
		return c.trackedVar(call.Args[0], st)
	}
	sum := c.summaryOf(call)
	if sum == nil {
		return nil
	}
	for _, i := range sum.ReturnsParams {
		if i < len(call.Args) {
			if v := c.trackedVar(call.Args[i], st); v != nil {
				return v
			}
		}
	}
	return nil
}

// summaryOf looks up the interprocedural summary of a call's static
// callee, if any.
func (c *checker) summaryOf(call *ast.CallExpr) *summary.FuncSummary {
	callee := callgraph.CalleeOf(c.pass.TypesInfo, call)
	return c.pass.Summaries.FuncOf(callee)
}

// trackedVar resolves an expression to a variable currently tracked in
// st.
func (c *checker) trackedVar(e ast.Expr, st map[*types.Var]bufState) *types.Var {
	v := varOf(c.pass.TypesInfo, e)
	if v == nil {
		return nil
	}
	if _, ok := st[v]; !ok {
		return nil
	}
	return v
}

// varOf resolves a plain identifier to its variable object.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isLocalVar reports whether v is function-local (not a package-level
// variable or struct field).
func isLocalVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() != v.Pkg().Scope() && !v.IsField()
}

// isBufVar reports whether v is a []byte local worth tracking.
func isBufVar(v *types.Var) bool {
	sl, ok := v.Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isAppend recognizes the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isBlank reports the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func clone(m map[*types.Var]bufState) map[*types.Var]bufState {
	out := make(map[*types.Var]bufState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
