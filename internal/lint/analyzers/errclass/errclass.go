// Package errclass protects the PR2 failure-classification contract:
// callers must ask what an error *means* (errors.Is, errors.As,
// network.Transient) rather than what it *is*. Direct ==/!= against a
// non-nil error value breaks silently the moment anyone wraps the error
// with fmt.Errorf("...: %w", err) — which the retry/backoff and
// partial-answer paths do — and string comparison of err.Error() is the
// same bug with extra steps. Nil checks (err == nil, err != nil) remain
// the idiomatic success test and are never flagged.
package errclass

import (
	"go/ast"
	"go/token"

	"sqpeer/internal/lint/analysis"
)

// Analyzer flags identity comparison of errors; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "require errors.Is/errors.As/network.Transient instead of ==/!= on non-nil error values",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, e)
			case *ast.SwitchStmt:
				checkSwitch(pass, e)
			}
			return true
		})
	}
	return nil, nil
}

func checkBinary(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if isNil(pass, e.X) || isNil(pass, e.Y) {
		return
	}
	if isErrorExpr(pass, e.X) || isErrorExpr(pass, e.Y) {
		pass.Reportf(e.Pos(),
			"comparing error values with %s misses wrapped errors; use errors.Is (or network.Transient for retryability)", e.Op)
		return
	}
	if isErrorString(pass, e.X) || isErrorString(pass, e.Y) {
		pass.Reportf(e.Pos(),
			"comparing err.Error() text is fragile; compare the error itself with errors.Is")
	}
}

// checkSwitch flags `switch err { case ErrFoo: ... }`, which compares
// with == per case. A switch whose cases are all nil is a plain success
// test and stays legal.
func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorExpr(pass, s.Tag) {
		return
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, v := range cc.List {
			if !isNil(pass, v) {
				pass.Reportf(s.Pos(),
					"switch on an error value compares with ==; use if/else with errors.Is per sentinel")
				return
			}
		}
	}
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isErrorExpr reports whether e's static type is the error interface.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && analysis.IsErrorType(tv.Type)
}

// isErrorString matches err.Error() call results.
func isErrorString(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorExpr(pass, sel.X)
}
