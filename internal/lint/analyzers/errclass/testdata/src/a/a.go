// Package a exercises the errclass analyzer: error values are
// classified with errors.Is/As, never compared by identity or text.
package a

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func bad(err error) {
	if err == errSentinel { // want `comparing error values with == misses wrapped errors`
		return
	}
	if err != errSentinel { // want `comparing error values with != misses wrapped errors`
		return
	}
	if err.Error() == "EOF" { // want `comparing err\.Error\(\) text is fragile`
		return
	}
	switch err { // want `switch on an error value compares with ==`
	case errSentinel:
	}
}

func clean(err error) error {
	if err == nil {
		return nil
	}
	if err != nil && errors.Is(err, errSentinel) {
		return fmt.Errorf("wrapped: %w", err)
	}
	var target *myError
	if errors.As(err, &target) {
		return target
	}
	switch err {
	case nil:
	}
	a, b := 1, 2
	if a == b { // non-error comparisons stay legal
		return nil
	}
	return err
}

type myError struct{}

func (*myError) Error() string { return "my" }
