package errclass

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestErrclass(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
