package walltime

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
