// Package walltime forbids wall-clock reads and sleeps in the SQPeer
// middleware. Every cost the reproduction argues about (latency,
// deadlines, retry backoff) is charged to the simulated logical clock
// (network.Counters.SimulatedMS, CallWithin deadlines), so a stray
// time.Now or time.Sleep makes same-seed reruns diverge and couples
// results to host load. The two legitimate exceptions — the
// network.SetRealLatency sleep shim and the harness wall-clock
// throughput reporting — carry //lint:allow walltime directives at their
// single definition sites.
package walltime

import (
	"go/ast"

	"sqpeer/internal/lint/analysis"
)

// forbidden lists package time functions that read or wait on the wall
// clock. Pure constructors/conversions (time.Duration, time.Unix) and
// formatting stay legal.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer flags wall-clock use; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time (time.Now/Sleep/Since/...) in internal packages; use the logical clock",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, sel)
			if analysis.PkgFunc(fn, "time") && forbidden[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s is forbidden here: charge the logical clock (network SimulatedMS / CallWithin) or route through harness.Clock", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
