// HTTP debug-listener fixtures: pins the one sanctioned wall-clock
// shape on the operations plane (internal/debugsrv). The listener's
// /healthz uptime is operator-facing wall time that never feeds
// results, so it may read the wall clock — but only through a confined
// two-function shim (one anchor read at Start, one paired elapsed
// read), each carrying //lint:allow walltime at its definition site.
// Inside analysistest the directives do not suppress, so the shim's two
// reads appear here as `want` lines: the fixture both documents the
// shape and proves the analyzer still sees through it. Anything beyond
// the shim — per-request stamps, wall-paced refresh loops — is flagged
// with no allowance.
package a

import "time"

// wallStart is the confined anchor, mirroring debugsrv.wallStart.
type wallStart struct{ t time.Time }

// newWallStart is the single anchor read, taken once at listener start.
func newWallStart() wallStart {
	return wallStart{t: time.Now()} // want `wall-clock time\.Now is forbidden`
}

// uptimeSeconds is the paired elapsed read.
func (w wallStart) uptimeSeconds() float64 {
	return time.Since(w.t).Seconds() // want `wall-clock time\.Since is forbidden`
}

// badPerRequestStamp stamps a response with the wall clock directly —
// outside the shim, never allowed.
func badPerRequestStamp() string {
	return time.Now().Format(time.RFC3339) // want `wall-clock time\.Now is forbidden`
}

// badWallRefreshLoop paces an endpoint's cache refresh off the wall
// clock; refresh must be driven by requests or the logical clock.
func badWallRefreshLoop(stop chan struct{}, refresh func()) {
	t := time.NewTicker(time.Minute) // want `wall-clock time\.NewTicker is forbidden`
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			refresh()
		}
	}
}

// cleanUptimeHandler consumes the shim without touching the clock: the
// sanctioned consumer shape for /healthz.
func cleanUptimeHandler(start wallStart) float64 {
	return start.uptimeSeconds()
}
