// Gossip-cadence fixtures: a gossip/probe loop must be driven by the
// harness's logical clock (an injected tick counter), never by wall
// time — wall-paced gossip makes detect-and-converge bounds and reruns
// nondeterministic.
package a

import "time"

func probeTarget() {}

// badTickerGossip paces gossip rounds off the wall clock.
func badTickerGossip(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want `wall-clock time\.NewTicker is forbidden`
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			probeTarget()
		}
	}
}

// badSleepGossip throttles probes with a wall-clock sleep.
func badSleepGossip(rounds int) {
	for i := 0; i < rounds; i++ {
		probeTarget()
		time.Sleep(100 * time.Millisecond) // want `wall-clock time\.Sleep is forbidden`
	}
}

// cleanLogicalGossip advances on an injected logical tick: one probe per
// Tick call, no timers anywhere.
type gossiper struct {
	tick int
}

func (g *gossiper) Tick() {
	g.tick++
	probeTarget()
}
