// Package a exercises the walltime analyzer: every wall-clock read or
// wait is flagged; pure time arithmetic is not.
package a

import "time"

func bad() {
	_ = time.Now()                  // want `wall-clock time\.Now is forbidden`
	time.Sleep(time.Millisecond)    // want `wall-clock time\.Sleep is forbidden`
	_ = time.Since(time.Time{})     // want `wall-clock time\.Since is forbidden`
	_ = time.Until(time.Time{})     // want `wall-clock time\.Until is forbidden`
	<-time.After(time.Second)       // want `wall-clock time\.After is forbidden`
	_ = time.Tick(time.Second)      // want `wall-clock time\.Tick is forbidden`
	_ = time.NewTimer(time.Second)  // want `wall-clock time\.NewTimer is forbidden`
	_ = time.NewTicker(time.Second) // want `wall-clock time\.NewTicker is forbidden`
	f := time.Now                   // want `wall-clock time\.Now is forbidden`
	_ = f
}

func clean() time.Duration {
	d := 5 * time.Millisecond
	t := time.Date(2004, 3, 14, 0, 0, 0, 0, time.UTC)
	_ = t.Add(d)
	_ = time.Duration(42).String()
	return d
}
