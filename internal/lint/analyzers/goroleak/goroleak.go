// Package goroleak flags goroutines with no bounded exit. A spawned body
// whose only control flow is an inescapable infinite loop — no return,
// no break that targets the loop, no panic — runs until process death,
// holding its stack, its captures, and whatever channels it blocks on.
// In a long-lived peer every such spawn is a leak.
//
// Three spawn shapes are checked:
//
//   - `go func(){...}()` — the literal body is analyzed inline at the
//     spawn site (summary.BodyRunsForever), including calls to functions
//     whose summaries mark them RunsForever;
//   - `go f(...)` — f's interprocedural summary decides;
//   - callbacks: when a callee's summary says it launches parameter i as
//     a goroutine (SpawnsParams), the concrete function supplied at the
//     call site is checked there — the helper is innocent, the unbounded
//     callback is the bug, and the diagnostic lands where the fix goes.
//
// Loops that wait on a stop channel, a context, or a closed-connection
// error all have a return on some path and pass; `for { work() }` with
// no way out does not, and earns either an exit condition or a reasoned
// //lint:allow naming the process-lifetime justification.
package goroleak

import (
	"go/ast"
	"go/types"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/callgraph"
	"sqpeer/internal/lint/summary"
)

// Analyzer reports goroutines without a bounded exit; see the package
// comment.
var Analyzer = &analysis.Analyzer{
	Name:           "goroleak",
	Doc:            "require every spawned goroutine to have a bounded exit (return, breaking select, or panic)",
	NeedsSummaries: true,
	Run:            run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Summaries == nil {
		return nil, nil
	}
	spkg := &callgraph.SourcePkg{
		Path: pass.Pkg.Path(), Fset: pass.Fset, Files: pass.Files,
		Types: pass.Pkg, Info: pass.TypesInfo,
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				checkSpawn(pass, spkg, s)
			case *ast.CallExpr:
				checkCallbackArgs(pass, spkg, s)
			}
			return true
		})
	}
	return nil, nil
}

// checkSpawn analyzes one go statement's spawned function.
func checkSpawn(pass *analysis.Pass, spkg *callgraph.SourcePkg, s *ast.GoStmt) {
	fun := ast.Unparen(s.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if summary.BodyRunsForever(spkg, pass.Summaries, lit.Body) {
			pass.Reportf(s.Pos(), "goroutine runs forever: no return, breaking select, or panic exits its loop; add a stop condition")
		}
		return
	}
	callee := callgraph.CalleeOf(pass.TypesInfo, s.Call)
	if sum := pass.Summaries.FuncOf(callee); sum != nil && sum.RunsForever {
		pass.Reportf(s.Pos(), "goroutine %s runs forever: no return, breaking select, or panic exits its loop; add a stop condition", callee.Name())
	}
}

// checkCallbackArgs checks function arguments handed to callees that
// launch them as goroutines.
func checkCallbackArgs(pass *analysis.Pass, spkg *callgraph.SourcePkg, call *ast.CallExpr) {
	callee := callgraph.CalleeOf(pass.TypesInfo, call)
	sum := pass.Summaries.FuncOf(callee)
	if sum == nil || len(sum.SpawnsParams) == 0 {
		return
	}
	for _, i := range sum.SpawnsParams {
		if i >= len(call.Args) {
			continue
		}
		arg := ast.Unparen(call.Args[i])
		if lit, ok := arg.(*ast.FuncLit); ok {
			if summary.BodyRunsForever(spkg, pass.Summaries, lit.Body) {
				pass.Reportf(arg.Pos(), "callback launched as a goroutine by %s runs forever: add a stop condition or bound its loop", callee.Name())
			}
			continue
		}
		if obj := funcOf(pass.TypesInfo, arg); obj != nil {
			if s := pass.Summaries.FuncOf(obj); s != nil && s.RunsForever {
				pass.Reportf(arg.Pos(), "callback %s launched as a goroutine by %s runs forever: add a stop condition or bound its loop", obj.Name(), callee.Name())
			}
		}
	}
}

// funcOf resolves a plain identifier or selector argument to the
// function it names, if any.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[x].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[x.Sel].(*types.Func)
		return f
	}
	return nil
}
