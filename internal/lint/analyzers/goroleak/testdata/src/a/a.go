// Fixture: goroutines with and without bounded exits.
package a

func forever() {
	for {
	}
}

func bounded(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		}
	}
}

func spawnBad() {
	go forever() // want `goroutine forever runs forever`
	go func() {  // want `goroutine runs forever`
		for {
		}
	}()
}

func spawnGood(stop chan struct{}) {
	go bounded(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			}
		}
	}()
}

// spawnUntilError's loop exits when work fails: bounded.
func spawnUntilError(work func() error) {
	go func() {
		for {
			if work() != nil {
				return
			}
		}
	}()
}

// launch spawns its callback, so the callback's exit condition is
// checked where the concrete function is supplied.
func launch(f func()) {
	go f()
}

func viaParam(stop chan struct{}) {
	launch(forever) // want `callback forever launched as a goroutine by launch runs forever`
	launch(func() { // want `callback launched as a goroutine by launch runs forever`
		for {
		}
	})
	launch(func() {
		<-stop
	})
}

// spawnForeverTransitively runs forever through a callee, so spawning it
// is as unbounded as spawning forever directly.
func spin() {
	forever()
}

func spawnTransitive() {
	go spin() // want `goroutine spin runs forever`
}
