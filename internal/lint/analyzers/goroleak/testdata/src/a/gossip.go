// Gossip-loop fixtures: a background gossip pump must have a bounded
// exit (stop channel or error return); a pump that loops forever leaks.
package a

func gossipOnce() error { return nil }

// pumpForever relays gossip with no exit condition: unbounded.
func pumpForever(updates chan []byte) {
	for {
		<-updates
	}
}

func spawnGossipBad(updates chan []byte) {
	go pumpForever(updates) // want `goroutine pumpForever runs forever`
	go func() {             // want `goroutine runs forever`
		for {
			_ = gossipOnce()
		}
	}()
}

func spawnGossipGood(stop chan struct{}, updates chan []byte) {
	// The bounded-exit gossip pump: every iteration can observe stop.
	go func() {
		for {
			select {
			case <-stop:
				return
			case u := <-updates:
				_ = u
			}
		}
	}()
	// Error-bounded variant: the pump dies with its transport.
	go func() {
		for {
			if gossipOnce() != nil {
				return
			}
		}
	}()
}
