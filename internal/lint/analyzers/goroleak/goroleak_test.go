package goroleak

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
