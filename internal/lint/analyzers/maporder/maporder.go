// Package maporder guards the PR1 determinism contract: map iteration
// order must never leak into answers, annotations, or serialized output.
// Go randomizes map-range order per run, so any loop over a map that
// accumulates ordered output is a reproducibility bug unless the result
// is sorted before use.
//
// The analyzer flags a `for ... range m` over a map when the body
//
//   - appends to a slice declared outside the loop and no sort call
//     mentioning that slice follows the loop in the same function
//     (sort/slices package calls and sort-named local wrappers count),
//   - concatenates onto an outer string variable (s += ...),
//   - writes directly (fmt print family, strings.Builder/bytes.Buffer
//     writes, io.Writer.Write, json Encode), or
//   - sends on a channel.
//
// Loops that only aggregate order-insensitively (building another map or
// set, counting, summing, taking a max) are clean. Sites where order is
// genuinely irrelevant downstream (e.g. the slice feeds a set) carry a
// reasoned //lint:allow maporder directive.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"sqpeer/internal/lint/analysis"
)

// Analyzer flags order-leaking map iteration; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map-range loops whose iteration order can leak into output without a sort",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Walk function bodies so each range statement knows its
		// enclosing function (for the sort-after-loop check).
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc inspects one function body for map-range loops. Nested
// function literals are handled by their own checkFunc call (run's
// Inspect visits them), so they are skipped here except as sort sites.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return true
		}
		checkLoop(pass, rs, body)
		return true
	})
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkLoop hunts for order sinks inside one map-range body.
func checkLoop(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		// A nested map-range reports its own body once; descending here
		// too would duplicate every diagnostic inside it.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(pass, inner) {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, s, rs, fnBody)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside map-range loop publishes map iteration order; collect and sort first")
		case *ast.CallExpr:
			if name, bad := emitCall(pass, s); bad {
				pass.Reportf(s.Pos(),
					"%s inside map-range loop emits map iteration order; collect into a slice and sort first", name)
			}
		}
		return true
	})
}

// checkAssign flags `outer = append(outer, ...)` without a later sort and
// `outer += ...` string accumulation.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		obj := assignedObj(pass, as.Lhs[i])
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if ok && isBuiltinAppend(pass, call) && !sortedAfter(pass, obj, rs, fnBody) {
			pass.Reportf(as.Pos(),
				"append to %s inside map-range loop with no later sort leaks map iteration order; sort %s before use or //lint:allow maporder with the reason order is immaterial", obj.Name(), obj.Name())
		}
	}
	if as.Tok.String() == "+=" && len(as.Lhs) == 1 {
		obj := assignedObj(pass, as.Lhs[0])
		if obj != nil && declaredOutside(obj, rs) && isString(obj.Type()) {
			pass.Reportf(as.Pos(),
				"string concatenation onto %s inside map-range loop leaks map iteration order; collect and sort first", obj.Name())
		}
	}
}

func assignedObj(pass *analysis.Pass, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sortedAfter reports whether, after the loop ends, the enclosing
// function sorts obj — a call into sort/slices, or into any function
// whose name contains "sort" (local wrappers like sortPeerIDs), with obj
// among the arguments. This is the canonical collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, obj types.Object, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		p := fn.Pkg().Path()
		if p != "sort" && p != "slices" && !strings.Contains(strings.ToLower(fn.Name()), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func mentions(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			hit = true
		}
		return !hit
	})
	return hit
}

// emitCall classifies calls that serialize or print their arguments in
// call order: the fmt print family, Builder/Buffer/io.Writer writes, and
// streaming JSON encodes.
func emitCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
	if fn == nil {
		return "", false
	}
	if analysis.PkgFunc(fn, "fmt") {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	recv := analysis.MethodRecvNamed(fn)
	if recv == nil {
		return "", false
	}
	switch {
	case analysis.NamedFrom(recv, "strings", "Builder") && isWrite(fn.Name()):
		return "strings.Builder." + fn.Name(), true
	case analysis.NamedFrom(recv, "bytes", "Buffer") && isWrite(fn.Name()):
		return "bytes.Buffer." + fn.Name(), true
	case analysis.NamedFrom(recv, "encoding/json", "Encoder") && fn.Name() == "Encode":
		return "json.Encoder.Encode", true
	}
	return "", false
}

func isWrite(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}
