// Package a exercises the maporder analyzer: map iteration order must
// not reach output without a sort in between.
package a

import (
	"fmt"
	"sort"
	"strings"
)

// badAppend collects map keys and returns them unsorted.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map-range loop with no later sort`
	}
	return out
}

// badPrint emits entries straight from the loop.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside map-range loop emits map iteration order`
	}
}

// badBuilder streams into a strings.Builder in map order.
func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `strings\.Builder\.WriteString inside map-range loop emits map iteration order`
	}
	return b.String()
}

// badSend publishes keys on a channel in map order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map-range loop publishes map iteration order`
	}
}

// badConcat accumulates a string in map order.
func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation onto s inside map-range loop`
	}
	return s
}

// cleanSorted is the canonical collect-then-sort idiom.
func cleanSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cleanHelper sorts through a local wrapper, which also counts.
func cleanHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) { sort.Strings(s) }

// cleanAggregate only builds order-insensitive results.
func cleanAggregate(m map[string]int) (int, map[string]bool) {
	total := 0
	set := map[string]bool{}
	for k, v := range m {
		total += v
		set[k] = true
	}
	return total, set
}

// cleanLocal appends to a slice declared inside the loop body.
func cleanLocal(m map[string][]string) {
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		_ = local
	}
}

// nestedOnce: an append under two map-ranges is reported exactly once.
func nestedOnce(m map[string]map[string]int) []string {
	var out []string
	for _, inner := range m {
		for k := range inner {
			out = append(out, k) // want `append to out inside map-range loop with no later sort`
		}
	}
	return out
}
