package maporder

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
