package jsonrow

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestJSONRow(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
