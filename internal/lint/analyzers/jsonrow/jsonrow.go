// Package jsonrow forbids JSON (de)serialization of row-carrying types
// on the data plane. Since the columnar rewrite, result rows travel as
// length-prefixed binary batch frames (rql.AppendBatch / rql.DecodeBatch)
// inside channel packets; a stray json.Marshal of an rql.ResultSet, Row
// or Batch in internal/exec or internal/channel silently reintroduces the
// per-row allocation storm the batch plane removed. Control bodies
// (PlanChange, Stats, trace records, the packet envelope itself) stay
// JSON — they carry no rows, so the analyzer does not match them. The two
// legitimate row-JSON sites — the RowWire ablation's encoder and the
// mixed-mode decoder at the root — carry //lint:allow jsonrow directives.
package jsonrow

import (
	"go/ast"
	"go/types"

	"sqpeer/internal/lint/analysis"
)

// rowTypes are the rql types whose presence anywhere in a value's type
// makes JSON-encoding it a data-plane violation.
var rowTypes = map[string]bool{
	"Row":       true,
	"ResultSet": true,
	"Batch":     true,
}

// Analyzer flags row-carrying JSON; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "jsonrow",
	Doc:  "forbid json.Marshal/Unmarshal of row-carrying rql types (ResultSet, Row, Batch) on the data plane; rows travel as binary batch frames",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
			if !analysis.PkgFunc(fn, "encoding/json") {
				return true
			}
			var arg ast.Expr
			switch fn.Name() {
			case "Marshal", "MarshalIndent":
				if len(call.Args) > 0 {
					arg = call.Args[0]
				}
			case "Unmarshal":
				if len(call.Args) > 1 {
					arg = call.Args[1]
				}
			}
			if arg == nil {
				return true
			}
			if name := rowTypeIn(pass.TypesInfo.TypeOf(arg), map[types.Type]bool{}, 0); name != "" {
				pass.Reportf(call.Pos(),
					"json.%s of row-carrying type rql.%s: data-plane rows travel as binary batch frames (rql.AppendBatch/DecodeBatch); JSON is for control packets only",
					fn.Name(), name)
			}
			return true
		})
	}
	return nil, nil
}

// maxDepth bounds the structural walk: row types sit at most a few
// levels down any realistic wire body (pointer → struct → slice → type).
const maxDepth = 6

// rowTypeIn walks t's structure looking for a named rql row type,
// returning its name or "". The walk dereferences pointers, slices,
// arrays, maps and struct fields; the seen set makes recursive types
// terminate.
func rowTypeIn(t types.Type, seen map[types.Type]bool, depth int) string {
	if t == nil || depth > maxDepth || seen[t] {
		return ""
	}
	seen[t] = true
	switch v := t.(type) {
	case *types.Named:
		if obj := v.Obj(); obj != nil && obj.Pkg() != nil &&
			analysis.PkgPathTail(obj.Pkg().Path(), "rql") && rowTypes[obj.Name()] {
			return obj.Name()
		}
		return rowTypeIn(v.Underlying(), seen, depth+1)
	case *types.Pointer:
		return rowTypeIn(v.Elem(), seen, depth+1)
	case *types.Slice:
		return rowTypeIn(v.Elem(), seen, depth+1)
	case *types.Array:
		return rowTypeIn(v.Elem(), seen, depth+1)
	case *types.Map:
		if name := rowTypeIn(v.Key(), seen, depth+1); name != "" {
			return name
		}
		return rowTypeIn(v.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if name := rowTypeIn(v.Field(i).Type(), seen, depth+1); name != "" {
				return name
			}
		}
	}
	return ""
}
