// Package rql is a fixture mirror of the real sqpeer/internal/rql row
// types: the analyzer matches any package whose import path ends in
// "rql", so these shapes stand in for the real ones.
package rql

// Term stands in for rdf.Term.
type Term struct{ Value string }

// Row mirrors rql.Row (a named map type).
type Row map[string]Term

// ResultSet mirrors rql.ResultSet.
type ResultSet struct {
	Vars []string
	Rows []Row
}

// Batch mirrors the columnar rql.Batch.
type Batch struct {
	Vars []string
	Cols [][]int32
	Dict []Term
}
