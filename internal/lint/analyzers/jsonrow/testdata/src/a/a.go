// Package a exercises the jsonrow analyzer: JSON touching row-carrying
// rql types is flagged — directly, through pointers, slices, and struct
// embedding — while control-plane JSON stays legal.
package a

import (
	"encoding/json"

	"rql"
)

// resultsBody embeds rows one level down, the way a wire body would.
type resultsBody struct {
	Seq  int
	Rows *rql.ResultSet
}

// planChange is a control body: no rows anywhere in its type.
type planChange struct {
	Reason string
	Offset int
}

func bad(rs *rql.ResultSet, rows []rql.Row, b rql.Batch, m map[string]rql.Row) {
	_, _ = json.Marshal(rs)                // want `json\.Marshal of row-carrying type rql\.ResultSet`
	_, _ = json.Marshal(rows)              // want `json\.Marshal of row-carrying type rql\.Row`
	_, _ = json.Marshal(m)                 // want `json\.Marshal of row-carrying type rql\.Row`
	_, _ = json.MarshalIndent(b, "", "  ") // want `json\.MarshalIndent of row-carrying type rql\.Batch`
	_, _ = json.Marshal(resultsBody{})     // want `json\.Marshal of row-carrying type rql\.ResultSet`

	var dst rql.ResultSet
	_ = json.Unmarshal(nil, &dst) // want `json\.Unmarshal of row-carrying type rql\.ResultSet`
	var batches []rql.Batch
	_ = json.Unmarshal(nil, &batches) // want `json\.Unmarshal of row-carrying type rql\.Batch`
}

func clean(pc planChange, payload []byte) {
	_, _ = json.Marshal(pc) // control packets stay JSON
	var got planChange
	_ = json.Unmarshal(payload, &got)
	type envelope struct {
		ChannelID string
		Payload   []byte
	}
	_, _ = json.Marshal(envelope{Payload: payload}) // opaque payload bytes are fine
}
