package deadlinebound

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestDeadlinebound(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "exec", "peer")
}
