// Package deadlinebound enforces that RPCs carry deadlines. The network
// layer exposes two call families: CallWithin/SendWithin take an explicit
// deadline, while Call/Send are the deadline-free wrappers (DeadlineMS=0,
// meaning none). A query plan dispatched over a deadline-free edge can
// pin an executor forever when a peer stalls, so production paths must
// flow through the *Within forms with a threaded deadline.
//
// The interprocedural summaries record every reachable deadline-free
// network.Call/Send per function. This analyzer reports them in two
// tiers:
//
//   - direct sites — a literal n.Call(...)/n.Send(...) in the function
//     body — are reported wherever the analyzer is scoped to run;
//   - transitive sites — a call into a helper that (through any chain)
//     reaches a deadline-free op — are reported only in the exec and
//     channel packages, the two places that originate plan dispatch and
//     therefore own the deadline that should have been threaded.
//
// The network package itself is never scanned: its Call/Send bodies are
// the wrappers' implementation, not uses of them.
package deadlinebound

import (
	"go/ast"
	"go/types"
	"strings"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/callgraph"
)

// Analyzer reports deadline-free RPC paths; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name:           "deadlinebound",
	Doc:            "require network.CallWithin/SendWithin (with a deadline) on every RPC path from exec and channel",
	NeedsSummaries: true,
	Run:            run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Summaries == nil {
		return nil, nil
	}
	path := pass.Pkg.Path()
	transitive := callgraph.PathTail(path, "exec") || callgraph.PathTail(path, "channel")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			sum := pass.Summaries.FuncOf(obj)
			if sum == nil {
				continue
			}
			for _, op := range sum.Unbounded {
				pos := op.Site.Pos(pass.Fset)
				if !pos.IsValid() {
					continue
				}
				if len(op.Via) == 0 {
					pass.Reportf(pos, "unbounded network.%s: no deadline reaches this RPC; use %sWithin and thread a deadline",
						op.Op, op.Op)
					continue
				}
				if transitive {
					pass.Reportf(pos, "call chain %s reaches deadline-free network.%s; thread a deadline down to %sWithin",
						chain(op.Via), op.Op, op.Op)
				}
			}
		}
	}
	return nil, nil
}

// chain renders a via chain with import-path prefixes shortened.
func chain(via []string) string {
	shorts := make([]string, len(via))
	for i, v := range via {
		if slash := strings.LastIndexByte(v, '/'); slash >= 0 {
			v = v[slash+1:]
		}
		shorts[i] = v
	}
	return strings.Join(shorts, " → ")
}
