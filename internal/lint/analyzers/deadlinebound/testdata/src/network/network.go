// Fixture stub of the transport API: Call/Send are the deadline-free
// wrappers, CallWithin/SendWithin take an explicit deadline.
package network

type Message struct{ Body string }

type Network struct{}

func (n *Network) Call(dst string, m Message) (Message, error) { return m, nil }

func (n *Network) CallWithin(dst string, m Message, deadlineMS int64) (Message, error) {
	return m, nil
}

func (n *Network) Send(dst string, m Message) error { return nil }

func (n *Network) SendWithin(dst string, m Message, deadlineMS int64) error { return nil }
