// Fixture: outside exec and channel, only direct deadline-free sites
// are reported; the transitive tier belongs to the dispatch origins.
package peer

import "network"

func direct(n *network.Network, dst string, m network.Message) {
	n.Call(dst, m) // want `unbounded network\.Call`
}

func indirect(n *network.Network, dst string, m network.Message) {
	direct(n, dst, m)
}
