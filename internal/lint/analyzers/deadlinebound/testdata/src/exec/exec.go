// Fixture: the exec package originates plan dispatch, so both direct
// and transitive deadline-free RPC paths are reported here.
package exec

import "network"

func direct(n *network.Network, dst string, m network.Message) {
	n.Call(dst, m) // want `unbounded network\.Call: no deadline reaches this RPC`
	n.CallWithin(dst, m, 100)
}

func helper(n *network.Network, dst string, m network.Message) error {
	return n.Send(dst, m) // want `unbounded network\.Send`
}

func indirect(n *network.Network, dst string, m network.Message) {
	helper(n, dst, m) // want `call chain exec\.helper reaches deadline-free network\.Send`
}

func bounded(n *network.Network, dst string, m network.Message, deadlineMS int64) error {
	return n.SendWithin(dst, m, deadlineMS)
}

func boundedIndirect(n *network.Network, dst string, m network.Message) {
	bounded(n, dst, m, 250)
}
