package locksafe

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
