// Package locksafe flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held — the deadlock-under-gray-failure
// shape the chaos soak can only probabilistically catch. A peer that
// holds a lock across a network round-trip (network.Call*/Send*), a
// channel operation, or a sync.WaitGroup/Cond wait stalls every other
// goroutine contending for that lock whenever the remote side is gray:
// the call eventually times out on the simulated clock, but for that
// whole window the peer is wedged, which is exactly how §2.5's run-time
// adaptation dies in practice.
//
// The analysis is an intraprocedural, syntactic lock-region scan: Lock/
// RLock starts a region, Unlock/RUnlock ends it, defer Unlock holds to
// function end; branches are scanned with a copy of the held set, and
// function literals start lock-free (they usually run on another
// goroutine — a literal invoked inline under the lock is the accepted
// blind spot, traded for zero false positives on handler closures).
package locksafe

import (
	"go/ast"
	"go/types"

	"sqpeer/internal/lint/analysis"
)

// Analyzer flags blocking calls under a held mutex; see package comment.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flag channel ops, network.Call*/Send* and waits while a sync (RW)Mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanStmts(pass, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				scanStmts(pass, fn.Body.List, map[string]bool{})
				return false // its nested literals are scanned above
			}
			return true
		})
	}
	return nil, nil
}

// scanStmts walks one statement list linearly, tracking which mutexes
// are held. held maps the rendered receiver expression ("p.mu") to true.
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, op, ok := lockOp(pass, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			checkExpr(pass, s.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region open to function end;
			// other deferred calls run after any region closes.
		case *ast.GoStmt:
			// New goroutine: does not inherit the held set.
		case *ast.SendStmt:
			if len(held) > 0 {
				pass.Reportf(s.Pos(), "channel send while holding %s can block under gray failure; release the lock first", anyHeld(held))
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				checkExpr(pass, r, held)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				checkExpr(pass, r, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				scanStmts(pass, []ast.Stmt{s.Init}, held)
			}
			checkExpr(pass, s.Cond, held)
			scanStmts(pass, s.Body.List, clone(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					scanStmts(pass, e.List, clone(held))
				case *ast.IfStmt:
					scanStmts(pass, []ast.Stmt{e}, clone(held))
				}
			}
		case *ast.ForStmt:
			if s.Init != nil {
				scanStmts(pass, []ast.Stmt{s.Init}, held)
			}
			checkExpr(pass, s.Cond, held)
			scanStmts(pass, s.Body.List, clone(held))
		case *ast.RangeStmt:
			checkExpr(pass, s.X, held)
			scanStmts(pass, s.Body.List, clone(held))
		case *ast.BlockStmt:
			scanStmts(pass, s.List, clone(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				scanStmts(pass, []ast.Stmt{s.Init}, held)
			}
			checkExpr(pass, s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, cc.Body, clone(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, cc.Body, clone(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !hasDefault(s) {
				pass.Reportf(s.Pos(), "blocking select while holding %s can wedge under gray failure; release the lock first", anyHeld(held))
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(pass, cc.Body, clone(held))
				}
			}
		case *ast.DeclStmt:
			// const/var decls can't block.
		default:
			// Conservative: inspect any other statement's expressions.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					checkExpr(pass, e, held)
					return false
				}
				return true
			})
		}
	}
}

// checkExpr reports blocking operations inside one expression evaluated
// with the given locks held.
func checkExpr(pass *analysis.Pass, expr ast.Expr, held map[string]bool) {
	if len(held) == 0 || expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				pass.Reportf(e.Pos(), "channel receive while holding %s can block under gray failure; release the lock first", anyHeld(held))
			}
		case *ast.CallExpr:
			if name, bad := blockingCall(pass, e); bad {
				pass.Reportf(e.Pos(), "%s while holding %s can block under gray failure; release the lock first", name, anyHeld(held))
			} else if name, bad := callbackCall(pass, e); bad {
				pass.Reportf(e.Pos(), "callback %s invoked while holding %s can re-enter and deadlock; copy it and call after unlocking", name, anyHeld(held))
			}
		}
		return true
	})
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync.Mutex or
// sync.RWMutex receivers (including embedded ones) and returns the
// rendered receiver plus the operation name.
func lockOp(pass *analysis.Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := analysis.MethodRecvNamed(analysis.FuncOf(pass.TypesInfo, sel))
	if !analysis.NamedFrom(recv, "sync", "Mutex") && !analysis.NamedFrom(recv, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// blockingCall classifies calls that can block on remote progress:
// network round-trips and sync waits.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	if analysis.PkgPathTail(fn.Pkg().Path(), "network") &&
		(hasPrefix(name, "Call") || hasPrefix(name, "Send")) {
		return "network round-trip " + name, true
	}
	recv := analysis.MethodRecvNamed(fn)
	if name == "Wait" &&
		(analysis.NamedFrom(recv, "sync", "WaitGroup") || analysis.NamedFrom(recv, "sync", "Cond")) {
		return "sync " + recv.Obj().Name() + ".Wait", true
	}
	return "", false
}

// callbackCall recognizes invoking a func-typed struct field — a
// caller-supplied callback like OnPacket or StatsSink. The callback's
// body is outside this package's control: if it re-enters the type that
// is holding the lock (a sink that queries the engine, a packet handler
// that opens a channel), the goroutine self-deadlocks. Calls through
// plain local variables are deliberately not flagged — copying the field
// into a local and invoking it after Unlock is exactly the sanctioned
// fix, and must stay clean.
func callbackCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
		return "", false
	}
	return "field " + types.ExprString(sel), true
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func anyHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
