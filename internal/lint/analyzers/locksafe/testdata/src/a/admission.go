package a

import "sync"

// controller mirrors the admission-control shape: a token-bucket map
// behind one mutex, a caller-supplied clock callback, and observers
// that want a snapshot. The bucket mutex is hot (every admission takes
// it), so nothing blocking — channel ops, callbacks — may run under it.
type controller struct {
	mu      sync.Mutex
	buckets map[string]float64
	clock   func() float64
	rejects chan string
	emit    func(name string, v float64)
}

func (c *controller) badClockUnderBucketMutex() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock() // want `callback field c\.clock invoked while holding c\.mu`
	c.buckets["t"] += now
	return c.buckets["t"]
}

func (c *controller) badRejectNotifyUnderBucketMutex(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.buckets[tenant] < 1 {
		c.rejects <- tenant // want `channel send while holding c\.mu`
	}
}

func (c *controller) badEmitUnderBucketMutex() {
	c.mu.Lock()
	for t, v := range c.buckets {
		c.emit(t, v) // want `callback field c\.emit invoked while holding c\.mu`
	}
	c.mu.Unlock()
}

func (c *controller) cleanClockBeforeLock() float64 {
	// The sanctioned admission pattern: read the clock before taking the
	// bucket mutex, so a clock that consults the controller cannot
	// deadlock.
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets["t"] += now
	return c.buckets["t"]
}

func (c *controller) cleanSnapshotThenEmit() {
	// Snapshot under the lock, emit outside it — the CollectObs idiom.
	c.mu.Lock()
	snap := make(map[string]float64, len(c.buckets))
	for t, v := range c.buckets {
		snap[t] = v
	}
	c.mu.Unlock()
	for t, v := range snap {
		c.emit(t, v)
	}
}

func (c *controller) cleanNotifyAfterUnlock(tenant string) {
	c.mu.Lock()
	rejected := c.buckets[tenant] < 1
	c.mu.Unlock()
	if rejected {
		c.rejects <- tenant
	}
}
