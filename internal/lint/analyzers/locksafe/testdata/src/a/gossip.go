package a

import (
	"sync"

	"network"
)

// detector mirrors the membership-detector shape: one mutex guarding the
// member table, a transport, caller-supplied verdict callbacks, and a
// logical-clock callback. Probes are round-trips and callbacks may take
// routing locks, so neither may run under the member mutex — the
// sanctioned shape reads the clock before locking and defers callback
// delivery to after the unlock.
type detector struct {
	mu      sync.Mutex
	members map[string]int
	net     *network.Network
	clock   func() int
	OnDead  func(string)
}

func (d *detector) badProbeUnderMemberMutex(target string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, _ = d.net.CallWithin("self", target, "member.ping", nil, 200) // want `network round-trip CallWithin while holding d\.mu`
}

func (d *detector) badClockUnderMemberMutex() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.members["t"] = d.clock() // want `callback field d\.clock invoked while holding d\.mu`
}

func (d *detector) badVerdictUnderMemberMutex(peer string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.members[peer] > 2 {
		d.OnDead(peer) // want `callback field d\.OnDead invoked while holding d\.mu`
	}
}

func (d *detector) cleanClockReadBeforeLock() {
	// The gossip-tick idiom: read the logical clock first, then take the
	// member mutex — a clock that consults the detector cannot deadlock.
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.members["t"] = now
}

func (d *detector) cleanDeferredVerdicts(peers []string) {
	// Accumulate transitions under the lock, fire callbacks after — the
	// deferred-event discipline every detector callback follows.
	var dead []string
	d.mu.Lock()
	for _, p := range peers {
		if d.members[p] > 2 {
			dead = append(dead, p)
		}
	}
	cb := d.OnDead
	d.mu.Unlock()
	if cb != nil {
		for _, p := range dead {
			cb(p)
		}
	}
}

func (d *detector) cleanProbeOutsideLock(target string) {
	d.mu.Lock()
	n := d.net
	d.mu.Unlock()
	_, _ = n.CallWithin("self", target, "member.ping", nil, 200)
}
