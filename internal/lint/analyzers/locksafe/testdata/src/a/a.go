// Package a exercises the locksafe analyzer: no blocking operation may
// run while a sync.Mutex or sync.RWMutex is held.
package a

import (
	"sync"

	"network"
)

type peer struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	net *network.Network
	ch  chan int
	wg  sync.WaitGroup

	// Caller-supplied callbacks: invoking one under a held lock lets the
	// callee re-enter and self-deadlock.
	OnPacket func(int)
	sink     func(string) error
}

func (p *peer) badCallUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, _ = p.net.Call("a", "b", "k", nil) // want `network round-trip Call while holding p\.mu`
}

func (p *peer) badChannelOps() {
	p.mu.Lock()
	p.ch <- 1 // want `channel send while holding p\.mu`
	<-p.ch    // want `channel receive while holding p\.mu`
	p.mu.Unlock()
}

func (p *peer) badRWLock() {
	p.rmu.RLock()
	if err := p.net.SendWithin("a", "b", "k", nil, 50); err != nil { // want `network round-trip SendWithin while holding p\.rmu`
		p.rmu.RUnlock()
		return
	}
	p.rmu.RUnlock()
}

func (p *peer) badSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `blocking select while holding p\.mu`
	case v := <-p.ch:
		_ = v
	case p.ch <- 2:
	}
}

func (p *peer) badWait() {
	p.mu.Lock()
	p.wg.Wait() // want `sync WaitGroup\.Wait while holding p\.mu`
	p.mu.Unlock()
}

func (p *peer) badCallbackUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.OnPacket(1) // want `callback field p\.OnPacket invoked while holding p\.mu`
}

func (p *peer) badCallbackUnderRLock() error {
	p.rmu.RLock()
	err := p.sink("x") // want `callback field p\.sink invoked while holding p\.rmu`
	p.rmu.RUnlock()
	return err
}

func (p *peer) cleanCallbackCopiedOut() {
	p.mu.Lock()
	cb := p.OnPacket
	p.mu.Unlock()
	// Calling through the local copy after unlocking is the sanctioned
	// fix and must not be flagged.
	if cb != nil {
		cb(2)
	}
}

func (p *peer) cleanCallbackNoLock() {
	p.OnPacket(3)
}

func (p *peer) cleanUnlockFirst() ([]byte, error) {
	p.mu.Lock()
	n := p.net
	p.mu.Unlock()
	return n.CallWithin("a", "b", "k", nil, 50)
}

func (p *peer) cleanNonBlockingUnderLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.net.Counters()
}

func (p *peer) cleanSelectWithDefault() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case v := <-p.ch:
		_ = v
	default:
	}
}

func (p *peer) cleanGoroutine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		// A fresh goroutine does not inherit the held set.
		_, _ = p.net.Call("a", "b", "k", nil)
	}()
}

func (p *peer) cleanBranchUnlock(fail bool) error {
	p.mu.Lock()
	if fail {
		p.mu.Unlock()
		return p.net.SendWithin("a", "b", "k", nil, 50)
	}
	p.mu.Unlock()
	return nil
}
