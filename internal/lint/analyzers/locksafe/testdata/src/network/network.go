// Package network is a fixture stand-in for sqpeer/internal/network:
// the locksafe analyzer matches it by package-path tail, so method and
// function shapes mirror the real transport's blocking surface.
package network

// Network is the fixture transport.
type Network struct{}

// Call is a blocking round-trip.
func (n *Network) Call(from, to, kind string, body []byte) ([]byte, error) {
	return nil, nil
}

// CallWithin is a deadline-bounded round-trip (still blocking).
func (n *Network) CallWithin(from, to, kind string, body []byte, deadlineMS float64) ([]byte, error) {
	return nil, nil
}

// SendWithin is a deadline-bounded one-way send (still blocking).
func (n *Network) SendWithin(from, to, kind string, body []byte, deadlineMS float64) error {
	return nil
}

// Counters is a non-blocking accessor; locksafe must not flag it.
func (n *Network) Counters() int { return 0 }
