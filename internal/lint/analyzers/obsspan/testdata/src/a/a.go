// Package a exercises the obsspan analyzer: discarded opens, opens
// that can return without End, and the three sanctioned idioms
// (defer-End, End-before-every-return, ownership hand-off).
package a

import "obs"

func sink(*obs.Span) {}

func give() *obs.Span { return nil }

// Discarded opens: nobody can ever End these.

func discardedExpr(sp *obs.Span) {
	sp.Child("scan", "discard") // want `discarded`
}

func discardedBlank(sp *obs.Span) {
	_ = sp.ChildAt("scan", "discard", "P2") // want `discarded`
}

// A return path that skips End leaks the span.

func returnSkipsEnd(sp *obs.Span, cond bool) error {
	c := sp.Child("scan", "leak") // want `left open`
	c.Annotate("rows", "3")
	if cond {
		return nil
	}
	c.End()
	return nil
}

func neverEnded() {
	r := obs.RemoteSpan("T1", "/q", "P2") // want `left open`
	r.Annotate("rows", "3")
}

// Sanctioned idiom 1: defer End.

func deferEnd(sp *obs.Span, cond bool) error {
	c := sp.Child("scan", "ok")
	defer c.End()
	if cond {
		return nil
	}
	c.Annotate("rows", "3")
	return nil
}

// Sanctioned idiom 2: End lexically before every later return.

func endBeforeReturns(sp *obs.Span, cond bool) error {
	c := sp.Child("scan", "ok")
	c.ChargeMS(1.5)
	c.End()
	if cond {
		return nil
	}
	return nil
}

func endThenFallOff(sp *obs.Span) {
	r := obs.RemoteSpan("T1", "/q", "P2")
	r.End()
}

// Sanctioned idiom 3: the span escapes to a new owner.

func escapesAsArg(sp *obs.Span) {
	c := sp.Child("scan", "ok")
	sink(c)
}

func escapesByReturn(sp *obs.Span) *obs.Span {
	c := sp.ChildAt("scan", "ok", "P3")
	return c
}

func escapesIntoClosure(sp *obs.Span) func() {
	c := sp.Child("scan", "ok")
	return func() { c.End() }
}

func escapesIntoStruct(sp *obs.Span) {
	type holder struct{ s *obs.Span }
	c := sp.Child("scan", "ok")
	h := holder{s: c}
	sink(h.s)
}

// Indexed stores are owned by the collection's closer, not this site.

func storedInSlice(sp *obs.Span, spans []*obs.Span) {
	spans[0] = sp.Child("scan", "ok")
}

// Rebinding an existing variable to a non-opener is not an open.

func rebindNotOpen(spans []*obs.Span) {
	var c *obs.Span
	if len(spans) > 0 {
		c = spans[0]
	}
	c.Annotate("rows", "3")
}

// give() is not an opener; its result is untracked.

func nonOpenerUntracked() {
	c := give()
	c.Annotate("rows", "3")
}

// Emit-after-End: a sealed span must not source new events.

func emitAfterEnd(sp *obs.Span, log *obs.EventLog) {
	c := sp.Child("scan", "sealed")
	c.End()
	c.EmitEvent(log, "exec", "shed") // want `after c.End\(\)`
}

// The same emit before End is the sanctioned shape.

func emitBeforeEnd(sp *obs.Span, log *obs.EventLog) {
	c := sp.Child("scan", "ok")
	c.EmitEvent(log, "exec", "shed", obs.Attr{Key: "site", Value: "P2"})
	c.End()
}

// defer-End runs at return, after every lexical emit: exempt.

func emitUnderDeferEnd(sp *obs.Span, log *obs.EventLog) {
	c := sp.Child("scan", "ok")
	defer c.End()
	c.EmitEvent(log, "exec", "dispatch")
}

// Ending one span and emitting on a still-open ancestor is the
// documented fix, not a violation.

func emitOnOpenAncestor(sp *obs.Span, log *obs.EventLog) {
	parent := sp.Child("join", "ok")
	c := parent.Child("scan", "ok")
	c.End()
	parent.EmitEvent(log, "exec", "resume")
	parent.End()
}

// Emit-after-End is flagged even when the span later escapes: the End
// sealed it for every holder.

func emitAfterEndThenEscape(sp *obs.Span, log *obs.EventLog) {
	c := sp.Child("scan", "sealed")
	c.End()
	c.EmitEvent(log, "exec", "retry") // want `after c.End\(\)`
	sink(c)
}
