// Package obs is a fixture stand-in for sqpeer/internal/obs: the
// obsspan analyzer matches it by package-path tail, so the opener and
// closer method shapes mirror the real tracing surface.
package obs

// Span is the fixture span.
type Span struct{}

// Child opens a child span (an opener).
func (s *Span) Child(kind, name string) *Span { return s }

// ChildAt opens a child span at a peer (an opener).
func (s *Span) ChildAt(kind, name, peer string) *Span { return s }

// End closes the span.
func (s *Span) End() {}

// Annotate attaches a key/value (use, not escape).
func (s *Span) Annotate(k, v string) {}

// ChargeMS accumulates logical time (use, not escape).
func (s *Span) ChargeMS(ms float64) {}

// EmitEvent emits a span-correlated event (use, not escape; flagged
// when it lexically follows the span's End).
func (s *Span) EmitEvent(log *EventLog, component, kind string, attrs ...Attr) {}

// RemoteSpan rebuilds a shipped trace context (an opener).
func RemoteSpan(traceID, parentPath, peer string) *Span { return nil }

// EventLog is the fixture stand-in for the unified event log.
type EventLog struct{}

// Attr is one event attribute.
type Attr struct{ Key, Value string }
