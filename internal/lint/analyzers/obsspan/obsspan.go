// Package obsspan guards the PR5 tracing contract: every span opened
// with (*obs.Span).Child / ChildAt or obs.RemoteSpan must be closed on
// every return path, or handed to someone who will close it. An
// unclosed span still exports (flagged `unclosed=true`), but it charges
// its subtree to the wrong place in the critical-path attribution, so a
// leak is a correctness bug in the observability layer, not cosmetics.
//
// The analyzer flags an opener call when
//
//   - its result is discarded (expression statement or blank assign) —
//     nobody can ever End such a span; or
//   - it is assigned to a local variable that neither escapes (passed
//     as a call argument, returned, stored into a structure, captured
//     by a closure), nor has a `defer x.End()`, nor has an `x.End()`
//     call lexically between the open and every later return of the
//     enclosing function.
//
// The lexical rule is an approximation, deliberately conservative in
// the same direction as the instrumented code's idioms: open-use-End
// straight-line blocks, defer-End, and handing the span down the call
// tree all pass; anything where a return path can skip the End is
// reported. Genuinely fine sites carry //lint:allow obsspan.
//
// The analyzer also guards the PR10 event-log contract: an
// x.EmitEvent(...) lexically after x.End() is flagged. A span's
// identity (peer, trace id, path) is fixed when it Ends — emitting
// afterwards correlates the event to a span the exporters have already
// sealed, so the emit must move before the End or onto a still-open
// ancestor span. defer x.End() is exempt: it runs at return, after
// every lexical emit.
package obsspan

import (
	"go/ast"
	"go/token"
	"go/types"

	"sqpeer/internal/lint/analysis"
)

// Analyzer flags span opens that can leak; see the package comment.
var Analyzer = &analysis.Analyzer{
	Name: "obsspan",
	Doc:  "flag obs spans opened without End on every return path (discarded, or neither deferred, closed, nor escaped), and events emitted on a span after its End",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// candidate is one span-typed local bound to an opener call.
type candidate struct {
	obj  types.Object
	open token.Pos
	name string
}

// checkFunc inspects one function body. Nested function literals run
// their own checkFunc (run's Inspect visits them); here they only count
// as escapes for spans of the enclosing function.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var cands []candidate
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isOpener(pass, call) {
				pass.Reportf(call.Pos(),
					"span returned by %s is discarded; assign it and close it with End() (or defer End())", callName(call))
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok || !isOpener(pass, call) {
				return true
			}
			id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
			if !ok {
				return true // stored into a slice/field: someone else owns it
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"span returned by %s is discarded; assign it and close it with End() (or defer End())", callName(call))
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				cands = append(cands, candidate{obj: obj, open: s.Pos(), name: id.Name})
			}
		}
		return true
	})
	for _, c := range cands {
		checkCandidate(pass, body, c)
	}
}

// checkCandidate verifies one opened span is closed on every return path.
func checkCandidate(pass *analysis.Pass, body *ast.BlockStmt, c candidate) {
	var (
		escaped  bool
		deferEnd bool
		ends     []token.Pos
		emits    []token.Pos
		returns  []token.Pos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			// A closure capturing the span takes over its lifetime.
			if mentions(pass, s, c.obj) {
				escaped = true
			}
			return false
		case *ast.DeferStmt:
			if isEndOn(pass, s.Call, c.obj) {
				deferEnd = true
				return false
			}
		case *ast.CallExpr:
			if isEndOn(pass, s, c.obj) {
				ends = append(ends, s.Pos())
				return false
			}
			if isEmitOn(pass, s, c.obj) {
				// A method call on the span; its arguments carry the
				// event log and attributes, never the span itself.
				emits = append(emits, s.Pos())
				return false
			}
			// A method call on the span itself (Annotate, ChargeMS) is
			// use, not escape; the span appearing anywhere in an
			// argument is an ownership hand-off.
			for _, arg := range s.Args {
				if mentions(pass, arg, c.obj) {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			if s.Pos() > c.open {
				returns = append(returns, s.Pos())
			}
			if mentions(pass, s, c.obj) {
				escaped = true
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if mentions(pass, rhs, c.obj) && !isOpenOf(pass, rhs, c) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			if mentions(pass, s, c.obj) {
				escaped = true
			}
		}
		return true
	})
	// Emit-after-End: a sealed span must not source new events. Checked
	// before the escape/defer exemptions — an explicit End() seals the
	// span no matter who else holds it, and defer-End (which runs after
	// every lexical emit) contributes nothing to ends.
	for _, emit := range emits {
		for _, end := range ends {
			if end < emit {
				pass.Reportf(emit,
					"event emitted on span %s after %s.End(); move the emit before End() or emit on a still-open ancestor span", c.name, c.name)
				break
			}
		}
	}
	if escaped || deferEnd {
		return
	}
	// With no explicit return after the open, the function's implicit
	// fall-off end is the one return path.
	if len(returns) == 0 {
		returns = []token.Pos{body.Rbrace}
	}
	for _, ret := range returns {
		closed := false
		for _, end := range ends {
			if end > c.open && end < ret {
				closed = true
				break
			}
		}
		if !closed {
			pass.Reportf(c.open,
				"span %s may be left open on a return path; defer %s.End(), call End() before every return, or pass the span on", c.name, c.name)
			return
		}
	}
}

// isOpener reports whether call opens a span: (*obs.Span).Child /
// ChildAt, or the package function obs.RemoteSpan. The obs package is
// matched by path tail so analysistest fixtures at the short path
// "obs" exercise the same rule as sqpeer/internal/obs.
func isOpener(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Name() {
	case "Child", "ChildAt":
		recv := analysis.MethodRecvNamed(fn)
		return recv != nil && recv.Obj().Name() == "Span" &&
			recv.Obj().Pkg() != nil && analysis.PkgPathTail(recv.Obj().Pkg().Path(), "obs")
	case "RemoteSpan":
		return analysis.PkgFunc(fn, fn.Pkg().Path()) && analysis.PkgPathTail(fn.Pkg().Path(), "obs")
	}
	return false
}

// isEmitOn reports whether call is obj.EmitEvent(...).
func isEmitOn(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "EmitEvent" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// isEndOn reports whether call is obj.End().
func isEndOn(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// isOpenOf reports whether rhs is the candidate's own opener call (the
// assignment that created it must not count as an escape).
func isOpenOf(pass *analysis.Pass, rhs ast.Expr, c candidate) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	return ok && call.Pos() >= c.open && isOpener(pass, call)
}

// mentions reports whether the node references obj.
func mentions(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	hit := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			hit = true
		}
		return !hit
	})
	return hit
}

// callName renders an opener call for diagnostics.
func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "the opener"
}
