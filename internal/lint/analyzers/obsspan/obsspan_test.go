package obsspan

import (
	"testing"

	"sqpeer/internal/lint/analysistest"
)

func TestObsspan(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
