package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"sqpeer/internal/lint/load"
)

// checkSrc type-checks one in-memory package, resolving imports against
// previously checked packages.
func checkSrc(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*types.Package) *SourcePkg {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: mapImporter(deps)}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &SourcePkg{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m[path], nil
}

func TestBuildRecordsStaticCalls(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, "p", `package p

func a() { b(); c() }

func b() { c() }

func c() {}
`, nil)
	g := Build(pkg)
	want := []string{"p.a", "p.b", "p.c"}
	if len(g.Keys) != len(want) {
		t.Fatalf("keys = %v, want %v", g.Keys, want)
	}
	for i, k := range want {
		if g.Keys[i] != k {
			t.Fatalf("keys = %v, want %v", g.Keys, want)
		}
	}
	callees := func(key string) []string {
		var out []string
		for _, c := range g.Funcs[key].Calls {
			out = append(out, FuncKey(c.Callee))
		}
		return out
	}
	if got := callees("p.a"); len(got) != 2 || got[0] != "p.b" || got[1] != "p.c" {
		t.Errorf("p.a calls %v, want [p.b p.c]", got)
	}
	if got := callees("p.b"); len(got) != 1 || got[0] != "p.c" {
		t.Errorf("p.b calls %v, want [p.c]", got)
	}
	if got := callees("p.c"); len(got) != 0 {
		t.Errorf("p.c calls %v, want none", got)
	}
}

func TestTopoSortDependenciesFirst(t *testing.T) {
	fset := token.NewFileSet()
	x := checkSrc(t, fset, "x", `package x

func F() {}
`, nil)
	y := checkSrc(t, fset, "y", `package y

import "x"

func G() { x.F() }
`, map[string]*types.Package{"x": x.Types})
	z := checkSrc(t, fset, "z", `package z

import "y"

func H() { y.G() }
`, map[string]*types.Package{"y": y.Types})

	// Reverse input order: the sort must still put dependencies first.
	got := TopoSort([]*SourcePkg{z, y, x})
	order := map[string]int{}
	for i, p := range got {
		order[p.Path] = i
	}
	if len(got) != 3 {
		t.Fatalf("TopoSort returned %d packages, want 3", len(got))
	}
	if !(order["x"] < order["y"] && order["y"] < order["z"]) {
		var paths []string
		for _, p := range got {
			paths = append(paths, p.Path)
		}
		t.Fatalf("order %v does not put dependencies first", paths)
	}
}

func TestPathTail(t *testing.T) {
	cases := []struct {
		path, tail string
		want       bool
	}{
		{"sqpeer/internal/rql", "rql", true},
		{"rql", "rql", true},
		{"sqpeer/internal/rqlx", "rql", false},
		{"sqpeer/internal/network", "rql", false},
	}
	for _, c := range cases {
		if got := PathTail(c.path, c.tail); got != c.want {
			t.Errorf("PathTail(%q, %q) = %v, want %v", c.path, c.tail, got, c.want)
		}
	}
}
