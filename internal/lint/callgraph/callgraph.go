// Package callgraph builds the package-level call graph the
// interprocedural lint tier (internal/lint/summary and the lockorder/
// bufsafe/deadlinebound/goroleak analyzers) is computed over. A Graph
// covers one type-checked package: one node per declared function or
// method, each carrying its resolved static call sites. Calls through
// plain function values (fields, parameters, locals) have no static
// callee and appear as dynamic sites; the summary layer models the two
// shapes it needs (callbacks that are spawned or that put buffers)
// through parameter effects instead of chasing values.
//
// Nodes are keyed by the stable full name of their *types.Func (e.g.
// "sqpeer/internal/exec.(*Engine).run"), which is also the key format of
// the summary index and its on-disk cache.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SourcePkg is the package shape the interprocedural tier consumes: the
// parse/type-check products that both internal/lint/load packages and
// analysistest fixture packages can supply.
type SourcePkg struct {
	// Path is the import path ("sqpeer/internal/exec", or a short
	// fixture path like "a").
	Path string
	// Fset maps positions for Files and for every dependency
	// type-checked alongside them.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's annotations for Files.
	Info *types.Info
}

// Func is one call-graph node: a function or method declared in the
// package, with its statically resolved outgoing calls.
type Func struct {
	// Key is the stable full name (types.Func.FullName).
	Key string
	// Obj is the declared function object.
	Obj *types.Func
	// Decl is the declaration, body included (nil body for external
	// linkage declarations, which produce no calls).
	Decl *ast.FuncDecl
	// Calls are the static call sites in source order.
	Calls []Call
}

// Call is one statically resolved call site.
type Call struct {
	// Callee is the invoked function (never nil; dynamic calls are not
	// recorded as Calls).
	Callee *types.Func
	// Pos locates the call expression.
	Pos token.Pos
}

// Graph is the call graph of one package.
type Graph struct {
	// Funcs maps node key to node, and Keys lists them sorted so every
	// traversal of the graph is deterministic.
	Funcs map[string]*Func
	Keys  []string
}

// FuncKey renders the stable key for a function object.
func FuncKey(f *types.Func) string { return f.FullName() }

// Build constructs the call graph for one package. Call sites inside
// function literals are attributed to the enclosing declared function:
// the summary layer treats a literal's effects as happening under its
// owner except where it analyzes literal bodies directly (goroutine
// spawn sites).
func Build(pkg *SourcePkg) *Graph {
	g := &Graph{Funcs: map[string]*Func{}}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Func{Key: FuncKey(obj), Obj: obj, Decl: fd}
			if fd.Body != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeOf(pkg.Info, call); callee != nil {
						node.Calls = append(node.Calls, Call{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
			}
			g.Funcs[node.Key] = node
		}
	}
	for k := range g.Funcs {
		g.Keys = append(g.Keys, k)
	}
	sort.Strings(g.Keys)
	return g
}

// CalleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls, conversions and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// PathTail reports whether path is exactly tail or ends in "/"+tail, so
// rules about e.g. the rql package hold both for the real
// sqpeer/internal/rql path and for short analysistest fixture paths.
func PathTail(path, tail string) bool {
	return path == tail || (len(path) > len(tail) &&
		path[len(path)-len(tail)-1] == '/' && path[len(path)-len(tail):] == tail)
}

// TopoSort orders packages so every package follows all of its
// dependencies that are themselves in the input set (imports among the
// set form a DAG — Go forbids import cycles). Ties break by path, so
// the order is deterministic for a given input set.
func TopoSort(pkgs []*SourcePkg) []*SourcePkg {
	byPath := map[string]*SourcePkg{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)

	var out []*SourcePkg
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		deps := make([]string, 0, len(p.Types.Imports()))
		for _, imp := range p.Types.Imports() {
			deps = append(deps, imp.Path())
		}
		sort.Strings(deps)
		for _, d := range deps {
			visit(d)
		}
		state[path] = 2
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}
