// Package driver runs analyzers over loaded packages and applies the
// repo's suppression policy: a diagnostic is silenced only by an
// explicit, reasoned directive
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory — a bare allow is itself a lint error — and a
// directive that suppresses nothing is reported as stale, so allowlist
// entries cannot outlive the code they excused.
package driver

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/load"
)

// Finding is one driver-level result: an analyzer diagnostic (possibly
// suppressed) or a problem with the directives themselves.
type Finding struct {
	// Analyzer names the originating check ("driver" for directive
	// problems).
	Analyzer string
	// Position locates the finding.
	Position token.Position
	// Message states the problem.
	Message string
	// Suppressed marks diagnostics covered by a valid allow directive;
	// suppressed findings do not fail the lint run.
	Suppressed bool
	// Reason carries the directive's justification when Suppressed.
	Reason string
}

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
	bad      bool // malformed: missing analyzer or reason
}

// Run applies every analyzer to every package. scope optionally limits
// an analyzer (by name) to packages whose import path it accepts; absent
// entries run everywhere. Findings come back sorted by position.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package, scope map[string]func(pkgPath string) bool) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		ran := map[string]bool{}
		for _, a := range analyzers {
			if accept, ok := scope[a.Name]; ok && !accept(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Position: pos, Message: d.Message}
				if dir := match(dirs, a.Name, pos); dir != nil {
					dir.used = true
					f.Suppressed = true
					f.Reason = dir.reason
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
		// Directive hygiene: malformed allows always fail; well-formed
		// allows must have suppressed something (stale-allow check),
		// unless they name an analyzer not run on this package.
		for _, d := range dirs {
			switch {
			case d.bad:
				findings = append(findings, Finding{
					Analyzer: "driver", Position: d.pos,
					Message: "malformed //lint:allow: want //lint:allow <analyzer> <reason>",
				})
			case !d.used && ran[d.analyzer]:
				findings = append(findings, Finding{
					Analyzer: "driver", Position: d.pos,
					Message: fmt.Sprintf("stale //lint:allow %s: no %s diagnostic here to suppress", d.analyzer, d.analyzer),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// collectDirectives parses every //lint:allow comment in the package.
func collectDirectives(pkg *load.Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				d := &directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.bad = true
				} else {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// match finds an unused-or-used directive for analyzer covering pos: the
// same line or the line directly above, in the same file.
func match(dirs []*directive, analyzer string, pos token.Position) *directive {
	for _, d := range dirs {
		if d.bad || d.analyzer != analyzer || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			return d
		}
	}
	return nil
}

// Format renders one finding in the conventional file:line:col style.
func (f Finding) Format() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (allowed: %s)", f.Reason)
	}
	return s
}

// Failing filters findings down to the ones that should fail the run.
func Failing(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
