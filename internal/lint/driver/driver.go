// Package driver runs analyzers over loaded packages and applies the
// repo's suppression policy: a diagnostic is silenced only by an
// explicit, reasoned directive
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory — a bare allow is itself a lint error — and a
// directive that suppresses nothing is reported as stale, so allowlist
// entries cannot outlive the code they excused.
package driver

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/callgraph"
	"sqpeer/internal/lint/load"
	"sqpeer/internal/lint/summary"
)

// Finding is one driver-level result: an analyzer diagnostic (possibly
// suppressed) or a problem with the directives themselves.
type Finding struct {
	// Analyzer names the originating check ("driver" for directive
	// problems).
	Analyzer string
	// Position locates the finding.
	Position token.Position
	// Message states the problem.
	Message string
	// Suppressed marks diagnostics covered by a valid allow directive;
	// suppressed findings do not fail the lint run.
	Suppressed bool
	// Reason carries the directive's justification when Suppressed.
	Reason string
}

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
	bad      bool // malformed: missing analyzer or reason
}

// Options configures a driver run.
type Options struct {
	// SummaryCacheDir, when non-empty, persists per-package summaries of
	// the interprocedural tier there (see internal/lint/summary). The
	// directory is created if missing.
	SummaryCacheDir string
}

// Stat is one analyzer's cost/yield line for the end-of-run report:
// how long its passes took across all packages and how many findings it
// produced (suppressed ones included, so directive changes don't hide
// cost shifts).
type Stat struct {
	Analyzer   string
	Findings   int
	Suppressed int
	Wall       time.Duration
	// Note replaces the finding columns for pseudo-rows (the shared
	// summary-index build reports its cache hit/miss split here).
	Note string
}

// Stats renders per-analyzer lines sorted by name, so the report is
// deterministic up to the measured durations.
func Stats(stats []Stat) []string {
	sorted := append([]Stat(nil), stats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Analyzer < sorted[j].Analyzer })
	out := make([]string, 0, len(sorted))
	for _, s := range sorted {
		if s.Note != "" {
			out = append(out, fmt.Sprintf("%-14s %-29s %8.1fms",
				s.Analyzer, s.Note, float64(s.Wall.Microseconds())/1000))
			continue
		}
		out = append(out, fmt.Sprintf("%-14s %4d finding(s) %4d suppressed %8.1fms",
			s.Analyzer, s.Findings, s.Suppressed, float64(s.Wall.Microseconds())/1000))
	}
	return out
}

// Run applies every analyzer to every package. scope optionally limits
// an analyzer (by name) to packages whose import path it accepts; absent
// entries run everywhere. Findings come back sorted by position.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package, scope map[string]func(pkgPath string) bool) ([]Finding, error) {
	findings, _, err := RunWith(analyzers, pkgs, scope, Options{})
	return findings, err
}

// RunWith is Run plus per-analyzer stats and driver options. When any
// analyzer needs summaries, the interprocedural index is built once over
// every loaded package (cached per Options.SummaryCacheDir) and shared
// by all passes; its build time is reported under the pseudo-analyzer
// name "summaries".
func RunWith(analyzers []*analysis.Analyzer, pkgs []*load.Package, scope map[string]func(pkgPath string) bool, opts Options) ([]Finding, []Stat, error) {
	var index *summary.Index
	statByName := map[string]*Stat{}
	statOf := func(name string) *Stat {
		s, ok := statByName[name]
		if !ok {
			s = &Stat{Analyzer: name}
			statByName[name] = s
		}
		return s
	}
	for _, a := range analyzers {
		statOf(a.Name)
		if a.NeedsSummaries && index == nil {
			cache, err := summary.NewCache(opts.SummaryCacheDir)
			if err != nil {
				return nil, nil, err
			}
			src := make([]*callgraph.SourcePkg, 0, len(pkgs))
			for _, pkg := range pkgs {
				src = append(src, &callgraph.SourcePkg{
					Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files,
					Types: pkg.Types, Info: pkg.Info,
				})
			}
			start := time.Now()
			index = summary.BuildIndex(src, cache)
			s := statOf("summaries")
			s.Wall = time.Since(start)
			s.Note = fmt.Sprintf("%d pkg(s) computed, %d cached", index.CacheMisses, index.CacheHits)
		}
	}

	var findings []Finding
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		ran := map[string]bool{}
		for _, a := range analyzers {
			if accept, ok := scope[a.Name]; ok && !accept(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if a.NeedsSummaries {
				pass.Summaries = index
			}
			stat := statOf(a.Name)
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Position: pos, Message: d.Message}
				if dir := match(dirs, a.Name, pos); dir != nil {
					dir.used = true
					f.Suppressed = true
					f.Reason = dir.reason
					stat.Suppressed++
				}
				stat.Findings++
				findings = append(findings, f)
			}
			start := time.Now()
			if _, err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			stat.Wall += time.Since(start)
		}
		// Directive hygiene: malformed allows always fail; well-formed
		// allows must have suppressed something (stale-allow check),
		// unless they name an analyzer not run on this package.
		for _, d := range dirs {
			switch {
			case d.bad:
				findings = append(findings, Finding{
					Analyzer: "driver", Position: d.pos,
					Message: "malformed //lint:allow: want //lint:allow <analyzer> <reason>",
				})
			case !d.used && ran[d.analyzer]:
				findings = append(findings, Finding{
					Analyzer: "driver", Position: d.pos,
					Message: fmt.Sprintf("stale //lint:allow %s: no %s diagnostic here to suppress", d.analyzer, d.analyzer),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	stats := make([]Stat, 0, len(statByName))
	for _, s := range statByName {
		stats = append(stats, *s)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Analyzer < stats[j].Analyzer })
	return findings, stats, nil
}

// collectDirectives parses every //lint:allow comment in the package.
func collectDirectives(pkg *load.Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				d := &directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.bad = true
				} else {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// match finds an unused-or-used directive for analyzer covering pos: the
// same line or the line directly above, in the same file.
func match(dirs []*directive, analyzer string, pos token.Position) *directive {
	for _, d := range dirs {
		if d.bad || d.analyzer != analyzer || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			return d
		}
	}
	return nil
}

// Format renders one finding in the conventional file:line:col style.
func (f Finding) Format() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (allowed: %s)", f.Reason)
	}
	return s
}

// Failing filters findings down to the ones that should fail the run.
func Failing(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
