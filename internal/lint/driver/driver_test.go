package driver

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/analyzers/seededrand"
	"sqpeer/internal/lint/analyzers/walltime"
	"sqpeer/internal/lint/load"
)

// loadSrc type-checks one in-memory file as package p.
func loadSrc(t *testing.T, src string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// TestAllowSuppressesExactlyOne: two identical violations, one allow
// directive — exactly one diagnostic survives and exactly one is
// suppressed with the directive's reason.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	pkg := loadSrc(t, `package p

import "time"

func f() (time.Time, time.Time) {
	//lint:allow walltime fixture needs one sanctioned read
	a := time.Now()
	b := time.Now()
	return a, b
}
`)
	findings, err := Run([]*analysis.Analyzer{walltime.Analyzer}, []*load.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(findings), findings)
	}
	failing := Failing(findings)
	if len(failing) != 1 {
		t.Fatalf("got %d failing findings, want exactly 1: %+v", len(failing), findings)
	}
	var suppressed *Finding
	for i := range findings {
		if findings[i].Suppressed {
			suppressed = &findings[i]
		}
	}
	if suppressed == nil {
		t.Fatal("no suppressed finding")
	}
	if suppressed.Reason != "fixture needs one sanctioned read" {
		t.Fatalf("suppression reason = %q", suppressed.Reason)
	}
	if suppressed.Position.Line >= failing[0].Position.Line {
		t.Fatalf("the directive should cover the first violation (line %d), not the second (line %d)",
			suppressed.Position.Line, failing[0].Position.Line)
	}
}

// TestSameLineAllow: a trailing directive on the offending line counts.
func TestSameLineAllow(t *testing.T) {
	pkg := loadSrc(t, `package p

import "time"

func f() time.Time {
	return time.Now() //lint:allow walltime trailing directive
}
`)
	findings, err := Run([]*analysis.Analyzer{walltime.Analyzer}, []*load.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(Failing(findings)) != 0 {
		t.Fatalf("trailing allow did not suppress: %+v", findings)
	}
}

// TestMalformedAllow: a reason-less directive is itself a finding, and
// it does not suppress anything.
func TestMalformedAllow(t *testing.T) {
	pkg := loadSrc(t, `package p

import "time"

func f() time.Time {
	//lint:allow walltime
	return time.Now()
}
`)
	findings, err := Run([]*analysis.Analyzer{walltime.Analyzer}, []*load.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	failing := Failing(findings)
	if len(failing) != 2 {
		t.Fatalf("got %d failing findings, want 2 (violation + malformed directive): %+v", len(failing), findings)
	}
	found := false
	for _, f := range failing {
		if f.Analyzer == "driver" && strings.Contains(f.Message, "malformed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no malformed-directive finding: %+v", failing)
	}
}

// TestStaleAllow: a directive with nothing to suppress is a finding, so
// allowlist entries cannot outlive the code they excused.
func TestStaleAllow(t *testing.T) {
	pkg := loadSrc(t, `package p

//lint:allow walltime nothing here anymore
var x = 1
`)
	findings, err := Run([]*analysis.Analyzer{walltime.Analyzer}, []*load.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	failing := Failing(findings)
	if len(failing) != 1 || failing[0].Analyzer != "driver" || !strings.Contains(failing[0].Message, "stale") {
		t.Fatalf("want exactly one stale-directive finding, got: %+v", failing)
	}
}

// TestTwoAnalyzersOneLine: one line violating two analyzers needs two
// directives — one above, one trailing both work — and each suppression
// keeps its own analyzer's reason. A directive for one analyzer must
// never soak up the other's diagnostic.
func TestTwoAnalyzersOneLine(t *testing.T) {
	pkg := loadSrc(t, `package p

import (
	"math/rand"
	"time"
)

func f() int {
	//lint:allow walltime clock feeds a test-only seed
	return rand.Intn(int(time.Now().Unix())) //lint:allow seededrand global source is fine here
}
`)
	findings, err := Run([]*analysis.Analyzer{walltime.Analyzer, seededrand.Analyzer}, []*load.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failing := Failing(findings); len(failing) != 0 {
		t.Fatalf("both violations should be suppressed, got failing: %+v", failing)
	}
	reasons := map[string]string{}
	for _, f := range findings {
		if !f.Suppressed {
			t.Fatalf("unsuppressed finding slipped through Failing: %+v", f)
		}
		reasons[f.Analyzer] = f.Reason
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want one per analyzer: %+v", len(findings), findings)
	}
	if reasons["walltime"] != "clock feeds a test-only seed" {
		t.Errorf("walltime suppressed by the wrong directive: %q", reasons["walltime"])
	}
	if reasons["seededrand"] != "global source is fine here" {
		t.Errorf("seededrand suppressed by the wrong directive: %q", reasons["seededrand"])
	}
}

// TestScope: an analyzer scoped away from a package reports nothing
// there, and its stale-allow hygiene is skipped too.
func TestScope(t *testing.T) {
	pkg := loadSrc(t, `package p

import "time"

func f() time.Time { return time.Now() }
`)
	scope := map[string]func(string) bool{
		"walltime": func(path string) bool { return path != "p" },
	}
	findings, err := Run([]*analysis.Analyzer{walltime.Analyzer}, []*load.Package{pkg}, scope)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("scoped-out analyzer still reported: %+v", findings)
	}
}
