package routing_test

import (
	"reflect"
	"testing"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
)

// replSchema builds a small community schema with two properties.
func replSchema(t *testing.T) *rdf.Schema {
	t.Helper()
	s := rdf.NewSchema("son")
	s.AddClass("C1")
	s.AddClass("C2")
	s.AddProperty("p1", "C1", "C2")
	s.AddProperty("p2", "C1", "C2")
	return s
}

func advFor(prop rdf.IRI) *pattern.ActiveSchema {
	return &pattern.ActiveSchema{
		SchemaName: "son",
		Patterns: []pattern.PathPattern{{
			ID: "a1", Property: prop, Domain: "C1", Range: "C2",
			SubjectVar: "X", ObjectVar: "Y",
		}},
	}
}

func queryP1() *pattern.QueryPattern {
	return &pattern.QueryPattern{
		SchemaName: "son",
		Patterns: []pattern.PathPattern{{
			ID: "q1", Property: "p1", Domain: "C1", Range: "C2",
			SubjectVar: "X", ObjectVar: "Y",
		}},
	}
}

func TestHitCountsAndHotPeers(t *testing.T) {
	schema := replSchema(t)
	reg := routing.NewIndexedRegistry(schema)
	reg.Register("P1", advFor("p1"))
	reg.Register("P2", advFor("p1"))
	reg.Register("P3", advFor("p2"))
	router := routing.NewRouter(schema, reg)

	epochBefore := reg.Epoch()
	for i := 0; i < 3; i++ {
		router.Route(queryP1()) // annotates P1 and P2
	}
	if reg.Epoch() != epochBefore {
		t.Fatal("recording hits must not bump the epoch (cached views stay valid)")
	}
	if got := reg.Hits("P1"); got != 3 {
		t.Fatalf("P1 hits = %d, want 3", got)
	}
	if got := reg.Hits("P3"); got != 0 {
		t.Fatalf("P3 hits = %d, want 0", got)
	}
	// Hottest first, zero-hit peers absent, ties by id.
	if got := reg.HotPeers(5); !reflect.DeepEqual(got, []pattern.PeerID{"P1", "P2"}) {
		t.Fatalf("HotPeers = %v", got)
	}
	if got := reg.HotPeers(1); !reflect.DeepEqual(got, []pattern.PeerID{"P1"}) {
		t.Fatalf("HotPeers(1) = %v", got)
	}
	reg.ResetHits()
	if got := reg.HotPeers(5); len(got) != 0 {
		t.Fatalf("HotPeers after reset = %v, want empty", got)
	}
}

func TestRebalanceReplicatesToLeastLoadedEligible(t *testing.T) {
	schema := replSchema(t)
	reg := routing.NewIndexedRegistry(schema)
	for _, p := range []pattern.PeerID{"HOT", "A", "B", "C", "Q"} {
		reg.Register(p, advFor("p1"))
	}
	reg.RecordHits([]pattern.PeerID{"HOT", "HOT", "HOT", "A"})
	if !reg.Quarantine("Q") {
		t.Fatal("quarantine Q")
	}

	load := map[pattern.PeerID]float64{"A": 5, "B": 1, "C": 2}
	var applied []routing.Replication
	epochBefore := reg.Epoch()
	rep := &routing.Replicator{
		Registry: reg,
		TopK:     1,
		Copies:   2,
		Load:     func(p pattern.PeerID) float64 { return load[p] },
		Eligible: func(p pattern.PeerID) bool { return p != "C" },
		Apply: func(hot, target pattern.PeerID) bool {
			applied = append(applied, routing.Replication{Hot: hot, Target: target})
			// A real Apply copies data and re-registers the target's
			// advertisement — which is the epoch bump snapshots rely on.
			if as, ok := reg.Get(target); ok {
				reg.Register(target, as)
			}
			return true
		},
	}
	got := rep.Rebalance()
	// Hot source is HOT; candidates are A (load 5) and B (load 1) — C is
	// ineligible, Q quarantined, HOT is the source. Least-loaded first:
	// B then A.
	want := []routing.Replication{{Hot: "HOT", Target: "B"}, {Hot: "HOT", Target: "A"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rebalance = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(applied, want) {
		t.Fatalf("Apply calls = %v, want %v", applied, want)
	}
	if reg.Epoch() == epochBefore {
		t.Fatal("applying a replication must bump the epoch (via Register)")
	}
	// A declined Apply is not counted.
	rep.Apply = func(hot, target pattern.PeerID) bool { return false }
	if got := rep.Rebalance(); len(got) != 0 {
		t.Fatalf("declined applies still reported: %v", got)
	}
}
