package routing

// Hot-advertisement replication: when routing demand concentrates on a
// few peers (hub saturation — the super-peer pathology the related
// work measures), the advertisements those peers serve are replicated
// to less-loaded peers so subsequent routes spread the load. The
// registry's hit counters supply the demand signal; the Apply callback
// performs the actual data/advertisement copy (the routing layer knows
// nothing about bases), and registration of the copied advertisement
// bumps the registry epoch, so every snapshot taken afterwards sees a
// consistent post-replication view.

import (
	"sort"

	"sqpeer/internal/pattern"
)

// Replication records one applied copy: Hot's advertisement (and
// backing data) now also lives at Target.
type Replication struct {
	// Hot is the overloaded source peer whose advertisement replicated.
	Hot pattern.PeerID
	// Target is the peer that received the replica.
	Target pattern.PeerID
}

// Replicator plans and applies quarantine-aware hot-advertisement
// rebalancing over one registry.
type Replicator struct {
	// Registry supplies demand (hit counters) and membership.
	Registry *Registry
	// TopK is how many of the hottest advertisements each Rebalance
	// considers (default 1).
	TopK int
	// Copies is how many replicas each hot advertisement gets per
	// Rebalance (default 1).
	Copies int
	// Load reports a peer's current load (admission occupancy, slot
	// usage — any monotone measure); lower is a better replica target.
	// Nil treats every peer as equally loaded (ties break by id).
	Load func(pattern.PeerID) float64
	// Eligible, when set, filters replica targets (e.g. only peers with
	// spare storage). Quarantined peers are never eligible regardless.
	Eligible func(pattern.PeerID) bool
	// Apply performs one copy: make Target serve Hot's data and
	// register Target's refreshed advertisement (which bumps the
	// registry epoch). Returning false skips the pair (e.g. the copy
	// failed); it is not counted. Required.
	Apply func(hot, target pattern.PeerID) bool
}

// Rebalance picks the TopK hottest advertisements by registry hit
// count and replicates each to its Copies least-loaded eligible peers.
// Quarantined peers can be replicated FROM (an overloaded source is
// the point) but never TO. Applied copies are returned in application
// order; the caller typically follows with Registry.ResetHits to start
// a fresh observation window.
func (r *Replicator) Rebalance() []Replication {
	if r.Registry == nil || r.Apply == nil {
		return nil
	}
	topK := r.TopK
	if topK <= 0 {
		topK = 1
	}
	copies := r.Copies
	if copies <= 0 {
		copies = 1
	}
	var out []Replication
	for _, hot := range r.Registry.HotPeers(topK) {
		for _, target := range r.targetsFor(hot, copies) {
			if r.Apply(hot, target) {
				out = append(out, Replication{Hot: hot, Target: target})
			}
		}
	}
	return out
}

// targetsFor returns up to n replica targets for a hot peer: known,
// not the source, not quarantined, Eligible, sorted by Load ascending
// with ties by id.
func (r *Replicator) targetsFor(hot pattern.PeerID, n int) []pattern.PeerID {
	var cands []pattern.PeerID
	for _, p := range r.Registry.Peers() {
		if p == hot || r.Registry.IsQuarantined(p) {
			continue
		}
		if r.Eligible != nil && !r.Eligible(p) {
			continue
		}
		cands = append(cands, p)
	}
	if r.Load != nil {
		load := make(map[pattern.PeerID]float64, len(cands))
		for _, p := range cands {
			load[p] = r.Load(p)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if load[cands[i]] != load[cands[j]] {
				return load[cands[i]] < load[cands[j]]
			}
			return cands[i] < cands[j]
		})
	}
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands
}
