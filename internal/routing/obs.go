package routing

import "sqpeer/internal/obs"

// CollectObs publishes the breaker's transition counters into an obs
// gather. The Stats() accessor remains the direct compatibility path.
func (s HealthStats) CollectObs(g *obs.Gather, labels ...obs.Label) {
	g.Count("routing_health_quarantines_total", float64(s.Quarantines), labels...)
	g.Count("routing_health_reinstates_total", float64(s.Reinstates), labels...)
	g.Count("routing_health_recoveries_total", float64(s.Recoveries), labels...)
	g.Count("routing_health_condemnations_total", float64(s.Condemnations), labels...)
	g.Count("routing_health_revivals_total", float64(s.Revivals), labels...)
}
