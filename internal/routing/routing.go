// Package routing implements SQPeer's semantic query routing (paper §2.3):
// matching a semantic query pattern against the active-schemas a node
// knows about, producing an annotated query pattern that records, per path
// pattern, the peers able to answer it and the rewritten patterns each
// peer should evaluate.
package routing

import (
	"sort"
	"sync"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// Registry is the routing knowledge a node holds: the active-schemas of
// the peers it has learned about (its own, its cluster's for a super-peer,
// its semantic neighborhood's for an ad-hoc peer). Registry is safe for
// concurrent use — advertisements arrive from the network while queries
// route.
type Registry struct {
	mu      sync.RWMutex
	schemas map[pattern.PeerID]*pattern.ActiveSchema
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{schemas: map[pattern.PeerID]*pattern.ActiveSchema{}}
}

// Register records (or replaces) a peer's active-schema advertisement.
func (r *Registry) Register(peer pattern.PeerID, as *pattern.ActiveSchema) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schemas[peer] = as
}

// Unregister forgets a peer, e.g. when it leaves the SON or a channel to
// it fails.
func (r *Registry) Unregister(peer pattern.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.schemas, peer)
}

// Get returns the peer's advertisement.
func (r *Registry) Get(peer pattern.PeerID) (*pattern.ActiveSchema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	as, ok := r.schemas[peer]
	return as, ok
}

// Peers returns all known peers, sorted.
func (r *Registry) Peers() []pattern.PeerID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]pattern.PeerID, 0, len(r.schemas))
	for p := range r.schemas {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of known peers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.schemas)
}

// Snapshot returns a copy of the registry's contents, for merging one
// node's knowledge into another's (active-schema pull).
func (r *Registry) Snapshot() map[pattern.PeerID]*pattern.ActiveSchema {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[pattern.PeerID]*pattern.ActiveSchema, len(r.schemas))
	for p, as := range r.schemas {
		out[p] = as
	}
	return out
}

// Stats reports the work one routing invocation performed, used by the
// routing-throughput benchmarks (FIG-2).
type Stats struct {
	// Comparisons counts isSubsumed tests executed — the inner-loop cost
	// of the paper's O(n·m·l) pseudocode.
	Comparisons int
	// PeersConsidered counts registered peers examined.
	PeersConsidered int
	// Annotations counts (pattern, peer) annotations produced.
	Annotations int
}

// Router runs the Query-Routing Algorithm over a registry.
type Router struct {
	// Schema is the community schema supplying subsumption.
	Schema *rdf.Schema
	// Registry holds the known peer advertisements.
	Registry *Registry
	// Mode selects full RDF/S subsumption (the paper's algorithm) or the
	// exact-match ablation.
	Mode pattern.SubsumptionMode
	// MaxPeersPerPattern, when positive, caps how many peers each path
	// pattern is annotated with — the paper's future-work constraint on
	// "the number of peer nodes that each query is broadcasted and
	// further processed" (§5), trading answer completeness for
	// processing load. Peers covering more of the whole query are kept
	// first (they answer locally with fewer channels), ties broken by id.
	MaxPeersPerPattern int
}

// NewRouter returns a router with full subsumption over the registry.
func NewRouter(schema *rdf.Schema, reg *Registry) *Router {
	return &Router{Schema: schema, Registry: reg, Mode: pattern.FullSubsumption}
}

// Route runs the paper's Query-Routing Algorithm:
//
//	AQ' := empty annotations for AQ
//	for each query path pattern AQi ∈ AQ:
//	  for each active-schema ASj:
//	    for each path pattern ASjk ∈ ASj:
//	      if isSubsumed(ASjk, AQi): annotate AQ'i with peer Pj
//	return AQ'
//
// The annotation also records the rewritten patterns (ASjk with AQi's
// variables), implementing the per-peer query rewriting of §2.3.
func (r *Router) Route(q *pattern.QueryPattern) *pattern.Annotated {
	ann, _ := r.RouteWithStats(q)
	return ann
}

// RouteWithStats is Route plus work counters.
func (r *Router) RouteWithStats(q *pattern.QueryPattern) (*pattern.Annotated, Stats) {
	ann := pattern.NewAnnotated(q)
	var st Stats
	snapshot := r.Registry.Snapshot()
	// Deterministic peer order.
	peers := make([]pattern.PeerID, 0, len(snapshot))
	for p := range snapshot {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })

	for _, qp := range q.Patterns {
		for _, peer := range peers {
			st.PeersConsidered++
			as := snapshot[peer]
			if as.SchemaName != "" && q.SchemaName != "" && as.SchemaName != q.SchemaName {
				continue // different SON
			}
			var rewrites []pattern.PathPattern
			for _, asp := range as.Patterns {
				st.Comparisons++
				if r.Mode.Matches(r.Schema, asp, qp) {
					rewrites = append(rewrites, pattern.PathPattern{
						ID:         qp.ID,
						SubjectVar: qp.SubjectVar,
						ObjectVar:  qp.ObjectVar,
						Property:   asp.Property,
						Domain:     asp.Domain,
						Range:      asp.Range,
					})
				}
			}
			if len(rewrites) > 0 {
				ann.Annotate(qp.ID, peer, rewrites)
				st.Annotations++
			}
		}
	}
	if r.MaxPeersPerPattern > 0 {
		r.truncateAnnotation(ann, snapshot)
	}
	return ann, st
}

// truncateAnnotation keeps at most MaxPeersPerPattern peers per path
// pattern, preferring peers whose advertisement covers more of the whole
// query.
func (r *Router) truncateAnnotation(ann *pattern.Annotated, snapshot map[pattern.PeerID]*pattern.ActiveSchema) {
	coverage := map[pattern.PeerID]float64{}
	for peer, as := range snapshot {
		coverage[peer] = pattern.CoverageFraction(r.Schema, as, ann.Query, r.Mode)
	}
	truncated := pattern.NewAnnotated(ann.Query)
	for _, qp := range ann.Query.Patterns {
		peers := append([]pattern.PeerID{}, ann.PeersFor(qp.ID)...)
		sort.Slice(peers, func(i, j int) bool {
			ci, cj := coverage[peers[i]], coverage[peers[j]]
			if ci != cj {
				return ci > cj
			}
			return peers[i] < peers[j]
		})
		if len(peers) > r.MaxPeersPerPattern {
			peers = peers[:r.MaxPeersPerPattern]
		}
		for _, peer := range peers {
			truncated.Annotate(qp.ID, peer, ann.RewritesFor(qp.ID, peer))
		}
	}
	ann.Peers = truncated.Peers
	ann.Rewrites = truncated.Rewrites
}

// RelevantPeers returns the peers whose advertisement covers at least one
// path pattern of the query — the set a SON delivers the query to, versus
// flooding's everyone.
func (r *Router) RelevantPeers(q *pattern.QueryPattern) []pattern.PeerID {
	return r.Route(q).AllPeers()
}
