// Package routing implements SQPeer's semantic query routing (paper §2.3):
// matching a semantic query pattern against the active-schemas a node
// knows about, producing an annotated query pattern that records, per path
// pattern, the peers able to answer it and the rewritten patterns each
// peer should evaluate.
//
// Two matching strategies are provided. The brute-force path is the
// paper's literal O(n·m·l) pseudocode: every advertisement of every peer
// is tested against every query pattern. The indexed path keeps an
// inverted index from property IRI to (peer, path-pattern) postings,
// expanded through the schema's super-property closure at registration
// time, so one route touches only the candidate postings of each query
// pattern's property — sub-linear in SON size for selective schemas. Both
// produce identical annotations; the brute-force path is retained as an
// ablation and as the fallback for registries without a schema.
package routing

import (
	"sort"
	"sync"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// Posting is one inverted-index entry: a peer advertising a path pattern
// whose property is subsumed by the index key.
type Posting struct {
	// Peer is the advertising peer.
	Peer pattern.PeerID
	// Pattern is the advertised path pattern (the ASjk of the paper's
	// pseudocode). Its property is a sub-property of — or equal to — the
	// property the posting is filed under.
	Pattern pattern.PathPattern
}

// Registry is the routing knowledge a node holds: the active-schemas of
// the peers it has learned about (its own, its cluster's for a super-peer,
// its semantic neighborhood's for an ad-hoc peer). Registry is safe for
// concurrent use — advertisements arrive from the network while queries
// route.
//
// A registry built with NewIndexedRegistry additionally maintains the
// inverted property index; registration expands each advertised property
// through the schema's super-property closure so queries over a
// super-property find peers advertising any of its sub-properties.
type Registry struct {
	mu      sync.RWMutex
	schema  *rdf.Schema // nil: no index maintained
	schemas map[pattern.PeerID]*pattern.ActiveSchema
	// index maps property IRI -> peer -> advertised patterns, maintained
	// incrementally on Register/Unregister. Inner pattern slices are
	// immutable once stored (Register always builds fresh slices), so a
	// View may safely alias them.
	index map[rdf.IRI]map[pattern.PeerID][]pattern.PathPattern
	// peerProps records which index keys each peer posted under, for O(1)
	// unregistration.
	peerProps map[pattern.PeerID][]rdf.IRI
	// quarantined marks peers whose advertisements are suppressed from
	// views (and hence from routing) without being forgotten: the schema
	// stays registered so reinstatement is a flag flip, not a re-learn.
	quarantined map[pattern.PeerID]bool
	// epoch counts mutations; the cached view is valid only for the epoch
	// it was built at.
	epoch uint64
	view  *View
	// hits counts, per advertised peer, how many routed queries were
	// annotated with it — the demand signal hot-advertisement
	// replication acts on. Recording a hit does NOT bump the epoch:
	// demand observation is not a routing change, so cached views stay
	// valid.
	hits map[pattern.PeerID]uint64
}

// NewRegistry returns an empty registry without an inverted index; routing
// over it always uses the brute-force path.
func NewRegistry() *Registry {
	return &Registry{
		schemas:     map[pattern.PeerID]*pattern.ActiveSchema{},
		quarantined: map[pattern.PeerID]bool{},
	}
}

// NewIndexedRegistry returns an empty registry that maintains the inverted
// property index against the given community schema.
func NewIndexedRegistry(schema *rdf.Schema) *Registry {
	r := NewRegistry()
	r.schema = schema
	r.index = map[rdf.IRI]map[pattern.PeerID][]pattern.PathPattern{}
	r.peerProps = map[pattern.PeerID][]rdf.IRI{}
	return r
}

// EnableIndex retrofits the inverted index onto a registry (e.g. one built
// through the facade before a schema was known), reindexing every
// registered advertisement.
func (r *Registry) EnableIndex(schema *rdf.Schema) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schema = schema
	r.index = map[rdf.IRI]map[pattern.PeerID][]pattern.PathPattern{}
	r.peerProps = map[pattern.PeerID][]rdf.IRI{}
	for peer, as := range r.schemas {
		r.indexLocked(peer, as)
	}
	r.bump()
}

// Indexed reports whether the registry maintains the inverted index.
func (r *Registry) Indexed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.schema != nil
}

// bump invalidates the cached view after a mutation. Callers hold r.mu.
func (r *Registry) bump() {
	r.epoch++
	r.view = nil
}

// indexLocked adds a peer's postings. Callers hold r.mu and have already
// removed any previous postings for the peer.
func (r *Registry) indexLocked(peer pattern.PeerID, as *pattern.ActiveSchema) {
	if r.schema == nil {
		return
	}
	var keys []rdf.IRI
	for _, asp := range as.Patterns {
		// File the advertisement under every super-property (including the
		// property itself): a query over prop1 then finds a peer
		// advertising prop4 ⊑ prop1 by direct lookup.
		for _, sup := range r.schema.SuperProperties(asp.Property) {
			bucket, ok := r.index[sup]
			if !ok {
				bucket = map[pattern.PeerID][]pattern.PathPattern{}
				r.index[sup] = bucket
			}
			if len(bucket[peer]) == 0 {
				keys = append(keys, sup)
			}
			// Append-to-fresh-slice: the stored slice is never mutated in
			// place after this Register completes, so views may alias it.
			bucket[peer] = append(append([]pattern.PathPattern{}, bucket[peer]...), asp)
		}
	}
	r.peerProps[peer] = keys
}

// unindexLocked removes a peer's postings. Callers hold r.mu.
func (r *Registry) unindexLocked(peer pattern.PeerID) {
	if r.schema == nil {
		return
	}
	for _, key := range r.peerProps[peer] {
		if bucket, ok := r.index[key]; ok {
			delete(bucket, peer)
			if len(bucket) == 0 {
				delete(r.index, key)
			}
		}
	}
	delete(r.peerProps, peer)
}

// Register records (or replaces) a peer's active-schema advertisement.
func (r *Registry) Register(peer pattern.PeerID, as *pattern.ActiveSchema) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[peer]; ok {
		r.unindexLocked(peer)
	}
	r.schemas[peer] = as
	r.indexLocked(peer, as)
	r.bump()
}

// Unregister forgets a peer, e.g. when it leaves the SON or a channel to
// it fails. Forgetting also lifts any quarantine: a peer that later
// re-registers starts with a clean slate.
func (r *Registry) Unregister(peer pattern.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	wasQuarantined := r.quarantined[peer]
	delete(r.quarantined, peer)
	if _, ok := r.schemas[peer]; !ok {
		if wasQuarantined {
			r.bump()
		}
		return
	}
	delete(r.schemas, peer)
	r.unindexLocked(peer)
	r.bump()
}

// Quarantine suppresses a peer's advertisements from routing views
// without forgetting its schema (circuit-breaker open: the peer is
// suspected, not departed). The epoch bumps, so every Route call after
// the quarantine excludes the peer with no per-call filtering. Returns
// whether the call changed anything (false for unknown or
// already-quarantined peers). Note that Register does NOT lift an
// existing quarantine — a misbehaving peer re-advertising stays dark
// until Reinstate or Unregister.
func (r *Registry) Quarantine(peer pattern.PeerID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[peer]; !ok || r.quarantined[peer] {
		return false
	}
	r.quarantined[peer] = true
	r.bump()
	return true
}

// Reinstate lifts a peer's quarantine, making its stored advertisement
// routable again. Returns whether the peer was quarantined.
func (r *Registry) Reinstate(peer pattern.PeerID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.quarantined[peer] {
		return false
	}
	delete(r.quarantined, peer)
	r.bump()
	return true
}

// IsQuarantined reports whether the peer is quarantined.
func (r *Registry) IsQuarantined(peer pattern.PeerID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.quarantined[peer]
}

// QuarantinedPeers returns the quarantined peers, sorted.
func (r *Registry) QuarantinedPeers() []pattern.PeerID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]pattern.PeerID, 0, len(r.quarantined))
	for p := range r.quarantined {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordHits charges one routing hit to each named peer (the router
// calls this with the annotated peer set after every route). The epoch
// is deliberately not bumped — see the hits field.
func (r *Registry) RecordHits(peers []pattern.PeerID) {
	if len(peers) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hits == nil {
		r.hits = map[pattern.PeerID]uint64{}
	}
	for _, p := range peers {
		r.hits[p]++
	}
}

// Hits returns how many routed queries annotated the peer since the
// last ResetHits.
func (r *Registry) Hits(peer pattern.PeerID) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hits[peer]
}

// HotPeers returns the k peers with the most routing hits, hottest
// first (ties broken by id). Quarantined peers are included — an
// overloaded advertisement is exactly the kind worth replicating away
// from. Peers with zero hits never appear.
func (r *Registry) HotPeers(k int) []pattern.PeerID {
	if k <= 0 {
		return nil
	}
	r.mu.RLock()
	out := make([]pattern.PeerID, 0, len(r.hits))
	for p, n := range r.hits {
		if n > 0 {
			out = append(out, p)
		}
	}
	hits := make(map[pattern.PeerID]uint64, len(out))
	for _, p := range out {
		hits[p] = r.hits[p]
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if hits[out[i]] != hits[out[j]] {
			return hits[out[i]] > hits[out[j]]
		}
		return out[i] < out[j]
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ResetHits zeroes the demand counters (e.g. between observation
// windows, after a rebalance acted on them).
func (r *Registry) ResetHits() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hits = nil
}

// Get returns the peer's advertisement.
func (r *Registry) Get(peer pattern.PeerID) (*pattern.ActiveSchema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	as, ok := r.schemas[peer]
	return as, ok
}

// Peers returns all known peers, sorted.
func (r *Registry) Peers() []pattern.PeerID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]pattern.PeerID, 0, len(r.schemas))
	for p := range r.schemas {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of known peers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.schemas)
}

// Epoch returns the registry's mutation counter. Each Register/Unregister
// bumps it, which is how snapshot views and derived indexes detect
// staleness.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// View is an immutable, epoch-stamped snapshot of a registry: a consistent
// set of advertisements (and, for indexed registries, postings) that one
// routing invocation works over while registrations continue concurrently.
// Views are never mutated after construction; holding one is always safe.
type View struct {
	// Epoch is the registry epoch the view was built at.
	Epoch uint64
	// schemas and peers snapshot the advertisement table.
	schemas map[pattern.PeerID]*pattern.ActiveSchema
	peers   []pattern.PeerID
	// postings is the flattened inverted index (nil for unindexed
	// registries): property -> postings sorted by peer, patterns in
	// advertisement order.
	postings map[rdf.IRI][]Posting
}

// Get returns the peer's advertisement in the view.
func (v *View) Get(peer pattern.PeerID) (*pattern.ActiveSchema, bool) {
	as, ok := v.schemas[peer]
	return as, ok
}

// Peers returns the view's peers, sorted. The returned slice is shared and
// must not be mutated.
func (v *View) Peers() []pattern.PeerID { return v.peers }

// Len returns the number of peers in the view.
func (v *View) Len() int { return len(v.schemas) }

// Indexed reports whether the view carries inverted-index postings.
func (v *View) Indexed() bool { return v.postings != nil }

// PostingsFor returns the candidate postings for a property, sorted by
// peer. The returned slice is shared and must not be mutated.
func (v *View) PostingsFor(prop rdf.IRI) []Posting { return v.postings[prop] }

// Snapshot returns an immutable epoch-stamped view of the registry. The
// view is cached: repeated snapshots of an unchanged registry are O(1),
// and any Register/Unregister invalidates the cache by bumping the epoch.
// Callers merging one node's knowledge into another's iterate
// View.Peers()/View.Get.
func (r *Registry) Snapshot() *View {
	r.mu.RLock()
	v := r.view
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.view == nil {
		r.view = r.buildViewLocked()
	}
	return r.view
}

// buildViewLocked flattens the registry into an immutable view,
// excluding quarantined peers — the one place the quarantine takes
// effect, so both routing strategies skip suspected peers for free.
// Callers hold r.mu.
func (r *Registry) buildViewLocked() *View {
	v := &View{
		Epoch:   r.epoch,
		schemas: make(map[pattern.PeerID]*pattern.ActiveSchema, len(r.schemas)),
		peers:   make([]pattern.PeerID, 0, len(r.schemas)),
	}
	for p, as := range r.schemas {
		if r.quarantined[p] {
			continue
		}
		v.schemas[p] = as
		v.peers = append(v.peers, p)
	}
	sort.Slice(v.peers, func(i, j int) bool { return v.peers[i] < v.peers[j] })
	if r.schema != nil {
		v.postings = make(map[rdf.IRI][]Posting, len(r.index))
		for prop, bucket := range r.index {
			flat := make([]Posting, 0, len(bucket))
			peers := make([]pattern.PeerID, 0, len(bucket))
			for p := range bucket {
				if r.quarantined[p] {
					continue
				}
				peers = append(peers, p)
			}
			sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
			for _, p := range peers {
				for _, pp := range bucket[p] {
					flat = append(flat, Posting{Peer: p, Pattern: pp})
				}
			}
			if len(flat) > 0 {
				v.postings[prop] = flat
			}
		}
	}
	return v
}

// Stats reports the work one routing invocation performed, used by the
// routing-throughput benchmarks (FIG-2).
type Stats struct {
	// Comparisons counts isSubsumed tests executed — the inner-loop cost
	// of the paper's O(n·m·l) pseudocode. The indexed path only tests
	// candidate postings, so this is how the index's work saving shows up.
	Comparisons int
	// PeersConsidered counts registered peers examined.
	PeersConsidered int
	// Annotations counts (pattern, peer) annotations produced.
	Annotations int
	// Indexed reports whether the inverted-index path answered the route.
	Indexed bool
}

// Router runs the Query-Routing Algorithm over a registry.
type Router struct {
	// Schema is the community schema supplying subsumption.
	Schema *rdf.Schema
	// Registry holds the known peer advertisements.
	Registry *Registry
	// Mode selects full RDF/S subsumption (the paper's algorithm) or the
	// exact-match ablation.
	Mode pattern.SubsumptionMode
	// MaxPeersPerPattern, when positive, caps how many peers each path
	// pattern is annotated with — the paper's future-work constraint on
	// "the number of peer nodes that each query is broadcasted and
	// further processed" (§5), trading answer completeness for
	// processing load. Peers covering more of the whole query are kept
	// first (they answer locally with fewer channels), ties broken by id.
	MaxPeersPerPattern int
	// BruteForce, when set, disables the inverted-index path even on an
	// indexed registry — the ablation the FIG-2 index benchmarks compare
	// against.
	BruteForce bool
}

// NewRouter returns a router with full subsumption over the registry.
func NewRouter(schema *rdf.Schema, reg *Registry) *Router {
	return &Router{Schema: schema, Registry: reg, Mode: pattern.FullSubsumption}
}

// Route runs the paper's Query-Routing Algorithm:
//
//	AQ' := empty annotations for AQ
//	for each query path pattern AQi ∈ AQ:
//	  for each active-schema ASj:
//	    for each path pattern ASjk ∈ ASj:
//	      if isSubsumed(ASjk, AQi): annotate AQ'i with peer Pj
//	return AQ'
//
// The annotation also records the rewritten patterns (ASjk with AQi's
// variables), implementing the per-peer query rewriting of §2.3. On an
// indexed registry the inner two loops collapse to an index lookup over
// the pattern's property; the result is identical.
func (r *Router) Route(q *pattern.QueryPattern) *pattern.Annotated {
	ann, _ := r.RouteWithStats(q)
	return ann
}

// RouteWithStats is Route plus work counters.
func (r *Router) RouteWithStats(q *pattern.QueryPattern) (*pattern.Annotated, Stats) {
	v := r.Registry.Snapshot()
	var ann *pattern.Annotated
	var st Stats
	if v.Indexed() && !r.BruteForce {
		ann, st = r.routeIndexed(q, v)
	} else {
		ann, st = r.routeBrute(q, v)
	}
	if r.MaxPeersPerPattern > 0 {
		r.truncateAnnotation(ann, v)
	}
	// Demand accounting for hot-advertisement replication: every peer the
	// final annotation names took one hit.
	r.Registry.RecordHits(ann.AllPeers())
	return ann, st
}

// rewriteFor specializes an advertised pattern to the query pattern's
// variables and id (the per-peer query rewriting of §2.3).
func rewriteFor(qp, asp pattern.PathPattern) pattern.PathPattern {
	return pattern.PathPattern{
		ID:         qp.ID,
		SubjectVar: qp.SubjectVar,
		ObjectVar:  qp.ObjectVar,
		Property:   asp.Property,
		Domain:     asp.Domain,
		Range:      asp.Range,
	}
}

// routeBrute is the paper's literal triple loop over every advertisement.
func (r *Router) routeBrute(q *pattern.QueryPattern, v *View) (*pattern.Annotated, Stats) {
	ann := pattern.NewAnnotated(q)
	var st Stats
	for _, qp := range q.Patterns {
		for _, peer := range v.Peers() {
			st.PeersConsidered++
			as, _ := v.Get(peer)
			if as.SchemaName != "" && q.SchemaName != "" && as.SchemaName != q.SchemaName {
				continue // different SON
			}
			var rewrites []pattern.PathPattern
			for _, asp := range as.Patterns {
				st.Comparisons++
				if r.Mode.Matches(r.Schema, asp, qp) {
					rewrites = append(rewrites, rewriteFor(qp, asp))
				}
			}
			if len(rewrites) > 0 {
				ann.Annotate(qp.ID, peer, rewrites)
				st.Annotations++
			}
		}
	}
	return ann, st
}

// routeIndexed answers the route from the inverted index: per query
// pattern, only the postings filed under the pattern's property are
// candidates. Property subsumption is guaranteed by construction for the
// full-subsumption mode; domain/range (and, for the exact-only ablation,
// shape equality) are still verified per posting.
func (r *Router) routeIndexed(q *pattern.QueryPattern, v *View) (*pattern.Annotated, Stats) {
	ann := pattern.NewAnnotated(q)
	st := Stats{Indexed: true}
	for _, qp := range q.Patterns {
		postings := v.PostingsFor(qp.Property)
		var cur pattern.PeerID
		var rewrites []pattern.PathPattern
		flush := func() {
			if len(rewrites) > 0 {
				ann.Annotate(qp.ID, cur, rewrites)
				st.Annotations++
				rewrites = nil
			}
		}
		for _, post := range postings {
			if post.Peer != cur {
				flush()
				cur = post.Peer
				st.PeersConsidered++
				if as, ok := v.Get(cur); ok &&
					as.SchemaName != "" && q.SchemaName != "" && as.SchemaName != q.SchemaName {
					// Different SON: skip this peer's postings wholesale.
					cur = ""
					continue
				}
			}
			if cur == "" {
				continue
			}
			st.Comparisons++
			if r.Mode.Matches(r.Schema, post.Pattern, qp) {
				rewrites = append(rewrites, rewriteFor(qp, post.Pattern))
			}
		}
		flush()
	}
	return ann, st
}

// truncateAnnotation keeps at most MaxPeersPerPattern peers per path
// pattern, preferring peers whose advertisement covers more of the whole
// query. Coverage is computed only for the peers the route actually
// annotated — not every registered peer.
func (r *Router) truncateAnnotation(ann *pattern.Annotated, v *View) {
	coverage := map[pattern.PeerID]float64{}
	for _, peer := range ann.AllPeers() {
		if as, ok := v.Get(peer); ok {
			coverage[peer] = pattern.CoverageFraction(r.Schema, as, ann.Query, r.Mode)
		}
	}
	truncated := pattern.NewAnnotated(ann.Query)
	for _, qp := range ann.Query.Patterns {
		peers := append([]pattern.PeerID{}, ann.PeersFor(qp.ID)...)
		sort.Slice(peers, func(i, j int) bool {
			ci, cj := coverage[peers[i]], coverage[peers[j]]
			if ci != cj {
				return ci > cj
			}
			return peers[i] < peers[j]
		})
		if len(peers) > r.MaxPeersPerPattern {
			peers = peers[:r.MaxPeersPerPattern]
		}
		for _, peer := range peers {
			truncated.Annotate(qp.ID, peer, ann.RewritesFor(qp.ID, peer))
		}
	}
	ann.Peers = truncated.Peers
	ann.Rewrites = truncated.Rewrites
}

// RelevantPeers returns the peers whose advertisement covers at least one
// path pattern of the query — the set a SON delivers the query to, versus
// flooding's everyone.
func (r *Router) RelevantPeers(q *pattern.QueryPattern) []pattern.PeerID {
	return r.Route(q).AllPeers()
}

// RoutePatterns routes a bare set of path patterns — a subplan's leaves,
// not a whole query — against a fresh registry snapshot. The plan-change
// protocol uses it to find an alternate peer for one migrating subtree
// without re-routing the entire query: the snapshot is quarantine-aware,
// so peers dropped mid-execution are already excluded.
func (r *Router) RoutePatterns(pats []pattern.PathPattern) *pattern.Annotated {
	q := &pattern.QueryPattern{Patterns: pats}
	return r.Route(q)
}
