package routing_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/routing"
)

// indexedPaperRouter is paperRouter over an indexed registry.
func indexedPaperRouter(t testing.TB) *routing.Router {
	t.Helper()
	reg := routing.NewIndexedRegistry(gen.PaperSchema())
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	return routing.NewRouter(gen.PaperSchema(), reg)
}

// assertSameAnnotation fails unless the two annotations are deeply equal:
// same peers per pattern, same rewrites per (pattern, peer).
func assertSameAnnotation(t *testing.T, label string, indexed, brute *pattern.Annotated) {
	t.Helper()
	if !reflect.DeepEqual(indexed.Peers, brute.Peers) {
		t.Errorf("%s: peers diverge:\n  indexed: %v\n  brute:   %v", label, indexed.Peers, brute.Peers)
	}
	if !reflect.DeepEqual(indexed.Rewrites, brute.Rewrites) {
		t.Errorf("%s: rewrites diverge:\n  indexed: %v\n  brute:   %v", label, indexed.Rewrites, brute.Rewrites)
	}
}

// TestIndexedRouteMatchesFigure2 pins the indexed path to the paper's
// Figure 2, including the prop4 ⊑ prop1 subsumption hit for P4.
func TestIndexedRouteMatchesFigure2(t *testing.T) {
	r := indexedPaperRouter(t)
	if !r.Registry.Indexed() {
		t.Fatal("registry should be indexed")
	}
	ann, st := r.RouteWithStats(gen.PaperQuery())
	if !st.Indexed {
		t.Fatal("route did not use the index")
	}
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P2 P4]" {
		t.Errorf("Q1 peers = %s, want [P1 P2 P4]", got)
	}
	if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P1 P3 P4]" {
		t.Errorf("Q2 peers = %s, want [P1 P3 P4]", got)
	}
	assertSameAnnotation(t, "figure2", ann, paperRouter(t).Route(gen.PaperQuery()))
}

// TestIndexedRouteDoesLessWork verifies the index's whole point: fewer
// subsumption comparisons than the brute-force triple loop on the same
// knowledge.
func TestIndexedRouteDoesLessWork(t *testing.T) {
	_, brute := paperRouter(t).RouteWithStats(gen.PaperQuery())
	_, indexed := indexedPaperRouter(t).RouteWithStats(gen.PaperQuery())
	if indexed.Comparisons >= brute.Comparisons {
		t.Errorf("indexed made %d comparisons, brute %d — index saved nothing",
			indexed.Comparisons, brute.Comparisons)
	}
}

// TestBruteForceAblationOnIndexedRegistry checks the Router.BruteForce
// flag bypasses the index and still agrees with it.
func TestBruteForceAblationOnIndexedRegistry(t *testing.T) {
	r := indexedPaperRouter(t)
	r.BruteForce = true
	ann, st := r.RouteWithStats(gen.PaperQuery())
	if st.Indexed {
		t.Fatal("BruteForce route still used the index")
	}
	r.BruteForce = false
	assertSameAnnotation(t, "ablation", r.Route(gen.PaperQuery()), ann)
}

// TestIndexedMatchesBruteOnRandomWorkloads sweeps randomized synthetic
// SONs and asserts indexed and brute-force routing produce identical
// annotations in both subsumption modes.
func TestIndexedMatchesBruteOnRandomWorkloads(t *testing.T) {
	for _, withSubs := range []bool{false, true} {
		for _, dist := range []gen.Distribution{gen.Vertical, gen.Horizontal, gen.Mixed} {
			syn := gen.NewSynthetic(8, withSubs)
			bases := syn.Bases(24, 4, dist)
			ases := gen.ActiveSchemas(syn.Schema, bases)

			breg := routing.NewRegistry()
			ireg := routing.NewIndexedRegistry(syn.Schema)
			for p, as := range ases {
				breg.Register(p, as)
				ireg.Register(p, as)
			}
			for _, mode := range []pattern.SubsumptionMode{pattern.FullSubsumption, pattern.ExactOnly} {
				brouter := routing.NewRouter(syn.Schema, breg)
				irouter := routing.NewRouter(syn.Schema, ireg)
				brouter.Mode, irouter.Mode = mode, mode
				for qi, q := range syn.RandomQueries(12, 3, 42) {
					label := fmt.Sprintf("subs=%v dist=%s mode=%v q%d", withSubs, dist, mode, qi)
					iann, ist := irouter.RouteWithStats(q)
					bann, _ := brouter.RouteWithStats(q)
					if !ist.Indexed {
						t.Fatalf("%s: indexed registry routed brute-force", label)
					}
					assertSameAnnotation(t, label, iann, bann)
				}
			}
		}
	}
}

// TestIndexedRegistryReplaceAndUnregister exercises incremental index
// maintenance: re-advertisement replaces postings, unregister removes
// them.
func TestIndexedRegistryReplaceAndUnregister(t *testing.T) {
	reg := routing.NewIndexedRegistry(gen.PaperSchema())
	as := gen.PaperActiveSchemas()
	r := routing.NewRouter(gen.PaperSchema(), reg)

	reg.Register("P1", as["P2"]) // only prop1
	if got := fmt.Sprint(r.Route(gen.PaperQuery()).PeersFor("Q2")); got != "[]" {
		t.Errorf("Q2 peers before re-advertisement = %s", got)
	}
	reg.Register("P1", as["P1"]) // prop1 + prop2
	if got := fmt.Sprint(r.Route(gen.PaperQuery()).PeersFor("Q2")); got != "[P1]" {
		t.Errorf("Q2 peers after re-advertisement = %s", got)
	}
	reg.Unregister("P1")
	ann := r.Route(gen.PaperQuery())
	if len(ann.AllPeers()) != 0 {
		t.Errorf("postings leaked after Unregister: %v", ann.AllPeers())
	}
}

// TestSnapshotViewImmutableUnderChurn holds a view across registrations
// and checks it never changes, while fresh snapshots see the churn.
func TestSnapshotViewImmutableUnderChurn(t *testing.T) {
	reg := routing.NewIndexedRegistry(gen.PaperSchema())
	as := gen.PaperActiveSchemas()
	reg.Register("P1", as["P1"])
	v1 := reg.Snapshot()
	if v1 != reg.Snapshot() {
		t.Error("snapshot of unchanged registry should be cached")
	}
	reg.Register("P4", as["P4"])
	if v1.Len() != 1 {
		t.Errorf("held view changed under churn: %d peers", v1.Len())
	}
	v2 := reg.Snapshot()
	if v2.Epoch <= v1.Epoch {
		t.Errorf("epoch did not advance: %d -> %d", v1.Epoch, v2.Epoch)
	}
	if v2.Len() != 2 {
		t.Errorf("fresh view misses churn: %d peers", v2.Len())
	}
}

// TestIndexedRegistryConcurrentChurn routes while peers register and
// unregister from many goroutines; run with -race. Every successful route
// must be internally consistent (indexed result equal to brute-force over
// the same snapshot epoch is checked by the equality tests; here we check
// crash/race freedom and monotone epochs).
func TestIndexedRegistryConcurrentChurn(t *testing.T) {
	reg := routing.NewIndexedRegistry(gen.PaperSchema())
	as := gen.PaperActiveSchemas()
	r := routing.NewRouter(gen.PaperSchema(), reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				peer := pattern.PeerID(fmt.Sprintf("P%d-%d", g, i))
				reg.Register(peer, as["P4"])
				ann := r.Route(gen.PaperQuery())
				if len(ann.PeersFor("Q1")) == 0 {
					// The registering goroutine itself guarantees at least
					// its own peer is annotated (prop4 ⊑ prop1).
					panic("route lost the registering goroutine's own peer")
				}
				reg.Unregister(peer)
			}
		}(g)
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Errorf("registry leaked %d peers", reg.Len())
	}
}

// TestEnableIndexRetrofit indexes an already-populated registry.
func TestEnableIndexRetrofit(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	reg.EnableIndex(gen.PaperSchema())
	r := routing.NewRouter(gen.PaperSchema(), reg)
	ann, st := r.RouteWithStats(gen.PaperQuery())
	if !st.Indexed {
		t.Fatal("retrofitted registry did not route via the index")
	}
	assertSameAnnotation(t, "retrofit", ann, paperRouter(t).Route(gen.PaperQuery()))
}

// TestTruncateOnlyScoresAnnotatedPeers pins the truncation fix: with many
// irrelevant peers registered, MaxPeersPerPattern must select among the
// annotated peers only and still produce Figure-2-consistent output.
func TestTruncateOnlyScoresAnnotatedPeers(t *testing.T) {
	for _, mk := range []func() *routing.Registry{
		routing.NewRegistry,
		func() *routing.Registry { return routing.NewIndexedRegistry(gen.PaperSchema()) },
	} {
		reg := mk()
		for peer, as := range gen.PaperActiveSchemas() {
			reg.Register(peer, as)
		}
		// Foreign-SON peers are registered but never annotated.
		foreign := pattern.NewActiveSchema("http://other-SON#")
		foreign.Patterns = append(foreign.Patterns, pattern.PathPattern{
			ID: "AS1", SubjectVar: "s", ObjectVar: "o",
			Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2"),
		})
		for i := 0; i < 10; i++ {
			reg.Register(pattern.PeerID(fmt.Sprintf("PX%d", i)), foreign)
		}
		r := routing.NewRouter(gen.PaperSchema(), reg)
		r.MaxPeersPerPattern = 2
		ann := r.Route(gen.PaperQuery())
		// P1 and P4 cover both patterns (coverage 1.0); P2/P3 cover one.
		if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P4]" {
			t.Errorf("truncated Q1 peers = %s, want [P1 P4]", got)
		}
		if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P1 P4]" {
			t.Errorf("truncated Q2 peers = %s, want [P1 P4]", got)
		}
	}
}
