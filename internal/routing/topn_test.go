package routing_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/routing"
)

// TestMaxPeersPerPattern exercises the paper's §5 future-work constraint:
// capping how many peers each path pattern is broadcast to.
func TestMaxPeersPerPattern(t *testing.T) {
	reg := routing.NewRegistry()
	for id, as := range gen.PaperActiveSchemas() {
		reg.Register(id, as)
	}
	r := routing.NewRouter(gen.PaperSchema(), reg)

	r.MaxPeersPerPattern = 2
	ann := r.Route(gen.PaperQuery())
	// P1 and P4 cover 100% of the query and must be preferred over the
	// half-coverage P2 and P3.
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P4]" {
		t.Errorf("capped Q1 peers = %s, want [P1 P4] (full-coverage first)", got)
	}
	if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P1 P4]" {
		t.Errorf("capped Q2 peers = %s, want [P1 P4]", got)
	}
	if !ann.Complete() {
		t.Error("capped annotation must stay complete when enough peers exist")
	}

	r.MaxPeersPerPattern = 1
	ann1 := r.Route(gen.PaperQuery())
	if len(ann1.PeersFor("Q1")) != 1 || len(ann1.PeersFor("Q2")) != 1 {
		t.Errorf("cap=1 annotation = %s", ann1)
	}

	// Rewrites survive truncation.
	if len(ann.RewritesFor("Q1", "P4")) != 1 {
		t.Error("truncation dropped P4's rewrite")
	}

	r.MaxPeersPerPattern = 0
	full := r.Route(gen.PaperQuery())
	if got := fmt.Sprint(full.PeersFor("Q1")); got != "[P1 P2 P4]" {
		t.Errorf("uncapped Q1 peers = %s", got)
	}
}
