package routing_test

import (
	"fmt"
	"sync"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/routing"
)

func paperRouter(t testing.TB) *routing.Router {
	t.Helper()
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	return routing.NewRouter(gen.PaperSchema(), reg)
}

// TestRouteFigure2 reproduces the paper's Figure 2 exactly: Q1 annotated
// with P1, P2, P4 (P4 via prop4 ⊑ prop1) and Q2 with P1, P3, P4.
func TestRouteFigure2(t *testing.T) {
	r := paperRouter(t)
	ann := r.Route(gen.PaperQuery())

	q1 := ann.PeersFor("Q1")
	if fmt.Sprint(q1) != "[P1 P2 P4]" {
		t.Errorf("Q1 peers = %v, want [P1 P2 P4]", q1)
	}
	q2 := ann.PeersFor("Q2")
	if fmt.Sprint(q2) != "[P1 P3 P4]" {
		t.Errorf("Q2 peers = %v, want [P1 P3 P4]", q2)
	}
	if !ann.Complete() {
		t.Error("Figure-2 annotation must be complete")
	}
}

func TestRouteRewritesP4ToProp4(t *testing.T) {
	r := paperRouter(t)
	ann := r.Route(gen.PaperQuery())
	rw := ann.RewritesFor("Q1", "P4")
	if len(rw) != 1 || rw[0].Property != gen.N1("prop4") {
		t.Fatalf("P4's Q1 rewrite = %v, want prop4", rw)
	}
	if rw[0].SubjectVar != "X" || rw[0].ObjectVar != "Y" {
		t.Errorf("rewrite lost query variables: %+v", rw[0])
	}
	// P2's rewrite for Q1 is the exact prop1 pattern.
	rw2 := ann.RewritesFor("Q1", "P2")
	if len(rw2) != 1 || rw2[0].Property != gen.N1("prop1") {
		t.Errorf("P2's Q1 rewrite = %v", rw2)
	}
}

func TestRouteExactOnlyAblation(t *testing.T) {
	r := paperRouter(t)
	r.Mode = pattern.ExactOnly
	ann := r.Route(gen.PaperQuery())
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P2]" {
		t.Errorf("exact-only Q1 peers = %s, want [P1 P2] (no P4)", got)
	}
	if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P1 P3 P4]" {
		t.Errorf("exact-only Q2 peers = %s", got)
	}
}

func TestRouteEmptyRegistryYieldsHoles(t *testing.T) {
	r := routing.NewRouter(gen.PaperSchema(), routing.NewRegistry())
	ann := r.Route(gen.PaperQuery())
	if ann.Complete() {
		t.Error("routing with no knowledge must be incomplete")
	}
	if holes := ann.Holes(); len(holes) != 2 {
		t.Errorf("Holes = %v", holes)
	}
}

func TestRoutePartialKnowledge(t *testing.T) {
	reg := routing.NewRegistry()
	as := gen.PaperActiveSchemas()
	reg.Register("P2", as["P2"]) // only prop1
	r := routing.NewRouter(gen.PaperSchema(), reg)
	ann := r.Route(gen.PaperQuery())
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P2]" {
		t.Errorf("Q1 peers = %s", got)
	}
	if len(ann.PeersFor("Q2")) != 0 {
		t.Errorf("Q2 should be a hole, got %v", ann.PeersFor("Q2"))
	}
	if holes := ann.Holes(); len(holes) != 1 || holes[0] != "Q2" {
		t.Errorf("Holes = %v", holes)
	}
}

func TestRouteIgnoresOtherSONs(t *testing.T) {
	reg := routing.NewRegistry()
	foreign := pattern.NewActiveSchema("http://other-SON#")
	foreign.Patterns = append(foreign.Patterns, pattern.PathPattern{
		ID: "AS1", SubjectVar: "s", ObjectVar: "o",
		Property: gen.N1("prop1"), Domain: gen.N1("C1"), Range: gen.N1("C2"),
	})
	reg.Register("PX", foreign)
	r := routing.NewRouter(gen.PaperSchema(), reg)
	ann := r.Route(gen.PaperQuery())
	if len(ann.PeersFor("Q1")) != 0 {
		t.Errorf("peer from a different SON was annotated: %v", ann.PeersFor("Q1"))
	}
}

func TestRouteStats(t *testing.T) {
	r := paperRouter(t)
	_, st := r.RouteWithStats(gen.PaperQuery())
	// 2 query patterns × (P1:2 + P2:1 + P3:1 + P4:2) = 12 comparisons.
	if st.Comparisons != 12 {
		t.Errorf("Comparisons = %d, want 12", st.Comparisons)
	}
	if st.PeersConsidered != 8 {
		t.Errorf("PeersConsidered = %d, want 8 (4 peers × 2 patterns)", st.PeersConsidered)
	}
	if st.Annotations != 6 {
		t.Errorf("Annotations = %d, want 6", st.Annotations)
	}
}

func TestRelevantPeers(t *testing.T) {
	r := paperRouter(t)
	got := r.RelevantPeers(gen.PaperQuery())
	if fmt.Sprint(got) != "[P1 P2 P3 P4]" {
		t.Errorf("RelevantPeers = %v", got)
	}
	// A prop3 query is relevant to nobody.
	q3 := &pattern.QueryPattern{
		SchemaName: gen.PaperNS,
		Patterns: []pattern.PathPattern{{
			ID: "Q1", SubjectVar: "A", ObjectVar: "B",
			Property: gen.N1("prop3"), Domain: gen.N1("C3"), Range: gen.N1("C4"),
		}},
	}
	if got := r.RelevantPeers(q3); len(got) != 0 {
		t.Errorf("prop3 RelevantPeers = %v, want none", got)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := routing.NewRegistry()
	as := gen.PaperActiveSchemas()
	reg.Register("P1", as["P1"])
	reg.Register("P2", as["P2"])
	if reg.Len() != 2 {
		t.Errorf("Len = %d", reg.Len())
	}
	if got, ok := reg.Get("P1"); !ok || got != as["P1"] {
		t.Error("Get(P1) failed")
	}
	if _, ok := reg.Get("P9"); ok {
		t.Error("Get(P9) found a ghost")
	}
	if peers := reg.Peers(); fmt.Sprint(peers) != "[P1 P2]" {
		t.Errorf("Peers = %v", peers)
	}
	reg.Unregister("P1")
	if reg.Len() != 1 {
		t.Errorf("Len after Unregister = %d", reg.Len())
	}
	snap := reg.Snapshot()
	reg.Register("P3", as["P3"])
	if snap.Len() != 1 {
		t.Errorf("Snapshot not independent: %d peers", snap.Len())
	}
	if next := reg.Snapshot(); next.Epoch <= snap.Epoch {
		t.Errorf("Register did not advance the epoch: %d -> %d", snap.Epoch, next.Epoch)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := routing.NewRegistry()
	as := gen.PaperActiveSchemas()
	r := routing.NewRouter(gen.PaperSchema(), reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				peer := pattern.PeerID(fmt.Sprintf("P%d-%d", g, i))
				reg.Register(peer, as["P1"])
				r.Route(gen.PaperQuery())
				reg.Unregister(peer)
			}
		}(g)
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Errorf("registry leaked %d peers", reg.Len())
	}
}

func TestRouteReplacedAdvertisement(t *testing.T) {
	// A peer re-advertising (e.g. after its base changed) replaces its
	// previous active-schema.
	reg := routing.NewRegistry()
	as := gen.PaperActiveSchemas()
	reg.Register("P1", as["P2"]) // initially only prop1
	r := routing.NewRouter(gen.PaperSchema(), reg)
	if got := fmt.Sprint(r.Route(gen.PaperQuery()).PeersFor("Q2")); got != "[]" {
		t.Errorf("Q2 peers before re-advertisement = %s", got)
	}
	reg.Register("P1", as["P1"]) // now prop1 + prop2
	if got := fmt.Sprint(r.Route(gen.PaperQuery()).PeersFor("Q2")); got != "[P1]" {
		t.Errorf("Q2 peers after re-advertisement = %s", got)
	}
}
