package routing_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/routing"
)

// Quarantine must exclude a peer from routing views (both strategies)
// without forgetting its advertisement, and Reinstate must restore it —
// each bumping the epoch so cached snapshots refresh.
func TestQuarantineExcludesFromRouting(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		t.Run(fmt.Sprintf("indexed=%v", indexed), func(t *testing.T) {
			var reg *routing.Registry
			if indexed {
				reg = routing.NewIndexedRegistry(gen.PaperSchema())
			} else {
				reg = routing.NewRegistry()
			}
			for peer, as := range gen.PaperActiveSchemas() {
				reg.Register(peer, as)
			}
			r := routing.NewRouter(gen.PaperSchema(), reg)

			before := reg.Epoch()
			if !reg.Quarantine("P4") {
				t.Fatal("Quarantine(P4) should report a change")
			}
			if reg.Epoch() == before {
				t.Fatal("quarantine must bump the epoch")
			}
			ann := r.Route(gen.PaperQuery())
			if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P2]" {
				t.Errorf("Q1 peers with P4 quarantined = %s, want [P1 P2]", got)
			}
			if got := fmt.Sprint(ann.PeersFor("Q2")); got != "[P1 P3]" {
				t.Errorf("Q2 peers with P4 quarantined = %s, want [P1 P3]", got)
			}
			if _, ok := reg.Get("P4"); !ok {
				t.Error("quarantine must not forget the advertisement")
			}
			if !reg.IsQuarantined("P4") || fmt.Sprint(reg.QuarantinedPeers()) != "[P4]" {
				t.Error("P4 should be listed as quarantined")
			}

			if !reg.Reinstate("P4") {
				t.Fatal("Reinstate(P4) should report a change")
			}
			ann = r.Route(gen.PaperQuery())
			if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[P1 P2 P4]" {
				t.Errorf("Q1 peers after reinstate = %s, want [P1 P2 P4]", got)
			}
		})
	}
}

func TestQuarantineEdgeCases(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	if reg.Quarantine("P99") {
		t.Error("quarantining an unknown peer should be a no-op")
	}
	if !reg.Quarantine("P2") || reg.Quarantine("P2") {
		t.Error("second quarantine of the same peer should report no change")
	}
	// Register does not lift an existing quarantine.
	reg.Register("P2", gen.PaperActiveSchemas()["P2"])
	if !reg.IsQuarantined("P2") {
		t.Error("re-registering must not lift the quarantine")
	}
	// Unregister does.
	reg.Unregister("P2")
	if reg.IsQuarantined("P2") {
		t.Error("unregister must clear the quarantine")
	}
	if reg.Reinstate("P2") {
		t.Error("reinstating a non-quarantined peer should report no change")
	}
}

// The breaker: threshold failures quarantine, Tick-driven cool-down
// lifts into probation, probation failure re-quarantines with doubled
// cool-down, probation success closes the breaker.
func TestHealthCircuitBreaker(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	h := routing.NewHealth(reg)
	h.FailureThreshold = 2
	h.CooldownTicks = 2

	h.ReportFailure("P3")
	if reg.IsQuarantined("P3") {
		t.Fatal("one failure below threshold must not quarantine")
	}
	h.ReportFailure("P3")
	if !reg.IsQuarantined("P3") {
		t.Fatal("threshold failures must quarantine")
	}
	if fmt.Sprint(h.Quarantined()) != "[P3]" {
		t.Fatalf("Quarantined() = %v", h.Quarantined())
	}

	if lifted := h.Tick(); len(lifted) != 0 {
		t.Fatalf("cool-down of 2 must survive one tick, lifted %v", lifted)
	}
	if lifted := fmt.Sprint(h.Tick()); lifted != "[P3]" {
		t.Fatalf("second tick should lift P3 into probation, got %v", lifted)
	}
	if reg.IsQuarantined("P3") {
		t.Fatal("probation peer must be routable")
	}

	// Probation failure: immediate re-quarantine, doubled cool-down (4).
	h.ReportFailure("P3")
	if !reg.IsQuarantined("P3") {
		t.Fatal("probation failure must re-quarantine immediately")
	}
	for i := 0; i < 3; i++ {
		if lifted := h.Tick(); len(lifted) != 0 {
			t.Fatalf("doubled cool-down lifted early at tick %d: %v", i, lifted)
		}
	}
	if lifted := fmt.Sprint(h.Tick()); lifted != "[P3]" {
		t.Fatalf("doubled cool-down should lift on 4th tick, got %v", lifted)
	}

	// Probation success closes the breaker and resets the cool-down.
	h.ReportSuccess("P3")
	if reg.IsQuarantined("P3") {
		t.Fatal("probation success must close the breaker")
	}
	st := h.Stats()
	if st.Quarantines != 2 || st.Reinstates != 2 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHealthQuarantineNowAndSuccessReset(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	h := routing.NewHealth(reg)
	h.FailureThreshold = 3

	// Successes reset the failure streak.
	h.ReportFailure("P2")
	h.ReportFailure("P2")
	h.ReportSuccess("P2")
	h.ReportFailure("P2")
	h.ReportFailure("P2")
	if reg.IsQuarantined("P2") {
		t.Fatal("streak should have been reset by the success")
	}

	// Forced quarantine ignores the threshold; a stale success while the
	// breaker is open does not close it.
	h.QuarantineNow("P2")
	if !reg.IsQuarantined("P2") {
		t.Fatal("QuarantineNow must quarantine immediately")
	}
	h.ReportSuccess("P2")
	if !reg.IsQuarantined("P2") {
		t.Fatal("a success while quarantined must not close the breaker")
	}
}

// A membership confirm-dead pins the breaker open: no number of ticks
// may half-open probe a condemned peer, and only Revive (the rejoin at
// a higher incarnation, reported by the failure detector) reinstates it.
func TestHealthCondemnPinsUntilRevive(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	h := routing.NewHealth(reg)
	h.CooldownTicks = 1

	h.Condemn("P2")
	if !reg.IsQuarantined("P2") || !h.Condemned("P2") {
		t.Fatal("condemn must quarantine immediately")
	}
	// Far past any cool-down (the initial is 1 tick): still pinned, never
	// lifted into probation.
	for i := 0; i < 20; i++ {
		if lifted := h.Tick(); len(lifted) != 0 {
			t.Fatalf("tick %d half-open probed a condemned peer: %v", i, lifted)
		}
	}
	if !reg.IsQuarantined("P2") {
		t.Fatal("condemned peer lifted without a rejoin")
	}
	// Outcome reports from stale in-flight dispatches cannot unpin it.
	h.ReportSuccess("P2")
	h.ReportFailure("P2")
	if !reg.IsQuarantined("P2") || !h.Condemned("P2") {
		t.Fatal("stale outcome reports must not unpin a condemned peer")
	}

	// The rejoin path: Revive closes the breaker and restores routing.
	h.Revive("P2")
	if reg.IsQuarantined("P2") || h.Condemned("P2") {
		t.Fatal("revive must reinstate the peer")
	}
	if lifted := h.Tick(); len(lifted) != 0 {
		t.Fatalf("revived peer should not also lift from quarantine: %v", lifted)
	}
	st := h.Stats()
	if st.Condemnations != 1 || st.Revivals != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Revive of a merely-quarantined (not condemned) peer is a no-op: the
	// normal probation cycle owns transient quarantines.
	h.QuarantineNow("P3")
	h.Revive("P3")
	if !reg.IsQuarantined("P3") {
		t.Fatal("revive must not bypass a transient quarantine's probation cycle")
	}
	// Condemning an already-quarantined peer pins the existing quarantine.
	h.Condemn("P3")
	for i := 0; i < 10; i++ {
		if lifted := h.Tick(); len(lifted) != 0 {
			t.Fatalf("condemned-while-quarantined peer lifted: %v", lifted)
		}
	}
}
