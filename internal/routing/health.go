// Peer health tracking: a circuit breaker over the Registry's
// quarantine. The executor reports delivery successes and failures per
// peer; repeated failures trip the breaker (the peer's advertisements
// are quarantined from routing for a cool-down), and after the cool-down
// the peer re-enters on probation — the next query is its probe, and one
// more failure re-quarantines it with a doubled cool-down. Time is
// logical: Tick is called once per query round (or replan), so cool-downs
// are measured in rounds, keeping experiments deterministic.
package routing

import (
	"sort"
	"sync"

	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
)

// Health state per peer.
const (
	healthy     = iota
	quarantined // breaker open: excluded from routing until cool-down ends
	probation   // breaker half-open: routable; one failure re-quarantines
)

type peerHealth struct {
	state int
	// consecutive counts failures since the last success.
	consecutive int
	// until is the tick at which a quarantine lifts.
	until int
	// cooldown is the length of the peer's next quarantine (doubles on
	// probation failure, up to MaxCooldownTicks).
	cooldown int
	// condemned pins the breaker open past every cool-down: a membership
	// confirm-dead verdict, not a transient delivery failure. Only Revive
	// (a rejoin at a higher incarnation) clears it — a condemned peer is
	// never half-open probed.
	condemned bool
}

// HealthStats counts breaker transitions.
type HealthStats struct {
	// Quarantines counts breaker-open transitions (including forced ones
	// and probation re-trips).
	Quarantines int
	// Reinstates counts cool-down expiries moving a peer to probation.
	Reinstates int
	// Recoveries counts probation successes closing the breaker.
	Recoveries int
	// Condemnations counts membership confirm-dead pins; Revivals counts
	// higher-incarnation rejoins lifting them.
	Condemnations, Revivals int
}

// Health is the circuit-breaker quarantine tracker feeding a Registry.
// It is safe for concurrent use; all Registry mutations go through
// Quarantine/Reinstate, so every state change bumps the registry epoch
// and subsequent Route calls see it without per-call filtering.
type Health struct {
	// Registry is the routing registry the breaker gates.
	Registry *Registry
	// FailureThreshold is how many consecutive failures open the breaker
	// (default 1: in a simulated network a delivery failure is already
	// the end of a retry loop).
	FailureThreshold int
	// CooldownTicks is the initial quarantine length in ticks (default 2).
	CooldownTicks int
	// MaxCooldownTicks caps the doubling (default 16).
	MaxCooldownTicks int

	// events/peerID feed the unified operations log; set once via
	// SetEventLog during peer wiring, before traffic. Breaker methods
	// collect pending events under h.mu and emit them after release, so
	// the lock order stays one-deep.
	events *obs.EventLog
	peerID string

	mu    sync.Mutex
	now   int
	peers map[pattern.PeerID]*peerHealth
	stats HealthStats
}

// NewHealth returns a tracker over the registry with default thresholds.
func NewHealth(reg *Registry) *Health {
	return &Health{
		Registry:         reg,
		FailureThreshold: 1,
		CooldownTicks:    2,
		MaxCooldownTicks: 16,
		peers:            map[pattern.PeerID]*peerHealth{},
	}
}

// SetEventLog wires the operations event log (nil is fine: no events).
// Call during peer construction, before any traffic.
func (h *Health) SetEventLog(log *obs.EventLog, peer string) {
	if h == nil {
		return
	}
	h.events = log
	h.peerID = peer
}

// emit publishes breaker transitions after h.mu is released.
func (h *Health) emit(kind string, target pattern.PeerID, attrs ...obs.Attr) {
	if h.events == nil {
		return
	}
	all := append([]obs.Attr{obs.A("target", string(target))}, attrs...)
	h.events.Emit("health", kind, h.peerID, "", all...)
}

func (h *Health) get(peer pattern.PeerID) *peerHealth {
	ph, ok := h.peers[peer]
	if !ok {
		ph = &peerHealth{cooldown: h.CooldownTicks}
		h.peers[peer] = ph
	}
	return ph
}

// quarantineLocked opens the breaker for the peer. Callers hold h.mu.
func (h *Health) quarantineLocked(peer pattern.PeerID, ph *peerHealth) {
	ph.state = quarantined
	ph.until = h.now + ph.cooldown
	next := ph.cooldown * 2
	if next > h.MaxCooldownTicks {
		next = h.MaxCooldownTicks
	}
	ph.cooldown = next
	ph.consecutive = 0
	h.stats.Quarantines++
	h.Registry.Quarantine(peer)
}

// ReportFailure records a delivery failure against the peer. At
// FailureThreshold consecutive failures — or any failure while on
// probation — the breaker opens and the peer is quarantined.
func (h *Health) ReportFailure(peer pattern.PeerID) {
	h.mu.Lock()
	ph := h.get(peer)
	if ph.state == quarantined {
		h.mu.Unlock()
		return
	}
	ph.consecutive++
	tripped := ph.state == probation || ph.consecutive >= h.FailureThreshold
	if tripped {
		h.quarantineLocked(peer, ph)
	}
	h.mu.Unlock()
	if tripped {
		h.emit("quarantine", peer, obs.A("reason", "failures"))
	}
}

// ReportSuccess records a successful delivery: a peer on probation
// recovers fully (breaker closed, cool-down reset), any peer's failure
// streak resets.
func (h *Health) ReportSuccess(peer pattern.PeerID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.get(peer)
	if ph.state == quarantined {
		return // stale success from an in-flight dispatch; breaker stays open
	}
	if ph.state == probation {
		ph.state = healthy
		ph.cooldown = h.CooldownTicks
		h.stats.Recoveries++
	}
	ph.consecutive = 0
}

// QuarantineNow opens the breaker immediately regardless of the failure
// streak — used when the executor has already classified a failure as
// permanent-for-this-peer (e.g. a replan-triggering *PeerFailure*).
func (h *Health) QuarantineNow(peer pattern.PeerID) {
	h.mu.Lock()
	ph := h.get(peer)
	if ph.state == quarantined {
		h.mu.Unlock()
		return
	}
	h.quarantineLocked(peer, ph)
	h.mu.Unlock()
	h.emit("quarantine", peer, obs.A("reason", "forced"))
}

// Condemn pins the breaker open for a peer the failure detector has
// confirmed dead: quarantined immediately (registry epoch bump, so
// in-flight queries migrate off it) and excluded from the probation
// cycle — no cool-down expiry will half-open probe it. The pin lifts
// only via Revive, i.e. a rejoin observed at a higher incarnation.
func (h *Health) Condemn(peer pattern.PeerID) {
	h.mu.Lock()
	ph := h.get(peer)
	if ph.condemned {
		h.mu.Unlock()
		return
	}
	ph.condemned = true
	h.stats.Condemnations++
	if ph.state != quarantined {
		h.quarantineLocked(peer, ph)
	}
	h.mu.Unlock()
	// Exactly one condemn event per Condemnations increment: the
	// event↔counter reconciliation invariant.
	h.emit("condemn", peer)
}

// Revive lifts a condemnation after the peer rejoined at a higher
// incarnation: breaker closed, cool-down reset, advertisements
// reinstated into routing. A no-op for peers that are not condemned
// (transient quarantines keep their normal probation path).
func (h *Health) Revive(peer pattern.PeerID) {
	h.mu.Lock()
	ph := h.get(peer)
	if !ph.condemned {
		h.mu.Unlock()
		return
	}
	ph.condemned = false
	ph.state = healthy
	ph.consecutive = 0
	ph.cooldown = h.CooldownTicks
	h.stats.Revivals++
	h.Registry.Reinstate(peer)
	h.mu.Unlock()
	h.emit("revive", peer)
}

// Condemned reports whether the breaker is pinned open for the peer.
func (h *Health) Condemned(peer pattern.PeerID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.peers[peer]
	return ok && ph.condemned
}

// Tick advances logical time one step (one query round). Quarantines
// whose cool-down has expired lift into probation — the peer becomes
// routable again, and its next reported outcome decides whether the
// breaker closes or re-opens for twice as long. Condemned peers never
// lift: their quarantine outlives every cool-down until Revive. Returns
// the peers reinstated this tick, sorted.
func (h *Health) Tick() []pattern.PeerID {
	h.mu.Lock()
	h.now++
	var lifted []pattern.PeerID
	for peer, ph := range h.peers {
		if ph.state == quarantined && !ph.condemned && h.now >= ph.until {
			ph.state = probation
			h.stats.Reinstates++
			h.Registry.Reinstate(peer)
			lifted = append(lifted, peer)
		}
	}
	h.mu.Unlock()
	sort.Slice(lifted, func(i, j int) bool { return lifted[i] < lifted[j] })
	for _, peer := range lifted {
		h.emit("reinstate", peer)
	}
	return lifted
}

// Quarantined returns the peers the breaker currently holds open, sorted.
func (h *Health) Quarantined() []pattern.PeerID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []pattern.PeerID
	for peer, ph := range h.peers {
		if ph.state == quarantined {
			out = append(out, peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a snapshot of the transition counters.
func (h *Health) Stats() HealthStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}
