// Package admission implements multi-tenant admission control for a
// SQPeer peer: per-tenant token buckets refilled on the logical clock,
// priority classes with concurrency watermarks, and typed overload
// rejections that carry a retry-after hint. The controller never blocks
// and never touches wall time — callers either get in or get a
// transient OverloadError telling them when to come back, which keeps
// overload experiments byte-identical across same-seed reruns.
//
// Two admission scopes exist. AdmitQuery guards the peer facade (a
// user query entering the system): it charges the tenant's token
// bucket and checks the occupancy watermark for the query's priority.
// AdmitWork guards the subplan handler (work arriving from a remote
// root): it checks occupancy only — the root already paid the token,
// and double-charging would bill one query once per dispatched leaf.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sqpeer/internal/network"
	"sqpeer/internal/obs"
)

// Priority is a query's admission class. Under saturation, lower
// classes are rejected and shed first; High work is never shed.
type Priority int

const (
	// Low is best-effort work: first rejected, first shed.
	Low Priority = iota
	// Normal is the default interactive class.
	Normal
	// High is latency-critical work admitted up to full capacity and
	// never shed.
	High

	numPriorities = 3
)

// String renders the class name (used in spans, metrics and errors).
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Normal:
		return "normal"
	case High:
		return "high"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// QoS bundles the tenant and priority a query runs under. It flows
// from peer.Config through exec into subplan request headers so every
// peer touched by a distributed plan applies the same class.
type QoS struct {
	// Tenant names the fairness/accounting unit ("" = untagged).
	Tenant string
	// Priority is the admission class.
	Priority Priority
}

// Config parameterizes a Controller.
type Config struct {
	// RatePerSec is each tenant bucket's refill rate in admissions per
	// simulated second. 0 disables rate limiting (occupancy only).
	RatePerSec float64
	// Burst is the bucket capacity (initial and maximum tokens).
	// Defaults to 1 when RatePerSec > 0.
	Burst float64
	// MaxConcurrent caps simultaneously admitted work at this peer.
	// 0 disables occupancy limiting (rate only).
	MaxConcurrent int
	// Watermarks scale MaxConcurrent per priority: work of class p is
	// admitted while occupancy < Watermarks[p]*MaxConcurrent, and
	// in-flight work of class p is shed once occupancy exceeds that
	// line. Zero entries default to {Low: 0.5, Normal: 0.8, High: 1}.
	// High's watermark is always forced to 1 so High is never shed.
	Watermarks [numPriorities]float64
	// HoldMS, when > 0, makes every admission occupy its slot for a
	// fixed lease on the logical clock instead of until Done — the
	// deterministic mode used by the overload experiment, where queries
	// are driven sequentially but must still saturate the pool. When 0,
	// occupancy is the explicit Admit/Done in-flight count.
	HoldMS float64
	// Clock reads the logical clock in milliseconds (typically
	// network.Network.NowMS or a harness round counter). Nil means a
	// clock stuck at 0: buckets never refill past their initial Burst.
	Clock func() float64
	// RetryHintMS is the retry-after suggested on occupancy rejections
	// when no lease expiry is available to derive one. Defaults to 10.
	RetryHintMS float64
	// Disabled turns the controller into a pass-through that still
	// counts admissions (the ablation mode): everything is admitted,
	// nothing is rejected or shed.
	Disabled bool
}

// tenantStats accumulates per-tenant accounting for fairness metrics.
type tenantStats struct {
	Admitted     int
	RejectedRate int
	RejectedLoad int
	Shed         int
}

// Controller is a peer's admission controller. All methods are safe
// for concurrent use and none of them blocks: rejection is an error,
// not a queue.
type Controller struct {
	cfg Config

	// events/peerID feed the unified operations log; set once via
	// SetEventLog during peer wiring, before traffic (same plain-field
	// discipline as the channel manager's GossipSource). Emission always
	// happens after the controller's mutex is released, so the lock
	// order stays one-deep.
	events *obs.EventLog
	peerID string

	mu       sync.Mutex
	buckets  map[string]*bucket
	tenants  map[string]*tenantStats
	leases   []float64 // slot-occupancy expiries, ascending (HoldMS mode)
	inflight int       // explicit Admit/Done occupancy (HoldMS == 0)
}

// bucket is one tenant's token bucket on the logical clock.
type bucket struct {
	tokens float64
	last   float64 // clock reading at the last refill
}

// NewController builds a controller; zero-valued Config fields take
// the documented defaults.
func NewController(cfg Config) *Controller {
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	def := [numPriorities]float64{Low: 0.5, Normal: 0.8, High: 1}
	for p := range cfg.Watermarks {
		if cfg.Watermarks[p] <= 0 || cfg.Watermarks[p] > 1 {
			cfg.Watermarks[p] = def[p]
		}
	}
	cfg.Watermarks[High] = 1
	if cfg.Clock == nil {
		cfg.Clock = func() float64 { return 0 }
	}
	if cfg.RetryHintMS <= 0 {
		cfg.RetryHintMS = 10
	}
	return &Controller{
		cfg:     cfg,
		buckets: map[string]*bucket{},
		tenants: map[string]*tenantStats{},
	}
}

// SetEventLog wires the operations event log (nil is fine: no events).
// Call during peer construction, before any admission traffic.
func (c *Controller) SetEventLog(log *obs.EventLog, peer string) {
	if c == nil {
		return
	}
	c.events = log
	c.peerID = peer
}

// emitReject publishes one admission rejection into the event log,
// outside the controller mutex.
func (c *Controller) emitReject(q QoS, scope string, err error) {
	if c.events == nil {
		return
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		return
	}
	c.events.Emit("admission", "reject", c.peerID, "",
		obs.A("scope", scope), obs.A("reason", oe.Reason),
		obs.A("tenant", q.Tenant), obs.A("priority", q.Priority.String()),
		obs.A("retryAfterMs", fmt.Sprintf("%.1f", oe.RetryAfterMS)),
		obs.A("hopeless", fmt.Sprintf("%t", oe.Hopeless)))
}

// Disabled reports whether the controller is in ablation pass-through
// mode. Nil controllers count as disabled.
func (c *Controller) Disabled() bool { return c == nil || c.cfg.Disabled }

// limit returns the occupancy ceiling for class p (0 = unlimited).
func (c *Controller) limit(p Priority) int {
	if c.cfg.MaxConcurrent <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p >= numPriorities {
		p = numPriorities - 1
	}
	n := int(c.cfg.Watermarks[p] * float64(c.cfg.MaxConcurrent))
	if n < 1 {
		n = 1
	}
	return n
}

// pruneLocked drops expired leases. Leases are appended with a fixed
// HoldMS on a monotone clock, so the slice stays sorted and expiry is
// a front-trim.
func (c *Controller) pruneLocked(now float64) {
	i := 0
	for i < len(c.leases) && c.leases[i] <= now {
		i++
	}
	if i > 0 {
		c.leases = append(c.leases[:0], c.leases[i:]...)
	}
}

// occupancyLocked is the current slot usage.
func (c *Controller) occupancyLocked() int { return len(c.leases) + c.inflight }

// statsFor returns (creating if needed) the tenant's accounting row.
func (c *Controller) statsFor(tenant string) *tenantStats {
	ts := c.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{}
		c.tenants[tenant] = ts
	}
	return ts
}

// occupyLocked records an admission's slot usage.
func (c *Controller) occupyLocked(now float64) {
	if c.cfg.HoldMS > 0 {
		c.leases = append(c.leases, now+c.cfg.HoldMS)
	} else {
		c.inflight++
	}
}

// AdmitQuery admits a user query at the peer facade: it must both win
// a token from the tenant's bucket and fit under its priority's
// occupancy watermark. deadlineMS (0 = none) is the query's total
// budget; rejections whose retry-after exceeds it are flagged Hopeless
// so callers don't retry a dead query. Returns nil when admitted —
// the caller must pair a successful admission with Done.
func (c *Controller) AdmitQuery(q QoS, deadlineMS float64) error {
	if c == nil {
		return nil
	}
	err := c.admitQueryLocked(q, deadlineMS)
	if err != nil {
		c.emitReject(q, "query", err)
	}
	return err
}

// admitQueryLocked holds the mutex for the admission decision; the
// caller emits any rejection event after release.
func (c *Controller) admitQueryLocked(q QoS, deadlineMS float64) error {
	// The clock is a caller-supplied callback: read it before taking the
	// lock so a clock that consults the controller cannot deadlock.
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	ts := c.statsFor(q.Tenant)
	if !c.cfg.Disabled {
		if lim := c.limit(q.Priority); lim > 0 && c.occupancyLocked() >= lim {
			ts.RejectedLoad++
			return c.rejectLocked(q, "query", reasonLoad, now, deadlineMS)
		}
		if c.cfg.RatePerSec > 0 {
			b := c.bucketLocked(q.Tenant, now)
			if b.tokens < 1 {
				ts.RejectedRate++
				return c.rejectLocked(q, "query", reasonRate, now, deadlineMS)
			}
			b.tokens--
		}
	}
	ts.Admitted++
	c.occupyLocked(now)
	return nil
}

// AdmitWork admits one remote subplan at a serving peer: occupancy
// watermark only, no token charge (the root paid at its facade).
// Returns nil when admitted — pair with Done.
func (c *Controller) AdmitWork(q QoS) error {
	if c == nil {
		return nil
	}
	err := c.admitWorkLocked(q)
	if err != nil {
		c.emitReject(q, "subplan", err)
	}
	return err
}

// admitWorkLocked holds the mutex for the decision; the caller emits
// any rejection event after release.
func (c *Controller) admitWorkLocked(q QoS) error {
	now := c.cfg.Clock() // before the lock: the clock may re-enter
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	ts := c.statsFor(q.Tenant)
	if !c.cfg.Disabled {
		if lim := c.limit(q.Priority); lim > 0 && c.occupancyLocked() >= lim {
			ts.RejectedLoad++
			return c.rejectLocked(q, "subplan", reasonLoad, now, 0)
		}
	}
	ts.Admitted++
	c.occupyLocked(now)
	return nil
}

// Done releases one admission. In lease mode (HoldMS > 0) slots expire
// on the clock instead and Done is a no-op, so it is always safe to
// defer after a successful admission.
func (c *Controller) Done() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.HoldMS > 0 {
		return
	}
	if c.inflight > 0 {
		c.inflight--
	}
}

// ShouldShed reports whether in-flight work of class p should be shed
// right now: the pool has saturated past p's watermark (which only
// happens when higher classes piled on top, since admissions of class
// p stop at the line). High is never shed; disabled controllers never
// shed.
func (c *Controller) ShouldShed(p Priority) bool {
	if c == nil || c.cfg.Disabled {
		return false
	}
	now := c.cfg.Clock() // before the lock: the clock may re-enter
	c.mu.Lock()
	defer c.mu.Unlock()
	lim := c.limit(p)
	if lim == 0 {
		return false
	}
	c.pruneLocked(now)
	return c.occupancyLocked() > lim
}

// RecordShed accounts one shed subplan against its tenant (called by
// the executor when it converts in-flight work to a completeness hole
// or migrates it away under pressure).
func (c *Controller) RecordShed(q QoS) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.statsFor(q.Tenant).Shed++
	c.mu.Unlock()
	if c.events != nil {
		c.events.Emit("admission", "shed", c.peerID, "",
			obs.A("tenant", q.Tenant), obs.A("priority", q.Priority.String()))
	}
}

// Occupancy returns the live slot usage (for load-aware replication
// and tests).
func (c *Controller) Occupancy() int {
	if c == nil {
		return 0
	}
	now := c.cfg.Clock() // before the lock: the clock may re-enter
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	return c.occupancyLocked()
}

// bucketLocked returns the tenant's bucket refilled to now.
func (c *Controller) bucketLocked(tenant string, now float64) *bucket {
	b := c.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: c.cfg.Burst, last: now}
		c.buckets[tenant] = b
	}
	if now > b.last {
		b.tokens += (now - b.last) * c.cfg.RatePerSec / 1000
		if b.tokens > c.cfg.Burst {
			b.tokens = c.cfg.Burst
		}
		b.last = now
	}
	return b
}

// rejectLocked builds the typed overload rejection with its
// retry-after hint.
func (c *Controller) rejectLocked(q QoS, scope, reason string, now, deadlineMS float64) error {
	var after float64
	switch reason {
	case reasonRate:
		b := c.bucketLocked(q.Tenant, now)
		if c.cfg.RatePerSec > 0 {
			after = (1 - b.tokens) * 1000 / c.cfg.RatePerSec
		}
	case reasonLoad:
		if len(c.leases) > 0 {
			after = c.leases[0] - now
		}
	}
	if after <= 0 {
		after = c.cfg.RetryHintMS
	}
	return newOverload(q, scope, reason, after, deadlineMS > 0 && after >= deadlineMS)
}

// Rejection reasons carried by OverloadError.
const (
	reasonRate = "rate"
	reasonLoad = "load"
)

// OverloadError is a typed admission rejection. It wraps a transient
// network.DeliveryError with ReasonOverload, so the executor's
// existing retry gate (network.Transient) and the errclass analyzer's
// errors.Is/As discipline both apply unchanged.
type OverloadError struct {
	// QoS identifies the rejected work.
	QoS QoS
	// Scope is "query" (facade) or "subplan" (serving peer).
	Scope string
	// Reason is "rate" (token bucket empty) or "load" (occupancy past
	// the priority's watermark).
	Reason string
	// RetryAfterMS is the logical-clock delay after which admission is
	// expected to succeed; retry logic uses it instead of the default
	// backoff curve.
	RetryAfterMS float64
	// Hopeless marks rejections whose retry-after exceeds the query's
	// remaining deadline budget — retrying cannot help.
	Hopeless bool

	cause *network.DeliveryError
}

func newOverload(q QoS, scope, reason string, afterMS float64, hopeless bool) *OverloadError {
	e := &OverloadError{QoS: q, Scope: scope, Reason: reason, RetryAfterMS: afterMS, Hopeless: hopeless}
	e.cause = &network.DeliveryError{
		Reason:    network.ReasonOverload,
		Transient: true,
		Detail:    e.Error(),
	}
	return e
}

// Error renders the rejection deterministically (error text can reach
// experiment digests).
func (e *OverloadError) Error() string {
	return fmt.Sprintf("overload: %s %q/%s rejected (%s), retry after %.1fms",
		e.Scope, e.QoS.Tenant, e.QoS.Priority, e.Reason, e.RetryAfterMS)
}

// Unwrap exposes the transient DeliveryError cause, making
// network.Transient(err) true for any chain containing the rejection.
func (e *OverloadError) Unwrap() error { return e.cause }

// RetryAfterHint extracts an overload rejection's retry-after from an
// error chain. ok is false when the chain holds no OverloadError or
// the rejection is Hopeless (retrying cannot succeed in budget).
func RetryAfterHint(err error) (afterMS float64, ok bool) {
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Hopeless {
		return 0, false
	}
	return oe.RetryAfterMS, true
}

// IsOverload reports whether the chain contains an admission
// rejection (hopeless or not).
func IsOverload(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe)
}

// CollectObs publishes admission counters and gauges: per-tenant
// admitted/rejected/shed totals, live occupancy and queue depth, and
// Jain's fairness index over per-tenant admissions (1 = perfectly
// fair). Snapshot is taken under the lock, emission outside it.
func (c *Controller) CollectObs(g *obs.Gather, labels ...obs.Label) {
	if c == nil {
		return
	}
	now := c.cfg.Clock() // before the lock: the clock may re-enter
	c.mu.Lock()
	c.pruneLocked(now)
	names := make([]string, 0, len(c.tenants))
	for t := range c.tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	snap := make([]tenantStats, len(names))
	for i, t := range names {
		snap[i] = *c.tenants[t]
	}
	occ := c.occupancyLocked()
	depth := len(c.leases)
	c.mu.Unlock()

	for i, t := range names {
		tl := append(append([]obs.Label{}, labels...), obs.L("tenant", t))
		g.Count("adm_admitted_total", float64(snap[i].Admitted), tl...)
		g.Count("adm_rejected_rate_total", float64(snap[i].RejectedRate), tl...)
		g.Count("adm_rejected_load_total", float64(snap[i].RejectedLoad), tl...)
		g.Count("adm_shed_total", float64(snap[i].Shed), tl...)
	}
	g.Gauge("adm_occupancy", float64(occ), labels...)
	g.Gauge("adm_queue_depth", float64(depth), labels...)
	g.Gauge("adm_fairness_jain", jain(snap), labels...)
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) over per-tenant
// admitted counts; 1 when every tenant got the same share, →1/n under
// total capture by one tenant. Empty or all-zero input reads as 1.
func jain(ts []tenantStats) float64 {
	var sum, sq float64
	n := 0
	for _, t := range ts {
		x := float64(t.Admitted)
		sum += x
		sq += x * x
		n++
	}
	if n == 0 || sq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sq)
}
