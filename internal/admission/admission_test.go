package admission

import (
	"errors"
	"fmt"
	"testing"

	"sqpeer/internal/network"
	"sqpeer/internal/obs"
)

// stepClock is a hand-advanced logical clock for tests.
type stepClock struct{ ms float64 }

func (s *stepClock) now() float64 { return s.ms }

func TestTokenBucketRefillOnLogicalClock(t *testing.T) {
	clk := &stepClock{}
	c := NewController(Config{RatePerSec: 100, Burst: 2, Clock: clk.now})
	q := QoS{Tenant: "a", Priority: Normal}
	// Burst of 2 admits twice, then rejects.
	for i := 0; i < 2; i++ {
		if err := c.AdmitQuery(q, 0); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		c.Done()
	}
	err := c.AdmitQuery(q, 0)
	if err == nil {
		t.Fatal("third admission should be rate-rejected")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "rate" {
		t.Fatalf("want rate OverloadError, got %#v", err)
	}
	// 100/s = one token per 10ms; the hint should say so.
	if oe.RetryAfterMS <= 0 || oe.RetryAfterMS > 10.01 {
		t.Fatalf("retry-after = %v, want (0,10]", oe.RetryAfterMS)
	}
	// Advance the clock past the hint: admission succeeds again.
	clk.ms += oe.RetryAfterMS
	if err := c.AdmitQuery(q, 0); err != nil {
		t.Fatalf("post-refill admission: %v", err)
	}
	c.Done()
}

func TestOverloadErrorIsTransientWithReason(t *testing.T) {
	c := NewController(Config{RatePerSec: 1, Burst: 1})
	q := QoS{Tenant: "t", Priority: Low}
	if err := c.AdmitQuery(q, 0); err != nil {
		t.Fatalf("first: %v", err)
	}
	err := c.AdmitQuery(q, 0)
	if err == nil {
		t.Fatal("want rejection")
	}
	// The satellite contract: overload rejections classify as transient
	// delivery failures via the errors.Is/As discipline, even through
	// fmt wrapping (as the network handler path does).
	wrapped := fmt.Errorf("network: sub(P0→P1): %w", err)
	if !network.Transient(wrapped) {
		t.Fatal("OverloadError must classify as network.Transient")
	}
	var de *network.DeliveryError
	if !errors.As(wrapped, &de) || de.Reason != network.ReasonOverload {
		t.Fatalf("want DeliveryError reason %q, got %#v", network.ReasonOverload, de)
	}
	if !IsOverload(wrapped) {
		t.Fatal("IsOverload must see through wrapping")
	}
	if after, ok := RetryAfterHint(wrapped); !ok || after <= 0 {
		t.Fatalf("RetryAfterHint = %v,%v", after, ok)
	}
}

func TestWatermarksRejectAndShedByPriority(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 10}) // watermarks 0.5/0.8/1
	adm := func(p Priority) error { return c.AdmitWork(QoS{Tenant: "t", Priority: p}) }
	// Fill to 5: low now rejected, normal and high still admitted.
	for i := 0; i < 5; i++ {
		if err := adm(High); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := adm(Low); err == nil {
		t.Fatal("low should be rejected at occupancy 5/10")
	} else if after, ok := RetryAfterHint(err); !ok || after <= 0 {
		t.Fatalf("load rejection hint = %v,%v", after, ok)
	}
	if c.ShouldShed(Low) {
		t.Fatal("low shed line is strictly above its admission line")
	}
	if err := adm(Normal); err != nil {
		t.Fatalf("normal at 5/10: %v", err)
	}
	// Push occupancy to 6: past low's watermark → low sheds.
	if !c.ShouldShed(Low) {
		t.Fatal("low should shed at occupancy 6/10")
	}
	if c.ShouldShed(Normal) || c.ShouldShed(High) {
		t.Fatal("normal/high must not shed at 6/10")
	}
	// Fill to capacity: normal rejected past 8, high admitted to 10,
	// never shed.
	for i := 6; i < 8; i++ {
		if err := adm(Normal); err != nil {
			t.Fatalf("normal fill %d: %v", i, err)
		}
	}
	if err := adm(Normal); err == nil {
		t.Fatal("normal should be rejected at 8/10")
	}
	for i := 8; i < 10; i++ {
		if err := adm(High); err != nil {
			t.Fatalf("high fill %d: %v", i, err)
		}
	}
	if err := adm(High); err == nil {
		t.Fatal("high should be rejected at 10/10")
	}
	if !c.ShouldShed(Normal) {
		t.Fatal("normal should shed at 10/10")
	}
	if c.ShouldShed(High) {
		t.Fatal("high is never shed")
	}
	c.Done()
	if err := adm(High); err != nil {
		t.Fatalf("high after Done: %v", err)
	}
}

func TestLeaseModeExpiresOnClock(t *testing.T) {
	clk := &stepClock{}
	c := NewController(Config{MaxConcurrent: 2, HoldMS: 50, Clock: clk.now,
		Watermarks: [3]float64{1, 1, 1}})
	q := QoS{Tenant: "t", Priority: High}
	if err := c.AdmitWork(q); err != nil {
		t.Fatal(err)
	}
	if err := c.AdmitWork(q); err != nil {
		t.Fatal(err)
	}
	c.Done() // no-op in lease mode
	if got := c.Occupancy(); got != 2 {
		t.Fatalf("occupancy = %d, want 2 (Done is a lease-mode no-op)", got)
	}
	err := c.AdmitWork(q)
	if err == nil {
		t.Fatal("third admission should be load-rejected")
	}
	after, ok := RetryAfterHint(err)
	if !ok || after != 50 {
		t.Fatalf("hint should be the earliest lease expiry (50ms), got %v,%v", after, ok)
	}
	clk.ms = 51
	if got := c.Occupancy(); got != 0 {
		t.Fatalf("occupancy after expiry = %d, want 0", got)
	}
	if err := c.AdmitWork(q); err != nil {
		t.Fatalf("post-expiry admission: %v", err)
	}
}

func TestHopelessRejectionSkipsRetryHint(t *testing.T) {
	c := NewController(Config{RatePerSec: 1, Burst: 1}) // refill: 1000ms/token
	q := QoS{Tenant: "t", Priority: Normal}
	if err := c.AdmitQuery(q, 0); err != nil {
		t.Fatal(err)
	}
	err := c.AdmitQuery(q, 100) // 100ms budget < 1000ms refill
	var oe *OverloadError
	if !errors.As(err, &oe) || !oe.Hopeless {
		t.Fatalf("want hopeless rejection, got %#v", err)
	}
	if _, ok := RetryAfterHint(err); ok {
		t.Fatal("hopeless rejections must not advertise a retry hint")
	}
	if !network.Transient(err) {
		t.Fatal("still transient: the condition clears, just not in budget")
	}
}

func TestDisabledControllerAdmitsEverything(t *testing.T) {
	c := NewController(Config{RatePerSec: 1, Burst: 1, MaxConcurrent: 1, Disabled: true})
	for i := 0; i < 100; i++ {
		if err := c.AdmitQuery(QoS{Tenant: "t"}, 0); err != nil {
			t.Fatalf("disabled controller rejected: %v", err)
		}
	}
	if c.ShouldShed(Low) {
		t.Fatal("disabled controller must not shed")
	}
	if !c.Disabled() {
		t.Fatal("Disabled() should report true")
	}
	var nilC *Controller
	if err := nilC.AdmitQuery(QoS{}, 0); err != nil {
		t.Fatal("nil controller admits")
	}
	nilC.Done()
	nilC.RecordShed(QoS{})
	if nilC.ShouldShed(Low) || nilC.Occupancy() != 0 || !nilC.Disabled() {
		t.Fatal("nil controller is inert")
	}
}

func TestCollectObsDeterministicAndFair(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 100})
	for i := 0; i < 4; i++ {
		_ = c.AdmitWork(QoS{Tenant: "a", Priority: Normal})
		_ = c.AdmitWork(QoS{Tenant: "b", Priority: Normal})
	}
	c.RecordShed(QoS{Tenant: "b"})
	snapshot := func() string {
		reg := obs.NewRegistry()
		reg.RegisterCollector("adm", func(g *obs.Gather) { c.CollectObs(g) })
		return fmt.Sprintf("%+v", reg.Snapshot())
	}
	s1, s2 := snapshot(), snapshot()
	if s1 != s2 {
		t.Fatalf("snapshot not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	snap := snapshot()
	for _, want := range []string{"adm_admitted_total", "adm_shed_total", "adm_fairness_jain", "adm_occupancy"} {
		if !contains(snap, want) {
			t.Fatalf("snapshot missing %s:\n%s", want, snap)
		}
	}
	// Equal admissions → Jain index 1.
	if got := jain([]tenantStats{{Admitted: 4}, {Admitted: 4}}); got != 1 {
		t.Fatalf("jain(equal) = %v, want 1", got)
	}
	// Total capture by one of two tenants → 0.5.
	if got := jain([]tenantStats{{Admitted: 8}, {Admitted: 0}}); got != 0.5 {
		t.Fatalf("jain(capture) = %v, want 0.5", got)
	}
	if got := jain(nil); got != 1 {
		t.Fatalf("jain(empty) = %v, want 1", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
