package rql_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

func TestEvalPathPatternWithSubproperties(t *testing.T) {
	schema := gen.PaperSchema()
	base := rdf.NewBase()
	base.Add(rdf.Statement("http://d#a", gen.N1("prop1"), "http://d#b"))
	base.Add(rdf.Statement("http://d#c", gen.N1("prop4"), "http://d#d"))

	pat := gen.PaperQuery().Patterns[0] // {X;C1}prop1{Y;C2}
	rs := rql.EvalPathPattern(base, schema, pat)
	if rs.Len() != 2 {
		t.Errorf("prop1 scan = %d rows, want 2 (one via prop4)\n%s", rs.Len(), rs)
	}
	if rs.Vars[0] != "X" || rs.Vars[1] != "Y" {
		t.Errorf("Vars = %v", rs.Vars)
	}
}

func TestEvalPathPatternClassFilter(t *testing.T) {
	schema := gen.PaperSchema()
	base := rdf.NewBase()
	// Two prop1 pairs; only the first has a C5-typed subject.
	base.Add(rdf.Statement("http://d#a", gen.N1("prop1"), "http://d#b"))
	base.Add(rdf.Typing("http://d#a", gen.N1("C5")))
	base.Add(rdf.Statement("http://d#c", gen.N1("prop1"), "http://d#d"))
	base.Add(rdf.Typing("http://d#c", gen.N1("C1")))

	narrow := pattern.PathPattern{ID: "Q1", SubjectVar: "X", ObjectVar: "Y",
		Property: gen.N1("prop1"), Domain: gen.N1("C5"), Range: gen.N1("C2")}
	rs := rql.EvalPathPattern(base, schema, narrow)
	if rs.Len() != 1 {
		t.Fatalf("narrowed scan = %d rows, want 1\n%s", rs.Len(), rs)
	}
	if rs.Rows[0]["X"].Value != "http://d#a" {
		t.Errorf("wrong row survived the domain filter: %v", rs.Rows[0])
	}
}

// TestEvalPathPatternBatchMatchesScalar pins the columnar scan leaf to
// the row-map evaluator: same pattern, same base, same rows (rendered
// and sorted), across subsumption, class filters and empty results.
func TestEvalPathPatternBatchMatchesScalar(t *testing.T) {
	schema := gen.PaperSchema()
	base := rdf.NewBase()
	base.Add(rdf.Statement("http://d#a", gen.N1("prop1"), "http://d#b"))
	base.Add(rdf.Typing("http://d#a", gen.N1("C5")))
	base.Add(rdf.Statement("http://d#c", gen.N1("prop1"), "http://d#d"))
	base.Add(rdf.Typing("http://d#c", gen.N1("C1")))
	base.Add(rdf.Statement("http://d#e", gen.N1("prop4"), "http://d#f")) // ⊑ prop1

	pats := []pattern.PathPattern{
		gen.PaperQuery().Patterns[0], // {X;C1}prop1{Y;C2}
		{ID: "Q1", SubjectVar: "X", ObjectVar: "Y",
			Property: gen.N1("prop1"), Domain: gen.N1("C5"), Range: gen.N1("C2")},
		{ID: "Q2", SubjectVar: "S", ObjectVar: "O",
			Property: gen.N1("prop2"), Domain: gen.N1("C2"), Range: gen.N1("C3")}, // no rows
	}
	for _, pat := range pats {
		want := rql.EvalPathPattern(base, schema, pat)
		got := rql.EvalPathPatternBatch(base, schema, pat).ResultSet()
		if gs, ws := strings.Join(got.Sorted(), "\n"), strings.Join(want.Sorted(), "\n"); gs != ws {
			t.Errorf("pattern %s: batch scan diverges from scalar\nbatch:\n%s\nscalar:\n%s", pat.ID, gs, ws)
		}
		if !slicesEqual(got.Vars, want.Vars) {
			t.Errorf("pattern %s: Vars = %v, want %v", pat.ID, got.Vars, want.Vars)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEvalPaperQueryJoins(t *testing.T) {
	schema := gen.PaperSchema()
	c, err := rql.ParseAndAnalyze(gen.PaperRQL, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	// P1's base has prop1 pairs (x_i → y_i) and prop2 pairs (y_i → z_i):
	// the join yields one row per i.
	base := gen.PaperBases(4)["P1"]
	rs, err := rql.Eval(c, base)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if rs.Len() != 4 {
		t.Errorf("join produced %d rows, want 4:\n%s", rs.Len(), rs)
	}
	if len(rs.Vars) != 2 || rs.Vars[0] != "X" || rs.Vars[1] != "Y" {
		t.Errorf("projection schema = %v", rs.Vars)
	}
}

func TestEvalSubpropertyContributesToJoin(t *testing.T) {
	schema := gen.PaperSchema()
	c, err := rql.ParseAndAnalyze(gen.PaperRQL, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	// P4 has prop4 (⊑ prop1) and prop2 pairs sharing y_i: the prop1 query
	// must see the prop4 pairs.
	base := gen.PaperBases(3)["P4"]
	rs, err := rql.Eval(c, base)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if rs.Len() != 3 {
		t.Errorf("subproperty join = %d rows, want 3:\n%s", rs.Len(), rs)
	}
}

func TestEvalWhereFilters(t *testing.T) {
	schema := gen.PaperSchema()
	base := rdf.NewBase()
	base.Add(rdf.Statement("http://d#a", gen.N1("prop1"), "http://d#b1"))
	base.Add(rdf.Statement("http://d#c", gen.N1("prop1"), "http://d#b2"))

	mk := func(where string) *rql.ResultSet {
		src := `SELECT X FROM {X}n1:prop1{Y} ` + where + ` USING NAMESPACE n1 = &` + gen.PaperNS + `&`
		c, err := rql.ParseAndAnalyze(src, schema)
		if err != nil {
			t.Fatalf("ParseAndAnalyze(%q): %v", where, err)
		}
		rs, err := rql.Eval(c, base)
		if err != nil {
			t.Fatalf("Eval(%q): %v", where, err)
		}
		return rs
	}
	if rs := mk(`WHERE Y = "http://d#b1"`); rs.Len() != 0 {
		// Y binds to an IRI term, not a literal — equality with a string
		// literal fails, documenting term-kind-sensitive comparison.
		t.Errorf("IRI = string-literal matched: %s", rs)
	}
	if rs := mk(``); rs.Len() != 2 {
		t.Errorf("unfiltered = %d rows", rs.Len())
	}
	if rs := mk(`WHERE X != X`); rs.Len() != 0 {
		t.Errorf("X != X kept %d rows", rs.Len())
	}
}

func TestEvalLiteralFilters(t *testing.T) {
	schema := rdf.NewSchema("http://s#")
	schema.MustAddClass("http://s#Doc")
	schema.MustAddProperty("http://s#year", "http://s#Doc", rdf.XSDInteger)
	schema.MustAddProperty("http://s#title", "http://s#Doc", rdf.RDFSLiteral)

	base := rdf.NewBase()
	base.Add(rdf.Triple{S: rdf.NewIRI("http://d#1"), P: rdf.NewIRI("http://s#year"), O: rdf.NewTypedLiteral("2004", rdf.XSDInteger)})
	base.Add(rdf.Triple{S: rdf.NewIRI("http://d#2"), P: rdf.NewIRI("http://s#year"), O: rdf.NewTypedLiteral("1999", rdf.XSDInteger)})
	base.Add(rdf.Triple{S: rdf.NewIRI("http://d#1"), P: rdf.NewIRI("http://s#title"), O: rdf.NewLiteral("Semantic Routing")})
	base.Add(rdf.Triple{S: rdf.NewIRI("http://d#2"), P: rdf.NewIRI("http://s#title"), O: rdf.NewLiteral("Other Topic")})

	run := func(src string) *rql.ResultSet {
		c, err := rql.ParseAndAnalyze(src, schema)
		if err != nil {
			t.Fatalf("ParseAndAnalyze: %v", err)
		}
		rs, err := rql.Eval(c, base)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		return rs
	}
	ns := ` USING NAMESPACE s = &http://s#&`
	if rs := run(`SELECT X FROM {X}s:year{Y} WHERE Y > 2000` + ns); rs.Len() != 1 {
		t.Errorf("numeric > filter = %d rows", rs.Len())
	}
	if rs := run(`SELECT X FROM {X}s:year{Y} WHERE Y <= 2004` + ns); rs.Len() != 2 {
		t.Errorf("numeric <= filter = %d rows", rs.Len())
	}
	if rs := run(`SELECT X FROM {X}s:title{T} WHERE T like "Semantic*"` + ns); rs.Len() != 1 {
		t.Errorf("like prefix filter = %d rows", rs.Len())
	}
	if rs := run(`SELECT X FROM {X}s:title{T} WHERE T like "*Topic"` + ns); rs.Len() != 1 {
		t.Errorf("like suffix filter = %d rows", rs.Len())
	}
	if rs := run(`SELECT X FROM {X}s:title{T} WHERE T like "*mantic*"` + ns); rs.Len() != 1 {
		t.Errorf("like infix filter = %d rows", rs.Len())
	}
	if rs := run(`SELECT X FROM {X}s:title{T} WHERE T = "Other Topic"` + ns); rs.Len() != 1 {
		t.Errorf("literal equality = %d rows", rs.Len())
	}
}

func TestResultSetOps(t *testing.T) {
	a := rql.NewResultSet("X", "Y")
	a.Add(rql.Row{"X": rdf.NewIRI("http://d#1"), "Y": rdf.NewIRI("http://d#2")})
	a.Add(rql.Row{"X": rdf.NewIRI("http://d#3"), "Y": rdf.NewIRI("http://d#4")})
	b := rql.NewResultSet("X", "Y")
	b.Add(rql.Row{"X": rdf.NewIRI("http://d#1"), "Y": rdf.NewIRI("http://d#2")}) // dup of a[0]
	b.Add(rql.Row{"X": rdf.NewIRI("http://d#5"), "Y": rdf.NewIRI("http://d#6")})

	u := a.Union(b)
	if u.Len() != 3 {
		t.Errorf("Union = %d rows, want 3 (deduplicated)", u.Len())
	}

	c := rql.NewResultSet("Y", "Z")
	c.Add(rql.Row{"Y": rdf.NewIRI("http://d#2"), "Z": rdf.NewIRI("http://d#9")})
	j := a.Join(c)
	if j.Len() != 1 {
		t.Fatalf("Join = %d rows, want 1", j.Len())
	}
	if j.Rows[0]["X"].Value != "http://d#1" || j.Rows[0]["Z"].Value != "http://d#9" {
		t.Errorf("join row = %v", j.Rows[0])
	}
	if len(j.Vars) != 3 {
		t.Errorf("join vars = %v", j.Vars)
	}

	p := u.Project([]string{"X"})
	if p.Len() != 3 || len(p.Vars) != 1 {
		t.Errorf("Project = %v", p)
	}

	// Projection-induced duplicates collapse.
	d := rql.NewResultSet("X", "Y")
	d.Add(rql.Row{"X": rdf.NewIRI("http://d#1"), "Y": rdf.NewIRI("http://d#2")})
	d.Add(rql.Row{"X": rdf.NewIRI("http://d#1"), "Y": rdf.NewIRI("http://d#3")})
	if got := d.Project([]string{"X"}); got.Len() != 1 {
		t.Errorf("Project dedup = %d rows", got.Len())
	}
}

func TestResultSetJoinDisjointVarsIsCross(t *testing.T) {
	a := rql.NewResultSet("X")
	a.Add(rql.Row{"X": rdf.NewIRI("http://d#1")})
	a.Add(rql.Row{"X": rdf.NewIRI("http://d#2")})
	b := rql.NewResultSet("Z")
	b.Add(rql.Row{"Z": rdf.NewIRI("http://d#3")})
	if j := a.Join(b); j.Len() != 2 {
		t.Errorf("cross join = %d rows, want 2", j.Len())
	}
}

func TestResultSetStringAndBytes(t *testing.T) {
	rs := rql.NewResultSet("X")
	rs.Add(rql.Row{"X": rdf.NewIRI("http://d#1")})
	if !strings.Contains(rs.String(), "1 rows") {
		t.Errorf("String() = %q", rs.String())
	}
	if rs.EstimatedBytes() <= 0 {
		t.Error("EstimatedBytes must be positive for non-empty sets")
	}
	var nilRS *rql.ResultSet
	if nilRS.Len() != 0 || nilRS.EstimatedBytes() != 0 {
		t.Error("nil ResultSet accessors must be safe")
	}
}

func TestEvalMatchesGroundTruthOnThreeHopChain(t *testing.T) {
	schema := gen.PaperSchema()
	base := rdf.NewBase()
	// Chain: a -prop1→ b -prop2→ c -prop3→ d, plus a dead-end prop1 pair.
	base.Add(rdf.Statement("http://d#a", gen.N1("prop1"), "http://d#b"))
	base.Add(rdf.Statement("http://d#b", gen.N1("prop2"), "http://d#c"))
	base.Add(rdf.Statement("http://d#c", gen.N1("prop3"), "http://d#d"))
	base.Add(rdf.Statement("http://d#x", gen.N1("prop1"), "http://d#deadend"))

	src := `SELECT X, W FROM {X}n1:prop1{Y}, {Y}n1:prop2{Z}, {Z}n1:prop3{W} USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	c, err := rql.ParseAndAnalyze(src, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	rs, err := rql.Eval(c, base)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if rs.Len() != 1 {
		t.Fatalf("3-hop chain = %d rows, want 1:\n%s", rs.Len(), rs)
	}
	row := rs.Rows[0]
	if row["X"].Value != "http://d#a" || row["W"].Value != "http://d#d" {
		t.Errorf("chain row = %v", row)
	}
}
