package rql

import (
	"reflect"
	"strings"
	"testing"

	"sqpeer/internal/rdf"
)

func termI(s string) rdf.Term { return rdf.NewIRI(rdf.IRI(s)) }

func rsOf(vars []string, rows ...Row) *ResultSet {
	rs := NewResultSet(vars...)
	for _, r := range rows {
		rs.Add(r)
	}
	return rs
}

// sortedEqual compares two result sets by schema and sorted rendered rows.
func sortedEqual(t *testing.T, what string, got, want *ResultSet) {
	t.Helper()
	if strings.Join(got.Vars, "\x00") != strings.Join(want.Vars, "\x00") {
		t.Fatalf("%s: vars %v, want %v", what, got.Vars, want.Vars)
	}
	g, w := got.Sorted(), want.Sorted()
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: rows\n%v\nwant\n%v", what, g, w)
	}
}

func TestBatchOfRoundTrip(t *testing.T) {
	rs := rsOf([]string{"X", "Y"},
		Row{"X": termI("a"), "Y": termI("b")},
		Row{"X": termI("a")}, // Y unbound
		Row{"Y": rdf.NewTypedLiteral("héllo — ünïcode", rdf.XSDString)},
		Row{"X": rdf.NewBlank("b0"), "Y": rdf.NewLiteral("plain")},
	)
	b := BatchOf(rs)
	if b.Len() != rs.Len() {
		t.Fatalf("batch has %d rows, want %d", b.Len(), rs.Len())
	}
	back := b.ResultSet()
	sortedEqual(t, "BatchOf∘ResultSet", back, rs)
	// Order must be preserved exactly, not just as a set.
	for i := range rs.Rows {
		for _, v := range rs.Vars {
			if back.Rows[i][v] != rs.Rows[i][v] {
				t.Fatalf("row %d var %s: %v, want %v", i, v, back.Rows[i][v], rs.Rows[i][v])
			}
		}
	}
}

func TestBatchOfEmptyAndNil(t *testing.T) {
	if got := BatchOf(nil).Len(); got != 0 {
		t.Fatalf("BatchOf(nil).Len() = %d", got)
	}
	b := BatchOf(NewResultSet("X"))
	if b.Len() != 0 || len(b.Vars) != 1 {
		t.Fatalf("empty conversion: len=%d vars=%v", b.Len(), b.Vars)
	}
	if got := b.ResultSet(); got.Len() != 0 || len(got.Vars) != 1 {
		t.Fatalf("empty round-trip: %v", got)
	}
}

// TestBatchOpsMatchScalar drives Union/Join/Project through both
// representations and requires identical relations, including row order —
// the equivalence the batched data plane rests on.
func TestBatchOpsMatchScalar(t *testing.T) {
	left := rsOf([]string{"X", "Y"},
		Row{"X": termI("a"), "Y": termI("b")},
		Row{"X": termI("a"), "Y": termI("b")}, // duplicate
		Row{"X": termI("c"), "Y": termI("d")},
		Row{"X": termI("e")}, // Y unbound
	)
	right := rsOf([]string{"Y", "Z"},
		Row{"Y": termI("b"), "Z": termI("z1")},
		Row{"Y": termI("b"), "Z": termI("z2")},
		Row{"Y": termI("d"), "Z": termI("z1")},
		Row{"Y": termI("nope"), "Z": termI("z3")},
	)

	check := func(what string, scalar *ResultSet, batch *Batch) {
		t.Helper()
		got := batch.ResultSet()
		sortedEqual(t, what, got, scalar)
		for i := range scalar.Rows {
			for _, v := range scalar.Vars {
				if got.Rows[i][v] != scalar.Rows[i][v] {
					t.Fatalf("%s: row %d var %s differs in order-sensitive compare", what, i, v)
				}
			}
		}
	}

	check("union", left.Union(right), BatchOf(left).Union(BatchOf(right)))
	check("join", left.Join(right), BatchOf(left).Join(BatchOf(right)))
	check("project", left.Project([]string{"X"}), BatchOf(left).Project([]string{"X"}))
	check("project-missing-var", left.Project([]string{"X", "Q"}),
		BatchOf(left).Project([]string{"X", "Q"}))
}

func TestBatchJoinDisjointVars(t *testing.T) {
	// No shared variables: natural join degenerates to a cross product.
	left := rsOf([]string{"X"}, Row{"X": termI("a")}, Row{"X": termI("b")})
	right := rsOf([]string{"Z"}, Row{"Z": termI("p")}, Row{"Z": termI("q")})
	scalar := left.Join(right)
	got := BatchOf(left).Join(BatchOf(right)).ResultSet()
	sortedEqual(t, "cross join", got, scalar)
	if got.Len() != 4 {
		t.Fatalf("cross product has %d rows, want 4", got.Len())
	}
}

func TestBatchConcatAndSlice(t *testing.T) {
	rs := rsOf([]string{"X", "Y"},
		Row{"X": termI("a"), "Y": termI("b")},
		Row{"X": termI("c")},
		Row{"X": termI("d"), "Y": termI("e")},
		Row{"X": termI("a"), "Y": termI("e")},
	)
	b := BatchOf(rs)
	var parts []*Batch
	for i := 0; i < b.Len(); i += 2 {
		end := i + 2
		if end > b.Len() {
			end = b.Len()
		}
		s := b.Slice(i, end)
		// Slices must compact the dictionary: no slice needs more terms
		// than it has cells.
		if len(s.Dict) > (end-i)*len(s.Vars) {
			t.Fatalf("slice dict has %d terms for %d rows", len(s.Dict), end-i)
		}
		parts = append(parts, s)
	}
	back := Concat(parts...)
	sortedEqual(t, "slice+concat", back.ResultSet(), rs)
	if got := b.Slice(3, 1); got.Len() != 0 {
		t.Fatalf("inverted slice has %d rows", got.Len())
	}
	if got := b.Slice(-5, 100); got.Len() != b.Len() {
		t.Fatalf("clamped slice has %d rows, want %d", got.Len(), b.Len())
	}
}

func TestBatchZeroVariables(t *testing.T) {
	// A projection onto no variables keeps cardinality 0 or 1.
	rs := rsOf([]string{"X"}, Row{"X": termI("a")}, Row{"X": termI("b")})
	scalar := rs.Project(nil)
	got := BatchOf(rs).Project(nil)
	if got.Len() != scalar.Len() {
		t.Fatalf("zero-var project: %d rows, want %d", got.Len(), scalar.Len())
	}
	enc := EncodeBatch(got)
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode zero-var batch: %v", err)
	}
	if dec.Len() != got.Len() || len(dec.Vars) != 0 {
		t.Fatalf("zero-var round trip: len=%d vars=%v", dec.Len(), dec.Vars)
	}
}

// TestTermStoreSharedPlane pins the shared-dictionary plane to the
// self-contained one: rebasing inputs onto one store must change no
// answers while letting same-store operators skip remapping entirely.
func TestTermStoreSharedPlane(t *testing.T) {
	a := rsOf([]string{"X", "Y"},
		Row{"X": termI("a"), "Y": termI("b")},
		Row{"X": termI("c"), "Y": termI("d")},
		Row{"X": termI("a")},
	)
	b := rsOf([]string{"Y", "Z"},
		Row{"Y": termI("b"), "Z": termI("e")},
		Row{"Y": termI("d"), "Z": termI("f")},
		Row{"Y": termI("x"), "Z": termI("y")},
	)
	st := NewTermStore()
	sa, sb := BatchOf(a).Rebase(st), BatchOf(b).Rebase(st)
	if sa.store != st || sb.store != st {
		t.Fatalf("rebased batches not store-backed")
	}
	sortedEqual(t, "rebase(a)", sa.ResultSet(), a)
	sortedEqual(t, "rebase(b)", sb.ResultSet(), b)

	join := sa.Join(sb)
	if join.store != st {
		t.Fatalf("same-store join lost the store")
	}
	sortedEqual(t, "same-store join", join.ResultSet(), BatchOf(a).Join(BatchOf(b)).ResultSet())
	sortedEqual(t, "same-store union", sa.Union(sb).ResultSet(), BatchOf(a).Union(BatchOf(b)).ResultSet())
	sortedEqual(t, "same-store project", join.Project([]string{"X", "Z"}).ResultSet(),
		BatchOf(a).Join(BatchOf(b)).Project([]string{"X", "Z"}).ResultSet())

	// Mixed: one store-backed side, one self-contained side.
	sortedEqual(t, "mixed join", sa.Join(BatchOf(b)).ResultSet(), BatchOf(a).Join(BatchOf(b)).ResultSet())

	// A store-backed slice re-dictionaries to frame-local ids.
	sl := join.Slice(0, join.Len())
	if sl.store != nil {
		t.Fatalf("wire slice must be self-contained")
	}
	sortedEqual(t, "slice of store-backed", sl.ResultSet(), join.ResultSet())
}

// TestTermStoreConcurrentIntern exercises the store's lock under the
// race detector: concurrent rebases and interns must agree — one id per
// distinct term, every id resolvable through any later snapshot.
func TestTermStoreConcurrentIntern(t *testing.T) {
	st := NewTermStore()
	const workers = 8
	done := make(chan map[string]int32, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			ids := map[string]int32{}
			b := st.NewBatch("X")
			for i := 0; i < 300; i++ {
				name := "t" + string(rune('0'+(i+w)%10)) + string(rune('a'+i%26))
				ids[name] = b.Intern(termI(name))
			}
			done <- ids
		}(w)
	}
	all := map[string]int32{}
	for w := 0; w < workers; w++ {
		for name, id := range <-done {
			if prev, ok := all[name]; ok && prev != id {
				t.Fatalf("term %q interned as both %d and %d", name, prev, id)
			}
			all[name] = id
		}
	}
	final := st.NewBatch("X")
	for name, id := range all {
		if got := final.Intern(termI(name)); got != id {
			t.Fatalf("term %q re-interned as %d, want %d", name, got, id)
		}
		if final.Dict[id] != termI(name) {
			t.Fatalf("snapshot term at %d = %v, want %q", id, final.Dict[id], name)
		}
	}
}
