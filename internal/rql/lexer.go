package rql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer tokenizes RQL and RVL source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

var keywords = map[string]TokKind{
	"SELECT": TokSelect, "FROM": TokFrom, "WHERE": TokWhere,
	"USING": TokUsing, "NAMESPACE": TokNamespace, "AND": TokAnd,
	"LIKE": TokLike, "VIEW": TokView, "CREATE": TokCreate,
	"LIMIT": TokLimit,
}

// Next returns the next token, or an error for unlexable input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	startLine, startCol := l.line, l.col
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: startLine, Col: startCol}
	}
	if l.pos >= len(l.src) {
		return mk(TokEOF, ""), nil
	}
	c := l.src[l.pos]
	switch c {
	case '{':
		l.advance(1)
		return mk(TokLBrace, "{"), nil
	case '}':
		l.advance(1)
		return mk(TokRBrace, "}"), nil
	case '(':
		l.advance(1)
		return mk(TokLParen, "("), nil
	case ')':
		l.advance(1)
		return mk(TokRParen, ")"), nil
	case ',':
		l.advance(1)
		return mk(TokComma, ","), nil
	case ';':
		l.advance(1)
		return mk(TokSemicolon, ";"), nil
	case '*':
		l.advance(1)
		return mk(TokStar, "*"), nil
	case '=':
		l.advance(1)
		return mk(TokEq, "="), nil
	case '!':
		if l.peekAt(1) == '=' {
			l.advance(2)
			return mk(TokNeq, "!="), nil
		}
		return Token{}, fmt.Errorf("rql: %d:%d: unexpected '!'", startLine, startCol)
	case '<':
		if l.peekAt(1) == '=' {
			l.advance(2)
			return mk(TokLe, "<="), nil
		}
		l.advance(1)
		return mk(TokLt, "<"), nil
	case '>':
		if l.peekAt(1) == '=' {
			l.advance(2)
			return mk(TokGe, ">="), nil
		}
		l.advance(1)
		return mk(TokGt, ">"), nil
	case '&':
		// &http://...& namespace IRI reference.
		end := strings.IndexByte(l.src[l.pos+1:], '&')
		if end < 0 {
			return Token{}, fmt.Errorf("rql: %d:%d: unterminated &IRI&", startLine, startCol)
		}
		iri := l.src[l.pos+1 : l.pos+1+end]
		l.advance(end + 2)
		return mk(TokIRIRef, iri), nil
	case '"':
		i := l.pos + 1
		var sb strings.Builder
		for i < len(l.src) {
			if l.src[i] == '\\' && i+1 < len(l.src) {
				sb.WriteByte(l.src[i+1])
				i += 2
				continue
			}
			if l.src[i] == '"' {
				text := sb.String()
				l.advance(i + 1 - l.pos)
				return mk(TokString, text), nil
			}
			sb.WriteByte(l.src[i])
			i++
		}
		return Token{}, fmt.Errorf("rql: %d:%d: unterminated string literal", startLine, startCol)
	}
	if c >= '0' && c <= '9' {
		i := l.pos
		for i < len(l.src) && l.src[i] >= '0' && l.src[i] <= '9' {
			i++
		}
		text := l.src[l.pos:i]
		l.advance(i - l.pos)
		return mk(TokNumber, text), nil
	}
	if isIdentStart(rune(c)) {
		i := l.pos
		for i < len(l.src) && isIdentPart(rune(l.src[i])) {
			i++
		}
		word := l.src[l.pos:i]
		// QName: prefix ':' local (no space). "http://" is not a qname
		// here because identifiers never contain '/'.
		if i < len(l.src) && l.src[i] == ':' && i+1 < len(l.src) && isIdentStart(rune(l.src[i+1])) {
			j := i + 1
			for j < len(l.src) && isIdentPart(rune(l.src[j])) {
				j++
			}
			text := l.src[l.pos:j]
			l.advance(j - l.pos)
			return mk(TokQName, text), nil
		}
		l.advance(i - l.pos)
		if kind, ok := keywords[strings.ToUpper(word)]; ok {
			return mk(kind, word), nil
		}
		return mk(TokIdent, word), nil
	}
	return Token{}, fmt.Errorf("rql: %d:%d: unexpected character %q", startLine, startCol, string(c))
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance(1)
		} else if c == '\n' {
			l.pos++
			l.line++
			l.col = 1
		} else if c == '-' && l.peekAt(1) == '-' {
			// RQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		} else {
			return
		}
	}
}

func (l *Lexer) advance(n int) {
	l.pos += n
	l.col += n
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
