package rql

import "testing"

// firstElem identifies a buffer's backing array.
func firstElem(b []byte) *byte {
	if cap(b) == 0 {
		return nil
	}
	return &b[:1][0]
}

// A buffer put twice must land in the pool once: two subsequent Gets
// aliasing the same array would hand one set of bytes to two encoders.
func TestPutWireBufDoublePutDoesNotAlias(t *testing.T) {
	buf := GetWireBuf()
	buf = append(buf, 0x01, 0x02, 0x03)
	PutWireBuf(buf)
	PutWireBuf(buf) // buggy caller returns the same buffer again

	b1 := GetWireBuf()
	b2 := GetWireBuf()
	if p1, p2 := firstElem(b1), firstElem(b2); p1 != nil && p1 == p2 {
		t.Fatal("double put poisoned the pool: two Gets share one backing array")
	}
	PutWireBuf(b1)
	PutWireBuf(b2)
}

// A normal put/get cycle still recycles: the guard must not tax the
// single-put fast path by refusing legitimate reuse.
func TestPutWireBufRecyclesAfterGet(t *testing.T) {
	buf := GetWireBuf()
	p := firstElem(buf)
	PutWireBuf(buf)
	got := GetWireBuf()
	// sync.Pool gives no hard guarantee, but single-goroutine
	// put-then-get returns the same item; what matters is that taking it
	// back out re-arms the tracking set so the next put is accepted.
	PutWireBuf(got)
	again := GetWireBuf()
	if p != nil && firstElem(got) == p && firstElem(again) != p {
		t.Fatal("get did not re-arm the tracking set: second cycle refused a legitimate put")
	}
	PutWireBuf(again)
}

// Oversized buffers are dropped so one giant frame cannot pin megabytes
// in the pool; zero-cap buffers are dropped because they cannot be
// identity-tracked (and pooling them is pointless anyway).
func TestPutWireBufDropsOversizedAndDegenerate(t *testing.T) {
	big := make([]byte, 0, maxPooledCap+1)
	p := firstElem(big)
	PutWireBuf(big)
	for i := 0; i < 8; i++ {
		got := GetWireBuf()
		if firstElem(got) == p {
			t.Fatal("oversized buffer was pooled")
		}
		if cap(got) > maxPooledCap {
			t.Fatalf("pool returned a %d-cap buffer", cap(got))
		}
	}
	PutWireBuf(nil)           // must not panic
	PutWireBuf([]byte{}[0:0]) // zero-cap, must not panic or pool
}
