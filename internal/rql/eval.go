package rql

import (
	"fmt"
	"strconv"
	"strings"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// EvalPathPattern evaluates a single semantic path pattern over a base:
// the pairs related through the pattern's property (with subproperty
// closure from the schema), filtered by end-point class restrictions when
// the pattern narrows the property's declared end-points. This is the
// scan operator of the distributed executor — a peer receiving Q1@P2
// evaluates exactly this.
func EvalPathPattern(base *rdf.Base, schema *rdf.Schema, pat pattern.PathPattern) *ResultSet {
	rs := NewResultSet(pat.SubjectVar, pat.ObjectVar)
	pairs := base.Pairs(pat.Property, schema)
	def, _ := schema.PropertyByName(pat.Property)

	var domainFilter, rangeFilter map[rdf.Term]bool
	if def != nil && pat.Domain != def.Domain && pat.Domain != "" {
		domainFilter = instanceSet(base, schema, pat.Domain)
	}
	if def != nil && pat.Range != def.Range && pat.Range != "" {
		rangeFilter = instanceSet(base, schema, pat.Range)
	}
	for _, pr := range pairs {
		if domainFilter != nil && !domainFilter[pr.X] {
			continue
		}
		if rangeFilter != nil && !pr.Y.IsLiteral() && !rangeFilter[pr.Y] {
			continue
		}
		rs.Add(Row{pat.SubjectVar: pr.X, pat.ObjectVar: pr.Y})
	}
	return rs
}

// EvalPathPatternBatch is EvalPathPattern's columnar twin: the same
// pairs, the same end-point filters, appended straight into a batch with
// interned term ids — no per-row map materialization. This is the scan
// leaf of the batch data plane; the row version above remains the
// RowWire ablation's leaf and the local ground-truth evaluator's.
func EvalPathPatternBatch(base *rdf.Base, schema *rdf.Schema, pat pattern.PathPattern) *Batch {
	return EvalPathPatternBatchInto(nil, base, schema, pat)
}

// EvalPathPatternBatchInto is EvalPathPatternBatch interning into an
// execution's shared dictionary (nil store for a self-contained batch).
// The pairs stream straight from the triple indexes into the columns, so
// the scan materializes nothing per row but the two id appends.
func EvalPathPatternBatchInto(store *TermStore, base *rdf.Base, schema *rdf.Schema, pat pattern.PathPattern) *Batch {
	var b *Batch
	if store != nil {
		b = store.NewBatch(pat.SubjectVar, pat.ObjectVar)
	} else {
		b = NewBatch(pat.SubjectVar, pat.ObjectVar)
	}
	def, _ := schema.PropertyByName(pat.Property)

	var domainFilter, rangeFilter map[rdf.Term]bool
	if def != nil && pat.Domain != def.Domain && pat.Domain != "" {
		domainFilter = instanceSet(base, schema, pat.Domain)
	}
	if def != nil && pat.Range != def.Range && pat.Range != "" {
		rangeFilter = instanceSet(base, schema, pat.Range)
	}
	// The triple indexes group a property's pairs by subject, so runs of
	// consecutive pairs share pr.X; memoizing the previous subject's id
	// saves a dictionary probe per pair in the run.
	var lastX rdf.Term
	lastID := int32(-1)
	base.PairsFunc(pat.Property, schema, func(pr rdf.Pair) {
		if domainFilter != nil && !domainFilter[pr.X] {
			return
		}
		if rangeFilter != nil && !pr.Y.IsLiteral() && !rangeFilter[pr.Y] {
			return
		}
		if lastID < 0 || pr.X != lastX {
			lastX, lastID = pr.X, b.Intern(pr.X)
		}
		b.Cols[0] = append(b.Cols[0], lastID)
		b.Cols[1] = append(b.Cols[1], b.Intern(pr.Y))
		b.rows++
	})
	return b
}

func instanceSet(base *rdf.Base, schema *rdf.Schema, class rdf.IRI) map[rdf.Term]bool {
	set := map[rdf.Term]bool{}
	for _, t := range base.InstancesOf(class, schema) {
		set[t] = true
	}
	return set
}

// Eval evaluates a compiled query entirely against one local base: scan
// each path pattern, join following the query pattern's join tree, apply
// WHERE filters, project. Peers use it to answer subqueries; the
// integration tests use it as the ground truth a distributed execution
// must reproduce.
func Eval(c *Compiled, base *rdf.Base) (*ResultSet, error) {
	tree, err := c.Pattern.JoinTree()
	if err != nil {
		return nil, fmt.Errorf("rql: eval: %w", err)
	}
	var acc *ResultSet
	tree.Walk(func(id string, _ int) {
		scan := EvalPathPattern(base, c.Schema, tree.Pattern(id))
		if acc == nil {
			acc = scan
		} else {
			acc = acc.Join(scan)
		}
	})
	filtered, err := ApplyFilters(acc, c.Query.Where)
	if err != nil {
		return nil, err
	}
	return filtered.Project(c.Pattern.Projections).Limit(c.Query.Limit), nil
}

// ApplyFilters applies WHERE conditions to a result set, returning the
// surviving rows. Unbound variables in a condition make the row fail.
func ApplyFilters(rs *ResultSet, conds []Condition) (*ResultSet, error) {
	if len(conds) == 0 {
		return rs, nil
	}
	out := NewResultSet(rs.Vars...)
	for _, r := range rs.Rows {
		keep := true
		for _, c := range conds {
			ok, err := evalCondition(r, c)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Add(r)
		}
	}
	return out, nil
}

func evalCondition(r Row, c Condition) (bool, error) {
	left, ok := resolveOperand(r, c.Left)
	if !ok {
		return false, nil
	}
	right, ok := resolveOperand(r, c.Right)
	if !ok {
		return false, nil
	}
	switch c.Op {
	case OpEq:
		return termsEqual(left, right), nil
	case OpNeq:
		return !termsEqual(left, right), nil
	case OpLike:
		return matchLike(termText(left), termText(right)), nil
	case OpLt, OpLe, OpGt, OpGe:
		cmp, err := compareTerms(left, right)
		if err != nil {
			return false, err
		}
		switch c.Op {
		case OpLt:
			return cmp < 0, nil
		case OpLe:
			return cmp <= 0, nil
		case OpGt:
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	default:
		return false, fmt.Errorf("rql: unsupported operator %s", c.Op)
	}
}

func resolveOperand(r Row, o Operand) (rdf.Term, bool) {
	if o.IsVar() {
		t, ok := r[o.Var]
		return t, ok
	}
	return o.Lit, true
}

// termsEqual compares terms by value: two literals are equal when their
// lexical forms match (a plain "5" equals a typed "5"^^xsd:integer, which
// keeps user-facing filters forgiving); other kinds require exact match.
func termsEqual(a, b rdf.Term) bool {
	if a.IsLiteral() && b.IsLiteral() {
		return a.Value == b.Value
	}
	return a == b
}

func termText(t rdf.Term) string { return t.Value }

// compareTerms orders two terms: numerically when both parse as integers,
// lexicographically otherwise.
func compareTerms(a, b rdf.Term) (int, error) {
	av, aerr := strconv.Atoi(a.Value)
	bv, berr := strconv.Atoi(b.Value)
	if aerr == nil && berr == nil {
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return strings.Compare(a.Value, b.Value), nil
}

// matchLike implements RQL's like with '*' wildcards: the pattern is a
// sequence of segments that must appear in order, anchored at both ends
// unless '*' borders them.
func matchLike(text, pat string) bool {
	segs := strings.Split(pat, "*")
	if len(segs) == 1 {
		return text == pat
	}
	pos := 0
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		idx := strings.Index(text[pos:], seg)
		if idx < 0 {
			return false
		}
		if i == 0 && idx != 0 {
			return false // anchored start
		}
		pos += idx + len(seg)
	}
	if last := segs[len(segs)-1]; last != "" && !strings.HasSuffix(text, last) {
		return false // anchored end
	}
	return true
}
