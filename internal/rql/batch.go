package rql

import (
	"sync"

	"sqpeer/internal/rdf"
)

// Batch is the columnar twin of ResultSet: the same logical relation —
// rows over a fixed variable schema — stored as one dictionary-encoded
// id column per variable. Terms repeat heavily in SQPeer workloads (join
// resources appear once per matching pair, IRIs share long namespace
// prefixes), so each batch carries a small per-batch term dictionary and
// the columns hold int32 dictionary ids; unbound variables are encoded
// as -1. Batches are what the executor's data plane moves and operates
// on; ResultSet remains the public facade, with BatchOf / Batch.ResultSet
// converting at the boundary.
//
// Facade contract: a Row binding for a variable outside the set's Vars
// is not representable columnar-wise and is dropped by BatchOf. Nothing
// in the engine produces such rows (every operator binds only schema
// variables), which is what makes the two representations equivalent.
type Batch struct {
	// Vars is the variable schema, in presentation order.
	Vars []string
	// Cols holds one id column per variable, aligned with Vars; each
	// column has Len() entries and entry -1 means "unbound in this row".
	Cols [][]int32
	// Dict maps dictionary ids to terms.
	Dict []rdf.Term

	// rows is the row count, kept explicitly so zero-variable relations
	// (a projection onto no variables) keep their cardinality.
	rows int
	// index is the lazily-built Dict inverse used when interning; nil
	// (and unused) while the batch is store-backed.
	index map[rdf.Term]int32
	// store, when non-nil, is the shared dictionary this batch's ids
	// live in; Dict is then a prefix snapshot of the store's term
	// sequence. Two batches on the same store agree on every id, which
	// is what lets the operators skip dictionary merging entirely.
	store *TermStore
}

// TermStore is a grow-only term dictionary shared by every batch of one
// engine execution. Per-batch dictionaries make wire frames self-
// contained, but inside one engine they mean each operator re-interns
// its inputs' terms — on million-row results the repeated dictionary and
// index rebuilds, not the row work, dominate allocation. A store interns
// each term once per execution; batches carry capacity-capped snapshots
// of the term sequence as their Dict, so ids are stable, snapshots stay
// immutable while the store grows, and every id-space read path (facade
// conversion, slicing, encoding) works unchanged.
//
// The mutex makes interning safe across the execution's collector and
// branch goroutines; reads of a snapshot need no lock because the store
// only ever appends past every existing snapshot's length.
//
// The inverse index is a linear-probing table of id+1 slots (0 empty)
// rather than a Go map: each term's hash is computed once at insertion
// and memoized in hashes, so growing the table re-buckets by stored
// hash without touching a term, and both table arrays are pointer-free
// — on million-term executions a Term-keyed map spends more time
// re-hashing terms during growth (and being scanned by the collector)
// than interning them.
type TermStore struct {
	mu    sync.Mutex
	terms []rdf.Term
	// hashes[id] is the memoized termHash of terms[id].
	hashes []uint64
	// slots is the power-of-two probe table holding id+1; mask is
	// len(slots)-1.
	slots []int32
	mask  uint64
}

// NewTermStore returns an empty shared dictionary.
func NewTermStore() *TermStore {
	return &TermStore{slots: make([]int32, 1024), mask: 1023}
}

// termHash is a deterministic FNV-1a over the term's discriminant and
// text; interning uses it through the memo in TermStore.hashes.
func termHash(t rdf.Term) uint64 {
	h := uint64(14695981039346656037)
	h ^= uint64(t.Kind)
	h *= 1099511628211
	for i := 0; i < len(t.Value); i++ {
		h ^= uint64(t.Value[i])
		h *= 1099511628211
	}
	h ^= 0xff // separator: ("a","b") must not collide with ("ab","")
	h *= 1099511628211
	for i := 0; i < len(t.Datatype); i++ {
		h ^= uint64(t.Datatype[i])
		h *= 1099511628211
	}
	return h
}

// intern returns t's id, adding it on first use. Caller holds mu.
func (s *TermStore) intern(t rdf.Term) int32 {
	h := termHash(t)
	i := h & s.mask
	for {
		slot := s.slots[i]
		if slot == 0 {
			break
		}
		if id := slot - 1; s.hashes[id] == h && s.terms[id] == t {
			return id
		}
		i = (i + 1) & s.mask
	}
	id := int32(len(s.terms))
	s.terms = append(s.terms, t)
	s.hashes = append(s.hashes, h)
	s.slots[i] = id + 1
	if uint64(len(s.terms))*4 >= uint64(len(s.slots))*3 {
		s.grow()
	}
	return id
}

// grow doubles the probe table, re-bucketing by memoized hash.
func (s *TermStore) grow() {
	slots := make([]int32, 2*len(s.slots))
	mask := uint64(len(slots) - 1)
	for id, h := range s.hashes {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(id) + 1
	}
	s.slots, s.mask = slots, mask
}

// snapshot returns the current term sequence, capacity-capped so later
// store appends reallocate instead of scribbling past it. Caller holds mu.
func (s *TermStore) snapshot() []rdf.Term {
	return s.terms[:len(s.terms):len(s.terms)]
}

// NewBatch returns an empty store-backed batch over the variables.
func (s *TermStore) NewBatch(vars ...string) *Batch {
	b := NewBatch(vars...)
	b.store = s
	s.mu.Lock()
	b.Dict = s.snapshot()
	s.mu.Unlock()
	return b
}

// Rebase rewrites b in place into s's id space, making it store-backed.
// The collector calls this on every decoded wire frame, so one stream
// pays one dictionary-sized interning pass per frame and everything
// downstream of it — concatenation, unions, joins — moves ids without
// touching a term again. Returns b for chaining.
func (b *Batch) Rebase(s *TermStore) *Batch {
	if b == nil || b.store == s {
		return b
	}
	m := make([]int32, len(b.Dict))
	s.mu.Lock()
	for i, t := range b.Dict {
		m[i] = s.intern(t)
	}
	snap := s.snapshot()
	s.mu.Unlock()
	for _, col := range b.Cols {
		for r, id := range col {
			if id >= 0 {
				col[r] = m[id]
			}
		}
	}
	b.store, b.Dict, b.index = s, snap, nil
	return b
}

// NewBatch returns an empty batch over the variables.
func NewBatch(vars ...string) *Batch {
	return &Batch{Vars: vars, Cols: make([][]int32, len(vars))}
}

// Len returns the number of rows.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return b.rows
}

// Intern returns the dictionary id of t, adding it on first use. On a
// store-backed batch the store interns and the batch refreshes its Dict
// snapshot to cover the new id.
func (b *Batch) Intern(t rdf.Term) int32 {
	if s := b.store; s != nil {
		s.mu.Lock()
		id := s.intern(t)
		if int(id) >= len(b.Dict) {
			b.Dict = s.snapshot()
		}
		s.mu.Unlock()
		return id
	}
	if b.index == nil {
		b.index = make(map[rdf.Term]int32, len(b.Dict)+16)
		for i, dt := range b.Dict {
			b.index[dt] = int32(i)
		}
	}
	if id, ok := b.index[t]; ok {
		return id
	}
	id := int32(len(b.Dict))
	b.Dict = append(b.Dict, t)
	b.index[t] = id
	return id
}

// appendIDs appends one row of dictionary ids (already in this batch's
// dictionary space, aligned with Vars).
func (b *Batch) appendIDs(ids []int32) {
	for i := range b.Cols {
		b.Cols[i] = append(b.Cols[i], ids[i])
	}
	b.rows++
}

// BatchOf converts a result set into its columnar form.
func BatchOf(rs *ResultSet) *Batch {
	if rs == nil {
		return NewBatch()
	}
	b := NewBatch(rs.Vars...)
	for i := range b.Cols {
		b.Cols[i] = make([]int32, 0, len(rs.Rows))
	}
	for _, r := range rs.Rows {
		for i, v := range b.Vars {
			t, ok := r[v]
			if !ok {
				b.Cols[i] = append(b.Cols[i], -1)
				continue
			}
			b.Cols[i] = append(b.Cols[i], b.Intern(t))
		}
		b.rows++
	}
	return b
}

// ResultSet converts the batch back into the row-map facade form.
func (b *Batch) ResultSet() *ResultSet {
	if b == nil {
		return NewResultSet()
	}
	rs := NewResultSet(b.Vars...)
	rs.Rows = make([]Row, 0, b.rows)
	for r := 0; r < b.rows; r++ {
		row := make(Row, len(b.Vars))
		for c, v := range b.Vars {
			if id := b.Cols[c][r]; id >= 0 {
				row[v] = b.Dict[id]
			}
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs
}

// hashIDs folds an id tuple into a 64-bit FNV-1a hash. Ids are shifted
// by one so the unbound sentinel (-1) hashes distinctly from id 0. The
// batch operators key their dedup sets and join indexes on this hash —
// a scalar, so the maps never allocate per entry the way string-keyed
// maps do — and verify genuine tuple equality against the columns on
// every hash hit, so collisions cost a comparison, never a wrong answer.
func hashIDs(ids []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range ids {
		x := uint32(id + 1)
		for s := 0; s < 32; s += 8 {
			h ^= uint64((x >> s) & 0xff)
			h *= 1099511628211
		}
	}
	return h
}

// dedup admits unique id tuples into out, appending each new row. head
// maps a tuple hash to the first admitted out-row with that hash;
// genuinely colliding tuples (same hash, different ids — vanishingly
// rare but handled) chain through over.
type dedup struct {
	out  *Batch
	head map[uint64]int32
	over map[uint64][]int32
}

func newDedup(out *Batch, hint int) *dedup {
	return &dedup{out: out, head: make(map[uint64]int32, hint)}
}

// sameRow reports whether admitted out-row r equals the candidate tuple.
func (d *dedup) sameRow(r int32, ids []int32) bool {
	for c := range d.out.Cols {
		if d.out.Cols[c][r] != ids[c] {
			return false
		}
	}
	return true
}

// admit appends ids to out unless an equal tuple was admitted before,
// reporting whether the row is new.
func (d *dedup) admit(ids []int32) bool {
	h := hashIDs(ids)
	r, ok := d.head[h]
	if !ok {
		d.head[h] = int32(d.out.rows)
		d.out.appendIDs(ids)
		return true
	}
	if d.sameRow(r, ids) {
		return false
	}
	for _, or := range d.over[h] {
		if d.sameRow(or, ids) {
			return false
		}
	}
	if d.over == nil {
		d.over = map[uint64][]int32{}
	}
	d.over[h] = append(d.over[h], int32(d.out.rows))
	d.out.appendIDs(ids)
	return true
}

// adoptDict shares src's dictionary (and store, if any) with b, making
// src's ids valid b ids so the caller can skip remapping that input (a
// nil translation table). Operators adopt the input with the largest
// dictionary, so across a pipeline of operators each term is hashed and
// interned once — when it first enters — rather than once per operator.
// The shared slice is capacity-capped, so b's first dictionary append
// reallocates instead of scribbling on src's backing array. src is never
// mutated and its intern index is never shared: parallel sibling
// branches may adopt the same input concurrently, so b lazily builds its
// own index if it ever interns (store-backed batches never need one).
func (b *Batch) adoptDict(src *Batch) {
	if src == nil {
		return
	}
	b.store = src.store
	b.Dict = src.Dict[:len(src.Dict):len(src.Dict)]
}

// adoptee picks the input with the largest dictionary — the one worth
// adopting wholesale so only the smaller inputs pay interning.
func adoptee(batches []*Batch) *Batch {
	var best *Batch
	for _, src := range batches {
		if src != nil && (best == nil || len(src.Dict) > len(best.Dict)) {
			best = src
		}
	}
	return best
}

// remapFrom interns every term of o's dictionary into b's, returning the
// o-id → b-id translation table. O(|o.Dict|), independent of row count —
// the reason dictionary-encoded columns make unions and joins cheap.
func (b *Batch) remapFrom(o *Batch) []int32 {
	m := make([]int32, len(o.Dict))
	for i, t := range o.Dict {
		m[i] = b.Intern(t)
	}
	return m
}

// remapFor returns the translation table for src's ids into b's space,
// nil when none is needed: batches on the same store already agree on
// every id.
func (b *Batch) remapFor(src *Batch) []int32 {
	if b.store != nil && src.store == b.store {
		return nil
	}
	return b.remapFrom(src)
}

// remapID translates one id through a remapFrom table, preserving the
// unbound sentinel. A nil table is the identity: the source's dictionary
// was adopted, so its ids are already output ids.
func remapID(m []int32, id int32) int32 {
	if id < 0 {
		return -1
	}
	if m == nil {
		return id
	}
	return m[id]
}

// columnsOf maps each requested variable to its column index in b, -1
// when b's schema lacks it.
func columnsOf(b *Batch, vars []string) []int {
	pos := make(map[string]int, len(b.Vars))
	for i, v := range b.Vars {
		pos[v] = i
	}
	out := make([]int, len(vars))
	for i, v := range vars {
		if c, ok := pos[v]; ok {
			out[i] = c
		} else {
			out[i] = -1
		}
	}
	return out
}

// Union merges another batch into this one, deduplicating over the union
// of the variable schemas — the vectorized ResultSet.Union: same merged
// schema, same first-occurrence-wins order, keyed on dictionary ids
// instead of rendered strings.
func (b *Batch) Union(o *Batch) *Batch {
	return UnionAll(b, o)
}

// UnionAll unions any number of batches in one pass: one merged schema,
// one dedup set, first occurrence wins across all inputs in order. The
// executor's n-way plan unions call this instead of folding pairwise,
// which would re-key the whole accumulated relation once per branch.
func UnionAll(batches ...*Batch) *Batch {
	var vars []string
	total := 0
	for _, src := range batches {
		if src == nil {
			continue
		}
		vars = mergeVars(vars, src.Vars)
		total += src.Len()
	}
	out := NewBatch(vars...)
	adopted := adoptee(batches)
	out.adoptDict(adopted)
	for i := range out.Cols {
		out.Cols[i] = make([]int32, 0, total)
	}
	d := newDedup(out, total)
	ids := make([]int32, len(vars))
	for _, src := range batches {
		if src == nil {
			continue
		}
		var remap []int32
		if src != adopted {
			remap = out.remapFor(src)
		}
		cols := columnsOf(src, vars)
		for r := 0; r < src.rows; r++ {
			for i := range vars {
				id := int32(-1)
				if c := cols[i]; c >= 0 {
					id = remapID(remap, src.Cols[c][r])
				}
				ids[i] = id
			}
			d.admit(ids)
		}
	}
	return out
}

// Join natural-joins two batches on their shared variables — the
// vectorized ResultSet.Join: hash-build on the smaller side, probe with
// the larger, build-side bindings win in the merged row, output
// deduplicated. Keys are dictionary-id sequences built in a reused
// scratch buffer; two unbound values key equal (as the rendered zero
// term does in the row path), an unbound never matches a bound one.
func (b *Batch) Join(o *Batch) *Batch {
	shared := sharedVars(b.Vars, o.Vars)
	vars := mergeVars(b.Vars, o.Vars)
	out := NewBatch(vars...)
	if b.Len() == 0 || o.Len() == 0 {
		return out
	}
	build, probe := b, o
	if probe.Len() < build.Len() {
		build, probe = probe, build
	}
	var buildMap, probeMap []int32
	if len(build.Dict) > len(probe.Dict) {
		out.adoptDict(build)
		probeMap = out.remapFor(probe)
	} else {
		out.adoptDict(probe)
		buildMap = out.remapFor(build)
	}
	for i := range out.Cols {
		out.Cols[i] = make([]int32, 0, probe.Len())
	}
	buildShared := columnsOf(build, shared)
	probeShared := columnsOf(probe, shared)
	// Chained hash index over the build side's shared-variable ids: head
	// maps a key hash to the newest build row, next links same-hash
	// predecessors (-1 terminates). Key equality is re-verified against
	// the columns at probe time, so the index needs no per-row key
	// storage at all.
	head := make(map[uint64]int32, build.Len())
	next := make([]int32, build.rows)
	keyIDs := make([]int32, len(shared))
	for r := 0; r < build.rows; r++ {
		for i := range shared {
			id := int32(-1)
			if c := buildShared[i]; c >= 0 {
				id = remapID(buildMap, build.Cols[c][r])
			}
			keyIDs[i] = id
		}
		h := hashIDs(keyIDs)
		if prev, ok := head[h]; ok {
			next[r] = prev
		} else {
			next[r] = -1
		}
		head[h] = int32(r)
	}
	buildCols := columnsOf(build, vars)
	probeCols := columnsOf(probe, vars)
	d := newDedup(out, probe.Len())
	ids := make([]int32, len(vars))
	var matches []int32
	for r := 0; r < probe.rows; r++ {
		for i := range shared {
			id := int32(-1)
			if c := probeShared[i]; c >= 0 {
				id = remapID(probeMap, probe.Cols[c][r])
			}
			keyIDs[i] = id
		}
		br, ok := head[hashIDs(keyIDs)]
		if !ok {
			continue
		}
		// The chain yields newest-first; collect and reverse so matches
		// emit in build-row order exactly like the row-at-a-time join.
		matches = matches[:0]
		for ; br >= 0; br = next[br] {
			if buildKeyEqual(build, buildShared, buildMap, br, keyIDs) {
				matches = append(matches, br)
			}
		}
		for i := len(matches) - 1; i >= 0; i-- {
			br := matches[i]
			for i := range vars {
				id := int32(-1)
				if c := buildCols[i]; c >= 0 {
					id = remapID(buildMap, build.Cols[c][br])
				}
				if id < 0 {
					if c := probeCols[i]; c >= 0 {
						id = remapID(probeMap, probe.Cols[c][r])
					}
				}
				ids[i] = id
			}
			d.admit(ids)
		}
	}
	return out
}

// buildKeyEqual reports whether build row r's remapped shared-variable
// ids equal the probe key — the collision guard behind the hash index.
func buildKeyEqual(build *Batch, sharedCols []int, m []int32, r int32, want []int32) bool {
	for i, c := range sharedCols {
		id := int32(-1)
		if c >= 0 {
			id = remapID(m, build.Cols[c][r])
		}
		if id != want[i] {
			return false
		}
	}
	return true
}

// Project restricts rows to the given variables, deduplicating — the
// vectorized ResultSet.Project.
func (b *Batch) Project(vars []string) *Batch {
	out := NewBatch(vars...)
	out.adoptDict(b)
	var remap []int32 // b's dictionary adopted: ids pass through
	cols := columnsOf(b, vars)
	for i := range out.Cols {
		out.Cols[i] = make([]int32, 0, b.Len())
	}
	d := newDedup(out, b.Len())
	ids := make([]int32, len(vars))
	for r := 0; r < b.rows; r++ {
		for i := range vars {
			id := int32(-1)
			if c := cols[i]; c >= 0 {
				id = remapID(remap, b.Cols[c][r])
			}
			ids[i] = id
		}
		d.admit(ids)
	}
	return out
}

// Concat appends batches in order over the merged schema WITHOUT
// deduplicating. It is the collector's reassembly of one result stream:
// the destination streams disjoint slices of an already-deduplicated
// relation, so concatenation reproduces exactly what a per-segment Union
// would — minus the quadratic re-scan of everything already received.
func Concat(batches ...*Batch) *Batch {
	var vars []string
	total := 0
	for _, b := range batches {
		if b == nil {
			continue
		}
		vars = mergeVars(vars, b.Vars)
		total += b.Len()
	}
	out := NewBatch(vars...)
	adopted := adoptee(batches)
	out.adoptDict(adopted)
	for i := range out.Cols {
		out.Cols[i] = make([]int32, 0, total)
	}
	for _, b := range batches {
		if b == nil {
			continue
		}
		var remap []int32
		if b != adopted {
			remap = out.remapFor(b)
		}
		cols := columnsOf(b, vars)
		for r := 0; r < b.rows; r++ {
			for i := range vars {
				id := int32(-1)
				if c := cols[i]; c >= 0 {
					id = remapID(remap, b.Cols[c][r])
				}
				out.Cols[i] = append(out.Cols[i], id)
			}
			out.rows++
		}
	}
	return out
}

// Slice returns rows [start, end) re-dictionaried to only the terms the
// slice uses. Wire batches carry a per-batch dictionary, so slicing for
// the wire must not drag the whole source dictionary along. Callers
// slicing the same batch repeatedly (the sender's framing loop) should
// use a Slicer, which reuses the remap table across calls.
func (b *Batch) Slice(start, end int) *Batch {
	return NewSlicer(b).Slice(start, end)
}

// Slicer cuts successive wire frames from one source batch. It keeps the
// source-dictionary-sized remap table across Slice calls, resetting only
// the entries the previous frame touched — without it a framing loop
// allocates and zeroes |Dict| ints per frame, which dominates sender-side
// allocation on large results.
type Slicer struct {
	src *Batch
	// remap[id] is the current frame's local id for source id, -1 while
	// unassigned; touched lists the ids assigned this frame.
	remap   []int32
	touched []int32
}

// NewSlicer returns a Slicer over b.
func NewSlicer(b *Batch) *Slicer {
	remap := make([]int32, len(b.Dict))
	for i := range remap {
		remap[i] = -1
	}
	return &Slicer{src: b, remap: remap}
}

// Slice returns rows [start, end) of the source, re-dictionaried to only
// the terms the frame uses. The returned batch is independent of the
// Slicer and of later Slice calls.
func (s *Slicer) Slice(start, end int) *Batch {
	b := s.src
	out := NewBatch(b.Vars...)
	if start < 0 {
		start = 0
	}
	if end > b.rows {
		end = b.rows
	}
	if start >= end {
		return out
	}
	s.touched = s.touched[:0]
	for c := range b.Cols {
		col := make([]int32, 0, end-start)
		for r := start; r < end; r++ {
			id := b.Cols[c][r]
			if id < 0 {
				col = append(col, -1)
				continue
			}
			nid := s.remap[id]
			if nid < 0 {
				nid = int32(len(out.Dict))
				out.Dict = append(out.Dict, b.Dict[id])
				s.remap[id] = nid
				s.touched = append(s.touched, id)
			}
			col = append(col, nid)
		}
		out.Cols[c] = col
	}
	for _, id := range s.touched {
		s.remap[id] = -1
	}
	out.rows = end - start
	return out
}
