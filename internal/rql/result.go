package rql

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"sqpeer/internal/rdf"
)

// Row is one result tuple: a binding of variable names to terms. Rows are
// the unit of data flowing through distributed plans and channels.
type Row map[string]rdf.Term

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Compatible reports whether two rows agree on every shared variable —
// the natural-join condition.
func (r Row) Compatible(other Row) bool {
	for k, v := range r {
		if ov, ok := other[k]; ok && ov != v {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible rows.
func (r Row) Merge(other Row) Row {
	m := r.Clone()
	for k, v := range other {
		m[k] = v
	}
	return m
}

// key canonicalizes the row for deduplication.
func (r Row) key(vars []string) string {
	return string(appendRowKey(nil, r, vars))
}

// appendTermKey appends an injective byte encoding of t — kind byte plus
// length-prefixed value and datatype — so concatenated terms form an
// unambiguous key without rendering strings.
func appendTermKey(dst []byte, t rdf.Term) []byte {
	dst = append(dst, byte(t.Kind))
	dst = binary.AppendUvarint(dst, uint64(len(t.Value)))
	dst = append(dst, t.Value...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Datatype)))
	dst = append(dst, string(t.Datatype)...)
	return dst
}

// appendRowKey appends r's dedup key over vars into dst, which the set
// operators reuse across rows: a map lookup with string(dst) does not
// allocate, so a key string is only materialized per unique row on insert.
// A variable missing from r keys as the zero Term, exactly as it did when
// keys rendered Term.String (where both print "<>").
func appendRowKey(dst []byte, r Row, vars []string) []byte {
	for _, v := range vars {
		dst = appendTermKey(dst, r[v])
	}
	return dst
}

// ResultSet is an ordered collection of rows over a fixed variable list.
type ResultSet struct {
	// Vars is the variable schema of the rows, in presentation order.
	Vars []string `json:"vars"`
	// Rows are the result tuples.
	Rows []Row `json:"rows"`
}

// NewResultSet returns an empty result set over the variables.
func NewResultSet(vars ...string) *ResultSet {
	return &ResultSet{Vars: vars}
}

// Len returns the number of rows.
func (rs *ResultSet) Len() int {
	if rs == nil {
		return 0
	}
	return len(rs.Rows)
}

// Add appends a row.
func (rs *ResultSet) Add(r Row) { rs.Rows = append(rs.Rows, r) }

// Union merges another result set into this one, deduplicating rows over
// the union of the variable schemas. It implements the ∪ of horizontal
// distribution: the same logical tuple arriving from several peers appears
// once.
func (rs *ResultSet) Union(other *ResultSet) *ResultSet {
	vars := mergeVars(rs.Vars, other.Vars)
	out := NewResultSet(vars...)
	seen := make(map[string]bool, rs.Len()+other.Len())
	var key []byte
	for _, src := range []*ResultSet{rs, other} {
		if src == nil {
			continue
		}
		for _, r := range src.Rows {
			key = appendRowKey(key[:0], r, vars)
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			out.Add(r)
		}
	}
	return out
}

// Join natural-joins two result sets on their shared variables (the ⋈ of
// vertical distribution), hash-joining on the shared-variable key.
func (rs *ResultSet) Join(other *ResultSet) *ResultSet {
	shared := sharedVars(rs.Vars, other.Vars)
	vars := mergeVars(rs.Vars, other.Vars)
	out := NewResultSet(vars...)
	if rs.Len() == 0 || other.Len() == 0 {
		return out
	}
	// Build on the smaller side.
	build, probe := rs, other
	if probe.Len() < build.Len() {
		build, probe = probe, build
	}
	idx := make(map[string][]Row, build.Len())
	var key []byte
	for _, r := range build.Rows {
		// Compute the shared-variable key once per build row; the string
		// is only allocated when the key is new.
		key = appendRowKey(key[:0], r, shared)
		if rows, ok := idx[string(key)]; ok {
			idx[string(key)] = append(rows, r)
		} else {
			idx[string(key)] = []Row{r}
		}
	}
	seen := make(map[string]bool, probe.Len())
	var rowKey []byte
	for _, r := range probe.Rows {
		key = appendRowKey(key[:0], r, shared)
		for _, b := range idx[string(key)] {
			if r.Compatible(b) {
				m := r.Merge(b)
				rowKey = appendRowKey(rowKey[:0], m, vars)
				if seen[string(rowKey)] {
					continue
				}
				seen[string(rowKey)] = true
				out.Add(m)
			}
		}
	}
	return out
}

// Project restricts rows to the given variables, deduplicating.
func (rs *ResultSet) Project(vars []string) *ResultSet {
	out := NewResultSet(vars...)
	seen := make(map[string]bool, rs.Len())
	var key []byte
	for _, r := range rs.Rows {
		p := make(Row, len(vars))
		for _, v := range vars {
			if t, ok := r[v]; ok {
				p[v] = t
			}
		}
		key = appendRowKey(key[:0], p, vars)
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		out.Add(p)
	}
	return out
}

// Distinct deduplicates rows in place over the set's own variables.
func (rs *ResultSet) Distinct() *ResultSet {
	return rs.Project(rs.Vars)
}

// Limit returns a result set with at most n rows (0 means no limit),
// implementing the Top-N completeness/load trade-off of the paper's
// future work.
func (rs *ResultSet) Limit(n int) *ResultSet {
	if n <= 0 || rs.Len() <= n {
		return rs
	}
	out := NewResultSet(rs.Vars...)
	out.Rows = append(out.Rows, rs.Rows[:n]...)
	return out
}

// Sorted returns the rows rendered and sorted lexicographically; tests use
// it for stable comparisons.
func (rs *ResultSet) Sorted() []string {
	out := make([]string, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		parts := make([]string, len(rs.Vars))
		for i, v := range rs.Vars {
			parts[i] = fmt.Sprintf("%s=%s", v, r[v])
		}
		out = append(out, strings.Join(parts, " "))
	}
	sort.Strings(out)
	return out
}

// String renders the result set as a small table.
func (rs *ResultSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d rows)\n", strings.Join(rs.Vars, "\t"), rs.Len())
	for _, line := range rs.Sorted() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// EstimatedBytes approximates the wire size of the result set, used by the
// network simulator to charge transfer cost for result packets.
func (rs *ResultSet) EstimatedBytes() int {
	if rs == nil {
		return 0
	}
	n := 0
	for _, r := range rs.Rows {
		for k, v := range r {
			n += len(k) + len(v.Value) + 8
		}
	}
	return n
}

func mergeVars(a, b []string) []string {
	out := append([]string{}, a...)
	seen := map[string]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func sharedVars(a, b []string) []string {
	inA := map[string]bool{}
	for _, v := range a {
		inA[v] = true
	}
	var out []string
	for _, v := range b {
		if inA[v] {
			out = append(out, v)
		}
	}
	return out
}
