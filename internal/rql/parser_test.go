package rql

import (
	"strings"
	"testing"
)

const paperNS = "http://ics.forth.gr/SON/n1#"

const paperQuerySrc = `SELECT X, Y
FROM {X;n1:C1}n1:prop1{Y}, {Y}n1:prop2{Z}
USING NAMESPACE n1 = &` + paperNS + `&`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuerySrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 2 || q.Select[0] != "X" || q.Select[1] != "Y" {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.From) != 2 {
		t.Fatalf("From has %d path expressions", len(q.From))
	}
	p1 := q.From[0]
	if p1.Subject.Var != "X" || p1.Subject.Class != "n1:C1" || p1.Property != "n1:prop1" || p1.Object.Var != "Y" {
		t.Errorf("first path expression = %+v", p1)
	}
	p2 := q.From[1]
	if p2.Subject.Var != "Y" || p2.Property != "n1:prop2" || p2.Object.Var != "Z" {
		t.Errorf("second path expression = %+v", p2)
	}
	if iri, ok := q.Namespaces.Resolve("n1"); !ok || iri != paperNS {
		t.Errorf("namespace n1 = %q, %v", iri, ok)
	}
	if vars := q.Variables(); len(vars) != 3 || vars[0] != "X" || vars[1] != "Y" || vars[2] != "Z" {
		t.Errorf("Variables = %v", vars)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * FROM {X}n1:prop1{Y} USING NAMESPACE n1 = &http://x#&`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Select != nil {
		t.Errorf("SELECT * should leave Select nil, got %v", q.Select)
	}
}

func TestParseWhereConditions(t *testing.T) {
	q, err := Parse(`SELECT X FROM {X}n1:p{Z} WHERE Z = "v" AND X != Z AND Z like "pre*" AND Z < 10
USING NAMESPACE n1 = &http://x#&`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Where) != 4 {
		t.Fatalf("Where has %d conditions", len(q.Where))
	}
	if q.Where[0].Op != OpEq || !q.Where[0].Left.IsVar() || q.Where[0].Right.Lit.Value != "v" {
		t.Errorf("cond 0 = %+v", q.Where[0])
	}
	if q.Where[1].Op != OpNeq || q.Where[1].Right.Var != "Z" {
		t.Errorf("cond 1 = %+v", q.Where[1])
	}
	if q.Where[2].Op != OpLike {
		t.Errorf("cond 2 = %+v", q.Where[2])
	}
	if q.Where[3].Op != OpLt || q.Where[3].Right.Lit.Value != "10" {
		t.Errorf("cond 3 = %+v", q.Where[3])
	}
}

func TestParseMultipleNamespaces(t *testing.T) {
	q, err := Parse(`SELECT X FROM {X}n1:p{Y} USING NAMESPACE n1 = &http://a#&, n2 = &http://b#&`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if iri, _ := q.Namespaces.Resolve("n2"); iri != "http://b#" {
		t.Errorf("n2 = %q", iri)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FROM {X}p{Y}`,                          // missing SELECT
		`SELECT FROM {X}p{Y}`,                   // missing select list
		`SELECT X`,                              // missing FROM
		`SELECT X FROM`,                         // empty FROM
		`SELECT X FROM {X}p`,                    // missing object
		`SELECT X FROM {X p{Y}`,                 // unclosed brace
		`SELECT X FROM {X;}p{Y}`,                // empty class restriction
		`SELECT X FROM {X}p{Y} WHERE`,           // empty WHERE
		`SELECT X FROM {X}p{Y} WHERE X`,         // dangling operand
		`SELECT X FROM {X}p{Y} WHERE X ~ Y`,     // bad operator
		`SELECT X FROM {X}p{Y} USING X`,         // bad USING
		`SELECT X FROM {X}p{Y} USING NAMESPACE`, // empty namespace clause
		`SELECT X FROM {X}p{Y} USING NAMESPACE n1 = "notiri"`,
		`SELECT X FROM {X}p{Y} trailing`,
		`SELECT X FROM {"lit"}p{Y}`, // literal as variable
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted malformed query", src)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	q, err := Parse(paperQuerySrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rendered := q.String()
	for _, want := range []string{"SELECT X, Y", "{X;n1:C1}n1:prop1{Y}", "{Y}n1:prop2{Z}", "USING NAMESPACE n1"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("String() missing %q:\n%s", want, rendered)
		}
	}
	// The rendered form must itself parse to the same canonical form.
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of String(): %v", err)
	}
	if q2.String() != rendered {
		t.Errorf("String not a fixpoint:\n%s\n%s", rendered, q2.String())
	}
}

func TestParseWhereCommaSeparator(t *testing.T) {
	// RQL also allows comma-separated conditions.
	q, err := Parse(`SELECT X FROM {X}n1:p{Z} WHERE Z = "a", X != Z USING NAMESPACE n1 = &http://x#&`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Where) != 2 {
		t.Errorf("Where = %v", q.Where)
	}
}
