package rql

import "testing"

// FuzzParse hardens the RQL front end: any input must either parse into a
// query whose canonical rendering re-parses to the same form, or fail
// cleanly — never panic.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT X, Y FROM {X;n1:C1}n1:prop1{Y}, {Y}n1:prop2{Z} USING NAMESPACE n1 = &http://a#&",
		`SELECT * FROM {X}p{Y} WHERE X like "a*b" AND Y < 10 LIMIT 3`,
		"SELECT X FROM {X}p{Y} -- comment\n",
		"select x from {x}p{y}",
		"{X}p{Y}", "&&&", `"`, "", "SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q → %q: %v", src, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("canonical form is not a fixpoint: %q vs %q", rendered, q2.String())
		}
	})
}

// FuzzTokenize checks the lexer never panics and always terminates.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"{X;a:b}c:d{Y}", "= != <= >= < >", "&x&", `"\"esc"`, "--\n*"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream not EOF-terminated for %q", src)
		}
	})
}
