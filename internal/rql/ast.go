package rql

import (
	"fmt"
	"strings"

	"sqpeer/internal/rdf"
)

// VarClass is one end of a path expression: a variable with an optional
// class restriction, written {X} or {X;n1:C1}.
type VarClass struct {
	// Var is the variable name.
	Var string
	// Class is the qualified name of the class restriction, empty when
	// the end is unrestricted.
	Class string
}

// String renders the end in RQL syntax.
func (v VarClass) String() string {
	if v.Class != "" {
		return "{" + v.Var + ";" + v.Class + "}"
	}
	return "{" + v.Var + "}"
}

// PathExpr is one path expression of a FROM clause: {X;C}prop{Y;C}.
type PathExpr struct {
	Subject  VarClass
	Property string // qualified name
	Object   VarClass
}

// String renders the path expression in RQL syntax.
func (p PathExpr) String() string {
	return p.Subject.String() + p.Property + p.Object.String()
}

// CompOp is a comparison operator in a WHERE condition.
type CompOp int

// Comparison operators.
const (
	OpEq CompOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

// String renders the operator.
func (o CompOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "like"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Operand is a WHERE-condition operand: a variable or a literal.
type Operand struct {
	// Var is the variable name; empty when the operand is a literal.
	Var string
	// Lit is the literal term; meaningful only when Var is empty.
	Lit rdf.Term
}

// IsVar reports whether the operand is a variable reference.
func (o Operand) IsVar() bool { return o.Var != "" }

// String renders the operand in RQL concrete syntax: integer literals as
// bare numbers, other literals as RQL strings (so Query.String output
// re-parses).
func (o Operand) String() string {
	if o.IsVar() {
		return o.Var
	}
	if o.Lit.Datatype == rdf.XSDInteger && isAllDigits(o.Lit.Value) {
		return o.Lit.Value
	}
	return quoteRQL(o.Lit.Value)
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// quoteRQL renders a string literal the RQL lexer reads back verbatim:
// '"' and '\' are backslash-escaped, everything else stays raw.
func quoteRQL(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

// Condition is one WHERE filter: left op right.
type Condition struct {
	Left  Operand
	Op    CompOp
	Right Operand
}

// String renders the condition.
func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Query is a parsed RQL query of the conjunctive fragment.
type Query struct {
	// Select lists the projected variables; nil means SELECT * (all).
	Select []string
	// From is the conjunction of path expressions.
	From []PathExpr
	// Where is the conjunction of filter conditions.
	Where []Condition
	// Limit caps the number of returned rows; 0 means unlimited (the
	// Top-N construct of the paper's future work, §5).
	Limit int
	// Namespaces carries the USING NAMESPACE bindings.
	Namespaces *rdf.Namespaces
}

// String renders the query in RQL concrete syntax (single line, canonical
// form; namespaces rendered in declaration-independent sorted order).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Select, ", "))
	}
	b.WriteString(" FROM ")
	parts := make([]string, len(q.From))
	for i, p := range q.From {
		parts[i] = p.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		conds := make([]string, len(q.Where))
		for i, c := range q.Where {
			conds[i] = c.String()
		}
		b.WriteString(strings.Join(conds, " AND "))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Namespaces != nil {
		for _, prefix := range q.Namespaces.Prefixes() {
			iri, _ := q.Namespaces.Resolve(prefix)
			fmt.Fprintf(&b, " USING NAMESPACE %s = &%s&", prefix, iri)
		}
	}
	return b.String()
}

// Variables returns the distinct variables of the FROM clause in first-
// appearance order.
func (q *Query) Variables() []string {
	seen := map[string]bool{}
	var out []string
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, p := range q.From {
		add(p.Subject.Var)
		add(p.Object.Var)
	}
	return out
}
