package rql

import (
	"fmt"
	"strconv"

	"sqpeer/internal/rdf"
)

// Parser is a recursive-descent parser for the RQL conjunctive fragment
// and (in package rvl) the RVL view statements, which share this token
// stream machinery.
type Parser struct {
	toks []Token
	pos  int
}

// NewParser returns a parser over pre-lexed tokens.
func NewParser(toks []Token) *Parser { return &Parser{toks: toks} }

// Parse parses an RQL query:
//
//	SELECT X, Y | *
//	FROM pathExpr (, pathExpr)*
//	[WHERE cond (AND cond)*]
//	[USING NAMESPACE p = &iri& (, p = &iri&)*]
func Parse(src string) (*Query, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, fmt.Errorf("rql: trailing input after query: %s", t)
	}
	return q, nil
}

func (p *Parser) parseQuery() (*Query, error) {
	q := &Query{Namespaces: rdf.NewNamespaces()}
	if _, err := p.expect(TokSelect); err != nil {
		return nil, err
	}
	if p.peek().Kind == TokStar {
		p.next()
	} else {
		for {
			t, err := p.expect(TokIdent)
			if err != nil {
				return nil, fmt.Errorf("rql: in SELECT list: %w", err)
			}
			q.Select = append(q.Select, t.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokFrom); err != nil {
		return nil, err
	}
	for {
		pe, err := p.parsePathExpr()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, pe)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.peek().Kind == TokWhere {
		p.next()
		for {
			c, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if p.peek().Kind == TokAnd || p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().Kind == TokLimit {
		p.next()
		n, err := p.expect(TokNumber)
		if err != nil {
			return nil, fmt.Errorf("rql: in LIMIT: %w", err)
		}
		limit, err := strconv.Atoi(n.Text)
		if err != nil || limit <= 0 {
			return nil, fmt.Errorf("rql: LIMIT %q must be a positive integer", n.Text)
		}
		q.Limit = limit
	}
	if err := p.parseUsingNamespace(q.Namespaces); err != nil {
		return nil, err
	}
	return q, nil
}

// parsePathExpr parses {X[;class]}property{Y[;class]}.
func (p *Parser) parsePathExpr() (PathExpr, error) {
	subj, err := p.parseVarClass()
	if err != nil {
		return PathExpr{}, err
	}
	propTok := p.peek()
	if propTok.Kind != TokQName && propTok.Kind != TokIdent {
		return PathExpr{}, fmt.Errorf("rql: expected property name, got %s", propTok)
	}
	p.next()
	obj, err := p.parseVarClass()
	if err != nil {
		return PathExpr{}, err
	}
	return PathExpr{Subject: subj, Property: propTok.Text, Object: obj}, nil
}

// parseVarClass parses {X} or {X;n1:C}.
func (p *Parser) parseVarClass() (VarClass, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return VarClass{}, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return VarClass{}, fmt.Errorf("rql: expected variable in path end: %w", err)
	}
	vc := VarClass{Var: v.Text}
	if p.peek().Kind == TokSemicolon {
		p.next()
		cls := p.peek()
		if cls.Kind != TokQName && cls.Kind != TokIdent {
			return VarClass{}, fmt.Errorf("rql: expected class name after ';', got %s", cls)
		}
		p.next()
		vc.Class = cls.Text
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return VarClass{}, err
	}
	return vc, nil
}

func (p *Parser) parseCondition() (Condition, error) {
	left, err := p.parseOperand()
	if err != nil {
		return Condition{}, err
	}
	var op CompOp
	switch t := p.next(); t.Kind {
	case TokEq:
		op = OpEq
	case TokNeq:
		op = OpNeq
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	case TokLike:
		op = OpLike
	default:
		return Condition{}, fmt.Errorf("rql: expected comparison operator, got %s", t)
	}
	right, err := p.parseOperand()
	if err != nil {
		return Condition{}, err
	}
	return Condition{Left: left, Op: op, Right: right}, nil
}

func (p *Parser) parseOperand() (Operand, error) {
	switch t := p.next(); t.Kind {
	case TokIdent:
		return Operand{Var: t.Text}, nil
	case TokString:
		return Operand{Lit: rdf.NewLiteral(t.Text)}, nil
	case TokNumber:
		return Operand{Lit: rdf.NewTypedLiteral(t.Text, rdf.XSDInteger)}, nil
	default:
		return Operand{}, fmt.Errorf("rql: expected operand, got %s", t)
	}
}

// parseUsingNamespace parses zero or more USING NAMESPACE declarations
// into ns.
func (p *Parser) parseUsingNamespace(ns *rdf.Namespaces) error {
	for p.peek().Kind == TokUsing {
		p.next()
		if _, err := p.expect(TokNamespace); err != nil {
			return err
		}
		for {
			prefix, err := p.expect(TokIdent)
			if err != nil {
				return fmt.Errorf("rql: in USING NAMESPACE: %w", err)
			}
			if _, err := p.expect(TokEq); err != nil {
				return err
			}
			iri, err := p.expect(TokIRIRef)
			if err != nil {
				return fmt.Errorf("rql: in USING NAMESPACE: %w", err)
			}
			ns.Bind(prefix.Text, iri.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	return nil
}

// peek returns the current token without consuming it.
func (p *Parser) peek() Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return Token{Kind: TokEOF}
}

// next consumes and returns the current token.
func (p *Parser) next() Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

// expect consumes a token of the given kind or fails.
func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.next()
	if t.Kind != k {
		return t, fmt.Errorf("rql: expected %s, got %s", k, t)
	}
	return t, nil
}

// The exported wrappers below let package rvl reuse this parser for the
// shared sublanguage (path expressions, namespace clauses) of RVL view
// statements.

// PathExpr parses one {X;C}prop{Y;C} path expression at the current
// position.
func (p *Parser) PathExpr() (PathExpr, error) { return p.parsePathExpr() }

// UsingNamespace parses zero or more USING NAMESPACE clauses into ns.
func (p *Parser) UsingNamespace(ns *rdf.Namespaces) error { return p.parseUsingNamespace(ns) }

// PeekTok returns the current token without consuming it.
func (p *Parser) PeekTok() Token { return p.peek() }

// NextTok consumes and returns the current token.
func (p *Parser) NextTok() Token { return p.next() }

// ExpectTok consumes a token of kind k or fails.
func (p *Parser) ExpectTok(k TokKind) (Token, error) { return p.expect(k) }
