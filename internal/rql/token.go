// Package rql implements the conjunctive fragment of RQL that SQPeer
// routes and processes (paper §2.1): SELECT/FROM queries whose FROM clause
// is a conjunction of path expressions ({X;n1:C}n1:prop{Y}), with optional
// WHERE filters and USING NAMESPACE declarations. The package provides a
// lexer, a recursive-descent parser, semantic analysis against a community
// RDF/S schema (producing a pattern.QueryPattern), and a local evaluator
// over an rdf.Base.
package rql

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Keywords are case-insensitive in RQL.
const (
	TokEOF TokKind = iota
	// TokIdent is an identifier: a variable or an unprefixed name.
	TokIdent
	// TokQName is a qualified name "prefix:local".
	TokQName
	// TokString is a double-quoted string literal.
	TokString
	// TokNumber is an integer literal.
	TokNumber
	// TokIRIRef is an &...& namespace IRI reference.
	TokIRIRef
	// Keywords.
	TokSelect
	TokFrom
	TokWhere
	TokUsing
	TokNamespace
	TokAnd
	TokLike
	TokView // RVL
	TokLimit
	TokCreate // RVL
	// Punctuation and operators.
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokComma
	TokSemicolon
	TokStar
	TokEq  // =
	TokNeq // !=
	TokLt  // <
	TokLe  // <=
	TokGt  // >
	TokGe  // >=
	TokAssign
)

// String names the token kind for diagnostics.
func (k TokKind) String() string {
	names := map[TokKind]string{
		TokEOF: "end of input", TokIdent: "identifier", TokQName: "qualified name",
		TokString: "string", TokNumber: "number", TokIRIRef: "&IRI&",
		TokSelect: "SELECT", TokFrom: "FROM", TokWhere: "WHERE",
		TokUsing: "USING", TokNamespace: "NAMESPACE", TokAnd: "AND",
		TokLike: "LIKE", TokView: "VIEW", TokCreate: "CREATE", TokLimit: "LIMIT",
		TokLBrace: "{", TokRBrace: "}", TokLParen: "(", TokRParen: ")",
		TokComma: ",", TokSemicolon: ";", TokStar: "*",
		TokEq: "=", TokNeq: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
		TokAssign: "=",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position (1-based line and
// column) for error messages.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q at %d:%d", t.Kind, t.Text, t.Line, t.Col)
	}
	return fmt.Sprintf("%s at %d:%d", t.Kind, t.Line, t.Col)
}
