package rql_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/rql"
)

func TestAnalyzePaperQueryExtractsPattern(t *testing.T) {
	schema := gen.PaperSchema()
	c, err := rql.ParseAndAnalyze(gen.PaperRQL, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	qp := c.Pattern
	if qp.SchemaName != gen.PaperNS {
		t.Errorf("SchemaName = %q", qp.SchemaName)
	}
	if len(qp.Patterns) != 2 {
		t.Fatalf("pattern count = %d", len(qp.Patterns))
	}
	q1 := qp.Patterns[0]
	if q1.ID != "Q1" || q1.Property != gen.N1("prop1") || q1.Domain != gen.N1("C1") || q1.Range != gen.N1("C2") {
		t.Errorf("Q1 = %+v", q1)
	}
	// The paper: end-point classes are obtained from the property
	// definitions in namespace n1 when not explicitly restricted.
	q2 := qp.Patterns[1]
	if q2.Property != gen.N1("prop2") || q2.Domain != gen.N1("C2") || q2.Range != gen.N1("C3") {
		t.Errorf("Q2 end-points not taken from schema definitions: %+v", q2)
	}
	if len(qp.Projections) != 2 || qp.Projections[0] != "X" || qp.Projections[1] != "Y" {
		t.Errorf("Projections = %v", qp.Projections)
	}
}

func TestAnalyzeExplicitRestrictionNarrows(t *testing.T) {
	schema := gen.PaperSchema()
	src := `SELECT X FROM {X;n1:C5}n1:prop1{Y} USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	c, err := rql.ParseAndAnalyze(src, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if c.Pattern.Patterns[0].Domain != gen.N1("C5") {
		t.Errorf("restriction not applied: %+v", c.Pattern.Patterns[0])
	}
	if c.Pattern.Patterns[0].Range != gen.N1("C2") {
		t.Errorf("unrestricted range should default to declaration: %+v", c.Pattern.Patterns[0])
	}
}

func TestAnalyzeRejectsBadQueries(t *testing.T) {
	schema := gen.PaperSchema()
	ns := `USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown property", `SELECT X FROM {X}n1:nosuch{Y} ` + ns, "not declared"},
		{"unknown prefix", `SELECT X FROM {X}zz:prop1{Y} ` + ns, "unknown namespace prefix"},
		{"unknown restriction class", `SELECT X FROM {X;n1:Cnone}n1:prop1{Y} ` + ns, "not declared in schema"},
		{"incompatible restriction", `SELECT X FROM {X;n1:C3}n1:prop1{Y} ` + ns, "not a subclass"},
		{"projection not in FROM", `SELECT W FROM {X}n1:prop1{Y} ` + ns, "not a query variable"},
		{"where unknown var", `SELECT X FROM {X}n1:prop1{Y} WHERE W = "v" ` + ns, "unknown variable"},
		{"cartesian product", `SELECT X FROM {X}n1:prop1{Y}, {A}n1:prop3{B} ` + ns, "disconnected"},
	}
	for _, c := range cases {
		_, err := rql.ParseAndAnalyze(c.src, schema)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestAnalyzeSelectStarProjectsAllVariables(t *testing.T) {
	schema := gen.PaperSchema()
	src := `SELECT * FROM {X}n1:prop1{Y}, {Y}n1:prop2{Z} USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	c, err := rql.ParseAndAnalyze(src, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if len(c.Pattern.Projections) != 3 {
		t.Errorf("Projections = %v, want X,Y,Z", c.Pattern.Projections)
	}
}

func TestAnalyzeSubpropertyQuery(t *testing.T) {
	// A query over prop4 directly: end-points default to C5, C6.
	schema := gen.PaperSchema()
	src := `SELECT X FROM {X}n1:prop4{Y} USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	c, err := rql.ParseAndAnalyze(src, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	p := c.Pattern.Patterns[0]
	if p.Domain != gen.N1("C5") || p.Range != gen.N1("C6") {
		t.Errorf("prop4 end-points = %+v", p)
	}
}
