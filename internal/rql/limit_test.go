package rql_test

import (
	"fmt"
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

func TestParseLimit(t *testing.T) {
	src := `SELECT X FROM {X}n1:prop1{Y} LIMIT 5 USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	q, err := rql.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Limit != 5 {
		t.Errorf("Limit = %d", q.Limit)
	}
	if !strings.Contains(q.String(), "LIMIT 5") {
		t.Errorf("String() lost LIMIT: %s", q)
	}
	// String() round trip keeps the limit.
	q2, err := rql.Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q2.Limit != 5 {
		t.Errorf("round-trip Limit = %d", q2.Limit)
	}
}

func TestParseLimitErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT X FROM {X}p{Y} LIMIT`,
		`SELECT X FROM {X}p{Y} LIMIT x`,
		`SELECT X FROM {X}p{Y} LIMIT 0`,
	} {
		if _, err := rql.Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted bad LIMIT", src)
		}
	}
}

func TestEvalHonorsLimit(t *testing.T) {
	schema := gen.PaperSchema()
	base := gen.PaperBases(10)["P1"]
	src := `SELECT X, Y FROM {X}n1:prop1{Y} LIMIT 3 USING NAMESPACE n1 = &` + gen.PaperNS + `&`
	c, err := rql.ParseAndAnalyze(src, schema)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	rows, err := rql.Eval(c, base)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if rows.Len() != 3 {
		t.Errorf("limited eval = %d rows, want 3", rows.Len())
	}
}

func TestResultSetLimit(t *testing.T) {
	rs := rql.NewResultSet("X")
	for i := 0; i < 5; i++ {
		rs.Add(rql.Row{"X": termFor(i)})
	}
	if got := rs.Limit(2); got.Len() != 2 {
		t.Errorf("Limit(2) = %d rows", got.Len())
	}
	if got := rs.Limit(0); got.Len() != 5 {
		t.Errorf("Limit(0) must be a no-op, got %d", got.Len())
	}
	if got := rs.Limit(10); got.Len() != 5 {
		t.Errorf("oversized limit changed the set: %d", got.Len())
	}
}

func termFor(i int) rdf.Term {
	return rdf.NewIRI(rdf.IRI(fmt.Sprintf("http://d#r%d", i)))
}
