// Binary wire codec for Batch: the length-prefixed framing Results
// packets carry instead of per-ResultSet JSON. The layout is
//
//	magic(1) | nvars | var*      (uvarint length-prefixed strings)
//	| ndict | (kind(1) value datatype)*   (per-batch term dictionary)
//	| nrows | column*            (nvars columns of nrows uvarint ids)
//
// with every count and string length a uvarint and every dictionary id
// stored as id+1 so the unbound sentinel (-1) encodes as 0. Terms appear
// once in the dictionary no matter how many rows reference them, so the
// frame size tracks distinct terms plus one or two bytes per cell.
// Encoders append into pooled buffers (GetWireBuf/PutWireBuf): the
// simulated transport delivers synchronously, so a sender can return its
// buffer to the pool as soon as the send completes.
package rql

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sqpeer/internal/rdf"
)

// batchMagic is the frame's leading version byte.
const batchMagic = 0xB7

// wirePool recycles encode buffers across batches and queries.
var wirePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledCap caps the capacity of buffers returned to the pool. One
// pathological giant batch would otherwise pin its frame-sized buffer in
// the pool forever, and every later borrower would hold megabytes to
// encode kilobytes.
const maxPooledCap = 1 << 20

// pooledTrackCap bounds the double-put tracking set. Entries are removed
// on Get, so the set normally mirrors the pool's population; it can only
// grow stale when the GC drops pool victims, and resetting it then costs
// nothing but a brief window without double-put detection.
const pooledTrackCap = 4096

// pooledBufs tracks the backing arrays currently resting in wirePool, by
// the address of their first element. PutWireBuf consults it to drop a
// second put of the same array: pooling one array twice hands the same
// bytes to two independent encoders, which silently corrupts frames.
var pooledBufs struct {
	mu  sync.Mutex
	set map[*byte]struct{}
}

// GetWireBuf returns an empty pooled buffer to encode a batch into.
func GetWireBuf() []byte {
	b := (*wirePool.Get().(*[]byte))[:0]
	if cap(b) > 0 {
		pooledBufs.mu.Lock()
		delete(pooledBufs.set, &b[:1][0])
		pooledBufs.mu.Unlock()
	}
	return b
}

// PutWireBuf returns a buffer obtained from GetWireBuf to the pool. The
// caller must not retain the slice afterwards. Degenerate (zero-cap) and
// oversized buffers are dropped rather than pooled, as is a buffer whose
// backing array is already in the pool — a double put would alias two
// future borrowers onto the same bytes.
func PutWireBuf(buf []byte) {
	if cap(buf) == 0 || cap(buf) > maxPooledCap {
		return
	}
	buf = buf[:0]
	key := &buf[:1][0]
	pooledBufs.mu.Lock()
	if pooledBufs.set == nil {
		pooledBufs.set = make(map[*byte]struct{})
	}
	if _, dup := pooledBufs.set[key]; dup {
		pooledBufs.mu.Unlock()
		return
	}
	if len(pooledBufs.set) >= pooledTrackCap {
		pooledBufs.set = make(map[*byte]struct{})
	}
	pooledBufs.set[key] = struct{}{}
	pooledBufs.mu.Unlock()
	wirePool.Put(&buf)
}

// appendUstring appends a uvarint-length-prefixed string.
func appendUstring(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBatch appends the binary frame of b to dst and returns the
// extended slice.
func AppendBatch(dst []byte, b *Batch) []byte {
	dst = append(dst, batchMagic)
	dst = binary.AppendUvarint(dst, uint64(len(b.Vars)))
	for _, v := range b.Vars {
		dst = appendUstring(dst, v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Dict)))
	for _, t := range b.Dict {
		dst = append(dst, byte(t.Kind))
		dst = appendUstring(dst, t.Value)
		dst = appendUstring(dst, string(t.Datatype))
	}
	dst = binary.AppendUvarint(dst, uint64(b.Len()))
	for _, col := range b.Cols {
		for _, id := range col {
			dst = binary.AppendUvarint(dst, uint64(id+1))
		}
	}
	return dst
}

// EncodeBatch renders b's frame into a fresh buffer. Hot paths use
// AppendBatch with a pooled buffer instead.
func EncodeBatch(b *Batch) []byte {
	return AppendBatch(nil, b)
}

// frameReader walks a frame with sticky error state. str is the frame
// converted to a string once up front: ustring slices it instead of
// copying each string out individually, so decoding a dictionary of N
// terms costs one allocation, not 2N (the decoded terms share the
// frame-sized backing array for as long as any of them lives, which for
// a wire batch is exactly the batch's own lifetime).
type frameReader struct {
	buf []byte
	str string
	off int
	err error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *frameReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("rql: batch frame truncated at offset %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("rql: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint element count and rejects values that could not
// possibly fit in the remaining bytes (each element costs at least
// perElem bytes), so corrupt or adversarial frames cannot trigger huge
// allocations.
func (r *frameReader) count(what string, perElem int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if max := uint64(len(r.buf)-r.off) / uint64(perElem); v > max {
		r.fail("rql: frame claims %d %s but only %d bytes remain", v, what, len(r.buf)-r.off)
		return 0
	}
	return int(v)
}

func (r *frameReader) ustring() string {
	n := r.count("string bytes", 1)
	if r.err != nil {
		return ""
	}
	s := r.str[r.off : r.off+n]
	r.off += n
	return s
}

// DecodeBatch parses a frame produced by AppendBatch. The input buffer
// is not retained: the frame is copied into one string whose slices back
// every decoded term, so pooled receive buffers stay recyclable.
func DecodeBatch(data []byte) (*Batch, error) {
	r := &frameReader{buf: data, str: string(data)}
	if m := r.byte(); r.err == nil && m != batchMagic {
		return nil, fmt.Errorf("rql: bad batch magic 0x%02X", m)
	}
	nvars := r.count("vars", 2)
	vars := make([]string, 0, nvars)
	for i := 0; i < nvars && r.err == nil; i++ {
		vars = append(vars, r.ustring())
	}
	b := NewBatch(vars...)
	ndict := r.count("dict terms", 3)
	b.Dict = make([]rdf.Term, 0, ndict)
	for i := 0; i < ndict && r.err == nil; i++ {
		kind := rdf.TermKind(r.byte())
		value := r.ustring()
		datatype := r.ustring()
		b.Dict = append(b.Dict, rdf.Term{Kind: kind, Value: value, Datatype: rdf.IRI(datatype)})
	}
	return decodeColumns(r, b, vars, ndict)
}

// decodeColumns reads the row count and id columns into b. Each row costs
// at least one byte per variable, which bounds a claimed count against
// the remaining frame; the zero-variable case (a projection onto no
// variables) carries no cells, so its count gets a fixed sanity cap.
func decodeColumns(r *frameReader, b *Batch, vars []string, ndict int) (*Batch, error) {
	if r.err != nil {
		return nil, r.err
	}
	nrows64 := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if len(vars) > 0 {
		if max := uint64(len(r.buf)-r.off) / uint64(len(vars)); nrows64 > max {
			return nil, fmt.Errorf("rql: frame claims %d rows but only %d bytes remain", nrows64, len(r.buf)-r.off)
		}
	} else if nrows64 > 1<<20 {
		return nil, fmt.Errorf("rql: implausible zero-variable row count %d", nrows64)
	}
	nrows := int(nrows64)
	for c := range b.Cols {
		col := make([]int32, nrows)
		for i := 0; i < nrows; i++ {
			v := r.uvarint()
			if r.err != nil {
				return nil, r.err
			}
			id := int64(v) - 1
			if id < -1 || id >= int64(ndict) {
				return nil, fmt.Errorf("rql: dictionary id %d out of range [0,%d)", id, ndict)
			}
			col[i] = int32(id)
		}
		b.Cols[c] = col
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("rql: %d trailing bytes after batch frame", len(r.buf)-r.off)
	}
	b.rows = nrows
	return b, nil
}
