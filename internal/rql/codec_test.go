package rql

import (
	"bytes"
	"testing"

	"sqpeer/internal/rdf"
)

func TestCodecRoundTrip(t *testing.T) {
	cases := []*ResultSet{
		NewResultSet(),
		NewResultSet("X"),
		rsOf([]string{"X", "Y"},
			Row{"X": termI("http://example.org/n1#a"), "Y": termI("http://example.org/n1#b")},
			Row{"X": termI("http://example.org/n1#a")}, // unbound Y
			Row{"Y": rdf.NewTypedLiteral("42", rdf.XSDInteger)},
			Row{"X": rdf.NewBlank("b0"), "Y": rdf.NewLiteral("héllo\x00wörld — 日本語")},
		),
	}
	for i, rs := range cases {
		b := BatchOf(rs)
		buf := GetWireBuf()
		buf = AppendBatch(buf, b)
		dec, err := DecodeBatch(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		sortedEqual(t, "case round-trip", dec.ResultSet(), rs)
		PutWireBuf(buf)
	}
}

func TestCodecDeterministic(t *testing.T) {
	rs := rsOf([]string{"X"}, Row{"X": termI("a")}, Row{"X": termI("b")})
	a := EncodeBatch(BatchOf(rs))
	b := EncodeBatch(BatchOf(rs))
	if !bytes.Equal(a, b) {
		t.Fatal("same batch encoded to different bytes")
	}
}

func TestCodecRejectsCorruptFrames(t *testing.T) {
	good := EncodeBatch(BatchOf(rsOf([]string{"X", "Y"},
		Row{"X": termI("a"), "Y": termI("b")},
		Row{"X": termI("c")},
	)))
	bad := [][]byte{
		nil,
		{},
		{0x00},                                  // wrong magic
		good[:1],                                // magic only
		good[:len(good)-1],                      // truncated tail
		append(append([]byte{}, good...), 0xFF), // trailing byte
	}
	// Huge claimed counts must be rejected before allocating.
	huge := []byte{batchMagic, 0xFF, 0xFF, 0xFF, 0xFF, 0x07}
	bad = append(bad, huge)
	// Dictionary id out of range.
	b := BatchOf(rsOf([]string{"X"}, Row{"X": termI("a")}))
	enc := EncodeBatch(b)
	enc[len(enc)-1] = 0x09 // id 8 with a 1-term dictionary
	bad = append(bad, enc)
	for i, frame := range bad {
		if _, err := DecodeBatch(frame); err == nil {
			t.Fatalf("corrupt frame %d decoded without error", i)
		}
	}
}

// FuzzBatchCodec checks two properties: decoding never panics on arbitrary
// input, and any frame that decodes successfully re-encodes by way of the
// facade to the same logical relation.
func FuzzBatchCodec(f *testing.F) {
	seeds := []*ResultSet{
		NewResultSet(),
		rsOf([]string{"V0"}, Row{"V0": termI("x")}),
		rsOf([]string{"V0", "V1"},
			Row{"V0": termI("x"), "V1": rdf.NewLiteral("ünïcode ✓")},
			Row{"V1": rdf.NewTypedLiteral("1", rdf.XSDInteger)},
			Row{},
		),
	}
	for _, rs := range seeds {
		f.Add(EncodeBatch(BatchOf(rs)))
	}
	f.Add([]byte{batchMagic})
	f.Add([]byte{batchMagic, 0x02, 0x01, 'X', 0x01, 'Y'})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Whatever decoded must survive the facade round trip.
		rs := b.ResultSet()
		if rs.Len() != b.Len() {
			t.Fatalf("facade lost rows: %d vs %d", rs.Len(), b.Len())
		}
		re := EncodeBatch(BatchOf(rs))
		b2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		got, want := b2.ResultSet().Sorted(), rs.Sorted()
		if len(got) != len(want) {
			t.Fatalf("re-encode changed cardinality: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("re-encode changed row %d: %q vs %q", i, got[i], want[i])
			}
		}
	})
}
