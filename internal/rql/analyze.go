package rql

import (
	"fmt"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// Compiled is a semantically analyzed RQL query: the AST plus the semantic
// query pattern extracted from its FROM clause (paper §2.1). The pattern
// is what the routing layer works on; the Where filters stay local to
// evaluation, as the paper ignores filtering conditions during routing.
type Compiled struct {
	// Query is the parsed AST.
	Query *Query
	// Pattern is the extracted semantic query pattern.
	Pattern *pattern.QueryPattern
	// Schema is the community schema the query was analyzed against.
	Schema *rdf.Schema
}

// Analyze checks the parsed query against the community schema and
// extracts its semantic query pattern: every property is resolved in the
// schema, end-point classes default to the property's declared domain and
// range (as in Figure 1, where C1/C2/C3 are "obtained from their
// corresponding definitions in the namespace n1"), and explicit class
// restrictions must refine the declared end-points.
func Analyze(q *Query, schema *rdf.Schema) (*Compiled, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("rql: query has no FROM clause")
	}
	qp := &pattern.QueryPattern{SchemaName: schema.Name}
	for i, pe := range q.From {
		propIRI, err := q.Namespaces.Expand(pe.Property)
		if err != nil {
			return nil, fmt.Errorf("rql: path expression %d: %w", i+1, err)
		}
		def, ok := schema.PropertyByName(propIRI)
		if !ok {
			return nil, fmt.Errorf("rql: property %s not declared in schema %s", propIRI, schema.Name)
		}
		domain, err := resolveRestriction(q, schema, pe.Subject, def.Domain, "subject")
		if err != nil {
			return nil, fmt.Errorf("rql: path expression %d (%s): %w", i+1, pe, err)
		}
		rng, err := resolveRestriction(q, schema, pe.Object, def.Range, "object")
		if err != nil {
			return nil, fmt.Errorf("rql: path expression %d (%s): %w", i+1, pe, err)
		}
		qp.Patterns = append(qp.Patterns, pattern.PathPattern{
			ID:         fmt.Sprintf("Q%d", i+1),
			SubjectVar: pe.Subject.Var,
			ObjectVar:  pe.Object.Var,
			Property:   propIRI,
			Domain:     domain,
			Range:      rng,
		})
	}
	// Projections: SELECT * projects every variable.
	if len(q.Select) == 0 {
		qp.Projections = q.Variables()
	} else {
		qp.Projections = append(qp.Projections, q.Select...)
	}
	if err := qp.Validate(); err != nil {
		return nil, fmt.Errorf("rql: %w", err)
	}
	// WHERE conditions must reference FROM variables.
	vars := map[string]bool{}
	for _, v := range q.Variables() {
		vars[v] = true
	}
	for _, c := range q.Where {
		for _, op := range []Operand{c.Left, c.Right} {
			if op.IsVar() && !vars[op.Var] {
				return nil, fmt.Errorf("rql: WHERE references unknown variable %q", op.Var)
			}
		}
	}
	return &Compiled{Query: q, Pattern: qp, Schema: schema}, nil
}

// resolveRestriction returns the effective end-point class of a path end:
// the declared class absent a restriction, otherwise the restriction class
// after validating it refines the declaration.
func resolveRestriction(q *Query, schema *rdf.Schema, vc VarClass, declared rdf.IRI, end string) (rdf.IRI, error) {
	if vc.Class == "" {
		return declared, nil
	}
	cls, err := q.Namespaces.Expand(vc.Class)
	if err != nil {
		return "", err
	}
	if !schema.HasClass(cls) && !isLiteralClass(cls) {
		return "", fmt.Errorf("%s restriction: class %s not declared in schema", end, cls)
	}
	if !schema.IsSubClassOf(cls, declared) {
		return "", fmt.Errorf("%s restriction %s is not a subclass of the property's declared %s class %s",
			end, cls, end, declared)
	}
	return cls, nil
}

func isLiteralClass(c rdf.IRI) bool {
	return c == rdf.RDFSLiteral || c == rdf.XSDString || c == rdf.XSDInteger
}

// ParseAndAnalyze is the one-call front door: parse the RQL text and
// analyze it against the schema.
func ParseAndAnalyze(src string, schema *rdf.Schema) (*Compiled, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(q, schema)
}
