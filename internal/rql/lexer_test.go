package rql

import "testing"

func kinds(ts []Token) []TokKind {
	out := make([]TokKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	ts, err := Tokenize(`SELECT X, Y FROM {X;n1:C1}n1:prop1{Y} WHERE Z = "v" USING NAMESPACE n1 = &http://x#&`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokKind{
		TokSelect, TokIdent, TokComma, TokIdent, TokFrom,
		TokLBrace, TokIdent, TokSemicolon, TokQName, TokRBrace,
		TokQName, TokLBrace, TokIdent, TokRBrace,
		TokWhere, TokIdent, TokEq, TokString,
		TokUsing, TokNamespace, TokIdent, TokEq, TokIRIRef, TokEOF,
	}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), ts)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s (%v)", i, got[i], want[i], ts[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	ts, err := Tokenize(`= != < <= > >= *`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokKind{TokEq, TokNeq, TokLt, TokLe, TokGt, TokGe, TokStar, TokEOF}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	ts, err := Tokenize(`"a\"b"`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if ts[0].Kind != TokString || ts[0].Text != `a"b` {
		t.Errorf("escaped string = %+v", ts[0])
	}
}

func TestTokenizeComments(t *testing.T) {
	ts, err := Tokenize("SELECT -- a comment\nX FROM {X}p{Y}")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if ts[1].Kind != TokIdent || ts[1].Text != "X" || ts[1].Line != 2 {
		t.Errorf("comment handling wrong: %+v", ts[1])
	}
}

func TestTokenizeNumbersAndQNames(t *testing.T) {
	ts, err := Tokenize(`42 n1:prop1 bare`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if ts[0].Kind != TokNumber || ts[0].Text != "42" {
		t.Errorf("number = %+v", ts[0])
	}
	if ts[1].Kind != TokQName || ts[1].Text != "n1:prop1" {
		t.Errorf("qname = %+v", ts[1])
	}
	if ts[2].Kind != TokIdent || ts[2].Text != "bare" {
		t.Errorf("ident = %+v", ts[2])
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	ts, err := Tokenize("select From WHERE")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokKind{TokSelect, TokFrom, TokWhere}
	for i, k := range want {
		if ts[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, ts[i].Kind, k)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `&unterminated`, `!x`, "\x01"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) accepted bad input", src)
		}
	}
}

func TestTokenPositions(t *testing.T) {
	ts, err := Tokenize("SELECT\n  X")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if ts[0].Line != 1 || ts[0].Col != 1 {
		t.Errorf("SELECT at %d:%d", ts[0].Line, ts[0].Col)
	}
	if ts[1].Line != 2 || ts[1].Col != 3 {
		t.Errorf("X at %d:%d, want 2:3", ts[1].Line, ts[1].Col)
	}
}
