// Package optimizer implements SQPeer's compile-time and run-time query
// optimization (paper §2.5): the distribution of joins over unions that
// turns Figure 3's Plan 1 into Figure 4's Plan 2, the two transformation
// rules that merge subplans answerable by the same peer (Plan 2 → Plan 3),
// the statistics-driven choice among data / query / hybrid shipping
// (Figure 5), and the replanning primitive used when peers fail or leave.
package optimizer

import (
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
)

// MaxDistributionBranches caps the union fan-out DistributeJoinsOverUnions
// may create; beyond it the join is left in place (the rewrite is a
// heuristic, not a requirement).
const MaxDistributionBranches = 1024

// DistributeJoinsOverUnions pushes joins below unions:
//
//	⋈(∪(Q11..Q1n), ∪(Q21..Q2m)) → ∪(⋈(Q11,Q21), ⋈(Q11,Q22), ..., ⋈(Q1n,Q2m))
//
// The paper applies it because joining before unioning produces smaller
// intermediate results and enables pipelined evaluation, and because it
// exposes same-peer subplans for the transformation rules. The rewrite is
// applied bottom-up to every join in the tree.
func DistributeJoinsOverUnions(n plan.Node) plan.Node {
	switch v := n.(type) {
	case *plan.Scan:
		return v
	case *plan.Union:
		inputs := make([]plan.Node, len(v.Inputs))
		for i, in := range v.Inputs {
			inputs[i] = DistributeJoinsOverUnions(in)
		}
		return plan.NewUnion(inputs...)
	case *plan.Join:
		inputs := make([]plan.Node, len(v.Inputs))
		for i, in := range v.Inputs {
			inputs[i] = DistributeJoinsOverUnions(in)
		}
		// Cartesian expansion over the union inputs.
		branches := [][]plan.Node{{}}
		total := 1
		for _, in := range inputs {
			var alts []plan.Node
			if u, ok := in.(*plan.Union); ok {
				alts = u.Inputs
			} else {
				alts = []plan.Node{in}
			}
			total *= len(alts)
			if total > MaxDistributionBranches {
				// Too wide: keep the (already recursed) join as is.
				return plan.NewJoin(inputs...)
			}
			var next [][]plan.Node
			for _, br := range branches {
				for _, alt := range alts {
					nb := make([]plan.Node, len(br), len(br)+1)
					copy(nb, br)
					nb = append(nb, alt)
					next = append(next, nb)
				}
			}
			branches = next
		}
		if len(branches) == 1 {
			return plan.NewJoin(branches[0]...)
		}
		joins := make([]plan.Node, len(branches))
		for i, br := range branches {
			joins[i] = plan.NewJoin(br...)
		}
		return plan.NewUnion(joins...)
	default:
		return n
	}
}

// ApplyTransformationRules merges, inside every join, the scans located at
// the same peer into a single multi-pattern scan the peer evaluates and
// joins locally. This subsumes both of the paper's rules:
//
//	Rule 1: ⋈(Q1@Pi, ..., Qn@Pi)        → Q@Pi
//	Rule 2: ⋈(⋈(QP, Q1@Pi), Q2@Pi)      → ⋈(QP, Q@Pi)
//
// (nested joins flatten into n-ary joins, after which Rule 2 is Rule 1 on
// a subset of inputs). Scans are only merged when their patterns are
// connected through shared variables, so a peer never evaluates a local
// cartesian product. Holes are never merged.
func ApplyTransformationRules(n plan.Node) plan.Node {
	switch v := n.(type) {
	case *plan.Scan:
		return v
	case *plan.Union:
		inputs := make([]plan.Node, len(v.Inputs))
		for i, in := range v.Inputs {
			inputs[i] = ApplyTransformationRules(in)
		}
		return plan.NewUnion(inputs...)
	case *plan.Join:
		inputs := make([]plan.Node, len(v.Inputs))
		for i, in := range v.Inputs {
			inputs[i] = ApplyTransformationRules(in)
		}
		flat := plan.NewJoin(inputs...)
		j, ok := flat.(*plan.Join)
		if !ok {
			return flat
		}
		return mergeSamePeerScans(j)
	default:
		return n
	}
}

// mergeSamePeerScans greedily merges connected same-peer scans among a
// join's inputs.
func mergeSamePeerScans(j *plan.Join) plan.Node {
	var out []plan.Node
	// Group scan inputs by peer, preserving order; pass non-scan inputs
	// through.
	merged := map[int]bool{}
	for i, in := range j.Inputs {
		if merged[i] {
			continue
		}
		s, ok := in.(*plan.Scan)
		if !ok || s.IsHole() {
			out = append(out, in)
			continue
		}
		acc := append([]pattern.PathPattern{}, s.Patterns...)
		for k := i + 1; k < len(j.Inputs); k++ {
			if merged[k] {
				continue
			}
			s2, ok := j.Inputs[k].(*plan.Scan)
			if !ok || s2.IsHole() || s2.Peer != s.Peer {
				continue
			}
			if !connectedTo(acc, s2.Patterns) {
				continue
			}
			acc = append(acc, s2.Patterns...)
			merged[k] = true
		}
		out = append(out, &plan.Scan{Patterns: acc, Peer: s.Peer})
	}
	return plan.NewJoin(out...)
}

// connectedTo reports whether any pattern in b shares a variable with any
// pattern in a.
func connectedTo(a, b []pattern.PathPattern) bool {
	for _, pa := range a {
		for _, pb := range b {
			if pa.SharesVar(pb) {
				return true
			}
		}
	}
	return false
}

// Options selects which compile-time rewrites Optimize applies; the
// zero value applies everything (the paper's full pipeline).
type Options struct {
	// SkipDistribution leaves joins above unions (ablation).
	SkipDistribution bool
	// SkipMergeRules leaves same-peer scans separate (ablation).
	SkipMergeRules bool
}

// Optimize applies the compile-time rewrite pipeline to a plan, returning
// a new plan (the input is not modified). For Figure 3's Plan 1 with
// default options it produces Figure 4's Plan 3.
func Optimize(p *plan.Plan, opts Options) *plan.Plan {
	root := p.Clone().Root
	if !opts.SkipDistribution {
		root = DistributeJoinsOverUnions(root)
	}
	if !opts.SkipMergeRules {
		root = ApplyTransformationRules(root)
	}
	return &plan.Plan{Root: root, Query: p.Query}
}
