package optimizer

import (
	"fmt"
	"strings"

	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
)

// Explain renders a plan tree with the cost model's per-node estimates —
// cardinality, payload bytes and, for joins, the site each shipping
// policy would choose. It is the inspection surface behind the CLI's
// -explain flag.
func (cm *CostModel) Explain(root plan.Node, rootPeer pattern.PeerID) string {
	var b strings.Builder
	dataRep := cm.EstimateCost(root, rootPeer, DataShipping)
	queryRep := cm.EstimateCost(root, rootPeer, QueryShipping)
	hybridRep := cm.EstimateCost(root, rootPeer, HybridShipping)
	fmt.Fprintf(&b, "plan rooted at %s\n", rootPeer)
	fmt.Fprintf(&b, "estimated cost: data=%.1fms query=%.1fms hybrid=%.1fms\n",
		dataRep.TotalMS, queryRep.TotalMS, hybridRep.TotalMS)
	var rec func(n plan.Node, depth int)
	rec = func(n plan.Node, depth int) {
		pad := strings.Repeat("  ", depth)
		switch v := n.(type) {
		case *plan.Scan:
			fmt.Fprintf(&b, "%s%-24s rows≈%-8.0f bytes≈%.0f\n",
				pad, v.String(), cm.CardOf(v), cm.BytesOf(v))
		case *plan.Union:
			fmt.Fprintf(&b, "%s∪ %-22s rows≈%.0f\n", pad, "", cm.CardOf(v))
			for _, in := range v.Inputs {
				rec(in, depth+1)
			}
		case *plan.Join:
			site := "?"
			probe := &CostReport{}
			s, _ := cm.placeJoin(v, rootPeer, rootPeer, HybridShipping, probe)
			site = string(s)
			fmt.Fprintf(&b, "%s⋈ %-22s rows≈%-8.0f hybrid-site=%s\n", pad, "", cm.CardOf(v), site)
			for _, in := range v.Inputs {
				rec(in, depth+1)
			}
		default:
			fmt.Fprintf(&b, "%s%s\n", pad, n)
		}
	}
	rec(root, 0)
	return b.String()
}
