package optimizer_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
)

func TestReplanAroundFailedPeer(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	router := routing.NewRouter(gen.PaperSchema(), reg)
	p, err := plan.Generate(router.Route(gen.PaperQuery()))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// P4 dies mid-execution.
	replanned, err := optimizer.Replan(p, map[pattern.PeerID]bool{"P4": true}, router)
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if strings.Contains(replanned.String(), "P4") {
		t.Errorf("obsolete peer still in plan: %s", replanned)
	}
	if plan.HasHoles(replanned.Root) {
		t.Errorf("replan left holes despite surviving alternatives: %s", replanned)
	}
	// P1, P2 still answer Q1; P1, P3 still answer Q2.
	want := "⋈(∪(Q1@P1, Q1@P2), ∪(Q2@P1, Q2@P3))"
	if replanned.String() != want {
		t.Errorf("replanned = %s, want %s", replanned, want)
	}
}

func TestReplanNoOpWithoutObsoleteScans(t *testing.T) {
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	router := routing.NewRouter(gen.PaperSchema(), reg)
	p, _ := plan.Generate(router.Route(gen.PaperQuery()))
	same, err := optimizer.Replan(p, map[pattern.PeerID]bool{"P99": true}, router)
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if same != p {
		t.Error("no-op replan should return the original plan")
	}
}

func TestReplanFailsWhenNoAlternative(t *testing.T) {
	reg := routing.NewRegistry()
	as := gen.PaperActiveSchemas()
	reg.Register("P2", as["P2"])
	reg.Register("P3", as["P3"])
	router := routing.NewRouter(gen.PaperSchema(), reg)
	p, _ := plan.Generate(router.Route(gen.PaperQuery()))
	// P3 is the only peer answering Q2; its loss is unrecoverable.
	out, err := optimizer.Replan(p, map[pattern.PeerID]bool{"P3": true}, router)
	if err == nil {
		t.Fatalf("Replan must fail with no alternative, got %s", out)
	}
	if !strings.Contains(err.Error(), "Q2") {
		t.Errorf("error should name the unresolved pattern: %v", err)
	}
	// The partial plan is still returned for ad-hoc forwarding.
	if out == nil || !plan.HasHoles(out.Root) {
		t.Error("failed replan should return the partial plan")
	}
}

func TestThroughputMonitor(t *testing.T) {
	m := optimizer.NewThroughputMonitor(10)
	m.Track("P1")
	m.Track("P2")
	m.Observe("P1", 50)
	m.Observe("P2", 3)
	newly := m.Tick()
	if len(newly) != 1 || newly[0] != "P2" {
		t.Errorf("Tick flagged %v, want [P2]", newly)
	}
	if !m.Flagged()["P2"] || m.Flagged()["P1"] {
		t.Errorf("Flagged = %v", m.Flagged())
	}
	// A flagged peer is not re-reported.
	m.Observe("P1", 50)
	if newly := m.Tick(); len(newly) != 0 {
		t.Errorf("second Tick re-flagged: %v", newly)
	}
	// Tracked-but-silent peers trip the monitor.
	m2 := optimizer.NewThroughputMonitor(1)
	m2.Track("P9")
	if newly := m2.Tick(); len(newly) != 1 || newly[0] != "P9" {
		t.Errorf("silent peer not flagged: %v", newly)
	}
}
