package optimizer

import (
	"fmt"

	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
)

// Replan implements the run-time adaptation of §2.5: when peers become
// obsolete (failed channel, departure, throughput collapse), the channel's
// root node re-executes routing and processing "not taking into
// consideration those peers that became obsolete". Concretely: scans at
// obsolete peers revert to holes, the router (minus the obsolete peers)
// re-annotates the affected path patterns, and the holes are refilled.
// Following ubQL semantics, callers discard intermediate results of the
// old plan and restart execution on the returned plan.
//
// Replan fails when a path pattern is left with no alternative peer — the
// query cannot currently be answered and the caller must either propagate
// the partial plan (ad-hoc mode) or report failure.
func Replan(p *plan.Plan, obsolete map[pattern.PeerID]bool, router *routing.Router) (*plan.Plan, error) {
	touched := false
	for _, s := range plan.Scans(p.Root) {
		if !s.IsHole() && obsolete[s.Peer] {
			touched = true
			break
		}
	}
	if !touched {
		return p, nil // nothing to do
	}
	ann := router.Route(p.Query)
	// Remove obsolete peers from the fresh annotation too: the registry
	// may not have caught up with the failure yet.
	cleaned := pattern.NewAnnotated(p.Query)
	for _, pp := range p.Query.Patterns {
		for _, peer := range ann.PeersFor(pp.ID) {
			if !obsolete[peer] {
				cleaned.Annotate(pp.ID, peer, ann.RewritesFor(pp.ID, peer))
			}
		}
	}
	replanned, err := plan.Generate(cleaned)
	if err != nil {
		return nil, fmt.Errorf("optimizer: replan: %w", err)
	}
	if !cleaned.Complete() {
		return replanned, fmt.Errorf("optimizer: replan left unresolved holes for %v", cleaned.Holes())
	}
	return replanned, nil
}

// ThroughputMonitor tracks per-channel row throughput and flags channels
// whose observed rate collapses below a floor — the paper's run-time
// trigger ("the optimizer may alter a running query plan by observing the
// throughput of a certain channel").
type ThroughputMonitor struct {
	// MinRowsPerTick is the floor below which a channel is flagged.
	MinRowsPerTick int
	counts         map[pattern.PeerID]int
	flagged        map[pattern.PeerID]bool
}

// NewThroughputMonitor returns a monitor with the given per-tick floor.
func NewThroughputMonitor(minRowsPerTick int) *ThroughputMonitor {
	return &ThroughputMonitor{
		MinRowsPerTick: minRowsPerTick,
		counts:         map[pattern.PeerID]int{},
		flagged:        map[pattern.PeerID]bool{},
	}
}

// Observe records rows received from a peer since the last tick.
func (m *ThroughputMonitor) Observe(peer pattern.PeerID, rows int) {
	m.counts[peer] += rows
}

// Tick closes the current observation window: every peer whose count is
// below the floor is flagged obsolete; counters reset. It returns the
// peers newly flagged this tick.
func (m *ThroughputMonitor) Tick() []pattern.PeerID {
	var newly []pattern.PeerID
	for peer, n := range m.counts {
		if n < m.MinRowsPerTick && !m.flagged[peer] {
			m.flagged[peer] = true
			newly = append(newly, peer)
		}
		m.counts[peer] = 0
	}
	return newly
}

// Flagged returns the set of peers currently considered obsolete.
func (m *ThroughputMonitor) Flagged() map[pattern.PeerID]bool {
	out := make(map[pattern.PeerID]bool, len(m.flagged))
	for p := range m.flagged {
		out[p] = true
	}
	return out
}

// Track registers a peer so that total silence (no Observe calls at all)
// still trips the monitor at the next Tick.
func (m *ThroughputMonitor) Track(peer pattern.PeerID) {
	if _, ok := m.counts[peer]; !ok {
		m.counts[peer] = 0
	}
}
