package optimizer

import (
	"fmt"
	"sort"
	"sync"

	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
)

// Replan implements the run-time adaptation of §2.5: when peers become
// obsolete (failed channel, departure, throughput collapse), the channel's
// root node re-executes routing and processing "not taking into
// consideration those peers that became obsolete". Concretely: obsolete
// peers still present in the router's registry are quarantined (bumping
// the registry epoch, so this and every subsequent Route excludes them
// with no per-call filtering), the router re-annotates the query, and the
// annotation is recompiled. Following ubQL semantics, callers discard
// intermediate results of the old plan and restart execution on the
// returned plan.
//
// Replan fails when a path pattern is left with no alternative peer — the
// query cannot currently be answered. The partial plan (holes standing in
// for the unanswerable patterns) is still returned alongside the error, so
// ad-hoc callers can propagate it or execute its answerable part.
func Replan(p *plan.Plan, obsolete map[pattern.PeerID]bool, router *routing.Router) (*plan.Plan, error) {
	touched := false
	for _, s := range plan.Scans(p.Root) {
		if !s.IsHole() && obsolete[s.Peer] {
			touched = true
			break
		}
	}
	if !touched {
		return p, nil // nothing to do
	}
	// Make routing itself forget the obsolete peers before re-routing:
	// callers may not have told the registry yet (e.g. a failure observed
	// mid-execution), and post-filtering the annotation here would leave
	// every later Route call seeing the bad peer again.
	for peer := range obsolete {
		router.Registry.Quarantine(peer)
	}
	ann := router.Route(p.Query)
	replanned, err := plan.Generate(ann)
	if err != nil {
		return nil, fmt.Errorf("optimizer: replan: %w", err)
	}
	if !ann.Complete() {
		return replanned, fmt.Errorf("optimizer: replan left unresolved holes for %v", ann.Holes())
	}
	return replanned, nil
}

// ThroughputMonitor tracks per-channel row throughput and flags channels
// whose observed rate collapses below a floor — the paper's run-time
// trigger ("the optimizer may alter a running query plan by observing the
// throughput of a certain channel"). It is safe for concurrent use:
// the executor's packet callbacks Observe from many branches at once.
type ThroughputMonitor struct {
	// MinRowsPerTick is the floor below which a channel is flagged.
	MinRowsPerTick int

	// OnEvent, when set, observes flag/unflag transitions: event is
	// "flag" (peer dropped below the floor at a Tick) or "unflag" (the
	// executor cleared it after adapting). Invoked after the monitor
	// lock is released, in sorted peer order per Tick, so hooks may call
	// back into the monitor or an obs registry freely.
	OnEvent func(event string, peer pattern.PeerID)

	mu      sync.Mutex
	counts  map[pattern.PeerID]int
	flagged map[pattern.PeerID]bool
}

// NewThroughputMonitor returns a monitor with the given per-tick floor.
func NewThroughputMonitor(minRowsPerTick int) *ThroughputMonitor {
	return &ThroughputMonitor{
		MinRowsPerTick: minRowsPerTick,
		counts:         map[pattern.PeerID]int{},
		flagged:        map[pattern.PeerID]bool{},
	}
}

// Observe records rows received from a peer since the last tick.
func (m *ThroughputMonitor) Observe(peer pattern.PeerID, rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[peer] += rows
}

// Tick closes the current observation window: every peer whose count is
// below the floor is flagged obsolete; counters reset. It returns the
// peers newly flagged this tick, sorted.
func (m *ThroughputMonitor) Tick() []pattern.PeerID {
	m.mu.Lock()
	var newly []pattern.PeerID
	for peer, n := range m.counts {
		if n < m.MinRowsPerTick && !m.flagged[peer] {
			m.flagged[peer] = true
			newly = append(newly, peer)
		}
		m.counts[peer] = 0
	}
	hook := m.OnEvent
	m.mu.Unlock()
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	if hook != nil {
		for _, peer := range newly {
			hook("flag", peer)
		}
	}
	return newly
}

// Flagged returns the set of peers currently considered obsolete.
func (m *ThroughputMonitor) Flagged() map[pattern.PeerID]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[pattern.PeerID]bool, len(m.flagged))
	for p := range m.flagged {
		out[p] = true
	}
	return out
}

// Track registers a peer so that total silence (no Observe calls at all)
// still trips the monitor at the next Tick.
func (m *ThroughputMonitor) Track(peer pattern.PeerID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.counts[peer]; !ok {
		m.counts[peer] = 0
	}
}

// IsFlagged reports whether a peer is currently flagged as slow. The
// executor's mid-flight migration path polls this before dispatching to a
// site, so a peer flagged during one branch's collection is avoided by
// sibling branches without waiting for the end-of-round Tick.
func (m *ThroughputMonitor) IsFlagged(peer pattern.PeerID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flagged[peer]
}

// Unflag forgets that a peer was flagged, e.g. after the executor has
// replanned around it (so a later reinstatement starts clean).
func (m *ThroughputMonitor) Unflag(peer pattern.PeerID) {
	m.mu.Lock()
	was := m.flagged[peer]
	delete(m.flagged, peer)
	delete(m.counts, peer)
	hook := m.OnEvent
	m.mu.Unlock()
	if hook != nil && was {
		hook("unflag", peer)
	}
}
