package optimizer_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/stats"
)

// figure5Plan builds the Figure-5 shape: root P1 must combine Q1 answered
// by P2 with Q2 answered by P3 — ⋈(Q1@P2, Q2@P3).
func figure5Plan() plan.Node {
	q := gen.PaperQuery()
	return plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3"))
}

func catalogWith(cards map[pattern.PeerID]int) *stats.Catalog {
	cat := stats.NewCatalog()
	for peer, n := range cards {
		ps := &stats.PeerStats{
			Peer: peer, Slots: 4,
			PropertyCard:     map[rdf.IRI]int{gen.N1("prop1"): n, gen.N1("prop2"): n},
			DistinctSubjects: map[rdf.IRI]int{gen.N1("prop1"): n, gen.N1("prop2"): n},
			DistinctObjects:  map[rdf.IRI]int{gen.N1("prop1"): n, gen.N1("prop2"): n},
		}
		cat.PutPeer(ps)
	}
	return cat
}

// TestFigure5SlowLinkFavorsQueryShipping reproduces regime (a): "where the
// communication cost between peers P1 and P3 is greater than the cost
// between peers P2 and P3, query-shipping is preferable".
func TestFigure5SlowLinkFavorsQueryShipping(t *testing.T) {
	cat := catalogWith(map[pattern.PeerID]int{"P1": 100, "P2": 1000, "P3": 1000})
	cat.PutLink("P1", "P3", stats.Link{LatencyMS: 500, BandwidthKBps: 10})  // slow
	cat.PutLink("P2", "P3", stats.Link{LatencyMS: 5, BandwidthKBps: 10000}) // fast
	cat.PutLink("P1", "P2", stats.Link{LatencyMS: 20, BandwidthKBps: 1000}) // normal
	cm := optimizer.NewCostModel(cat)

	root := figure5Plan()
	data := cm.EstimateCost(root, "P1", optimizer.DataShipping)
	query := cm.EstimateCost(root, "P1", optimizer.QueryShipping)
	if query.TotalMS >= data.TotalMS {
		t.Errorf("slow P1–P3 link: query=%0.1f data=%0.1f, query shipping must win",
			query.TotalMS, data.TotalMS)
	}
	pol, _ := cm.ChoosePolicy(root, "P1")
	if pol == optimizer.DataShipping {
		t.Errorf("ChoosePolicy picked %s under a slow root link", pol)
	}
	// The query-shipping join site is an input peer, not the root.
	if len(query.Decisions) != 1 || query.Decisions[0].Site == "P1" {
		t.Errorf("query-shipping decisions = %+v", query.Decisions)
	}
}

// TestFigure5LoadedPeerFavorsDataShipping reproduces regime (b): "in the
// case where peer P2 has a heavy processing load, data-shipping should be
// chosen".
func TestFigure5LoadedPeerFavorsDataShipping(t *testing.T) {
	cat := catalogWith(map[pattern.PeerID]int{"P1": 100, "P2": 1000, "P3": 1000})
	// Same link speeds everywhere, but P2 is drowning in queued queries.
	cat.SetLoad("P2", 4000)
	cm := optimizer.NewCostModel(cat)

	root := figure5Plan()
	data := cm.EstimateCost(root, "P1", optimizer.DataShipping)
	query := cm.EstimateCost(root, "P1", optimizer.QueryShipping) // pushes to P2 (largest input)
	if data.TotalMS >= query.TotalMS {
		t.Errorf("loaded P2: data=%0.1f query=%0.1f, data shipping must win",
			data.TotalMS, query.TotalMS)
	}
	// Hybrid must agree with the cheaper side.
	hybrid := cm.EstimateCost(root, "P1", optimizer.HybridShipping)
	if hybrid.TotalMS > data.TotalMS+1e-9 {
		t.Errorf("hybrid=%0.1f should never lose to data=%0.1f", hybrid.TotalMS, data.TotalMS)
	}
}

// TestFigure5LargeIntermediateFavorsQueryShipping reproduces regime (c):
// "if peer's P2 intermediate results of subquery Q2 are large,
// query-shipping is the most beneficial" — joining at P2 avoids shipping
// the large intermediate across the network.
func TestFigure5LargeIntermediateFavorsQueryShipping(t *testing.T) {
	cat := stats.NewCatalog()
	cat.PutPeer(&stats.PeerStats{Peer: "P1", Slots: 4, PropertyCard: map[rdf.IRI]int{}})
	cat.PutPeer(&stats.PeerStats{Peer: "P2", Slots: 4,
		PropertyCard:     map[rdf.IRI]int{gen.N1("prop1"): 50000},
		DistinctSubjects: map[rdf.IRI]int{gen.N1("prop1"): 50000},
		DistinctObjects:  map[rdf.IRI]int{gen.N1("prop1"): 50000}})
	cat.PutPeer(&stats.PeerStats{Peer: "P3", Slots: 4,
		PropertyCard:     map[rdf.IRI]int{gen.N1("prop2"): 100},
		DistinctSubjects: map[rdf.IRI]int{gen.N1("prop2"): 100},
		DistinctObjects:  map[rdf.IRI]int{gen.N1("prop2"): 100}})
	cm := optimizer.NewCostModel(cat)

	root := figure5Plan()
	data := cm.EstimateCost(root, "P1", optimizer.DataShipping)
	query := cm.EstimateCost(root, "P1", optimizer.QueryShipping)
	if query.TotalMS >= data.TotalMS {
		t.Errorf("large intermediate at P2: query=%0.1f data=%0.1f, query shipping must win",
			query.TotalMS, data.TotalMS)
	}
	if query.Decisions[0].Site != "P2" {
		t.Errorf("join must be pushed to P2 (the data), got %s", query.Decisions[0].Site)
	}
}

func TestHybridNeverWorseThanFixedPolicies(t *testing.T) {
	for _, load := range []int{0, 100, 5000} {
		cat := catalogWith(map[pattern.PeerID]int{"P1": 10, "P2": 2000, "P3": 300})
		cat.SetLoad("P2", load)
		cat.PutLink("P1", "P3", stats.Link{LatencyMS: 200, BandwidthKBps: 50})
		cm := optimizer.NewCostModel(cat)
		root := figure5Plan()
		data := cm.EstimateCost(root, "P1", optimizer.DataShipping).TotalMS
		query := cm.EstimateCost(root, "P1", optimizer.QueryShipping).TotalMS
		hybrid := cm.EstimateCost(root, "P1", optimizer.HybridShipping).TotalMS
		min := data
		if query < min {
			min = query
		}
		if hybrid > min+1e-9 {
			t.Errorf("load=%d: hybrid=%0.2f exceeds best fixed=%0.2f", load, hybrid, min)
		}
	}
}

func TestCardinalityEstimates(t *testing.T) {
	cat := catalogWith(map[pattern.PeerID]int{"P1": 100})
	cm := optimizer.NewCostModel(cat)
	q := gen.PaperQuery()
	scan := plan.NewScan(q.Patterns[0], "P1")
	if got := cm.CardOf(scan); got != 100 {
		t.Errorf("scan card = %f", got)
	}
	hole := plan.NewHole(q.Patterns[0])
	if got := cm.CardOf(hole); got != 0 {
		t.Errorf("hole card = %f", got)
	}
	// Identical union branches deduplicate (union is idempotent)...
	if got := cm.CardOf(plan.NewUnion(scan, plan.NewScan(q.Patterns[0], "P1"))); got != 100 {
		t.Errorf("idempotent union card = %f", got)
	}
	// ...while distinct branches add up.
	u := plan.NewUnion(scan, plan.NewScan(q.Patterns[1], "P1"))
	if got := cm.CardOf(u); got != 200 {
		t.Errorf("union card = %f", got)
	}
	merged := &plan.Scan{Patterns: q.Patterns, Peer: "P1"}
	// 100 * 100 * (1/100 via distinct stats) = 100.
	if got := cm.CardOf(merged); got != 100 {
		t.Errorf("merged scan card = %f", got)
	}
	j := plan.NewJoin(scan, plan.NewScan(q.Patterns[1], "P1"))
	if got := cm.CardOf(j); got <= 0 {
		t.Errorf("join card = %f", got)
	}
	if cm.BytesOf(scan) != 100*128 {
		t.Errorf("BytesOf = %f", cm.BytesOf(scan))
	}
	if got := cm.CardOf(nil); got != 0 {
		t.Errorf("nil card = %f", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if optimizer.DataShipping.String() != "data-shipping" ||
		optimizer.QueryShipping.String() != "query-shipping" ||
		optimizer.HybridShipping.String() != "hybrid-shipping" {
		t.Error("policy names wrong")
	}
}

func TestExplainRendersEstimates(t *testing.T) {
	cat := catalogWith(map[pattern.PeerID]int{"P1": 100, "P2": 1000, "P3": 1000})
	cm := optimizer.NewCostModel(cat)
	q := gen.PaperQuery()
	root := plan.NewJoin(
		plan.NewUnion(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[0], "P1")),
		plan.NewScan(q.Patterns[1], "P3"))
	out := cm.Explain(root, "P1")
	for _, want := range []string{"estimated cost:", "⋈", "∪", "Q1@P2", "rows≈", "hybrid-site="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
