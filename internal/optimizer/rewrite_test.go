package optimizer_test

import (
	"fmt"
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
)

func figure3Plan1(t testing.TB) *plan.Plan {
	t.Helper()
	reg := routing.NewRegistry()
	for peer, as := range gen.PaperActiveSchemas() {
		reg.Register(peer, as)
	}
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	p, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p
}

// TestFigure4Plan2 reproduces the first rewrite of Figure 4: distributing
// the join over the two unions yields a union of 3×3 = 9 two-way joins.
func TestFigure4Plan2(t *testing.T) {
	p1 := figure3Plan1(t)
	p2 := optimizer.DistributeJoinsOverUnions(p1.Root)
	u, ok := p2.(*plan.Union)
	if !ok {
		t.Fatalf("Plan 2 root is %T, want union: %s", p2, p2)
	}
	if len(u.Inputs) != 9 {
		t.Fatalf("Plan 2 has %d branches, want 9: %s", len(u.Inputs), p2)
	}
	for _, in := range u.Inputs {
		j, ok := in.(*plan.Join)
		if !ok || len(j.Inputs) != 2 {
			t.Errorf("branch %s is not a binary join", in)
		}
	}
	// First branch joins Q1@P1 with Q2@P1.
	if u.Inputs[0].String() != "⋈(Q1@P1, Q2@P1)" {
		t.Errorf("first branch = %s", u.Inputs[0])
	}
}

// TestFigure4Plan3 reproduces the second rewrite: transformation rules
// merge the same-peer branches, pushing the prop1⋈prop2 join down to P1
// and P4 exactly as the paper describes.
func TestFigure4Plan3(t *testing.T) {
	p1 := figure3Plan1(t)
	p3 := optimizer.Optimize(p1, optimizer.Options{})
	out := p3.String()
	if !strings.Contains(out, "[Q1⋈Q2]@P1") {
		t.Errorf("Plan 3 does not push the join to P1: %s", out)
	}
	if !strings.Contains(out, "[Q1⋈Q2]@P4") {
		t.Errorf("Plan 3 does not push the join to P4: %s", out)
	}
	// Mixed-peer branches stay distributed.
	if !strings.Contains(out, "⋈(Q1@P2, Q2@P3)") {
		t.Errorf("Plan 3 lost a mixed branch: %s", out)
	}
	// Plan 3 sends fewer subplans than Plan 2.
	p2 := optimizer.DistributeJoinsOverUnions(p1.Root)
	if got, was := plan.CountSubplans(p3.Root), plan.CountSubplans(p2); got >= was {
		t.Errorf("subplans: plan3=%d plan2=%d, rules must reduce them", got, was)
	}
	// The original plan is untouched.
	if p1.String() != "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))" {
		t.Errorf("Optimize mutated its input: %s", p1)
	}
}

func TestOptimizeAblations(t *testing.T) {
	p1 := figure3Plan1(t)
	noDist := optimizer.Optimize(p1, optimizer.Options{SkipDistribution: true})
	// Without distribution the top join of unions has no same-peer scan
	// pairs inside a single join node, so the plan shape is preserved.
	if noDist.String() != p1.String() {
		t.Errorf("merge-only changed plan unexpectedly: %s", noDist)
	}
	noMerge := optimizer.Optimize(p1, optimizer.Options{SkipMergeRules: true})
	if strings.Contains(noMerge.String(), "[Q1⋈Q2]") {
		t.Errorf("merge applied despite SkipMergeRules: %s", noMerge)
	}
	if u, ok := noMerge.Root.(*plan.Union); !ok || len(u.Inputs) != 9 {
		t.Errorf("distribution-only plan shape wrong: %s", noMerge)
	}
}

func TestDistributePreservesHoles(t *testing.T) {
	reg := routing.NewRegistry()
	reg.Register("P2", gen.PaperActiveSchemas()["P2"])
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	p, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opt := optimizer.Optimize(p, optimizer.Options{})
	if !plan.HasHoles(opt.Root) {
		t.Errorf("optimization dropped the hole: %s", opt)
	}
	if strings.Contains(opt.String(), "[Q1⋈Q2]") {
		t.Errorf("hole merged into a scan: %s", opt)
	}
}

func TestTransformationRulesRequireSharedVariables(t *testing.T) {
	// Q1 {X}prop1{Y} and Q3 {Z}prop3{W} at the same peer share no
	// variable: merging them would make the peer compute a cartesian
	// product, so they must stay separate.
	q1 := gen.PaperQuery().Patterns[0]
	q3 := pattern.PathPattern{ID: "Q3", SubjectVar: "Z", ObjectVar: "W",
		Property: gen.N1("prop3"), Domain: gen.N1("C3"), Range: gen.N1("C4")}
	j := plan.NewJoin(plan.NewScan(q1, "P1"), plan.NewScan(q3, "P1"))
	out := optimizer.ApplyTransformationRules(j)
	if out.String() != "⋈(Q1@P1, Q3@P1)" {
		t.Errorf("disconnected same-peer scans merged: %s", out)
	}
}

func TestTransformationRuleTwoShape(t *testing.T) {
	// The paper's Rule 2 shape: ⋈(⋈(QP, Q1@Pi), Q2@Pi) with QP at another
	// peer. Flattening + grouping must yield ⋈(QP, [Q1⋈Q2]@Pi).
	q := gen.PaperQuery()
	q.Patterns = append(q.Patterns, pattern.PathPattern{
		ID: "Q3", SubjectVar: "Z", ObjectVar: "W",
		Property: gen.N1("prop3"), Domain: gen.N1("C3"), Range: gen.N1("C4")})
	qp := plan.NewScan(q.Patterns[0], "P9")                      // Q1@P9
	inner := plan.NewJoin(qp, plan.NewScan(q.Patterns[1], "P1")) // ⋈(Q1@P9, Q2@P1)
	outer := plan.NewJoin(inner, plan.NewScan(q.Patterns[2], "P1"))
	out := optimizer.ApplyTransformationRules(outer)
	if out.String() != "⋈(Q1@P9, [Q2⋈Q3]@P1)" {
		t.Errorf("Rule 2 result = %s", out)
	}
}

func TestDistributionCapsExplosion(t *testing.T) {
	// A join of many wide unions beyond MaxDistributionBranches is left
	// in place rather than exploded.
	q1 := gen.PaperQuery().Patterns[0]
	q2 := gen.PaperQuery().Patterns[1]
	var u1, u2 []plan.Node
	for i := 0; i < 40; i++ {
		u1 = append(u1, plan.NewScan(q1, pattern.PeerID(fmt.Sprintf("PA%d", i))))
		u2 = append(u2, plan.NewScan(q2, pattern.PeerID(fmt.Sprintf("PB%d", i))))
	}
	j := plan.NewJoin(plan.NewUnion(u1...), plan.NewUnion(u2...))
	out := optimizer.DistributeJoinsOverUnions(j)
	if _, ok := out.(*plan.Join); !ok {
		t.Errorf("40×40 distribution not capped: produced %T", out)
	}
}
