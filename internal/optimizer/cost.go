package optimizer

import (
	"fmt"
	"math"

	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/stats"
)

// ShippingPolicy selects where joins execute (paper §2.5, Figure 5).
type ShippingPolicy int

const (
	// DataShipping executes every join at the plan's root peer: input
	// peers ship their raw results up.
	DataShipping ShippingPolicy = iota
	// QueryShipping pushes each join down to the input peer expected to
	// hold the largest input, which gathers the other inputs, joins
	// locally, and ships only the (smaller) join result up.
	QueryShipping
	// HybridShipping decides per join by comparing estimated costs of all
	// candidate sites — the statistics-driven choice the paper describes.
	HybridShipping
)

// String names the policy.
func (s ShippingPolicy) String() string {
	switch s {
	case DataShipping:
		return "data-shipping"
	case QueryShipping:
		return "query-shipping"
	case HybridShipping:
		return "hybrid-shipping"
	default:
		return fmt.Sprintf("policy(%d)", int(s))
	}
}

// CostModel estimates plan execution cost in milliseconds from catalog
// statistics. All knobs have sensible defaults via NewCostModel.
type CostModel struct {
	// Catalog supplies cardinalities, link costs and peer loads.
	Catalog *stats.Catalog
	// BytesPerRow approximates the wire size of one result row.
	BytesPerRow int
	// PerRowMS is the processing cost of one row at an idle peer.
	PerRowMS float64
	// DefaultSelectivity is used for joins with no statistics.
	DefaultSelectivity float64
}

// NewCostModel returns a cost model over the catalog with defaults.
func NewCostModel(cat *stats.Catalog) *CostModel {
	return &CostModel{Catalog: cat, BytesPerRow: 128, PerRowMS: 0.01, DefaultSelectivity: 0.1}
}

// CardOf estimates the row cardinality a node produces.
func (cm *CostModel) CardOf(n plan.Node) float64 {
	switch v := n.(type) {
	case *plan.Scan:
		if v.IsHole() {
			return 0
		}
		card := float64(cm.Catalog.Card(v.Peer, v.Patterns[0].Property))
		for i := 1; i < len(v.Patterns); i++ {
			c := float64(cm.Catalog.Card(v.Peer, v.Patterns[i].Property))
			sel := cm.Catalog.JoinSelectivity(v.Peer, v.Patterns[i-1].Property, v.Patterns[i].Property)
			card = card * c * sel
		}
		return card
	case *plan.Union:
		sum := 0.0
		for _, in := range v.Inputs {
			sum += cm.CardOf(in)
		}
		return sum
	case *plan.Join:
		card := cm.CardOf(v.Inputs[0])
		for i, in := range v.Inputs[1:] {
			card = card * cm.CardOf(in) * cm.joinSelectivity(v.Inputs[i], in)
		}
		return card
	default:
		return 0
	}
}

// joinSelectivity estimates the selectivity of joining two plan inputs.
// When both are scans it uses the standard containment-of-values estimate
// over the peers' advertised distinct counts (1/max of the join-column
// distincts); otherwise it falls back to DefaultSelectivity.
func (cm *CostModel) joinSelectivity(left, right plan.Node) float64 {
	ls, lok := left.(*plan.Scan)
	rs, rok := right.(*plan.Scan)
	if !lok || !rok || ls.IsHole() || rs.IsHole() {
		return cm.DefaultSelectivity
	}
	lp := cm.Catalog.Peer(ls.Peer)
	rp := cm.Catalog.Peer(rs.Peer)
	if lp == nil || rp == nil {
		return cm.DefaultSelectivity
	}
	// Join column: the objects of the left scan's last pattern meet the
	// subjects of the right scan's first pattern (the chain-join case the
	// paper's plans produce).
	d1 := lp.DistinctObjects[ls.Patterns[len(ls.Patterns)-1].Property]
	d2 := rp.DistinctSubjects[rs.Patterns[0].Property]
	m := d1
	if d2 > m {
		m = d2
	}
	if m == 0 {
		return cm.DefaultSelectivity
	}
	return 1.0 / float64(m)
}

// BytesOf estimates a node's result payload size.
func (cm *CostModel) BytesOf(n plan.Node) float64 {
	return cm.CardOf(n) * float64(cm.BytesPerRow)
}

// Decision records where one join was placed and why.
type Decision struct {
	// Join renders the join that was placed.
	Join string
	// Site is the chosen execution peer.
	Site pattern.PeerID
	// CostMS is the estimated subtree cost with that placement.
	CostMS float64
}

// CostReport is the outcome of a cost estimation: the total and the
// per-join placements.
type CostReport struct {
	// TotalMS estimates end-to-end execution time contributions charged
	// by the model (transfers + processing; pipelining ignored).
	TotalMS float64
	// Decisions records join placements in visit order.
	Decisions []Decision
}

// EstimateCost estimates the cost of executing the plan rooted at root
// with results delivered to rootPeer under the given shipping policy. For
// HybridShipping each join independently picks the cheapest site among
// the root peer and the peers of the scans below it.
func (cm *CostModel) EstimateCost(root plan.Node, rootPeer pattern.PeerID, policy ShippingPolicy) CostReport {
	rep := &CostReport{}
	rep.TotalMS = cm.cost(root, rootPeer, rootPeer, policy, rep)
	return *rep
}

// cost returns the time to produce node n's result at site execSite (the
// consumer), given the overall root peer for candidate enumeration.
func (cm *CostModel) cost(n plan.Node, execSite, rootPeer pattern.PeerID, policy ShippingPolicy, rep *CostReport) float64 {
	switch v := n.(type) {
	case *plan.Scan:
		if v.IsHole() {
			return 0
		}
		card := cm.CardOf(v)
		proc := card * cm.PerRowMS * cm.Catalog.Peer(v.Peer).LoadFactor()
		ship := cm.Catalog.TransferMS(v.Peer, execSite, int(cm.BytesOf(v)))
		return proc + ship
	case *plan.Union:
		total := 0.0
		for _, in := range v.Inputs {
			total += cm.cost(in, execSite, rootPeer, policy, rep)
		}
		// Merging rows at the consumer.
		total += cm.CardOf(v) * cm.PerRowMS * cm.Catalog.Peer(execSite).LoadFactor()
		return total
	case *plan.Join:
		site, cost := cm.placeJoin(v, execSite, rootPeer, policy, rep)
		rep.Decisions = append(rep.Decisions, Decision{Join: v.String(), Site: site, CostMS: cost})
		return cost
	default:
		return 0
	}
}

// placeJoin chooses the join's execution site per policy and returns the
// site and the cost of computing the join there and shipping the result
// to execSite.
func (cm *CostModel) placeJoin(j *plan.Join, execSite, rootPeer pattern.PeerID, policy ShippingPolicy, rep *CostReport) (pattern.PeerID, float64) {
	evalAt := func(site pattern.PeerID) float64 {
		total := 0.0
		inputRows := 0.0
		for _, in := range j.Inputs {
			total += cm.cost(in, site, rootPeer, policy, rep)
			inputRows += cm.CardOf(in)
		}
		total += inputRows * cm.PerRowMS * cm.Catalog.Peer(site).LoadFactor()
		total += cm.Catalog.TransferMS(site, execSite, int(cm.CardOf(j)*float64(cm.BytesPerRow)))
		return total
	}
	switch policy {
	case DataShipping:
		return execSite, evalAt(execSite)
	case QueryShipping:
		site := cm.largestInputPeer(j)
		if site == "" {
			site = execSite
		}
		return site, evalAt(site)
	default: // HybridShipping: cost-based
		best := execSite
		bestCost := math.Inf(1)
		for _, cand := range cm.candidateSites(j, execSite) {
			// Placement decisions below are re-derived per candidate; we
			// must not record them for discarded candidates, so probe with
			// a throwaway report.
			probe := &CostReport{}
			c := func() float64 {
				total := 0.0
				inputRows := 0.0
				for _, in := range j.Inputs {
					total += cm.cost(in, cand, rootPeer, policy, probe)
					inputRows += cm.CardOf(in)
				}
				total += inputRows * cm.PerRowMS * cm.Catalog.Peer(cand).LoadFactor()
				total += cm.Catalog.TransferMS(cand, execSite, int(cm.CardOf(j)*float64(cm.BytesPerRow)))
				return total
			}()
			if c < bestCost {
				bestCost = c
				best = cand
			}
		}
		// Re-evaluate at the winner, recording nested decisions for real.
		return best, evalAt(best)
	}
}

// largestInputPeer returns the peer of the scan input with the largest
// estimated cardinality (query shipping pushes the join to the data).
func (cm *CostModel) largestInputPeer(j *plan.Join) pattern.PeerID {
	var best pattern.PeerID
	bestCard := -1.0
	for _, in := range j.Inputs {
		if s, ok := in.(*plan.Scan); ok && !s.IsHole() {
			if c := cm.CardOf(s); c > bestCard {
				bestCard = c
				best = s.Peer
			}
		}
	}
	return best
}

// candidateSites enumerates the root peer plus every peer scanned below
// the join, deduplicated, in deterministic order.
func (cm *CostModel) candidateSites(j *plan.Join, rootPeer pattern.PeerID) []pattern.PeerID {
	out := []pattern.PeerID{rootPeer}
	seen := map[pattern.PeerID]bool{rootPeer: true}
	for _, s := range plan.Scans(j) {
		if !s.IsHole() && !seen[s.Peer] {
			seen[s.Peer] = true
			out = append(out, s.Peer)
		}
	}
	return out
}

// ChoosePolicy compares the three shipping policies for a plan and
// returns the cheapest with its report — the compile-time decision of
// §2.5 ("a peer node can decide at compile-time between data, query or
// hybrid shipping execution policies").
func (cm *CostModel) ChoosePolicy(root plan.Node, rootPeer pattern.PeerID) (ShippingPolicy, CostReport) {
	bestPolicy := DataShipping
	bestRep := cm.EstimateCost(root, rootPeer, DataShipping)
	for _, pol := range []ShippingPolicy{QueryShipping, HybridShipping} {
		rep := cm.EstimateCost(root, rootPeer, pol)
		if rep.TotalMS < bestRep.TotalMS {
			bestPolicy, bestRep = pol, rep
		}
	}
	return bestPolicy, bestRep
}
