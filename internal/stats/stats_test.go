package stats_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/rdf"
	"sqpeer/internal/stats"
)

func TestFromBaseStats(t *testing.T) {
	base := gen.PaperBases(3)["P1"]
	bs := rdf.CollectStats(base, gen.PaperSchema())
	ps := stats.FromBaseStats("P1", bs, 8)
	if ps.Peer != "P1" || ps.Slots != 8 {
		t.Errorf("header = %+v", ps)
	}
	if ps.Card(gen.N1("prop1")) != 3 || ps.Card(gen.N1("prop2")) != 3 {
		t.Errorf("cards = %d, %d", ps.Card(gen.N1("prop1")), ps.Card(gen.N1("prop2")))
	}
	if ps.Card(gen.N1("prop3")) != 0 {
		t.Error("unpopulated property should be 0")
	}
	empty := stats.FromBaseStats("PX", nil, 2)
	if empty.Card(gen.N1("prop1")) != 0 {
		t.Error("nil BaseStats should give zero cards")
	}
}

func TestLoadFactor(t *testing.T) {
	ps := &stats.PeerStats{Peer: "P1", Slots: 4}
	if ps.LoadFactor() != 1.0 {
		t.Errorf("idle LoadFactor = %f", ps.LoadFactor())
	}
	ps.Load = 8
	if ps.LoadFactor() != 3.0 {
		t.Errorf("loaded LoadFactor = %f, want 3.0", ps.LoadFactor())
	}
	var nilPS *stats.PeerStats
	if nilPS.LoadFactor() != 1.0 {
		t.Error("nil LoadFactor should be 1.0")
	}
	noSlots := &stats.PeerStats{Peer: "P2"}
	if noSlots.LoadFactor() != 1.0 {
		t.Error("zero-slot LoadFactor should be 1.0")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := stats.Link{LatencyMS: 10, BandwidthKBps: 100}
	if got := l.TransferMS(1000); got != 20 {
		t.Errorf("TransferMS = %f, want 20 (10 latency + 1000B/100KBps)", got)
	}
	zero := stats.Link{LatencyMS: 5}
	if got := zero.TransferMS(1000); got <= 5 {
		t.Errorf("zero-bandwidth link should fall back to default: %f", got)
	}
}

func TestCatalogLinksAndLoad(t *testing.T) {
	cat := stats.NewCatalog()
	cat.PutPeer(&stats.PeerStats{Peer: "P1", Slots: 2})
	cat.PutLink("P1", "P2", stats.Link{LatencyMS: 99, BandwidthKBps: 10})

	if got := cat.LinkBetween("P2", "P1").LatencyMS; got != 99 {
		t.Errorf("link not symmetric: %f", got)
	}
	if got := cat.LinkBetween("P1", "P9"); got != stats.DefaultLink {
		t.Errorf("unknown link = %+v", got)
	}
	if cat.TransferMS("P1", "P1", 1000) != 0 {
		t.Error("self transfer should be free")
	}
	if cat.TransferMS("P1", "P2", 0) != 99 {
		t.Errorf("latency-only transfer = %f", cat.TransferMS("P1", "P2", 0))
	}
	cat.SetLoad("P1", 4)
	if cat.Peer("P1").LoadFactor() != 3.0 {
		t.Errorf("SetLoad not applied: %f", cat.Peer("P1").LoadFactor())
	}
	cat.SetLoad("ghost", 4) // must not panic
	if cat.Peer("ghost") != nil {
		t.Error("ghost peer materialized")
	}
	if !strings.Contains(cat.String(), "peer P1: slots=2 load=4") {
		t.Errorf("String() = %q", cat.String())
	}
}

func TestCatalogJoinSelectivity(t *testing.T) {
	cat := stats.NewCatalog()
	if got := cat.JoinSelectivity("P1", gen.N1("prop1"), gen.N1("prop2")); got != 0.1 {
		t.Errorf("unknown-peer selectivity = %f", got)
	}
	cat.PutPeer(&stats.PeerStats{
		Peer:             "P1",
		DistinctObjects:  map[rdf.IRI]int{gen.N1("prop1"): 100},
		DistinctSubjects: map[rdf.IRI]int{gen.N1("prop2"): 50},
	})
	if got := cat.JoinSelectivity("P1", gen.N1("prop1"), gen.N1("prop2")); got != 0.01 {
		t.Errorf("selectivity = %f, want 1/100", got)
	}
	cat.PutPeer(&stats.PeerStats{Peer: "P2",
		DistinctObjects: map[rdf.IRI]int{}, DistinctSubjects: map[rdf.IRI]int{}})
	if got := cat.JoinSelectivity("P2", gen.N1("prop1"), gen.N1("prop2")); got != 0.1 {
		t.Errorf("no-stats selectivity = %f", got)
	}
}

func TestCatalogCard(t *testing.T) {
	cat := stats.NewCatalog()
	cat.PutPeer(&stats.PeerStats{Peer: "P1",
		PropertyCard: map[rdf.IRI]int{gen.N1("prop1"): 7}})
	if cat.Card("P1", gen.N1("prop1")) != 7 {
		t.Error("Card lookup failed")
	}
	if cat.Card("P9", gen.N1("prop1")) != 0 {
		t.Error("unknown peer Card should be 0")
	}
}
