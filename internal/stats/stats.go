// Package stats maintains the statistics SQPeer's optimizer consumes
// (paper §2.5): per-peer cardinalities piggybacked on advertisements and
// channel statistics packets, per-link communication costs, and per-peer
// processing load expressed as slots. A Catalog is one node's view of
// these; it is safe for concurrent use since statistics arrive from the
// network while plans are optimized.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// PeerStats summarizes one peer for the optimizer.
type PeerStats struct {
	// Peer identifies the peer.
	Peer pattern.PeerID `json:"peer"`
	// PropertyCard maps property IRIs to pair counts in the peer's base.
	PropertyCard map[rdf.IRI]int `json:"propertyCard"`
	// DistinctSubjects and DistinctObjects feed join-selectivity
	// estimates.
	DistinctSubjects map[rdf.IRI]int `json:"distinctSubjects"`
	DistinctObjects  map[rdf.IRI]int `json:"distinctObjects"`
	// Slots is how many queries the peer can process simultaneously
	// (the paper's processing-load slots).
	Slots int `json:"slots"`
	// Load is the number of queries currently queued or running.
	Load int `json:"load"`
}

// FromBaseStats converts the rdf layer's base statistics into peer stats.
func FromBaseStats(peer pattern.PeerID, bs *rdf.BaseStats, slots int) *PeerStats {
	ps := &PeerStats{
		Peer:             peer,
		PropertyCard:     map[rdf.IRI]int{},
		DistinctSubjects: map[rdf.IRI]int{},
		DistinctObjects:  map[rdf.IRI]int{},
		Slots:            slots,
	}
	if bs != nil {
		for k, v := range bs.PropertyCard {
			ps.PropertyCard[k] = v
		}
		for k, v := range bs.DistinctSubjects {
			ps.DistinctSubjects[k] = v
		}
		for k, v := range bs.DistinctObjects {
			ps.DistinctObjects[k] = v
		}
	}
	return ps
}

// Card returns the pair count recorded for the property, 0 if unknown.
func (ps *PeerStats) Card(prop rdf.IRI) int {
	if ps == nil {
		return 0
	}
	return ps.PropertyCard[prop]
}

// LoadFactor returns the processing slowdown implied by the peer's load:
// 1.0 when idle, growing linearly as queued queries exceed free slots.
func (ps *PeerStats) LoadFactor() float64 {
	if ps == nil || ps.Slots <= 0 {
		return 1.0
	}
	return 1.0 + float64(ps.Load)/float64(ps.Slots)
}

// Link describes the connection between two peers.
type Link struct {
	// LatencyMS is the per-message latency in milliseconds.
	LatencyMS float64 `json:"latencyMs"`
	// BandwidthKBps is the sustained transfer rate in kilobytes/second.
	BandwidthKBps float64 `json:"bandwidthKBps"`
}

// DefaultLink is assumed for pairs with no measurement.
var DefaultLink = Link{LatencyMS: 20, BandwidthKBps: 1000}

// TransferMS returns the estimated time to move the given payload across
// the link, in milliseconds.
func (l Link) TransferMS(bytes int) float64 {
	bw := l.BandwidthKBps
	if bw <= 0 {
		bw = DefaultLink.BandwidthKBps
	}
	return l.LatencyMS + float64(bytes)/bw // bytes/(KB/s) = ms
}

// Catalog is one node's statistics knowledge.
type Catalog struct {
	mu    sync.RWMutex
	peers map[pattern.PeerID]*PeerStats
	links map[linkKey]Link
}

type linkKey struct{ a, b pattern.PeerID }

func normKey(a, b pattern.PeerID) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{peers: map[pattern.PeerID]*PeerStats{}, links: map[linkKey]Link{}}
}

// PutPeer records (or replaces) a peer's statistics.
func (c *Catalog) PutPeer(ps *PeerStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[ps.Peer] = ps
}

// Peer returns the stats for a peer, nil if unknown (all accessors on a
// nil *PeerStats degrade to defaults).
func (c *Catalog) Peer(p pattern.PeerID) *PeerStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.peers[p]
}

// SetLoad updates a peer's current load if the peer is known. The update
// is copy-on-write: Peer hands out the stored *PeerStats without a lock,
// so mutating it in place would race with readers.
func (c *Catalog) SetLoad(p pattern.PeerID, load int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ps, ok := c.peers[p]; ok {
		cp := *ps
		cp.Load = load
		c.peers[p] = &cp
	}
}

// PutLink records the measured link between two peers (symmetric).
func (c *Catalog) PutLink(a, b pattern.PeerID, l Link) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links[normKey(a, b)] = l
}

// LinkBetween returns the link between two peers, or DefaultLink. The
// link from a peer to itself is free.
func (c *Catalog) LinkBetween(a, b pattern.PeerID) Link {
	if a == b {
		return Link{LatencyMS: 0, BandwidthKBps: 1 << 30}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if l, ok := c.links[normKey(a, b)]; ok {
		return l
	}
	return DefaultLink
}

// TransferMS estimates the time to ship a payload between two peers.
func (c *Catalog) TransferMS(a, b pattern.PeerID, bytes int) float64 {
	if a == b {
		return 0
	}
	return c.LinkBetween(a, b).TransferMS(bytes)
}

// Card estimates the number of pairs a peer holds for a property.
func (c *Catalog) Card(p pattern.PeerID, prop rdf.IRI) int {
	return c.Peer(p).Card(prop)
}

// JoinSelectivity estimates join selectivity between two properties at a
// peer using the containment assumption; falls back to 0.1.
func (c *Catalog) JoinSelectivity(p pattern.PeerID, p1, p2 rdf.IRI) float64 {
	ps := c.Peer(p)
	if ps == nil {
		return 0.1
	}
	d1, d2 := ps.DistinctObjects[p1], ps.DistinctSubjects[p2]
	m := d1
	if d2 > m {
		m = d2
	}
	if m == 0 {
		return 0.1
	}
	return 1.0 / float64(m)
}

// String renders the catalog deterministically.
func (c *Catalog) String() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var peers []pattern.PeerID
	for p := range c.peers {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	var b strings.Builder
	for _, p := range peers {
		ps := c.peers[p]
		fmt.Fprintf(&b, "peer %s: slots=%d load=%d props=%d\n", p, ps.Slots, ps.Load, len(ps.PropertyCard))
	}
	return b.String()
}
