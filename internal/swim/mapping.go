package swim

import (
	"fmt"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// RelationalMapping maps one table onto one schema property: each row
// produces a (subject, object) pair with class typings, the SWIM-style
// "mapping rule to RDF/S of structured relational bases".
type RelationalMapping struct {
	// Table names the source table.
	Table string
	// SubjectColumn and ObjectColumn select the two cells of each row.
	SubjectColumn, ObjectColumn string
	// SubjectPrefix and ObjectPrefix turn cell values into resource IRIs
	// (e.g. "http://peer1.example/emp#").
	SubjectPrefix, ObjectPrefix string
	// Property is the schema property each row instantiates.
	Property rdf.IRI
	// SubjectClass and ObjectClass type the generated resources; empty
	// skips the typing triple (or, for ObjectClass, emits a literal
	// object instead of a resource).
	SubjectClass, ObjectClass rdf.IRI
	// ObjectLiteral, when true, emits the object cell as a literal.
	ObjectLiteral bool
}

// XMLMapping maps XML elements onto one schema property: each element on
// Path produces a pair from two field selectors (attributes or child
// elements).
type XMLMapping struct {
	// Path locates the mapped elements below the document root.
	Path string
	// SubjectField and ObjectField are selectors per XMLElement.Value.
	SubjectField, ObjectField string
	// SubjectPrefix and ObjectPrefix turn field values into IRIs.
	SubjectPrefix, ObjectPrefix string
	// Property is the schema property each element instantiates.
	Property rdf.IRI
	// SubjectClass and ObjectClass type the generated resources.
	SubjectClass, ObjectClass rdf.IRI
	// ObjectLiteral, when true, emits the object field as a literal.
	ObjectLiteral bool
}

// VirtualBase is a legacy peer base (relational and/or XML) with mapping
// rules onto a community RDF/S schema. It supports the paper's virtual
// scenario: the active-schema is derived from the rules alone, while the
// RDF/S instances are materialized on demand.
type VirtualBase struct {
	// Schema is the community schema the mappings target.
	Schema *rdf.Schema
	// DB is the relational side (may be nil).
	DB *RelationalDB
	// XML is the semistructured side (may be nil).
	XML *XMLStore
	// RelMappings and XMLMappings are the rules.
	RelMappings []RelationalMapping
	XMLMappings []XMLMapping
}

// ActiveSchema derives the advertisement from the mapping rules without
// touching data: every mapped property is declared populatable, with
// end-points from the rules' classes (falling back to the property's
// declaration).
func (v *VirtualBase) ActiveSchema() (*pattern.ActiveSchema, error) {
	a := pattern.NewActiveSchema(v.Schema.Name)
	addProp := func(prop rdf.IRI, subjClass, objClass rdf.IRI) error {
		def, ok := v.Schema.PropertyByName(prop)
		if !ok {
			return fmt.Errorf("swim: mapped property %s not declared in schema %s", prop, v.Schema.Name)
		}
		domain := def.Domain
		if subjClass != "" {
			domain = subjClass
		}
		rng := def.Range
		if objClass != "" {
			rng = objClass
		}
		if err := a.AddPropertyPattern(prop, domain, rng); err != nil {
			return err
		}
		if subjClass != "" {
			a.AddClass(subjClass)
		}
		if objClass != "" {
			a.AddClass(objClass)
		}
		return nil
	}
	for _, m := range v.RelMappings {
		if err := addProp(m.Property, m.SubjectClass, m.ObjectClass); err != nil {
			return nil, err
		}
	}
	for _, m := range v.XMLMappings {
		if err := addProp(m.Property, m.SubjectClass, m.ObjectClass); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Materialize runs every mapping rule and produces the RDF/S base the
// rules describe — the populate-on-demand step of the virtual scenario.
func (v *VirtualBase) Materialize() (*rdf.Base, error) {
	out := rdf.NewBase()
	for _, m := range v.RelMappings {
		if v.DB == nil {
			return nil, fmt.Errorf("swim: relational mapping on %s but no relational DB", m.Table)
		}
		t, ok := v.DB.Table(m.Table)
		if !ok {
			return nil, fmt.Errorf("swim: mapped table %s not in DB", m.Table)
		}
		rows, err := t.Select([]string{m.SubjectColumn, m.ObjectColumn}, nil)
		if err != nil {
			return nil, fmt.Errorf("swim: mapping over %s: %w", m.Table, err)
		}
		for _, row := range rows {
			emitPair(out, m.SubjectPrefix+row[0], row[1], m.ObjectPrefix,
				m.Property, m.SubjectClass, m.ObjectClass, m.ObjectLiteral)
		}
	}
	for _, m := range v.XMLMappings {
		if v.XML == nil {
			return nil, fmt.Errorf("swim: XML mapping on %s but no XML store", m.Path)
		}
		for _, el := range v.XML.Elements(m.Path) {
			subj, ok1 := el.Value(m.SubjectField)
			obj, ok2 := el.Value(m.ObjectField)
			if !ok1 || !ok2 {
				continue // partial descriptions are fine in RDF
			}
			emitPair(out, m.SubjectPrefix+subj, obj, m.ObjectPrefix,
				m.Property, m.SubjectClass, m.ObjectClass, m.ObjectLiteral)
		}
	}
	return out, nil
}

func emitPair(out *rdf.Base, subjIRI, objVal, objPrefix string, prop rdf.IRI, subjClass, objClass rdf.IRI, objLiteral bool) {
	s := rdf.IRI(subjIRI)
	if objLiteral {
		out.Add(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(prop), O: rdf.NewLiteral(objVal)})
	} else {
		o := rdf.IRI(objPrefix + objVal)
		out.Add(rdf.Statement(s, prop, o))
		if objClass != "" {
			out.Add(rdf.Typing(o, objClass))
		}
	}
	if subjClass != "" {
		out.Add(rdf.Typing(s, subjClass))
	}
}
