// Package swim simulates the SWIM mediation layer the paper relies on
// (reference [9]): legacy relational and XML peer bases exposed as virtual
// RDF/S views. A peer backed by swim advertises the schema subset its
// mapping rules can populate (the virtual scenario of §2.2) and
// materializes instances on demand when queried.
package swim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Table is a minimal relational table: named columns over string cells.
type Table struct {
	// Name is the table name.
	Name string
	// Columns are the column names, in order.
	Columns []string
	rows    [][]string
}

// NewTable declares a table with the given columns.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// Insert appends a row; the cell count must match the column count.
func (t *Table) Insert(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("swim: table %s: %d cells for %d columns", t.Name, len(cells), len(t.Columns))
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// MustInsert is Insert that panics on arity errors (fixtures).
func (t *Table) MustInsert(cells ...string) {
	if err := t.Insert(cells...); err != nil {
		panic(err)
	}
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.rows) }

// colIndex resolves a column name.
func (t *Table) colIndex(col string) (int, error) {
	for i, c := range t.Columns {
		if c == col {
			return i, nil
		}
	}
	return -1, fmt.Errorf("swim: table %s has no column %q", t.Name, col)
}

// Select returns the values of the named columns for every row matching
// the equality predicates in where (nil for a full scan).
func (t *Table) Select(cols []string, where map[string]string) ([][]string, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := t.colIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	whereIdx := map[int]string{}
	for col, val := range where {
		j, err := t.colIndex(col)
		if err != nil {
			return nil, err
		}
		whereIdx[j] = val
	}
	var out [][]string
	for _, row := range t.rows {
		match := true
		for j, val := range whereIdx {
			if row[j] != val {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		proj := make([]string, len(idx))
		for i, j := range idx {
			proj[i] = row[j]
		}
		out = append(out, proj)
	}
	return out, nil
}

// RelationalDB is a named collection of tables. It is safe for concurrent
// reads after loading.
type RelationalDB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewRelationalDB returns an empty database.
func NewRelationalDB() *RelationalDB {
	return &RelationalDB{tables: map[string]*Table{}}
}

// AddTable registers a table; duplicate names error.
func (db *RelationalDB) AddTable(t *Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("swim: table %s already exists", t.Name)
	}
	db.tables[t.Name] = t
	return nil
}

// Table returns a table by name.
func (db *RelationalDB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns the table names, sorted.
func (db *RelationalDB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String summarizes the database.
func (db *RelationalDB) String() string {
	var b strings.Builder
	for _, name := range db.TableNames() {
		t, _ := db.Table(name)
		fmt.Fprintf(&b, "table %s(%s): %d rows\n", name, strings.Join(t.Columns, ","), t.Len())
	}
	return b.String()
}
