package swim

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// XMLElement is one node of a parsed XML document.
type XMLElement struct {
	// Name is the element's local name.
	Name string
	// Attrs maps attribute names to values.
	Attrs map[string]string
	// Text is the element's trimmed character data.
	Text string
	// Children are the child elements in document order.
	Children []*XMLElement
}

// XMLStore holds one parsed XML document — the minimal semistructured
// peer base the SWIM mappings draw from.
type XMLStore struct {
	// Root is the document element.
	Root *XMLElement
}

// ParseXML parses a document into a store.
func ParseXML(doc string) (*XMLStore, error) {
	dec := xml.NewDecoder(strings.NewReader(doc))
	var stack []*XMLElement
	var root *XMLElement
	for {
		tok, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("swim: parse xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &XMLElement{Name: t.Name.Local, Attrs: map[string]string{}}
			for _, a := range t.Attr {
				el.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("swim: multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("swim: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += strings.TrimSpace(string(t))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("swim: empty document")
	}
	return &XMLStore{Root: root}, nil
}

// Elements returns every element reachable by the slash-separated child
// path from the root, e.g. "library/book". The path starts below the
// root element.
func (s *XMLStore) Elements(path string) []*XMLElement {
	if s == nil || s.Root == nil {
		return nil
	}
	cur := []*XMLElement{s.Root}
	if path == "" {
		return cur
	}
	for _, seg := range strings.Split(path, "/") {
		var next []*XMLElement
		for _, el := range cur {
			for _, c := range el.Children {
				if c.Name == seg {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}

// Value resolves a field selector against an element: "@attr" reads an
// attribute, "child" reads the text of the first child with that name,
// and "." reads the element's own text.
func (el *XMLElement) Value(selector string) (string, bool) {
	switch {
	case selector == ".":
		return el.Text, el.Text != ""
	case strings.HasPrefix(selector, "@"):
		v, ok := el.Attrs[selector[1:]]
		return v, ok
	default:
		for _, c := range el.Children {
			if c.Name == selector {
				return c.Text, true
			}
		}
		return "", false
	}
}
