package swim_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
	"sqpeer/internal/swim"
)

func TestTableInsertSelect(t *testing.T) {
	tab := swim.NewTable("works_on", "emp", "proj")
	tab.MustInsert("e1", "p1")
	tab.MustInsert("e2", "p1")
	tab.MustInsert("e1", "p2")
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if err := tab.Insert("only-one"); err == nil {
		t.Error("arity mismatch accepted")
	}
	rows, err := tab.Select([]string{"emp"}, map[string]string{"proj": "p1"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(rows) != 2 {
		t.Errorf("filtered select = %v", rows)
	}
	if _, err := tab.Select([]string{"ghost"}, nil); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tab.Select([]string{"emp"}, map[string]string{"ghost": "x"}); err == nil {
		t.Error("unknown where column accepted")
	}
}

func TestRelationalDB(t *testing.T) {
	db := swim.NewRelationalDB()
	if err := db.AddTable(swim.NewTable("a", "x")); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(swim.NewTable("a", "x")); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, ok := db.Table("a"); !ok {
		t.Error("table lookup failed")
	}
	if _, ok := db.Table("zz"); ok {
		t.Error("ghost table found")
	}
	if !strings.Contains(db.String(), "table a(x): 0 rows") {
		t.Errorf("String() = %q", db.String())
	}
}

func TestParseXMLAndNavigate(t *testing.T) {
	doc := `<library>
  <book id="b1"><author>a1</author><title>T1</title></book>
  <book id="b2"><author>a2</author></book>
  <journal id="j1"/>
</library>`
	store, err := swim.ParseXML(doc)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	books := store.Elements("book")
	if len(books) != 2 {
		t.Fatalf("books = %d", len(books))
	}
	if v, ok := books[0].Value("@id"); !ok || v != "b1" {
		t.Errorf("@id = %q, %v", v, ok)
	}
	if v, ok := books[0].Value("author"); !ok || v != "a1" {
		t.Errorf("author = %q, %v", v, ok)
	}
	if v, ok := books[0].Value("title"); !ok || v != "T1" {
		t.Errorf("title = %q, %v", v, ok)
	}
	if _, ok := books[1].Value("title"); ok {
		t.Error("missing child reported present")
	}
	if got := store.Elements("ghost"); len(got) != 0 {
		t.Errorf("ghost path = %v", got)
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, doc := range []string{"", "<a><b></a>", "<a/><b/>"} {
		if _, err := swim.ParseXML(doc); err == nil {
			t.Errorf("ParseXML(%q) accepted bad document", doc)
		}
	}
}

// virtualFixture maps a relational works-with table and an XML contact
// list onto the paper's n1 schema: rows become prop1 pairs, elements
// become prop2 pairs.
func virtualFixture(t *testing.T) *swim.VirtualBase {
	t.Helper()
	db := swim.NewRelationalDB()
	rel := swim.NewTable("related", "src", "dst")
	rel.MustInsert("x0", "y0")
	rel.MustInsert("x1", "y1")
	if err := db.AddTable(rel); err != nil {
		t.Fatal(err)
	}
	xmlStore, err := swim.ParseXML(`<links>
  <link from="y0" to="z0"/>
  <link from="y1" to="z1"/>
  <link from="y9"/>
</links>`)
	if err != nil {
		t.Fatal(err)
	}
	data := "http://legacy.example/data#"
	return &swim.VirtualBase{
		Schema: gen.PaperSchema(),
		DB:     db,
		XML:    xmlStore,
		RelMappings: []swim.RelationalMapping{{
			Table: "related", SubjectColumn: "src", ObjectColumn: "dst",
			SubjectPrefix: data, ObjectPrefix: data,
			Property: gen.N1("prop1"), SubjectClass: gen.N1("C1"), ObjectClass: gen.N1("C2"),
		}},
		XMLMappings: []swim.XMLMapping{{
			Path: "link", SubjectField: "@from", ObjectField: "@to",
			SubjectPrefix: data, ObjectPrefix: data,
			Property: gen.N1("prop2"), SubjectClass: gen.N1("C2"), ObjectClass: gen.N1("C3"),
		}},
	}
}

func TestVirtualBaseActiveSchema(t *testing.T) {
	v := virtualFixture(t)
	a, err := v.ActiveSchema()
	if err != nil {
		t.Fatalf("ActiveSchema: %v", err)
	}
	if !a.HasProperty(gen.N1("prop1")) || !a.HasProperty(gen.N1("prop2")) {
		t.Errorf("active-schema = %s", a)
	}
	if !a.HasClass(gen.N1("C1")) || !a.HasClass(gen.N1("C3")) {
		t.Errorf("active-schema classes = %s", a)
	}
	// Unknown mapped property is rejected.
	v.RelMappings[0].Property = "http://zz#ghost"
	if _, err := v.ActiveSchema(); err == nil {
		t.Error("mapping onto unknown property accepted")
	}
}

func TestVirtualBaseMaterializeAndQuery(t *testing.T) {
	v := virtualFixture(t)
	base, err := v.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// 2 prop1 rows ×3 triples + 2 complete links ×3 triples, minus the 2
	// C2 typings of y0/y1 emitted by both mappings (deduplicated); the
	// partial link (no @to) is skipped.
	if base.Len() != 10 {
		t.Fatalf("materialized %d triples, want 12:\n%s", base.Len(), rdf.FormatTriples(base.Triples()))
	}
	// The Figure-1 query over the virtual base finds the two chains.
	c, err := rql.ParseAndAnalyze(gen.PaperRQL, gen.PaperSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rql.Eval(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Errorf("virtual query = %d rows, want 2:\n%s", rows.Len(), rows)
	}
}

func TestVirtualBaseLiteralObjects(t *testing.T) {
	schema := rdf.NewSchema("http://s#")
	schema.MustAddClass("http://s#Doc")
	schema.MustAddProperty("http://s#title", "http://s#Doc", rdf.RDFSLiteral)
	db := swim.NewRelationalDB()
	tab := swim.NewTable("docs", "id", "title")
	tab.MustInsert("d1", "Semantic Overlay Networks")
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	v := &swim.VirtualBase{
		Schema: schema, DB: db,
		RelMappings: []swim.RelationalMapping{{
			Table: "docs", SubjectColumn: "id", ObjectColumn: "title",
			SubjectPrefix: "http://d#", Property: "http://s#title",
			SubjectClass: "http://s#Doc", ObjectLiteral: true,
		}},
	}
	base, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	found := base.Match(rdf.Term{}, rdf.NewIRI("http://s#title"), rdf.Term{})
	if len(found) != 1 || !found[0].O.IsLiteral() {
		t.Errorf("literal mapping = %v", found)
	}
}

func TestVirtualBaseErrors(t *testing.T) {
	v := &swim.VirtualBase{
		Schema:      gen.PaperSchema(),
		RelMappings: []swim.RelationalMapping{{Table: "nope", Property: gen.N1("prop1")}},
	}
	if _, err := v.Materialize(); err == nil {
		t.Error("mapping without DB accepted")
	}
	v.DB = swim.NewRelationalDB()
	if _, err := v.Materialize(); err == nil {
		t.Error("mapping onto missing table accepted")
	}
	v2 := &swim.VirtualBase{
		Schema:      gen.PaperSchema(),
		XMLMappings: []swim.XMLMapping{{Path: "x", Property: gen.N1("prop1")}},
	}
	if _, err := v2.Materialize(); err == nil {
		t.Error("XML mapping without store accepted")
	}
}
