package exec_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sqpeer/internal/exec"
	"sqpeer/internal/gen"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/stats"
)

func TestErrorTypesRender(t *testing.T) {
	cause := fmt.Errorf("socket reset")
	pf := &exec.PeerFailure{Peer: "P9", Err: cause}
	if !strings.Contains(pf.Error(), "P9") || !strings.Contains(pf.Error(), "socket reset") {
		t.Errorf("PeerFailure.Error = %q", pf.Error())
	}
	if !errors.Is(pf, cause) {
		t.Error("Unwrap broken")
	}
	he := &exec.HoleError{PatternIDs: []string{"Q2"}}
	if !strings.Contains(he.Error(), "Q2") {
		t.Errorf("HoleError.Error = %q", he.Error())
	}
	// Wrapped failures are still found by the adaptation loop.
	wrapped := fmt.Errorf("outer: %w", pf)
	var back *exec.PeerFailure
	if !errors.As(wrapped, &back) || back.Peer != "P9" {
		t.Error("wrapped PeerFailure lost")
	}
}

func TestResetMetrics(t *testing.T) {
	peers, _ := paperSystem(t, 2)
	p1 := peers["P1"]
	if _, err := p1.Ask(gen.PaperRQL); err != nil {
		t.Fatal(err)
	}
	if p1.Engine.Metrics().ChannelsOpened == 0 {
		t.Fatal("no activity recorded")
	}
	p1.Engine.ResetMetrics()
	if m := p1.Engine.Metrics(); m != (exec.Metrics{}) {
		t.Errorf("metrics after reset = %+v", m)
	}
}

func TestHybridShippingPlacesJoinRemotely(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Policy = optimizer.HybridShipping
	// Make P2's data huge in P1's catalog so the cost model pushes the
	// join to P2, and the P1–P3 link slow so data shipping loses.
	p1.Catalog.PutLink("P1", "P3", stats.Link{LatencyMS: 900, BandwidthKBps: 5})
	q := gen.PaperQuery()
	j := plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3"))
	rows, err := p1.Engine.Execute(&plan.Plan{Root: j, Query: q})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rows.Len() != 3 {
		t.Errorf("hybrid-shipped join = %d rows", rows.Len())
	}
}

func TestQueryShippingFallsBackWithoutRemoteScans(t *testing.T) {
	peers, _ := paperSystem(t, 2)
	p1 := peers["P1"]
	p1.Engine.Policy = optimizer.QueryShipping
	p1.Engine.Cost = nil // no statistics: positional fallback
	q := gen.PaperQuery()
	// Both scans local: the join must stay at P1.
	j := plan.NewJoin(plan.NewScan(q.Patterns[0], "P1"), plan.NewScan(q.Patterns[1], "P1"))
	rows, err := p1.Engine.Execute(&plan.Plan{Root: j, Query: q})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rows.Len() != 2 {
		t.Errorf("local join under query shipping = %d rows", rows.Len())
	}
	if m := p1.Engine.Metrics(); m.SubplansShipped != 0 {
		t.Errorf("local-only plan shipped %d subplans", m.SubplansShipped)
	}
}

func TestSubplanMemoization(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	q := gen.PaperQuery()
	// The same remote scan appears under two union branches: it must be
	// shipped once.
	u := plan.NewUnion(
		plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3")),
		plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P1")),
	)
	if _, err := p1.Engine.Execute(&plan.Plan{Root: u, Query: q}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	m := p1.Engine.Metrics()
	// Q1@P2 memoized across branches; Q2@P3 shipped once: 2 subplans.
	if m.SubplansShipped != 2 {
		t.Errorf("SubplansShipped = %d, want 2 (memoized)", m.SubplansShipped)
	}
}

func TestRemoteFailurePacketSurfacesAsPeerFailure(t *testing.T) {
	peers, _ := paperSystem(t, 2)
	p1 := peers["P1"]
	p1.Engine.Router = nil // disable adaptation to observe the raw error
	q := gen.PaperQuery()
	// Ship P2 a subplan whose own remote leg (P3) is dead: P2 reports a
	// Failure packet, which P1 sees as a peer failure.
	peers["P2"].Net.Fail("P3")
	j := plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3"))
	// Force query shipping so the whole join goes to P2.
	p1.Engine.Policy = optimizer.QueryShipping
	_, err := p1.Engine.Execute(&plan.Plan{Root: j, Query: q})
	var pf *exec.PeerFailure
	if !errors.As(err, &pf) {
		t.Fatalf("want PeerFailure, got %v", err)
	}
}

func TestExecuteUnknownPlanQueryProjectionsNil(t *testing.T) {
	peers, _ := paperSystem(t, 2)
	p1 := peers["P1"]
	q := gen.PaperQuery()
	// Plans without projections return full rows.
	noProj := &pattern.QueryPattern{SchemaName: q.SchemaName, Patterns: q.Patterns}
	pl := &plan.Plan{Root: plan.NewScan(q.Patterns[0], "P1"), Query: noProj}
	rows, err := p1.Engine.Execute(pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Vars) != 2 {
		t.Errorf("unprojected vars = %v", rows.Vars)
	}
}
