package exec_test

import (
	"strings"
	"testing"

	"sqpeer/internal/admission"
	"sqpeer/internal/gen"
	"sqpeer/internal/peer"
)

// Mixed union branches in one query: Q1 answered completely via P2,
// while every peer covering Q2 is either dead (P3, P4) or shedding work
// at admission (P1). The three distinct Q2 failure causes must merge
// into ONE deduplicated Unanswered entry, and the Q1 rows still arrive.
func TestCompletenessMergeMixedBranches(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p0, err := peer.New(peer.Config{
		ID: "P0", Kind: peer.ClientPeer, Schema: gen.PaperSchema(),
		Parallelism: 1, MaxRetries: 1, AllowPartial: true, Quarantine: true,
	}, net)
	if err != nil {
		t.Fatalf("peer.New(P0): %v", err)
	}
	for _, p := range peers {
		p0.Learn(p.Advertisement())
	}

	// P1 (covers Q1 and Q2) rejects all incoming work: its controller is
	// saturated by one never-expiring lease. Rejections classify as
	// transient overload, so the root retries once, then migrates.
	p1ctl := admission.NewController(admission.Config{MaxConcurrent: 1, HoldMS: 1000})
	if err := p1ctl.AdmitWork(admission.QoS{Tenant: "squatter"}); err != nil {
		t.Fatalf("pre-saturating P1: %v", err)
	}
	peers["P1"].Engine.Admission = p1ctl
	// P3 and P4 (the other Q2 coverage) fail outright.
	net.Fail("P3")
	net.Fail("P4")

	res, err := p0.AskAnnotated(gen.PaperRQL)
	if err != nil {
		t.Fatalf("AskAnnotated: %v", err)
	}
	if res.Completeness.Complete {
		t.Fatal("Q2 unanswerable: result must be incomplete")
	}
	if res.Rows.Len() == 0 {
		t.Error("Q1 is answerable via P2: partial answer should carry rows")
	}
	// Dedup: three Q2 branches failed three ways; one annotation entry.
	un := res.Completeness.Unanswered
	if len(un) != 1 || un[0].PatternID != "Q2" {
		t.Fatalf("Unanswered = %+v, want exactly one deduplicated Q2 entry", un)
	}
	if un[0].Reason == "" {
		t.Error("unanswered entry should carry a reason")
	}
	if m := peers["P1"].Engine.Metrics(); m.OverloadRejected == 0 {
		t.Error("P1 should have rejected work at admission")
	}
}

// Root-side priority shedding: with the root's own controller saturated
// past the low watermark, a low-priority query sheds every remote
// subplan into completeness holes. Unanswered comes back sorted by
// pattern id and deduplicated across the union branches (three branch
// sites per pattern, one entry per pattern).
func TestCompletenessShedBranchesSortedDeduped(t *testing.T) {
	peers, net := paperSystem(t, 3)
	ctl := admission.NewController(admission.Config{MaxConcurrent: 4, HoldMS: 1000})
	p0, err := peer.New(peer.Config{
		ID: "P0", Kind: peer.ClientPeer, Schema: gen.PaperSchema(),
		Parallelism: 1, AllowPartial: true, Admission: ctl,
	}, net)
	if err != nil {
		t.Fatalf("peer.New(P0): %v", err)
	}
	for _, p := range peers {
		p0.Learn(p.Advertisement())
	}
	// Occupancy 3 of 4: strictly above the low watermark (0.5*4 = 2).
	// The facade would reject a fresh Low query at this point, so drive
	// the engine directly — the shed path exists for exactly the query
	// that was admitted under the watermark and then overtaken by
	// higher-priority arrivals before its subplans dispatched.
	for i := 0; i < 3; i++ {
		if err := ctl.AdmitWork(admission.QoS{Tenant: "gold", Priority: admission.High}); err != nil {
			t.Fatalf("pre-load %d: %v", i, err)
		}
	}

	pr, err := p0.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	res, err := p0.Engine.ExecuteAnnotatedQoS(pr.Optimized, nil, admission.QoS{Tenant: "bronze", Priority: admission.Low})
	if err != nil {
		t.Fatalf("ExecuteAnnotatedQoS: %v", err)
	}
	if res.Completeness.Complete {
		t.Fatal("all branches shed: result must be incomplete")
	}
	un := res.Completeness.Unanswered
	if len(un) != 2 || un[0].PatternID != "Q1" || un[1].PatternID != "Q2" {
		t.Fatalf("Unanswered = %+v, want deduplicated [Q1 Q2] in sorted order", un)
	}
	for _, u := range un {
		if !strings.HasPrefix(u.Reason, "shed:") {
			t.Errorf("pattern %s reason %q should identify the shed", u.PatternID, u.Reason)
		}
	}
	m := p0.Engine.Metrics()
	if m.Shed == 0 {
		t.Error("expected shed subplans in metrics")
	}
	// The shed is visible in the ledger as its own outcome, and the
	// controller accounted it to the shedding tenant.
	shedEntries := 0
	for _, le := range p0.Engine.Ledger() {
		if le.Outcome == "shed" {
			shedEntries++
		}
	}
	if shedEntries == 0 {
		t.Error("ledger should record shed outcomes")
	}
	// High priority never sheds, even at full occupancy: the same query
	// asked as High (occupancy 3 < 4 admits it) completes fully.
	resHigh, err := p0.AskAnnotatedAs(gen.PaperRQL, admission.QoS{Tenant: "gold", Priority: admission.High})
	if err != nil {
		t.Fatalf("high-priority AskAnnotatedAs: %v", err)
	}
	if !resHigh.Completeness.Complete {
		t.Fatalf("high priority must not shed, got Unanswered %+v", resHigh.Completeness.Unanswered)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(resHigh.Rows, want) {
		t.Fatalf("high-priority answer diverged:\n got %v\nwant %v", resHigh.Rows.Sorted(), want.Sorted())
	}
}
