package exec_test

import (
	"runtime"
	"testing"
	"time"

	"sqpeer/internal/exec"
	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/routing"
)

// TestChaosSoak interleaves a seeded fault schedule — crashes/restarts,
// gray failure, flapping links, plus stochastic drop/duplicate/delay on
// every delivery — with concurrent in-flight executions, under -race via
// `make check`. P1 (the root) is never faulted and covers both query
// patterns itself, so every query must complete despite the chaos: via
// subplan migration, retry, quarantine-aware replanning, or in the worst
// case a plan collapsed onto P1 alone. The soak runs once per recovery
// mode — the default migrating engine and the NoMigrations full-restart
// ablation — so both recovery paths stay exercised under -race. A
// watchdog bounds each round so a wedged dispatch fails the test instead
// of hanging it, and goroutine counts are compared before/after to catch
// leaks.
func TestChaosSoak(t *testing.T) {
	t.Run("migrate", func(t *testing.T) { chaosSoak(t, 0) })
	t.Run("restart", func(t *testing.T) { chaosSoak(t, exec.NoMigrations) })
}

func chaosSoak(t *testing.T, maxMigrations int) {
	const (
		seed       = 20240805
		rounds     = 25
		concurrent = 3
	)
	peers, net := paperSystem(t, 2)
	p1 := peers["P1"]
	p1.Engine.DeadlineMS = 200
	p1.Channels.DeadlineMS = 200
	p1.Engine.MaxRetries = 2
	p1.Engine.MaxMigrations = maxMigrations
	p1.Engine.Health = routing.NewHealth(p1.Registry)

	inj := faults.NewInjector(seed, faults.Rates{
		Drop: 0.05, Duplicate: 0.05, DelaySpike: 0.05, SpikeMS: 300,
	})
	net.SetInjector(inj)
	volatile := []pattern.PeerID{"P2", "P3", "P4"}
	sched := faults.NewSchedule(seed, "P1", volatile, rounds, faults.ScheduleRates{
		Crash: 0.15, CrashLen: 1,
		Gray: 0.10, GrayLen: 1, GrayDelayMS: 1000,
		Flap: 0.10,
	})
	if len(sched.Events) == 0 {
		t.Fatal("schedule generated no fault events; chaos test is vacuous")
	}

	baseline := runtime.NumGoroutine()
	want := groundTruth(t, peers, gen.PaperRQL)
	successes, failures := 0, 0
	for round := 0; round < rounds; round++ {
		eff := sched.Apply(round, net, inj)
		for _, id := range eff.Restarted {
			p1.Learn(peers[id].Advertisement()) // re-advertise after restart
		}
		p1.Engine.Health.Tick()

		done := make(chan error, concurrent)
		for i := 0; i < concurrent; i++ {
			go func() {
				rows, err := p1.Ask(gen.PaperRQL)
				if err == nil && rows.Len() > want.Len() {
					t.Errorf("round %d: %d rows exceeds ground truth %d", round, rows.Len(), want.Len())
				}
				done <- err
			}()
		}
		for i := 0; i < concurrent; i++ {
			select {
			case err := <-done:
				if err == nil {
					successes++
				} else {
					failures++
					t.Logf("round %d: query failed: %v", round, err)
				}
			case <-time.After(60 * time.Second):
				t.Fatalf("round %d: watchdog expired — execution wedged", round)
			}
		}
	}
	if failures != 0 {
		t.Errorf("%d/%d chaos queries failed; P1 covers both patterns, all must succeed",
			failures, successes+failures)
	}

	m := p1.Engine.Metrics()
	t.Logf("recovery under chaos: retries=%d migrations=%d replans=%d resumes=%d",
		m.Retries, m.Migrations, m.Replans, m.Resumes)
	if m.Retries+m.Migrations+m.Replans == 0 {
		t.Error("soak exercised no recovery machinery; fault schedule is vacuous")
	}
	if maxMigrations == exec.NoMigrations && m.Migrations != 0 {
		t.Errorf("NoMigrations ablation still migrated %d times", m.Migrations)
	}

	// Goroutine accounting: executions join their branch goroutines
	// before returning, so the count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d now vs %d baseline\n%s", n, baseline,
			buf[:runtime.Stack(buf, true)])
	}
}
