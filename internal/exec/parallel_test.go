package exec_test

import (
	"sync"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/plan"
	"sqpeer/internal/rql"
)

// TestParallelExecutionDeterministic runs the Figure-3 plan at every
// parallelism level and requires byte-identical results: concurrent
// branch evaluation must not change what a query answers, only how fast.
func TestParallelExecutionDeterministic(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	for _, par := range []int{1, 2, 4, 8, 0} {
		p1.Engine.ResetMetrics()
		p1.Engine.Parallelism = par
		rows, err := p1.Engine.Execute(pr.Optimized)
		if err != nil {
			t.Fatalf("Execute(parallelism=%d): %v", par, err)
		}
		if !sameRows(rows, want) {
			t.Errorf("parallelism=%d diverged from ground truth:\n%s\nvs\n%s", par, rows, want)
		}
		// Still exactly one channel per contributing remote peer.
		if m := p1.Engine.Metrics(); m.ChannelsOpened != 3 {
			t.Errorf("parallelism=%d: ChannelsOpened = %d, want 3", par, m.ChannelsOpened)
		}
	}
}

// TestConcurrentExecutesOnSameEngine drives several Execute calls through
// one engine simultaneously (run with -race): per-execution state must be
// isolated, shared engine/channel/network state properly guarded, and
// every caller must get the full answer.
func TestConcurrentExecutesOnSameEngine(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	var wg sync.WaitGroup
	results := make([]*rql.ResultSet, 8)
	errs := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p1.Engine.Execute(pr.Optimized)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("Execute #%d: %v", i, errs[i])
		}
		if !sameRows(results[i], want) {
			t.Errorf("Execute #%d diverged from ground truth", i)
		}
	}
}

// TestParallelAdaptationOnPeerFailure re-runs the run-time-adaptation
// scenario with branch fan-out enabled: a peer failing mid-union must
// recover (migrating the failed subtree, or cancelling siblings and
// replanning) and still deliver the survivors' answer.
func TestParallelAdaptationOnPeerFailure(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 4
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	net.Fail("P4")
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute after P4 failure: %v", err)
	}
	if m := p1.Engine.Metrics(); m.Replans == 0 && m.Migrations == 0 {
		t.Error("no replan or migration recorded despite peer failure")
	}
	if got := rows.Project([]string{"X", "Y"}); got.Len() != 6 {
		t.Errorf("adapted answer = %d rows, want 6:\n%s", got.Len(), got)
	}
}

// TestParallelWideUnion stresses the pool with a union far wider than
// Parallelism: a 4-peer system answering a single-pattern query repeated
// under many union branches must still produce the sequential answer.
func TestParallelWideUnion(t *testing.T) {
	peers, _ := paperSystem(t, 5)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	// Widen the root artificially: union of several clones of the plan
	// root is semantically idempotent.
	wide := &plan.Plan{
		Root: &plan.Union{Inputs: []plan.Node{
			pr.Optimized.Root, pr.Optimized.Root, pr.Optimized.Root,
			pr.Optimized.Root, pr.Optimized.Root, pr.Optimized.Root,
		}},
		Query: pr.Optimized.Query,
	}
	for _, par := range []int{1, 3} {
		p1.Engine.Parallelism = par
		rows, err := p1.Engine.Execute(wide)
		if err != nil {
			t.Fatalf("Execute(wide, parallelism=%d): %v", par, err)
		}
		want := groundTruth(t, peers, gen.PaperRQL)
		if !sameRows(rows, want) {
			t.Errorf("wide union diverged at parallelism=%d", par)
		}
	}
}

// TestParallelismDefault documents the zero-value behaviour.
func TestParallelismDefault(t *testing.T) {
	peers, _ := paperSystem(t, 1)
	p1 := peers["P1"]
	if p1.Engine.Parallelism != 0 {
		t.Fatalf("fresh engine Parallelism = %d, want 0 (GOMAXPROCS at run time)", p1.Engine.Parallelism)
	}
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	if _, err := p1.Engine.Execute(pr.Optimized); err != nil {
		t.Fatalf("Execute with default parallelism: %v", err)
	}
}
