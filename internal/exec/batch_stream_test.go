package exec_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
)

// TestBatchStreamSurvivesReorderDuplication feeds the columnar data
// plane through the PR 4 adversarial wire: every chan.packet delivery is
// duplicated and half get delay spikes, while multi-frame batch streams
// (BatchSize=2 forces several frames per peer) carry the answer. The
// channel-layer dedup must suppress every replayed frame, so the answer
// matches ground truth exactly and no row is double-collected.
func TestBatchStreamSurvivesReorderDuplication(t *testing.T) {
	const seed = 20240805
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.BatchSize = 2
	inj := faults.NewInjector(seed, faults.Rates{Duplicate: 1, DelaySpike: 0.5, SpikeMS: 300})
	net.SetInjector(inj)

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute under duplication: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(rows, want) {
		t.Fatalf("batched answer diverged under duplication:\n got %v\nwant %v",
			rows.Sorted(), want.Sorted())
	}
	if inj.Stats().Duplicated == 0 {
		t.Fatal("injector duplicated nothing; the test is vacuous")
	}
	if dup := p1.Channels.Stats().PacketsDuplicate; dup == 0 {
		t.Error("expected the channel layer to have suppressed duplicated batch frames")
	}
}

// TestBatchResumeAtBatchBoundary kills one mid-stream batch frame and
// checks the retry resumes at the frame boundary: the checkpoint the
// root carries is the contiguous rows of the frames that made it
// (a multiple of BatchSize), the destination honors it, and the ledger
// reconciles exactly-once delivery of every row.
func TestBatchResumeAtBatchBoundary(t *testing.T) {
	const batchSize = 2
	peers, net := paperSystem(t, 4)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxRetries = 2
	p1.Engine.BatchSize = batchSize
	// Drop P4's second chan.packet: the first batch frame (batchSize rows)
	// reaches the root, the second dies on the wire.
	net.SetInjector(faults.NewScript(&faults.ScriptRule{
		From: "P4", Kind: "chan.packet", After: 1, Count: 1,
		Fault: network.Fault{Drop: true},
	}))

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute with one dropped frame: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(rows, want) {
		t.Fatalf("resumed batch answer diverged:\n got %v\nwant %v", rows.Sorted(), want.Sorted())
	}
	m := p1.Engine.Metrics()
	if m.Resumes == 0 {
		t.Fatalf("expected the retry to resume from the frame checkpoint, got %+v", m)
	}
	if m.RowsRetained == 0 || m.RowsRetained%batchSize != 0 {
		t.Errorf("retained prefix %d rows; want a positive multiple of the %d-row frame size",
			m.RowsRetained, batchSize)
	}
	// The ledger must account every P4 row exactly once across the
	// resumed dispatch: one "complete" entry whose row count equals the
	// full subplan answer (prefix + resumed remainder), flagged Resumed.
	resumed := false
	for _, ent := range p1.Engine.Ledger() {
		if ent.Outcome == "complete" && ent.Resumed {
			resumed = true
			if ent.Rows == 0 {
				t.Error("resumed ledger entry accounts zero rows")
			}
		}
	}
	if !resumed {
		t.Error("ledger records no resumed completion")
	}
}

// TestBatchAndRowWireAnswersIdentical is the ablation equality proof: the
// same seeded system answers the same query on both data planes, and the
// rendered answers must be byte-identical.
func TestBatchAndRowWireAnswersIdentical(t *testing.T) {
	run := func(rowWire bool) string {
		peers, _ := paperSystem(t, 3)
		p1 := peers["P1"]
		p1.Engine.RowWire = rowWire
		p1.Engine.BatchSize = 2
		for _, p := range peers {
			p.Engine.RowWire = rowWire
		}
		pr, err := p1.PlanQuery(gen.PaperQuery())
		if err != nil {
			t.Fatalf("PlanQuery: %v", err)
		}
		rows, err := p1.Engine.Execute(pr.Optimized)
		if err != nil {
			t.Fatalf("Execute (RowWire=%v): %v", rowWire, err)
		}
		return fmt.Sprint(rows.Sorted())
	}
	if batch, row := run(false), run(true); batch != row {
		t.Fatalf("data planes disagree:\nbatch: %s\nrow:   %s", batch, row)
	}
}

// TestMixedModePeersInteroperate runs a columnar root against row-wire
// destinations and vice versa: the packet Enc field lets each side decode
// the other's Results payloads, so rolling a fleet between the two wire
// formats never corrupts answers.
func TestMixedModePeersInteroperate(t *testing.T) {
	for _, tc := range []struct {
		name              string
		rootRow, destsRow bool
	}{
		{"batch-root/row-dests", false, true},
		{"row-root/batch-dests", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			peers, _ := paperSystem(t, 3)
			p1 := peers["P1"]
			for id, p := range peers {
				if id == "P1" {
					p.Engine.RowWire = tc.rootRow
				} else {
					p.Engine.RowWire = tc.destsRow
				}
			}
			pr, err := p1.PlanQuery(gen.PaperQuery())
			if err != nil {
				t.Fatalf("PlanQuery: %v", err)
			}
			rows, err := p1.Engine.Execute(pr.Optimized)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			want := groundTruth(t, peers, gen.PaperRQL)
			if !sameRows(rows, want) {
				t.Fatalf("mixed-mode answer diverged:\n got %v\nwant %v", rows.Sorted(), want.Sorted())
			}
		})
	}
}

// TestBackpressureWindowBoundsStream sanity-checks the windowed streamer
// on a result far larger than the window: many frames, tiny window, and
// the answer still arrives complete and exactly once.
func TestBackpressureWindowBoundsStream(t *testing.T) {
	peers, _ := paperSystem(t, 8)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.BatchSize = 1 // one frame per row: stream length >> window
	p1.Engine.WindowSize = 2
	for _, p := range peers {
		p.Engine.BatchSize = 1
		p.Engine.WindowSize = 2
	}
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(rows, want) {
		t.Fatalf("windowed stream diverged:\n got %v\nwant %v", rows.Sorted(), want.Sorted())
	}
	if m := p1.Engine.Metrics(); m.Retries != 0 || m.Replans != 0 {
		t.Errorf("fault-free windowed run should not retry or replan: %+v", m)
	}
}
