package exec_test

import (
	"errors"
	"fmt"
	"testing"

	"sqpeer/internal/exec"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// paperSystem builds the Figure-2 peers (P1..P4 with their bases) on one
// network, everyone knowing everyone's advertisement, and returns them.
func paperSystem(t testing.TB, pairs int) (map[pattern.PeerID]*peer.Peer, *network.Network) {
	t.Helper()
	schema := gen.PaperSchema()
	bases := gen.PaperBases(pairs)
	net := network.New()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id]}, net)
		if err != nil {
			t.Fatalf("peer.New(%s): %v", id, err)
		}
		peers[id] = p
	}
	// Full knowledge: everyone learns everyone.
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	return peers, net
}

// groundTruth evaluates the query centrally over the union of all bases.
func groundTruth(t testing.TB, peers map[pattern.PeerID]*peer.Peer, rqlText string) *rql.ResultSet {
	t.Helper()
	merged := rdf.NewBase()
	for _, p := range peers {
		for _, tr := range p.Base.Triples() {
			merged.Add(tr)
		}
	}
	c, err := rql.ParseAndAnalyze(rqlText, gen.PaperSchema())
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	rs, err := rql.Eval(c, merged)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return rs
}

func sameRows(a, b *rql.ResultSet) bool {
	return fmt.Sprint(a.Sorted()) == fmt.Sprint(b.Sorted())
}

// TestExecuteFigure3Plan runs the paper's Figure-3 scenario end to end:
// P1 generates the plan from the Figure-2 annotation and executes it,
// deploying one channel per contributing peer.
func TestExecuteFigure3Plan(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	if pr.Raw.String() != "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))" {
		t.Fatalf("raw plan = %s", pr.Raw)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Per join key y_i there are 3 X resources (from P1, P2, P4); the
	// projection keeps (X, Y), so 3 pairs per i and 3 i values.
	if rows.Len() != 9 {
		t.Fatalf("distributed answer = %d rows, want 9:\n%s", rows.Len(), rows)
	}
	// One channel per distinct remote peer (P2, P3, P4).
	m := p1.Engine.Metrics()
	if m.ChannelsOpened != 3 {
		t.Errorf("ChannelsOpened = %d, want 3 (one per remote peer)", m.ChannelsOpened)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(rows, want) {
		t.Errorf("distributed ≠ centralized:\n%s\nvs\n%s", rows, want)
	}
}

// TestExecutionEquivalentAcrossPolicies: all three shipping policies must
// produce the same answer, differing only in where joins run.
func TestExecutionEquivalentAcrossPolicies(t *testing.T) {
	for _, policy := range []optimizer.ShippingPolicy{
		optimizer.DataShipping, optimizer.QueryShipping, optimizer.HybridShipping,
	} {
		peers, _ := paperSystem(t, 4)
		p1 := peers["P1"]
		p1.Engine.Policy = policy
		rows, err := p1.Ask(gen.PaperRQL)
		if err != nil {
			t.Fatalf("%s: Ask: %v", policy, err)
		}
		want := groundTruth(t, peers, gen.PaperRQL)
		if !sameRows(rows, want) {
			t.Errorf("%s: wrong answer:\n%s\nvs\n%s", policy, rows, want)
		}
	}
}

// TestOptimizedPlanPreservesAnswers: Figure 4's rewrites must not change
// the result (algebraic equivalence).
func TestOptimizedPlanPreservesAnswers(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	raw, err := p1.Engine.Execute(pr.Raw)
	if err != nil {
		t.Fatalf("Execute raw: %v", err)
	}
	opt, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute optimized: %v", err)
	}
	if !sameRows(raw.Project([]string{"X", "Y"}), opt.Project([]string{"X", "Y"})) {
		t.Errorf("rewrites changed answers:\nraw: %s\nopt: %s", raw, opt)
	}
}

func TestExecuteRejectsHoles(t *testing.T) {
	peers, _ := paperSystem(t, 2)
	p1 := peers["P1"]
	q := gen.PaperQuery()
	ann := pattern.NewAnnotated(q)
	ann.Annotate("Q1", "P2", nil)
	partial, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	_, err = p1.Engine.Execute(partial)
	var he *exec.HoleError
	if !errors.As(err, &he) {
		t.Fatalf("want HoleError, got %v", err)
	}
	if len(he.PatternIDs) != 1 || he.PatternIDs[0] != "Q2" {
		t.Errorf("HoleError = %v", he)
	}
}

// TestRunTimeAdaptationOnPeerFailure reproduces CLAIM-ADAPT: P4 dies
// after routing; execution recovers around it — surgically migrating the
// failed subtree when an alternate peer covers it, falling back to the
// ubQL discard + re-route restart otherwise — and completes with the
// surviving peers' data.
func TestRunTimeAdaptationOnPeerFailure(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	net.Fail("P4")
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute after P4 failure: %v", err)
	}
	m := p1.Engine.Metrics()
	if m.Replans == 0 && m.Migrations == 0 {
		t.Error("no replan or migration recorded despite peer failure")
	}
	// Without P4, X comes only from P1 and P2: 2 per i × 3 i = 6 rows.
	got := rows.Project([]string{"X", "Y"})
	if got.Len() != 6 {
		t.Errorf("adapted answer = %d rows, want 6:\n%s", got.Len(), got)
	}
	// The failed peer must be forgotten by the router.
	if _, known := p1.Registry.Get("P4"); known {
		t.Error("failed peer still in registry")
	}
}

func TestAdaptationFailsWithoutAlternatives(t *testing.T) {
	peers, net := paperSystem(t, 2)
	p1 := peers["P1"]
	// Strip P1's own prop2 and P4 from knowledge so only P3 answers Q2.
	p1.Registry.Unregister("P4")
	p1.Registry.Unregister("P1")
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	net.Fail("P3")
	_, err = p1.Engine.Execute(pr.Optimized)
	if err == nil {
		t.Fatal("execution succeeded despite unrecoverable failure")
	}
}

func TestMergedScanExecutesLocalJoin(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p4 := peers["P4"]
	q := gen.PaperQuery()
	merged := &plan.Plan{
		Root:  &plan.Scan{Patterns: q.Patterns, Peer: "P4"},
		Query: q,
	}
	rows, err := p4.Engine.Execute(merged)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// P4's prop4 pairs join its prop2 pairs on y_i: 3 rows.
	if rows.Len() != 3 {
		t.Errorf("merged scan = %d rows, want 3:\n%s", rows.Len(), rows)
	}
}

func TestRemoteMergedScan(t *testing.T) {
	peers, _ := paperSystem(t, 2)
	p1 := peers["P1"]
	q := gen.PaperQuery()
	remote := &plan.Plan{
		Root:  &plan.Scan{Patterns: q.Patterns, Peer: "P4"},
		Query: q,
	}
	rows, err := p1.Engine.Execute(remote)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rows.Len() != 2 {
		t.Errorf("remote merged scan = %d rows, want 2:\n%s", rows.Len(), rows)
	}
	if m := p1.Engine.Metrics(); m.SubplansShipped != 1 || m.RowsShipped != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestQueryShippingShipsJoin(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Policy = optimizer.QueryShipping
	q := gen.PaperQuery()
	// Plan with both scans remote: the join itself must be shipped.
	j := plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3"))
	rows, err := p1.Engine.Execute(&plan.Plan{Root: j, Query: q})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// P2's prop1 objects are shared y_i; P3's prop2 subjects are y_i: 3
	// joined rows projected to (X, Y).
	if got := rows.Len(); got != 3 {
		t.Errorf("query-shipped join = %d rows:\n%s", got, rows)
	}
	// The join was shipped: exactly one subplan left P1 directly.
	m := p1.Engine.Metrics()
	if m.SubplansShipped != 1 {
		t.Errorf("SubplansShipped = %d, want 1 (the whole join)", m.SubplansShipped)
	}
}

func TestExecuteEmptyAnswer(t *testing.T) {
	peers, _ := paperSystem(t, 0) // empty bases
	p1 := peers["P1"]
	reg := p1.Registry
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		as := gen.PaperActiveSchemas()[id]
		reg.Register(id, as)
	}
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rows.Len() != 0 {
		t.Errorf("empty bases produced %d rows", rows.Len())
	}
}

func TestResultStreamingBatches(t *testing.T) {
	peers, net := paperSystem(t, 7)
	p1, p2 := peers["P1"], peers["P2"]
	p2.Engine.BatchSize = 2 // P2 answers subplans in 2-row packets
	q := gen.PaperQuery()
	remote := &plan.Plan{Root: plan.NewScan(q.Patterns[0], "P2"), Query: q}
	net.ResetCounters()
	rows, err := p1.Engine.Execute(remote)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rows.Len() != 7 {
		t.Fatalf("rows = %d", rows.Len())
	}
	// 7 rows in 2-row batches = 4 Results packets + 1 Stats + 1 Done.
	if got := net.Counters().PerKind["chan.packet"]; got != 6 {
		t.Errorf("chan.packet count = %d, want 6 (4 batches + stats + done)", got)
	}
	// The piggybacked statistics refreshed P1's catalog entry for P2.
	if p1.Catalog.Card("P2", gen.N1("prop1")) != 7 {
		t.Errorf("piggybacked stats not applied: card=%d", p1.Catalog.Card("P2", gen.N1("prop1")))
	}
}

func TestResultStreamingEmptySet(t *testing.T) {
	peers, _ := paperSystem(t, 0)
	p1 := peers["P1"]
	q := gen.PaperQuery()
	remote := &plan.Plan{Root: plan.NewScan(q.Patterns[0], "P2"), Query: q}
	rows, err := p1.Engine.Execute(remote)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rows.Len() != 0 {
		t.Errorf("rows = %d", rows.Len())
	}
}
