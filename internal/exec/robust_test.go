package exec_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sqpeer/internal/exec"
	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/routing"
)

// scriptInjector drops the next N deliveries of given message kinds —
// a hand-steered fault source for exercising exact retry paths.
type scriptInjector struct {
	mu    sync.Mutex
	drops map[string]int
}

func (si *scriptInjector) Intercept(m network.Message) network.Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.drops[m.Kind] > 0 {
		si.drops[m.Kind]--
		return network.Fault{Drop: true}
	}
	return network.Fault{}
}

// A dropped subplan dispatch is transient: with retries configured the
// engine re-dispatches (over a fresh channel) instead of replanning, and
// the answer is identical to the fault-free run.
func TestRetryRecoversDroppedDispatch(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxRetries = 2
	net.SetInjector(&scriptInjector{drops: map[string]int{"exec.subplan": 1}})

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute with one dropped dispatch: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(rows, want) {
		t.Fatalf("retried answer diverged:\n got %v\nwant %v", rows.Sorted(), want.Sorted())
	}
	m := p1.Engine.Metrics()
	if m.Retries == 0 {
		t.Error("expected at least one retry")
	}
	if m.BackoffMS <= 0 {
		t.Error("retry should charge backoff to the logical clock")
	}
	if m.Replans != 0 {
		t.Errorf("transient drop must not replan, got %d replans", m.Replans)
	}
}

// Without retries (the historical default) the same drop goes straight
// to the recovery path — now a surgical subtree migration, with replan
// as the fallback.
func TestNoRetriesByDefault(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	net.SetInjector(&scriptInjector{drops: map[string]int{"exec.subplan": 1}})

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	if _, err := p1.Engine.Execute(pr.Optimized); err != nil {
		t.Fatalf("Execute should recover via replanning: %v", err)
	}
	m := p1.Engine.Metrics()
	if m.Retries != 0 {
		t.Errorf("MaxRetries=0 must not retry, got %d", m.Retries)
	}
	if m.Replans == 0 && m.Migrations == 0 {
		t.Error("expected the drop to trigger a migration or replan")
	}
}

// A gray-failed peer (responding, but slower than the deadline) must
// surface as a peer failure and be recovered around instead of hanging.
func TestDeadlineUnwedgesGrayPeer(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.DeadlineMS = 100
	p1.Channels.DeadlineMS = 100
	p1.Engine.MaxRetries = 1
	inj := faults.NewInjector(1, faults.Rates{})
	inj.SetGray("P4", 500)
	net.SetInjector(inj)

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute around gray peer: %v", err)
	}
	if rows.Len() == 0 {
		t.Fatal("expected rows from the remaining peers")
	}
	if _, ok := p1.Registry.Get("P4"); ok {
		t.Error("gray P4 should have been dropped from routing (no health tracker)")
	}
	if m := p1.Engine.Metrics(); (m.Replans == 0 && m.Migrations == 0) || m.Retries == 0 {
		t.Errorf("expected retry then migration or replan, got %+v", m)
	}
}

// With a health tracker the replan path quarantines instead of
// forgetting: the advertisement survives, routing excludes the peer, and
// after the cool-down the peer is routable again.
func TestFailureQuarantinesWithHealthTracker(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	h := routing.NewHealth(p1.Registry)
	p1.Engine.Health = h
	net.Fail("P4")

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	if _, err := p1.Engine.Execute(pr.Optimized); err != nil {
		t.Fatalf("Execute around failed peer: %v", err)
	}
	if _, ok := p1.Registry.Get("P4"); !ok {
		t.Fatal("quarantine must keep the advertisement registered")
	}
	if !p1.Registry.IsQuarantined("P4") {
		t.Fatal("failed P4 should be quarantined")
	}
	ann := p1.Router.Route(gen.PaperQuery())
	if strings.Contains(fmt.Sprint(ann.PeersFor("Q1")), "P4") {
		t.Error("routing must exclude the quarantined peer")
	}

	// Cool-down (default 2 ticks) lifts the quarantine into probation.
	net.Recover("P4")
	h.Tick()
	lifted := h.Tick()
	if fmt.Sprint(lifted) != "[P4]" {
		t.Fatalf("expected P4 reinstated after cool-down, got %v", lifted)
	}
	ann = p1.Router.Route(gen.PaperQuery())
	if !strings.Contains(fmt.Sprint(ann.PeersFor("Q1")), "P4") {
		t.Error("reinstated peer should route again")
	}
}

// MaxReplans sentinel: the zero value keeps the default of 3, NoReplans
// disables adaptation entirely.
func TestNoReplansSentinel(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxReplans = exec.NoReplans
	peers["P4"].Net.Fail("P4")

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	_, err = p1.Engine.Execute(pr.Optimized)
	if err == nil {
		t.Fatal("NoReplans must surface the failure instead of adapting")
	}
	var pf *exec.PeerFailure
	if pf, _ = failurePeer(err); pf == nil || pf.Peer != "P4" {
		t.Fatalf("want *PeerFailure for P4, got %v", err)
	}
	if m := p1.Engine.Metrics(); m.Replans != 0 {
		t.Errorf("NoReplans performed %d replans", m.Replans)
	}
}

func failurePeer(err error) (*exec.PeerFailure, bool) {
	for e := err; e != nil; {
		if pf, ok := e.(*exec.PeerFailure); ok {
			return pf, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		e = u.Unwrap()
	}
	return nil, false
}

// Graceful degradation: when every peer covering one pattern is gone,
// AllowPartial yields the answerable half with a completeness annotation
// instead of an error.
func TestPartialAnswerWhenPatternUnanswerable(t *testing.T) {
	peers, net := paperSystem(t, 3)
	// P0 is a client-like root with an empty base: it contributes nothing
	// itself, so patterns really can become unanswerable.
	p0, err := peer.New(peer.Config{
		ID: "P0", Kind: peer.ClientPeer, Schema: gen.PaperSchema(),
		Parallelism: 1, MaxRetries: 1, AllowPartial: true, Quarantine: true,
	}, net)
	if err != nil {
		t.Fatalf("peer.New(P0): %v", err)
	}
	for _, p := range peers {
		p0.Learn(p.Advertisement())
	}
	// Q2 (prop2) is covered by P1, P3, P4; kill all three. Q1 (prop1)
	// stays answerable via P2.
	for _, id := range []pattern.PeerID{"P1", "P3", "P4"} {
		net.Fail(id)
	}
	res, err := p0.AskAnnotated(gen.PaperRQL)
	if err != nil {
		t.Fatalf("AskAnnotated: %v", err)
	}
	if res.Completeness.Complete {
		t.Fatal("answer with Q2 unanswerable must be marked incomplete")
	}
	found := false
	for _, u := range res.Completeness.Unanswered {
		if u.PatternID == "Q2" {
			found = true
			if u.Reason == "" {
				t.Error("unanswered pattern should carry a reason")
			}
		}
	}
	if !found {
		t.Fatalf("Q2 should be listed unanswered, got %+v", res.Completeness.Unanswered)
	}
	// The join over the remaining pattern degenerates to Q1's rows at P2,
	// projected to (X, Y): still useful, explicitly partial.
	if res.Rows.Len() == 0 {
		t.Error("partial answer should still carry Q1's rows")
	}
	if m := p0.Engine.Metrics(); m.PartialAnswers != 1 {
		t.Errorf("PartialAnswers = %d, want 1", m.PartialAnswers)
	}
	// Without AllowPartial the same situation is an error (holes cannot
	// be filled), preserving the strict contract.
	p0.Engine.ResetMetrics()
	p0.Engine.AllowPartial = false
	for _, p := range peers {
		p0.Learn(p.Advertisement()) // re-learn; quarantine still applies
	}
	if _, err := p0.Ask(gen.PaperRQL); err == nil {
		t.Fatal("strict mode must fail when a pattern is unanswerable")
	}
}

// The throughput monitor is the paper's replan trigger: peers streaming
// below the floor are treated like failed peers — quarantined/forgotten
// and replanned around — without any delivery error occurring.
func TestThroughputMonitorTriggersReplan(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	// Floor far above what any remote streams: every remote is "slow".
	p1.Engine.Throughput = optimizer.NewThroughputMonitor(1000)

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	m := p1.Engine.Metrics()
	if m.Replans == 0 {
		t.Fatal("flagged channels should have triggered a replan")
	}
	// After replanning around every remote, P1 answers from its own base.
	for _, id := range []pattern.PeerID{"P2", "P3", "P4"} {
		if _, ok := p1.Registry.Get(id); ok {
			t.Errorf("slow peer %s should have been dropped from routing", id)
		}
	}
	if rows.Len() == 0 {
		t.Error("local-only answer should still have rows")
	}
}
