package exec_test

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqpeer/internal/admission"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
)

// TestOverloadSoak hammers an admission-controlled root with concurrent
// multi-tenant queries — the true-concurrency counterpart of the
// deterministic CLAIM-OVERLOAD harness, run under -race via `make
// overload`. Controllers run in explicit-Done mode (HoldMS = 0):
// occupancy is an inflight count released when the work finishes, not a
// lease clock, so a lost Done shows up as occupancy that never drains.
// The soak checks the failure modes admission must not introduce:
// wedged dispatches (per-round watchdog), goroutine leaks, occupancy
// that fails to drain back to zero, and lost work — every ask must
// resolve to a full answer, a completeness-annotated partial, or a
// typed transient OverloadError, never a bare failure.
func TestOverloadSoak(t *testing.T) {
	rounds, concurrent := 30, 8
	if testing.Short() {
		rounds = 6
	}
	peers, net := paperSystem(t, 2)
	// Servers admit at most two subplans at a time, priority-watermarked:
	// under eight concurrent fan-outs they reject constantly, exercising
	// the retry/migrate/shed ladder from every worker at once.
	for _, p := range peers {
		p.Engine.Admission = admission.NewController(admission.Config{
			MaxConcurrent: 2, Clock: net.NowMS,
		})
	}
	rootCtl := admission.NewController(admission.Config{
		RatePerSec: 1000, Burst: 64, MaxConcurrent: 4, Clock: net.NowMS,
	})
	p0, err := peer.New(peer.Config{
		ID: "P0", Kind: peer.ClientPeer, Schema: gen.PaperSchema(),
		Parallelism: 2, DeadlineMS: 300, MaxRetries: 2,
		AllowPartial: true, Quarantine: true,
		Admission: rootCtl,
	}, net)
	if err != nil {
		t.Fatalf("peer.New(P0): %v", err)
	}
	for _, p := range peers {
		p0.Learn(p.Advertisement())
	}

	// Worker i's tenant: two gold, two silver, four bronze — enough Low
	// traffic that the root's 0.5 watermark (2 of 4 slots) bites.
	tenantOf := func(i int) admission.QoS {
		switch {
		case i < 2:
			return admission.QoS{Tenant: "gold", Priority: admission.High}
		case i < 4:
			return admission.QoS{Tenant: "silver", Priority: admission.Normal}
		default:
			return admission.QoS{Tenant: "bronze", Priority: admission.Low}
		}
	}

	baseline := runtime.NumGoroutine()
	var full, partial, rejected, bare atomic.Int64
	for round := 0; round < rounds; round++ {
		p0.Health.Tick()
		var wg sync.WaitGroup
		for i := 0; i < concurrent; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := p0.AskAnnotatedAs(gen.PaperRQL, tenantOf(i))
				switch {
				case err == nil && res.Completeness.Complete:
					full.Add(1)
				case err == nil:
					partial.Add(1)
					for _, u := range res.Completeness.Unanswered {
						if u.Reason == "" {
							t.Errorf("round %d: hole without a reason: %+v", round, u)
						}
					}
				default:
					var oe *admission.OverloadError
					if !errors.As(err, &oe) {
						bare.Add(1)
						t.Errorf("round %d: bare failure (not an OverloadError): %v", round, err)
						return
					}
					if !network.Transient(err) {
						t.Errorf("round %d: OverloadError not classified transient: %v", round, err)
					}
					if oe.RetryAfterMS < 0 {
						t.Errorf("round %d: negative retry-after hint: %v", round, err)
					}
					rejected.Add(1)
				}
			}(i)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<16)
			t.Fatalf("round %d: watchdog expired — admission wedged the dispatch\n%s",
				round, buf[:runtime.Stack(buf, true)])
		}
	}

	t.Logf("soak: full=%d partial=%d rejected=%d bare=%d shed=%d migrations=%d hints=%d serverRejects=%d",
		full.Load(), partial.Load(), rejected.Load(), bare.Load(),
		p0.Engine.Metrics().Shed, p0.Engine.Metrics().Migrations,
		p0.Engine.Metrics().RetryAfterHonored, serverRejects(peers))
	if got := full.Load() + partial.Load() + rejected.Load(); got != int64(rounds*concurrent) {
		t.Errorf("accounted %d of %d asks; the rest vanished", got, rounds*concurrent)
	}
	if full.Load() == 0 {
		t.Error("nothing completed: overload geometry starved the soak entirely")
	}
	if rejected.Load() == 0 && p0.Engine.Metrics().Shed == 0 && serverRejects(peers) == 0 {
		t.Error("no admission machinery fired: the soak is vacuous")
	}

	// Explicit-Done mode: when the dust settles every inflight count must
	// have been released, or some path lost its Done.
	if occ := rootCtl.Occupancy(); occ != 0 {
		t.Errorf("root occupancy did not drain: %d leases still held", occ)
	}
	for id, p := range peers {
		if occ := p.Engine.Admission.Occupancy(); occ != 0 {
			t.Errorf("%s occupancy did not drain: %d still held", id, occ)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d now vs %d baseline\n%s", n, baseline,
			buf[:runtime.Stack(buf, true)])
	}
}

func serverRejects(peers map[pattern.PeerID]*peer.Peer) int {
	n := 0
	for _, p := range peers {
		n += p.Engine.Metrics().OverloadRejected
	}
	return n
}
