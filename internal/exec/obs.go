package exec

import "sqpeer/internal/obs"

// CollectObs publishes the engine's execution counters into an obs
// gather under the unified naming scheme. Intended to be called from a
// registered snapshot-time collector against a Metrics copy (the
// Engine.Metrics() accessor returns one), so no engine lock is held
// while the registry gathers.
func (m Metrics) CollectObs(g *obs.Gather, labels ...obs.Label) {
	g.Count("exec_channels_opened_total", float64(m.ChannelsOpened), labels...)
	g.Count("exec_subplans_shipped_total", float64(m.SubplansShipped), labels...)
	g.Count("exec_rows_shipped_total", float64(m.RowsShipped), labels...)
	g.Count("exec_bytes_shipped_total", float64(m.BytesShipped), labels...)
	g.Count("exec_replans_total", float64(m.Replans), labels...)
	g.Count("exec_local_scans_total", float64(m.LocalScans), labels...)
	g.Count("exec_retries_total", float64(m.Retries), labels...)
	g.Count("exec_backoff_ms_total", m.BackoffMS, labels...)
	g.Count("exec_partial_answers_total", float64(m.PartialAnswers), labels...)
	g.Count("exec_migrations_total", float64(m.Migrations), labels...)
	g.Count("exec_holes_filled_total", float64(m.HolesFilled), labels...)
	g.Count("exec_plan_changes_total", float64(m.PlanChanges), labels...)
	g.Count("exec_resumes_total", float64(m.Resumes), labels...)
	g.Count("exec_rows_retained_total", float64(m.RowsRetained), labels...)
	g.Count("exec_rows_refetched_total", float64(m.RowsRefetched), labels...)
	g.Count("exec_rows_discarded_total", float64(m.RowsDiscarded), labels...)
	g.Count("exec_shed_total", float64(m.Shed), labels...)
	g.Count("exec_overload_rejected_total", float64(m.OverloadRejected), labels...)
	g.Count("exec_retry_after_honored_total", float64(m.RetryAfterHonored), labels...)
}
