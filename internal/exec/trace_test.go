package exec_test

import (
	"bytes"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
)

// tracedPaperSystem is paperSystem with a tracer on P1 only and one
// shared registry: remote peers must appear in P1's trace purely through
// channel propagation.
func tracedPaperSystem(t testing.TB, pairs int) (map[pattern.PeerID]*peer.Peer, *network.Network, *obs.Tracer, *obs.Registry) {
	t.Helper()
	schema := gen.PaperSchema()
	bases := gen.PaperBases(pairs)
	net := network.New()
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		cfg := peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id], Obs: reg}
		if id == "P1" {
			cfg.Tracer = tracer
		}
		p, err := peer.New(cfg, net)
		if err != nil {
			t.Fatalf("peer.New(%s): %v", id, err)
		}
		peers[id] = p
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	return peers, net, tracer, reg
}

func tracedAskJSONL(t *testing.T) []byte {
	t.Helper()
	peers, _, tracer, _ := tracedPaperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	if _, err := p1.Ask(gen.PaperRQL); err != nil {
		t.Fatalf("traced ask: %v", err)
	}
	return tracer.JSONL()
}

// Two fresh same-scenario runs must export byte-identical span listings:
// the trace is a function of the plan and the simulated network alone.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	a, b := tracedAskJSONL(t), tracedAskJSONL(t)
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-scenario traces differ:\nrun1:\n%s\nrun2:\n%s", a, b)
	}
}

// Only P1 owns a tracer, yet the spans of every peer that executed a
// subplan must appear in P1's trace, grafted under the dispatch that
// shipped the work — and the grafted tree must keep attribution exact.
func TestCrossPeerSpanPropagation(t *testing.T) {
	peers, _, tracer, _ := tracedPaperSystem(t, 3)
	p1 := peers["P1"]
	if _, err := p1.Ask(gen.PaperRQL); err != nil {
		t.Fatalf("traced ask: %v", err)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	remotePeers := map[string]bool{}
	for _, es := range traces[0].Layout() {
		if es.Kind == obs.KindRemote && es.Peer != "P1" {
			remotePeers[es.Peer] = true
		}
	}
	for _, want := range []string{"P2", "P3", "P4"} {
		if !remotePeers[want] {
			t.Errorf("no remote span from %s in P1's trace (got %v)", want, remotePeers)
		}
	}
	att := obs.Analyze(traces[0], 2)
	if att == nil {
		t.Fatal("no attribution")
	}
	if err := att.Check(); err != nil {
		t.Fatalf("attribution invariants: %v", err)
	}
	if len(att.Leaves) == 0 {
		t.Fatal("no dispatch leaves attributed")
	}
}

// A dropped dispatch surfaces in the trace as a retry span whose self
// time (backoff + re-transfer) lands in the retry/backoff phase.
func TestTraceRetrySpans(t *testing.T) {
	peers, net, tracer, _ := tracedPaperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxRetries = 2
	net.SetInjector(&scriptInjector{drops: map[string]int{"exec.subplan": 1}})
	if _, err := p1.Ask(gen.PaperRQL); err != nil {
		t.Fatalf("traced ask with retry: %v", err)
	}
	tr := tracer.Traces()[0]
	sawRetry := false
	for _, es := range tr.Layout() {
		if es.Kind == obs.KindRetry {
			sawRetry = true
			if es.SelfMS <= 0 {
				t.Errorf("retry span %s has no self charge", es.ID)
			}
		}
	}
	if !sawRetry {
		t.Fatal("no retry span recorded for the dropped dispatch")
	}
	att := obs.Analyze(tr, 1)
	if att.Phases[obs.PhaseRetry] <= 0 {
		t.Fatalf("retry/backoff phase empty: %v", att.Phases)
	}
	if err := att.Check(); err != nil {
		t.Fatalf("attribution invariants with retries: %v", err)
	}
}

// The shared registry must end the run holding every layer's counters,
// including the stats-packet arrival counters of the StatsSink path.
func TestRegistryUnifiesLayers(t *testing.T) {
	peers, _, _, reg := tracedPaperSystem(t, 3)
	p1 := peers["P1"]
	if _, err := p1.Ask(gen.PaperRQL); err != nil {
		t.Fatalf("ask: %v", err)
	}
	got := map[string]float64{}
	for _, m := range reg.Snapshot() {
		got[m.Name] += m.Value
	}
	for _, name := range []string{
		"exec_subplans_shipped_total",
		"exec_rows_shipped_total",
		"exec_stats_packets_received_total",
		"exec_stats_packets_applied_total",
		"channel_packets_sent_total",
		"channel_packets_accepted_total",
	} {
		if got[name] <= 0 {
			t.Errorf("registry missing activity on %s (snapshot: %v)", name, got)
		}
	}
}
