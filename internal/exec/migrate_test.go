package exec_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/exec"
	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
)

// killMidStream returns a script that delivers the first n result packets
// a peer sends and then drops every later delivery from it — a crash in
// the middle of streaming, after part of the answer reached the root.
func killMidStream(site pattern.PeerID, n int) *faults.Script {
	return faults.NewScript(&faults.ScriptRule{
		From: site, Kind: "chan.packet", After: n,
		Fault: network.Fault{Drop: true},
	})
}

// A peer dying mid-stream is recovered by migrating just its subtree to
// the surviving peers: no replan, no restart, and the answer matches what
// the from-scratch restart would compute.
func TestMigrationRecoversFailedSubtree(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxRetries = 1
	p1.Engine.BatchSize = 1
	net.SetInjector(killMidStream("P4", 1))

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute with P4 dying mid-stream: %v", err)
	}
	m := p1.Engine.Metrics()
	if m.Migrations == 0 {
		t.Errorf("expected a subtree migration, got %+v", m)
	}
	if m.Replans != 0 {
		t.Errorf("migration should make replanning unnecessary, got %d replans", m.Replans)
	}
	// Without P4, X comes only from P1 and P2: 2 per i × 3 i = 6 rows.
	if got := rows.Project([]string{"X", "Y"}); got.Len() != 6 {
		t.Errorf("migrated answer = %d rows, want 6:\n%s", got.Len(), got)
	}
	migrated := false
	for _, le := range p1.Engine.Ledger() {
		if le.Outcome == "migrated-away" && le.Site == "P4" {
			migrated = true
		}
	}
	if !migrated {
		t.Error("ledger should record the migrated-away subtree")
	}
}

// The MaxMigrations=NoMigrations ablation restores the legacy behavior:
// the same mid-stream crash goes through discard-replan-restart, yields
// the identical answer, and re-fetches strictly more rows than migration.
func TestMigrationAblationMatchesRestart(t *testing.T) {
	run := func(maxMigrations int) (*exec.Metrics, string) {
		peers, net := paperSystem(t, 3)
		p1 := peers["P1"]
		p1.Engine.Parallelism = 1
		p1.Engine.MaxRetries = 1
		p1.Engine.BatchSize = 1
		p1.Engine.MaxMigrations = maxMigrations
		net.SetInjector(killMidStream("P4", 1))
		pr, err := p1.PlanQuery(gen.PaperQuery())
		if err != nil {
			t.Fatalf("PlanQuery: %v", err)
		}
		rows, err := p1.Engine.Execute(pr.Optimized)
		if err != nil {
			t.Fatalf("Execute (MaxMigrations=%d): %v", maxMigrations, err)
		}
		m := p1.Engine.Metrics()
		return &m, fmt.Sprint(rows.Project([]string{"X", "Y"}).Sorted())
	}
	mig, migRows := run(0)
	abl, ablRows := run(exec.NoMigrations)

	if migRows != ablRows {
		t.Errorf("migration and restart answers diverge:\n%s\nvs\n%s", migRows, ablRows)
	}
	if mig.Migrations == 0 || mig.Replans != 0 {
		t.Errorf("migration run: want migrations>0, replans=0, got %+v", mig)
	}
	if abl.Migrations != 0 || abl.Replans == 0 {
		t.Errorf("ablation run: want migrations=0, replans>0, got %+v", abl)
	}
	if mig.RowsRefetched >= abl.RowsRefetched {
		t.Errorf("migration refetched %d rows, restart %d — migration must refetch strictly fewer",
			mig.RowsRefetched, abl.RowsRefetched)
	}
}

// A transient mid-stream failure resumes from the checkpointed row prefix
// instead of re-streaming: the retry carries the watermark-backed row
// count, and the destination skips what the root already holds.
func TestResumeRetryKeepsCheckpointedRows(t *testing.T) {
	peers, net := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxRetries = 2
	p1.Engine.BatchSize = 1
	// Drop exactly one packet: P4's second result row. The retry resumes
	// after row 1.
	net.SetInjector(faults.NewScript(&faults.ScriptRule{
		From: "P4", Kind: "chan.packet", After: 1, Count: 1,
		Fault: network.Fault{Drop: true},
	}))

	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		t.Fatalf("Execute with one dropped packet: %v", err)
	}
	want := groundTruth(t, peers, gen.PaperRQL)
	if !sameRows(rows, want) {
		t.Fatalf("resumed answer diverged:\n got %v\nwant %v", rows.Sorted(), want.Sorted())
	}
	m := p1.Engine.Metrics()
	if m.Retries == 0 {
		t.Error("expected a retry")
	}
	if m.Resumes == 0 {
		t.Errorf("expected the retry to resume from the checkpoint, got %+v", m)
	}
	if m.RowsRetained == 0 {
		t.Error("resume should retain the checkpointed prefix")
	}
	if m.Replans != 0 || m.Migrations != 0 {
		t.Errorf("transient packet loss must not replan or migrate, got %+v", m)
	}
}

// Mid-flight hole filling: a plan generated from stale knowledge executes
// with a @? hole; by execution time the registry has learned providers,
// so the hole is converted into a dispatched subplan while the rest of
// the plan runs — the answer upgrades to complete without a restart.
func TestMidFlightHoleFill(t *testing.T) {
	peers, _ := paperSystem(t, 3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.AllowPartial = true

	// Plan as if only P2's Q1 coverage were known: Q2 becomes a hole.
	q := gen.PaperQuery()
	ann := pattern.NewAnnotated(q)
	ann.Annotate("Q1", "P2", nil)
	partial, err := plan.Generate(ann)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !plan.HasHoles(partial.Root) {
		t.Fatal("fixture plan should contain a hole for Q2")
	}
	res, err := p1.Engine.ExecuteAnnotated(partial)
	if err != nil {
		t.Fatalf("ExecuteAnnotated: %v", err)
	}
	if !res.Completeness.Complete {
		t.Fatalf("hole should have been filled mid-flight, got unanswered %+v",
			res.Completeness.Unanswered)
	}
	// Q1 only from P2 (1 per i × 3 i), joined with the filled Q2 branch.
	if res.Rows.Len() == 0 {
		t.Fatal("filled plan should produce rows")
	}
	m := p1.Engine.Metrics()
	if m.HolesFilled == 0 || m.PlanChanges == 0 {
		t.Errorf("expected HolesFilled and PlanChanges > 0, got %+v", m)
	}
	if m.Replans != 0 {
		t.Errorf("mid-flight fill must not restart the plan, got %d replans", m.Replans)
	}
}
