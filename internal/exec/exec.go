// Package exec is SQPeer's distributed plan executor (paper §2.4–2.5):
// it walks a distributed plan at a root peer, deploys one ubQL-style
// channel per contributing peer, ships subplans, gathers result packets,
// and combines them with unions (horizontal distribution) and joins
// (vertical distribution). Join placement follows the configured shipping
// policy. On peer failure the executor first attempts the paper's
// plan-change protocol: cancel only the affected plan subtree, pick an
// alternate peer from a fresh quarantine-aware routing snapshot, and
// re-dispatch just that subplan, splicing its rows with the retained
// siblings (checkpointed by per-channel sequence watermarks and per-leaf
// row ledgers). Only when no alternate peer covers the subtree does it
// fall back to the legacy ubQL semantics — discard intermediate results,
// replan around the obsolete peer, restart.
package exec

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sqpeer/internal/admission"
	"sqpeer/internal/channel"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
	"sqpeer/internal/rql"
	"sqpeer/internal/stats"
)

// LocalSource evaluates scan subqueries against a peer's local base.
type LocalSource interface {
	// EvalScan evaluates the conjunction of path patterns locally,
	// returning the joined rows.
	EvalScan(patterns []pattern.PathPattern) *rql.ResultSet
}

// BatchSource is the columnar upgrade of LocalSource: a source that can
// evaluate a scan straight into a batch, skipping the per-row map
// materialization EvalScan pays. The engine uses it at the scan leaf
// whenever the batch plane is active and the source offers it; RowWire
// and plain LocalSources keep the row path.
type BatchSource interface {
	// EvalScanBatch evaluates the conjunction of path patterns locally,
	// returning the joined rows in columnar form. The scan interns into
	// store — the calling execution's shared dictionary — so the result
	// composes with the execution's other batches without remapping; a
	// nil store yields a self-contained batch.
	EvalScanBatch(patterns []pattern.PathPattern, store *rql.TermStore) *rql.Batch
}

// PeerFailure reports that a remote peer could not contribute: the
// executor's replanning treats its peer as obsolete.
type PeerFailure struct {
	// Peer is the failed peer.
	Peer pattern.PeerID
	// Err is the underlying cause.
	Err error
}

// Error renders the failure.
func (e *PeerFailure) Error() string {
	return fmt.Sprintf("exec: peer %s failed: %v", e.Peer, e.Err)
}

// Unwrap exposes the cause.
func (e *PeerFailure) Unwrap() error { return e.Err }

// HoleError reports an attempt to execute a plan that still contains
// holes; hybrid systems treat it as a routing bug, ad-hoc systems forward
// the partial plan instead of executing it.
type HoleError struct {
	// PatternIDs are the path patterns with no responsible peer.
	PatternIDs []string
}

// Error renders the hole list.
func (e *HoleError) Error() string {
	return fmt.Sprintf("exec: plan has unresolved holes for %v", e.PatternIDs)
}

// Engine executes distributed plans at one peer. The same engine serves
// both roles: root of its own queries, and remote evaluator of subplans
// shipped by other peers (registered under the "exec.subplan" and
// "exec.collect" message kinds).
type Engine struct {
	// Self is the peer this engine runs at.
	Self pattern.PeerID
	// Net is the transport.
	Net *network.Network
	// Channels is the peer's channel manager.
	Channels *channel.Manager
	// Local evaluates scans against the peer's base.
	Local LocalSource
	// Policy places joins; HybridShipping consults Cost.
	Policy optimizer.ShippingPolicy
	// Cost estimates placements for HybridShipping; nil forces
	// DataShipping behaviour.
	Cost *optimizer.CostModel
	// Router, when set, enables run-time adaptation: on peer failure the
	// engine replans around the obsolete peer and restarts (ubQL
	// discard).
	Router *routing.Router
	// MaxReplans bounds adaptation retries. The zero value keeps the
	// historical default of 3; NoReplans (any negative value) disables
	// adaptation entirely — including mid-flight migration, which is part
	// of run-time adaptation.
	MaxReplans int
	// MaxMigrations bounds mid-flight subplan migrations per execution
	// round. The zero value defaults to 3; NoMigrations (any negative
	// value) disables migration so every peer failure takes the legacy
	// discard-replan-restart path — the ablation CLAIM-RECOVER compares
	// against.
	MaxMigrations int
	// DeadlineMS, when positive, bounds each dispatch leg on the simulated
	// clock: a delivery slower than this (hung or gray-failed peer) fails
	// with a transient error instead of wedging a pool token. Channel
	// opens are bounded separately via Channels.DeadlineMS.
	DeadlineMS float64
	// MaxRetries is how many times a transiently-failed dispatch is
	// retried (with exponential backoff) before the peer is declared
	// obsolete and replanned around. 0 — the historical behaviour —
	// disables retries.
	MaxRetries int
	// RetryBackoffMS is the initial retry backoff, doubling per retry
	// (default 10). Backoff is charged to the metrics' logical clock, not
	// slept: the simulated network keeps experiments deterministic.
	RetryBackoffMS float64
	// Health, when set, receives per-peer dispatch outcomes and replaces
	// Unregister-on-failure with circuit-breaker quarantine: failed peers
	// leave routing for a cool-down instead of being forgotten.
	Health *routing.Health
	// Throughput, when set, is the paper's run-time adaptation trigger:
	// the engine tracks per-peer row rates during collection and, after a
	// completed round, replans around peers the monitor flags.
	Throughput *optimizer.ThroughputMonitor
	// AllowPartial opts into graceful degradation: when replanning leaves
	// unresolved holes, the engine prunes them, executes the answerable
	// remainder, and returns the rows with a Completeness annotation
	// naming the unanswered patterns — instead of failing the query.
	AllowPartial bool
	// BatchSize caps rows per Results packet when this engine answers
	// shipped subplans (default 256). Smaller batches mean more packets —
	// the ubQL streaming the throughput monitor observes.
	BatchSize int
	// RowWire reverts the data plane to the row-at-a-time ablation:
	// Results payloads are JSON-encoded ResultSet slices and operators run
	// over row maps instead of batch columns. Default (false) is the
	// columnar plane: binary batch frames on the wire, vectorized
	// union/join/project in the collector. Same-seed answers are identical
	// either way — CLAIM-BATCH proves it by digest.
	RowWire bool
	// WindowSize bounds the in-flight encode window when streaming
	// batches upstream (default 4): the encoder goroutine blocks once
	// this many frames are encoded but unsent, so a slow channel applies
	// backpressure instead of buffering the whole result.
	WindowSize int
	// StatsProvider, when set, supplies this peer's current statistics,
	// piggybacked as a Stats packet on every answered subplan (paper
	// §2.4: packets "can also contain ... statistics useful for query
	// optimization").
	StatsProvider func() *stats.PeerStats
	// StatsSink, when set, receives statistics arriving on channels this
	// engine roots, keeping the local catalog fresh.
	StatsSink func(*stats.PeerStats)
	// Parallelism bounds how many plan branches one Execute evaluates
	// concurrently (horizontal distribution, §2.4: per-path-pattern unions
	// over peers are independent). 0 or negative means GOMAXPROCS; 1
	// recovers strictly sequential evaluation. Results are deterministic
	// regardless of the setting: branches are collected per input and
	// merged in input order.
	Parallelism int
	// Tracer, when set, opens a query trace per Execute call (unless the
	// caller supplies a parent span via ExecuteAnnotatedIn): spans for
	// every phase, with trace IDs propagated to remote evaluators in the
	// subplan request so their execution grafts back into the root's
	// trace. Nil disables tracing at zero cost — all span operations are
	// nil-receiver no-ops.
	Tracer *obs.Tracer
	// Obs, when set, receives direct event counters (stats packets
	// received/applied, throughput flag transitions). Component counters
	// (Metrics, channel and health stats) reach the registry through
	// snapshot-time collectors instead — see peer.New.
	Obs *obs.Registry
	// Admission, when set, is this peer's admission controller. Serving
	// side, handleSubplan admits every arriving subplan against the
	// occupancy watermark of its priority class (rejections surface as
	// transient OverloadErrors carrying a retry-after hint). Root side,
	// a saturated pool sheds not-yet-dispatched subplans of classes past
	// their watermark into completeness holes (AllowPartial only; High
	// is never shed). Nil disables both — the historical behaviour.
	Admission *admission.Controller
	// Events, when set, receives the executor's operations events — one
	// "shed" per Metrics.Shed, one "migrate" per Metrics.Migrations, one
	// "retry"/"resume" per retry-loop transition, one "replan" per
	// Metrics.Replans, one "ledger" per ledger entry, and a "dispatch"
	// per shipped try. The exact 1:1 pairing with the counters is the
	// reconciliation invariant CLAIM-OBSERVE checks. Nil disables the
	// plane (the ablation path); events are emitted outside e.mu.
	Events *obs.EventLog

	mu      sync.Mutex
	metrics Metrics
	// lastLedger is the per-leaf row ledger of the most recent
	// ExecuteAnnotated call: one entry per finished dispatch, recording
	// site, rows and the channel watermark at completion.
	lastLedger []LedgerEntry
}

// NoReplans disables run-time adaptation when assigned to
// Engine.MaxReplans (the zero value means "default", i.e. 3).
const NoReplans = -1

// NoMigrations disables mid-flight subplan migration when assigned to
// Engine.MaxMigrations (the zero value means "default", i.e. 3). With
// migration off every peer failure falls back to the legacy full
// restart, which is the CLAIM-RECOVER ablation.
const NoMigrations = -1

// maxMigrations resolves the migration budget: zero keeps the default,
// NoMigrations (negative) disables migration. Migration is part of
// run-time adaptation, so NoReplans turns it off too.
func (e *Engine) maxMigrations() int {
	if e.MaxReplans < 0 {
		return 0
	}
	switch {
	case e.MaxMigrations > 0:
		return e.MaxMigrations
	case e.MaxMigrations < 0:
		return 0
	default:
		return 3
	}
}

// parallelism resolves the engine's effective branch parallelism.
func (e *Engine) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Metrics counts executor activity for the experiment harness.
type Metrics struct {
	// ChannelsOpened counts channels deployed by this engine as root.
	ChannelsOpened int
	// SubplansShipped counts subplans sent to remote peers.
	SubplansShipped int
	// RowsShipped counts result rows received from remote peers.
	RowsShipped int
	// BytesShipped counts result payload bytes received from remotes.
	BytesShipped int
	// Replans counts run-time adaptations performed.
	Replans int
	// LocalScans counts scans evaluated against the local base.
	LocalScans int
	// Retries counts transiently-failed dispatches that were retried.
	Retries int
	// BackoffMS is the total retry backoff charged to the logical clock.
	BackoffMS float64
	// PartialAnswers counts executions that returned an incomplete result
	// under AllowPartial.
	PartialAnswers int
	// Migrations counts mid-flight subplan migrations: a failed subtree
	// re-dispatched to an alternate peer while its siblings' rows were
	// retained (vs. Replans, which discard and restart everything).
	Migrations int
	// HolesFilled counts `@?` holes converted into dispatched subplans
	// mid-flight, after advertisement updates made them answerable.
	HolesFilled int
	// PlanChanges counts PlanChange packets exchanged (both the
	// migration/resume announcements and the destination's acks).
	PlanChanges int
	// Resumes counts dispatch retries that resumed from a row checkpoint
	// instead of re-streaming from scratch.
	Resumes int
	// RowsRetained counts rows that recovery did NOT have to fetch again:
	// sibling rows kept across a migration plus checkpointed prefixes
	// honored by resumed dispatches.
	RowsRetained int
	// RowsRefetched counts rows shipped again for a pattern set that an
	// earlier dispatch of this query had already delivered — the wasted
	// work a full restart pays and migration avoids.
	RowsRefetched int
	// RowsDiscarded counts partially-streamed rows abandoned when a
	// dispatch ultimately failed or a checkpoint was rejected.
	RowsDiscarded int
	// Shed counts subplans this engine (as root) converted into
	// completeness holes because its pool saturated past the query's
	// priority watermark — answered partially instead of timing out.
	Shed int
	// OverloadRejected counts subplans this engine (as serving peer)
	// refused at admission; the root retries, migrates or sheds them.
	OverloadRejected int
	// RetryAfterHonored counts retries that waited the destination's
	// retry-after hint instead of the default doubling backoff curve.
	RetryAfterHonored int
}

// LedgerEntry is one finished dispatch in the executor's per-leaf row
// ledger: the checkpointed result accounting behind the plan-change
// protocol. CLAIM-RECOVER reconciles these entries to prove exactly-once
// recovery (retained rows + migrated rows = restart rows).
type LedgerEntry struct {
	// Site is the peer the subplan ran at.
	Site pattern.PeerID `json:"site"`
	// Subplan is the canonical rendering of the dispatched node.
	Subplan string `json:"subplan"`
	// Patterns is the site-independent pattern-set key of the subplan;
	// two dispatches with equal keys fetched the same logical data slice.
	Patterns string `json:"patterns"`
	// Rows is how many result rows the dispatch delivered (for "failed"
	// entries: how many had arrived before the failure, all discarded).
	Rows int `json:"rows"`
	// Watermark is the channel's contiguous sequence watermark when the
	// dispatch finished.
	Watermark int `json:"watermark"`
	// Attempt is the ExecuteAnnotated restart round the dispatch ran in.
	Attempt int `json:"attempt"`
	// Outcome is "complete", "failed" or "migrated-away".
	Outcome string `json:"outcome"`
	// Resumed reports that the dispatch resumed from a row checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// Ledger returns the row ledger of the most recent ExecuteAnnotated call.
func (e *Engine) Ledger() []LedgerEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LedgerEntry, len(e.lastLedger))
	copy(out, e.lastLedger)
	return out
}

func (e *Engine) appendLedger(entry LedgerEntry) {
	e.mu.Lock()
	e.lastLedger = append(e.lastLedger, entry)
	e.mu.Unlock()
	// One "ledger" event per entry, emitted after e.mu is released (the
	// log has its own lock; lock order stays one-deep).
	e.Events.Emit("exec", "ledger", string(e.Self), "",
		obs.A("site", string(entry.Site)), obs.A("outcome", entry.Outcome),
		obs.A("patterns", entry.Patterns), obs.A("rows", strconv.Itoa(entry.Rows)),
		obs.A("attempt", strconv.Itoa(entry.Attempt)))
}

// patternKey renders a node's pattern ids, deduplicated and sorted — the
// site-independent identity of the data slice a dispatch fetches.
func patternKey(n plan.Node) string {
	seen := map[string]bool{}
	var ids []string
	for _, s := range plan.Scans(n) {
		for _, id := range s.PatternIDs() {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	return strings.Join(ids, "+")
}

// NewEngine wires an engine for a peer into the network, registering the
// subplan-execution handler.
func NewEngine(self pattern.PeerID, net *network.Network, ch *channel.Manager, local LocalSource) *Engine {
	e := &Engine{
		Self:     self,
		Net:      net,
		Channels: ch,
		Local:    local,
		Policy:   optimizer.DataShipping,
	}
	net.Handle(self, "exec.subplan", e.handleSubplan)
	return e
}

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}

// ResetMetrics zeroes the counters between experiment runs.
func (e *Engine) ResetMetrics() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.metrics = Metrics{}
}

// Unanswered names one path pattern a partial answer is missing and why.
type Unanswered struct {
	// PatternID is the path pattern left without a responsible peer.
	PatternID string `json:"patternId"`
	// Reason describes what removed the pattern's peers.
	Reason string `json:"reason"`
}

// Completeness annotates a result with what it covers: Complete results
// answered every path pattern; partial results list the patterns that
// went unanswered (graceful degradation, the paper's partial-plan
// semantics in ad-hoc SONs).
type Completeness struct {
	// Complete reports whether every path pattern was answered.
	Complete bool `json:"complete"`
	// Unanswered lists the dropped patterns, sorted by id; empty when
	// Complete.
	Unanswered []Unanswered `json:"unanswered,omitempty"`
}

// Result is an executed query's rows plus their completeness annotation.
type Result struct {
	// Rows is the (possibly partial) result set.
	Rows *rql.ResultSet
	// Completeness records what the rows cover.
	Completeness Completeness
}

// Execute runs a distributed plan rooted at this peer and returns the
// final result set, applying the query pattern's projections. Plans with
// holes are rejected with *HoleError (unless AllowPartial). With a Router
// configured, peer failures trigger replanning (up to MaxReplans) before
// surfacing as *PeerFailure. Callers that opted into AllowPartial and
// need the completeness annotation use ExecuteAnnotated; this wrapper
// returns the rows alone.
func (e *Engine) Execute(p *plan.Plan) (*rql.ResultSet, error) {
	res, err := e.ExecuteAnnotated(p)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// maxReplans resolves the adaptation budget: zero keeps the historical
// default, NoReplans (negative) disables adaptation.
func (e *Engine) maxReplans() int {
	switch {
	case e.MaxReplans > 0:
		return e.MaxReplans
	case e.MaxReplans < 0:
		return 0
	default:
		return 3
	}
}

// ExecuteAnnotated is Execute returning the completeness annotation: the
// adaptation loop of §2.5 with retry/backoff underneath it (transient
// dispatch failures retry before a peer is declared obsolete), the
// throughput monitor as a replan trigger, and — under AllowPartial —
// hole pruning instead of failure when replanning cannot cover every
// pattern.
func (e *Engine) ExecuteAnnotated(p *plan.Plan) (*Result, error) {
	return e.ExecuteAnnotatedIn(p, nil)
}

// ExecuteAnnotatedIn is ExecuteAnnotated under a caller-supplied trace
// span (the peer layer passes its query span so routing, planning and
// execution share one trace). With a nil span and a configured Tracer,
// the engine opens a standalone trace for the call.
func (e *Engine) ExecuteAnnotatedIn(p *plan.Plan, span *obs.Span) (*Result, error) {
	return e.ExecuteAnnotatedQoS(p, span, admission.QoS{})
}

// ExecuteAnnotatedQoS is ExecuteAnnotatedIn under an explicit QoS: the
// tenant and priority ride every channel open and subplan request this
// execution ships, so serving peers admit (or shed) the work under the
// same class the root charged at its facade. The zero QoS is an
// untagged Low-priority query — indistinguishable from the historical
// behaviour unless an admission controller is configured somewhere.
func (e *Engine) ExecuteAnnotatedQoS(p *plan.Plan, span *obs.Span, qos admission.QoS) (*Result, error) {
	if span == nil && e.Tracer != nil {
		tr := e.Tracer.StartTrace("execute@"+string(e.Self), string(e.Self))
		span = tr.Root()
		defer span.End()
	}
	maxReplans := e.maxReplans()
	current := p
	var unanswered []Unanswered
	unansweredSeen := map[string]bool{}
	note := func(id, reason string) {
		if !unansweredSeen[id] {
			unansweredSeen[id] = true
			unanswered = append(unanswered, Unanswered{PatternID: id, Reason: reason})
		}
	}
	// fetched maps each dispatched pattern set to the rows its first
	// completed dispatch delivered; a later dispatch of the same set is
	// re-fetched work (what restarts pay and migration avoids).
	fetched := map[string]int{}
	e.mu.Lock()
	e.lastLedger = nil
	e.mu.Unlock()
	var lastFailure error
	for attempt := 0; ; attempt++ {
		if holes := plan.Holes(current.Root); len(holes) > 0 {
			ids := make([]string, len(holes))
			for i, h := range holes {
				ids[i] = h.Patterns[0].ID
			}
			if !e.AllowPartial {
				return nil, &HoleError{PatternIDs: ids}
			}
			reason := "no peer advertises this pattern"
			if lastFailure != nil {
				reason = lastFailure.Error()
			}
			if e.Router == nil {
				// Graceful degradation without a router: cut the
				// unanswerable patterns, record why, execute what remains.
				pruned, removed := plan.PruneHoles(current.Root)
				for _, id := range removed {
					note(id, reason)
				}
				if pruned == nil {
					// Nothing answerable at all: an empty, fully-annotated
					// partial result.
					e.mu.Lock()
					e.metrics.PartialAnswers++
					e.mu.Unlock()
					return &Result{
						Rows:         rql.NewResultSet(),
						Completeness: Completeness{Complete: false, Unanswered: sortUnanswered(unanswered)},
					}, nil
				}
				current = &plan.Plan{Root: pruned, Query: current.Query}
			}
			// With a router, holes stay in the plan: the execution fills
			// them mid-flight from fresh advertisements (upgrading the
			// answer's completeness without a restart) or reports them
			// unanswered with this reason.
		}
		rel, runtimeUn, err := e.executeOnce(current, attempt, lastFailure, fetched, span, qos)
		if err == nil {
			// The paper's literal run-time trigger: peers whose channels
			// streamed too few rows this round are replanned around, same
			// path as a hard failure.
			if slow := e.slowPeers(); len(slow) > 0 && e.Router != nil && attempt < maxReplans {
				if span != nil {
					span.Annotate(fmt.Sprintf("throughput.flagged.%d", attempt), peersCSV(slow))
				}
				obsolete := map[pattern.PeerID]bool{}
				for _, peer := range slow {
					obsolete[peer] = true
					e.dropFromRouting(peer)
				}
				replanned, rerr := optimizer.Replan(current, obsolete, e.Router)
				if rerr == nil && !plan.Equal(replanned.Root, current.Root) {
					rsp := span.Child(obs.KindReplan, fmt.Sprintf("replan.%d", attempt))
					rsp.Annotate("trigger", "throughput")
					rsp.Annotate("obsolete", peersCSV(slow))
					rsp.EmitEvent(e.Events, "exec", "replan",
						obs.A("trigger", "throughput"), obs.A("obsolete", peersCSV(slow)))
					rsp.End()
					e.mu.Lock()
					e.metrics.Replans++
					e.mu.Unlock()
					current = replanned
					continue // ubQL discard: drop rs, re-execute
				}
				// Replanning can't improve on this round (no alternative or
				// same plan): keep the rows we already collected.
			}
			// These rows are the answer: holes this round could not fill
			// mid-flight are what the result is missing.
			for _, u := range runtimeUn {
				note(u.PatternID, u.Reason)
			}
			if current.Query != nil && len(current.Query.Projections) > 0 {
				rel = rel.project(current.Query.Projections)
			}
			// The facade boundary: whatever representation the data plane
			// ran in, callers get the public ResultSet back.
			res := &Result{Rows: rel.resultSet(), Completeness: Completeness{Complete: len(unanswered) == 0, Unanswered: sortUnanswered(unanswered)}}
			if len(unanswered) > 0 {
				e.mu.Lock()
				e.metrics.PartialAnswers++
				e.mu.Unlock()
			}
			return res, nil
		}
		pf, ok := failureOf(err)
		if !ok || e.Router == nil || attempt >= maxReplans {
			return nil, err
		}
		// ubQL adaptation: discard intermediates, drop the obsolete peer
		// from our routing knowledge, replan, restart.
		e.dropFromRouting(pf.Peer)
		rsp := span.Child(obs.KindReplan, fmt.Sprintf("replan.%d", attempt))
		rsp.Annotate("trigger", "failure")
		rsp.Annotate("obsolete", string(pf.Peer))
		rsp.End()
		replanned, rerr := optimizer.Replan(current, map[pattern.PeerID]bool{pf.Peer: true}, e.Router)
		if rerr != nil {
			if replanned != nil && e.AllowPartial {
				// The replan left holes; the loop top prunes them into the
				// completeness annotation and runs the rest.
				lastFailure = err
				e.mu.Lock()
				e.metrics.Replans++
				e.mu.Unlock()
				// One "replan" event per Replans increment (rsp has Ended;
				// the root span is still open).
				span.EmitEvent(e.Events, "exec", "replan",
					obs.A("trigger", "failure-partial"), obs.A("obsolete", string(pf.Peer)))
				current = replanned
				continue
			}
			return nil, fmt.Errorf("exec: adaptation after %v: %w", err, rerr)
		}
		e.mu.Lock()
		e.metrics.Replans++
		e.mu.Unlock()
		span.EmitEvent(e.Events, "exec", "replan",
			obs.A("trigger", "failure"), obs.A("obsolete", string(pf.Peer)))
		current = replanned
	}
}

// sortUnanswered orders a completeness annotation by pattern id. The
// note() dedupe keeps ids unique, but ids accumulate in discovery order
// across attempts — a later attempt can add a smaller id after a larger
// one — so the Completeness contract ("sorted by id") needs this final
// pass.
func sortUnanswered(un []Unanswered) []Unanswered {
	sort.Slice(un, func(i, j int) bool { return un[i].PatternID < un[j].PatternID })
	return un
}

// dropFromRouting removes a failed peer from routing's working set: via
// the circuit breaker when health tracking is on (quarantine — the peer
// may come back), else by forgetting the advertisement entirely (the
// historical behaviour).
func (e *Engine) dropFromRouting(peer pattern.PeerID) {
	if e.Health != nil {
		e.Health.QuarantineNow(peer)
		return
	}
	e.Router.Registry.Unregister(peer)
}

// slowPeers closes a throughput observation window and returns the peers
// it newly flagged (nil without a monitor). Flags are consumed: the
// engine quarantines and replans, so the monitor forgets them.
func (e *Engine) slowPeers() []pattern.PeerID {
	if e.Throughput == nil {
		return nil
	}
	flagged := e.Throughput.Tick()
	for _, peer := range flagged {
		if e.Obs != nil {
			e.Obs.Counter("exec_throughput_flags_total",
				obs.L("peer", string(e.Self)), obs.L("site", string(peer))).Inc()
		}
		e.Throughput.Unflag(peer)
	}
	return flagged
}

// peersCSV renders a sorted peer list for span annotations.
func peersCSV(peers []pattern.PeerID) string {
	parts := make([]string, len(peers))
	for i, p := range peers {
		parts[i] = string(p)
	}
	return strings.Join(parts, ",")
}

func failureOf(err error) (*PeerFailure, bool) {
	for e := err; e != nil; {
		if pf, ok := e.(*PeerFailure); ok {
			return pf, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		e = u.Unwrap()
	}
	return nil, false
}

// execution is the per-Execute state: one channel per contacted peer, a
// single-flight dispatch cache, and the bounded branch pool. One execution
// may run many goroutines, but each Execute call owns its execution
// exclusively, so concurrent Execute calls on one engine never share
// per-execution state.
type execution struct {
	engine *Engine
	// store is the execution's shared term dictionary: scan leaves intern
	// into it, decoded result frames are rebased onto it, so every batch
	// this execution composes agrees on ids and the operators above the
	// leaves never re-intern a term (see rql.TermStore).
	store *rql.TermStore
	// attempt is the ExecuteAnnotated restart round this execution runs in
	// (ledger bookkeeping).
	attempt int
	// holeReason explains why holes in the plan are unanswerable, for the
	// completeness annotation when mid-flight filling fails.
	holeReason string
	// fetched is ExecuteAnnotated's cross-attempt pattern-set → rows map
	// backing the refetch accounting; guarded by mu (attempts run one at
	// a time, branches within an attempt race).
	fetched map[string]int
	// qos is the tenant/priority the execution runs under: stamped onto
	// every channel open and subplan request, and consulted for
	// root-side shedding. Immutable after newExecution's caller sets it.
	qos admission.QoS

	mu    sync.Mutex
	sites map[pattern.PeerID]*siteChan
	inbox map[string]*remoteResult // channelID -> collector
	// cache single-flights remote dispatches within this execution:
	// optimized plans repeat the same scan under several union branches,
	// and with branches racing, the first to ask ships the subplan while
	// the rest wait on its entry.
	cache map[string]*cacheEntry
	// migrations counts mid-flight subplan migrations this round, bounded
	// by Engine.maxMigrations().
	migrations int
	// completedRows sums rows delivered by completed dispatches this
	// round — the sibling work a migration retains.
	completedRows int
	// unanswered records holes that could not be filled mid-flight:
	// pattern id → reason.
	unanswered map[string]string

	// sem is the worker pool, holding Parallelism tokens. Union/join
	// fan-out spawns one goroutine per branch (tree structure is cheap
	// and plan-bounded), but the actual leaf work — local scans and
	// remote dispatches — blocks acquiring a token, so at most
	// Parallelism leaves execute at once. Token holders never acquire a
	// second token (leaves don't recurse into this pool), which is what
	// makes the blocking acquire deadlock-free. nil when Parallelism is
	// 1: then fan-out is skipped entirely and evaluation is the classic
	// sequential walk.
	sem chan struct{}
	// cancel is closed when any branch fails, making sibling branches
	// finish early instead of shipping work whose result will be
	// discarded (ubQL semantics: first failure aborts the round).
	cancel     chan struct{}
	cancelOnce sync.Once
}

// siteChan is the per-peer channel slot: single-flight open, then a mutex
// serializing dispatches so concurrent branches targeting the same peer
// share one channel (the paper deploys exactly one channel per
// contributing peer) without interleaving their request/collect cycles.
type siteChan struct {
	opened chan struct{}
	ch     *channel.Channel
	err    error
	mu     sync.Mutex
}

// cacheEntry is a single-flight memo: done closes when the owning branch
// has filled rows/err.
type cacheEntry struct {
	done chan struct{}
	rows *relation
	err  error
}

type remoteResult struct {
	site pattern.PeerID
	// segs / batches accumulate the stream's Results payloads in arrival
	// order (exactly one of the two fills, per the root engine's data
	// plane). Segments are disjoint slices of the destination's already-
	// deduplicated relation, so gathered() reassembles them by
	// concatenation instead of the quadratic repeated Union the
	// row-at-a-time collector used to run.
	segs    []*rql.ResultSet
	batches []*rql.Batch
	err     error
	done    bool
	// span is the dispatch try's stream span: the packet collector
	// charges per-packet transfer time to it and grafts the remote
	// peer's shipped span subtree under it. nil when tracing is off.
	span *obs.Span
	// link is the root→site link, captured at dispatch so the packet
	// collector prices transfers without touching the network's lock.
	link stats.Link
	// rowCount sums the rows of accepted Results packets this dispatch
	// (channel-layer dedup already dropped replays).
	rowCount int
	// resumed / restarted record the destination's PlanChange ack: the
	// requested row checkpoint was honored, or rejected and the stream
	// restarted from row 0.
	resumed   bool
	restarted bool
	// watermark is the channel's contiguous sequence watermark when the
	// dispatch finished.
	watermark int
}

// gathered reassembles the stream's accepted Results payloads into one
// relation. nil when no Results packet arrived at all — the same "no
// stream" sentinel the old single-ResultSet field encoded (a destination
// always sends at least one Results packet, even for an empty answer).
func (res *remoteResult) gathered() *relation {
	if len(res.batches) > 0 {
		return relFromBatch(rql.Concat(res.batches...))
	}
	if len(res.segs) > 0 {
		return &relation{rs: concatRS(res.segs)}
	}
	return nil
}

// errCancelled aborts sibling branches after another branch failed; the
// failing branch's own error is what surfaces.
var errCancelled = errors.New("exec: execution cancelled")

func newExecution(e *Engine) *execution {
	ex := &execution{
		engine:     e,
		store:      rql.NewTermStore(),
		fetched:    map[string]int{},
		sites:      map[pattern.PeerID]*siteChan{},
		inbox:      map[string]*remoteResult{},
		cache:      map[string]*cacheEntry{},
		unanswered: map[string]string{},
		holeReason: "no peer advertises this pattern",
		cancel:     make(chan struct{}),
	}
	if par := e.parallelism(); par > 1 {
		ex.sem = make(chan struct{}, par)
	}
	return ex
}

// acquire takes a worker token (no-op when sequential); release returns
// it. Leaf work — the expensive part of a branch — runs between them.
func (ex *execution) acquire() {
	if ex.sem != nil {
		ex.sem <- struct{}{}
	}
}

func (ex *execution) release() {
	if ex.sem != nil {
		<-ex.sem
	}
}

// executeOnce runs one execution round. It returns the round's rows (nil
// only on error) plus the patterns whose holes could not be filled
// mid-flight, sorted by id.
func (e *Engine) executeOnce(p *plan.Plan, attempt int, lastFailure error, fetched map[string]int, parent *obs.Span, qos admission.QoS) (*relation, []Unanswered, error) {
	ex := newExecution(e)
	ex.attempt = attempt
	ex.qos = qos
	if fetched != nil {
		ex.fetched = fetched
	}
	if lastFailure != nil {
		ex.holeReason = lastFailure.Error()
	}
	asp := parent.Child(obs.KindAttempt, fmt.Sprintf("attempt.%d", attempt))
	defer asp.End()
	defer ex.closeAll()
	rows, err := ex.run(p.Root, asp)
	if err != nil {
		return nil, nil, err
	}
	if rows == nil {
		// Every branch was an unfillable hole: an empty — but explicitly
		// annotated — answer.
		rows = e.emptyRel()
	}
	ex.mu.Lock()
	un := make([]Unanswered, 0, len(ex.unanswered))
	for id, reason := range ex.unanswered {
		un = append(un, Unanswered{PatternID: id, Reason: reason})
	}
	ex.mu.Unlock()
	sort.Slice(un, func(i, j int) bool { return un[i].PatternID < un[j].PatternID })
	return rows, un, nil
}

// abort makes every in-flight branch of this execution finish early.
func (ex *execution) abort() {
	ex.cancelOnce.Do(func() { close(ex.cancel) })
}

// cancelled reports whether the execution has been aborted.
func (ex *execution) cancelled() bool {
	select {
	case <-ex.cancel:
		return true
	default:
		return false
	}
}

// runAll evaluates the inputs of a union or join, fanning out across the
// branch pool. Results are collected per input index and returned in input
// order, so the caller's merge is deterministic no matter how the branches
// interleave. On failure the lowest-index real error wins (matching what
// sequential evaluation would have surfaced) and siblings are cancelled.
func (ex *execution) runAll(inputs []plan.Node, parent *obs.Span) ([]*relation, error) {
	// Branch spans are pre-created here, in input order, BEFORE any
	// goroutine is spawned: span creation order (and therefore the
	// exported layout) is a function of the plan alone, no matter how the
	// branches interleave at run time. Sibling span names are made unique
	// by the branch index prefix.
	var spans []*obs.Span
	if parent != nil {
		spans = make([]*obs.Span, len(inputs))
		for i, in := range inputs {
			spans[i] = parent.Child(branchKind(in), fmt.Sprintf("b%02d.%s", i, branchName(in)))
		}
		defer endAll(spans)
	}
	if len(inputs) == 1 || ex.sem == nil {
		// Sequential fast path: no goroutines, stop at the first error.
		out := make([]*relation, len(inputs))
		for i, in := range inputs {
			var bsp *obs.Span
			if spans != nil {
				bsp = spans[i]
			}
			rs, err := ex.run(in, bsp)
			if err != nil {
				ex.abort()
				return nil, err
			}
			out[i] = rs
		}
		return out, nil
	}
	// One goroutine per branch: goroutines only carry the tree structure
	// (cheap, bounded by plan size); the worker pool caps the expensive
	// leaf work, which each branch acquires a token for when it reaches a
	// scan or dispatch. Keeping structural nodes out of the pool matters:
	// a union parent that held a token while waiting on its children would
	// starve its own siblings' leaves.
	results := make([]*relation, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		var bsp *obs.Span
		if spans != nil {
			bsp = spans[i]
		}
		wg.Add(1)
		go func(i int, in plan.Node, bsp *obs.Span) {
			defer wg.Done()
			results[i], errs[i] = ex.run(in, bsp)
			if errs[i] != nil {
				ex.abort()
			}
		}(i, in, bsp)
	}
	wg.Wait()
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, errCancelled) {
			return nil, err
		}
		if fallback == nil {
			fallback = err
		}
	}
	if fallback != nil {
		return nil, fallback
	}
	return results, nil
}

// branchKind maps a plan node to the span kind of its branch span.
func branchKind(n plan.Node) string {
	switch n.(type) {
	case *plan.Union:
		return obs.KindUnion
	case *plan.Join:
		return obs.KindJoin
	default:
		return obs.KindScan
	}
}

// branchName renders a short deterministic label for a branch span.
func branchName(n plan.Node) string {
	switch v := n.(type) {
	case *plan.Union:
		return "union"
	case *plan.Join:
		return "join"
	case *plan.Scan:
		ids := strings.Join(v.PatternIDs(), "+")
		if v.IsHole() {
			return ids + "@?"
		}
		return ids + "@" + string(v.Peer)
	default:
		return "node"
	}
}

// endAll closes a batch of branch spans.
func endAll(spans []*obs.Span) {
	for _, s := range spans {
		s.End()
	}
}

// run evaluates a plan node, producing its rows at e.Self. A nil result
// with nil error is the "absent" sentinel: an unfillable hole under
// AllowPartial contributed nothing, and the parent union/join skips the
// branch instead of joining against an empty set (which would wrongly
// annihilate sibling rows — the same collapse semantics as PruneHoles).
// sp is the node's own span (the branch span its parent pre-created, or
// the attempt span at the plan root); nil when tracing is off.
func (ex *execution) run(n plan.Node, sp *obs.Span) (*relation, error) {
	if ex.cancelled() {
		return nil, errCancelled
	}
	e := ex.engine
	switch v := n.(type) {
	case *plan.Scan:
		if v.IsHole() {
			return ex.runHole(v, sp)
		}
		if v.Peer == e.Self {
			ex.acquire()
			defer ex.release()
			if ex.cancelled() {
				return nil, errCancelled
			}
			e.mu.Lock()
			e.metrics.LocalScans++
			e.mu.Unlock()
			// The scan leaf is where rows enter the engine's data plane:
			// on the columnar path they are born a batch (BatchSource) or
			// become one here, so every union/join above runs vectorized.
			if bs, ok := e.Local.(BatchSource); ok && !e.RowWire {
				b := bs.EvalScanBatch(v.Patterns, ex.store)
				if sp != nil {
					sp.Annotate("localRows", fmt.Sprintf("%d", b.Len()))
				}
				return relFromBatch(b), nil
			}
			rs := e.Local.EvalScan(v.Patterns)
			if sp != nil {
				sp.Annotate("localRows", fmt.Sprintf("%d", rs.Len()))
			}
			return relOf(e.RowWire, rs), nil
		}
		return ex.runRemote(v.Peer, v, sp)
	case *plan.Union:
		rss, err := ex.runAll(v.Inputs, sp)
		if err != nil {
			return nil, err
		}
		// nil branches (unfilled holes) contribute nothing; all-nil means
		// the whole union is absent.
		acc := e.unionAll(rss)
		if acc == nil && len(rss) == 0 {
			acc = e.emptyRel()
		}
		return acc, nil
	case *plan.Join:
		site := ex.placeJoin(v)
		if site != e.Self && !plan.HasHoles(v) {
			// Holes never ship: the remote evaluator has no router to fill
			// them, so a holed join subtree always runs at the root.
			return ex.runRemote(site, v, sp)
		}
		rss, err := ex.runAll(v.Inputs, sp)
		if err != nil {
			return nil, err
		}
		var acc *relation
		absent := false
		for _, rel := range rss {
			if rel == nil {
				absent = true
				continue // absent branch: join the answerable remainder
			}
			if acc == nil {
				acc = rel
			} else {
				acc = acc.join(rel)
			}
		}
		if acc == nil {
			if absent {
				return nil, nil // the whole join was unanswerable
			}
			acc = e.emptyRel()
		}
		return acc, nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

// runHole resolves a `@?` leaf mid-flight: advertisement updates learned
// since the plan was generated may cover it now, in which case the hole
// becomes a dispatched subplan (the paper's plan-change packets carry
// exactly this upgrade) while sibling branches keep streaming. Unfillable
// holes become absent branches under AllowPartial, errors otherwise.
func (ex *execution) runHole(v *plan.Scan, sp *obs.Span) (*relation, error) {
	e := ex.engine
	if e.Router != nil {
		ann := e.Router.RoutePatterns(v.Patterns)
		sub := plan.SplitHoles(&plan.Plan{Root: v})
		filled, nfilled := plan.FillHoles(sub, ann)
		if nfilled > 0 && !plan.HasHoles(filled.Root) {
			e.mu.Lock()
			e.metrics.HolesFilled += nfilled
			e.metrics.PlanChanges++
			e.mu.Unlock()
			hsp := sp.Child(obs.KindHoleFill, "hole-fill")
			rows, err := ex.run(filled.Root, hsp)
			hsp.End()
			return rows, err
		}
	}
	if e.AllowPartial {
		ex.mu.Lock()
		for _, id := range v.PatternIDs() {
			if _, ok := ex.unanswered[id]; !ok {
				ex.unanswered[id] = ex.holeReason
			}
		}
		ex.mu.Unlock()
		return nil, nil // absent
	}
	return nil, &HoleError{PatternIDs: v.PatternIDs()}
}

// placeJoin picks the join's execution site under the engine's policy.
// Remote placement ships the whole join subtree to the site (query
// shipping); the shipped peer then executes it with itself as the join
// site, which terminates the recursion.
func (ex *execution) placeJoin(j *plan.Join) pattern.PeerID {
	e := ex.engine
	switch e.Policy {
	case optimizer.DataShipping:
		return e.Self
	case optimizer.QueryShipping:
		if e.Cost != nil {
			if site := largestScanPeer(e.Cost, j); site != "" {
				return site
			}
		}
		// Without statistics, push to the first remote scan peer.
		for _, s := range plan.Scans(j) {
			if !s.IsHole() && s.Peer != e.Self {
				return s.Peer
			}
		}
		return e.Self
	default: // HybridShipping
		if e.Cost == nil {
			return e.Self
		}
		rep := e.Cost.EstimateCost(j, e.Self, optimizer.HybridShipping)
		// The last decision recorded corresponds to the outermost join.
		if len(rep.Decisions) > 0 {
			return rep.Decisions[len(rep.Decisions)-1].Site
		}
		return e.Self
	}
}

func largestScanPeer(cm *optimizer.CostModel, j *plan.Join) pattern.PeerID {
	var best pattern.PeerID
	bestCard := -1.0
	for _, s := range plan.Scans(j) {
		if s.IsHole() {
			continue
		}
		if c := cm.CardOf(s); c > bestCard {
			bestCard = c
			best = s.Peer
		}
	}
	return best
}

// subplanReq is the wire body of a shipped subplan. ResumeFrom > 0 asks
// the destination to skip that many leading rows (a checkpoint from a
// previous attempt that already reached the root); the destination
// acknowledges with a PlanChange packet before streaming.
type subplanReq struct {
	ChannelID  string `json:"channelId"`
	Plan       []byte `json:"plan"`
	ResumeFrom int    `json:"resumeFrom,omitempty"`
	// TraceID/SpanID propagate the root's trace context: the destination
	// binds them to the channel, stamps them onto every upstream packet,
	// records its own execution spans and ships them back in a
	// TraceSpans packet, parented under SpanID in the root's trace.
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
	// Tenant/Priority are the root execution's QoS headers: the serving
	// peer admits the subplan under this class before evaluating it.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// runRemote ships the node to the site peer and gathers its rows through
// the channel. Identical dispatches from concurrent branches are
// single-flighted: the first branch ships, the rest wait on its cache
// entry.
func (ex *execution) runRemote(site pattern.PeerID, n plan.Node, sp *obs.Span) (*relation, error) {
	e := ex.engine
	cacheKey := string(site) + "\x00" + n.String()
	ex.mu.Lock()
	if ent, ok := ex.cache[cacheKey]; ok {
		ex.mu.Unlock()
		if sp != nil {
			sp.Annotate("singleflight", "hit")
		}
		// Waiters hold no pool token, so the owner can always acquire one
		// and fill the entry — waiting here cannot deadlock.
		<-ent.done
		return ent.rows, ent.err
	}
	ent := &cacheEntry{done: make(chan struct{})}
	ex.cache[cacheKey] = ent
	ex.mu.Unlock()
	// Root-side load shedding: once this peer's pool has saturated past
	// the execution's priority watermark (which only happens when
	// higher classes piled on top — admission stops same-class entry at
	// the line), a subplan not yet dispatched is converted into an
	// explicit completeness hole rather than queued into the overload.
	// The query answers partially and immediately instead of timing
	// out. Requires AllowPartial; High-priority work never sheds
	// (ShouldShed guarantees it).
	if e.AllowPartial && e.Admission.ShouldShed(ex.qos.Priority) {
		if ok := ex.shedSubplan(site, n, sp); ok {
			ent.rows, ent.err = nil, nil // nil relation: the absent-branch sentinel
			close(ent.done)
			return ent.rows, ent.err
		}
	}
	// Proactive plan change: a site the throughput monitor already flagged
	// is migrated away from before we sink a dispatch into it. If no
	// alternate peer covers the subtree, dispatch to the slow site anyway.
	if tm := e.Throughput; tm != nil && e.Router != nil && tm.IsFlagged(site) {
		if rows, migrated, merr := ex.tryMigrate(site, n, sp); migrated {
			ent.rows, ent.err = rows, merr
			close(ent.done)
			return ent.rows, ent.err
		}
	}
	ex.acquire()
	if ex.cancelled() {
		ent.err = errCancelled
	} else {
		dsp := sp.ChildAt(obs.KindDispatch, "dispatch@"+string(site), string(site))
		ent.rows, ent.err = ex.dispatchRetry(site, n, dsp)
		dsp.End()
	}
	ex.release()
	// Surgical recovery: a terminal peer failure migrates just this
	// subtree to an alternate peer instead of failing the round. The pool
	// token is released first — the migrated subtree re-enters ex.run and
	// acquires its own tokens (token holders never acquire twice).
	if ent.err != nil && !errors.Is(ent.err, errCancelled) {
		if pf, ok := failureOf(ent.err); ok && pf.Peer == site {
			if rows, migrated, merr := ex.tryMigrate(site, n, sp); migrated {
				ent.rows, ent.err = rows, merr
			}
		}
	}
	close(ent.done)
	return ent.rows, ent.err
}

// shedSubplan converts a not-yet-dispatched remote subtree into
// completeness holes: every scan pattern under it is recorded
// unanswered with a shed reason, the tenant is charged a shed, and the
// ledger gets a "shed" entry so the overload experiment can prove shed
// work surfaced as partial answers rather than bare timeouts. Returns
// false when the subtree carries no patterns to annotate (nothing to
// shed honestly — the caller dispatches normally).
func (ex *execution) shedSubplan(site pattern.PeerID, n plan.Node, sp *obs.Span) bool {
	e := ex.engine
	var ids []string
	seen := map[string]bool{}
	for _, s := range plan.Scans(n) {
		for _, id := range s.PatternIDs() {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return false
	}
	reason := fmt.Sprintf("shed: overload at %s (%s)", e.Self, ex.qos.Priority)
	ex.mu.Lock()
	for _, id := range ids {
		if _, ok := ex.unanswered[id]; !ok {
			ex.unanswered[id] = reason
		}
	}
	ex.mu.Unlock()
	e.mu.Lock()
	e.metrics.Shed++
	e.mu.Unlock()
	e.Admission.RecordShed(ex.qos)
	e.appendLedger(LedgerEntry{
		Site: site, Subplan: n.String(), Patterns: patternKey(n),
		Attempt: ex.attempt, Outcome: "shed",
	})
	ssp := sp.Child(obs.KindShed, "shed@"+string(site))
	if ssp != nil {
		ssp.Annotate("reason", reason)
		ssp.Annotate("priority", ex.qos.Priority.String())
	}
	// Exactly one "shed" event per Metrics.Shed increment above — the
	// shed reconciliation invariant. Emitted before End (post-End event
	// emission is an obsspan lint error).
	ssp.EmitEvent(e.Events, "exec", "shed",
		obs.A("site", string(site)), obs.A("priority", ex.qos.Priority.String()),
		obs.A("patterns", patternKey(n)))
	ssp.End()
	return true
}

// tryMigrate is the plan-change protocol's root-side decision: quarantine
// the failed (or flagged) site exactly as a restart would, cut its scans
// out of the subtree, route the uncovered patterns against a fresh
// quarantine-aware snapshot, and — when every pattern found an alternate
// peer — re-dispatch only the rewritten subtree. Sibling rows already
// collected stay where they are; the single-flight cache splices the
// migrated rows in their place. Returns migrated=false when the subtree
// has no alternate: the caller then falls back to the legacy
// discard-replan-restart path (or, for a flagged-but-alive site, just
// dispatches to it).
//
// Ordering note: each migration quarantines its site BEFORE routing. A
// migrated branch that lands on a sibling's in-flight cache entry
// therefore routed before that sibling quarantined its own site — so a
// cycle of branches waiting on each other's entries would need every
// route to precede every quarantine, which the per-branch
// quarantine-then-route order makes impossible. The wait graph stays
// acyclic no matter how concurrent migrations interleave.
func (ex *execution) tryMigrate(site pattern.PeerID, n plan.Node, sp *obs.Span) (*relation, bool, error) {
	e := ex.engine
	if e.Router == nil || ex.cancelled() || e.maxMigrations() == 0 {
		return nil, false, nil
	}
	// The same quarantine the restart path applies, so migration and
	// restart agree on which peers the re-route may use — required for
	// the migrated answer to equal the restarted one.
	e.dropFromRouting(site)
	sub := &plan.Plan{Root: n}
	excluded, cut := plan.ExcludePeers(sub, map[pattern.PeerID]bool{site: true})
	if cut == 0 {
		return nil, false, nil
	}
	var holePatterns []pattern.PathPattern
	for _, h := range plan.Holes(excluded.Root) {
		holePatterns = append(holePatterns, h.Patterns...)
	}
	ann := e.Router.RoutePatterns(holePatterns)
	filled, _ := plan.FillHoles(plan.SplitHoles(excluded), ann)
	if plan.HasHoles(filled.Root) {
		// Decision rule: no alternate peer covers the subtree → migration
		// cannot help; the caller surfaces the failure and the legacy
		// restart (or hole pruning) takes over.
		return nil, false, nil
	}
	ex.mu.Lock()
	if ex.migrations >= e.maxMigrations() {
		ex.mu.Unlock()
		return nil, false, nil
	}
	ex.migrations++
	retained := ex.completedRows
	ex.mu.Unlock()
	e.mu.Lock()
	e.metrics.Migrations++
	e.metrics.PlanChanges++
	e.metrics.RowsRetained += retained
	e.mu.Unlock()
	e.appendLedger(LedgerEntry{
		Site: site, Subplan: n.String(), Patterns: patternKey(n),
		Attempt: ex.attempt, Outcome: "migrated-away",
	})
	msp := sp.Child(obs.KindMigrate, "migrate-from@"+string(site))
	if msp != nil {
		msp.Annotate("retainedRows", fmt.Sprintf("%d", retained))
	}
	// Exactly one "migrate" event per Metrics.Migrations increment above.
	msp.EmitEvent(e.Events, "exec", "migrate",
		obs.A("from", string(site)), obs.A("retainedRows", strconv.Itoa(retained)))
	rows, err := ex.run(filled.Root, msp)
	msp.End()
	if err == nil && rows == nil {
		rows = e.emptyRel()
	}
	return rows, true, err
}

// dispatchRetry wraps dispatch with the transient-failure retry loop:
// a dispatch that failed for a reason that may heal (drop, deadline,
// partition, crash) is retried up to MaxRetries times with doubling
// backoff charged to the logical clock, resetting the site's failed
// channel so each attempt opens fresh. Outcomes feed the health tracker.
//
// Retries are checkpointed: rows that reached us before the failure are a
// contiguous prefix (the destination aborts streaming at its first failed
// send, and the channel watermark proves contiguity), so the retry asks
// the destination to resume after them. The destination acknowledges with
// a PlanChange packet — "resume-honored" keeps the prefix, "checkpoint-
// invalid" discards it and re-streams from scratch.
func (ex *execution) dispatchRetry(site pattern.PeerID, n plan.Node, leaf *obs.Span) (*relation, error) {
	e := ex.engine
	backoff := e.RetryBackoffMS
	if backoff <= 0 {
		backoff = 10
	}
	var partial *relation // checkpointed rows from failed attempts
	checkpoint := 0       // contiguous row prefix already delivered
	resumed := false
	pendingBackoffMS := 0.0 // backoff owed to the next try's span
	var err error
	for try := 0; ; try++ {
		// The first try streams under a "stream" span; each retry gets a
		// "retry" span carrying its backoff charge plus the re-sent
		// transfer — so the retry/backoff phase prices what the failure
		// cost, not just the waiting.
		kind, name := obs.KindStream, "stream"
		if try > 0 {
			kind, name = obs.KindRetry, fmt.Sprintf("retry.%d", try)
		}
		ssp := leaf.Child(kind, name)
		ssp.ChargeMS(pendingBackoffMS)
		pendingBackoffMS = 0
		ssp.EmitEvent(e.Events, "exec", "dispatch",
			obs.A("site", string(site)), obs.A("try", strconv.Itoa(try)))
		var res *remoteResult
		res, err = ex.dispatch(site, n, checkpoint, ssp)
		ssp.End()
		if res != nil {
			switch {
			case res.restarted:
				// The destination rejected our checkpoint and re-streamed
				// from row 0: drop the retained prefix (set-union keeps the
				// answer right either way; the ledger keeps the accounting
				// honest).
				e.mu.Lock()
				e.metrics.RowsDiscarded += checkpoint
				e.mu.Unlock()
				ssp.Annotate("checkpoint", "invalid")
				partial, checkpoint, resumed = nil, 0, false
			case checkpoint > 0 && res.resumed:
				resumed = true
				e.mu.Lock()
				e.metrics.Resumes++
				e.metrics.RowsRetained += checkpoint
				e.mu.Unlock()
				ssp.Annotate("checkpoint", "resumed")
				// One "resume" event per Metrics.Resumes increment; on the
				// leaf span (ssp has already Ended).
				leaf.EmitEvent(e.Events, "exec", "resume",
					obs.A("site", string(site)), obs.A("checkpoint", strconv.Itoa(checkpoint)))
			}
			if rel := res.gathered(); rel != nil {
				if partial == nil {
					partial = rel
				} else {
					// Retried tries re-stream after the checkpoint, so the
					// new segment extends (never overlaps) the retained
					// prefix; union keeps the set semantics honest if a
					// destination ever re-sends a boundary row.
					partial = partial.union(rel)
				}
			}
			checkpoint += res.rowCount
		}
		if err == nil {
			if e.Health != nil {
				e.Health.ReportSuccess(site)
			}
			if partial == nil {
				partial = e.emptyRel()
			}
			ex.recordComplete(site, n, checkpoint, res.watermark, resumed)
			return partial, nil
		}
		if try >= e.MaxRetries || !network.Transient(err) || ex.cancelled() {
			break
		}
		wait := backoff
		if admission.IsOverload(err) {
			hint, ok := admission.RetryAfterHint(err)
			if !ok {
				// Hopeless rejection: capacity frees up after the query's
				// deadline budget. Fail now so migration (or shedding)
				// takes over instead of burning retries.
				break
			}
			// The destination said when its capacity frees up: honor its
			// retry-after instead of the blind doubling curve.
			wait = hint
			e.mu.Lock()
			e.metrics.RetryAfterHonored++
			e.mu.Unlock()
		} else {
			backoff *= 2
		}
		e.mu.Lock()
		e.metrics.Retries++
		e.metrics.BackoffMS += wait
		e.mu.Unlock()
		// One "retry" event per Metrics.Retries increment.
		leaf.EmitEvent(e.Events, "exec", "retry",
			obs.A("site", string(site)), obs.A("try", strconv.Itoa(try+1)),
			obs.A("waitMs", strconv.FormatFloat(wait, 'g', -1, 64)))
		pendingBackoffMS = wait
		ex.resetSite(site)
	}
	// Terminal failure: the checkpointed prefix is abandoned (a migration
	// or restart will fetch the subtree elsewhere, from scratch).
	e.mu.Lock()
	e.metrics.RowsDiscarded += checkpoint
	e.mu.Unlock()
	e.appendLedger(LedgerEntry{
		Site: site, Subplan: n.String(), Patterns: patternKey(n),
		Rows: checkpoint, Attempt: ex.attempt, Outcome: "failed",
	})
	if e.Health != nil {
		e.Health.ReportFailure(site)
	}
	return nil, err
}

// recordComplete books a finished dispatch into the ledger, the refetch
// accounting and the round's retained-rows counter.
func (ex *execution) recordComplete(site pattern.PeerID, n plan.Node, rows, watermark int, resumed bool) {
	e := ex.engine
	key := patternKey(n)
	ex.mu.Lock()
	_, again := ex.fetched[key]
	if !again {
		ex.fetched[key] = rows
	}
	ex.completedRows += rows
	ex.mu.Unlock()
	if again {
		// This pattern set was already delivered by an earlier dispatch of
		// this query: the whole fetch is re-paid work.
		e.mu.Lock()
		e.metrics.RowsRefetched += rows
		e.mu.Unlock()
	}
	e.appendLedger(LedgerEntry{
		Site: site, Subplan: n.String(), Patterns: key,
		Rows: rows, Watermark: watermark, Attempt: ex.attempt,
		Outcome: "complete", Resumed: resumed,
	})
}

// resetSite drops a site's channel slot — every dispatch failure either
// recorded an open error or marked the channel failed, so the retry must
// open a fresh channel rather than reuse the slot.
func (ex *execution) resetSite(site pattern.PeerID) {
	ex.mu.Lock()
	sc, ok := ex.sites[site]
	if ok {
		delete(ex.sites, site)
	}
	ex.mu.Unlock()
	if !ok {
		return
	}
	<-sc.opened
	if sc.err == nil {
		ex.engine.Channels.Close(sc.ch)
	}
}

// dispatch performs one subplan shipment and collects the streamed reply.
// It returns the remoteResult even on failure: the rows that arrived
// before the break are a contiguous checkpoint the retry loop keeps.
// sp is the try's stream/retry span: the request leg's transfer time is
// charged to it here, reply packets are charged by the packet collector,
// and the remote's shipped span record is grafted under it.
func (ex *execution) dispatch(site pattern.PeerID, n plan.Node, resumeFrom int, sp *obs.Span) (*remoteResult, error) {
	e := ex.engine
	sc, err := ex.channelTo(site)
	if err != nil {
		return nil, &PeerFailure{Peer: site, Err: err}
	}
	sub := &plan.Plan{Root: n, Query: nil}
	data, err := plan.Marshal(sub)
	if err != nil {
		return nil, fmt.Errorf("exec: marshal subplan: %w", err)
	}
	req := subplanReq{ChannelID: sc.ch.ID, Plan: data, ResumeFrom: resumeFrom,
		Tenant: ex.qos.Tenant, Priority: int(ex.qos.Priority)}
	if sp != nil {
		req.TraceID = sp.TraceID()
		req.SpanID = sp.Path()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("exec: marshal subplan request: %w", err)
	}
	// Capture the link before taking any lock: the packet collector prices
	// reply transfers from this snapshot, and LinkBetween takes the
	// network's own lock.
	var link stats.Link
	if sp != nil {
		link = e.Net.LinkBetween(e.Self, site)
		sp.ChargeMS(link.TransferMS(len(body) + len("exec.subplan") + 16))
	}
	// One request/collect cycle at a time per channel: the inbox collector
	// is keyed by channel id, so concurrent branches targeting the same
	// peer take turns on its channel.
	sc.mu.Lock()
	defer sc.mu.Unlock()
	ex.mu.Lock()
	ex.inbox[sc.ch.ID] = &remoteResult{site: site, span: sp, link: link}
	ex.mu.Unlock()
	e.mu.Lock()
	e.metrics.SubplansShipped++
	e.mu.Unlock()
	if tm := e.Throughput; tm != nil {
		tm.Track(site)
	}
	//lint:allow locksafe per-site channel serialization is the point of sc.mu, and SendWithin is deadline-bounded so the hold is finite
	sendErr := e.Net.SendWithin(e.Self, site, "exec.subplan", body, e.DeadlineMS)
	// Delivery is synchronous: by the time Send returns, the remote has
	// executed and its packets have been dispatched to our collector. Even
	// a failed send may have let packets through first (e.g. a crash
	// mid-stream), so always collect what arrived.
	ex.mu.Lock()
	res := ex.inbox[sc.ch.ID]
	delete(ex.inbox, sc.ch.ID)
	ex.mu.Unlock()
	res.watermark = sc.ch.Watermark()
	if sendErr != nil {
		e.Channels.MarkFailed(sc.ch)
		return res, &PeerFailure{Peer: site, Err: sendErr}
	}
	if res.err != nil {
		e.Channels.MarkFailed(sc.ch)
		return res, &PeerFailure{Peer: site, Err: res.err}
	}
	if !res.done {
		e.Channels.MarkFailed(sc.ch)
		return res, &PeerFailure{Peer: site, Err: fmt.Errorf("result stream ended without done packet")}
	}
	return res, nil
}

// channelTo returns (opening if necessary) the execution's channel slot
// for a peer — one channel per peer, as in the paper. The open itself is
// single-flighted so racing branches share the one channel.
func (ex *execution) channelTo(site pattern.PeerID) (*siteChan, error) {
	ex.mu.Lock()
	sc, ok := ex.sites[site]
	if !ok {
		sc = &siteChan{opened: make(chan struct{})}
		ex.sites[site] = sc
		ex.mu.Unlock()
		e := ex.engine
		sc.ch, sc.err = e.Channels.OpenAs(site, ex.qos.Tenant, int(ex.qos.Priority),
			func(pkt channel.Packet) { ex.onPacket(pkt) })
		if sc.err == nil {
			e.mu.Lock()
			e.metrics.ChannelsOpened++
			e.mu.Unlock()
		}
		close(sc.opened)
	} else {
		ex.mu.Unlock()
		<-sc.opened
	}
	if sc.err != nil {
		return nil, sc.err
	}
	return sc, nil
}

// packetEnvelopeBytes approximates the on-wire overhead of one channel
// packet beyond its payload: the JSON envelope fields plus the
// "chan.packet" message kind and the fixed message header. A constant
// keeps the per-packet transfer charge deterministic without
// re-marshaling every packet at the root.
const packetEnvelopeBytes = 96

func (ex *execution) onPacket(pkt channel.Packet) {
	// The stats sink is a caller-supplied callback: invoke it only after
	// ex.mu is released, so a sink that re-enters the engine cannot
	// deadlock against a packet handler.
	var sinkStats *stats.PeerStats
	var statsSite pattern.PeerID
	statsReceived := false
	resultsRows, resultsSeen := 0, false
	ex.mu.Lock()
	res, ok := ex.inbox[pkt.ChannelID]
	if ok {
		// Price the reply leg: every packet that reaches the collector
		// crossed the site→root link once. The link was captured at
		// dispatch, so no network lock is touched here.
		if res.span != nil {
			res.span.ChargeMS(res.link.TransferMS(len(pkt.Payload) + packetEnvelopeBytes))
		}
		switch pkt.Type {
		case channel.Results:
			// Decode by the packet's declared encoding, then store in the
			// root's own representation — so a root on either data plane
			// collects correctly from a destination on either.
			e := ex.engine
			switch pkt.Enc {
			case channel.EncBatch:
				b, err := rql.DecodeBatch(pkt.Payload)
				if err != nil {
					res.err = fmt.Errorf("exec: bad results packet: %w", err)
					break
				}
				if e.RowWire {
					res.segs = append(res.segs, b.ResultSet())
				} else {
					// Rebase the frame onto the execution's shared
					// dictionary as it arrives: one interning pass per
					// frame, and reassembly plus every operator above
					// move ids without touching a term again.
					res.batches = append(res.batches, b.Rebase(ex.store))
				}
			default:
				var rs rql.ResultSet
				//lint:allow jsonrow legacy RowWire wire format: decoding it here is what keeps mixed-mode peers interoperable
				if err := json.Unmarshal(pkt.Payload, &rs); err != nil {
					res.err = fmt.Errorf("exec: bad results packet: %w", err)
					break
				}
				if e.RowWire {
					res.segs = append(res.segs, &rs)
				} else {
					res.batches = append(res.batches, rql.BatchOf(&rs).Rebase(ex.store))
				}
			}
			res.rowCount += pkt.Rows
			resultsRows = pkt.Rows
			resultsSeen = true
			e.mu.Lock()
			e.metrics.RowsShipped += pkt.Rows
			e.metrics.BytesShipped += len(pkt.Payload)
			e.mu.Unlock()
			if tm := e.Throughput; tm != nil {
				tm.Observe(res.site, pkt.Rows)
			}
		case channel.PlanChange:
			var pc channel.PlanChangeInfo
			if err := json.Unmarshal(pkt.Payload, &pc); err != nil {
				res.err = fmt.Errorf("exec: bad plan-change packet: %w", err)
				break
			}
			switch pc.Reason {
			case "resume-honored":
				res.resumed = true
			case "checkpoint-invalid":
				res.restarted = true
			}
			e := ex.engine
			e.mu.Lock()
			e.metrics.PlanChanges++
			e.mu.Unlock()
		case channel.Stats:
			statsReceived = true
			statsSite = res.site
			if ex.engine.StatsSink != nil {
				var ps stats.PeerStats
				if err := json.Unmarshal(pkt.Payload, &ps); err == nil && ps.Peer != "" {
					sinkStats = &ps
				}
			}
		case channel.TraceSpans:
			var rec obs.SpanRecord
			if err := json.Unmarshal(pkt.Payload, &rec); err == nil && res.span != nil {
				res.span.Graft(&rec)
			}
		case channel.Failure:
			res.err = fmt.Errorf("exec: remote failure: %s", pkt.Payload)
		case channel.Done:
			res.done = true
			// A Done payload is the remote's piggybacked span record (see
			// streamResults); empty when the remote had no trace context.
			if len(pkt.Payload) > 0 && res.span != nil {
				var rec obs.SpanRecord
				if err := json.Unmarshal(pkt.Payload, &rec); err == nil {
					res.span.Graft(&rec)
				}
			}
		}
	}
	ex.mu.Unlock()
	// Registry counters live behind their own lock: increment after ex.mu
	// is released so lock order stays one-deep.
	if resultsSeen {
		if reg := ex.engine.Obs; reg != nil {
			reg.Histogram("exec_batch_rows", obs.L("peer", string(ex.engine.Self))).Observe(float64(resultsRows))
		}
	}
	if statsReceived {
		if reg := ex.engine.Obs; reg != nil {
			peerL := obs.L("peer", string(ex.engine.Self))
			siteL := obs.L("site", string(statsSite))
			reg.Counter("exec_stats_packets_received_total", peerL, siteL).Inc()
			if sinkStats != nil {
				reg.Counter("exec_stats_packets_applied_total", peerL, siteL).Inc()
			}
		}
	}
	if sinkStats != nil {
		ex.engine.StatsSink(sinkStats)
	}
}

func (ex *execution) closeAll() {
	ex.mu.Lock()
	ids := make([]pattern.PeerID, 0, len(ex.sites))
	for id := range ex.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sites := make([]*siteChan, 0, len(ids))
	for _, id := range ids {
		sites = append(sites, ex.sites[id])
	}
	ex.sites = map[pattern.PeerID]*siteChan{}
	ex.mu.Unlock()
	for _, sc := range sites {
		<-sc.opened
		if sc.err == nil {
			ex.engine.Channels.Close(sc.ch)
		}
	}
}

// handleSubplan executes a subplan shipped by a remote root: joins run at
// this peer (the query-shipping semantics), scans at other peers are
// fetched recursively, and the rows stream back on the root's channel.
func (e *Engine) handleSubplan(msg network.Message) ([]byte, error) {
	var req subplanReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return nil, fmt.Errorf("exec: bad subplan request: %w", err)
	}
	sub, err := plan.Unmarshal(req.Plan)
	if err != nil {
		return nil, err
	}
	// Serving-side admission: refuse the subplan before spending any
	// work on it when this peer's pool has saturated past the request's
	// priority watermark. The typed rejection travels back as the
	// handler error (delivery is synchronous and in-process, so the
	// root's errors.As sees the OverloadError chain intact) and the root
	// retries after the hint, migrates, or sheds — priority load
	// shedding happens here, lowest classes first.
	qos := admission.QoS{Tenant: req.Tenant, Priority: admission.Priority(req.Priority)}
	if aerr := e.Admission.AdmitWork(qos); aerr != nil {
		e.mu.Lock()
		e.metrics.OverloadRejected++
		e.mu.Unlock()
		return nil, aerr
	}
	defer e.Admission.Done()
	// Rebuild the root's trace context, if it shipped one: every span this
	// peer opens hangs off a remote@<self> span that is serialized and
	// shipped back on the channel, and the channel binding stamps the
	// trace ids onto every upstream packet.
	rsp := obs.RemoteSpan(req.TraceID, req.SpanID, string(e.Self))
	if rsp != nil {
		e.Channels.BindTrace(req.ChannelID, req.TraceID, req.SpanID)
	}
	// Execute with this peer as root and data-shipping placement, so the
	// shipped join runs here (terminating the recursion).
	local := &Engine{
		Self: e.Self, Net: e.Net, Channels: e.Channels, Local: e.Local,
		Policy:        optimizer.DataShipping,
		StatsProvider: e.StatsProvider,
		StatsSink:     e.StatsSink,
		Parallelism:   e.Parallelism,
		BatchSize:     e.BatchSize,
		RowWire:       e.RowWire,
		WindowSize:    e.WindowSize,
		Obs:           e.Obs,
		Events:        e.Events,
	}
	ex := newExecution(local)
	ex.qos = qos // nested dispatches ship under the root's class
	defer ex.closeAll()
	rows, err := ex.run(sub.Root, rsp)
	rsp.End()
	var traceRec []byte
	if rsp != nil {
		if data, merr := json.Marshal(rsp.Record()); merr == nil {
			traceRec = data
		}
	}
	// Fold the nested execution's metrics into the serving engine's.
	e.mu.Lock()
	e.metrics.LocalScans += local.metrics.LocalScans
	e.metrics.SubplansShipped += local.metrics.SubplansShipped
	e.metrics.ChannelsOpened += local.metrics.ChannelsOpened
	e.mu.Unlock()
	if err != nil {
		if len(traceRec) > 0 {
			if serr := e.Channels.SendToRoot(req.ChannelID, channel.TraceSpans, 0, traceRec); serr != nil {
				return nil, serr
			}
		}
		if serr := e.Channels.SendToRoot(req.ChannelID, channel.Failure, 0, []byte(err.Error())); serr != nil {
			return nil, serr
		}
		return []byte("failed"), nil
	}
	if e.RowWire {
		if err := e.streamResults(req.ChannelID, rows.resultSet(), req.ResumeFrom, traceRec); err != nil {
			return nil, err
		}
	} else if err := e.streamBatches(req.ChannelID, rows.asBatch(), req.ResumeFrom, traceRec); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}

// streamResults ships a result set upstream in BatchSize-row packets
// followed by a Done marker. A positive resumeFrom is the root's
// checkpoint: when it is a valid prefix of this evaluation the stream
// starts after it (acked with a "resume-honored" plan-change packet);
// otherwise the checkpoint is rejected ("checkpoint-invalid") and the
// stream restarts from row 0 so the root discards its stale prefix.
// A non-empty traceRec (the serialized remote span subtree) is shipped
// as a statistics-class TraceSpans packet just before Done, so the root
// grafts it only after all row packets have been charged.
func (e *Engine) streamResults(channelID string, rows *rql.ResultSet, resumeFrom int, traceRec []byte) error {
	batch := e.BatchSize
	if batch <= 0 {
		batch = 256
	}
	start0 := 0
	if resumeFrom > 0 {
		pc := channel.PlanChangeInfo{Reason: "resume-honored", Offset: resumeFrom}
		if resumeFrom > rows.Len() {
			// This evaluation produced fewer rows than the root already
			// holds: its checkpoint cannot be a prefix of our stream.
			pc = channel.PlanChangeInfo{Reason: "checkpoint-invalid"}
		} else {
			start0 = resumeFrom
		}
		payload, err := json.Marshal(pc)
		if err != nil {
			return fmt.Errorf("exec: marshal plan-change: %w", err)
		}
		if err := e.Channels.SendToRoot(channelID, channel.PlanChange, 0, payload); err != nil {
			return err
		}
	}
	sent := false
	for start := start0; !sent || start < rows.Len(); start += batch {
		end := start + batch
		if end > rows.Len() {
			end = rows.Len()
		}
		part := &rql.ResultSet{Vars: rows.Vars, Rows: rows.Rows[start:end]}
		//lint:allow jsonrow this IS the RowWire ablation's legacy wire format; the default plane streams binary batches (streamBatches)
		payload, err := json.Marshal(part)
		if err != nil {
			return fmt.Errorf("exec: marshal rows: %w", err)
		}
		if err := e.Channels.SendToRoot(channelID, channel.Results, part.Len(), payload); err != nil {
			return err
		}
		sent = true
	}
	if e.StatsProvider != nil {
		if ps := e.StatsProvider(); ps != nil {
			if payload, err := json.Marshal(ps); err == nil {
				if err := e.Channels.SendToRoot(channelID, channel.Stats, 0, payload); err != nil {
					return err
				}
			}
		}
	}
	// The span record rides the Done marker's otherwise-empty payload: on
	// the happy path tracing adds zero extra packets (and zero extra
	// per-message latency) — only bytes on a packet that was going to be
	// sent anyway. The failure path, where no Done follows, ships it as a
	// standalone TraceSpans packet instead.
	return e.Channels.SendToRoot(channelID, channel.Done, 0, traceRec)
}

// windowSize resolves the streaming in-flight window (encoded-but-unsent
// frames the encoder may run ahead by).
func (e *Engine) windowSize() int {
	if e.WindowSize > 0 {
		return e.WindowSize
	}
	return 4
}

// wireFrame is one encoded Results frame awaiting its send slot.
type wireFrame struct {
	payload []byte // pooled; the sender returns it after the send
	rows    int
}

// streamBatches is the columnar twin of streamResults: the answer ships
// as length-prefixed binary batch frames (BatchSize rows each, per-frame
// compacted term dictionary, pooled encode buffers) instead of JSON row
// slices. The checkpoint protocol is byte-for-byte the same — resumeFrom
// is acked with the identical PlanChange packet, frames after the
// checkpoint slice the same contiguous row prefix order, and at least one
// Results packet is always sent so the root learns the schema.
//
// Encoding is pipelined with backpressure: a producer goroutine slices
// and encodes ahead of the sender through a channel holding at most
// windowSize() frames, so a slow (or high-latency) channel bounds how
// much encoded-but-unsent data exists at any moment instead of the whole
// result being materialized on the wire at once. The first send error
// stops the producer via the abort channel; remaining frames are drained
// back to the buffer pool.
func (e *Engine) streamBatches(channelID string, rows *rql.Batch, resumeFrom int, traceRec []byte) error {
	batch := e.BatchSize
	if batch <= 0 {
		batch = 256
	}
	start0 := 0
	if resumeFrom > 0 {
		pc := channel.PlanChangeInfo{Reason: "resume-honored", Offset: resumeFrom}
		if resumeFrom > rows.Len() {
			// This evaluation produced fewer rows than the root already
			// holds: its checkpoint cannot be a prefix of our stream.
			pc = channel.PlanChangeInfo{Reason: "checkpoint-invalid"}
		} else {
			start0 = resumeFrom
		}
		payload, err := json.Marshal(pc)
		if err != nil {
			return fmt.Errorf("exec: marshal plan-change: %w", err)
		}
		if err := e.Channels.SendToRoot(channelID, channel.PlanChange, 0, payload); err != nil {
			return err
		}
	}
	frames := make(chan wireFrame, e.windowSize())
	abort := make(chan struct{})
	go func() {
		defer close(frames)
		sl := rql.NewSlicer(rows)
		sent := false
		for start := start0; !sent || start < rows.Len(); start += batch {
			end := start + batch
			if end > rows.Len() {
				end = rows.Len()
			}
			part := sl.Slice(start, end)
			payload := rql.AppendBatch(rql.GetWireBuf(), part)
			select {
			case frames <- wireFrame{payload: payload, rows: part.Len()}:
				sent = true
			case <-abort:
				rql.PutWireBuf(payload)
				return
			}
		}
	}()
	var sendErr error
	for f := range frames {
		if sendErr == nil {
			sendErr = e.Channels.SendToRootEnc(channelID, channel.Results, f.rows, channel.EncBatch, f.payload)
			if sendErr != nil {
				// Stop the producer: the root's checkpoint is the contiguous
				// prefix that made it, and a retry resumes from there.
				close(abort)
			}
		}
		rql.PutWireBuf(f.payload)
	}
	if sendErr != nil {
		return sendErr
	}
	if e.StatsProvider != nil {
		if ps := e.StatsProvider(); ps != nil {
			if payload, err := json.Marshal(ps); err == nil {
				if err := e.Channels.SendToRoot(channelID, channel.Stats, 0, payload); err != nil {
					return err
				}
			}
		}
	}
	// As in streamResults, the span record rides the Done marker.
	return e.Channels.SendToRoot(channelID, channel.Done, 0, traceRec)
}
