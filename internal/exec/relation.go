package exec

import "sqpeer/internal/rql"

// relation is the engine-internal value flowing between plan operators:
// the same logical relation in whichever representation the engine's data
// plane uses — columnar rql.Batch on the default path, row-map ResultSet
// under the Engine.RowWire ablation. Exactly one of rs / b is set. A nil
// *relation is the "absent" sentinel (an unfillable hole contributed
// nothing), matching the nil-*ResultSet convention it replaces.
type relation struct {
	rs *rql.ResultSet
	b  *rql.Batch
}

// relOf wraps a freshly evaluated result set in the engine's
// representation: the batch plane converts at the leaf, so every operator
// above it runs vectorized.
func relOf(rowWire bool, rs *rql.ResultSet) *relation {
	if rowWire {
		return &relation{rs: rs}
	}
	return &relation{b: rql.BatchOf(rs)}
}

// relFromBatch wraps a decoded wire batch.
func relFromBatch(b *rql.Batch) *relation { return &relation{b: b} }

// emptyRel returns an empty relation in the engine's representation.
func (e *Engine) emptyRel() *relation {
	if e.RowWire {
		return &relation{rs: rql.NewResultSet()}
	}
	return &relation{b: rql.NewBatch()}
}

// len returns the row count; nil relations are empty.
func (r *relation) len() int {
	if r == nil {
		return 0
	}
	if r.b != nil {
		return r.b.Len()
	}
	return r.rs.Len()
}

// asBatch returns the columnar view, converting if needed.
func (r *relation) asBatch() *rql.Batch {
	if r.b != nil {
		return r.b
	}
	return rql.BatchOf(r.rs)
}

// resultSet returns the row-map view, converting if needed — the facade
// boundary where batches become the public ResultSet again.
func (r *relation) resultSet() *rql.ResultSet {
	if r == nil {
		return rql.NewResultSet()
	}
	if r.b != nil {
		return r.b.ResultSet()
	}
	return r.rs
}

// union merges o into r, vectorized when either side is columnar.
func (r *relation) union(o *relation) *relation {
	if r.b != nil || (o != nil && o.b != nil) {
		return &relation{b: r.asBatch().Union(o.asBatch())}
	}
	var ors *rql.ResultSet
	if o != nil {
		ors = o.rs
	}
	return &relation{rs: r.rs.Union(ors)}
}

// unionAll merges the non-nil relations in one pass. On the batch plane
// this is a single dedup over all branches (rql.UnionAll); folding
// pairwise instead would re-key the whole accumulated relation once per
// branch — quadratic in the branch count. The RowWire ablation keeps its
// original pairwise scalar fold. Returns nil when every input is nil.
func (e *Engine) unionAll(rels []*relation) *relation {
	if e.RowWire {
		var acc *relation
		for _, rel := range rels {
			if rel == nil {
				continue
			}
			if acc == nil {
				acc = e.emptyRel()
			}
			acc = acc.union(rel)
		}
		return acc
	}
	batches := make([]*rql.Batch, 0, len(rels))
	for _, rel := range rels {
		if rel == nil {
			continue
		}
		batches = append(batches, rel.asBatch())
	}
	if len(batches) == 0 {
		return nil
	}
	return &relation{b: rql.UnionAll(batches...)}
}

// join natural-joins r with o, vectorized when either side is columnar.
func (r *relation) join(o *relation) *relation {
	if r.b != nil || (o != nil && o.b != nil) {
		return &relation{b: r.asBatch().Join(o.asBatch())}
	}
	return &relation{rs: r.rs.Join(o.rs)}
}

// project restricts r to vars, deduplicating.
func (r *relation) project(vars []string) *relation {
	if r.b != nil {
		return &relation{b: r.b.Project(vars)}
	}
	return &relation{rs: r.rs.Project(vars)}
}

// concatRS appends result-set segments in order without deduplicating —
// the row-plane mirror of rql.Concat, used to reassemble one remote
// stream whose segments are disjoint slices of an already-deduplicated
// relation.
func concatRS(segs []*rql.ResultSet) *rql.ResultSet {
	var vars []string
	total := 0
	for _, s := range segs {
		if s == nil {
			continue
		}
		if vars == nil {
			vars = s.Vars // every segment of one stream shares its schema
		}
		total += s.Len()
	}
	out := rql.NewResultSet(vars...)
	out.Rows = make([]rql.Row, 0, total)
	for _, s := range segs {
		if s == nil {
			continue
		}
		out.Rows = append(out.Rows, s.Rows...)
	}
	return out
}
