package rdf

import (
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	b := NewBase()
	b.Add(Statement(res(1), n1("prop1"), res(2)))
	b.Add(Typing(res(1), n1("C1")))
	b.Add(Triple{S: NewIRI(res(1)), P: NewIRI(n1("title")), O: NewLiteral(`with "quotes" and \slash`)})
	b.Add(Triple{S: NewIRI(res(1)), P: NewIRI(n1("year")), O: NewTypedLiteral("2004", XSDInteger)})
	b.Add(Triple{S: NewBlank("b0"), P: NewIRI(n1("prop2")), O: NewIRI(res(3))})

	var sb strings.Builder
	if err := WriteBase(&sb, b); err != nil {
		t.Fatalf("WriteBase: %v", err)
	}
	got, err := ReadBase(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadBase: %v", err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("round trip lost triples: %d vs %d\n%s", got.Len(), b.Len(), sb.String())
	}
	for _, tr := range b.Triples() {
		if !got.Has(tr) {
			t.Errorf("round trip lost %s", tr)
		}
	}
}

func TestReadBaseSkipsCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
<http://x#s> <http://x#p> <http://x#o> .

<http://x#s> <http://x#p> "lit" .
`
	b, err := ReadBase(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadBase: %v", err)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	bad := []string{
		"",
		"<http://x#s>",
		"<http://x#s> <http://x#p>",
		"<http://x#s> <http://x#p> <http://x#o> extra .",
		"<http://x#s <http://x#p> <http://x#o> .",
		`<http://x#s> <http://x#p> "unterminated .`,
		`"lit" <http://x#p> <http://x#o> .`,
		"~garbage .",
		"_bad <http://x#p> <http://x#o> .",
	}
	for _, line := range bad {
		if _, err := ParseTripleLine(line); err == nil {
			t.Errorf("ParseTripleLine(%q) accepted malformed input", line)
		}
	}
}

func TestParseTripleLineTypedLiteral(t *testing.T) {
	tr, err := ParseTripleLine(`<http://x#s> <http://x#p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`)
	if err != nil {
		t.Fatalf("ParseTripleLine: %v", err)
	}
	if tr.O.Datatype != XSDInteger || tr.O.Value != "5" {
		t.Errorf("typed literal parsed wrong: %+v", tr.O)
	}
}

func TestStatsCollect(t *testing.T) {
	s := figure1Schema(t)
	b := NewBase()
	// 3 prop1 pairs, 2 via prop4 (⊑ prop1), 1 prop2 pair.
	b.Add(Statement(res(1), n1("prop1"), res(10)))
	b.Add(Statement(res(2), n1("prop1"), res(10)))
	b.Add(Statement(res(3), n1("prop1"), res(11)))
	b.Add(Statement(res(4), n1("prop4"), res(12)))
	b.Add(Statement(res(5), n1("prop4"), res(13)))
	b.Add(Statement(res(10), n1("prop2"), res(20)))
	b.Add(Typing(res(1), n1("C1")))
	b.Add(Typing(res(4), n1("C5")))

	st := CollectStats(b, s)
	if st.Triples != 8 {
		t.Errorf("Triples = %d", st.Triples)
	}
	if st.Card(n1("prop1")) != 5 {
		t.Errorf("prop1 card = %d, want 5 (3 direct + 2 via prop4)", st.Card(n1("prop1")))
	}
	if st.Card(n1("prop4")) != 2 {
		t.Errorf("prop4 card = %d, want 2", st.Card(n1("prop4")))
	}
	if st.ClassCard[n1("C1")] != 2 {
		t.Errorf("C1 instances = %d, want 2 (r1 + r4 via C5)", st.ClassCard[n1("C1")])
	}
	if st.DistinctObjects[n1("prop1")] != 4 {
		t.Errorf("prop1 distinct objects = %d, want 4", st.DistinctObjects[n1("prop1")])
	}
	sel := st.JoinSelectivity(n1("prop1"), n1("prop2"))
	if sel <= 0 || sel > 1 {
		t.Errorf("JoinSelectivity out of range: %f", sel)
	}
	if out := st.String(); !strings.Contains(out, "property prop1") {
		t.Errorf("String() missing property line:\n%s", out)
	}
}

func TestStatsNilReceiver(t *testing.T) {
	var st *BaseStats
	if st.Card(n1("prop1")) != 0 {
		t.Error("nil Card should be 0")
	}
	if sel := st.JoinSelectivity(n1("a"), n1("b")); sel != 0.1 {
		t.Errorf("nil JoinSelectivity = %f, want default 0.1", sel)
	}
}
