package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// BaseStats summarizes a description base's extension: per-property pair
// counts and per-class instance counts. The optimizer's cost model uses
// these as cardinality estimates, and peers piggyback them on channel
// statistics packets.
type BaseStats struct {
	// Triples is the total number of stored triples.
	Triples int
	// PropertyCard maps each property to the number of (subject, object)
	// pairs it relates, including pairs contributed by subproperties.
	PropertyCard map[IRI]int
	// ClassCard maps each class to its number of instances, including
	// instances of subclasses.
	ClassCard map[IRI]int
	// DistinctSubjects maps each property to its number of distinct
	// subjects, enabling join-selectivity estimates.
	DistinctSubjects map[IRI]int
	// DistinctObjects maps each property to its number of distinct
	// objects.
	DistinctObjects map[IRI]int
}

// CollectStats computes BaseStats for the base against the schema. The
// schema supplies the subsumption hierarchies; it may be nil, in which
// case only directly asserted properties and classes are counted.
func CollectStats(b *Base, schema *Schema) *BaseStats {
	st := &BaseStats{
		Triples:          b.Len(),
		PropertyCard:     map[IRI]int{},
		ClassCard:        map[IRI]int{},
		DistinctSubjects: map[IRI]int{},
		DistinctObjects:  map[IRI]int{},
	}
	props := b.PropertiesUsed()
	if schema != nil {
		// Count every schema property so subsumption-contributed
		// cardinalities appear even when the superproperty itself has no
		// direct triples.
		for _, p := range schema.Properties() {
			props = append(props, p.Name)
		}
	}
	seenProp := map[IRI]bool{}
	for _, p := range props {
		if seenProp[p] {
			continue
		}
		seenProp[p] = true
		pairs := b.Pairs(p, schema)
		if len(pairs) == 0 {
			continue
		}
		st.PropertyCard[p] = len(pairs)
		subs := map[Term]struct{}{}
		objs := map[Term]struct{}{}
		for _, pr := range pairs {
			subs[pr.X] = struct{}{}
			objs[pr.Y] = struct{}{}
		}
		st.DistinctSubjects[p] = len(subs)
		st.DistinctObjects[p] = len(objs)
	}
	classes := b.ClassesUsed()
	if schema != nil {
		for _, c := range schema.Classes() {
			classes = append(classes, c.Name)
		}
	}
	seenClass := map[IRI]bool{}
	for _, c := range classes {
		if seenClass[c] {
			continue
		}
		seenClass[c] = true
		if n := len(b.InstancesOf(c, schema)); n > 0 {
			st.ClassCard[c] = n
		}
	}
	return st
}

// Card returns the pair cardinality recorded for property p, or 0.
func (st *BaseStats) Card(p IRI) int {
	if st == nil {
		return 0
	}
	return st.PropertyCard[p]
}

// JoinSelectivity estimates the fraction of the cross product surviving a
// join between the objects of p1 and the subjects of p2, using the
// containment-of-values assumption standard in System-R style estimators.
func (st *BaseStats) JoinSelectivity(p1, p2 IRI) float64 {
	if st == nil {
		return 0.1
	}
	d1, d2 := st.DistinctObjects[p1], st.DistinctSubjects[p2]
	m := d1
	if d2 > m {
		m = d2
	}
	if m == 0 {
		return 0.1
	}
	return 1.0 / float64(m)
}

// String renders the stats deterministically for logs and tests.
func (st *BaseStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "triples=%d\n", st.Triples)
	for _, p := range sortedStatKeys(st.PropertyCard) {
		fmt.Fprintf(&b, "property %s: pairs=%d subjects=%d objects=%d\n",
			p.Local(), st.PropertyCard[p], st.DistinctSubjects[p], st.DistinctObjects[p])
	}
	for _, c := range sortedStatKeys(st.ClassCard) {
		fmt.Fprintf(&b, "class %s: instances=%d\n", c.Local(), st.ClassCard[c])
	}
	return b.String()
}

func sortedStatKeys(m map[IRI]int) []IRI {
	out := make([]IRI, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
