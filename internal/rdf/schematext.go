package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The text schema format is a line-oriented notation for community RDF/S
// schemas, used by the CLI and fixtures:
//
//	schema http://example.org/ns#
//	class C1
//	class C5 < C1
//	property prop1 C1 -> C2
//	property prop4 C5 -> C6 < prop1
//	property title C1 -> literal
//
// Names without a scheme are resolved against the schema namespace;
// absolute IRIs are accepted anywhere. "literal" denotes rdfs:Literal.
// Blank lines and '#' comments are ignored. The format round-trips
// through WriteSchemaText/ParseSchemaText.

// ParseSchemaText reads the text schema format.
func ParseSchemaText(r io.Reader) (*Schema, error) {
	sc := bufio.NewScanner(r)
	var s *Schema
	lineNo := 0
	resolve := func(name string) (IRI, error) {
		if name == "literal" {
			return RDFSLiteral, nil
		}
		if strings.Contains(name, "://") {
			return IRI(name), nil
		}
		if s == nil {
			return "", fmt.Errorf("name %q before schema declaration", name)
		}
		return IRI(s.Name + name), nil
	}
	// Subclass/subproperty edges are applied after all declarations so
	// forward references work.
	type edge struct {
		sub, super string
		isProp     bool
		line       int
	}
	var edges []edge

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "schema":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rdf: line %d: schema wants one namespace", lineNo)
			}
			if s != nil {
				return nil, fmt.Errorf("rdf: line %d: duplicate schema declaration", lineNo)
			}
			s = NewSchema(fields[1])
		case "class":
			if s == nil {
				return nil, fmt.Errorf("rdf: line %d: class before schema declaration", lineNo)
			}
			// class NAME [< SUPER]
			if len(fields) != 2 && (len(fields) != 4 || fields[2] != "<") {
				return nil, fmt.Errorf("rdf: line %d: want 'class NAME [< SUPER]'", lineNo)
			}
			name, err := resolve(fields[1])
			if err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			if err := s.AddClass(name); err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			if len(fields) == 4 {
				edges = append(edges, edge{sub: fields[1], super: fields[3], line: lineNo})
			}
		case "property":
			if s == nil {
				return nil, fmt.Errorf("rdf: line %d: property before schema declaration", lineNo)
			}
			// property NAME DOMAIN -> RANGE [< SUPER]
			ok := len(fields) == 5 && fields[3] == "->" ||
				len(fields) == 7 && fields[3] == "->" && fields[5] == "<"
			// fields: property NAME DOMAIN -> RANGE [< SUPER]
			if len(fields) >= 5 && fields[3] != "->" {
				ok = false
			}
			if !ok {
				// Retry the common layout: property NAME DOM -> RNG < SUPER
				return nil, fmt.Errorf("rdf: line %d: want 'property NAME DOMAIN -> RANGE [< SUPER]'", lineNo)
			}
			name, err := resolve(fields[1])
			if err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			domain, err := resolve(fields[2])
			if err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			rng, err := resolve(fields[4])
			if err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			if err := s.AddProperty(name, domain, rng); err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			if len(fields) == 7 {
				edges = append(edges, edge{sub: fields[1], super: fields[6], isProp: true, line: lineNo})
			}
		default:
			return nil, fmt.Errorf("rdf: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading schema: %w", err)
	}
	if s == nil {
		return nil, fmt.Errorf("rdf: no schema declaration found")
	}
	for _, e := range edges {
		sub, err := resolve(e.sub)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", e.line, err)
		}
		super, err := resolve(e.super)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", e.line, err)
		}
		if e.isProp {
			err = s.SetSubPropertyOf(sub, super)
		} else {
			err = s.SetSubClassOf(sub, super)
		}
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", e.line, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteSchemaText renders the schema in the text format (local names when
// they live in the schema namespace, absolute IRIs otherwise).
func WriteSchemaText(w io.Writer, s *Schema) error {
	shorten := func(iri IRI) string {
		if iri == RDFSLiteral {
			return "literal"
		}
		if strings.HasPrefix(string(iri), s.Name) {
			return string(iri[len(s.Name):])
		}
		return string(iri)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", s.Name)
	for _, c := range s.Classes() {
		fmt.Fprintf(&b, "class %s", shorten(c.Name))
		supers := directSupers(s.superClass[c.Name])
		if len(supers) > 0 {
			fmt.Fprintf(&b, " < %s", shorten(supers[0]))
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Properties() {
		fmt.Fprintf(&b, "property %s %s -> %s", shorten(p.Name), shorten(p.Domain), shorten(p.Range))
		supers := directSupers(s.superProp[p.Name])
		if len(supers) > 0 {
			fmt.Fprintf(&b, " < %s", shorten(supers[0]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func directSupers(edges []IRI) []IRI {
	out := append([]IRI{}, edges...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
