package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is an RDF statement (subject, predicate, object). Triples are
// comparable value types, so they key maps and deduplicate naturally.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from the three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Statement builds a triple relating two resources through a property,
// the common case in SQPeer bases.
func Statement(subject IRI, property IRI, object IRI) Triple {
	return Triple{S: NewIRI(subject), P: NewIRI(property), O: NewIRI(object)}
}

// Typing builds the rdf:type triple classifying a resource under a class.
func Typing(resource IRI, class IRI) Triple {
	return Triple{S: NewIRI(resource), P: NewIRI(RDFType), O: NewIRI(class)}
}

// Valid reports whether the triple is structurally well-formed per RDF:
// the subject must not be a literal and the predicate must be an IRI.
func (t Triple) Valid() bool {
	return !t.S.IsLiteral() && t.P.IsIRI() && !t.S.Zero() && !t.O.Zero()
}

// String renders the triple in N-Triples-like form.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// SortTriples orders triples deterministically (by subject, predicate,
// object text), used to make dumps and test expectations stable.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return termLess(a.S, b.S)
		}
		if a.P != b.P {
			return termLess(a.P, b.P)
		}
		return termLess(a.O, b.O)
	})
}

func termLess(a, b Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Datatype < b.Datatype
}

// FormatTriples renders triples one per line in deterministic order.
func FormatTriples(ts []Triple) string {
	cp := make([]Triple, len(ts))
	copy(cp, ts)
	SortTriples(cp)
	var b strings.Builder
	for _, t := range cp {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
