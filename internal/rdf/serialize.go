package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteBase dumps the base to w, one N-Triples-like statement per line, in
// deterministic order. The format round-trips through ReadBase.
func WriteBase(w io.Writer, b *Base) error {
	_, err := io.WriteString(w, FormatTriples(b.Triples()))
	return err
}

// ReadBase parses the line-oriented format produced by WriteBase into a
// new Base. Blank lines and lines starting with '#' are ignored.
func ReadBase(r io.Reader) (*Base, error) {
	b := NewBase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		b.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading base: %w", err)
	}
	return b, nil
}

// ParseTripleLine parses a single statement of the WriteBase format:
//
//	<s-iri> <p-iri> (<o-iri> | "literal" | "literal"^^<dt> | _:id) .
func ParseTripleLine(line string) (Triple, error) {
	line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), "."))
	s, rest, err := parseTerm(line)
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	p, rest, err := parseTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, rest, err := parseTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return Triple{}, fmt.Errorf("trailing content %q", rest)
	}
	t := Triple{S: s, P: p, O: o}
	if !t.Valid() {
		return Triple{}, fmt.Errorf("malformed triple %s", t)
	}
	return t, nil
}

func parseTerm(s string) (Term, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of statement")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI in %q", s)
		}
		return NewIRI(IRI(s[1:end])), s[end+1:], nil
	case '"':
		// Use strconv to honour escapes produced by %q.
		q, rest, err := scanQuoted(s)
		if err != nil {
			return Term{}, "", err
		}
		if strings.HasPrefix(rest, "^^<") {
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype in %q", rest)
			}
			return NewTypedLiteral(q, IRI(rest[3:end])), rest[end+1:], nil
		}
		return NewLiteral(q), rest, nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return Term{}, "", fmt.Errorf("malformed blank node in %q", s)
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			end = len(s)
		}
		return NewBlank(s[2:end]), s[end:], nil
	default:
		return Term{}, "", fmt.Errorf("unrecognized term start %q", s)
	}
}

// scanQuoted consumes a Go-quoted string literal from the front of s.
func scanQuoted(s string) (string, string, error) {
	// Find the closing quote, skipping escaped quotes.
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			val, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad literal %q: %w", s[:i+1], err)
			}
			return val, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated literal in %q", s)
}
