package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTripleLine hardens the N-Triples-like reader: valid parses
// must round-trip through the writer.
func FuzzParseTripleLine(f *testing.F) {
	seeds := []string{
		"<http://a#s> <http://a#p> <http://a#o> .",
		`<http://a#s> <http://a#p> "lit" .`,
		`<http://a#s> <http://a#p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		"_:b0 <http://a#p> _:b1 .",
		"<s <p> <o> .", "", "garbage",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseTripleLine(line)
		if err != nil {
			return
		}
		back, err := ParseTripleLine(tr.String())
		if err != nil {
			t.Fatalf("rendered triple does not re-parse: %q → %q: %v", line, tr, err)
		}
		if back != tr {
			t.Fatalf("round trip changed triple: %v vs %v", tr, back)
		}
	})
}

// FuzzParseSchemaText hardens the schema text reader: valid parses must
// round-trip through the writer.
func FuzzParseSchemaText(f *testing.F) {
	seeds := []string{
		"schema http://a#\nclass C1\nclass C2 < C1\nproperty p C1 -> C2\n",
		"schema http://a#\nclass D\nproperty t D -> literal\n",
		"class C1", "schema", "# only a comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSchemaText(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteSchemaText(&sb, s); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseSchemaText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rendered schema does not re-parse:\n%s\n%v", sb.String(), err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip diverged")
		}
	})
}
